package ptsbench

// Benchmark harness: one benchmark per paper figure/table (reporting the
// headline metrics via b.ReportMetric), ablation benchmarks for the
// design choices called out in DESIGN.md, and micro-benchmarks for the
// hot data structures.
//
// Figure benchmarks run in Quick mode at a coarse scale so a full
// `go test -bench=. -benchmem` pass completes in minutes; use
// cmd/ptsbench for full-fidelity reproductions.

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"ptsbench/internal/betree"
	"ptsbench/internal/blockdev"
	"ptsbench/internal/btree"
	"ptsbench/internal/core"
	"ptsbench/internal/extfs"
	"ptsbench/internal/figures"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/lsm"
	"ptsbench/internal/memtable"
	"ptsbench/internal/sim"
	"ptsbench/internal/sstable"
)

// benchOptions are the fast settings shared by figure benchmarks.
func benchOptions() figures.Options {
	return figures.Options{Quick: true, Scale: 256, Seed: 1}
}

// runFigure executes a figure once per benchmark iteration.
func runFigure(b *testing.B, id string) *figures.Report {
	b.Helper()
	var rep *figures.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = figures.Registry()[id](benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// reportFirstTable surfaces a table's numeric cells as benchmark metrics.
func reportFirstTable(b *testing.B, rep *figures.Report) {
	b.Helper()
	if len(rep.Tables) == 0 {
		return
	}
	t := rep.Tables[0]
	for _, row := range t.Rows {
		for ci := 1; ci < len(row); ci++ {
			v, err := strconv.ParseFloat(row[ci], 64)
			if err != nil {
				continue
			}
			name := fmt.Sprintf("%s/%s", row[0], t.Header[ci])
			b.ReportMetric(v, sanitizeMetric(name))
			break // first numeric column per row keeps output readable
		}
	}
}

func sanitizeMetric(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '\\':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFig2Throughput regenerates Fig 2a/2b (KV and device throughput
// over time on a trimmed SSD).
func BenchmarkFig2Throughput(b *testing.B) {
	rep := runFigure(b, "fig2")
	reportFirstTable(b, rep)
}

// BenchmarkFig2WriteAmp re-reports Fig 2c/2d's steady write-amplification
// values from the same experiment.
func BenchmarkFig2WriteAmp(b *testing.B) {
	rep := runFigure(b, "fig2")
	for _, t := range rep.Tables {
		for _, row := range t.Rows {
			if row[0] == "WA-A" || row[0] == "WA-D" {
				if v, err := strconv.ParseFloat(row[1], 64); err == nil {
					b.ReportMetric(v, sanitizeMetric(t.Title+"/"+row[0]))
				}
			}
		}
	}
}

// BenchmarkFig3InitialState regenerates Fig 3 (trimmed vs preconditioned).
func BenchmarkFig3InitialState(b *testing.B) {
	rep := runFigure(b, "fig3")
	reportFirstTable(b, rep)
}

// BenchmarkFig4LBACDF regenerates Fig 4 (LBA write CDF).
func BenchmarkFig4LBACDF(b *testing.B) {
	rep := runFigure(b, "fig4")
	reportFirstTable(b, rep)
}

// BenchmarkFig5DatasetSize regenerates Fig 5 (dataset-size sweep).
func BenchmarkFig5DatasetSize(b *testing.B) {
	rep := runFigure(b, "fig5")
	reportFirstTable(b, rep)
}

// BenchmarkFig6SpaceAmp regenerates Fig 6a/6b (utilization and space
// amplification sweep).
func BenchmarkFig6SpaceAmp(b *testing.B) {
	rep := runFigure(b, "fig6")
	reportFirstTable(b, rep)
}

// BenchmarkFig6CostHeatmap checks the Fig 6c cost-model winner at the
// paper's illustrative corner points.
func BenchmarkFig6CostHeatmap(b *testing.B) {
	rep := runFigure(b, "fig6")
	for _, t := range rep.Tables {
		if t.Title == "Cheaper system (fewer drives)" && len(t.Rows) > 0 {
			b.Logf("heatmap top row: %v", t.Rows[0])
		}
	}
}

// BenchmarkFig7Overprovisioning regenerates Fig 7 (extra OP).
func BenchmarkFig7Overprovisioning(b *testing.B) {
	rep := runFigure(b, "fig7")
	reportFirstTable(b, rep)
}

// BenchmarkFig8OPCostHeatmap regenerates Fig 8 (OP cost heatmap).
func BenchmarkFig8OPCostHeatmap(b *testing.B) {
	runFigure(b, "fig8")
}

// BenchmarkFig9SSDTypes regenerates Fig 9 (throughput per SSD type).
func BenchmarkFig9SSDTypes(b *testing.B) {
	rep := runFigure(b, "fig9")
	reportFirstTable(b, rep)
}

// BenchmarkFig10Variability regenerates Fig 10 (1-minute variability).
func BenchmarkFig10Variability(b *testing.B) {
	runFigure(b, "fig10")
}

// BenchmarkFig11MixedRW regenerates Fig 11a/11b (50:50 read:write).
func BenchmarkFig11MixedRW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := core.Spec{
			Engine:       core.LSM,
			Scale:        256,
			ReadFraction: 0.5,
			Duration:     60 * time.Minute,
			Seed:         1,
		}
		if _, err := core.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11SmallValues regenerates Fig 11c/11d (128-byte values).
func BenchmarkFig11SmallValues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := core.Spec{
			Engine:     core.LSM,
			Scale:      1024,
			ValueBytes: 128,
			Duration:   60 * time.Minute,
			Seed:       1,
		}
		if _, err := core.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateDetection exercises the §4.1 guideline machinery
// (CUSUM steady-state detection) on a real experiment series.
func BenchmarkSteadyStateDetection(b *testing.B) {
	res, err := core.Run(core.Spec{
		Engine:   core.LSM,
		Scale:    256,
		Duration: 90 * time.Minute,
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	_, kops := res.Series.ThroughputSeries(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := core.SteadyStateIndex(kops, 0.05, 1.0)
		if idx < -1 {
			b.Fatal("impossible")
		}
	}
}

// ---- Ablation benchmarks (design choices from DESIGN.md) ----

// BenchmarkAblationGCPolicy contrasts greedy and random GC victim
// selection at fixed utilization: greedy should relocate far less.
func BenchmarkAblationGCPolicy(b *testing.B) {
	for _, policy := range []struct {
		name string
		gc   flash.GCPolicy
	}{{"greedy", flash.GCGreedy}, {"random", flash.GCRandom}} {
		b.Run(policy.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev, err := flash.NewDevice(flash.Config{
					LogicalBytes:  64 << 20,
					PageSize:      4096,
					PagesPerBlock: 64,
					GC:            policy.gc,
					Profile:       flash.ProfileSSD1().Scaled(4096),
				})
				if err != nil {
					b.Fatal(err)
				}
				rng := sim.NewRNG(1)
				pages := dev.LogicalPages()
				var now sim.Duration
				for j := int64(0); j < pages*3; j++ {
					now = dev.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
				}
				b.ReportMetric(dev.WAD(), "WA-D")
			}
		})
	}
}

// BenchmarkAblationDiscard contrasts nodiscard (the paper's mount mode)
// with discard-on-delete for the LSM's file churn.
func BenchmarkAblationDiscard(b *testing.B) {
	for _, mode := range []struct {
		name    string
		discard bool
	}{{"nodiscard", false}, {"discard", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wad, err := lsmChurnWAD(mode.discard)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(wad, "WA-D")
			}
		})
	}
}

// lsmChurnWAD runs a short LSM churn on a small device and returns WA-D.
func lsmChurnWAD(discard bool) (float64, error) {
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  256 << 20,
		PageSize:      4096,
		PagesPerBlock: 256,
		Profile:       flash.ProfileSSD1().Scaled(1024),
	})
	if err != nil {
		return 0, err
	}
	bdev := blockdev.New(ssd)
	fs, err := extfs.Mount(bdev, extfs.Options{Discard: discard})
	if err != nil {
		return 0, err
	}
	cfg := lsm.NewConfig(128 << 20)
	cfg.CPUPutTime *= 1024
	cfg.CPUGetTime *= 1024
	cfg.DelayedWriteBytesPerSec /= 1024
	db, err := lsm.Open(fs, cfg, sim.NewRNG(2))
	if err != nil {
		return 0, err
	}
	rng := sim.NewRNG(3)
	numKeys := uint64((128 << 20) / 4000)
	var now sim.Duration
	key := make([]byte, kv.KeySize)
	for id := uint64(0); id < numKeys; id++ {
		kv.AppendKey(key, id)
		if now, err = db.Put(now, key, nil, 4000); err != nil {
			return 0, err
		}
	}
	base := ssd.Stats()
	for i := uint64(0); i < numKeys*4; i++ {
		kv.AppendKey(key, rng.Uint64n(numKeys))
		if now, err = db.Put(now, key, nil, 4000); err != nil {
			return 0, err
		}
	}
	if _, err := db.FlushAll(now); err != nil {
		return 0, err
	}
	return ssd.Stats().Sub(base).WAD(), nil
}

// BenchmarkAblationStreams sweeps the FTL's die-striping width, the
// placement-mixing knob calibrated in DESIGN.md.
func BenchmarkAblationStreams(b *testing.B) {
	for _, streams := range []int{1, 16, 96} {
		b.Run(fmt.Sprintf("streams-%d", streams), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev, err := flash.NewDevice(flash.Config{
					LogicalBytes:  64 << 20,
					PageSize:      4096,
					PagesPerBlock: 64,
					Streams:       streams,
					Profile:       flash.ProfileSSD1().Scaled(4096),
				})
				if err != nil {
					b.Fatal(err)
				}
				// Interleave a hot stream (first quarter of the LBA
				// space, rewritten repeatedly in 64-page chunks) with a
				// cold stream (the rest, written once). With one open
				// block per write a chunk owns whole erase blocks and
				// self-invalidates on rewrite; striping scatters hot and
				// cold pages into the same blocks, forcing relocations —
				// the placement effect DESIGN.md calibrates.
				pages := dev.LogicalPages()
				hot := pages / 4
				var now sim.Duration
				coldCursor := hot
				rng := sim.NewRNG(9)
				for i := 0; i < int(pages/64)*4; i++ {
					hp := int64(rng.Uint64n(uint64(hot/64))) * 64
					now = dev.SubmitWrite(now, hp, 64)
					if coldCursor+64 <= pages {
						now = dev.SubmitWrite(now, coldCursor, 64)
						coldCursor += 64
					}
				}
				b.ReportMetric(dev.WAD(), "WA-D")
			}
		})
	}
}

// BenchmarkAblationBTreeCache sweeps the B+Tree cache size: the paper's
// 10 MiB cache forces an eviction write per update; larger caches absorb
// rewrites.
func BenchmarkAblationBTreeCache(b *testing.B) {
	for _, cacheKB := range []int64{256, 1024, 8192} {
		b.Run(fmt.Sprintf("cache-%dKB", cacheKB), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ssd, err := flash.NewDevice(flash.Config{
					LogicalBytes:  128 << 20,
					PageSize:      4096,
					PagesPerBlock: 64,
					Profile:       flash.ProfileSSD1().Scaled(2048),
				})
				if err != nil {
					b.Fatal(err)
				}
				bdev := blockdev.New(ssd)
				fs, err := extfs.Mount(bdev, extfs.Options{})
				if err != nil {
					b.Fatal(err)
				}
				cfg := btree.NewConfig(32 << 20)
				cfg.CacheBytes = cacheKB << 10
				tr, err := btree.Open(fs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				rng := sim.NewRNG(4)
				const keys = 8000
				var now sim.Duration
				for id := uint64(0); id < keys; id++ {
					if now, err = tr.Put(now, kv.EncodeKey(id), nil, 4000); err != nil {
						b.Fatal(err)
					}
				}
				user := tr.Stats().UserBytesWritten
				host := bdev.Counters().BytesWritten
				for j := 0; j < keys*2; j++ {
					if now, err = tr.Put(now, kv.EncodeKey(rng.Uint64n(keys)), nil, 4000); err != nil {
						b.Fatal(err)
					}
				}
				waa := float64(bdev.Counters().BytesWritten-host) /
					float64(tr.Stats().UserBytesWritten-user)
				b.ReportMetric(waa, "WA-A")
			}
		})
	}
}

// ---- Micro-benchmarks for the core data structures ----

func BenchmarkMemtablePut(b *testing.B) {
	m := memtable.New(sim.NewRNG(1))
	key := make([]byte, kv.KeySize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.AppendKey(key, uint64(i%100000))
		m.Put(key, nil, 128, uint64(i), false)
	}
}

func BenchmarkMemtableGet(b *testing.B) {
	m := memtable.New(sim.NewRNG(1))
	for i := uint64(0); i < 100000; i++ {
		m.Put(kv.EncodeKey(i), nil, 128, i, false)
	}
	key := make([]byte, kv.KeySize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.AppendKey(key, uint64(i%100000))
		if m.Get(key) == nil {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkSSTableBuild(b *testing.B) {
	entries := make([]kv.Entry, 10000)
	for i := range entries {
		entries[i] = kv.Entry{Key: kv.EncodeKey(uint64(i)), ValueLen: 128, Seq: uint64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := sstable.NewBuilder(4096, sstable.DefaultBlockBytes, false)
		for j := range entries {
			if err := bld.Add(&entries[j]); err != nil {
				b.Fatal(err)
			}
		}
		bld.Finish(uint64(i))
	}
}

func BenchmarkBloomFilter(b *testing.B) {
	bl := sstable.NewBloom(100000)
	for i := uint64(0); i < 100000; i++ {
		bl.Add(kv.EncodeKey(i))
	}
	key := make([]byte, kv.KeySize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.AppendKey(key, uint64(i))
		bl.MayContain(key)
	}
}

func BenchmarkFTLRandomWrite(b *testing.B) {
	dev, err := flash.NewDevice(flash.Config{
		LogicalBytes:  256 << 20,
		PageSize:      4096,
		PagesPerBlock: 256,
		Profile:       flash.ProfileSSD1().Scaled(1024),
	})
	if err != nil {
		b.Fatal(err)
	}
	// Pre-fill so GC participates.
	pages := dev.LogicalPages()
	var now sim.Duration
	for p := int64(0); p < pages; p += 256 {
		now = dev.SubmitWrite(now, p, 256)
	}
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = dev.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
	}
}

func BenchmarkBTreePut(b *testing.B) {
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  512 << 20,
		PageSize:      4096,
		PagesPerBlock: 256,
		Profile:       flash.ProfileSSD1().Scaled(512),
	})
	if err != nil {
		b.Fatal(err)
	}
	fs, err := extfs.Mount(blockdev.New(ssd), extfs.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := btree.Open(fs, btree.NewConfig(128<<20))
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	key := make([]byte, kv.KeySize)
	var now sim.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.AppendKey(key, rng.Uint64n(50000))
		if now, err = tr.Put(now, key, nil, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBeTreePut(b *testing.B) {
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  512 << 20,
		PageSize:      4096,
		PagesPerBlock: 256,
		Profile:       flash.ProfileSSD1().Scaled(512),
	})
	if err != nil {
		b.Fatal(err)
	}
	fs, err := extfs.Mount(blockdev.New(ssd), extfs.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := betree.Open(fs, betree.NewConfig(128<<20))
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	key := make([]byte, kv.KeySize)
	var now sim.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.AppendKey(key, rng.Uint64n(50000))
		if now, err = tr.Put(now, key, nil, 512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBetradeoff regenerates the Bε-tree ε × read-fraction
// trade-off figure at the benchmark scale.
func BenchmarkBetradeoff(b *testing.B) {
	rep := runFigure(b, "betradeoff")
	reportFirstTable(b, rep)
}

func BenchmarkLSMPut(b *testing.B) {
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  512 << 20,
		PageSize:      4096,
		PagesPerBlock: 256,
		Profile:       flash.ProfileSSD1().Scaled(512),
	})
	if err != nil {
		b.Fatal(err)
	}
	fs, err := extfs.Mount(blockdev.New(ssd), extfs.Options{})
	if err != nil {
		b.Fatal(err)
	}
	db, err := lsm.Open(fs, lsm.NewConfig(128<<20), sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(2)
	key := make([]byte, kv.KeySize)
	var now sim.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.AppendKey(key, rng.Uint64n(50000))
		if now, err = db.Put(now, key, nil, 512); err != nil {
			b.Fatal(err)
		}
	}
}
