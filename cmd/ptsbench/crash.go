package main

import (
	"fmt"
	"time"

	"ptsbench/internal/crash"
)

// runCrash executes the randomized crash-recovery harness and prints a
// one-line report. On failure the returned error already begins with
// the exact `ptsbench crash` invocation that replays the trial.
func runCrash(spec crash.Spec) error {
	start := time.Now()
	rep, err := crash.Run(spec)
	if err != nil {
		return err
	}
	if len(rep.Spec.ErrorKinds) > 0 {
		fmt.Printf("crash: %s x%d shard(s) x%d %s replica(s), errors %v @ %g: %d trial(s) passed\n",
			rep.Spec.Engine, rep.Spec.Shards, rep.Spec.Replicas, rep.Spec.ReplMode,
			rep.Spec.ErrorKinds, rep.Spec.ErrorProb, rep.Spec.Trials)
		outcome := "recovered"
		if rep.RecoveredLoud {
			outcome = "refused loudly, rebuilt from peers"
		}
		fmt.Printf("  last trial: seed %d, armed shard %d replica %d at write %d; %d error(s) injected, victim %s; %d keys checked (%d ambiguous), %d scan entries verified\n",
			rep.Seed, rep.CutShard, rep.CutReplica, rep.CutWrite, rep.Injected, outcome,
			rep.Checked, rep.Ambiguous, rep.Scanned)
	} else if rep.Spec.Replicas > 1 {
		fmt.Printf("crash: %s x%d shard(s) x%d %s replica(s): %d trial(s) passed\n",
			rep.Spec.Engine, rep.Spec.Shards, rep.Spec.Replicas, rep.Spec.ReplMode, rep.Spec.Trials)
		fmt.Printf("  last trial: seed %d, killed shard %d replica %d at write %d (op %d); %d keys checked (%d ambiguous), %d scan entries verified\n",
			rep.Seed, rep.CutShard, rep.CutReplica, rep.CutWrite, rep.CutOp, rep.Checked, rep.Ambiguous, rep.Scanned)
	} else {
		fmt.Printf("crash: %s x%d shard(s): %d trial(s) passed\n",
			rep.Spec.Engine, rep.Spec.Shards, rep.Spec.Trials)
		fmt.Printf("  last trial: seed %d, cut at shard %d write %d (op %d); %d keys checked (%d ambiguous), %d scan entries verified\n",
			rep.Seed, rep.CutShard, rep.CutWrite, rep.CutOp, rep.Checked, rep.Ambiguous, rep.Scanned)
	}
	fmt.Printf("(completed in %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}
