package main

import (
	"fmt"
	"time"

	"ptsbench/internal/devdiff"
)

// runDevdiff executes the sim-vs-file differential checker for one or
// all engines and prints a one-line report per engine.
func runDevdiff(engines []string, ops, keys int, seed uint64, dir string) error {
	start := time.Now()
	for _, eng := range engines {
		rep, err := devdiff.Run(devdiff.Spec{
			Engine: eng,
			Ops:    ops,
			Keys:   keys,
			Seed:   seed,
			Dir:    dir,
		})
		if err != nil {
			return fmt.Errorf("devdiff %s: %w", eng, err)
		}
		fmt.Printf("devdiff %s: %d ops identical on sim and file devices (%d write ops, %d LBAs written, %d pages compared, %d recovered entries)\n",
			rep.Engine, rep.Ops, rep.Counters.WriteOps, rep.PagesWritten, rep.PagesCompared, rep.ScanEntries)
	}
	fmt.Printf("(completed in %v)\n", time.Since(start).Round(time.Millisecond))
	return nil
}
