// Command ptsbench regenerates the figures and tables of "Toward a
// Better Understanding and Evaluation of Tree Structures on Flash SSDs"
// (VLDB 2020) on the simulated storage stack.
//
// Usage:
//
//	ptsbench list
//	ptsbench run -figure fig2 [-engine lsm,btree,betree] [-scale 128] [-quick] [-seed 1] [-csv DIR]
//	ptsbench qdsweep [-scale 512] [-quick] [-seed 1] [-csv DIR]
//	ptsbench all [-quick] [-csv DIR]
//	ptsbench bench [-quick] [-out FILE] [-against BASELINE] [-threshold N]
//
// qdsweep is shorthand for "run -figure qdsweep": the queue-depth sweep
// on an SSD with internal channel/way parallelism, whose cells execute
// concurrently across host cores.
//
// -engine restricts an engine-generic figure to a subset of the three
// tree structures; e.g. `ptsbench run -figure fig2 -engine betree`
// measures the Bε-tree alone, and `run -figure betradeoff` sweeps its ε
// (buffer fraction) knob against the read fraction.
//
// bench runs the pinned performance suite (internal/perf): micro
// benchmarks of the hot data structures plus the Fig 2 cells, reporting
// ns/op, allocs/op and virtual-time-per-wall-second. -out writes the
// results as JSON (this is how BENCH_baseline.json is refreshed);
// -against compares the run to a committed baseline and exits non-zero
// on regressions beyond the thresholds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ptsbench"
	"ptsbench/internal/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		fmt.Println("available figures:")
		for _, id := range ptsbench.Figures() {
			fmt.Printf("  %s\n", id)
		}
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		figure := fs.String("figure", "", "figure id (see 'ptsbench list')")
		opts, csvDir := commonFlags(fs)
		_ = fs.Parse(os.Args[2:])
		if *figure == "" {
			fmt.Fprintln(os.Stderr, "run: -figure is required")
			os.Exit(2)
		}
		if err := runOne(*figure, *opts, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "qdsweep":
		fs := flag.NewFlagSet("qdsweep", flag.ExitOnError)
		opts, csvDir := commonFlags(fs)
		_ = fs.Parse(os.Args[2:])
		if err := runOne("qdsweep", *opts, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		quick := fs.Bool("quick", false, "reduce iteration counts (same workload shapes)")
		out := fs.String("out", "", "write results JSON to this file")
		against := fs.String("against", "", "baseline JSON to diff against (non-zero exit on regression)")
		nsThresh := fs.Float64("threshold", 10, "ns/op regression threshold (x baseline; generous, wall time is machine-dependent)")
		allocThresh := fs.Float64("alloc-threshold", 2, "allocs/op regression threshold (x baseline; machine-independent)")
		_ = fs.Parse(os.Args[2:])
		if err := runBench(*quick, *out, *against, *nsThresh, *allocThresh); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "all":
		fs := flag.NewFlagSet("all", flag.ExitOnError)
		opts, csvDir := commonFlags(fs)
		_ = fs.Parse(os.Args[2:])
		for _, id := range ptsbench.Figures() {
			if err := runOne(id, *opts, *csvDir); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
	default:
		usage()
		os.Exit(2)
	}
}

func commonFlags(fs *flag.FlagSet) (*ptsbench.FigureOptions, *string) {
	opts := &ptsbench.FigureOptions{}
	fs.Int64Var(&opts.Scale, "scale", 0, "simulation scale override (0 = figure default)")
	fs.BoolVar(&opts.Quick, "quick", false, "shorten runs for a fast smoke pass")
	fs.Uint64Var(&opts.Seed, "seed", 0, "deterministic seed override")
	fs.Func("engine", "restrict to engines (comma-separated: lsm, btree, betree)", func(v string) error {
		for _, name := range strings.Split(v, ",") {
			k, err := ptsbench.ParseEngine(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opts.Engines = append(opts.Engines, k)
		}
		return nil
	})
	csvDir := fs.String("csv", "", "also write CSV files into this directory")
	return opts, csvDir
}

func runOne(id string, opts ptsbench.FigureOptions, csvDir string) error {
	start := time.Now()
	rep, err := ptsbench.Figure(id, opts)
	if err != nil {
		return err
	}
	if err := rep.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	if csvDir != "" {
		if err := rep.WriteCSV(csvDir); err != nil {
			return err
		}
		fmt.Printf("CSV written to %s\n", csvDir)
	}
	return nil
}

func runBench(quick bool, out, against string, nsThresh, allocThresh float64) error {
	start := time.Now()
	res, err := perf.RunSuite(perf.Options{Quick: quick})
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %14s %12s %14s %14s\n", "benchmark", "ns/op", "allocs/op", "B/op", "virt-s/wall-s")
	for _, m := range res.Metrics {
		extra := ""
		if m.VirtualPerWall > 0 {
			extra = fmt.Sprintf("%14.1f", m.VirtualPerWall)
		}
		fmt.Printf("%-24s %14.1f %12.2f %14.1f %s\n", m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, extra)
	}
	fmt.Printf("(suite completed in %v)\n", time.Since(start).Round(time.Millisecond))
	if out != "" {
		if err := res.WriteFile(out); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", out)
	}
	if against != "" {
		base, err := perf.ReadFile(against)
		if err != nil {
			return err
		}
		regs := perf.Compare(base, res, nsThresh, allocThresh)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "REGRESSION:", r)
			}
			return fmt.Errorf("%d metric(s) regressed against %s", len(regs), against)
		}
		fmt.Printf("no regressions against %s (ns/op <= %.1fx, allocs/op <= %.1fx)\n",
			against, nsThresh, allocThresh)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ptsbench list
  ptsbench run -figure figN [-engine lsm,btree,betree] [-scale N] [-quick] [-seed N] [-csv DIR]
  ptsbench qdsweep [-scale N] [-quick] [-seed N] [-csv DIR]
  ptsbench all [-quick] [-csv DIR]
  ptsbench bench [-quick] [-out FILE] [-against BASELINE] [-threshold N]`)
}
