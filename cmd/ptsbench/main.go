// Command ptsbench regenerates the figures and tables of "Toward a
// Better Understanding and Evaluation of Tree Structures on Flash SSDs"
// (VLDB 2020) on the simulated storage stack.
//
// Usage:
//
//	ptsbench list
//	ptsbench run -figure fig2 [-scale 128] [-quick] [-seed 1] [-csv DIR]
//	ptsbench qdsweep [-scale 512] [-quick] [-seed 1] [-csv DIR]
//	ptsbench all [-quick] [-csv DIR]
//
// qdsweep is shorthand for "run -figure qdsweep": the queue-depth sweep
// on an SSD with internal channel/way parallelism, whose cells execute
// concurrently across host cores.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ptsbench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		fmt.Println("available figures:")
		for _, id := range ptsbench.Figures() {
			fmt.Printf("  %s\n", id)
		}
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		figure := fs.String("figure", "", "figure id (see 'ptsbench list')")
		opts, csvDir := commonFlags(fs)
		_ = fs.Parse(os.Args[2:])
		if *figure == "" {
			fmt.Fprintln(os.Stderr, "run: -figure is required")
			os.Exit(2)
		}
		if err := runOne(*figure, *opts, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "qdsweep":
		fs := flag.NewFlagSet("qdsweep", flag.ExitOnError)
		opts, csvDir := commonFlags(fs)
		_ = fs.Parse(os.Args[2:])
		if err := runOne("qdsweep", *opts, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "all":
		fs := flag.NewFlagSet("all", flag.ExitOnError)
		opts, csvDir := commonFlags(fs)
		_ = fs.Parse(os.Args[2:])
		for _, id := range ptsbench.Figures() {
			if err := runOne(id, *opts, *csvDir); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
	default:
		usage()
		os.Exit(2)
	}
}

func commonFlags(fs *flag.FlagSet) (*ptsbench.FigureOptions, *string) {
	opts := &ptsbench.FigureOptions{}
	fs.Int64Var(&opts.Scale, "scale", 0, "simulation scale override (0 = figure default)")
	fs.BoolVar(&opts.Quick, "quick", false, "shorten runs for a fast smoke pass")
	fs.Uint64Var(&opts.Seed, "seed", 0, "deterministic seed override")
	csvDir := fs.String("csv", "", "also write CSV files into this directory")
	return opts, csvDir
}

func runOne(id string, opts ptsbench.FigureOptions, csvDir string) error {
	start := time.Now()
	rep, err := ptsbench.Figure(id, opts)
	if err != nil {
		return err
	}
	if err := rep.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	if csvDir != "" {
		if err := rep.WriteCSV(csvDir); err != nil {
			return err
		}
		fmt.Printf("CSV written to %s\n", csvDir)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ptsbench list
  ptsbench run -figure figN [-scale N] [-quick] [-seed N] [-csv DIR]
  ptsbench qdsweep [-scale N] [-quick] [-seed N] [-csv DIR]
  ptsbench all [-quick] [-csv DIR]`)
}
