// Command ptsbench regenerates the figures and tables of "Toward a
// Better Understanding and Evaluation of Tree Structures on Flash SSDs"
// (VLDB 2020) on the simulated storage stack.
//
// Usage:
//
//	ptsbench list
//	ptsbench engines
//	ptsbench run -figure fig2 [-engine lsm,btree,betree] [-scale 128] [-quick] [-seed 1] [-csv DIR]
//	ptsbench exp -spec FILE [-quick] [-csv DIR] [-json FILE] [-workers N]
//	ptsbench qdsweep [-scale 512] [-quick] [-seed 1] [-csv DIR]
//	ptsbench crash -engine lsm [-shards 4] [-ops 400] [-seed 1] [-trials 8] [-replicas R] [-repl-mode chain|quorum] [-errors KINDS -error-prob P] [-cut-shard S -cut-write W] [-device sim|file] [-dir DIR]
//	ptsbench devdiff [-engine lsm,btree,betree] [-ops 600] [-seed 1] [-dir DIR]
//	ptsbench all [-quick] [-csv DIR]
//	ptsbench bench [-quick] [-out FILE] [-against BASELINE] [-threshold N] [-cpuprofile FILE] [-memprofile FILE]
//
// engines lists the registered engine drivers and every declarative
// tunable each accepts; exp runs a declarative experiment spec file (a
// JSON document sweeping engines, read fractions, queue depths and
// scales — see examples/specs and the README's "Running your own
// experiments"), executing the grid concurrently and rendering a
// summary table plus per-cell throughput curves. -json additionally
// writes the raw results (specs included) as JSON.
//
// qdsweep is shorthand for "run -figure qdsweep": the queue-depth sweep
// on an SSD with internal channel/way parallelism, whose cells execute
// concurrently across host cores.
//
// crash runs the randomized crash-recovery harness (internal/crash):
// a seed-determined op log over fault-injecting devices, a power cut at
// a sampled write boundary, recovery through the engine registry, and a
// reference-model check of the recovered store. Every trial is fully
// determined by its seed; on failure the error starts with the exact
// `ptsbench crash -seed N` line that replays it. -device file runs the
// same harness over real backing files (internal/filedev) and
// additionally verifies the file matches the resolved durable image
// after every power-on; -dir keeps the per-trial images for inspection.
// -replicas R (with -repl-mode chain or quorum) turns every shard into
// a replica group of R full engine stacks and changes the failure: one
// replica's device is killed mid-batch while the machine keeps serving,
// and the trial verifies zero acknowledged-write loss through the
// failover, recovery of the killed replica from its own durable image,
// and entry-identical reconvergence of the whole group. -errors (with
// -replicas >=2) switches the failure from a power cut to the
// host-stack error model: the listed kinds (eio, short, misdirect,
// fsynclie) arm on one replica mid-run and fire per-op with
// -error-prob; the serving layer must absorb them by retry and
// automatic failover, the damaged replica is power-cycled and
// recovered (a loud recovery refusal triggers a rebuild from the
// surviving authority), and the trial again proves zero
// acknowledged-write loss.
//
// devdiff runs the differential checker (internal/devdiff): the same
// seeded op log over the simulated device and over a real backing file
// must produce identical results, I/O counters, write histograms,
// byte-identical device images and identical recovered scans.
//
// -engine restricts an engine-generic figure to a subset of the three
// tree structures; e.g. `ptsbench run -figure fig2 -engine betree`
// measures the Bε-tree alone, and `run -figure betradeoff` sweeps its ε
// (buffer fraction) knob against the read fraction.
//
// bench runs the pinned performance suite (internal/perf): micro
// benchmarks of the hot data structures plus the Fig 2 cells, reporting
// ns/op, allocs/op and virtual-time-per-wall-second. -out writes the
// results as JSON (this is how BENCH_baseline.json is refreshed);
// -against compares the run to a committed baseline and exits non-zero
// on regressions beyond the thresholds (metrics with no baseline entry
// fail the diff until the baseline is refreshed); -alloc-gate names
// steady-state metrics whose allocs/op additionally gate hard at
// -alloc-gate-threshold. -cpuprofile/-memprofile capture pprof profiles
// of the suite so perf work needs no ad-hoc harnesses.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"ptsbench"
	"ptsbench/internal/crash"
	"ptsbench/internal/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		fmt.Println("available figures:")
		for _, id := range ptsbench.Figures() {
			fmt.Printf("  %s\n", id)
		}
	case "engines":
		listEngines(os.Stdout)
	case "exp":
		fs := flag.NewFlagSet("exp", flag.ExitOnError)
		specPath := fs.String("spec", "", "experiment spec file (JSON; see examples/specs)")
		quick := fs.Bool("quick", false, "shorten runs for a fast smoke pass")
		csvDir := fs.String("csv", "", "also write CSV files into this directory")
		jsonOut := fs.String("json", "", "write raw results (specs included) as JSON to this file")
		workers := fs.Int("workers", 0, "concurrent cells (0 = GOMAXPROCS)")
		_ = fs.Parse(os.Args[2:])
		if *specPath == "" {
			fmt.Fprintln(os.Stderr, "exp: -spec is required")
			os.Exit(2)
		}
		if err := runExp(*specPath, *quick, *csvDir, *jsonOut, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		figure := fs.String("figure", "", "figure id (see 'ptsbench list')")
		opts, csvDir := commonFlags(fs)
		_ = fs.Parse(os.Args[2:])
		if *figure == "" {
			fmt.Fprintln(os.Stderr, "run: -figure is required")
			os.Exit(2)
		}
		if err := runOne(*figure, *opts, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "qdsweep":
		fs := flag.NewFlagSet("qdsweep", flag.ExitOnError)
		opts, csvDir := commonFlags(fs)
		_ = fs.Parse(os.Args[2:])
		if err := runOne("qdsweep", *opts, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		quick := fs.Bool("quick", false, "reduce iteration counts (same workload shapes)")
		out := fs.String("out", "", "write results JSON to this file")
		against := fs.String("against", "", "baseline JSON to diff against (non-zero exit on regression)")
		nsThresh := fs.Float64("threshold", 10, "ns/op regression threshold (x baseline; generous, wall time is machine-dependent)")
		allocThresh := fs.Float64("alloc-threshold", 2, "allocs/op regression threshold (x baseline; machine-independent)")
		allocGate := fs.String("alloc-gate", "", "comma-separated metrics whose allocs/op gate hard against the baseline")
		gateThresh := fs.Float64("alloc-gate-threshold", 1.1, "allocs/op ceiling for -alloc-gate metrics (x baseline)")
		cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the suite to this file")
		memProfile := fs.String("memprofile", "", "write a pprof allocation profile of the suite to this file")
		_ = fs.Parse(os.Args[2:])
		if err := runBench(benchOptions{
			quick: *quick, out: *out, against: *against,
			nsThresh: *nsThresh, allocThresh: *allocThresh,
			allocGate: *allocGate, gateThresh: *gateThresh,
			cpuProfile: *cpuProfile, memProfile: *memProfile,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "crash":
		fs := flag.NewFlagSet("crash", flag.ExitOnError)
		eng := fs.String("engine", "", "engine to crash-test (lsm, btree, betree)")
		shards := fs.Int("shards", 1, "store shard count")
		ops := fs.Int("ops", 400, "recorded op-log length")
		keys := fs.Int("keys", 0, "key-space bound (0 = ops/8, min 16)")
		seed := fs.Uint64("seed", 1, "trial seed (trial t runs with seed+t)")
		trials := fs.Int("trials", 1, "independent seeds to run")
		cutShard := fs.Int("cut-shard", -1, "pin the cut shard (-1 = sample by write traffic)")
		cutWrite := fs.Int64("cut-write", 0, "pin the 1-based cut write within the shard (0 = sample)")
		replicas := fs.Int("replicas", 1, "replicas per shard (>1 kills one replica's device instead of the machine)")
		replMode := fs.String("repl-mode", "", "replication mode for -replicas >1: chain (default) or quorum (needs >=3)")
		errKinds := fs.String("errors", "", "comma-separated error kinds to arm on one replica (eio, short, misdirect, fsynclie); needs -replicas >=2")
		errProb := fs.Float64("error-prob", 0, "per-op probability of each armed error kind (0 = default 0.05)")
		device := fs.String("device", "sim", "backing device: sim (flash simulator) or file (real files via internal/filedev)")
		dir := fs.String("dir", "", "file device only: keep per-trial shard images under this directory (default: temp, removed)")
		_ = fs.Parse(os.Args[2:])
		if *eng == "" {
			fmt.Fprintln(os.Stderr, "crash: -engine is required")
			os.Exit(2)
		}
		var kinds []string
		if *errKinds != "" {
			kinds = strings.Split(*errKinds, ",")
		}
		if err := runCrash(crash.Spec{
			Engine:     *eng,
			Shards:     *shards,
			Ops:        *ops,
			Keys:       *keys,
			Seed:       *seed,
			Trials:     *trials,
			CutShard:   *cutShard,
			CutWrite:   *cutWrite,
			Replicas:   *replicas,
			ReplMode:   *replMode,
			ErrorKinds: kinds,
			ErrorProb:  *errProb,
			Device:     *device,
			Dir:        *dir,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "devdiff":
		fs := flag.NewFlagSet("devdiff", flag.ExitOnError)
		eng := fs.String("engine", "", "engine to check (default: all registered)")
		ops := fs.Int("ops", 0, "op-log length (0 = default 600)")
		keys := fs.Int("keys", 0, "key-space bound (0 = ops/8, min 16)")
		seed := fs.Uint64("seed", 1, "op-log seed")
		dir := fs.String("dir", "", "keep the file backend's image in this directory (default: temp, removed)")
		_ = fs.Parse(os.Args[2:])
		var engines []string
		if *eng != "" {
			engines = strings.Split(*eng, ",")
		} else {
			for _, info := range ptsbench.Engines() {
				engines = append(engines, info.Name)
			}
		}
		if err := runDevdiff(engines, *ops, *keys, *seed, *dir); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case "all":
		fs := flag.NewFlagSet("all", flag.ExitOnError)
		opts, csvDir := commonFlags(fs)
		_ = fs.Parse(os.Args[2:])
		for _, id := range ptsbench.Figures() {
			if err := runOne(id, *opts, *csvDir); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
	default:
		usage()
		os.Exit(2)
	}
}

func commonFlags(fs *flag.FlagSet) (*ptsbench.FigureOptions, *string) {
	opts := &ptsbench.FigureOptions{}
	fs.Int64Var(&opts.Scale, "scale", 0, "simulation scale override (0 = figure default)")
	fs.BoolVar(&opts.Quick, "quick", false, "shorten runs for a fast smoke pass")
	fs.Uint64Var(&opts.Seed, "seed", 0, "deterministic seed override")
	fs.Func("engine", "restrict to engines (comma-separated: lsm, btree, betree)", func(v string) error {
		for _, name := range strings.Split(v, ",") {
			k, err := ptsbench.ParseEngine(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opts.Engines = append(opts.Engines, k)
		}
		return nil
	})
	csvDir := fs.String("csv", "", "also write CSV files into this directory")
	return opts, csvDir
}

func runOne(id string, opts ptsbench.FigureOptions, csvDir string) error {
	start := time.Now()
	rep, err := ptsbench.Figure(id, opts)
	if err != nil {
		return err
	}
	if err := rep.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	if csvDir != "" {
		if err := rep.WriteCSV(csvDir); err != nil {
			return err
		}
		fmt.Printf("CSV written to %s\n", csvDir)
	}
	return nil
}

// listEngines prints the driver registry: every engine and the
// declarative tunables its spec files accept.
func listEngines(w io.Writer) {
	for _, info := range ptsbench.Engines() {
		fmt.Fprintf(w, "%s\n", info.Name)
		width := 0
		for _, t := range info.Tunables {
			if len(t.Name) > width {
				width = len(t.Name)
			}
		}
		for _, t := range info.Tunables {
			fmt.Fprintf(w, "  %-*s  %-8s  %s\n", width, t.Name, t.Kind, t.Doc)
		}
		fmt.Fprintln(w)
	}
}

// runExp executes a declarative experiment spec file: parse, expand the
// sweep grid, run the cells concurrently, render.
func runExp(specPath string, quick bool, csvDir, jsonOut string, workers int) error {
	start := time.Now()
	data, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	exp, err := ptsbench.ParseExperiment(data)
	if err != nil {
		return err
	}
	if exp.Name == "" {
		// Resolve the fallback before expansion so cell names and the
		// report label agree.
		exp.Name = strings.TrimSuffix(filepath.Base(specPath), filepath.Ext(specPath))
	}
	name := exp.Name
	specs, err := exp.Specs(quick)
	if err != nil {
		return err
	}
	fmt.Printf("running %d cells from %s\n", len(specs), specPath)
	results, err := ptsbench.RunGrid(specs, workers)
	if err != nil {
		return err
	}
	rep := ptsbench.ExpReport(name, specs, results)
	if err := rep.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	if csvDir != "" {
		if err := rep.WriteCSV(csvDir); err != nil {
			return err
		}
		fmt.Printf("CSV written to %s\n", csvDir)
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		if err := ptsbench.WriteResultsJSON(f, results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", jsonOut)
	}
	return nil
}

// benchOptions carries the bench subcommand's flags.
type benchOptions struct {
	quick                 bool
	out, against          string
	nsThresh, allocThresh float64
	allocGate             string
	gateThresh            float64
	cpuProfile            string
	memProfile            string
}

func runBench(o benchOptions) error {
	start := time.Now()
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	res, err := perf.RunSuite(perf.Options{Quick: o.quick})
	if err != nil {
		return err
	}
	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return err
		}
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("%-24s %14s %12s %14s %14s\n", "benchmark", "ns/op", "allocs/op", "B/op", "virt-s/wall-s")
	for _, m := range res.Metrics {
		extra := ""
		if m.VirtualPerWall > 0 {
			extra = fmt.Sprintf("%14.1f", m.VirtualPerWall)
		}
		fmt.Printf("%-24s %14.1f %12.2f %14.1f %s\n", m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, extra)
	}
	fmt.Printf("(suite completed in %v)\n", time.Since(start).Round(time.Millisecond))
	if o.out != "" {
		if err := res.WriteFile(o.out); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", o.out)
	}
	if o.against != "" {
		base, err := perf.ReadFile(o.against)
		if err != nil {
			return err
		}
		regs := perf.Compare(base, res, o.nsThresh, o.allocThresh)
		if o.allocGate != "" {
			var names []string
			for _, n := range strings.Split(o.allocGate, ",") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
			// A gated metric new to the suite is already flagged by
			// Compare's new-metric pass; keep one line per problem.
			seen := map[string]bool{}
			for _, r := range regs {
				if r.NoBaseline {
					seen[r.Name] = true
				}
			}
			for _, r := range perf.GateAllocs(base, res, names, o.gateThresh) {
				if r.NoBaseline && r.MissingFrom == "baseline" && seen[r.Name] {
					continue
				}
				regs = append(regs, r)
			}
		}
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "REGRESSION:", r)
			}
			return fmt.Errorf("%d metric(s) regressed against %s", len(regs), o.against)
		}
		fmt.Printf("no regressions against %s (ns/op <= %.1fx, allocs/op <= %.1fx)\n",
			o.against, o.nsThresh, o.allocThresh)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ptsbench list
  ptsbench engines
  ptsbench run -figure figN [-engine lsm,btree,betree] [-scale N] [-quick] [-seed N] [-csv DIR]
  ptsbench exp -spec FILE [-quick] [-csv DIR] [-json FILE] [-workers N]
  ptsbench qdsweep [-scale N] [-quick] [-seed N] [-csv DIR]
  ptsbench crash -engine NAME [-shards N] [-ops N] [-keys N] [-seed N] [-trials N] [-replicas R] [-repl-mode chain|quorum] [-errors KINDS -error-prob P] [-cut-shard S -cut-write W] [-device sim|file] [-dir DIR]
  ptsbench devdiff [-engine NAME,NAME] [-ops N] [-keys N] [-seed N] [-dir DIR]
  ptsbench all [-quick] [-csv DIR]
  ptsbench bench [-quick] [-out FILE] [-against BASELINE] [-threshold N] [-alloc-gate M1,M2] [-cpuprofile FILE] [-memprofile FILE]`)
}
