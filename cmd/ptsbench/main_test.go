package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptsbench"
	"ptsbench/internal/crash"
)

// TestRunOneSmoke drives the CLI's core path end to end with a tiny
// spec: the qdsweep figure at a very coarse scale, rendered to stdout
// and written as CSV. This is the "does the binary actually work"
// guard; figure correctness is tested in internal/figures.
func TestRunOneSmoke(t *testing.T) {
	opts := ptsbench.FigureOptions{Quick: true, Scale: 2048, Seed: 1}
	dir := t.TempDir()
	if err := runOne("qdsweep", opts, dir); err != nil {
		t.Fatalf("runOne: %v", err)
	}
	csvs, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(csvs) == 0 {
		t.Fatal("no CSV files written")
	}
}

func TestRunOneUnknownFigure(t *testing.T) {
	if err := runOne("nope", ptsbench.FigureOptions{}, ""); err == nil {
		t.Fatal("unknown figure should error")
	}
}

// TestExpSmoke drives the declarative spec-file path end to end with
// the committed example file — the same invocation CI runs — so
// examples/specs can never silently rot: parse, expand, run the grid,
// render, write CSV and results JSON.
func TestExpSmoke(t *testing.T) {
	dir := t.TempDir()
	jsonOut := filepath.Join(dir, "results.json")
	spec := filepath.Join("..", "..", "examples", "specs", "smoke.json")
	if err := runExp(spec, true, dir, jsonOut, 0); err != nil {
		t.Fatalf("runExp: %v", err)
	}
	csvs, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(csvs) == 0 {
		t.Fatal("no CSV files written")
	}
	f, err := os.Open(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	results, err := ptsbench.ReadResultsJSON(f)
	if err != nil {
		t.Fatalf("results JSON unreadable: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("smoke spec should produce 3 cells (one per engine), got %d", len(results))
	}
	for _, res := range results {
		if res.Steady.ThroughputKOps <= 0 {
			t.Fatalf("cell %q measured no throughput", res.Spec.Name)
		}
	}
}

// TestExpExampleSpecsParse keeps every committed example spec file
// loadable and expandable.
func TestExpExampleSpecsParse(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "specs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected committed example specs, found %d", len(files))
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := ptsbench.ParseExperiment(data)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		specs, err := exp.Specs(true)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if len(specs) == 0 {
			t.Fatalf("%s expands to no cells", file)
		}
	}
}

func TestExpErrors(t *testing.T) {
	if err := runExp(filepath.Join(t.TempDir(), "missing.json"), true, "", "", 0); err == nil {
		t.Fatal("missing spec file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"engines": ["fractal"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runExp(bad, true, "", "", 0); err == nil {
		t.Fatal("unknown engine in spec file should error")
	}
}

// TestExpUnnamedSpecUsesFileName: a spec file without "name" labels its
// cells (and therefore its CSV artifacts) after the file, not a generic
// fallback, so two unnamed sweeps stay distinguishable.
func TestExpUnnamedSpecUsesFileName(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "mysweep.json")
	doc := `{"engines": ["btree"], "scale": 4096, "duration": "4m", "sample_every": "30s"}`
	if err := os.WriteFile(spec, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	csvDir := filepath.Join(dir, "csv")
	if err := runExp(spec, true, csvDir, "", 0); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(csvDir, "*mysweep*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("cell CSV names should carry the spec file's base name")
	}
}

// TestCrashSmoke drives the crash subcommand's path end to end with a
// small fixed-seed run per engine.
func TestCrashSmoke(t *testing.T) {
	for _, eng := range []string{"lsm", "btree", "betree"} {
		if err := runCrash(crash.Spec{Engine: eng, Shards: 2, Ops: 200, Seed: 11, Trials: 2}); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
	}
	if err := runCrash(crash.Spec{Engine: "fractal"}); err == nil {
		t.Fatal("unknown engine should error")
	}
}

// TestCrashErrorsSmoke drives the -errors trial path end to end: one
// error-plan run per engine, plus the malformed-kind error path.
func TestCrashErrorsSmoke(t *testing.T) {
	for _, eng := range []string{"lsm", "btree", "betree"} {
		if err := runCrash(crash.Spec{
			Engine: eng, Ops: 200, Seed: 11, Replicas: 2,
			ErrorKinds: []string{"eio", "fsynclie"}, ErrorProb: 0.05,
		}); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
	}
	if err := runCrash(crash.Spec{
		Engine: "lsm", Replicas: 2, ErrorKinds: []string{"gremlins"},
	}); err == nil {
		t.Fatal("unknown error kind should error")
	}
}

// TestEnginesListing pins the `ptsbench engines` output shape: every
// registered engine appears with at least one documented tunable.
func TestEnginesListing(t *testing.T) {
	var buf bytes.Buffer
	listEngines(&buf)
	out := buf.String()
	for _, name := range []string{"lsm", "btree", "betree"} {
		if !strings.Contains(out, name+"\n") {
			t.Fatalf("engine %q missing from listing:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "epsilon") || !strings.Contains(out, "memtable_bytes") {
		t.Fatalf("tunables missing from listing:\n%s", out)
	}
}
