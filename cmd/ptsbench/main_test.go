package main

import (
	"path/filepath"
	"testing"

	"ptsbench"
)

// TestRunOneSmoke drives the CLI's core path end to end with a tiny
// spec: the qdsweep figure at a very coarse scale, rendered to stdout
// and written as CSV. This is the "does the binary actually work"
// guard; figure correctness is tested in internal/figures.
func TestRunOneSmoke(t *testing.T) {
	opts := ptsbench.FigureOptions{Quick: true, Scale: 2048, Seed: 1}
	dir := t.TempDir()
	if err := runOne("qdsweep", opts, dir); err != nil {
		t.Fatalf("runOne: %v", err)
	}
	csvs, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(csvs) == 0 {
		t.Fatal("no CSV files written")
	}
}

func TestRunOneUnknownFigure(t *testing.T) {
	if err := runOne("nope", ptsbench.FigureOptions{}, ""); err == nil {
		t.Fatal("unknown figure should error")
	}
}
