// Betree: a walk-through of the Bε-tree engine — the third tree
// structure, sitting between the write-optimized LSM and the
// read-optimized B+Tree.
//
// A Bε-tree is a copy-on-write B-tree whose interior nodes spend most
// of their capacity on per-child MESSAGE BUFFERS: a put appends a
// message to the root's buffer, and when a buffer fills, the busiest
// child's batch of messages is pushed one level down. Messages reach
// the leaves in batches, so each leaf write-back carries many updates —
// the write-amplification win — while point reads still descend one
// root-to-leaf path, merging buffered messages on the way (a fresh
// write is answered straight from a buffer, without leaf I/O).
//
// The ε knob splits each interior node's byte budget: NodeBytes^ε goes
// to pivots (fanout), the rest to buffers. Small ε = big buffers, more
// batching, deeper tree. ε = 1 = all pivots, no buffers — a B+Tree.
//
// This example drives the same update-heavy churn through three ε
// settings and prints the flush batching factor and the write
// amplification each produces. Run the full trade-off figure with:
//
//	go run ./cmd/ptsbench run -figure betradeoff
package main

import (
	"fmt"
	"log"

	"ptsbench"
)

func main() {
	fmt.Println("Bε-tree: update churn under three buffer fractions (ε)")
	fmt.Println()
	fmt.Printf("%-6s %10s %12s %14s %10s %8s\n",
		"ε", "depth", "flushes", "msgs/flush", "WA-A", "time")
	for _, eps := range []float64{0.4, 0.6, 1.0} {
		runOne(eps)
	}
	fmt.Println()
	fmt.Println("Smaller ε batches more messages per leaf write-back (lower WA-A,")
	fmt.Println("cheaper updates); ε = 1.0 degenerates to a B+Tree: no buffers, a")
	fmt.Println("page write per leaf touch. Unlike LSM compaction, a buffer flush")
	fmt.Println("moves a key-contiguous batch into ONE child — no rewriting of")
	fmt.Println("unrelated cold data — so the LBA footprint stays as confined as")
	fmt.Println("the B+Tree's (see fig4).")
}

func runOne(eps float64) {
	// A 1 GiB simulated enterprise SSD. Accounting mode (no content
	// store): values are charged but not materialized, like the
	// benchmark harness runs.
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{CapacityBytes: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}

	cfg := ptsbench.NewBetreeConfig(64 << 20)
	cfg.Epsilon = eps
	tr, err := ptsbench.OpenBetree(stack, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Load 16k keys, then update-churn 4x over them: the same shape as
	// the paper's steady-state phase.
	var now ptsbench.VirtualTime
	const keys = 16384
	for id := uint64(0); id < keys; id++ {
		if now, err = tr.Put(now, ptsbench.EncodeKey(id), nil, 1024); err != nil {
			log.Fatal(err)
		}
	}
	rng := uint64(1)
	for i := 0; i < 4*keys; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407 // LCG: deterministic churn
		id := (rng >> 33) % keys
		if now, err = tr.Put(now, ptsbench.EncodeKey(id), nil, 1024); err != nil {
			log.Fatal(err)
		}
	}
	if now, err = tr.FlushAll(now); err != nil {
		log.Fatal(err)
	}

	io := tr.IO()
	stats := tr.Stats()
	dev := stack.BlockDev.Counters()
	batching := 0.0
	if io.BufferFlushes > 0 {
		batching = float64(io.FlushedMessages) / float64(io.BufferFlushes)
	}
	waa := float64(dev.BytesWritten) / float64(stats.UserBytesWritten)
	fmt.Printf("%-6.1f %10d %12d %14.1f %10.2f %8v\n",
		eps, tr.Depth(), io.BufferFlushes, batching, waa, now)
}
