// Costplanner demonstrates the paper's pitfalls #5 and #6: picking a
// storage engine by throughput alone ignores space amplification, which
// determines how many drives a deployment needs. The example measures
// both engines (short runs), then reports which one needs fewer drives
// across a dataset-size / target-throughput grid — the paper's Fig 6c
// analysis.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"ptsbench"
)

func main() {
	measure := func(engine ptsbench.EngineKind) *ptsbench.Result {
		res, err := ptsbench.Run(ptsbench.Spec{
			Engine:   engine,
			Initial:  ptsbench.Preconditioned,
			Scale:    256,
			Duration: 90 * time.Minute,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.OutOfSpace {
			log.Fatal("out of space during measurement")
		}
		return res
	}

	fmt.Println("measuring both engines on a preconditioned device...")
	lsmRes := measure(ptsbench.LSM)
	btRes := measure(ptsbench.BTree)

	driveBytes := float64(ptsbench.DefaultDevice().CapacityBytes)
	type option struct {
		name     string
		kops     float64
		maxBytes float64
	}
	options := []option{
		{"LSM (RocksDB-like)", lsmRes.ScaledKOps, driveBytes / lsmRes.SpaceAmp},
		{"B+Tree (WiredTiger-like)", btRes.ScaledKOps, driveBytes / btRes.SpaceAmp},
	}
	for _, o := range options {
		fmt.Printf("  %-26s %.2f KOps/drive, %.0f GB usable/drive\n",
			o.name, o.kops, o.maxBytes/(1<<30))
	}

	drives := func(o option, dataset, target float64) int {
		n := math.Max(math.Ceil(dataset/o.maxBytes), math.Ceil(target/o.kops))
		return int(math.Max(n, 1))
	}

	fmt.Println("\ncheaper engine by deployment point (drives needed):")
	fmt.Printf("  %-14s", "target\\dataset")
	datasets := []float64{1, 2, 3, 4, 5}
	for _, tb := range datasets {
		fmt.Printf("  %6.0fTB", tb)
	}
	fmt.Println()
	for target := 25.0; target >= 5; target -= 5 {
		fmt.Printf("  %-9.0f KOps", target)
		for _, tb := range datasets {
			dataset := tb * (1 << 40)
			a := drives(options[0], dataset, target)
			b := drives(options[1], dataset, target)
			cell := "="
			switch {
			case a < b:
				cell = "LSM"
			case b < a:
				cell = "B+T"
			}
			fmt.Printf("  %6s", fmt.Sprintf("%s", cell))
		}
		fmt.Println()
	}
	fmt.Println("\nLSM wins when throughput demand dominates; the B+Tree's")
	fmt.Println("lower space amplification wins for capacity-bound deployments.")
}
