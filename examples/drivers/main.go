// Command drivers demonstrates the engine driver registry: every tree
// structure in the laboratory is reachable by name through one generic
// code path — no per-engine types, no switch statements. The program
// lists the registered drivers with their declarative tunables, then
// opens each engine by name on its own simulated stack, writes and
// reads through the generic handle, closes it, and recovers it from
// the simulated device — including one engine opened with declarative
// knob overrides, the same strings a `ptsbench exp` spec file carries.
package main

import (
	"fmt"
	"log"

	"ptsbench"
)

func main() {
	fmt.Println("== registered engine drivers ==")
	for _, info := range ptsbench.Engines() {
		fmt.Printf("%-8s %d tunables (e.g. %s)\n",
			info.Name, len(info.Tunables), info.Tunables[0].Name)
	}

	// One generic loop drives every engine; adding a fourth driver to
	// the registry would make it appear here with no code change.
	for _, info := range ptsbench.Engines() {
		stack, err := ptsbench.NewStack(ptsbench.StackOptions{
			CapacityBytes: 256 << 20,
			ContentStore:  true, // retain written bytes so recovery can verify reads
		})
		if err != nil {
			log.Fatal(err)
		}
		eng, err := ptsbench.OpenEngine(stack, info.Name, 32<<20, nil, 1)
		if err != nil {
			log.Fatal(err)
		}
		var now ptsbench.VirtualTime
		const keys = 500
		for id := uint64(0); id < keys; id++ {
			value := fmt.Sprintf("value-%d", id)
			if now, err = eng.Put(now, ptsbench.EncodeKey(id), []byte(value), 0); err != nil {
				log.Fatalf("%s: put: %v", info.Name, err)
			}
		}
		done, _, found, err := eng.Get(now, ptsbench.EncodeKey(keys/2))
		if err != nil || !found {
			log.Fatalf("%s: get: found=%v err=%v", info.Name, found, err)
		}
		if now, err = eng.Close(done); err != nil {
			log.Fatalf("%s: close: %v", info.Name, err)
		}

		// Recover the same store from the simulated device, still by name.
		re, rnow, err := ptsbench.RecoverEngine(stack, info.Name, 32<<20, nil, 2, now)
		if err != nil {
			log.Fatalf("%s: recover: %v", info.Name, err)
		}
		_, v, found, err := re.Get(rnow, ptsbench.EncodeKey(keys/2))
		if err != nil || !found {
			log.Fatalf("%s: recovered get: found=%v err=%v", info.Name, found, err)
		}
		fmt.Printf("\n%s: wrote %d keys in %v virtual, recovered in %v, key %d reads %q\n",
			info.Name, keys, now, rnow-now, keys/2, v)
	}

	// Declarative tunables travel as strings — the exact format spec
	// files use — so this configuration could be pasted into JSON.
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{CapacityBytes: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := ptsbench.OpenEngine(stack, "betree", 32<<20, map[string]string{
		"epsilon":             "0.4", // large buffers: write-optimized
		"checkpoint_interval": "30s",
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	var now ptsbench.VirtualTime
	for id := uint64(0); id < 2000; id++ {
		if now, err = tuned.Put(now, ptsbench.EncodeKey(id), nil, 4000); err != nil {
			log.Fatal(err)
		}
	}
	stats := tuned.Stats()
	fmt.Printf("\nbetree with epsilon=0.4: %d puts, %d MB accepted, virtual time %v\n",
		stats.Puts, stats.UserBytesWritten>>20, now)
}
