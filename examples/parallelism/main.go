// Parallelism: sweep host queue depth against the internal channel/way
// geometry of a simulated SSD, using the concurrent experiment grid.
//
// The scenario reproduces the observation that motivates queue-depth-
// aware benchmarking (Didona et al. §6, and Roh et al.'s B+-tree work):
// a tree structure evaluated at queue depth 1 uses a single internal
// lane of the drive, so its measured throughput says little about what
// the same structure sustains when the host keeps the lane array busy.
// Every (engine, queue-depth) cell below is an independent deterministic
// experiment; core.RunGrid runs them concurrently across host cores and
// the results are identical to running each cell alone.
package main

import (
	"fmt"
	"log"
	"time"

	"ptsbench"
)

func main() {
	// A 4-channel x 4-way drive: 16 internal lanes. Logical pages
	// stripe round-robin over the lanes, each lane serving 1/16 of the
	// device bandwidth.
	device := ptsbench.DefaultDevice()
	device.Profile = device.Profile.WithParallelism(4, 4)

	depths := []int{1, 2, 4, 8, 16, 32}
	engines := []ptsbench.EngineKind{ptsbench.LSM, ptsbench.BTree}

	var specs []ptsbench.Spec
	for _, eng := range engines {
		for _, qd := range depths {
			specs = append(specs, ptsbench.Spec{
				Name:         fmt.Sprintf("%v-qd%d", eng, qd),
				Device:       device,
				Engine:       eng,
				Scale:        2048, // coarse: this is a demo, not a figure
				QueueDepth:   qd,
				ReadFraction: 0.95, // read-heavy: reads overlap, writes don't
				Duration:     30 * time.Minute,
				Seed:         1,
			})
		}
	}

	results, err := ptsbench.RunGrid(specs, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("queue-depth sweep on %s (%d channels x %d ways = %d lanes)\n\n",
		device.Profile.Name, device.Profile.Channels, device.Profile.Ways,
		device.Profile.ParallelLanes())
	fmt.Printf("%-24s %4s %12s %8s %14s %14s\n",
		"cell", "QD", "mean KOps/s", "gain", "p50 read", "p99 read")
	cell := 0
	for range engines {
		base := 0.0
		for _, qd := range depths {
			res := results[cell]
			cell++
			kops := res.MeanScaledKOps()
			if qd == 1 {
				base = kops
			}
			speedup := "-"
			if base > 0 && qd > 1 {
				speedup = fmt.Sprintf("%.1fx", kops/base)
			}
			fmt.Printf("%-24s %4d %12.2f %8s %14v %14v\n",
				res.Spec.Name, qd, kops, speedup, res.Latency.P50, res.Latency.P99)
		}
		fmt.Println()
	}
	fmt.Println("throughput grows with queue depth until the lane array saturates;")
	fmt.Println("past that point extra concurrency only adds queueing latency.")
}
