// Quickstart: open the two storage engines on a simulated flash stack,
// write and read real data, and inspect the I/O accounting that the
// benchmark harness is built on.
package main

import (
	"fmt"
	"log"

	"ptsbench"
)

func main() {
	// A 1 GiB simulated enterprise SSD with a content store, so reads
	// return real bytes.
	stack, err := ptsbench.NewStack(ptsbench.StackOptions{
		CapacityBytes: 1 << 30,
		ContentStore:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Open the RocksDB-like LSM engine sized for a ~64 MiB dataset.
	db, err := ptsbench.OpenLSM(stack, ptsbench.NewLSMConfig(64<<20), 42)
	if err != nil {
		log.Fatal(err)
	}

	// All engine calls thread virtual time: they take the current
	// virtual timestamp and return the operation's completion time.
	var now ptsbench.VirtualTime
	for id := uint64(0); id < 1000; id++ {
		value := fmt.Sprintf("value-for-key-%d", id)
		now, err = db.Put(now, ptsbench.EncodeKey(id), []byte(value), 0)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Read a few keys back.
	for _, id := range []uint64{0, 500, 999} {
		var val []byte
		var found bool
		now, val, found, err = db.Get(now, ptsbench.EncodeKey(id))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("key %3d -> %q (found=%v)\n", id, val, found)
	}

	// Delete and verify.
	now, err = db.Delete(now, ptsbench.EncodeKey(500))
	if err != nil {
		log.Fatal(err)
	}
	now, _, found, err := db.Get(now, ptsbench.EncodeKey(500))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key 500 after delete: found=%v\n", found)

	// Flush everything and look at the stack's accounting: this is the
	// instrumentation the paper's metrics are computed from.
	now, err = db.FlushAll(now)
	if err != nil {
		log.Fatal(err)
	}
	stats := db.Stats()
	dev := stack.BlockDev.Counters()
	smart := stack.SSD.Stats()
	fmt.Printf("\nvirtual time elapsed: %v\n", now)
	fmt.Printf("user puts: %d, user bytes: %d\n", stats.Puts, stats.UserBytesWritten)
	fmt.Printf("host writes (iostat): %d bytes in %d ops\n", dev.BytesWritten, dev.WriteOps)
	fmt.Printf("flash programs (SMART): %d pages, WA-D %.3f\n",
		smart.FlashPagesWritten, smart.WAD())
	fmt.Printf("WA-A: %.2f\n", float64(dev.BytesWritten)/float64(stats.UserBytesWritten))
	fmt.Printf("engine disk usage: %d bytes\n", db.DiskUsageBytes())
}
