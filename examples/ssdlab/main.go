// Ssdlab drives the flash simulator directly (no storage engine) to show
// the device-level mechanics behind the paper's pitfalls: how the
// initial state of the drive (pitfall #3) and utilization (pitfall #4)
// shape garbage collection and device-level write amplification.
package main

import (
	"fmt"
	"log"

	"ptsbench"
	"ptsbench/internal/flash"
	"ptsbench/internal/sim"
)

func newDevice() *flash.Device {
	profile := ptsbench.ProfileSSD1().Scaled(256)
	dev, err := flash.NewDevice(flash.Config{
		LogicalBytes:  512 << 20,
		PageSize:      4096,
		PagesPerBlock: 256,
		Profile:       profile,
	})
	if err != nil {
		log.Fatal(err)
	}
	return dev
}

// randomOverwrite issues uniformly random single-page writes over the
// first `frac` of the LBA space, totalling `multiple` times that region.
func randomOverwrite(dev *flash.Device, rng *sim.RNG, frac float64, multiple int) {
	pages := int64(float64(dev.LogicalPages()) * frac)
	var now sim.Duration
	for i := int64(0); i < pages*int64(multiple); i++ {
		now = dev.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
	}
}

func main() {
	fmt.Println("== pitfall #3: initial state of the drive ==")
	// Trimmed: first writes land on erased blocks; GC has nothing to do
	// until the free pool drains.
	trimmed := newDevice()
	rng := sim.NewRNG(1)
	base := trimmed.Stats()
	randomOverwrite(trimmed, rng, 0.5, 1)
	delta := trimmed.Stats().Sub(base)
	fmt.Printf("trimmed drive, first pass over 50%% of LBAs:       WA-D %.2f\n", delta.WAD())

	// Preconditioned: every LBA holds data, so the very first write is
	// an overwrite and GC starts immediately.
	prec := newDevice()
	prec.Precondition(sim.NewRNG(2), 2)
	base = prec.Stats()
	randomOverwrite(prec, sim.NewRNG(1), 0.5, 1)
	delta = prec.Stats().Sub(base)
	fmt.Printf("preconditioned drive, same pass:                  WA-D %.2f\n", delta.WAD())

	fmt.Println("\n== pitfall #4: utilization drives GC cost ==")
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		dev := newDevice()
		rng := sim.NewRNG(3)
		// Fill the region, then overwrite it 3x to reach GC steady
		// state.
		pages := int64(float64(dev.LogicalPages()) * frac)
		var now sim.Duration
		for p := int64(0); p < pages; p += 256 {
			n := int64(256)
			if p+n > pages {
				n = pages - p
			}
			now = dev.SubmitWrite(now, p, int(n))
		}
		base := dev.Stats()
		randomOverwrite(dev, rng, frac, 3)
		delta := dev.Stats().Sub(base)
		fmt.Printf("LBA space used: %3.0f%%   steady WA-D %.2f   relocations/KB written %.2f\n",
			frac*100, delta.WAD(),
			float64(delta.Relocations)*4096/float64(delta.HostPagesWritten*4096)*1000/1000)
	}

	fmt.Println("\n== pitfall #6: software over-provisioning ==")
	// Leaving part of the LBA space unwritten acts as extra OP.
	for _, used := range []float64{1.0, 0.75} {
		dev := newDevice()
		dev.Precondition(sim.NewRNG(4), 2)
		if used < 1 {
			// Trim the tail 25% — the software-OP partition.
			start := int64(float64(dev.LogicalPages()) * used)
			dev.Trim(start, int(dev.LogicalPages()-start))
		}
		base := dev.Stats()
		randomOverwrite(dev, sim.NewRNG(5), used, 2)
		delta := dev.Stats().Sub(base)
		fmt.Printf("writable fraction %3.0f%%: steady WA-D %.2f\n", used*100, delta.WAD())
	}
}
