// Steadystate demonstrates the paper's pitfall #1 ("running short
// tests"): the throughput of an LSM engine over the first minutes of a
// run is a poor predictor of its sustainable rate. The example runs the
// paper's default workload and contrasts the first 15 minutes with the
// final quarter, applying the paper's own steady-state guidelines (CUSUM
// and the 3x-capacity rule).
package main

import (
	"fmt"
	"log"
	"time"

	"ptsbench"
)

func main() {
	spec := ptsbench.Spec{
		Engine:   ptsbench.LSM,
		Initial:  ptsbench.Trimmed,
		Scale:    256, // coarse and fast; shapes are scale-invariant
		Duration: 210 * time.Minute,
		Seed:     1,
	}
	fmt.Println("running the paper's default workload (this takes a few seconds)...")
	res, err := ptsbench.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	if res.OutOfSpace {
		log.Fatal("engine ran out of space")
	}

	scale := float64(spec.Scale)
	tMin, kops := res.Series.ThroughputSeries(60) // 10-minute windows
	fmt.Println("\nthroughput over time (10-minute averages):")
	for i := range tMin {
		fmt.Printf("  t=%5.0f min  %6.2f KOps/s\n", tMin[i], kops[i]*scale)
	}

	early := kops[0] * scale
	steady := res.ScaledKOps
	fmt.Printf("\nfirst window:  %.2f KOps/s\n", early)
	fmt.Printf("final quarter: %.2f KOps/s\n", steady)
	fmt.Printf("a short test would overestimate sustained throughput by %.1fx\n",
		early/steady)

	fmt.Printf("\nwhy: WA-A grew to %.1f and WA-D to %.2f during the run\n",
		res.Steady.WAA, res.Steady.WAD)
	fmt.Printf("end-to-end write amplification: %.1f\n", res.Steady.EndToEndWA)
}
