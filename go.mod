module ptsbench

go 1.21
