package betree

import (
	"bytes"
	"errors"
	"time"

	"ptsbench/internal/cowtree"
	"ptsbench/internal/extalloc"
	"ptsbench/internal/extfs"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("betree: tree is closed")

// metaMagic tags the checkpoint metadata files ("BEMT").
const metaMagic = 0x42454D54

// coreConfig maps the engine configuration onto the shared
// checkpoint/recovery core's knobs. The naming fields reproduce the
// pre-extraction on-device footprint exactly.
func coreConfig(cfg Config) cowtree.Config {
	return cowtree.Config{
		Name:                   "betree",
		MetaPrefix:             "bemeta",
		MetaMagic:              metaMagic,
		JournalPrefix:          "bjournal-",
		ChunkPages:             cfg.ChunkPages,
		CheckpointInterval:     cfg.CheckpointInterval,
		CheckpointPendingBytes: cfg.CheckpointPendingBytes,
		Content:                cfg.Content,
		DisableJournal:         cfg.DisableJournal,
	}
}

// Tree is the Bε-tree engine. The copy-on-write checkpoint/recovery
// discipline lives in the embedded cowtree core; the engine implements
// cowtree.RecoveryEngine over its node type.
type Tree struct {
	cfg       Config
	pivotMax  int // cached cfg.pivotBudget()
	bufferMax int // cached cfg.bufferBudget()
	fs        *extfs.FS

	file *extfs.File
	bm   *extalloc.Manager

	core cowtree.Core

	nodes  []*node // indexed by nodeID; ids are allocated sequentially
	root   nodeID
	nextID nodeID

	// Cache state: resident leaves in an LRU list (head = MRU). Interior
	// nodes (with their buffers) are pinned resident.
	lruHead, lruTail nodeID
	residentBytes    int64

	// overfull queues interior nodes whose buffer exceeded its budget
	// through an interior split (the split partitions the buffer, and one
	// half can keep most of it); the apply path drains it.
	overfull []nodeID

	// mem bundles the key/value arena and the recycled message-array
	// pool; slab backs node structs. Node structs and retained keys are
	// immortal in this design (ids are never reused), so bump and pool
	// allocation keep the steady-state op path allocation-free.
	mem  mem
	slab cowtree.Slab[node]

	writeBuf []byte // reused serialization image (content mode)

	seq    uint64
	stats  kv.EngineStats
	io     IOStats
	closed bool
}

// IOStats exposes internal activity counters.
type IOStats struct {
	CacheHits      int64
	CacheMisses    int64
	Evictions      int64
	EvictionWrites int64
	Checkpoints    int64
	CheckpointPgs  int64
	LeafSplits     int64
	InteriorSplits int64

	// BufferFlushes counts batch pushes of messages one level down;
	// FlushedMessages is the total messages moved. Their ratio is the
	// batching factor the ε knob trades against fanout.
	BufferFlushes   int64
	FlushedMessages int64
	// BufferHits counts Gets answered from an interior buffer without
	// touching a leaf (no read I/O).
	BufferHits int64
}

// Open creates a Bε-tree on fs with a fresh collection file.
func Open(fs *extfs.FS, cfg Config) (*Tree, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	f, err := fs.Create("collection.be")
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:       cfg,
		pivotMax:  cfg.pivotBudget(),
		bufferMax: cfg.bufferBudget(),
		fs:        fs,
		file:      f,
		bm:        extalloc.New(f, int64(cfg.LeafPageBytes/fs.PageSize())*16),
		nodes:     make([]*node, 1, 64), // index 0 is nilNode
	}
	t.core.Init(t, fs, f, t.bm, coreConfig(cfg))
	rootLeaf := t.newNode(true)
	rootLeaf.parent = nilNode
	t.root = rootLeaf.id
	t.admit(rootLeaf)
	if err := t.core.StartJournal(); err != nil {
		return nil, err
	}
	return t, nil
}

// registerNode adds a freshly allocated node to the id-indexed slice.
func (t *Tree) registerNode(n *node) {
	if int(n.id) != len(t.nodes) {
		panic("betree: node ids must be registered sequentially")
	}
	t.nodes = append(t.nodes, n)
}

func (t *Tree) newNode(leaf bool) *node {
	t.nextID++
	n := t.slab.Get()
	n.id = t.nextID
	n.leaf = leaf
	n.serialized = pageHeaderBytes
	if !leaf {
		n.pivotBytes = pageHeaderBytes
	}
	t.registerNode(n)
	t.markDirty(n)
	return n
}

func (t *Tree) markDirty(n *node) {
	if n.dirty {
		return
	}
	n.dirty = true
	t.core.TrackDirty(n.id)
}

func (t *Tree) clearDirty(n *node) {
	if n.dirty {
		n.dirty = false
		t.core.NoteClean()
	}
	// The node's entry in the core's transition log stays behind;
	// checkpoint snapshots filter on the dirty flag.
}

// ---- cowtree.Engine implementation ----

// Root implements cowtree.Engine.
func (t *Tree) Root() cowtree.NodeID { return t.root }

// Parent implements cowtree.Engine.
func (t *Tree) Parent(id cowtree.NodeID) cowtree.NodeID { return t.nodes[id].parent }

// Leaf implements cowtree.Engine.
func (t *Tree) Leaf(id cowtree.NodeID) bool { return t.nodes[id].leaf }

// Children implements cowtree.Engine.
func (t *Tree) Children(id cowtree.NodeID) []cowtree.NodeID { return t.nodes[id].children }

// Dirty implements cowtree.Engine.
func (t *Tree) Dirty(id cowtree.NodeID) bool { return t.nodes[id].dirty }

// NeedsWrite implements cowtree.Engine.
func (t *Tree) NeedsWrite(id cowtree.NodeID) bool {
	n := t.nodes[id]
	return n.dirty || n.disk.Pages == 0
}

// AppendNeedsWrite implements cowtree.Engine.
func (t *Tree) AppendNeedsWrite(id cowtree.NodeID, dst []cowtree.NodeID) []cowtree.NodeID {
	for _, c := range t.nodes[id].children {
		if n := t.nodes[c]; n.dirty || n.disk.Pages == 0 {
			dst = append(dst, c)
		}
	}
	return dst
}

// Live implements cowtree.Engine (nodes are never deallocated).
func (t *Tree) Live(id cowtree.NodeID) bool { return t.nodes[id] != nil }

// DiskExtent implements cowtree.Engine.
func (t *Tree) DiskExtent(id cowtree.NodeID) cowtree.Extent { return t.nodes[id].disk }

// SerializedBytes implements cowtree.Engine.
func (t *Tree) SerializedBytes(id cowtree.NodeID) int { return t.nodes[id].serialized }

// MarkDirty implements cowtree.Engine.
func (t *Tree) MarkDirty(id cowtree.NodeID) { t.markDirty(t.nodes[id]) }

// WriteNode implements cowtree.Engine.
func (t *Tree) WriteNode(now sim.Duration, id cowtree.NodeID) (sim.Duration, error) {
	return t.writeNode(now, t.nodes[id])
}

// Seq implements cowtree.Engine.
func (t *Tree) Seq() uint64 { return t.seq }

// Config returns the validated configuration.
func (t *Tree) Config() Config { return t.cfg }

// Stats implements kv.Engine.
func (t *Tree) Stats() kv.EngineStats { return t.stats }

// IO returns internal activity counters.
func (t *Tree) IO() IOStats {
	io := t.io
	cio := t.core.IO()
	io.Checkpoints = cio.Checkpoints
	io.CheckpointPgs = cio.CheckpointPgs
	return io
}

// DiskUsageBytes implements kv.Engine.
func (t *Tree) DiskUsageBytes() int64 { return t.fs.UsedBytes() }

// Err returns the sticky fatal error, if any.
func (t *Tree) Err() error { return t.core.Err() }

// ---- cache (LRU over resident leaves; interiors pinned) ----

func (t *Tree) admit(n *node) {
	if n.resident {
		t.touch(n)
		return
	}
	n.resident = true
	n.lruOlder = t.lruHead
	n.lruNewer = nilNode
	if t.lruHead != nilNode {
		t.nodes[t.lruHead].lruNewer = n.id
	}
	t.lruHead = n.id
	if t.lruTail == nilNode {
		t.lruTail = n.id
	}
	t.residentBytes += int64(n.serialized)
}

func (t *Tree) touch(n *node) {
	if t.lruHead == n.id {
		return
	}
	if n.lruNewer != nilNode {
		t.nodes[n.lruNewer].lruOlder = n.lruOlder
	}
	if n.lruOlder != nilNode {
		t.nodes[n.lruOlder].lruNewer = n.lruNewer
	}
	if t.lruTail == n.id {
		t.lruTail = n.lruNewer
	}
	n.lruOlder = t.lruHead
	n.lruNewer = nilNode
	if t.lruHead != nilNode {
		t.nodes[t.lruHead].lruNewer = n.id
	}
	t.lruHead = n.id
}

func (t *Tree) unlink(n *node) {
	if !n.resident {
		return
	}
	if n.lruNewer != nilNode {
		t.nodes[n.lruNewer].lruOlder = n.lruOlder
	}
	if n.lruOlder != nilNode {
		t.nodes[n.lruOlder].lruNewer = n.lruNewer
	}
	if t.lruHead == n.id {
		t.lruHead = n.lruOlder
	}
	if t.lruTail == n.id {
		t.lruTail = n.lruNewer
	}
	n.resident = false
	n.lruNewer, n.lruOlder = nilNode, nilNode
	t.residentBytes -= int64(n.serialized)
}

// evictToFit writes back and drops LRU leaves until the cache fits,
// charging the eviction I/O to the foreground.
func (t *Tree) evictToFit(now sim.Duration) (sim.Duration, error) {
	for t.residentBytes > t.cfg.CacheBytes {
		victimID := t.lruTail
		if victimID == nilNode {
			break
		}
		victim := t.nodes[victimID]
		if victim.id == t.root {
			break // never evict a root leaf (pre-first-split only)
		}
		t.unlink(victim)
		if victim.dirty {
			var err error
			now, err = t.writeNode(now, victim)
			if err != nil {
				t.core.Fail(err)
				return now, err
			}
			t.io.EvictionWrites++
		}
		t.io.Evictions++
	}
	return now, nil
}

// writeNode reconciles a node to a fresh extent (copy-on-write). The old
// location is released lazily at the next checkpoint commit.
func (t *Tree) writeNode(now sim.Duration, n *node) (sim.Duration, error) {
	ps := t.fs.PageSize()
	np := int64((n.serialized + ps - 1) / ps)
	if n.disk.Pages > 0 {
		t.bm.ReleaseDeferred(n.disk)
	}
	ext, err := t.bm.Alloc(np)
	if err != nil {
		return now, err
	}
	var data []byte
	if t.cfg.Content {
		data = t.serializeImage(n, int(np)*ps)
	}
	done, err := t.file.WriteAt(now, ext.Start, int(np), data)
	if err != nil {
		return now, err
	}
	n.disk = ext
	n.everOnDisk = true
	t.clearDirty(n)
	if n.parent != nilNode {
		t.markDirty(t.nodes[n.parent])
	}
	return done, nil
}

// serializeImage produces the zero-padded on-disk image of a node in the
// tree's reused write buffer (the block device copies written bytes, so
// aliasing the scratch across writes is safe).
func (t *Tree) serializeImage(n *node, size int) []byte {
	buf := serializeNode(t.writeBuf[:0], n, func(id nodeID) fileExtent {
		return t.nodes[id].disk
	})
	if cap(buf) < size {
		grown := make([]byte, size)
		copy(grown, buf)
		buf = grown
	} else {
		ln := len(buf)
		buf = buf[:size]
		clear(buf[ln:])
	}
	t.writeBuf = buf
	return buf
}

// loadLeaf charges the read I/O for a non-resident leaf and admits it.
func (t *Tree) loadLeaf(now sim.Duration, n *node) (sim.Duration, error) {
	if n.resident {
		t.io.CacheHits++
		t.touch(n)
		return now, nil
	}
	t.io.CacheMisses++
	if n.everOnDisk {
		var err error
		now, err = t.file.ReadAt(now, n.disk.Start, int(n.disk.Pages), nil)
		if err != nil {
			return now, err
		}
	}
	t.admit(n)
	return now, nil
}

// Put implements kv.Engine.
func (t *Tree) Put(now sim.Duration, key, value []byte, valueLen int) (sim.Duration, error) {
	return t.write(now, key, value, valueLen, false)
}

// Delete writes a tombstone message.
func (t *Tree) Delete(now sim.Duration, key []byte) (sim.Duration, error) {
	return t.write(now, key, nil, 0, true)
}

func (t *Tree) write(now sim.Duration, key, value []byte, valueLen int, del bool) (sim.Duration, error) {
	if t.closed {
		return now, ErrClosed
	}
	if err := t.core.Err(); err != nil {
		return now, err
	}
	if value != nil {
		valueLen = len(value)
	}
	t.core.Pump(now)
	now += t.cfg.CPUPutTime + time.Duration(valueLen)*t.cfg.CPUPerByte
	t.seq++

	if w := t.core.Journal(); w != nil {
		rec := wal.Record{Seq: t.seq, Key: key, Value: value, Deleted: del, ValueLen: valueLen}
		var err error
		now, err = w.Append(now, &rec, t.cfg.JournalSync && !t.core.GroupActive())
		if err != nil {
			t.core.Fail(err)
			return now, err
		}
	}

	// The caller reuses its key/value buffers, so the message does not
	// own its bytes: the node inserts clone them only when actually
	// retained (an overwrite keeps the resident key — no allocation).
	msg := makeMessage(key, value, t.seq, valueLen, del)
	var err error
	now, err = t.apply(now, msg, false)
	if err != nil {
		t.core.Fail(err)
		return now, err
	}
	t.stats.Puts++
	t.stats.UserBytesWritten += int64(len(key) + valueLen)

	now, err = t.evictToFit(now)
	if err != nil {
		return now, err
	}
	t.core.MaybeCheckpoint(now)
	return now, nil
}

// BeginGroupCommit implements engine.GroupCommitter: journal syncs are
// deferred until EndGroupCommit so a multi-client write batch commits
// with a single sync.
func (t *Tree) BeginGroupCommit() { t.core.BeginGroup() }

// EndGroupCommit closes the group and syncs the journal tail once.
func (t *Tree) EndGroupCommit(now sim.Duration) (sim.Duration, error) {
	now, err := t.core.EndGroup(now, t.cfg.JournalSync)
	if err != nil {
		t.core.Fail(err)
	}
	return now, err
}

// apply routes one message into the tree: into the root's buffer when
// the root is an interior node with buffer capacity (flushing down when
// it overflows), or straight into the root leaf / down the spine when
// buffering is off (ε = 1). owned is the message-byte ownership flag of
// the node inserts.
func (t *Tree) apply(now sim.Duration, msg message, owned bool) (sim.Duration, error) {
	root := t.nodes[t.root]
	if root.leaf {
		var err error
		now, err = t.loadLeaf(now, root)
		if err != nil {
			return now, err
		}
		delta := root.insertLeaf(&t.mem, msg, owned)
		t.residentBytes += int64(delta)
		t.markDirty(root)
		t.splitLeafToFit(root)
		return now, nil
	}
	if t.bufferMax <= 0 {
		// Degenerate B+Tree mode: descend to the leaf directly.
		return t.applyToLeaf(now, msg, owned)
	}
	root.bufInsert(&t.mem, msg, owned)
	t.markDirty(root)
	return t.drainOverflow(now)
}

// drainOverflow flushes the root and any split-orphaned interior nodes
// until every buffer fits its budget.
func (t *Tree) drainOverflow(now sim.Duration) (sim.Duration, error) {
	var err error
	for {
		root := t.nodes[t.root] // flushing can grow a new root
		if !root.leaf && root.bufBytes > t.bufferMax {
			if now, err = t.flushInterior(now, root); err != nil {
				return now, err
			}
			continue
		}
		if len(t.overfull) == 0 {
			return now, nil
		}
		id := t.overfull[len(t.overfull)-1]
		t.overfull = t.overfull[:len(t.overfull)-1]
		n := t.nodes[id]
		for !n.leaf && n.bufBytes > t.bufferMax {
			if now, err = t.flushInterior(now, n); err != nil {
				return now, err
			}
		}
	}
}

// applyToLeaf descends to the leaf covering the message key and inserts
// it there (the ε = 1 degenerate path).
func (t *Tree) applyToLeaf(now sim.Duration, msg message, owned bool) (sim.Duration, error) {
	n := t.nodes[t.root]
	for !n.leaf {
		n = t.nodes[n.children[n.childFor(msg.key)]]
	}
	var err error
	now, err = t.loadLeaf(now, n)
	if err != nil {
		return now, err
	}
	delta := n.insertLeaf(&t.mem, msg, owned)
	t.residentBytes += int64(delta)
	t.markDirty(n)
	t.splitLeafToFit(n)
	return now, nil
}

// flushInterior pushes the busiest child's batch of buffered messages
// one level down: into the child's buffer (interior child, recursing if
// that overflows) or applied to the child leaf. This is the Bε-tree's
// characteristic I/O pattern — each leaf write triggered downstream
// carries a whole batch of updates instead of one.
func (t *Tree) flushInterior(now sim.Duration, n *node) (sim.Duration, error) {
	if len(n.buf) == 0 {
		return now, nil
	}
	// Per-child contiguous ranges of the sorted buffer: boundaries[ci]
	// is the first message index routed to child ci.
	start, bestCi, bestBytes := 0, 0, -1
	var bestStart, bestEnd int
	for ci := 0; ci < len(n.children); ci++ {
		end := len(n.buf)
		if ci < len(n.seps) {
			end = searchMsgs(n.buf, n.seps[ci])
		}
		if end > start {
			b := 0
			for i := start; i < end; i++ {
				b += n.buf[i].bytes()
			}
			if b > bestBytes {
				bestBytes, bestCi = b, ci
				bestStart, bestEnd = start, end
			}
		}
		start = end
	}
	if bestBytes <= 0 {
		return now, nil
	}
	batch := n.buf[bestStart:bestEnd]
	child := t.nodes[n.children[bestCi]]
	t.io.BufferFlushes++
	t.io.FlushedMessages += int64(len(batch))

	var err error
	if child.leaf {
		now, err = t.loadLeaf(now, child)
		if err != nil {
			return now, err
		}
		delta := child.insertBatch(&t.mem, batch)
		if child.resident {
			t.residentBytes += int64(delta)
		}
		t.markDirty(child)
	} else {
		for i := range batch {
			child.bufInsert(&t.mem, batch[i], true)
		}
		t.markDirty(child)
	}

	// Remove the batch from this node's buffer.
	n.buf = append(n.buf[:bestStart], n.buf[bestEnd:]...)
	n.bufBytes -= bestBytes
	n.serialized -= bestBytes
	t.markDirty(n)

	if child.leaf {
		t.splitLeafToFit(child)
	} else {
		// One batch may not be enough when the child was already near
		// its budget; keep flushing (each pass removes the then-busiest
		// batch) until it fits.
		for child.bufBytes > t.bufferMax {
			now, err = t.flushInterior(now, child)
			if err != nil {
				return now, err
			}
		}
	}
	return now, nil
}

// splitLeafToFit splits an oversized leaf (repeatedly — a batch apply
// can leave it several times over budget) and propagates interior
// splits.
func (t *Tree) splitLeafToFit(leaf *node) {
	for leaf.serialized > t.cfg.LeafPageBytes && len(leaf.entries) > 1 {
		t.nextID++
		right, sep := leaf.splitLeaf(&t.mem, t.slab.Get(), t.nextID)
		t.registerNode(right)
		t.markDirty(right)
		t.markDirty(leaf)
		t.io.LeafSplits++
		if leaf.resident {
			t.admit(right)
			// admit charged right.serialized, but the moved entries were
			// already counted while they lived in leaf; only the new page
			// header is genuinely new.
			t.residentBytes -= int64(right.serialized - pageHeaderBytes)
		}
		t.insertIntoParent(leaf, sep, right)
		t.splitLeafToFit(right)
	}
}

// insertIntoParent links a new right sibling under the parent, splitting
// interiors (and growing a new root) as needed.
func (t *Tree) insertIntoParent(left *node, sep []byte, right *node) {
	if left.id == t.root {
		newRoot := t.newNode(false)
		newRoot.children = []nodeID{left.id, right.id}
		newRoot.seps = [][]byte{t.mem.arena.Clone(sep)}
		newRoot.recomputeSerialized()
		newRoot.refreshSepCache()
		left.parent = newRoot.id
		right.parent = newRoot.id
		t.root = newRoot.id
		return
	}
	parent := t.nodes[left.parent]
	idx := parent.childIndex(left.id)
	parent.insertChild(&t.mem, idx, sep, right.id)
	right.parent = parent.id
	t.markDirty(parent)
	if parent.pivotBytes > t.pivotMax {
		t.splitInteriorNode(parent)
	}
}

// splitInteriorNode splits an interior node (pivots and buffer) and
// reparents moved children. A half left over its buffer budget is
// queued for the apply path to flush.
func (t *Tree) splitInteriorNode(n *node) {
	t.nextID++
	right, promoted := n.splitInterior(&t.mem, t.slab.Get(), t.nextID)
	t.registerNode(right)
	t.markDirty(right)
	t.markDirty(n)
	t.io.InteriorSplits++
	for _, c := range right.children {
		t.nodes[c].parent = right.id
	}
	if n.bufBytes > t.bufferMax {
		t.overfull = append(t.overfull, n.id)
	}
	if right.bufBytes > t.bufferMax {
		t.overfull = append(t.overfull, right.id)
	}
	t.insertIntoParent(n, promoted, right)
}

// Get implements kv.Engine. The descent consults each interior node's
// buffer first: a buffered message is always newer than anything deeper
// (flushes only push messages down), so the topmost hit answers the
// lookup without leaf I/O.
func (t *Tree) Get(now sim.Duration, key []byte) (sim.Duration, []byte, bool, error) {
	if t.closed {
		return now, nil, false, ErrClosed
	}
	if err := t.core.Err(); err != nil {
		return now, nil, false, err
	}
	t.core.Pump(now)
	now += t.cfg.CPUGetTime
	t.stats.Gets++

	n := t.nodes[t.root]
	for !n.leaf {
		if m := n.bufGet(key); m != nil {
			t.io.BufferHits++
			if m.del {
				return now, nil, false, nil
			}
			t.stats.UserBytesRead += int64(len(key)) + int64(m.vlen)
			return now, m.val, true, nil
		}
		n = t.nodes[n.children[n.childFor(key)]]
	}
	var err error
	now, err = t.loadLeaf(now, n)
	if err != nil {
		t.core.Fail(err)
		return now, nil, false, err
	}
	now, err = t.evictToFit(now)
	if err != nil {
		return now, nil, false, err
	}
	i := n.search(key)
	if i >= len(n.entries) || !bytes.Equal(n.entries[i].key, key) || n.entries[i].del {
		return now, nil, false, nil
	}
	e := &n.entries[i]
	t.stats.UserBytesRead += int64(len(key)) + int64(e.vlen)
	return now, e.val, true, nil
}

// Scan returns up to limit live entries with key >= start, in key order,
// merging buffered messages (gathered from the interior nodes, which are
// pinned in memory and cost no I/O) with the leaf chain walk (which
// charges a read per leaf crossed).
func (t *Tree) Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error) {
	if t.closed {
		return now, nil, ErrClosed
	}
	if err := t.core.Err(); err != nil {
		return now, nil, err
	}
	t.core.Pump(now)
	now += t.cfg.CPUGetTime

	stream := t.newMsgStream(start)
	var out []kv.Entry

	emit := func(m *message) {
		if m.del {
			return
		}
		e := kv.Entry{
			Key:      append([]byte(nil), m.key...),
			ValueLen: int(m.vlen),
			Seq:      m.seq,
		}
		if m.val != nil {
			e.Value = append([]byte(nil), m.val...)
		}
		t.stats.UserBytesRead += int64(len(e.Key) + e.ValueLen)
		out = append(out, e)
		limit--
	}

	// Descend to the first leaf covering start.
	leaf := t.nodes[t.root]
	for !leaf.leaf {
		leaf = t.nodes[leaf.children[leaf.childFor(start)]]
	}
	idx := leaf.search(start)
	for limit > 0 && leaf != nil {
		var err error
		now, err = t.loadLeaf(now, leaf)
		if err != nil {
			t.core.Fail(err)
			return now, nil, err
		}
		for ; idx < len(leaf.entries) && limit > 0; idx++ {
			le := &leaf.entries[idx]
			// Messages strictly before this key come first; a message for
			// the same key shadows the leaf entry (it is newer).
			shadowed := false
			for limit > 0 {
				m := stream.peek()
				if m == nil {
					break
				}
				c := kv.CompareKeys(m.key, le.key)
				if c > 0 {
					break
				}
				if c == 0 {
					shadowed = true
				}
				emit(m)
				stream.consume(m.key)
			}
			if limit <= 0 {
				break
			}
			if !shadowed {
				emit(le)
			}
		}
		if now, err = t.evictToFit(now); err != nil {
			return now, nil, err
		}
		if limit <= 0 || leaf.next == nilNode {
			break
		}
		leaf = t.nodes[leaf.next]
		idx = 0
	}
	// Buffered keys beyond the last leaf entry.
	for limit > 0 {
		m := stream.peek()
		if m == nil {
			break
		}
		emit(m)
		stream.consume(m.key)
	}
	return now, out, nil
}

// msgStream lazily merges the interior buffers' sorted tails for a
// scan: one cursor per interior node with messages at key >= start.
// Nothing is copied or pre-sorted — a scan only pays for the messages
// it actually consumes (plus an O(cursors) min-scan per pull), so a
// limit-1 scan over a tree with megabytes of buffered messages stays
// cheap. Buffers are immutable for the duration of a Scan (only writes
// and flushes mutate them), so the cursors alias them safely.
type msgStream struct {
	cursors []msgCursor
}

type msgCursor struct {
	buf []message
	i   int
}

// newMsgStream walks the interior nodes whose key range can intersect
// [start, inf) — childFor(start) and everything to its right at each
// level — and opens a cursor into each non-empty buffer tail.
func (t *Tree) newMsgStream(start []byte) *msgStream {
	s := &msgStream{}
	var walk func(id nodeID)
	walk = func(id nodeID) {
		n := t.nodes[id]
		if n.leaf {
			return
		}
		if i := searchMsgs(n.buf, start); i < len(n.buf) {
			s.cursors = append(s.cursors, msgCursor{buf: n.buf, i: i})
		}
		for ci := n.childFor(start); ci < len(n.children); ci++ {
			walk(n.children[ci])
		}
	}
	walk(t.root)
	return s
}

// peek returns the next message — smallest key; for duplicate keys
// across levels, the newest (highest seq) version — without consuming
// it, or nil when the stream is exhausted.
func (s *msgStream) peek() *message {
	var best *message
	for ci := range s.cursors {
		c := &s.cursors[ci]
		if c.i >= len(c.buf) {
			continue
		}
		m := &c.buf[c.i]
		if best == nil {
			best = m
			continue
		}
		switch cmp := kv.CompareKeys(m.key, best.key); {
		case cmp < 0:
			best = m
		case cmp == 0 && m.seq > best.seq:
			best = m
		}
	}
	return best
}

// consume advances every cursor past key, discarding the shadowed older
// duplicates along with the consumed message.
func (s *msgStream) consume(key []byte) {
	for ci := range s.cursors {
		c := &s.cursors[ci]
		for c.i < len(c.buf) && kv.CompareKeys(c.buf[c.i].key, key) <= 0 {
			c.i++
		}
	}
}

// FlushAll implements kv.Engine: runs a full checkpoint synchronously.
// Buffered messages are NOT pushed to the leaves — they are durable
// inside the checkpointed interior node images, exactly as a real
// Bε-tree persists its buffers.
func (t *Tree) FlushAll(now sim.Duration) (sim.Duration, error) {
	if t.closed {
		return now, ErrClosed
	}
	return t.core.Checkpoint(now)
}

// Quiesce drains background checkpoint work.
func (t *Tree) Quiesce(now sim.Duration) sim.Duration {
	return t.core.Quiesce(now)
}

// JournalSyncCount exposes the active journal segment's device-reaching
// sync count (group-commit accounting; see cowtree.Core).
func (t *Tree) JournalSyncCount() int64 { return t.core.JournalSyncCount() }

// Close checkpoints and shuts the tree down.
func (t *Tree) Close(now sim.Duration) (sim.Duration, error) {
	if t.closed {
		return now, ErrClosed
	}
	end, err := t.FlushAll(now)
	t.closed = true
	return end, err
}

// Depth returns the tree height (1 = root leaf only).
func (t *Tree) Depth() int {
	d := 1
	n := t.nodes[t.root]
	for !n.leaf {
		d++
		n = t.nodes[n.children[0]]
	}
	return d
}

// NodeCount returns the numbers of leaf and interior nodes.
func (t *Tree) NodeCount() (leaves, interiors int) {
	for _, n := range t.nodes {
		if n == nil {
			continue
		}
		if n.leaf {
			leaves++
		} else {
			interiors++
		}
	}
	return leaves, interiors
}

// BufferedBytes returns the total bytes currently buffered in interior
// nodes (tests and examples use it to observe the ε trade-off).
func (t *Tree) BufferedBytes() int64 {
	var b int64
	for _, n := range t.nodes {
		if n != nil && !n.leaf {
			b += int64(n.bufBytes)
		}
	}
	return b
}
