package betree

import (
	"bytes"
	"testing"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

func testEnv(t *testing.T, capacityMiB int64, content bool, tweak func(*Config)) (*Tree, *blockdev.Device, *extfs.FS) {
	t.Helper()
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  capacityMiB << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		Profile: flash.Profile{
			Name:       "be-test",
			ReadFixed:  5 * time.Microsecond,
			WriteFixed: 5 * time.Microsecond,
			ReadBW:     2 << 30,
			WriteBW:    1 << 30,
			HardwareOP: 0.25,
			EraseTime:  200 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.New(ssd)
	if content {
		dev.EnableContentStore()
	}
	fs, err := extfs.Mount(dev, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(capacityMiB << 19)
	cfg.Content = content
	cfg.CPUPutTime = time.Microsecond
	cfg.CPUGetTime = time.Microsecond
	if tweak != nil {
		tweak(&cfg)
	}
	tree, err := Open(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree, dev, fs
}

// smallNodes shrinks node/leaf budgets so tiny workloads exercise
// splits, buffer flushes and multi-level structure.
func smallNodes(c *Config) {
	c.NodeBytes = 2 << 10
	c.LeafPageBytes = 1 << 10
	c.Epsilon = 0.6
}

func TestBufferFlushesBatchMessages(t *testing.T) {
	tr, _, _ := testEnv(t, 32, false, smallNodes)
	var now sim.Duration
	var err error
	for i := uint64(0); i < 4000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(i%1000), nil, 64)
		if err != nil {
			t.Fatal(err)
		}
	}
	io := tr.IO()
	if io.BufferFlushes == 0 {
		t.Fatal("expected buffer flushes")
	}
	if io.FlushedMessages <= io.BufferFlushes {
		t.Fatalf("flushes should batch messages: %d messages over %d flushes",
			io.FlushedMessages, io.BufferFlushes)
	}
	// The batching factor is the whole point of the design.
	if factor := float64(io.FlushedMessages) / float64(io.BufferFlushes); factor < 2 {
		t.Fatalf("batching factor %.1f, want >= 2", factor)
	}
}

func TestSplitsAndDepthGrowth(t *testing.T) {
	tr, _, _ := testEnv(t, 32, false, smallNodes)
	var now sim.Duration
	var err error
	for i := uint64(0); i < 4000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(i), nil, 20)
		if err != nil {
			t.Fatal(err)
		}
	}
	if tr.IO().LeafSplits == 0 {
		t.Fatal("expected leaf splits")
	}
	if tr.Depth() < 2 {
		t.Fatalf("depth %d, want >= 2", tr.Depth())
	}
	// Every key still present (some answered from buffers, some from
	// leaves).
	for i := uint64(0); i < 4000; i++ {
		_, _, found, err := tr.Get(now, kv.EncodeKey(i))
		if err != nil || !found {
			t.Fatalf("key %d lost after splits: %v %v", i, found, err)
		}
	}
	leaves, interiors := tr.NodeCount()
	if leaves < 10 || interiors < 1 {
		t.Fatalf("node counts: %d leaves, %d interiors", leaves, interiors)
	}
}

func TestGetServedFromBuffer(t *testing.T) {
	tr, _, _ := testEnv(t, 32, false, smallNodes)
	var now sim.Duration
	var err error
	// Grow past the root-leaf stage.
	for i := uint64(0); i < 2000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(i), nil, 20)
		if err != nil {
			t.Fatal(err)
		}
	}
	if tr.Depth() < 2 {
		t.Skip("tree did not grow interior levels")
	}
	// A fresh write sits in the root buffer; reading it back must not
	// touch a leaf.
	now, err = tr.Put(now, kv.EncodeKey(5000), nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore := tr.IO().BufferHits
	_, _, found, err := tr.Get(now, kv.EncodeKey(5000))
	if err != nil || !found {
		t.Fatalf("fresh key: %v %v", found, err)
	}
	if tr.IO().BufferHits != hitsBefore+1 {
		t.Fatalf("expected a buffer hit, got %d -> %d", hitsBefore, tr.IO().BufferHits)
	}
}

func TestEpsilonOneDegeneratesToBTree(t *testing.T) {
	tr, _, _ := testEnv(t, 32, false, func(c *Config) {
		smallNodes(c)
		c.Epsilon = 1.0
	})
	if tr.bufferMax != 0 {
		t.Fatalf("ε=1 should leave no buffer budget, got %d", tr.bufferMax)
	}
	var now sim.Duration
	var err error
	for i := uint64(0); i < 2000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(i), nil, 20)
		if err != nil {
			t.Fatal(err)
		}
	}
	if tr.IO().BufferFlushes != 0 {
		t.Fatalf("ε=1 should never flush buffers, got %d", tr.IO().BufferFlushes)
	}
	if tr.BufferedBytes() != 0 {
		t.Fatalf("ε=1 should buffer nothing, got %d bytes", tr.BufferedBytes())
	}
	for i := uint64(0); i < 2000; i += 37 {
		_, _, found, err := tr.Get(now, kv.EncodeKey(i))
		if err != nil || !found {
			t.Fatalf("key %d: %v %v", i, found, err)
		}
	}
}

func TestSmallerEpsilonBatchesMore(t *testing.T) {
	run := func(eps float64) float64 {
		tr, _, _ := testEnv(t, 64, false, func(c *Config) {
			c.NodeBytes = 8 << 10
			c.LeafPageBytes = 2 << 10
			c.Epsilon = eps
		})
		var now sim.Duration
		var err error
		rng := sim.NewRNG(5)
		for i := 0; i < 20000; i++ {
			now, err = tr.Put(now, kv.EncodeKey(rng.Uint64n(5000)), nil, 64)
			if err != nil {
				t.Fatal(err)
			}
		}
		io := tr.IO()
		if io.BufferFlushes == 0 {
			t.Fatalf("ε=%.2f: no flushes", eps)
		}
		return float64(io.FlushedMessages) / float64(io.BufferFlushes)
	}
	small := run(0.45)
	large := run(0.85)
	if small <= large {
		t.Fatalf("smaller ε should batch more per flush: ε=0.45 -> %.1f, ε=0.85 -> %.1f",
			small, large)
	}
}

func TestEvictionUnderCachePressure(t *testing.T) {
	tr, dev, _ := testEnv(t, 32, false, func(c *Config) {
		smallNodes(c)
		c.CacheBytes = 16 << 10
		c.DisableJournal = true
	})
	var now sim.Duration
	var err error
	rng := sim.NewRNG(1)
	for i := 0; i < 8000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(rng.Uint64n(4000)), nil, 128)
		if err != nil {
			t.Fatal(err)
		}
	}
	if tr.IO().Evictions == 0 || tr.IO().EvictionWrites == 0 {
		t.Fatalf("expected evictions, io=%+v", tr.IO())
	}
	if dev.Counters().BytesWritten == 0 {
		t.Fatal("evictions should write to the device")
	}
	misses := tr.IO().CacheMisses
	for i := uint64(0); i < 4000; i += 131 {
		if _, _, _, err := tr.Get(now, kv.EncodeKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.IO().CacheMisses == misses {
		t.Fatal("expected cache misses when reading evicted leaves")
	}
}

func TestCheckpointRunsAndJournalRecycled(t *testing.T) {
	tr, _, fs := testEnv(t, 32, false, func(c *Config) {
		smallNodes(c)
		c.CheckpointInterval = 10 * time.Millisecond
	})
	var now sim.Duration
	var err error
	for i := 0; i < 5000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(uint64(i%800)), nil, 256)
		if err != nil {
			t.Fatal(err)
		}
	}
	now = tr.Quiesce(now)
	if tr.IO().Checkpoints == 0 {
		t.Fatal("expected periodic checkpoints")
	}
	journals := 0
	for _, name := range fs.List() {
		if len(name) >= 8 && name[:8] == "bjournal" {
			journals++
		}
	}
	if journals == 0 || journals > 3 {
		t.Fatalf("%d journal files, want 1..3 (recycled pool)", journals)
	}
}

func TestFlushAllWritesEverything(t *testing.T) {
	tr, _, _ := testEnv(t, 16, false, smallNodes)
	var now sim.Duration
	var err error
	for i := 0; i < 1000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(uint64(i)), nil, 100)
		if err != nil {
			t.Fatal(err)
		}
	}
	end, err := tr.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	if end < now {
		t.Fatal("FlushAll went back in time")
	}
	if n := tr.core.DirtyCount(); n != 0 {
		t.Fatalf("%d dirty nodes after FlushAll", n)
	}
	// Buffered messages survive FlushAll in the interior images; reads
	// still see them.
	for i := uint64(0); i < 1000; i += 97 {
		_, _, found, err := tr.Get(end, kv.EncodeKey(i))
		if err != nil || !found {
			t.Fatalf("key %d after FlushAll: %v %v", i, found, err)
		}
	}
}

func TestWALowerThanPagePerUpdate(t *testing.T) {
	// The Bε-tree's reason to exist: leaf writes carry batches, so the
	// steady-state application WA sits well below one leaf page per
	// update (the B+Tree pays ~page/value; see TestWAAStableOverTime
	// there).
	tr, dev, _ := testEnv(t, 64, false, func(c *Config) {
		c.CacheBytes = 256 << 10
		c.DisableJournal = true
	})
	var now sim.Duration
	var err error
	rng := sim.NewRNG(3)
	const keys = 2048
	for i := uint64(0); i < keys; i++ {
		now, err = tr.Put(now, kv.EncodeKey(i), nil, 1024)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	c0 := dev.Counters().BytesWritten
	u0 := tr.Stats().UserBytesWritten
	for i := 0; i < int(keys)*4; i++ {
		now, err = tr.Put(now, kv.EncodeKey(rng.Uint64n(keys)), nil, 1024)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	waa := float64(dev.Counters().BytesWritten-c0) / float64(tr.Stats().UserBytesWritten-u0)
	if waa > 12 {
		t.Fatalf("WA-A %.2f too high for a buffered tree", waa)
	}
	if waa < 1 {
		t.Fatalf("WA-A %.2f below 1 is impossible with checkpoints", waa)
	}
}

func TestNodeSerializationRoundTrip(t *testing.T) {
	leaf := &node{leaf: true, serialized: pageHeaderBytes}
	var m mem
	leaf.insertLeaf(&m, message{key: kv.EncodeKey(1), val: []byte("abc"), seq: 7, vlen: 3}, true)
	leaf.insertLeaf(&m, message{key: kv.EncodeKey(2), seq: 9, vlen: 64, del: true}, true)
	data := serializeNode(nil, leaf, nil)
	got, ok := parseNode(data)
	if !ok {
		t.Fatal("parse failed")
	}
	if len(got.entries) != 2 || !bytes.Equal(got.entries[0].key, kv.EncodeKey(1)) {
		t.Fatalf("entries wrong: %v", got.entries)
	}
	if string(got.entries[0].val) != "abc" || got.entries[0].seq != 7 {
		t.Fatal("entry 0 wrong")
	}
	if !got.entries[1].del || got.entries[1].seq != 9 || got.entries[1].vlen != 64 {
		t.Fatal("tombstone entry wrong")
	}

	interior := &node{
		leaf:     false,
		children: []nodeID{1, 2, 3},
		seps:     [][]byte{kv.EncodeKey(10), kv.EncodeKey(20)},
	}
	interior.bufInsert(&m, message{key: kv.EncodeKey(5), seq: 11, vlen: 32}, true)
	interior.bufInsert(&m, message{key: kv.EncodeKey(15), seq: 12, vlen: 16, del: true}, true)
	interior.recomputeSerialized()
	data = serializeNode(nil, interior, func(id nodeID) fileExtent {
		return fileExtent{Start: int64(id) * 100, Pages: 4}
	})
	got, ok = parseNode(data)
	if !ok || len(got.children) != 3 || len(got.seps) != 2 {
		t.Fatalf("interior round trip: %+v %v", got, ok)
	}
	if got.childExtents[2].Start != 300 || got.childExtents[2].Pages != 4 {
		t.Fatal("child extents wrong")
	}
	if len(got.buf) != 2 || got.buf[0].seq != 11 || !got.buf[1].del {
		t.Fatalf("buffer round trip wrong: %+v", got.buf)
	}
	if got.bufBytes != interior.bufBytes {
		t.Fatalf("bufBytes %d != %d", got.bufBytes, interior.bufBytes)
	}

	prefixed := serializeNode([]byte("prefix"), interior, nil)
	if string(prefixed[:6]) != "prefix" {
		t.Fatalf("serialize clobbered the buffer prefix: %q", prefixed[:6])
	}
	if got, ok := parseNode(prefixed[6:]); !ok || len(got.buf) != 2 {
		t.Fatal("image appended after a prefix failed to parse")
	}

	if _, ok := parseNode([]byte{1, 2, 3}); ok {
		t.Fatal("short node should fail")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Duration, int64, IOStats) {
		tr, dev, _ := testEnv(t, 32, false, func(c *Config) {
			smallNodes(c)
			c.CacheBytes = 64 << 10
		})
		var now sim.Duration
		var err error
		rng := sim.NewRNG(9)
		for i := 0; i < 6000; i++ {
			now, err = tr.Put(now, kv.EncodeKey(rng.Uint64n(1500)), nil, 300)
			if err != nil {
				t.Fatal(err)
			}
		}
		end, err := tr.FlushAll(now)
		if err != nil {
			t.Fatal(err)
		}
		return end, dev.Counters().BytesWritten, tr.IO()
	}
	t1, b1, io1 := run()
	t2, b2, io2 := run()
	if t1 != t2 || b1 != b2 || io1 != io2 {
		t.Fatalf("nondeterministic: %v/%d/%+v vs %v/%d/%+v", t1, b1, io1, t2, b2, io2)
	}
}

func TestLRUConsistency(t *testing.T) {
	tr, _, _ := testEnv(t, 32, false, func(c *Config) {
		smallNodes(c)
		c.CacheBytes = 24 << 10
	})
	var now sim.Duration
	var err error
	rng := sim.NewRNG(4)
	for i := 0; i < 6000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(rng.Uint64n(2000)), nil, 64)
		if err != nil {
			t.Fatal(err)
		}
	}
	var forward int64
	count := 0
	for id := tr.lruHead; id != nilNode; id = tr.nodes[id].lruOlder {
		n := tr.nodes[id]
		if !n.resident {
			t.Fatal("non-resident node on LRU list")
		}
		if !n.leaf {
			t.Fatal("interior node on LRU list")
		}
		forward += int64(n.serialized)
		count++
		if count > len(tr.nodes) {
			t.Fatal("LRU list cycle")
		}
	}
	if forward != tr.residentBytes {
		t.Fatalf("LRU bytes %d != residentBytes %d", forward, tr.residentBytes)
	}
}

func TestSerializedInvariants(t *testing.T) {
	tr, _, _ := testEnv(t, 32, false, smallNodes)
	var now sim.Duration
	var err error
	rng := sim.NewRNG(6)
	for i := 0; i < 8000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(rng.Uint64n(3000)), nil, 100)
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = now
	for _, n := range tr.nodes[1:] {
		if n.leaf {
			sz := pageHeaderBytes
			for i := range n.entries {
				sz += n.entries[i].bytes()
			}
			if sz != n.serialized {
				t.Fatalf("leaf %d serialized %d, recomputed %d", n.id, n.serialized, sz)
			}
			continue
		}
		bb := 0
		for i := range n.buf {
			bb += n.buf[i].bytes()
		}
		if bb != n.bufBytes {
			t.Fatalf("node %d bufBytes %d, recomputed %d", n.id, n.bufBytes, bb)
		}
		pv := pageHeaderBytes + childRefBytes*len(n.children)
		for _, sep := range n.seps {
			pv += 2 + len(sep)
		}
		if pv != n.pivotBytes {
			t.Fatalf("node %d pivotBytes %d, recomputed %d", n.id, n.pivotBytes, pv)
		}
		if n.serialized != pv+bb {
			t.Fatalf("node %d serialized %d != pivot %d + buf %d", n.id, n.serialized, pv, bb)
		}
		if n.bufBytes > tr.bufferMax {
			t.Fatalf("node %d buffer %d over budget %d", n.id, n.bufBytes, tr.bufferMax)
		}
		// Buffer messages route to this node's key range, sorted.
		for i := 1; i < len(n.buf); i++ {
			if kv.CompareKeys(n.buf[i-1].key, n.buf[i].key) >= 0 {
				t.Fatalf("node %d buffer out of order", n.id)
			}
		}
	}
}

func TestCloseRejectsOps(t *testing.T) {
	tr, _, _ := testEnv(t, 16, false, nil)
	now, err := tr.Put(0, kv.EncodeKey(1), nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Close(now); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Put(now, kv.EncodeKey(2), nil, 10); err != ErrClosed {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{Epsilon: 0, LeafPageBytes: 1}).Validate(); err == nil {
		t.Fatal("ε=0 should fail")
	}
	if _, err := (Config{Epsilon: 1.5, LeafPageBytes: 1}).Validate(); err == nil {
		t.Fatal("ε>1 should fail")
	}
	if _, err := (Config{Epsilon: 0.5}).Validate(); err == nil {
		t.Fatal("zero leaf size should fail")
	}
	c, err := (Config{Epsilon: 0.5, LeafPageBytes: 4 << 10}).Validate()
	if err != nil {
		t.Fatal(err)
	}
	if c.pivotBudget() < minPivotBytes || c.bufferBudget() < 0 {
		t.Fatalf("budgets out of range: pivot %d buffer %d", c.pivotBudget(), c.bufferBudget())
	}
	one, err := (Config{Epsilon: 1, LeafPageBytes: 4 << 10}).Validate()
	if err != nil {
		t.Fatal(err)
	}
	if one.bufferBudget() != 0 {
		t.Fatalf("ε=1 buffer budget %d, want 0", one.bufferBudget())
	}
}
