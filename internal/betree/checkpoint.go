package betree

import (
	"encoding/binary"

	"ptsbench/internal/cowtree"
)

// The checkpoint discipline — dirty-ancestor-closure snapshot, bottom-up
// write order, writeSubtreeClean for split-orphaned descendants, the
// root-spine write at commit, journal rotation/recycling and the
// double-buffered metadata — lives in internal/cowtree. What makes the
// Bε-tree's checkpoints distinctive is purely a codec property kept
// here: interior images carry their message buffers, which is what makes
// buffered-but-unflushed updates durable.

// nodeMagic marks a serialized Bε-tree node ("BEPG").
const nodeMagic = 0x42455047

// putMessage appends one serialized message (buffer message or leaf
// entry): keyLen(2) + valueLen(4) + seq(8, tombstone bit 63) + key +
// value (zeros in accounting mode).
func putMessage(out []byte, m *message) []byte {
	var hdr [msgOverhead]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(m.key)))
	vl := int(m.vlen)
	binary.LittleEndian.PutUint32(hdr[2:], uint32(vl))
	seq := m.seq
	if m.del {
		seq |= 1 << 63
	}
	binary.LittleEndian.PutUint64(hdr[6:], seq)
	out = append(out, hdr[:]...)
	out = append(out, m.key...)
	if m.val != nil {
		out = append(out, m.val...)
	} else {
		out = cowtree.AppendZeros(out, vl)
	}
	return out
}

// parseMessage decodes one message, returning it and the bytes consumed
// (0 on corruption).
func parseMessage(data []byte) (message, int) {
	if len(data) < msgOverhead {
		return message{}, 0
	}
	kl := int(binary.LittleEndian.Uint16(data[0:]))
	vl := int(binary.LittleEndian.Uint32(data[2:]))
	seq := binary.LittleEndian.Uint64(data[6:])
	if msgOverhead+kl+vl > len(data) {
		return message{}, 0
	}
	m := makeMessage(
		cloneBytes(data[msgOverhead:msgOverhead+kl]),
		cloneBytes(data[msgOverhead+kl:msgOverhead+kl+vl]),
		seq&^(1<<63), vl, seq&(1<<63) != 0)
	return m, msgOverhead + kl + vl
}

// serializeNode appends the on-disk image of a node (content mode) to
// out and returns it. Layout: header {magic, leaf flag, count,
// bufCount}, then entries (leaf) or separators + child extent references
// + buffered messages (interior). resolve maps a child nodeID to its
// current on-disk extent.
func serializeNode(out []byte, n *node, resolve func(nodeID) fileExtent) []byte {
	var hdr [pageHeaderBytes]byte
	base := len(out)
	out = append(out, hdr[:]...)
	binary.LittleEndian.PutUint32(out[base:], nodeMagic)
	if n.leaf {
		out[base+4] = 1
		binary.LittleEndian.PutUint32(out[base+8:], uint32(len(n.entries)))
		for i := range n.entries {
			out = putMessage(out, &n.entries[i])
		}
		return out
	}
	binary.LittleEndian.PutUint32(out[base+8:], uint32(len(n.seps)))
	binary.LittleEndian.PutUint32(out[base+12:], uint32(len(n.buf)))
	for _, sep := range n.seps {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(sep)))
		out = append(out, l[:]...)
		out = append(out, sep...)
	}
	for _, c := range n.children {
		var ext fileExtent
		if resolve != nil {
			ext = resolve(c)
		}
		var b [childRefBytes]byte
		binary.LittleEndian.PutUint64(b[0:], uint64(ext.Start))
		binary.LittleEndian.PutUint32(b[8:], uint32(ext.Pages))
		out = append(out, b[:]...)
	}
	for i := range n.buf {
		out = putMessage(out, &n.buf[i])
	}
	return out
}

// parseNode reconstructs a node from its serialized image.
func parseNode(data []byte) (*node, bool) {
	if len(data) < pageHeaderBytes {
		return nil, false
	}
	if binary.LittleEndian.Uint32(data[0:]) != nodeMagic {
		return nil, false
	}
	n := &node{leaf: data[4] == 1}
	count := int(binary.LittleEndian.Uint32(data[8:]))
	off := pageHeaderBytes
	if n.leaf {
		for i := 0; i < count; i++ {
			m, used := parseMessage(data[off:])
			if used == 0 {
				return nil, false
			}
			n.entries = append(n.entries, m)
			off += used
		}
		return n, true
	}
	bufCount := int(binary.LittleEndian.Uint32(data[12:]))
	for i := 0; i < count; i++ {
		if off+2 > len(data) {
			return nil, false
		}
		sl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+sl > len(data) {
			return nil, false
		}
		n.seps = append(n.seps, cloneBytes(data[off:off+sl]))
		off += sl
	}
	for i := 0; i <= count; i++ {
		if off+childRefBytes > len(data) {
			return nil, false
		}
		n.childExtents = append(n.childExtents, fileExtent{
			Start: int64(binary.LittleEndian.Uint64(data[off:])),
			Pages: int64(binary.LittleEndian.Uint32(data[off+8:])),
		})
		n.children = append(n.children, nilNode) // assigned during rebuild
		off += childRefBytes
	}
	for i := 0; i < bufCount; i++ {
		m, used := parseMessage(data[off:])
		if used == 0 {
			return nil, false
		}
		n.buf = append(n.buf, m)
		n.bufBytes += m.bytes()
		off += used
	}
	return n, true
}
