package betree

import (
	"encoding/binary"
	"sort"

	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// checkpointJob writes all nodes that were dirty when the checkpoint
// began — including interior nodes, whose images carry their message
// buffers, which is what makes buffered-but-unflushed updates durable —
// then retires the journal segment that preceded it. The journal is
// rotated at job creation (foreground), so updates arriving during the
// checkpoint land in the new segment.
type checkpointJob struct {
	t           *Tree
	ids         []nodeID
	idx         int
	oldJournal  *wal.Writer
	pendingMark int
}

// newCheckpointJob snapshots the dirty set — expanded to the ancestor
// closure — and rotates the journal. It returns nil if there is nothing
// to write.
//
// The closure is load-bearing for recovery: writing a node moves it on
// disk, so every ancestor's serialized child references change and the
// whole root-to-node spine must be rewritten within the SAME
// checkpoint. Without it, a checkpoint whose dirty snapshot contains
// only a leaf would commit metadata pointing at the old root image
// (whose refs still name the leaf's old extent) while recycling the
// journal that held the leaf's updates — data loss on recovery, and
// corruption once the old extent is reused.
func (t *Tree) newCheckpointJob() (*checkpointJob, error) {
	if t.dirtyCount == 0 {
		return nil, nil
	}
	job := &checkpointJob{t: t, pendingMark: t.bm.PendingMark()}
	inJob := make(map[nodeID]bool)
	for _, id := range t.dirtyIDs {
		if !t.nodes[id].dirty || inJob[id] {
			continue
		}
		inJob[id] = true
		job.ids = append(job.ids, id)
		for p := t.nodes[id].parent; p != nilNode && !inJob[p]; p = t.nodes[p].parent {
			inJob[p] = true
			t.markDirty(t.nodes[p]) // ancestors must be written too
			job.ids = append(job.ids, p)
		}
	}
	t.dirtyIDs = nil
	// Bottom-up order: writing a child records its new extent before its
	// parent's image is serialized, so a completed checkpoint is a
	// consistent tree.
	t.sortBottomUp(job.ids)
	if t.journal != nil {
		job.oldJournal = t.journal
		w, err := t.wrapJournal()
		if err != nil {
			return nil, err
		}
		t.journal = w
	}
	return job, nil
}

// depthOf returns a node's distance from the root (root = 0).
func (t *Tree) depthOf(id nodeID) int {
	d := 0
	for n := t.nodes[id]; n != nil && n.parent != nilNode; n = t.nodes[n.parent] {
		d++
	}
	return d
}

// sortBottomUp orders node ids deepest-first (ties by id for
// determinism).
func (t *Tree) sortBottomUp(ids []nodeID) {
	depth := make(map[nodeID]int, len(ids))
	for _, id := range ids {
		depth[id] = t.depthOf(id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if depth[a] != depth[b] {
			return depth[a] > depth[b]
		}
		return a < b
	})
}

// Step implements sim.Job: write nodes until the chunk budget is used.
func (j *checkpointJob) Step(now sim.Duration) (sim.Duration, bool) {
	t := j.t
	if t.fatal != nil {
		return now, true
	}
	budget := t.cfg.ChunkPages
	ps := t.fs.PageSize()
	for budget > 0 && j.idx < len(j.ids) {
		n := t.nodes[j.ids[j.idx]]
		j.idx++
		if n == nil || !n.dirty {
			continue // evicted and written in the meantime
		}
		// Foreground splits that ran since the snapshot may have hung
		// children under n that this job has never written (or even
		// never-written brand-new nodes with a zero extent). Serializing
		// n's child references without writing them first would commit
		// an image pointing at stale or nonexistent extents — an
		// unrecoverable tree. Flush n's dirty/unwritten descendants
		// before n itself.
		var err error
		var extra int
		now, extra, err = t.writeSubtreeClean(now, n)
		if err != nil {
			t.fatal = err
			return now, true
		}
		budget -= extra
		now, err = t.writeNode(now, n)
		if err != nil {
			t.fatal = err
			return now, true
		}
		t.io.CheckpointPgs++
		budget -= (n.serialized + ps - 1) / ps
	}
	if j.idx < len(j.ids) {
		return now, false
	}
	// Commit. A foreground split may have grown a NEW root while the job
	// ran — an ancestor of every snapshot node, so neither the snapshot
	// closure nor writeSubtreeClean (descendants only) wrote it. Without
	// an on-disk root image writeMeta would decline, yet the commit below
	// would still release the previous checkpoint's extents and recycle
	// the journal — destroying the only durable copies of recent updates.
	// Write the current root (and its unwritten spine) first, so the
	// metadata always points at a complete current tree.
	var err error
	if root := t.nodes[t.root]; root.dirty || root.disk.Pages == 0 {
		// writeSubtreeClean counts the descendants it writes itself.
		if now, _, err = t.writeSubtreeClean(now, root); err != nil {
			t.fatal = err
			return now, true
		}
		if now, err = t.writeNode(now, root); err != nil {
			t.fatal = err
			return now, true
		}
		t.io.CheckpointPgs++
	}
	// Write the checkpoint metadata (root location), release the previous
	// checkpoint's extents, sync, and recycle the old journal segment.
	if now, err = t.writeMeta(now); err != nil {
		t.fatal = err
		return now, true
	}
	t.bm.CommitPendingPrefix(j.pendingMark)
	now = t.fs.Sync(now)
	if j.oldJournal != nil {
		now, err = j.oldJournal.Recycle(now)
		if err != nil {
			t.fatal = err
			return now, true
		}
		t.journalPool = append(t.journalPool, j.oldJournal)
		j.oldJournal = nil
	}
	t.io.Checkpoints++
	return now, true
}

// writeSubtreeClean writes every dirty or never-written descendant of n
// (deepest first), returning the pages written. Nodes registered by
// splits that ran while the checkpoint was in flight are not in the
// job's snapshot, and their ancestors' images must not be serialized
// before they have on-disk extents.
func (t *Tree) writeSubtreeClean(now sim.Duration, n *node) (sim.Duration, int, error) {
	if n.leaf {
		return now, 0, nil
	}
	ps := t.fs.PageSize()
	pages := 0
	for _, c := range n.children {
		child := t.nodes[c]
		if !child.dirty && child.disk.Pages != 0 {
			continue
		}
		var err error
		var extra int
		now, extra, err = t.writeSubtreeClean(now, child)
		if err != nil {
			return now, pages, err
		}
		pages += extra
		now, err = t.writeNode(now, child)
		if err != nil {
			return now, pages, err
		}
		t.io.CheckpointPgs++
		pages += (child.serialized + ps - 1) / ps
	}
	return now, pages, nil
}

// wrapJournal opens the next journal segment, reusing a recycled one
// when available.
func (t *Tree) wrapJournal() (*wal.Writer, error) {
	if n := len(t.journalPool); n > 0 {
		w := t.journalPool[n-1]
		t.journalPool = t.journalPool[:n-1]
		return w, nil
	}
	return wal.Create(t.fs, t.journalName(), t.cfg.Content)
}

// nodeMagic marks a serialized Bε-tree node ("BEPG").
const nodeMagic = 0x42455047

// putMessage appends one serialized message (buffer message or leaf
// entry): keyLen(2) + valueLen(4) + seq(8, tombstone bit 63) + key +
// value (zeros in accounting mode).
func putMessage(out []byte, m *message) []byte {
	var hdr [msgOverhead]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(m.key)))
	vl := int(m.vlen)
	binary.LittleEndian.PutUint32(hdr[2:], uint32(vl))
	seq := m.seq
	if m.del {
		seq |= 1 << 63
	}
	binary.LittleEndian.PutUint64(hdr[6:], seq)
	out = append(out, hdr[:]...)
	out = append(out, m.key...)
	if m.val != nil {
		out = append(out, m.val...)
	} else {
		out = append(out, make([]byte, vl)...)
	}
	return out
}

// parseMessage decodes one message, returning it and the bytes consumed
// (0 on corruption).
func parseMessage(data []byte) (message, int) {
	if len(data) < msgOverhead {
		return message{}, 0
	}
	kl := int(binary.LittleEndian.Uint16(data[0:]))
	vl := int(binary.LittleEndian.Uint32(data[2:]))
	seq := binary.LittleEndian.Uint64(data[6:])
	if msgOverhead+kl+vl > len(data) {
		return message{}, 0
	}
	m := message{
		key:  cloneBytes(data[msgOverhead : msgOverhead+kl]),
		val:  cloneBytes(data[msgOverhead+kl : msgOverhead+kl+vl]),
		seq:  seq &^ (1 << 63),
		vlen: int32(vl),
		del:  seq&(1<<63) != 0,
	}
	return m, msgOverhead + kl + vl
}

// serializeNode produces the on-disk image of a node (content mode).
// Layout: header {magic, leaf flag, count, bufCount}, then entries
// (leaf) or separators + child extent references + buffered messages
// (interior). resolve maps a child nodeID to its current on-disk
// extent.
func serializeNode(n *node, resolve func(nodeID) fileExtent) []byte {
	out := make([]byte, pageHeaderBytes, n.serialized)
	binary.LittleEndian.PutUint32(out[0:], nodeMagic)
	if n.leaf {
		out[4] = 1
		binary.LittleEndian.PutUint32(out[8:], uint32(len(n.entries)))
		for i := range n.entries {
			out = putMessage(out, &n.entries[i])
		}
		return out
	}
	binary.LittleEndian.PutUint32(out[8:], uint32(len(n.seps)))
	binary.LittleEndian.PutUint32(out[12:], uint32(len(n.buf)))
	for _, sep := range n.seps {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(sep)))
		out = append(out, l[:]...)
		out = append(out, sep...)
	}
	for _, c := range n.children {
		var ext fileExtent
		if resolve != nil {
			ext = resolve(c)
		}
		var b [childRefBytes]byte
		binary.LittleEndian.PutUint64(b[0:], uint64(ext.Start))
		binary.LittleEndian.PutUint32(b[8:], uint32(ext.Pages))
		out = append(out, b[:]...)
	}
	for i := range n.buf {
		out = putMessage(out, &n.buf[i])
	}
	return out
}

// parseNode reconstructs a node from its serialized image.
func parseNode(data []byte) (*node, bool) {
	if len(data) < pageHeaderBytes {
		return nil, false
	}
	if binary.LittleEndian.Uint32(data[0:]) != nodeMagic {
		return nil, false
	}
	n := &node{leaf: data[4] == 1}
	count := int(binary.LittleEndian.Uint32(data[8:]))
	off := pageHeaderBytes
	if n.leaf {
		for i := 0; i < count; i++ {
			m, used := parseMessage(data[off:])
			if used == 0 {
				return nil, false
			}
			n.entries = append(n.entries, m)
			off += used
		}
		return n, true
	}
	bufCount := int(binary.LittleEndian.Uint32(data[12:]))
	for i := 0; i < count; i++ {
		if off+2 > len(data) {
			return nil, false
		}
		sl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+sl > len(data) {
			return nil, false
		}
		n.seps = append(n.seps, cloneBytes(data[off:off+sl]))
		off += sl
	}
	for i := 0; i <= count; i++ {
		if off+childRefBytes > len(data) {
			return nil, false
		}
		n.childExtents = append(n.childExtents, fileExtent{
			Start: int64(binary.LittleEndian.Uint64(data[off:])),
			Pages: int64(binary.LittleEndian.Uint32(data[off+8:])),
		})
		n.children = append(n.children, nilNode) // assigned during rebuild
		off += childRefBytes
	}
	for i := 0; i < bufCount; i++ {
		m, used := parseMessage(data[off:])
		if used == 0 {
			return nil, false
		}
		n.buf = append(n.buf, m)
		n.bufBytes += m.bytes()
		off += used
	}
	return n, true
}
