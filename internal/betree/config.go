// Package betree implements a Bε-tree: a copy-on-write B-tree whose
// interior nodes reserve most of their capacity for per-child message
// buffers. Writes are appended to the root's buffer as messages and
// flushed down the spine in batches when a buffer fills; reads merge
// buffered messages with leaf contents on the way down.
//
// The I/O shape this produces sits between the two engines the paper
// evaluates: like the B+Tree, data lives in update-in-place (logically;
// copy-on-write physically) pages confined to one collection file, so
// the LBA footprint stays narrow; like the LSM, each leaf write carries
// a batch of updates, so application-level write amplification drops by
// the batch factor instead of paying a full page write per update. The
// batched downward flushes are the "buffered repacking" design of the
// parallelism-aware B+-tree variants in PAPERS.md (Roh et al.; Clay &
// Wortman's durable flash search tree).
//
// Unlike LSM compaction — which rewrites whole sorted runs sideways
// (level N and its key-overlapping files in level N+1) and re-sorts them
// into fresh files — a buffer flush moves a key-contiguous batch of
// messages one level down into a single existing child, dirtying only
// that child and its parent. There is no read-and-rewrite of unrelated
// cold data, which is why the Bε-tree's device write amplification sits
// below the LSM's at high update rates while keeping B+Tree-like point
// reads.
package betree

import (
	"fmt"
	"math"
	"time"
)

// Config holds the engine's tuning knobs.
type Config struct {
	// Epsilon is the Bε-tree design parameter in (0, 1]: interior nodes
	// of NodeBytes capacity spend NodeBytes^Epsilon bytes on pivots
	// (separator keys + child references, which sets the fanout) and the
	// rest on message buffers. Small ε means few children and large
	// buffers (write-optimized, more flush batching); ε -> 1 degenerates
	// into a B+Tree (all pivots, no buffer: updates go straight to the
	// leaves).
	Epsilon float64

	// NodeBytes is the total serialized budget of an interior node
	// (pivot section + message buffer).
	NodeBytes int

	// LeafPageBytes is the maximum serialized leaf size.
	LeafPageBytes int

	// CacheBytes bounds the leaf cache (interior nodes, including their
	// buffers, are pinned — the classic Bε-tree assumption that the
	// upper tree fits in RAM).
	CacheBytes int64

	// CheckpointInterval triggers a checkpoint when this much virtual
	// time has passed since the last one.
	CheckpointInterval time.Duration

	// CheckpointPendingBytes triggers a checkpoint when this many bytes
	// of freed extents await release (they only return to the allocator
	// at checkpoint commit).
	CheckpointPendingBytes int64

	// JournalSync syncs the journal on every update.
	JournalSync bool
	// DisableJournal turns journaling off entirely (ablations).
	DisableJournal bool

	// CPUPutTime / CPUGetTime model per-operation engine CPU cost;
	// CPUPerByte adds the payload-dependent part.
	CPUPutTime time.Duration
	CPUGetTime time.Duration
	CPUPerByte time.Duration

	// ChunkPages is the checkpoint I/O granularity per job step.
	ChunkPages int

	// Content selects content mode (values materialized and written
	// through; required for recovery).
	Content bool
}

// NewConfig returns Bε-tree defaults for a dataset of roughly
// datasetBytes. The cache is deliberately tiny relative to the dataset
// (the paper's 10 MiB cache vs 200 GiB dataset), like the B+Tree's.
// NodeBytes scales with the dataset (clamped): with the paper's 4 KB
// values a buffer must hold many messages per child for flushes to
// batch, which is why real Bε-trees (BetrFS) run multi-megabyte nodes —
// far larger than B+Tree pages.
func NewConfig(datasetBytes int64) Config {
	cache := datasetBytes / 20000
	if cache < 256<<10 {
		cache = 256 << 10
	}
	pending := datasetBytes / 16
	if pending < 512<<10 {
		pending = 512 << 10
	}
	nodeBytes := datasetBytes / 256
	if nodeBytes < 128<<10 {
		nodeBytes = 128 << 10
	}
	if nodeBytes > 8<<20 {
		nodeBytes = 8 << 20
	}
	return Config{
		Epsilon:                0.5,
		NodeBytes:              int(nodeBytes),
		LeafPageBytes:          48 << 10,
		CacheBytes:             cache,
		CheckpointInterval:     60 * time.Second,
		CheckpointPendingBytes: pending,
		JournalSync:            true,
		CPUPutTime:             250 * time.Microsecond,
		CPUGetTime:             130 * time.Microsecond,
		CPUPerByte:             65 * time.Nanosecond,
		ChunkPages:             32,
	}
}

// minPivotBytes is the smallest pivot section: the header plus room for
// two children of 16-byte separator keys.
const minPivotBytes = pageHeaderBytes + 2*(2+16+childRefBytes)

// Validate fills defaults and rejects nonsense.
func (c Config) Validate() (Config, error) {
	if c.Epsilon <= 0 || c.Epsilon > 1 {
		return c, fmt.Errorf("betree: Epsilon %v outside (0, 1]", c.Epsilon)
	}
	if c.NodeBytes <= 0 {
		c.NodeBytes = 64 << 10
	}
	if c.LeafPageBytes <= 0 {
		return c, fmt.Errorf("betree: LeafPageBytes must be positive")
	}
	if c.NodeBytes < 2*minPivotBytes {
		return c, fmt.Errorf("betree: NodeBytes %d too small", c.NodeBytes)
	}
	if c.CacheBytes <= int64(2*c.LeafPageBytes) {
		c.CacheBytes = int64(8 * c.LeafPageBytes)
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 60 * time.Second
	}
	if c.CheckpointPendingBytes <= 0 {
		c.CheckpointPendingBytes = 8 << 20
	}
	if c.ChunkPages <= 0 {
		c.ChunkPages = 32
	}
	return c, nil
}

// pivotBudget returns the serialized byte budget of an interior node's
// pivot section: NodeBytes^Epsilon, clamped to [minPivotBytes,
// NodeBytes].
func (c *Config) pivotBudget() int {
	b := int(math.Pow(float64(c.NodeBytes), c.Epsilon))
	if b < minPivotBytes {
		b = minPivotBytes
	}
	if b > c.NodeBytes {
		b = c.NodeBytes
	}
	return b
}

// bufferBudget returns the per-node message-buffer byte budget. Zero
// (ε = 1) means updates bypass buffering entirely.
func (c *Config) bufferBudget() int {
	return c.NodeBytes - c.pivotBudget()
}
