package betree

import (
	"testing"

	"ptsbench/internal/kvtest"
	"ptsbench/internal/sim"
)

// TestEngineConformance runs the shared engine-conformance suite (see
// internal/kvtest) over the Bε-tree: the same put/get/scan/recovery
// contract the LSM and B+Tree are held to. Small nodes make buffer
// flushes, cascades and splits all participate at suite scale.
func TestEngineConformance(t *testing.T) {
	kvtest.Run(t, func(t *testing.T, content bool) *kvtest.Stack {
		tr, dev, fs := testEnv(t, 32, content, func(c *Config) {
			smallNodes(c)
			c.JournalSync = true
		})
		return &kvtest.Stack{
			Engine: tr,
			Dev:    dev,
			Reopen: func(now sim.Duration) (kvtest.Engine, sim.Duration, error) {
				re, rnow, err := Recover(fs, tr.cfg, now)
				if err != nil {
					return nil, rnow, err
				}
				return re, rnow, nil
			},
		}
	})
}
