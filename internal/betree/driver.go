package betree

import (
	"ptsbench/internal/engine"
	"ptsbench/internal/sim"
)

func init() { engine.Register(Driver{}) }

// Driver is the self-registering engine driver for the buffered
// copy-on-write Bε-tree. Registry name: "betree".
type Driver struct{}

// Name implements engine.Driver.
func (Driver) Name() string { return "betree" }

// Configure implements engine.Driver: Bε-tree defaults sized for the
// dataset with CPU costs dilated by the simulation scale — the
// arithmetic the experiment runner applied before the registry existed,
// preserved bit-identically. The Bε-tree answers a point read from at
// most one leaf, so there is no queue-depth-dependent knob here; host-
// level read batching is handled by the runner.
func (Driver) Configure(s engine.Sizing) engine.Config {
	cfg := NewConfig(s.DatasetBytes)
	if f := s.CPUScale(); f > 1 {
		cfg.CPUPutTime *= f
		cfg.CPUGetTime *= f
		cfg.CPUPerByte *= f
	}
	return &cfg
}

// knobs binds the declarative tunable names to the receiver's fields.
func (c *Config) knobs() *engine.Knobs {
	k := engine.NewKnobs("betree")
	k.Float("epsilon", "pivot/buffer split of interior nodes in (0,1]; 1 degenerates to a B+Tree", &c.Epsilon)
	k.Int("node_bytes", "total serialized budget of an interior node (bytes)", &c.NodeBytes)
	k.Int("leaf_page_bytes", "maximum serialized leaf size (bytes)", &c.LeafPageBytes)
	k.Int64("cache_bytes", "leaf cache bound (bytes)", &c.CacheBytes)
	k.Duration("checkpoint_interval", "virtual time between checkpoints", &c.CheckpointInterval)
	k.Int64("checkpoint_pending_bytes", "freed bytes awaiting release that force a checkpoint", &c.CheckpointPendingBytes)
	k.Bool("journal_sync", "sync the journal on every update", &c.JournalSync)
	k.Bool("disable_journal", "turn journaling off entirely", &c.DisableJournal)
	k.Duration("cpu_put_time", "per-put engine CPU cost", &c.CPUPutTime)
	k.Duration("cpu_get_time", "per-get engine CPU cost", &c.CPUGetTime)
	k.Duration("cpu_per_byte", "payload-size-dependent CPU cost per byte", &c.CPUPerByte)
	k.Int("chunk_pages", "checkpoint I/O granularity (pages per job step)", &c.ChunkPages)
	return k
}

// Tunables implements engine.Config.
func (c *Config) Tunables() []engine.Tunable { return c.knobs().Docs() }

// ApplyTunables implements engine.Config.
func (c *Config) ApplyTunables(tunables map[string]string) error {
	return c.knobs().Apply(tunables)
}

// Open implements engine.Config. The Bε-tree is deterministic and does
// not consume env.RNG.
func (c *Config) Open(env engine.Env) (engine.Engine, error) {
	cfg := *c
	cfg.Content = env.Content
	return Open(env.FS, cfg)
}

// Recover implements engine.Config.
func (c *Config) Recover(env engine.Env, now sim.Duration) (engine.Engine, sim.Duration, error) {
	cfg := *c
	cfg.Content = env.Content
	return Recover(env.FS, cfg, now)
}
