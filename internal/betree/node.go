package betree

import (
	"bytes"

	"ptsbench/internal/cowtree"
	"ptsbench/internal/extalloc"
	"ptsbench/internal/kv"
)

// fileExtent aliases the shared extent type; see internal/extalloc.
type fileExtent = extalloc.Extent

// nodeID identifies an in-memory node. IDs are never reused. It aliases
// the shared core's node id so nodes plug into internal/cowtree without
// conversions.
type nodeID = cowtree.NodeID

const nilNode = cowtree.NilNode

// msgOverhead is the serialized per-message (and per-leaf-entry) header:
// keyLen(2) + valueLen(4) + seq(8).
const msgOverhead = 14

// pageHeaderBytes is the serialized node header size.
const pageHeaderBytes = 64

// childRefBytes is the serialized size of one child reference in an
// interior node: extent start (8) + extent pages (4).
const childRefBytes = 12

// mem bundles the tree's allocation helpers handed to node methods: the
// arena backs retained key/value copies, the pool recycles the message
// arrays (leaf entries and interior buffers) displaced by growth and
// splits, and scratch holds a flush batch's fresh inserts between
// insertBatch's classify and merge passes.
type mem struct {
	arena   cowtree.Arena
	msgs    cowtree.Pool[message]
	scratch []message
}

// message is one buffered update or leaf entry: key, optional value
// bytes (content mode), accounted value length, sequence and tombstone
// flag. Buffers and leaves share the representation because a flush
// moves messages unchanged until they land in a leaf.
type message struct {
	key  []byte
	val  []byte
	seq  uint64
	vlen int32
	del  bool
}

// makeMessage builds a message value (one construction point keeps the
// field order in one place).
func makeMessage(key, val []byte, seq uint64, vlen int, del bool) message {
	return message{key: key, val: val, seq: seq, vlen: int32(vlen), del: del}
}

// bytes returns the message's serialized footprint.
func (m *message) bytes() int {
	return msgOverhead + len(m.key) + int(m.vlen)
}

// node is an in-memory Bε-tree node. Leaves carry entries; interior
// nodes carry separator keys, children and a message buffer sorted by
// key (one message per key — a newer update overwrites the buffered
// older one, which is the classic upsert collapse).
type node struct {
	id     nodeID
	parent nodeID
	leaf   bool

	// Leaf payload, sorted by key.
	entries []message

	// Interior payload: children[i] holds keys < seps[i] for
	// i < len(seps); children[len(seps)] holds the rest.
	seps     [][]byte
	children []nodeID

	// sepCache holds the separators' word decomposition so descents
	// probe raw uint64 pairs (see kv.SepCache); maintained by
	// refreshSepCache/insertSepCache after any seps mutation.
	sepCache kv.SepCache

	// buf is the interior message buffer, sorted by key. bufBytes is its
	// serialized footprint.
	buf      []message
	bufBytes int

	// childExtents is only populated on nodes reconstructed from disk
	// (recovery): the on-disk locations of the children, in child order.
	childExtents []fileExtent

	// serialized is the full serialized size (pivot section + buffer for
	// interiors; header + entries for leaves). pivotBytes tracks the
	// pivot section alone — the quantity the fanout budget bounds.
	serialized int
	pivotBytes int

	dirty bool

	// On-disk location (pages within the collection file); pages==0
	// means never written.
	disk fileExtent

	// Cache bookkeeping (leaves only): resident leaves form an LRU list.
	resident   bool
	lruNewer   nodeID
	lruOlder   nodeID
	everOnDisk bool

	// next chains leaves left-to-right for range scans.
	next nodeID
}

// searchMsgs returns the index of the first message in msgs with
// key >= target.
func searchMsgs(msgs []message, target []byte) int {
	wHi, wLo, fast := kv.DecomposeKey(target)
	lo, hi := 0, len(msgs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		var c int
		if mk := msgs[mid].key; fast && len(mk) == kv.KeySize {
			c = kv.CompareKeyWords(mk, wHi, wLo)
		} else {
			c = kv.CompareKeys(mk, target)
		}
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// search returns the index of the first leaf entry with key >= target.
func (n *node) search(target []byte) int { return searchMsgs(n.entries, target) }

// refreshSepCache rebuilds the separator word cache. Callers invoke it
// after every seps mutation.
func (n *node) refreshSepCache() { n.sepCache.Refresh(n.seps) }

// childFor returns the index of the child covering target.
func (n *node) childFor(target []byte) int {
	wHi, wLo, fast := kv.DecomposeKey(target)
	if fast && n.sepCache.Fast() {
		return n.sepCache.UpperBound(wHi, wLo)
	}
	lo, hi := 0, len(n.seps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		var c int
		if sk := n.seps[mid]; fast && len(sk) == kv.KeySize {
			c = kv.CompareKeyWords(sk, wHi, wLo)
		} else {
			c = kv.CompareKeys(sk, target)
		}
		if c <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the position of child id.
func (n *node) childIndex(id nodeID) int {
	for i, c := range n.children {
		if c == id {
			return i
		}
	}
	return -1
}

// bufGet returns the buffered message for key, or nil.
func (n *node) bufGet(key []byte) *message {
	i := searchMsgs(n.buf, key)
	if i < len(n.buf) && bytes.Equal(n.buf[i].key, key) {
		return &n.buf[i]
	}
	return nil
}

// bufInsert upserts a message into the buffer, returning the serialized
// size delta. owned says the message owns its key/value bytes (flushes
// move already-owned messages down); with owned=false — the Put
// boundary, where callers reuse their buffers — bytes are cloned (from
// the tree's arena, so no heap allocation) only when actually retained,
// so an overwrite (which keeps the resident key) costs no key copy at
// all. An existing message for the same key is overwritten when the
// incoming one is at least as new (flush batches always move the newest
// surviving version, so the guard only matters on recovery replay).
func (n *node) bufInsert(mm *mem, m message, owned bool) int {
	i := searchMsgs(n.buf, m.key)
	if i < len(n.buf) && bytes.Equal(n.buf[i].key, m.key) {
		old := &n.buf[i]
		if m.seq < old.seq {
			return 0
		}
		delta := m.bytes() - old.bytes()
		// Keep the resident key bytes; only the value changes.
		m.key = old.key
		if !owned {
			m.val = mm.arena.Clone(m.val)
		}
		*old = m
		n.bufBytes += delta
		n.serialized += delta
		return delta
	}
	if !owned {
		m.key = mm.arena.Clone(m.key)
		m.val = mm.arena.Clone(m.val)
	}
	n.buf = mm.msgs.GrowInsert(n.buf, i, m)
	delta := m.bytes()
	n.bufBytes += delta
	n.serialized += delta
	return delta
}

// insertLeaf inserts or replaces a leaf entry, returning the serialized
// size delta. owned works as in bufInsert. Stale messages (older seq
// than the stored entry) are dropped — they can only reach a leaf
// through recovery replay.
func (n *node) insertLeaf(mm *mem, m message, owned bool) int {
	i := n.search(m.key)
	if i < len(n.entries) && bytes.Equal(n.entries[i].key, m.key) {
		e := &n.entries[i]
		if m.seq < e.seq {
			return 0
		}
		delta := m.bytes() - e.bytes()
		m.key = e.key
		if !owned {
			m.val = mm.arena.Clone(m.val)
		}
		*e = m
		n.serialized += delta
		return delta
	}
	if !owned {
		m.key = mm.arena.Clone(m.key)
		m.val = mm.arena.Clone(m.val)
	}
	n.entries = mm.msgs.GrowInsert(n.entries, i, m)
	delta := m.bytes()
	n.serialized += delta
	return delta
}

// insertBatch applies a sorted run of owned messages (distinct keys —
// the buffer upsert-collapses duplicates) to a leaf in two passes: one
// classify pass that applies overwrites in place and collects fresh
// inserts, then one merge pass that splices all inserts in a single
// sweep. It replaces the per-message insertLeaf loop of a buffer flush,
// whose repeated binary search + entry shift made flush cascades the
// Bε-tree cell's hottest CPU path. The returned serialized delta equals
// the sum insertLeaf would have returned message by message.
func (n *node) insertBatch(mm *mem, batch []message) int {
	delta := 0
	toIns := mm.scratch[:0]
	ei := n.search(batch[0].key)
	for bi := range batch {
		m := &batch[bi]
		for ei < len(n.entries) && kv.CompareKeys(n.entries[ei].key, m.key) < 0 {
			ei++
		}
		if ei < len(n.entries) && bytes.Equal(n.entries[ei].key, m.key) {
			e := &n.entries[ei]
			if m.seq < e.seq {
				continue // stale (recovery replay only)
			}
			delta += m.bytes() - e.bytes()
			key := e.key // keep the resident key bytes
			*e = *m
			e.key = key
			continue
		}
		toIns = append(toIns, *m)
		delta += m.bytes()
	}
	mm.scratch = toIns[:0]
	n.serialized += delta
	if len(toIns) == 0 {
		return delta
	}
	oldLen := len(n.entries)
	if cap(n.entries) >= oldLen+len(toIns) {
		// Backward in-place merge: walk both runs from the end so no
		// surviving entry is overwritten before it moves.
		n.entries = n.entries[:oldLen+len(toIns)]
		si, bi := oldLen-1, len(toIns)-1
		for dst := len(n.entries) - 1; bi >= 0; dst-- {
			if si >= 0 && kv.CompareKeys(n.entries[si].key, toIns[bi].key) > 0 {
				n.entries[dst] = n.entries[si]
				si--
			} else {
				n.entries[dst] = toIns[bi]
				bi--
			}
		}
		return delta
	}
	grown := mm.msgs.Get(oldLen + len(toIns))
	si, bi := 0, 0
	for dst := 0; dst < len(grown); dst++ {
		switch {
		case si >= oldLen:
			grown[dst] = toIns[bi]
			bi++
		case bi >= len(toIns) || kv.CompareKeys(n.entries[si].key, toIns[bi].key) < 0:
			grown[dst] = n.entries[si]
			si++
		default:
			grown[dst] = toIns[bi]
			bi++
		}
	}
	mm.msgs.Put(n.entries)
	n.entries = grown
	return delta
}

// splitLeaf moves the upper half of the entries into right (a fresh
// slab-allocated node) and returns it with the separator key (first key
// of the new node). The moved half draws pooled storage.
func (n *node) splitLeaf(mm *mem, right *node, newID nodeID) (*node, []byte) {
	mid := len(n.entries) / 2
	right.id = newID
	right.parent = n.parent
	right.leaf = true
	right.entries = mm.msgs.CloneTail(n.entries, mid)
	var movedBytes int
	for i := mid; i < len(n.entries); i++ {
		movedBytes += n.entries[i].bytes()
	}
	right.serialized = pageHeaderBytes + movedBytes
	n.entries = n.entries[:mid]
	n.serialized -= movedBytes
	right.next = n.next
	n.next = right.id
	return right, right.entries[0].key
}

// insertChild adds a separator and child after position idx. The
// separator copy comes from the tree's arena.
func (n *node) insertChild(mm *mem, idx int, sep []byte, child nodeID) {
	n.seps = append(n.seps, nil)
	copy(n.seps[idx+1:], n.seps[idx:])
	n.seps[idx] = mm.arena.Clone(sep)
	n.children = append(n.children, nilNode)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = child
	delta := 2 + len(sep) + childRefBytes
	n.pivotBytes += delta
	n.serialized += delta
	n.insertSepCache(idx, n.seps[idx])
}

// insertSepCache splices one separator's decomposed words into the word
// cache.
func (n *node) insertSepCache(idx int, sep []byte) { n.sepCache.Insert(idx, sep) }

// splitInterior moves the upper half of an interior node (pivots AND the
// buffered messages routed to them) into right (a fresh slab-allocated
// node), returning it and the separator promoted to the parent.
func (n *node) splitInterior(mm *mem, right *node, newID nodeID) (*node, []byte) {
	mid := len(n.seps) / 2
	promoted := n.seps[mid]
	right.id = newID
	right.parent = n.parent
	right.leaf = false
	right.seps = append([][]byte(nil), n.seps[mid+1:]...)
	right.children = append([]nodeID(nil), n.children[mid+1:]...)
	// Messages with key >= promoted route to the right node (childFor
	// sends key == sep to the right child).
	cut := searchMsgs(n.buf, promoted)
	right.buf = mm.msgs.CloneTail(n.buf, cut)
	for i := range right.buf {
		right.bufBytes += right.buf[i].bytes()
	}
	n.buf = n.buf[:cut]
	n.bufBytes -= right.bufBytes

	n.seps = n.seps[:mid]
	n.children = n.children[:mid+1]
	n.recomputeSerialized()
	n.refreshSepCache()
	right.recomputeSerialized()
	right.refreshSepCache()
	return right, promoted
}

// recomputeSerialized recalculates an interior node's pivot and total
// footprints from scratch.
func (n *node) recomputeSerialized() {
	s := pageHeaderBytes + childRefBytes*len(n.children)
	for _, sep := range n.seps {
		s += 2 + len(sep)
	}
	n.pivotBytes = s
	n.serialized = s + n.bufBytes
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
