package betree

import (
	"bytes"

	"ptsbench/internal/extalloc"
	"ptsbench/internal/kv"
)

// fileExtent aliases the shared extent type; see internal/extalloc.
type fileExtent = extalloc.Extent

// nodeID identifies an in-memory node. IDs are never reused.
type nodeID uint32

const nilNode nodeID = 0

// msgOverhead is the serialized per-message (and per-leaf-entry) header:
// keyLen(2) + valueLen(4) + seq(8).
const msgOverhead = 14

// pageHeaderBytes is the serialized node header size.
const pageHeaderBytes = 64

// childRefBytes is the serialized size of one child reference in an
// interior node: extent start (8) + extent pages (4).
const childRefBytes = 12

// message is one buffered update or leaf entry: key, optional value
// bytes (content mode), accounted value length, sequence and tombstone
// flag. Buffers and leaves share the representation because a flush
// moves messages unchanged until they land in a leaf.
type message struct {
	key  []byte
	val  []byte
	seq  uint64
	vlen int32
	del  bool
}

// bytes returns the message's serialized footprint.
func (m *message) bytes() int {
	return msgOverhead + len(m.key) + int(m.vlen)
}

// node is an in-memory Bε-tree node. Leaves carry entries; interior
// nodes carry separator keys, children and a message buffer sorted by
// key (one message per key — a newer update overwrites the buffered
// older one, which is the classic upsert collapse).
type node struct {
	id     nodeID
	parent nodeID
	leaf   bool

	// Leaf payload, sorted by key.
	entries []message

	// Interior payload: children[i] holds keys < seps[i] for
	// i < len(seps); children[len(seps)] holds the rest.
	seps     [][]byte
	children []nodeID

	// buf is the interior message buffer, sorted by key. bufBytes is its
	// serialized footprint.
	buf      []message
	bufBytes int

	// childExtents is only populated on nodes reconstructed from disk
	// (recovery): the on-disk locations of the children, in child order.
	childExtents []fileExtent

	// serialized is the full serialized size (pivot section + buffer for
	// interiors; header + entries for leaves). pivotBytes tracks the
	// pivot section alone — the quantity the fanout budget bounds.
	serialized int
	pivotBytes int

	dirty bool

	// On-disk location (pages within the collection file); pages==0
	// means never written.
	disk fileExtent

	// Cache bookkeeping (leaves only): resident leaves form an LRU list.
	resident   bool
	lruNewer   nodeID
	lruOlder   nodeID
	everOnDisk bool

	// next chains leaves left-to-right for range scans.
	next nodeID
}

// searchMsgs returns the index of the first message in msgs with
// key >= target.
func searchMsgs(msgs []message, target []byte) int {
	wHi, wLo, fast := kv.DecomposeKey(target)
	lo, hi := 0, len(msgs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		var c int
		if mk := msgs[mid].key; fast && len(mk) == kv.KeySize {
			c = kv.CompareKeyWords(mk, wHi, wLo)
		} else {
			c = kv.CompareKeys(mk, target)
		}
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// search returns the index of the first leaf entry with key >= target.
func (n *node) search(target []byte) int { return searchMsgs(n.entries, target) }

// childFor returns the index of the child covering target.
func (n *node) childFor(target []byte) int {
	wHi, wLo, fast := kv.DecomposeKey(target)
	lo, hi := 0, len(n.seps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		var c int
		if sk := n.seps[mid]; fast && len(sk) == kv.KeySize {
			c = kv.CompareKeyWords(sk, wHi, wLo)
		} else {
			c = kv.CompareKeys(sk, target)
		}
		if c <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the position of child id.
func (n *node) childIndex(id nodeID) int {
	for i, c := range n.children {
		if c == id {
			return i
		}
	}
	return -1
}

// bufGet returns the buffered message for key, or nil.
func (n *node) bufGet(key []byte) *message {
	i := searchMsgs(n.buf, key)
	if i < len(n.buf) && bytes.Equal(n.buf[i].key, key) {
		return &n.buf[i]
	}
	return nil
}

// bufInsert upserts a message into the buffer, returning the serialized
// size delta. owned says the message owns its key/value bytes (flushes
// move already-owned messages down); with owned=false — the Put
// boundary, where callers reuse their buffers — bytes are cloned only
// when actually retained, so an overwrite (which keeps the resident
// key) costs no key allocation. An existing message for the same key is
// overwritten when the incoming one is at least as new (flush batches
// always move the newest surviving version, so the guard only matters
// on recovery replay).
func (n *node) bufInsert(m message, owned bool) int {
	i := searchMsgs(n.buf, m.key)
	if i < len(n.buf) && bytes.Equal(n.buf[i].key, m.key) {
		old := &n.buf[i]
		if m.seq < old.seq {
			return 0
		}
		delta := m.bytes() - old.bytes()
		// Keep the resident key bytes; only the value changes.
		m.key = old.key
		if !owned {
			m.val = cloneBytes(m.val)
		}
		*old = m
		n.bufBytes += delta
		n.serialized += delta
		return delta
	}
	if !owned {
		m.key = cloneBytes(m.key)
		m.val = cloneBytes(m.val)
	}
	n.buf = append(n.buf, message{})
	copy(n.buf[i+1:], n.buf[i:])
	n.buf[i] = m
	delta := m.bytes()
	n.bufBytes += delta
	n.serialized += delta
	return delta
}

// insertLeaf inserts or replaces a leaf entry, returning the serialized
// size delta. owned works as in bufInsert. Stale messages (older seq
// than the stored entry) are dropped — they can only reach a leaf
// through recovery replay.
func (n *node) insertLeaf(m message, owned bool) int {
	i := n.search(m.key)
	if i < len(n.entries) && bytes.Equal(n.entries[i].key, m.key) {
		e := &n.entries[i]
		if m.seq < e.seq {
			return 0
		}
		delta := m.bytes() - e.bytes()
		m.key = e.key
		if !owned {
			m.val = cloneBytes(m.val)
		}
		*e = m
		n.serialized += delta
		return delta
	}
	if !owned {
		m.key = cloneBytes(m.key)
		m.val = cloneBytes(m.val)
	}
	n.entries = append(n.entries, message{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = m
	delta := m.bytes()
	n.serialized += delta
	return delta
}

// splitLeaf moves the upper half of the entries to a new node and
// returns it with the separator key (first key of the new node).
func (n *node) splitLeaf(newID nodeID) (*node, []byte) {
	mid := len(n.entries) / 2
	right := &node{
		id:      newID,
		parent:  n.parent,
		leaf:    true,
		entries: append([]message(nil), n.entries[mid:]...),
	}
	var moved int
	for i := mid; i < len(n.entries); i++ {
		moved += n.entries[i].bytes()
	}
	right.serialized = pageHeaderBytes + moved
	n.entries = n.entries[:mid]
	n.serialized -= moved
	right.next = n.next
	n.next = right.id
	return right, right.entries[0].key
}

// insertChild adds a separator and child after position idx.
func (n *node) insertChild(idx int, sep []byte, child nodeID) {
	n.seps = append(n.seps, nil)
	copy(n.seps[idx+1:], n.seps[idx:])
	n.seps[idx] = cloneBytes(sep)
	n.children = append(n.children, nilNode)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = child
	delta := 2 + len(sep) + childRefBytes
	n.pivotBytes += delta
	n.serialized += delta
}

// splitInterior moves the upper half of an interior node (pivots AND the
// buffered messages routed to them) to a new node, returning it and the
// separator promoted to the parent.
func (n *node) splitInterior(newID nodeID) (*node, []byte) {
	mid := len(n.seps) / 2
	promoted := n.seps[mid]
	right := &node{
		id:       newID,
		parent:   n.parent,
		leaf:     false,
		seps:     append([][]byte(nil), n.seps[mid+1:]...),
		children: append([]nodeID(nil), n.children[mid+1:]...),
	}
	// Messages with key >= promoted route to the right node (childFor
	// sends key == sep to the right child).
	cut := searchMsgs(n.buf, promoted)
	right.buf = append([]message(nil), n.buf[cut:]...)
	for i := range right.buf {
		right.bufBytes += right.buf[i].bytes()
	}
	n.buf = n.buf[:cut]
	n.bufBytes -= right.bufBytes

	n.seps = n.seps[:mid]
	n.children = n.children[:mid+1]
	n.recomputeSerialized()
	right.recomputeSerialized()
	return right, promoted
}

// recomputeSerialized recalculates an interior node's pivot and total
// footprints from scratch.
func (n *node) recomputeSerialized() {
	s := pageHeaderBytes + childRefBytes*len(n.children)
	for _, sep := range n.seps {
		s += 2 + len(sep)
	}
	n.pivotBytes = s
	n.serialized = s + n.bufBytes
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
