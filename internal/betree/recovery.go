package betree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"ptsbench/internal/extalloc"
	"ptsbench/internal/extfs"
	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// Checkpoint metadata: a double-buffered pair of tiny files records the
// root node's on-disk extent and the sequence high-water mark of the
// last completed checkpoint. Recovery parses the tree (including the
// persisted interior buffers) from the root and replays the surviving
// journal segments on top.

const (
	metaA     = "bemeta-A"
	metaB     = "bemeta-B"
	metaMagic = 0x42454D54 // "BEMT"
	metaBytes = 4 + 8 + 8 + 8 + 4 + 8 + 4
)

type metaState struct {
	gen       uint64
	seq       uint64
	journalID uint64
	root      fileExtent
}

func (m *metaState) encode() []byte {
	b := make([]byte, metaBytes)
	binary.LittleEndian.PutUint32(b[0:], metaMagic)
	binary.LittleEndian.PutUint64(b[4:], m.gen)
	binary.LittleEndian.PutUint64(b[12:], m.seq)
	binary.LittleEndian.PutUint64(b[20:], uint64(m.root.Start))
	binary.LittleEndian.PutUint32(b[28:], uint32(m.root.Pages))
	binary.LittleEndian.PutUint64(b[32:], m.journalID)
	binary.LittleEndian.PutUint32(b[40:], crc32.ChecksumIEEE(b[:40]))
	return b
}

func decodeMeta(b []byte) (*metaState, error) {
	if len(b) < metaBytes {
		return nil, fmt.Errorf("betree: metadata too short")
	}
	if binary.LittleEndian.Uint32(b[0:]) != metaMagic {
		return nil, fmt.Errorf("betree: bad metadata magic")
	}
	if crc32.ChecksumIEEE(b[:40]) != binary.LittleEndian.Uint32(b[40:]) {
		return nil, fmt.Errorf("betree: metadata CRC mismatch")
	}
	return &metaState{
		gen:       binary.LittleEndian.Uint64(b[4:]),
		seq:       binary.LittleEndian.Uint64(b[12:]),
		journalID: binary.LittleEndian.Uint64(b[32:]),
		root: fileExtent{
			Start: int64(binary.LittleEndian.Uint64(b[20:])),
			Pages: int64(binary.LittleEndian.Uint32(b[28:])),
		},
	}, nil
}

// writeMeta persists the checkpoint metadata into the older slot.
func (t *Tree) writeMeta(now sim.Duration) (sim.Duration, error) {
	root := t.nodes[t.root]
	if root.disk.Pages == 0 {
		return now, nil
	}
	t.metaGen++
	st := metaState{gen: t.metaGen, seq: t.seq, journalID: t.journalID, root: root.disk}
	name := metaA
	if t.metaGen%2 == 0 {
		name = metaB
	}
	f, err := t.fs.Open(name)
	if err != nil {
		if f, err = t.fs.Create(name); err != nil {
			return now, err
		}
		if err := f.Grow(1); err != nil {
			return now, err
		}
	}
	var data []byte
	if t.cfg.Content {
		data = make([]byte, t.fs.PageSize())
		copy(data, st.encode())
	}
	return f.WriteAt(now, 0, 1, data)
}

// readMeta loads the newest valid checkpoint metadata, or nil.
func readMeta(fs *extfs.FS, now sim.Duration) (*metaState, sim.Duration, error) {
	var best *metaState
	for _, name := range []string{metaA, metaB} {
		f, err := fs.Open(name)
		if err != nil {
			continue
		}
		buf := make([]byte, f.SizePages()*int64(fs.PageSize()))
		now, err = f.ReadAt(now, 0, int(f.SizePages()), buf)
		if err != nil {
			return nil, now, err
		}
		st, err := decodeMeta(buf)
		if err != nil {
			continue
		}
		if best == nil || st.gen > best.gen {
			best = st
		}
	}
	return best, now, nil
}

// Recover reopens a Bε-tree from its on-device state: the newest
// checkpoint metadata locates the root, the tree — interior buffers
// included — is parsed top-down, and surviving journal records are
// replayed on top (sequence-guarded, so a replay never regresses a
// newer on-disk value). It requires content mode. The returned time
// includes all recovery I/O.
func Recover(fs *extfs.FS, cfg Config, now sim.Duration) (*Tree, sim.Duration, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, now, err
	}
	if !cfg.Content {
		return nil, now, fmt.Errorf("betree: Recover requires content mode")
	}
	st, now, err := readMeta(fs, now)
	if err != nil {
		return nil, now, err
	}
	if st == nil {
		return nil, now, fmt.Errorf("betree: no valid checkpoint metadata found")
	}
	f, err := fs.Open("collection.be")
	if err != nil {
		return nil, now, fmt.Errorf("betree: collection file missing: %w", err)
	}
	t := &Tree{
		cfg:       cfg,
		pivotMax:  cfg.pivotBudget(),
		bufferMax: cfg.bufferBudget(),
		fs:        fs,
		file:      f,
		bm:        extalloc.New(f, int64(cfg.LeafPageBytes/fs.PageSize())*16),
		nodes:     make([]*node, 1, 64), // index 0 is nilNode
		ckptW:     sim.NewWorker("betree-checkpoint"),
		seq:       st.seq,
		journalID: st.journalID,
		metaGen:   st.gen,
	}
	used := []fileExtent{}
	rootID, done, err := t.loadSubtree(now, st.root, nilNode, &used)
	if err != nil {
		return nil, now, err
	}
	now = done
	t.root = rootID
	t.rebuildFreeList(used)
	t.rebuildLeafChain()
	if root := t.nodes[t.root]; root.leaf {
		t.admit(root)
	}
	// Replay journals; the per-key sequence guard in the insert paths
	// keeps checkpointed-newer state from being regressed.
	var records []wal.Record
	var segments []string
	for _, name := range fs.List() {
		if !strings.HasPrefix(name, "bjournal-") {
			continue
		}
		segments = append(segments, name)
		done, err := wal.Replay(fs, name, now, func(r wal.Record) {
			records = append(records, r)
		})
		if err != nil {
			return nil, now, err
		}
		now = done
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	for i := range records {
		r := &records[i]
		now, err = t.applyRecovered(now, r)
		if err != nil {
			return nil, now, err
		}
		if r.Seq > t.seq {
			t.seq = r.Seq
		}
	}
	if !cfg.DisableJournal {
		w, err := wal.Create(fs, t.journalName(), cfg.Content)
		if err != nil {
			return nil, now, err
		}
		t.journal = w
	}
	if end, err := t.FlushAll(now); err != nil {
		return nil, now, err
	} else if end > now {
		now = end
	}
	for _, name := range segments {
		if t.journal != nil && name == t.journal.Name() {
			continue
		}
		if t.poolTracks(name) {
			continue
		}
		if err := fs.Remove(name); err != nil {
			return nil, now, err
		}
	}
	return t, now, nil
}

func (t *Tree) poolTracks(name string) bool {
	for _, w := range t.journalPool {
		if w.Name() == name {
			return true
		}
	}
	return false
}

// loadSubtree reads and parses the node at ext, recursing into children,
// and returns the assigned in-memory node id.
func (t *Tree) loadSubtree(now sim.Duration, ext fileExtent, parent nodeID, used *[]fileExtent) (nodeID, sim.Duration, error) {
	if ext.Pages <= 0 {
		return nilNode, now, fmt.Errorf("betree: empty extent in tree walk")
	}
	buf := make([]byte, int(ext.Pages)*t.fs.PageSize())
	now, err := t.file.ReadAt(now, ext.Start, int(ext.Pages), buf)
	if err != nil {
		return nilNode, now, err
	}
	n, ok := parseNode(buf)
	if !ok {
		return nilNode, now, fmt.Errorf("betree: corrupt node at extent %d+%d", ext.Start, ext.Pages)
	}
	t.nextID++
	n.id = t.nextID
	n.parent = parent
	n.disk = ext
	n.everOnDisk = true
	if n.leaf {
		var sz int
		for i := range n.entries {
			sz += n.entries[i].bytes()
		}
		n.serialized = pageHeaderBytes + sz
	} else {
		n.recomputeSerialized()
	}
	t.registerNode(n)
	*used = append(*used, ext)
	if !n.leaf {
		for i, ce := range n.childExtents {
			childID, done, err := t.loadSubtree(now, ce, n.id, used)
			if err != nil {
				return nilNode, now, err
			}
			now = done
			n.children[i] = childID
		}
		n.childExtents = nil
	}
	return n.id, now, nil
}

// rebuildFreeList reconstructs the block manager's free list as the
// complement of the extents the tree references.
func (t *Tree) rebuildFreeList(used []fileExtent) {
	sort.Slice(used, func(i, j int) bool { return used[i].Start < used[j].Start })
	var cursor int64
	for _, e := range used {
		if e.Start > cursor {
			t.bm.Release(fileExtent{Start: cursor, Pages: e.Start - cursor})
		}
		if end := e.Start + e.Pages; end > cursor {
			cursor = end
		}
	}
	if total := t.file.SizePages(); total > cursor {
		t.bm.Release(fileExtent{Start: cursor, Pages: total - cursor})
	}
}

// rebuildLeafChain links leaves left-to-right by walking the tree in
// order.
func (t *Tree) rebuildLeafChain() {
	var prev *node
	var walk func(id nodeID)
	walk = func(id nodeID) {
		n := t.nodes[id]
		if n.leaf {
			if prev != nil {
				prev.next = n.id
			}
			prev = n
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}

// applyRecovered replays one journal record through the message path
// (without journaling, CPU costs or eviction), threading the recovery
// clock so leaf loads triggered by flush cascades are charged. A record
// is dropped when ANY version along the key's root-to-leaf path — a
// buffered message or the leaf entry — is at least as new: inserting an
// older message at the root would shadow the newer deeper version on
// reads.
func (t *Tree) applyRecovered(now sim.Duration, r *wal.Record) (sim.Duration, error) {
	n := t.nodes[t.root]
	for !n.leaf {
		if m := n.bufGet(r.Key); m != nil && m.seq >= r.Seq {
			return now, nil
		}
		n = t.nodes[n.children[n.childFor(r.Key)]]
	}
	if i := n.search(r.Key); i < len(n.entries) &&
		bytes.Equal(n.entries[i].key, r.Key) && n.entries[i].seq >= r.Seq {
		return now, nil
	}
	vlen := r.ValueLen
	if r.Value != nil {
		vlen = len(r.Value)
	}
	// Replayed records own their bytes (decodeRecord allocates fresh
	// slices per record), so the message transfers them without cloning.
	msg := message{key: r.Key, val: r.Value, seq: r.Seq, vlen: int32(vlen), del: r.Deleted}
	return t.apply(now, msg, true)
}
