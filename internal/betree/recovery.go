package betree

import (
	"bytes"
	"fmt"

	"ptsbench/internal/cowtree"
	"ptsbench/internal/extalloc"
	"ptsbench/internal/extfs"
	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// The recovery skeleton — metadata selection, the top-down tree walk,
// free-list reconstruction, leaf-chain rebuild, sequence-ordered journal
// replay and stale-segment retirement — lives in internal/cowtree. This
// file provides the engine-specific hooks: node materialization (the
// codec, interior buffers included) and the journal-record apply path.

// Recover reopens a Bε-tree from its on-device state: the newest
// checkpoint metadata locates the root, the tree — interior buffers
// included — is parsed top-down, and surviving journal records are
// replayed on top (sequence-guarded, so a replay never regresses a
// newer on-disk value). It requires content mode. The returned time
// includes all recovery I/O.
func Recover(fs *extfs.FS, cfg Config, now sim.Duration) (*Tree, sim.Duration, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, now, err
	}
	if !cfg.Content {
		return nil, now, fmt.Errorf("betree: Recover requires content mode")
	}
	st, now, err := cowtree.ReadMeta(fs, "bemeta", metaMagic, "betree", now)
	if err != nil {
		return nil, now, err
	}
	if st == nil {
		// The tree died before its first checkpoint committed: the
		// synced journal is the only durable state. Rebuild from an
		// empty root and replay it (see cowtree.RecoverBootstrap).
		return bootstrap(fs, cfg, now)
	}
	f, err := fs.Open("collection.be")
	if err != nil {
		return nil, now, fmt.Errorf("betree: collection file missing: %w", err)
	}
	t := &Tree{
		cfg:       cfg,
		pivotMax:  cfg.pivotBudget(),
		bufferMax: cfg.bufferBudget(),
		fs:        fs,
		file:      f,
		bm:        extalloc.New(f, int64(cfg.LeafPageBytes/fs.PageSize())*16),
		nodes:     make([]*node, 1, 64), // index 0 is nilNode
	}
	t.core.Init(t, fs, f, t.bm, coreConfig(cfg))
	t.core.SetJournalState(st.JournalID, st.Gen)
	// Rebuild the tree (interior buffers included) from the root, then
	// replay the surviving journal segments, newest records winning. The
	// sequence counter is recomputed from disk state (MaterializeNode
	// tracks the max sequence over leaf entries AND buffered messages,
	// ApplyRecovered advances it per replayed record) rather than trusted
	// from the metadata, so it can be checked against the floor below.
	now, err = t.core.RecoverTree(now, st.Root, t, func(id cowtree.NodeID) {
		t.root = id
		if root := t.nodes[id]; root.leaf {
			t.admit(root)
		}
	})
	if err != nil {
		return nil, now, err
	}
	// The metadata's floor promises every update with seq <= st.Seq is in
	// the checkpointed tree image — as a leaf entry or a message still
	// buffered in an interior node (tombstones included in both forms).
	// Recovering less means node writes the device acknowledged before
	// the checkpoint barrier never persisted: the device lied about
	// fsync. Refuse loudly rather than silently serving the stale tree.
	if t.seq < st.Seq {
		return nil, now, fmt.Errorf(
			"betree: recovered sequence %d below checkpoint floor %d: device dropped acknowledged writes (fsync lie)",
			t.seq, st.Seq)
	}
	if err := t.core.StartJournal(); err != nil {
		return nil, now, err
	}
	if end, err := t.FlushAll(now); err != nil {
		return nil, now, err
	} else if end > now {
		now = end
	}
	if err := t.core.RetireStaleSegments(); err != nil {
		return nil, now, err
	}
	return t, now, nil
}

// bootstrap recovers with no committed checkpoint: an empty tree plus
// journal replay, closed out by the first real checkpoint so the next
// crash finds valid metadata.
func bootstrap(fs *extfs.FS, cfg Config, now sim.Duration) (*Tree, sim.Duration, error) {
	f, err := fs.Open("collection.be")
	if err != nil {
		if f, err = fs.Create("collection.be"); err != nil {
			return nil, now, err
		}
	}
	t := &Tree{
		cfg:       cfg,
		pivotMax:  cfg.pivotBudget(),
		bufferMax: cfg.bufferBudget(),
		fs:        fs,
		file:      f,
		bm:        extalloc.New(f, int64(cfg.LeafPageBytes/fs.PageSize())*16),
		nodes:     make([]*node, 1, 64), // index 0 is nilNode
	}
	t.core.Init(t, fs, f, t.bm, coreConfig(cfg))
	rootLeaf := t.newNode(true)
	rootLeaf.parent = nilNode
	t.root = rootLeaf.id
	t.admit(rootLeaf)
	if now, err = t.core.RecoverBootstrap(now, t); err != nil {
		return nil, now, err
	}
	if err := t.core.StartJournal(); err != nil {
		return nil, now, err
	}
	if end, err := t.FlushAll(now); err != nil {
		return nil, now, err
	} else if end > now {
		now = end
	}
	if err := t.core.RetireStaleSegments(); err != nil {
		return nil, now, err
	}
	return t, now, nil
}

// MaterializeNode implements cowtree.RecoveryEngine: parse one on-disk
// image (interior buffers included), register the node and return its
// child extents for the walk.
func (t *Tree) MaterializeNode(data []byte, ext cowtree.Extent, parent cowtree.NodeID) (cowtree.NodeID, []cowtree.Extent, error) {
	n, ok := parseNode(data)
	if !ok {
		return nilNode, nil, fmt.Errorf("betree: corrupt node at extent %d+%d", ext.Start, ext.Pages)
	}
	t.nextID++
	n.id = t.nextID
	n.parent = parent
	n.disk = ext
	n.everOnDisk = true
	if n.leaf {
		var sz int
		for i := range n.entries {
			sz += n.entries[i].bytes()
			if s := n.entries[i].seq; s > t.seq {
				t.seq = s // recompute the counter from disk state
			}
		}
		n.serialized = pageHeaderBytes + sz
	} else {
		for i := range n.buf {
			if s := n.buf[i].seq; s > t.seq {
				t.seq = s // buffered messages count toward the max too
			}
		}
		n.recomputeSerialized()
		n.refreshSepCache()
	}
	t.registerNode(n)
	childExts := n.childExtents
	n.childExtents = nil
	return n.id, childExts, nil
}

// LinkChild implements cowtree.RecoveryEngine.
func (t *Tree) LinkChild(parent cowtree.NodeID, i int, child cowtree.NodeID) {
	t.nodes[parent].children[i] = child
}

// SetNext implements cowtree.RecoveryEngine (the left-to-right leaf
// chain scans follow).
func (t *Tree) SetNext(id, next cowtree.NodeID) { t.nodes[id].next = next }

// ApplyRecovered implements cowtree.RecoveryEngine: replay one journal
// record through the message path (without journaling, CPU costs or
// eviction), threading the recovery clock so leaf loads triggered by
// flush cascades are charged. A record is dropped when ANY version along
// the key's root-to-leaf path — a buffered message or the leaf entry —
// is at least as new: inserting an older message at the root would
// shadow the newer deeper version on reads.
func (t *Tree) ApplyRecovered(now sim.Duration, r *wal.Record) (sim.Duration, error) {
	if r.Seq > t.seq {
		t.seq = r.Seq
	}
	n := t.nodes[t.root]
	for !n.leaf {
		if m := n.bufGet(r.Key); m != nil && m.seq >= r.Seq {
			return now, nil
		}
		n = t.nodes[n.children[n.childFor(r.Key)]]
	}
	if i := n.search(r.Key); i < len(n.entries) &&
		bytes.Equal(n.entries[i].key, r.Key) && n.entries[i].seq >= r.Seq {
		return now, nil
	}
	vlen := r.ValueLen
	if r.Value != nil {
		vlen = len(r.Value)
	}
	// Replayed records own their bytes (decodeRecord allocates fresh
	// slices per record), so the message transfers them without cloning.
	msg := makeMessage(r.Key, r.Value, r.Seq, vlen, r.Deleted)
	return t.apply(now, msg, true)
}
