package betree

import (
	"bytes"
	"testing"
	"time"

	"ptsbench/internal/cowtree"
	"ptsbench/internal/extfs"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// recoveryEnv builds a content-mode tree with synced journaling and
// small nodes (so buffers, flushes and splits all participate).
func recoveryEnv(t *testing.T, tweak func(*Config)) (*Tree, *extfs.FS) {
	t.Helper()
	tr, _, fs := testEnv(t, 32, true, func(c *Config) {
		smallNodes(c)
		c.JournalSync = true
		if tweak != nil {
			tweak(c)
		}
	})
	return tr, fs
}

func TestRecoverAfterCleanClose(t *testing.T) {
	tr, fs := recoveryEnv(t, nil)
	var now sim.Duration
	var err error
	want := map[uint64][]byte{}
	for id := uint64(0); id < 600; id++ {
		v := []byte{byte(id), byte(id >> 8)}
		want[id] = v
		now, err = tr.Put(now, kv.EncodeKey(id), v, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Close(now); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rnow == 0 {
		t.Fatal("recovery should charge I/O time")
	}
	for id, v := range want {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found {
			t.Fatalf("key %d lost after recovery: %v %v", id, found, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("key %d value corrupted: %v vs %v", id, got, v)
		}
	}
	if re.Depth() < 2 {
		t.Fatalf("recovered depth %d, want >= 2", re.Depth())
	}
	_, scanned, err := re.Scan(rnow, kv.EncodeKey(100), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(scanned) != 50 {
		t.Fatalf("recovered scan returned %d entries", len(scanned))
	}
	for i, e := range scanned {
		if id, _ := kv.DecodeKey(e.Key); id != uint64(100+i) {
			t.Fatalf("recovered scan out of order at %d", i)
		}
	}
}

func TestRecoverAfterCrash(t *testing.T) {
	// Updates after the last checkpoint live only in the journal; the
	// checkpoint itself holds part of the data in interior buffers.
	tr, fs := recoveryEnv(t, nil)
	var now sim.Duration
	var err error
	for id := uint64(0); id < 300; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{1}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = tr.FlushAll(now) // checkpoint (buffers persisted in images)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 50; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{2}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	for id := uint64(50); id < 80; id++ {
		now, err = tr.Delete(now, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": no checkpoint, no close.
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 300; id++ {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case id < 50:
			if !found || got[0] != 2 {
				t.Fatalf("key %d: want post-crash value 2, got %v found=%v", id, got, found)
			}
		case id < 80:
			if found {
				t.Fatalf("key %d: deleted before crash but visible", id)
			}
		default:
			if !found || got[0] != 1 {
				t.Fatalf("key %d: want original value 1, got %v found=%v", id, got, found)
			}
		}
	}
}

func TestRecoveredTreeAcceptsWrites(t *testing.T) {
	tr, fs := recoveryEnv(t, nil)
	now, err := tr.Put(0, kv.EncodeKey(1), []byte("a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Close(now); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	rnow, err = re.Put(rnow, kv.EncodeKey(2), []byte("b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.FlushAll(rnow); err != nil {
		t.Fatal(err)
	}
	for id, want := range map[uint64]string{1: "a", 2: "b"} {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found || string(got) != want {
			t.Fatalf("key %d: %q %v %v", id, got, found, err)
		}
	}
}

func TestRecoverRequiresContentMode(t *testing.T) {
	_, _, fs := testEnv(t, 16, false, nil)
	cfg := NewConfig(8 << 20)
	if _, _, err := Recover(fs, cfg, 0); err == nil {
		t.Fatal("recovery without content mode should fail")
	}
}

// TestRecoverWithoutMetaBootstraps: a crash before the first checkpoint
// leaves both meta slots empty. Recovery must not wedge the tree — it
// bootstraps an empty root, replays whatever journal survived, and
// commits a first real checkpoint so the next crash is ordinary.
func TestRecoverWithoutMetaBootstraps(t *testing.T) {
	_, _, fs := testEnv(t, 16, true, nil)
	cfg := NewConfig(8 << 20)
	cfg.Content = true
	tr, now, err := Recover(fs, cfg, 0)
	if err != nil {
		t.Fatalf("bootstrap recovery: %v", err)
	}
	if _, _, found, err := tr.Get(now+1, kv.EncodeKey(1)); err != nil || found {
		t.Fatalf("bootstrapped tree should be empty: found=%v err=%v", found, err)
	}
	if _, err := tr.Put(now+2, kv.EncodeKey(1), []byte("a"), 1); err != nil {
		t.Fatalf("put on bootstrapped tree: %v", err)
	}
	if _, got, found, err := tr.Get(now+3, kv.EncodeKey(1)); err != nil || !found || string(got) != "a" {
		t.Fatalf("key 1 after bootstrap put: %q %v %v", got, found, err)
	}
}

func TestMetaEncodeDecode(t *testing.T) {
	st := cowtree.Meta{Gen: 7, Seq: 1234, JournalID: 3, Root: fileExtent{Start: 99, Pages: 4}}
	got, err := cowtree.DecodeMeta(cowtree.EncodeMeta(&st, metaMagic), metaMagic, "betree")
	if err != nil {
		t.Fatal(err)
	}
	if *got != st {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, st)
	}
	enc := cowtree.EncodeMeta(&st, metaMagic)
	enc[5] ^= 0xFF
	if _, err := cowtree.DecodeMeta(enc, metaMagic, "betree"); err == nil {
		t.Fatal("corrupted metadata should fail")
	}
	if _, err := cowtree.DecodeMeta([]byte{1}, metaMagic, "betree"); err == nil {
		t.Fatal("short metadata should fail")
	}
}

// TestRecoverSingleLeafUpdateBetweenCheckpoints is the regression test
// for the checkpoint ancestor-closure bug: an update that dirties ONLY
// a leaf (the ε=1 direct-to-leaf path) must survive a checkpoint +
// crash + recovery. Before the fix, the checkpoint wrote the leaf to a
// new extent but committed metadata pointing at the unchanged old root
// image — whose child references still named the leaf's old extent —
// while recycling the journal that held the update: silent data loss.
func TestRecoverSingleLeafUpdateBetweenCheckpoints(t *testing.T) {
	for _, eps := range []float64{1.0, 0.6} {
		tr, fs := recoveryEnv(t, func(c *Config) { c.Epsilon = eps })
		var now sim.Duration
		var err error
		for id := uint64(0); id < 500; id++ {
			now, err = tr.Put(now, kv.EncodeKey(id), []byte{1}, 0)
			if err != nil {
				t.Fatal(err)
			}
		}
		now, err = tr.FlushAll(now) // checkpoint 1
		if err != nil {
			t.Fatal(err)
		}
		now, err = tr.Put(now, kv.EncodeKey(42), []byte{2}, 0)
		if err != nil {
			t.Fatal(err)
		}
		now, err = tr.FlushAll(now) // checkpoint 2 covers the update
		if err != nil {
			t.Fatal(err)
		}
		_ = now
		re, rnow, err := Recover(fs, tr.cfg, 0)
		if err != nil {
			t.Fatalf("ε=%.1f: %v", eps, err)
		}
		_, got, found, err := re.Get(rnow, kv.EncodeKey(42))
		if err != nil || !found || got[0] != 2 {
			t.Fatalf("ε=%.1f: key 42 recovered %v found=%v err=%v, want generation 2",
				eps, got, found, err)
		}
	}
}

// TestRecoverAfterMidCheckpointSplits is the regression test for the
// checkpoint/split race: with a tiny checkpoint interval and a 1-page
// I/O chunk, foreground splits constantly overlap in-flight
// checkpoints. Before the fix, an in-job interior serialized after a
// concurrent split embedded a zero extent for the split's brand-new
// child, so Recover failed with "empty extent in tree walk" and the
// whole dataset was unreadable.
func TestRecoverAfterMidCheckpointSplits(t *testing.T) {
	tr, fs := recoveryEnv(t, func(c *Config) {
		c.CheckpointInterval = 2 * time.Millisecond
		c.ChunkPages = 1
	})
	var now sim.Duration
	var err error
	for id := uint64(0); id < 6000; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{byte(id)}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	now = tr.Quiesce(now)
	_ = now
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 6000; id += 101 {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found || got[0] != byte(id) {
			t.Fatalf("key %d: %v found=%v err=%v", id, got, found, err)
		}
	}
}

// TestRecoverAfterMidCheckpointRootGrowth pins the commit-path fix for
// root growth during an in-flight checkpoint: the new root is an
// ANCESTOR of every snapshot node, so neither the snapshot closure nor
// writeSubtreeClean (descendants only) writes it. Before the fix,
// writeMeta silently declined (no on-disk root image) while the commit
// still released the previous checkpoint's extents and recycled the
// journal — data loss across the next crash. The test asserts the race
// actually occurred (white-box: the root id changed while a checkpoint
// job was queued), then crash-recovers and verifies every key.
func TestRecoverAfterMidCheckpointRootGrowth(t *testing.T) {
	tr, fs := recoveryEnv(t, func(c *Config) {
		c.CheckpointInterval = time.Hour // only the manual checkpoint below
		c.ChunkPages = 1
	})
	var now sim.Duration
	var err error
	// Some initial data, then start a checkpoint WITHOUT stepping it —
	// deterministic in-flight state.
	var id uint64
	for ; id < 200; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{byte(id)}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	// The job snapshots the dirty set and rotates the journal now; it is
	// submitted only after the root has grown, so the commit provably
	// runs against a root the snapshot has never seen (submitting first
	// would let the foreground Pump drain the job before the growth).
	job, err := tr.core.NewCheckpointJob()
	if err != nil || job == nil {
		t.Fatalf("no checkpoint job: %v", err)
	}
	// Grow the root while the checkpoint is logically in flight.
	rootBefore := tr.root
	for tr.root == rootBefore {
		if id > 100000 {
			t.Fatal("root never grew; tighten the config")
		}
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{byte(id)}, 0)
		if err != nil {
			t.Fatal(err)
		}
		id++
	}
	total := id
	tr.core.Worker().Submit(job)
	now = tr.Quiesce(now) // the racy checkpoint commits here
	_ = now
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < total; id += 23 {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found || got[0] != byte(id) {
			t.Fatalf("key %d: %v found=%v err=%v", id, got, found, err)
		}
	}
}

func TestRecoverySequenceGuard(t *testing.T) {
	// A checkpointed-newer version must not be regressed by an older
	// journal record that survives in a stale segment, and a journal
	// record newer than a buffered version must win.
	tr, fs := recoveryEnv(t, nil)
	var now sim.Duration
	var err error
	for id := uint64(0); id < 200; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{1}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite a key twice with a checkpoint between: the journal holds
	// only the newest generation, the checkpoint the middle one.
	now, err = tr.Put(now, kv.EncodeKey(7), []byte{2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	now, err = tr.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = tr.Put(now, kv.EncodeKey(7), []byte{3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = now
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, got, found, err := re.Get(rnow, kv.EncodeKey(7))
	if err != nil || !found || got[0] != 3 {
		t.Fatalf("key 7 after recovery: %v found=%v err=%v, want value 3", got, found, err)
	}
}
