// Package blockdev provides the host-visible block layer over a simulated
// flash device: iostat-style traffic counters, a blktrace-style per-LBA
// write histogram (the paper's Fig 4 instrumentation), partitioning (used
// for software over-provisioning, pitfall #6), and an optional content
// store that retains written bytes for correctness tests while staying
// out of the way at benchmark scale.
package blockdev

import (
	"fmt"
	"slices"

	"ptsbench/internal/deverr"
	"ptsbench/internal/flash"
	"ptsbench/internal/sim"
)

// Dev is the interface the filesystem layer programs against. Both the
// whole Device and a Partition implement it.
type Dev interface {
	// PageSize returns the sector size in bytes.
	PageSize() int
	// Pages returns the capacity in pages.
	Pages() int64
	// WriteAt writes n pages at page offset off starting at virtual time
	// now, returning the completion time. data may be nil (accounting
	// only) or must be exactly n*PageSize bytes.
	WriteAt(now sim.Duration, off int64, n int, data []byte) sim.Duration
	// ReadAt reads n pages at page offset off, returning the completion
	// time. If a content store is enabled and buf is non-nil, buf is
	// filled with the stored bytes.
	ReadAt(now sim.Duration, off int64, n int, buf []byte) sim.Duration
	// Discard TRIMs n pages at offset off (used by discard-mounted
	// filesystems and blkdiscard).
	Discard(off int64, n int)
	// WriteErr is the error-returning form of WriteAt: devices that can
	// fail (a fault-injecting wrapper, a real backing file) report the
	// failure as a typed deverr.Error instead of panicking. Plain
	// simulated devices never fail and always return a nil error.
	WriteErr(now sim.Duration, off int64, n int, data []byte) (sim.Duration, error)
	// ReadErr is the error-returning form of ReadAt.
	ReadErr(now sim.Duration, off int64, n int, buf []byte) (sim.Duration, error)
	// SyncErr is the error-returning durability barrier: everything
	// written before it survives a power cut once it returns nil. On
	// devices without a volatile cache it is a no-op returning nil; on
	// Barrier-capable devices it is SyncBarrier with an error channel
	// (a real fsync can fail; a fault plan can make it lie).
	SyncErr() error
}

// Barrier is the optional Dev surface of devices that distinguish
// acknowledged writes from durable ones (a fault-injecting wrapper, a
// real write-back cache). SyncBarrier marks everything written so far
// as surviving a power cut — the device-level effect of an fsync/FLUSH
// command. Plain simulated devices are implicitly durable and don't
// implement it; callers reach it through extfs.FS.Barrier, which
// no-ops when the interface is absent.
type Barrier interface {
	SyncBarrier()
}

// Host is the instrumented-device surface the store and the metrics
// collector consume: a Dev that also exposes iostat counters and the
// per-LBA write histogram. Both the simulated Device and the
// file-backed internal/filedev.Dev implement it, which is what lets
// one experiment runner serve either authority.
type Host interface {
	Dev
	// Counters returns a copy of the cumulative host I/O counters.
	Counters() Counters
	// WriteHist exposes the per-LBA write-count histogram (not a
	// copy; callers must not mutate it).
	WriteHist() []uint32
	// ResetInstrumentation zeroes the counters and the histogram.
	ResetInstrumentation()
}

// Counters are iostat-style cumulative counters, in bytes and operations.
type Counters struct {
	BytesWritten int64
	BytesRead    int64
	WriteOps     int64
	ReadOps      int64
	// DiscardOps and PagesDiscarded account TRIM traffic (iostat's
	// dsc/s and drqm), which is otherwise invisible in the read/write
	// counters: a discard moves no data but changes device state.
	DiscardOps     int64
	PagesDiscarded int64
}

// Sub returns c - o, for per-interval deltas.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		BytesWritten:   c.BytesWritten - o.BytesWritten,
		BytesRead:      c.BytesRead - o.BytesRead,
		WriteOps:       c.WriteOps - o.WriteOps,
		ReadOps:        c.ReadOps - o.ReadOps,
		DiscardOps:     c.DiscardOps - o.DiscardOps,
		PagesDiscarded: c.PagesDiscarded - o.PagesDiscarded,
	}
}

// Add returns c + o, for aggregating the per-shard devices of a
// sharded store into one host-visible view.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		BytesWritten:   c.BytesWritten + o.BytesWritten,
		BytesRead:      c.BytesRead + o.BytesRead,
		WriteOps:       c.WriteOps + o.WriteOps,
		ReadOps:        c.ReadOps + o.ReadOps,
		DiscardOps:     c.DiscardOps + o.DiscardOps,
		PagesDiscarded: c.PagesDiscarded + o.PagesDiscarded,
	}
}

// Device wraps a flash.Device with host-side instrumentation.
type Device struct {
	ssd      *flash.Device
	ps       int // cached ssd.PageSize(), consulted on every I/O
	counters Counters

	// writeHist counts writes per logical page, like blktrace
	// post-processing; it powers the Fig 4 CDF.
	writeHist []uint32

	// content, when non-nil, retains the last-written bytes per page.
	content map[int64][]byte
}

// New wraps ssd. The write histogram is always maintained (4 bytes per
// page); the content store starts disabled.
func New(ssd *flash.Device) *Device {
	return &Device{
		ssd:       ssd,
		ps:        ssd.PageSize(),
		writeHist: make([]uint32, ssd.LogicalPages()),
	}
}

// EnableContentStore makes the device retain written bytes so that reads
// return real data. Tests and small examples enable it; benchmark-scale
// experiments leave it off.
func (d *Device) EnableContentStore() {
	if d.content == nil {
		d.content = make(map[int64][]byte)
	}
}

// ContentEnabled reports whether written bytes are retained.
func (d *Device) ContentEnabled() bool { return d.content != nil }

// SSD exposes the underlying simulated flash device (for SMART access).
func (d *Device) SSD() *flash.Device { return d.ssd }

// PageSize implements Dev.
func (d *Device) PageSize() int { return d.ps }

// Pages implements Dev.
func (d *Device) Pages() int64 { return d.ssd.LogicalPages() }

// Counters returns a copy of the cumulative host I/O counters.
func (d *Device) Counters() Counters { return d.counters }

// WriteHist implements Host.
func (d *Device) WriteHist() []uint32 { return d.writeHist }

// WriteAt implements Dev.
func (d *Device) WriteAt(now sim.Duration, off int64, n int, data []byte) sim.Duration {
	if n <= 0 {
		return now
	}
	d.checkRange(off, n)
	ps := d.ps
	if data != nil && len(data) != n*ps {
		panic(fmt.Sprintf("blockdev: data length %d != %d pages", len(data), n))
	}
	d.counters.BytesWritten += int64(n) * int64(ps)
	d.counters.WriteOps++
	// One bounds check for the whole run; the compiler keeps the rest
	// branch-free.
	for i := range d.writeHist[off : off+int64(n)] {
		d.writeHist[off+int64(i)]++
	}
	if d.content != nil && data != nil {
		for i := 0; i < n; i++ {
			// Overwrites reuse the retained buffer: a fresh allocation
			// per page would make steady-state writes O(page) garbage.
			page := d.content[off+int64(i)]
			if page == nil {
				page = make([]byte, ps)
				d.content[off+int64(i)] = page
			}
			copy(page, data[i*ps:(i+1)*ps])
		}
	}
	return d.ssd.SubmitWrite(now, off, n)
}

// ReadAt implements Dev.
func (d *Device) ReadAt(now sim.Duration, off int64, n int, buf []byte) sim.Duration {
	if n <= 0 {
		return now
	}
	d.checkRange(off, n)
	ps := d.ps
	if buf != nil && len(buf) != n*ps {
		panic(fmt.Sprintf("blockdev: buffer length %d != %d pages", len(buf), n))
	}
	d.counters.BytesRead += int64(n) * int64(ps)
	d.counters.ReadOps++
	if d.content != nil && buf != nil {
		for i := 0; i < n; i++ {
			page := d.content[off+int64(i)]
			dst := buf[i*ps : (i+1)*ps]
			if page == nil {
				for j := range dst {
					dst[j] = 0
				}
			} else {
				copy(dst, page)
			}
		}
	}
	return d.ssd.SubmitRead(now, off, n)
}

// WriteErr implements Dev. The simulated device cannot fail.
func (d *Device) WriteErr(now sim.Duration, off int64, n int, data []byte) (sim.Duration, error) {
	return d.WriteAt(now, off, n, data), nil
}

// ReadErr implements Dev. The simulated device cannot fail.
func (d *Device) ReadErr(now sim.Duration, off int64, n int, buf []byte) (sim.Duration, error) {
	return d.ReadAt(now, off, n, buf), nil
}

// SyncErr implements Dev: the simulated device has no volatile cache,
// so every acknowledged write is already durable.
func (d *Device) SyncErr() error { return nil }

// Discard implements Dev.
func (d *Device) Discard(off int64, n int) {
	if n <= 0 {
		return
	}
	d.checkRange(off, n)
	d.counters.DiscardOps++
	d.counters.PagesDiscarded += int64(n)
	if d.content != nil {
		for i := 0; i < n; i++ {
			delete(d.content, off+int64(i))
		}
	}
	d.ssd.Trim(off, n)
}

// BlkDiscardAll trims the entire device (the paper's "Trimmed" initial
// state) and clears the content store.
func (d *Device) BlkDiscardAll() {
	if d.content != nil {
		d.content = make(map[int64][]byte)
	}
	d.counters.DiscardOps++
	d.counters.PagesDiscarded += d.Pages()
	d.ssd.TrimAll()
}

// ResetInstrumentation zeroes the iostat counters and the LBA histogram.
// The harness calls it after the load phase so that plots cover only the
// measured run, as in the paper.
func (d *Device) ResetInstrumentation() {
	d.counters = Counters{}
	clear(d.writeHist)
}

func (d *Device) checkRange(off int64, n int) {
	if off < 0 || off+int64(n) > d.Pages() {
		panic(fmt.Sprintf("blockdev: I/O [%d,+%d) beyond device end %d", off, n, d.Pages()))
	}
}

// WriteCDF returns the cumulative distribution of per-LBA write counts
// with LBAs sorted by decreasing write count, exactly as the paper's
// Fig 4 plots it: point i of the result is the fraction of all writes
// that hit the i/len most-written fraction of the LBA space. The slice
// has `points+1` entries covering x = 0..1 inclusive.
func (d *Device) WriteCDF(points int) []float64 {
	counts := make([]uint32, len(d.writeHist))
	copy(counts, d.writeHist)
	return writeCDFOf(counts, points)
}

// CombinedWriteCDF merges the write histograms of several devices (the
// per-shard devices of a sharded store) into one WriteCDF: each shard's
// LBAs keep their own counts, so the result is the distribution over
// the union of the LBA spaces — what a single device serving the same
// traffic would show. For a single device it is identical to WriteCDF.
func CombinedWriteCDF(devs []Host, points int) []float64 {
	var total int
	for _, d := range devs {
		total += len(d.WriteHist())
	}
	counts := make([]uint32, 0, total)
	for _, d := range devs {
		counts = append(counts, d.WriteHist()...)
	}
	return writeCDFOf(counts, points)
}

// CombinedFractionLBAsWritten is FractionLBAsWritten over the union of
// several devices' LBA spaces.
func CombinedFractionLBAsWritten(devs []Host) float64 {
	var written, total int64
	for _, d := range devs {
		total += int64(len(d.WriteHist()))
		for _, c := range d.WriteHist() {
			if c > 0 {
				written++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(written) / float64(total)
}

// writeCDFOf consumes (sorts in place) a per-LBA write-count histogram.
func writeCDFOf(counts []uint32, points int) []float64 {
	// Ascending radix-free sort then reverse: slices.Sort on a plain
	// uint32 slice avoids sort.Slice's per-compare closure over the
	// device-sized histogram.
	slices.Sort(counts)
	for i, j := 0, len(counts)-1; i < j; i, j = i+1, j-1 {
		counts[i], counts[j] = counts[j], counts[i]
	}
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	cdf := make([]float64, points+1)
	if total == 0 {
		return cdf
	}
	var cum float64
	next := 1 // next output index
	for i, c := range counts {
		cum += float64(c)
		for next <= points && (i+1)*points >= next*len(counts) {
			cdf[next] = cum / total
			next++
		}
	}
	for ; next <= points; next++ {
		cdf[next] = 1
	}
	return cdf
}

// FractionLBAsWritten returns the fraction of the LBA space written at
// least once — the paper's "WiredTiger does not write to ≈45% of the
// LBAs" observation.
func (d *Device) FractionLBAsWritten() float64 {
	var written int64
	for _, c := range d.writeHist {
		if c > 0 {
			written++
		}
	}
	return float64(written) / float64(len(d.writeHist))
}

// Partition is a contiguous page range of a Device exposed as a Dev. The
// harness uses partitions to model software over-provisioning: a smaller
// partition plus a never-written trimmed remainder.
type Partition struct {
	dev   *Device
	first int64
	pages int64
}

// Partition carves [firstPage, firstPage+pages) from the device.
func (d *Device) Partition(firstPage, pages int64) (*Partition, error) {
	if firstPage < 0 || pages <= 0 || firstPage+pages > d.Pages() {
		return nil, fmt.Errorf("blockdev: partition [%d,+%d) outside device of %d pages",
			firstPage, pages, d.Pages())
	}
	return &Partition{dev: d, first: firstPage, pages: pages}, nil
}

// PageSize implements Dev.
func (p *Partition) PageSize() int { return p.dev.PageSize() }

// Pages implements Dev.
func (p *Partition) Pages() int64 { return p.pages }

// WriteAt implements Dev.
func (p *Partition) WriteAt(now sim.Duration, off int64, n int, data []byte) sim.Duration {
	p.check(off, n)
	return p.dev.WriteAt(now, p.first+off, n, data)
}

// ReadAt implements Dev.
func (p *Partition) ReadAt(now sim.Duration, off int64, n int, buf []byte) sim.Duration {
	p.check(off, n)
	return p.dev.ReadAt(now, p.first+off, n, buf)
}

// Discard implements Dev.
func (p *Partition) Discard(off int64, n int) {
	p.check(off, n)
	p.dev.Discard(p.first+off, n)
}

// WriteErr implements Dev: a range violation is reported as a typed
// bounds error instead of a panic; the parent device cannot fail.
func (p *Partition) WriteErr(now sim.Duration, off int64, n int, data []byte) (sim.Duration, error) {
	if err := p.checkErr(deverr.OpWrite, off, n); err != nil {
		return now, err
	}
	return p.dev.WriteErr(now, p.first+off, n, data)
}

// ReadErr implements Dev (see WriteErr).
func (p *Partition) ReadErr(now sim.Duration, off int64, n int, buf []byte) (sim.Duration, error) {
	if err := p.checkErr(deverr.OpRead, off, n); err != nil {
		return now, err
	}
	return p.dev.ReadErr(now, p.first+off, n, buf)
}

// SyncErr implements Dev, delegating to the parent device.
func (p *Partition) SyncErr() error { return p.dev.SyncErr() }

func (p *Partition) checkErr(op deverr.Op, off int64, n int) error {
	if off < 0 || off+int64(n) > p.pages {
		return &deverr.Error{Op: op, LBA: off, Kind: deverr.KindBounds,
			Cause: fmt.Errorf("blockdev: partition I/O [%d,+%d) beyond end %d", off, n, p.pages)}
	}
	return nil
}

// ContentEnabled reports whether the parent device retains content.
func (p *Partition) ContentEnabled() bool { return p.dev.ContentEnabled() }

func (p *Partition) check(off int64, n int) {
	if off < 0 || off+int64(n) > p.pages {
		panic(fmt.Sprintf("blockdev: partition I/O [%d,+%d) beyond end %d", off, n, p.pages))
	}
}

var (
	_ Dev  = (*Device)(nil)
	_ Dev  = (*Partition)(nil)
	_ Host = (*Device)(nil)
)
