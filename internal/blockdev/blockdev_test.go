package blockdev

import (
	"bytes"
	"testing"
	"time"

	"ptsbench/internal/flash"
	"ptsbench/internal/sim"
)

func newTestDev(t *testing.T) *Device {
	t.Helper()
	cfg := flash.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		Profile: flash.Profile{
			Name:       "bt",
			ReadFixed:  time.Microsecond,
			WriteFixed: time.Microsecond,
			ReadBW:     1 << 30,
			WriteBW:    1 << 30,
			HardwareOP: 0.25,
			EraseTime:  100 * time.Microsecond,
		},
	}
	ssd, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(ssd)
}

func TestCounters(t *testing.T) {
	d := newTestDev(t)
	d.WriteAt(0, 0, 3, nil)
	d.ReadAt(0, 0, 2, nil)
	c := d.Counters()
	if c.BytesWritten != 3*4096 || c.WriteOps != 1 {
		t.Fatalf("write counters wrong: %+v", c)
	}
	if c.BytesRead != 2*4096 || c.ReadOps != 1 {
		t.Fatalf("read counters wrong: %+v", c)
	}
	d2 := d.Counters().Sub(c)
	if d2 != (Counters{}) {
		t.Fatalf("Sub of equal counters not zero: %+v", d2)
	}
}

func TestContentStoreRoundTrip(t *testing.T) {
	d := newTestDev(t)
	d.EnableContentStore()
	data := make([]byte, 2*4096)
	for i := range data {
		data[i] = byte(i % 251)
	}
	d.WriteAt(0, 7, 2, data)
	buf := make([]byte, 2*4096)
	d.ReadAt(0, 7, 2, buf)
	if !bytes.Equal(data, buf) {
		t.Fatal("content round trip mismatch")
	}
	// Unwritten pages read as zeros.
	zero := make([]byte, 4096)
	buf1 := make([]byte, 4096)
	for i := range buf1 {
		buf1[i] = 0xFF
	}
	d.ReadAt(0, 100, 1, buf1)
	if !bytes.Equal(buf1, zero) {
		t.Fatal("unwritten page should read zero")
	}
}

func TestContentStoreOverwriteReusesBuffer(t *testing.T) {
	d := newTestDev(t)
	d.EnableContentStore()
	data := make([]byte, 4096)
	d.WriteAt(0, 3, 1, data) // first write allocates the retained page
	for i := range data {
		data[i] = 0x5A
	}
	// Steady-state overwrites must reuse it: zero allocations per op.
	allocs := testing.AllocsPerRun(100, func() {
		d.WriteAt(0, 3, 1, data)
	})
	if allocs != 0 {
		t.Fatalf("content-store overwrite allocates %v/op, want 0", allocs)
	}
	buf := make([]byte, 4096)
	d.ReadAt(0, 3, 1, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("overwrite content lost")
	}
}

func TestContentStoreDisabledIgnoresData(t *testing.T) {
	d := newTestDev(t)
	data := make([]byte, 4096)
	data[0] = 42
	d.WriteAt(0, 0, 1, data)
	buf := make([]byte, 4096)
	buf[0] = 99
	d.ReadAt(0, 0, 1, buf)
	if buf[0] != 99 {
		t.Fatal("disabled content store should not touch buffers")
	}
	if d.ContentEnabled() {
		t.Fatal("ContentEnabled should be false")
	}
}

func TestDiscardClearsContent(t *testing.T) {
	d := newTestDev(t)
	d.EnableContentStore()
	data := make([]byte, 4096)
	data[5] = 7
	d.WriteAt(0, 3, 1, data)
	d.Discard(3, 1)
	buf := make([]byte, 4096)
	d.ReadAt(0, 3, 1, buf)
	if buf[5] != 0 {
		t.Fatal("discarded page should read zero")
	}
	if d.SSD().MappedPages() != 0 {
		t.Fatal("discard should unmap flash pages")
	}
}

func TestBlkDiscardAll(t *testing.T) {
	d := newTestDev(t)
	d.EnableContentStore()
	d.WriteAt(0, 0, 64, make([]byte, 64*4096))
	d.BlkDiscardAll()
	if d.SSD().MappedPages() != 0 {
		t.Fatal("BlkDiscardAll should unmap everything")
	}
	buf := make([]byte, 4096)
	d.ReadAt(0, 0, 1, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("content should be cleared")
		}
	}
}

func TestWriteHistogramAndCDF(t *testing.T) {
	d := newTestDev(t)
	// Write the first half of the device once; CDF should reach 1.0 at
	// x=0.5 and FractionLBAsWritten should be 0.5.
	half := d.Pages() / 2
	for p := int64(0); p < half; p++ {
		d.WriteAt(0, p, 1, nil)
	}
	if got := d.FractionLBAsWritten(); got < 0.49 || got > 0.51 {
		t.Fatalf("FractionLBAsWritten = %v, want 0.5", got)
	}
	cdf := d.WriteCDF(100)
	if cdf[0] != 0 {
		t.Fatalf("cdf[0] = %v, want 0", cdf[0])
	}
	if cdf[50] < 0.999 {
		t.Fatalf("cdf at 0.5 = %v, want 1.0 (all writes in first half)", cdf[50])
	}
	if cdf[100] < 0.999 {
		t.Fatalf("cdf at 1.0 = %v, want 1.0", cdf[100])
	}
}

func TestWriteCDFSkewed(t *testing.T) {
	d := newTestDev(t)
	// 90% of writes to 10% of pages.
	tenth := d.Pages() / 10
	for rep := 0; rep < 9; rep++ {
		for p := int64(0); p < tenth; p++ {
			d.WriteAt(0, p, 1, nil)
		}
	}
	for p := tenth; p < tenth*2; p++ {
		d.WriteAt(0, p, 1, nil)
	}
	cdf := d.WriteCDF(100)
	if cdf[10] < 0.85 {
		t.Fatalf("cdf at 0.1 = %v, want ~0.9 for skewed writes", cdf[10])
	}
}

func TestWriteCDFEmpty(t *testing.T) {
	d := newTestDev(t)
	cdf := d.WriteCDF(10)
	for _, v := range cdf {
		if v != 0 {
			t.Fatal("CDF of unwritten device should be all zeros")
		}
	}
}

func TestResetInstrumentation(t *testing.T) {
	d := newTestDev(t)
	d.WriteAt(0, 0, 4, nil)
	d.ResetInstrumentation()
	if d.Counters() != (Counters{}) {
		t.Fatal("counters not reset")
	}
	if d.FractionLBAsWritten() != 0 {
		t.Fatal("histogram not reset")
	}
}

func TestPartitionIsolation(t *testing.T) {
	d := newTestDev(t)
	p, err := d.Partition(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if p.Pages() != 200 || p.PageSize() != 4096 {
		t.Fatal("partition geometry wrong")
	}
	p.WriteAt(0, 0, 1, nil)
	// The write must land inside the device and be recorded.
	if d.FractionLBAsWritten() == 0 {
		t.Fatal("partition write not recorded")
	}
	if d.Counters().WriteOps != 1 {
		t.Fatal("partition write not counted on parent device")
	}
	// Out-of-range partition I/O panics.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for partition overflow")
		}
	}()
	p.WriteAt(0, 199, 2, nil)
}

func TestPartitionErrors(t *testing.T) {
	d := newTestDev(t)
	if _, err := d.Partition(-1, 10); err == nil {
		t.Fatal("negative start should fail")
	}
	if _, err := d.Partition(0, d.Pages()+1); err == nil {
		t.Fatal("oversized partition should fail")
	}
	if _, err := d.Partition(0, 0); err == nil {
		t.Fatal("empty partition should fail")
	}
}

func TestPartitionDiscard(t *testing.T) {
	d := newTestDev(t)
	p, _ := d.Partition(50, 100)
	p.WriteAt(0, 10, 5, nil)
	if d.SSD().MappedPages() != 5 {
		t.Fatalf("mapped %d, want 5", d.SSD().MappedPages())
	}
	p.Discard(10, 5)
	if d.SSD().MappedPages() != 0 {
		t.Fatal("partition discard failed")
	}
}

func TestMisalignedBuffersPanic(t *testing.T) {
	d := newTestDev(t)
	d.EnableContentStore()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short buffer")
		}
	}()
	d.WriteAt(0, 0, 2, make([]byte, 4096)) // 2 pages, 1-page buffer
}

func TestTimePropagation(t *testing.T) {
	d := newTestDev(t)
	done := d.WriteAt(time.Second, 0, 1, nil)
	if done <= time.Second {
		t.Fatalf("completion %v should be after submission", done)
	}
	var _ sim.Duration = done
}
