package btree

import (
	"fmt"
	"sort"

	"ptsbench/internal/extfs"
)

// blockManager allocates page-extents inside the collection file,
// WiredTiger-style: freed extents are reused lowest-offset-first, which
// keeps the file compact and the engine's LBA footprint confined — the
// behaviour behind the paper's Fig 4 (WiredTiger never writes ~45% of
// the device).
type blockManager struct {
	file *extfs.File
	free []fileExtent // sorted by start, merged
	// pending holds extents freed since the last checkpoint; they join
	// the free list only when the checkpoint commits, so the previous
	// checkpoint's page images stay intact for crash recovery.
	pending      []fileExtent
	pendingTotal int64 // sum of pending extent pages (checked per Put)
	// growChunk batches file growth to limit filesystem fragmentation.
	growChunk int64
}

// fileExtent is a contiguous run of pages inside the collection file.
type fileExtent struct {
	start, pages int64
}

func newBlockManager(f *extfs.File, growChunk int64) *blockManager {
	if growChunk <= 0 {
		growChunk = 256
	}
	return &blockManager{file: f, growChunk: growChunk}
}

// alloc returns a contiguous extent of n pages, reusing the lowest-offset
// free extent that fits, growing the file if necessary.
func (bm *blockManager) alloc(n int64) (fileExtent, error) {
	if n <= 0 {
		return fileExtent{}, fmt.Errorf("btree: alloc of %d pages", n)
	}
	for i := range bm.free {
		e := bm.free[i]
		if e.pages >= n {
			out := fileExtent{start: e.start, pages: n}
			if e.pages == n {
				bm.free = append(bm.free[:i], bm.free[i+1:]...)
			} else {
				bm.free[i] = fileExtent{start: e.start + n, pages: e.pages - n}
			}
			return out, nil
		}
	}
	// Grow the file; put the remainder of the growth chunk on the free
	// list.
	grow := n
	if grow < bm.growChunk {
		grow = bm.growChunk
	}
	start := bm.file.SizePages()
	if err := bm.file.Grow(grow); err != nil {
		// Retry with the exact need (the chunk may not fit).
		if grow == n {
			return fileExtent{}, err
		}
		grow = n
		if err := bm.file.Grow(grow); err != nil {
			return fileExtent{}, err
		}
	}
	if grow > n {
		bm.release(fileExtent{start: start + n, pages: grow - n})
	}
	return fileExtent{start: start, pages: n}, nil
}

// release returns an extent to the free pool, merging neighbours.
func (bm *blockManager) release(e fileExtent) {
	if e.pages <= 0 {
		return
	}
	i := sort.Search(len(bm.free), func(i int) bool {
		return bm.free[i].start >= e.start
	})
	bm.free = append(bm.free, fileExtent{})
	copy(bm.free[i+1:], bm.free[i:])
	bm.free[i] = e
	if i+1 < len(bm.free) && bm.free[i].start+bm.free[i].pages == bm.free[i+1].start {
		bm.free[i].pages += bm.free[i+1].pages
		bm.free = append(bm.free[:i+1], bm.free[i+2:]...)
	}
	if i > 0 && bm.free[i-1].start+bm.free[i-1].pages == bm.free[i].start {
		bm.free[i-1].pages += bm.free[i].pages
		bm.free = append(bm.free[:i], bm.free[i+1:]...)
	}
}

// releaseDeferred queues an extent for release at the next checkpoint
// commit.
func (bm *blockManager) releaseDeferred(e fileExtent) {
	if e.pages > 0 {
		bm.pending = append(bm.pending, e)
		bm.pendingTotal += e.pages
	}
}

// pendingPages reports the total pages awaiting release.
func (bm *blockManager) pendingPages() int64 { return bm.pendingTotal }

// pendingMark returns a cursor into the deferred-release queue; a
// checkpoint snapshots it at creation and releases only that prefix at
// commit. Extents deferred DURING the checkpoint may still be referenced
// by page images the checkpoint already wrote, so they wait for the next
// one.
func (bm *blockManager) pendingMark() int { return len(bm.pending) }

// commitPendingPrefix releases the first n deferred extents.
func (bm *blockManager) commitPendingPrefix(n int) {
	if n > len(bm.pending) {
		n = len(bm.pending)
	}
	for _, e := range bm.pending[:n] {
		bm.pendingTotal -= e.pages
		bm.release(e)
	}
	bm.pending = append(bm.pending[:0], bm.pending[n:]...)
}

// freePages reports the total free pages inside the file.
func (bm *blockManager) freePages() int64 {
	var n int64
	for _, e := range bm.free {
		n += e.pages
	}
	return n
}
