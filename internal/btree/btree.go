package btree

import (
	"errors"
	"time"

	"ptsbench/internal/cowtree"
	"ptsbench/internal/extalloc"
	"ptsbench/internal/extfs"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("btree: tree is closed")

// metaMagic tags the checkpoint metadata files ("WTMT").
const metaMagic = 0x57544D54

// coreConfig maps the engine configuration onto the shared
// checkpoint/recovery core's knobs. The naming fields reproduce the
// pre-extraction on-device footprint exactly.
func coreConfig(cfg Config) cowtree.Config {
	return cowtree.Config{
		Name:                   "btree",
		MetaPrefix:             "wtmeta",
		MetaMagic:              metaMagic,
		JournalPrefix:          "journal-",
		ChunkPages:             cfg.ChunkPages,
		CheckpointInterval:     cfg.CheckpointInterval,
		CheckpointPendingBytes: cfg.CheckpointPendingBytes,
		Content:                cfg.Content,
		DisableJournal:         cfg.DisableJournal,
	}
}

// Tree is the WiredTiger-style B+Tree engine. The copy-on-write
// checkpoint/recovery discipline lives in the embedded cowtree core;
// the engine implements cowtree.RecoveryEngine over its page type.
type Tree struct {
	cfg Config
	fs  *extfs.FS

	file *extfs.File
	bm   *extalloc.Manager

	core cowtree.Core

	pages  []*page // indexed by pageID; ids are allocated sequentially
	root   pageID
	nextID pageID

	// Cache state: resident leaves in an LRU list (head = MRU).
	lruHead, lruTail pageID
	residentBytes    int64

	// mem bundles the key/value arena and the recycled entry-array
	// pool; slab backs page structs. Page structs and retained keys are
	// immortal in this design (ids are never reused), so bump and pool
	// allocation keep the steady-state op path allocation-free.
	mem  mem
	slab cowtree.Slab[page]

	writeBuf []byte // reused serialization image (content mode)

	seq    uint64
	stats  kv.EngineStats
	io     IOStats
	closed bool
}

// IOStats exposes internal activity counters.
type IOStats struct {
	CacheHits      int64
	CacheMisses    int64
	Evictions      int64
	EvictionWrites int64 // dirty evictions (pages written)
	Checkpoints    int64
	CheckpointPgs  int64 // B+Tree pages written by checkpoints
	LeafSplits     int64
	InternalSplits int64
}

// Open creates a B+Tree on fs with a fresh collection file.
func Open(fs *extfs.FS, cfg Config) (*Tree, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	f, err := fs.Create("collection.wt")
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:   cfg,
		fs:    fs,
		file:  f,
		bm:    extalloc.New(f, int64(cfg.LeafPageBytes/fs.PageSize())*16),
		pages: make([]*page, 1, 64), // index 0 is nilPage
	}
	t.core.Init(t, fs, f, t.bm, coreConfig(cfg))
	rootLeaf := t.newPage(true)
	rootLeaf.parent = nilPage
	t.root = rootLeaf.id
	t.admit(rootLeaf)
	if err := t.core.StartJournal(); err != nil {
		return nil, err
	}
	return t, nil
}

// registerPage adds a freshly allocated page to the id-indexed slice;
// ids are handed out sequentially, so the page's id always equals the
// next free slot.
func (t *Tree) registerPage(p *page) {
	if int(p.id) != len(t.pages) {
		panic("btree: page ids must be registered sequentially")
	}
	t.pages = append(t.pages, p)
}

func (t *Tree) newPage(leaf bool) *page {
	t.nextID++
	p := t.slab.Get()
	p.id = t.nextID
	p.leaf = leaf
	p.serialized = pageHeaderBytes
	t.registerPage(p)
	t.markDirty(p)
	return p
}

func (t *Tree) markDirty(p *page) {
	if p.dirty {
		return // already tracked for the next checkpoint
	}
	p.dirty = true
	t.core.TrackDirty(p.id)
}

func (t *Tree) clearDirty(p *page) {
	if p.dirty {
		p.dirty = false
		t.core.NoteClean()
	}
	// The page's entry in the core's transition log stays behind;
	// checkpoint snapshots filter on the dirty flag, so a stale id is
	// skipped for free.
}

// ---- cowtree.Engine implementation ----

// Root implements cowtree.Engine.
func (t *Tree) Root() cowtree.NodeID { return t.root }

// Parent implements cowtree.Engine.
func (t *Tree) Parent(id cowtree.NodeID) cowtree.NodeID { return t.pages[id].parent }

// Leaf implements cowtree.Engine.
func (t *Tree) Leaf(id cowtree.NodeID) bool { return t.pages[id].leaf }

// Children implements cowtree.Engine.
func (t *Tree) Children(id cowtree.NodeID) []cowtree.NodeID { return t.pages[id].children }

// Dirty implements cowtree.Engine.
func (t *Tree) Dirty(id cowtree.NodeID) bool { return t.pages[id].dirty }

// NeedsWrite implements cowtree.Engine.
func (t *Tree) NeedsWrite(id cowtree.NodeID) bool {
	n := t.pages[id]
	return n.dirty || n.disk.Pages == 0
}

// AppendNeedsWrite implements cowtree.Engine.
func (t *Tree) AppendNeedsWrite(id cowtree.NodeID, dst []cowtree.NodeID) []cowtree.NodeID {
	for _, c := range t.pages[id].children {
		if n := t.pages[c]; n.dirty || n.disk.Pages == 0 {
			dst = append(dst, c)
		}
	}
	return dst
}

// Live implements cowtree.Engine (pages are never deallocated).
func (t *Tree) Live(id cowtree.NodeID) bool { return t.pages[id] != nil }

// DiskExtent implements cowtree.Engine.
func (t *Tree) DiskExtent(id cowtree.NodeID) cowtree.Extent { return t.pages[id].disk }

// SerializedBytes implements cowtree.Engine.
func (t *Tree) SerializedBytes(id cowtree.NodeID) int { return t.pages[id].serialized }

// MarkDirty implements cowtree.Engine.
func (t *Tree) MarkDirty(id cowtree.NodeID) { t.markDirty(t.pages[id]) }

// WriteNode implements cowtree.Engine.
func (t *Tree) WriteNode(now sim.Duration, id cowtree.NodeID) (sim.Duration, error) {
	return t.writePage(now, t.pages[id])
}

// Seq implements cowtree.Engine.
func (t *Tree) Seq() uint64 { return t.seq }

// Config returns the validated configuration.
func (t *Tree) Config() Config { return t.cfg }

// Stats implements kv.Engine.
func (t *Tree) Stats() kv.EngineStats { return t.stats }

// IO returns internal activity counters.
func (t *Tree) IO() IOStats {
	io := t.io
	cio := t.core.IO()
	io.Checkpoints = cio.Checkpoints
	io.CheckpointPgs = cio.CheckpointPgs
	return io
}

// DiskUsageBytes implements kv.Engine.
func (t *Tree) DiskUsageBytes() int64 { return t.fs.UsedBytes() }

// Err returns the sticky fatal error, if any.
func (t *Tree) Err() error { return t.core.Err() }

// ---- cache (LRU over resident leaves) ----

func (t *Tree) admit(p *page) {
	if p.resident {
		t.touch(p)
		return
	}
	p.resident = true
	p.lruOlder = t.lruHead
	p.lruNewer = nilPage
	if t.lruHead != nilPage {
		t.pages[t.lruHead].lruNewer = p.id
	}
	t.lruHead = p.id
	if t.lruTail == nilPage {
		t.lruTail = p.id
	}
	t.residentBytes += int64(p.serialized)
}

func (t *Tree) touch(p *page) {
	if t.lruHead == p.id {
		return
	}
	// Unlink.
	if p.lruNewer != nilPage {
		t.pages[p.lruNewer].lruOlder = p.lruOlder
	}
	if p.lruOlder != nilPage {
		t.pages[p.lruOlder].lruNewer = p.lruNewer
	}
	if t.lruTail == p.id {
		t.lruTail = p.lruNewer
	}
	// Push at head.
	p.lruOlder = t.lruHead
	p.lruNewer = nilPage
	if t.lruHead != nilPage {
		t.pages[t.lruHead].lruNewer = p.id
	}
	t.lruHead = p.id
}

func (t *Tree) unlink(p *page) {
	if !p.resident {
		return
	}
	if p.lruNewer != nilPage {
		t.pages[p.lruNewer].lruOlder = p.lruOlder
	}
	if p.lruOlder != nilPage {
		t.pages[p.lruOlder].lruNewer = p.lruNewer
	}
	if t.lruHead == p.id {
		t.lruHead = p.lruOlder
	}
	if t.lruTail == p.id {
		t.lruTail = p.lruNewer
	}
	p.resident = false
	p.lruNewer, p.lruOlder = nilPage, nilPage
	t.residentBytes -= int64(p.serialized)
}

// evictToFit writes back and drops LRU leaves until the cache fits,
// charging the eviction I/O to the foreground — WiredTiger's application
// threads do exactly this under cache pressure.
func (t *Tree) evictToFit(now sim.Duration) (sim.Duration, error) {
	for t.residentBytes > t.cfg.CacheBytes {
		victimID := t.lruTail
		if victimID == nilPage {
			break
		}
		victim := t.pages[victimID]
		if victim.id == t.root {
			// Never evict the root; with a tiny cache and a root leaf
			// this can only happen before the first split.
			break
		}
		t.unlink(victim)
		if victim.dirty {
			var err error
			now, err = t.writePage(now, victim)
			if err != nil {
				t.core.Fail(err)
				return now, err
			}
			t.io.EvictionWrites++
		}
		t.io.Evictions++
	}
	return now, nil
}

// writePage reconciles a page to a fresh extent (copy-on-write). The old
// location is released lazily — it becomes reusable only after the next
// checkpoint commits — so the images a completed checkpoint references
// survive until a newer checkpoint replaces them (WiredTiger's
// checkpoint avail-list discipline, required for crash recovery).
func (t *Tree) writePage(now sim.Duration, p *page) (sim.Duration, error) {
	ps := t.fs.PageSize()
	n := int64((p.serialized + ps - 1) / ps)
	if p.disk.Pages > 0 {
		t.bm.ReleaseDeferred(p.disk)
	}
	ext, err := t.bm.Alloc(n)
	if err != nil {
		return now, err
	}
	var data []byte
	if t.cfg.Content {
		data = t.serializeImage(p, int(n)*ps)
	}
	done, err := t.file.WriteAt(now, ext.Start, int(n), data)
	if err != nil {
		return now, err
	}
	p.disk = ext
	p.everOnDisk = true
	t.clearDirty(p)
	// Reconciling a child moves it on disk; the parent's reference
	// changes, which dirties the parent (it will be written at the next
	// checkpoint).
	if p.parent != nilPage {
		t.markDirty(t.pages[p.parent])
	}
	return done, nil
}

// serializeImage produces the zero-padded on-disk image of a page in the
// tree's reused write buffer (the block device copies written bytes, so
// aliasing the scratch across writes is safe).
func (t *Tree) serializeImage(p *page, size int) []byte {
	buf := serializePage(t.writeBuf[:0], p, func(id pageID) fileExtent {
		return t.pages[id].disk
	})
	if cap(buf) < size {
		grown := make([]byte, size)
		copy(grown, buf)
		buf = grown
	} else {
		n := len(buf)
		buf = buf[:size]
		clear(buf[n:])
	}
	t.writeBuf = buf
	return buf
}

// loadLeaf charges the read I/O for a non-resident leaf and admits it.
func (t *Tree) loadLeaf(now sim.Duration, p *page) (sim.Duration, error) {
	if p.resident {
		t.io.CacheHits++
		t.touch(p)
		return now, nil
	}
	t.io.CacheMisses++
	if p.everOnDisk {
		var err error
		now, err = t.file.ReadAt(now, p.disk.Start, int(p.disk.Pages), nil)
		if err != nil {
			return now, err
		}
	}
	t.admit(p)
	return now, nil
}

// loadLeafPrefetching loads leaf like loadLeaf and, when the configured
// PrefetchDepth allows, issues reads for up to PrefetchDepth-1 following
// sibling leaves at the same virtual time — batched read submission that
// overlaps on the device's internal lanes. The charged I/O is the same
// as loading each sibling on demand (every prefetched leaf counts one
// cache miss and one read); only the completion times overlap. Scans use
// it because they know they will cross into the siblings next.
func (t *Tree) loadLeafPrefetching(now sim.Duration, leaf *page) (sim.Duration, error) {
	if leaf.resident || t.cfg.PrefetchDepth <= 1 {
		return t.loadLeaf(now, leaf)
	}
	done := now
	p := leaf
	// The window covers the next PrefetchDepth leaves of the chain —
	// resident ones count toward it (they need no read), so the walk
	// never ranges past the leaves the scan is about to visit.
	for seen := 0; p != nil && seen < t.cfg.PrefetchDepth; seen++ {
		if !p.resident {
			t.io.CacheMisses++
			if p.everOnDisk {
				end, err := t.file.ReadAt(now, p.disk.Start, int(p.disk.Pages), nil)
				if err != nil {
					return now, err
				}
				if end > done {
					done = end
				}
			}
			t.admit(p)
		}
		if p.next == nilPage {
			break
		}
		p = t.pages[p.next]
	}
	// Admission order put the last prefetched sibling at the LRU head;
	// re-touch the leaf the scan is about to consume.
	t.touch(leaf)
	return done, nil
}

// descend walks from the root to the leaf covering key. Internal pages
// are treated as pinned (always cached): real WiredTiger strongly favours
// keeping them resident, and at the paper's scale their footprint is
// negligible next to the leaves.
func (t *Tree) descend(key []byte) *page {
	p := t.pages[t.root]
	for !p.leaf {
		p = t.pages[p.childFor(key)]
	}
	return p
}

// Put implements kv.Engine.
func (t *Tree) Put(now sim.Duration, key, value []byte, valueLen int) (sim.Duration, error) {
	return t.write(now, key, value, valueLen, false)
}

// Delete writes a tombstone (the entry is reclaimed when its leaf is
// rewritten with the tombstone aged out; for simplicity tombstones are
// kept until overwritten).
func (t *Tree) Delete(now sim.Duration, key []byte) (sim.Duration, error) {
	return t.write(now, key, nil, 0, true)
}

func (t *Tree) write(now sim.Duration, key, value []byte, valueLen int, del bool) (sim.Duration, error) {
	if t.closed {
		return now, ErrClosed
	}
	if err := t.core.Err(); err != nil {
		return now, err
	}
	if value != nil {
		valueLen = len(value)
	}
	t.core.Pump(now)
	now += t.cfg.CPUPutTime + time.Duration(valueLen)*t.cfg.CPUPerByte
	t.seq++

	leaf := t.descend(key)
	var err error
	now, err = t.loadLeaf(now, leaf)
	if err != nil {
		t.core.Fail(err)
		return now, err
	}
	delta := leaf.insertLeaf(&t.mem, key, value, valueLen, t.seq, del)
	t.residentBytes += int64(delta)
	t.markDirty(leaf)

	if w := t.core.Journal(); w != nil {
		rec := wal.Record{Seq: t.seq, Key: key, Value: value, Deleted: del, ValueLen: valueLen}
		now, err = w.Append(now, &rec, t.cfg.JournalSync && !t.core.GroupActive())
		if err != nil {
			t.core.Fail(err)
			return now, err
		}
	}
	t.stats.Puts++
	t.stats.UserBytesWritten += int64(len(key) + valueLen)

	if leaf.serialized > t.cfg.LeafPageBytes {
		t.splitLeaf(leaf)
	}
	now, err = t.evictToFit(now)
	if err != nil {
		return now, err
	}
	t.core.MaybeCheckpoint(now)
	return now, nil
}

// BeginGroupCommit implements engine.GroupCommitter: journal syncs are
// deferred until EndGroupCommit so a multi-client write batch commits
// with a single sync.
func (t *Tree) BeginGroupCommit() { t.core.BeginGroup() }

// EndGroupCommit closes the group and syncs the journal tail once.
func (t *Tree) EndGroupCommit(now sim.Duration) (sim.Duration, error) {
	now, err := t.core.EndGroup(now, t.cfg.JournalSync)
	if err != nil {
		t.core.Fail(err)
	}
	return now, err
}

// Get implements kv.Engine.
func (t *Tree) Get(now sim.Duration, key []byte) (sim.Duration, []byte, bool, error) {
	if t.closed {
		return now, nil, false, ErrClosed
	}
	if err := t.core.Err(); err != nil {
		return now, nil, false, err
	}
	t.core.Pump(now)
	now += t.cfg.CPUGetTime
	t.stats.Gets++

	leaf := t.descend(key)
	var err error
	now, err = t.loadLeaf(now, leaf)
	if err != nil {
		t.core.Fail(err)
		return now, nil, false, err
	}
	now, err = t.evictToFit(now)
	if err != nil {
		return now, nil, false, err
	}
	i := leaf.search(key)
	if i >= len(leaf.entries) || !equalBytes(leaf.entries[i].key, key) || leaf.entries[i].del {
		return now, nil, false, nil
	}
	e := &leaf.entries[i]
	t.stats.UserBytesRead += int64(len(key)) + int64(e.vlen)
	return now, e.val, true, nil
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Scan returns up to limit live entries with key >= start, in key order,
// loading (and charging reads for) each leaf it crosses — the range-query
// capability that motivates tree structures over hash indexes in the
// paper's introduction.
func (t *Tree) Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error) {
	if t.closed {
		return now, nil, ErrClosed
	}
	if err := t.core.Err(); err != nil {
		return now, nil, err
	}
	t.core.Pump(now)
	now += t.cfg.CPUGetTime
	var out []kv.Entry
	leaf := t.descend(start)
	idx := leaf.search(start)
	for limit > 0 && leaf != nil {
		var err error
		now, err = t.loadLeafPrefetching(now, leaf)
		if err != nil {
			t.core.Fail(err)
			return now, nil, err
		}
		for ; idx < len(leaf.entries) && limit > 0; idx++ {
			le := &leaf.entries[idx]
			if le.del {
				continue
			}
			e := kv.Entry{
				Key:      append([]byte(nil), le.key...),
				ValueLen: int(le.vlen),
				Seq:      le.seq,
			}
			if le.val != nil {
				e.Value = append([]byte(nil), le.val...)
			}
			t.stats.UserBytesRead += int64(len(e.Key) + e.ValueLen)
			out = append(out, e)
			limit--
		}
		if now, err = t.evictToFit(now); err != nil {
			return now, nil, err
		}
		if leaf.next == nilPage {
			break
		}
		leaf = t.pages[leaf.next]
		idx = 0
	}
	return now, out, nil
}

// splitLeaf splits an oversized leaf and propagates internal splits.
func (t *Tree) splitLeaf(leaf *page) {
	t.nextID++
	right, sep := leaf.splitLeaf(&t.mem, t.slab.Get(), t.nextID)
	t.registerPage(right)
	t.markDirty(right)
	t.markDirty(leaf)
	t.io.LeafSplits++
	t.admit(right)
	// admit charged right.serialized, but the moved entries were already
	// counted while they lived in leaf (whose serialized size dropped by
	// the same amount); only the new page header is genuinely new.
	t.residentBytes -= int64(right.serialized - pageHeaderBytes)
	t.insertIntoParent(leaf, sep, right)
}

// insertIntoParent links a new right sibling under the parent, splitting
// internals (and growing a new root) as needed.
func (t *Tree) insertIntoParent(left *page, sep []byte, right *page) {
	if left.id == t.root {
		newRoot := t.newPage(false)
		newRoot.children = []pageID{left.id, right.id}
		newRoot.seps = [][]byte{t.mem.arena.Clone(sep)}
		newRoot.recomputeSerialized()
		newRoot.refreshSepCache()
		left.parent = newRoot.id
		right.parent = newRoot.id
		t.root = newRoot.id
		return
	}
	parent := t.pages[left.parent]
	idx := parent.childIndex(left.id)
	parent.insertChild(&t.mem, idx, sep, right.id)
	right.parent = parent.id
	t.markDirty(parent)
	if parent.serialized > t.cfg.InternalPageBytes {
		t.splitInternalPage(parent)
	}
}

// splitInternalPage splits an internal page and reparents moved children.
func (t *Tree) splitInternalPage(p *page) {
	t.nextID++
	right, promoted := p.splitInternal(t.slab.Get(), t.nextID)
	t.registerPage(right)
	t.markDirty(right)
	t.markDirty(p)
	t.io.InternalSplits++
	for _, c := range right.children {
		t.pages[c].parent = right.id
	}
	t.insertIntoParent(p, promoted, right)
}

// FlushAll implements kv.Engine: runs a full checkpoint synchronously.
func (t *Tree) FlushAll(now sim.Duration) (sim.Duration, error) {
	if t.closed {
		return now, ErrClosed
	}
	return t.core.Checkpoint(now)
}

// Quiesce drains background checkpoint work.
func (t *Tree) Quiesce(now sim.Duration) sim.Duration {
	return t.core.Quiesce(now)
}

// JournalSyncCount exposes the active journal segment's device-reaching
// sync count (group-commit accounting; see cowtree.Core).
func (t *Tree) JournalSyncCount() int64 { return t.core.JournalSyncCount() }

// Close checkpoints and shuts the tree down.
func (t *Tree) Close(now sim.Duration) (sim.Duration, error) {
	if t.closed {
		return now, ErrClosed
	}
	end, err := t.FlushAll(now)
	t.closed = true
	return end, err
}

// Depth returns the tree height (1 = root leaf only).
func (t *Tree) Depth() int {
	d := 1
	p := t.pages[t.root]
	for !p.leaf {
		d++
		p = t.pages[p.children[0]]
	}
	return d
}

// PageCount returns the numbers of leaf and internal pages.
func (t *Tree) PageCount() (leaves, internals int) {
	for _, p := range t.pages {
		if p == nil {
			continue // index 0 (nilPage) placeholder
		}
		if p.leaf {
			leaves++
		} else {
			internals++
		}
	}
	return leaves, internals
}
