package btree

import (
	"errors"
	"fmt"
	"time"

	"ptsbench/internal/extalloc"
	"ptsbench/internal/extfs"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("btree: tree is closed")

// Tree is the WiredTiger-style B+Tree engine.
type Tree struct {
	cfg Config
	fs  *extfs.FS

	file *extfs.File
	bm   *extalloc.Manager

	pages  []*page // indexed by pageID; ids are allocated sequentially
	root   pageID
	nextID pageID

	// Cache state: resident leaves in an LRU list (head = MRU).
	lruHead, lruTail pageID
	residentBytes    int64

	dirtyIDs   []pageID // append-order log of false->true dirty transitions
	dirtyCount int      // number of pages currently dirty

	journal     *wal.Writer
	journalID   uint64
	journalPool []*wal.Writer // recycled segments awaiting reuse

	ckptW    *sim.Worker
	lastCkpt sim.Duration
	metaGen  uint64 // checkpoint metadata generation

	seq    uint64
	stats  kv.EngineStats
	io     IOStats
	fatal  error
	closed bool
}

// IOStats exposes internal activity counters.
type IOStats struct {
	CacheHits      int64
	CacheMisses    int64
	Evictions      int64
	EvictionWrites int64 // dirty evictions (pages written)
	Checkpoints    int64
	CheckpointPgs  int64 // B+Tree pages written by checkpoints
	LeafSplits     int64
	InternalSplits int64
}

// Open creates a B+Tree on fs with a fresh collection file.
func Open(fs *extfs.FS, cfg Config) (*Tree, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	f, err := fs.Create("collection.wt")
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:   cfg,
		fs:    fs,
		file:  f,
		bm:    extalloc.New(f, int64(cfg.LeafPageBytes/fs.PageSize())*16),
		pages: make([]*page, 1, 64), // index 0 is nilPage
		ckptW: sim.NewWorker("btree-checkpoint"),
	}
	rootLeaf := t.newPage(true)
	rootLeaf.parent = nilPage
	t.root = rootLeaf.id
	t.admit(rootLeaf)
	if !cfg.DisableJournal {
		w, err := wal.Create(fs, t.journalName(), cfg.Content)
		if err != nil {
			return nil, err
		}
		t.journal = w
	}
	return t, nil
}

func (t *Tree) journalName() string {
	t.journalID++
	return fmt.Sprintf("journal-%06d", t.journalID)
}

// registerPage adds a freshly allocated page to the id-indexed slice;
// ids are handed out sequentially, so the page's id always equals the
// next free slot.
func (t *Tree) registerPage(p *page) {
	if int(p.id) != len(t.pages) {
		panic("btree: page ids must be registered sequentially")
	}
	t.pages = append(t.pages, p)
}

func (t *Tree) newPage(leaf bool) *page {
	t.nextID++
	p := &page{id: t.nextID, leaf: leaf, serialized: pageHeaderBytes}
	t.registerPage(p)
	t.markDirty(p)
	return p
}

func (t *Tree) markDirty(p *page) {
	if p.dirty {
		return // already tracked for the next checkpoint
	}
	p.dirty = true
	t.dirtyCount++
	t.dirtyIDs = append(t.dirtyIDs, p.id)
}

func (t *Tree) clearDirty(p *page) {
	if p.dirty {
		p.dirty = false
		t.dirtyCount--
	}
	// The page's entry in dirtyIDs stays behind; checkpoint snapshots
	// filter on the dirty flag, so a stale id is skipped for free.
}

// Config returns the validated configuration.
func (t *Tree) Config() Config { return t.cfg }

// Stats implements kv.Engine.
func (t *Tree) Stats() kv.EngineStats { return t.stats }

// IO returns internal activity counters.
func (t *Tree) IO() IOStats { return t.io }

// DiskUsageBytes implements kv.Engine.
func (t *Tree) DiskUsageBytes() int64 { return t.fs.UsedBytes() }

// Err returns the sticky fatal error, if any.
func (t *Tree) Err() error { return t.fatal }

// ---- cache (LRU over resident leaves) ----

func (t *Tree) admit(p *page) {
	if p.resident {
		t.touch(p)
		return
	}
	p.resident = true
	p.lruOlder = t.lruHead
	p.lruNewer = nilPage
	if t.lruHead != nilPage {
		t.pages[t.lruHead].lruNewer = p.id
	}
	t.lruHead = p.id
	if t.lruTail == nilPage {
		t.lruTail = p.id
	}
	t.residentBytes += int64(p.serialized)
}

func (t *Tree) touch(p *page) {
	if t.lruHead == p.id {
		return
	}
	// Unlink.
	if p.lruNewer != nilPage {
		t.pages[p.lruNewer].lruOlder = p.lruOlder
	}
	if p.lruOlder != nilPage {
		t.pages[p.lruOlder].lruNewer = p.lruNewer
	}
	if t.lruTail == p.id {
		t.lruTail = p.lruNewer
	}
	// Push at head.
	p.lruOlder = t.lruHead
	p.lruNewer = nilPage
	if t.lruHead != nilPage {
		t.pages[t.lruHead].lruNewer = p.id
	}
	t.lruHead = p.id
}

func (t *Tree) unlink(p *page) {
	if !p.resident {
		return
	}
	if p.lruNewer != nilPage {
		t.pages[p.lruNewer].lruOlder = p.lruOlder
	}
	if p.lruOlder != nilPage {
		t.pages[p.lruOlder].lruNewer = p.lruNewer
	}
	if t.lruHead == p.id {
		t.lruHead = p.lruOlder
	}
	if t.lruTail == p.id {
		t.lruTail = p.lruNewer
	}
	p.resident = false
	p.lruNewer, p.lruOlder = nilPage, nilPage
	t.residentBytes -= int64(p.serialized)
}

// evictToFit writes back and drops LRU leaves until the cache fits,
// charging the eviction I/O to the foreground — WiredTiger's application
// threads do exactly this under cache pressure.
func (t *Tree) evictToFit(now sim.Duration) (sim.Duration, error) {
	for t.residentBytes > t.cfg.CacheBytes {
		victimID := t.lruTail
		if victimID == nilPage {
			break
		}
		victim := t.pages[victimID]
		if victim.id == t.root {
			// Never evict the root; with a tiny cache and a root leaf
			// this can only happen before the first split.
			break
		}
		t.unlink(victim)
		if victim.dirty {
			var err error
			now, err = t.writePage(now, victim)
			if err != nil {
				t.fatal = err
				return now, err
			}
			t.io.EvictionWrites++
		}
		t.io.Evictions++
	}
	return now, nil
}

// writePage reconciles a page to a fresh extent (copy-on-write). The old
// location is released lazily — it becomes reusable only after the next
// checkpoint commits — so the images a completed checkpoint references
// survive until a newer checkpoint replaces them (WiredTiger's
// checkpoint avail-list discipline, required for crash recovery).
func (t *Tree) writePage(now sim.Duration, p *page) (sim.Duration, error) {
	ps := t.fs.PageSize()
	n := int64((p.serialized + ps - 1) / ps)
	if p.disk.Pages > 0 {
		t.bm.ReleaseDeferred(p.disk)
	}
	ext, err := t.bm.Alloc(n)
	if err != nil {
		return now, err
	}
	var data []byte
	if t.cfg.Content {
		data = make([]byte, n*int64(ps))
		copy(data, serializePage(p, func(id pageID) fileExtent {
			return t.pages[id].disk
		}))
	}
	done, err := t.file.WriteAt(now, ext.Start, int(n), data)
	if err != nil {
		return now, err
	}
	p.disk = ext
	p.everOnDisk = true
	t.clearDirty(p)
	// Reconciling a child moves it on disk; the parent's reference
	// changes, which dirties the parent (it will be written at the next
	// checkpoint).
	if p.parent != nilPage {
		t.markDirty(t.pages[p.parent])
	}
	return done, nil
}

// loadLeaf charges the read I/O for a non-resident leaf and admits it.
func (t *Tree) loadLeaf(now sim.Duration, p *page) (sim.Duration, error) {
	if p.resident {
		t.io.CacheHits++
		t.touch(p)
		return now, nil
	}
	t.io.CacheMisses++
	if p.everOnDisk {
		var err error
		now, err = t.file.ReadAt(now, p.disk.Start, int(p.disk.Pages), nil)
		if err != nil {
			return now, err
		}
	}
	t.admit(p)
	return now, nil
}

// loadLeafPrefetching loads leaf like loadLeaf and, when the configured
// PrefetchDepth allows, issues reads for up to PrefetchDepth-1 following
// sibling leaves at the same virtual time — batched read submission that
// overlaps on the device's internal lanes. The charged I/O is the same
// as loading each sibling on demand (every prefetched leaf counts one
// cache miss and one read); only the completion times overlap. Scans use
// it because they know they will cross into the siblings next.
func (t *Tree) loadLeafPrefetching(now sim.Duration, leaf *page) (sim.Duration, error) {
	if leaf.resident || t.cfg.PrefetchDepth <= 1 {
		return t.loadLeaf(now, leaf)
	}
	done := now
	p := leaf
	// The window covers the next PrefetchDepth leaves of the chain —
	// resident ones count toward it (they need no read), so the walk
	// never ranges past the leaves the scan is about to visit.
	for seen := 0; p != nil && seen < t.cfg.PrefetchDepth; seen++ {
		if !p.resident {
			t.io.CacheMisses++
			if p.everOnDisk {
				end, err := t.file.ReadAt(now, p.disk.Start, int(p.disk.Pages), nil)
				if err != nil {
					return now, err
				}
				if end > done {
					done = end
				}
			}
			t.admit(p)
		}
		if p.next == nilPage {
			break
		}
		p = t.pages[p.next]
	}
	// Admission order put the last prefetched sibling at the LRU head;
	// re-touch the leaf the scan is about to consume.
	t.touch(leaf)
	return done, nil
}

// descend walks from the root to the leaf covering key. Internal pages
// are treated as pinned (always cached): real WiredTiger strongly favours
// keeping them resident, and at the paper's scale their footprint is
// negligible next to the leaves.
func (t *Tree) descend(key []byte) *page {
	p := t.pages[t.root]
	for !p.leaf {
		p = t.pages[p.childFor(key)]
	}
	return p
}

// Put implements kv.Engine.
func (t *Tree) Put(now sim.Duration, key, value []byte, valueLen int) (sim.Duration, error) {
	return t.write(now, key, value, valueLen, false)
}

// Delete writes a tombstone (the entry is reclaimed when its leaf is
// rewritten with the tombstone aged out; for simplicity tombstones are
// kept until overwritten).
func (t *Tree) Delete(now sim.Duration, key []byte) (sim.Duration, error) {
	return t.write(now, key, nil, 0, true)
}

func (t *Tree) write(now sim.Duration, key, value []byte, valueLen int, del bool) (sim.Duration, error) {
	if t.closed {
		return now, ErrClosed
	}
	if t.fatal != nil {
		return now, t.fatal
	}
	if value != nil {
		valueLen = len(value)
	}
	t.ckptW.Pump(now)
	now += t.cfg.CPUPutTime + time.Duration(valueLen)*t.cfg.CPUPerByte
	t.seq++

	leaf := t.descend(key)
	var err error
	now, err = t.loadLeaf(now, leaf)
	if err != nil {
		t.fatal = err
		return now, err
	}
	delta := leaf.insertLeaf(key, value, valueLen, t.seq, del)
	t.residentBytes += int64(delta)
	t.markDirty(leaf)

	if t.journal != nil {
		rec := wal.Record{Seq: t.seq, Key: key, Value: value, Deleted: del, ValueLen: valueLen}
		now, err = t.journal.Append(now, &rec, t.cfg.JournalSync)
		if err != nil {
			t.fatal = err
			return now, err
		}
	}
	t.stats.Puts++
	t.stats.UserBytesWritten += int64(len(key) + valueLen)

	if leaf.serialized > t.cfg.LeafPageBytes {
		t.splitLeaf(leaf)
	}
	now, err = t.evictToFit(now)
	if err != nil {
		return now, err
	}
	t.maybeCheckpoint(now)
	return now, nil
}

// Get implements kv.Engine.
func (t *Tree) Get(now sim.Duration, key []byte) (sim.Duration, []byte, bool, error) {
	if t.closed {
		return now, nil, false, ErrClosed
	}
	if t.fatal != nil {
		return now, nil, false, t.fatal
	}
	t.ckptW.Pump(now)
	now += t.cfg.CPUGetTime
	t.stats.Gets++

	leaf := t.descend(key)
	var err error
	now, err = t.loadLeaf(now, leaf)
	if err != nil {
		t.fatal = err
		return now, nil, false, err
	}
	now, err = t.evictToFit(now)
	if err != nil {
		return now, nil, false, err
	}
	i := leaf.search(key)
	if i >= len(leaf.entries) || !equalBytes(leaf.entries[i].key, key) || leaf.entries[i].del {
		return now, nil, false, nil
	}
	e := &leaf.entries[i]
	t.stats.UserBytesRead += int64(len(key)) + int64(e.vlen)
	return now, e.val, true, nil
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Scan returns up to limit live entries with key >= start, in key order,
// loading (and charging reads for) each leaf it crosses — the range-query
// capability that motivates tree structures over hash indexes in the
// paper's introduction.
func (t *Tree) Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error) {
	if t.closed {
		return now, nil, ErrClosed
	}
	if t.fatal != nil {
		return now, nil, t.fatal
	}
	t.ckptW.Pump(now)
	now += t.cfg.CPUGetTime
	var out []kv.Entry
	leaf := t.descend(start)
	idx := leaf.search(start)
	for limit > 0 && leaf != nil {
		var err error
		now, err = t.loadLeafPrefetching(now, leaf)
		if err != nil {
			t.fatal = err
			return now, nil, err
		}
		for ; idx < len(leaf.entries) && limit > 0; idx++ {
			le := &leaf.entries[idx]
			if le.del {
				continue
			}
			e := kv.Entry{
				Key:      append([]byte(nil), le.key...),
				ValueLen: int(le.vlen),
				Seq:      le.seq,
			}
			if le.val != nil {
				e.Value = append([]byte(nil), le.val...)
			}
			t.stats.UserBytesRead += int64(len(e.Key) + e.ValueLen)
			out = append(out, e)
			limit--
		}
		if now, err = t.evictToFit(now); err != nil {
			return now, nil, err
		}
		if leaf.next == nilPage {
			break
		}
		leaf = t.pages[leaf.next]
		idx = 0
	}
	return now, out, nil
}

// splitLeaf splits an oversized leaf and propagates internal splits.
func (t *Tree) splitLeaf(leaf *page) {
	right, sep := leaf.splitLeaf(t.nextID + 1)
	t.nextID++
	t.registerPage(right)
	t.markDirty(right)
	t.markDirty(leaf)
	t.io.LeafSplits++
	t.admit(right)
	// admit charged right.serialized, but the moved entries were already
	// counted while they lived in leaf (whose serialized size dropped by
	// the same amount); only the new page header is genuinely new.
	t.residentBytes -= int64(right.serialized - pageHeaderBytes)
	t.insertIntoParent(leaf, sep, right)
}

// insertIntoParent links a new right sibling under the parent, splitting
// internals (and growing a new root) as needed.
func (t *Tree) insertIntoParent(left *page, sep []byte, right *page) {
	if left.id == t.root {
		newRoot := t.newPage(false)
		newRoot.children = []pageID{left.id, right.id}
		newRoot.seps = [][]byte{cloneBytes(sep)}
		newRoot.recomputeSerialized()
		left.parent = newRoot.id
		right.parent = newRoot.id
		t.root = newRoot.id
		if left.leaf {
			// The old root was a resident leaf; nothing else to fix.
			_ = left
		}
		return
	}
	parent := t.pages[left.parent]
	idx := parent.childIndex(left.id)
	parent.insertChild(idx, sep, right.id)
	right.parent = parent.id
	t.markDirty(parent)
	if parent.serialized > t.cfg.InternalPageBytes {
		t.splitInternalPage(parent)
	}
}

// splitInternalPage splits an internal page and reparents moved children.
func (t *Tree) splitInternalPage(p *page) {
	right, promoted := p.splitInternal(t.nextID + 1)
	t.nextID++
	t.registerPage(right)
	t.markDirty(right)
	t.markDirty(p)
	t.io.InternalSplits++
	for _, c := range right.children {
		t.pages[c].parent = right.id
	}
	t.insertIntoParent(p, promoted, right)
}

// maybeCheckpoint starts a checkpoint when the interval elapsed — or the
// deferred-release backlog has grown too large — and none is running.
func (t *Tree) maybeCheckpoint(now sim.Duration) {
	if t.ckptW.QueueLen() > 0 {
		return
	}
	intervalDue := now-t.lastCkpt >= t.cfg.CheckpointInterval
	pendingDue := t.bm.PendingPages()*int64(t.fs.PageSize()) >= t.cfg.CheckpointPendingBytes
	if !intervalDue && !pendingDue {
		return
	}
	t.lastCkpt = now
	job, err := t.newCheckpointJob()
	if err != nil {
		t.fatal = err
		return
	}
	if job != nil {
		t.ckptW.Submit(job)
	}
}

// FlushAll implements kv.Engine: runs a full checkpoint synchronously.
func (t *Tree) FlushAll(now sim.Duration) (sim.Duration, error) {
	if t.closed {
		return now, ErrClosed
	}
	t.ckptW.Pump(now)
	end := t.ckptW.RunUntilDrained()
	if end < now {
		end = now
	}
	job, err := t.newCheckpointJob()
	if err != nil {
		return end, err
	}
	if job != nil {
		t.ckptW.Submit(job)
		end = t.ckptW.RunUntilDrained()
	}
	if t.fatal != nil {
		return end, t.fatal
	}
	return end, nil
}

// Quiesce drains background checkpoint work.
func (t *Tree) Quiesce(now sim.Duration) sim.Duration {
	t.ckptW.Pump(now)
	end := t.ckptW.RunUntilDrained()
	if end < now {
		end = now
	}
	return end
}

// Close checkpoints and shuts the tree down.
func (t *Tree) Close(now sim.Duration) (sim.Duration, error) {
	if t.closed {
		return now, ErrClosed
	}
	end, err := t.FlushAll(now)
	t.closed = true
	return end, err
}

// Depth returns the tree height (1 = root leaf only).
func (t *Tree) Depth() int {
	d := 1
	p := t.pages[t.root]
	for !p.leaf {
		d++
		p = t.pages[p.children[0]]
	}
	return d
}

// PageCount returns the numbers of leaf and internal pages.
func (t *Tree) PageCount() (leaves, internals int) {
	for _, p := range t.pages {
		if p == nil {
			continue // index 0 (nilPage) placeholder
		}
		if p.leaf {
			leaves++
		} else {
			internals++
		}
	}
	return leaves, internals
}
