package btree

import (
	"bytes"
	"testing"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

func testEnv(t *testing.T, capacityMiB int64, content bool, tweak func(*Config)) (*Tree, *blockdev.Device, *extfs.FS) {
	t.Helper()
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  capacityMiB << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		Profile: flash.Profile{
			Name:       "bt-test",
			ReadFixed:  5 * time.Microsecond,
			WriteFixed: 5 * time.Microsecond,
			ReadBW:     2 << 30,
			WriteBW:    1 << 30,
			HardwareOP: 0.25,
			EraseTime:  200 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.New(ssd)
	if content {
		dev.EnableContentStore()
	}
	fs, err := extfs.Mount(dev, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(capacityMiB << 19)
	cfg.Content = content
	cfg.CPUPutTime = time.Microsecond
	cfg.CPUGetTime = time.Microsecond
	if tweak != nil {
		tweak(&cfg)
	}
	tree, err := Open(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree, dev, fs
}

func TestSplitsAndDepthGrowth(t *testing.T) {
	tr, _, _ := testEnv(t, 32, false, func(c *Config) {
		c.LeafPageBytes = 1 << 10 // tiny pages force splits
		c.InternalPageBytes = 512
	})
	var now sim.Duration
	var err error
	for i := uint64(0); i < 2000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(i), nil, 20)
		if err != nil {
			t.Fatal(err)
		}
	}
	if tr.IO().LeafSplits == 0 {
		t.Fatal("expected leaf splits")
	}
	if tr.IO().InternalSplits == 0 {
		t.Fatal("expected internal splits")
	}
	if tr.Depth() < 3 {
		t.Fatalf("depth %d, want >= 3", tr.Depth())
	}
	// Every key still present.
	for i := uint64(0); i < 2000; i++ {
		_, _, found, err := tr.Get(now, kv.EncodeKey(i))
		if err != nil || !found {
			t.Fatalf("key %d lost after splits: %v %v", i, found, err)
		}
	}
	leaves, internals := tr.PageCount()
	if leaves < 10 || internals < 2 {
		t.Fatalf("page counts: %d leaves, %d internals", leaves, internals)
	}
}

func TestEvictionUnderCachePressure(t *testing.T) {
	tr, dev, _ := testEnv(t, 32, false, func(c *Config) {
		c.CacheBytes = 256 << 10 // small cache
		c.DisableJournal = true  // isolate eviction traffic
	})
	var now sim.Duration
	var err error
	rng := sim.NewRNG(1)
	for i := 0; i < 5000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(rng.Uint64n(4000)), nil, 512)
		if err != nil {
			t.Fatal(err)
		}
	}
	if tr.IO().Evictions == 0 || tr.IO().EvictionWrites == 0 {
		t.Fatalf("expected evictions, io=%+v", tr.IO())
	}
	if dev.Counters().BytesWritten == 0 {
		t.Fatal("evictions should write to the device")
	}
	// Keys remain readable after their leaves were evicted.
	misses := tr.IO().CacheMisses
	for i := uint64(0); i < 4000; i += 131 {
		_, _, _, err := tr.Get(now, kv.EncodeKey(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	if tr.IO().CacheMisses == misses {
		t.Fatal("expected cache misses when reading evicted leaves")
	}
}

func TestCheckpointRuns(t *testing.T) {
	tr, _, fs := testEnv(t, 32, false, func(c *Config) {
		c.CheckpointInterval = 10 * time.Millisecond
	})
	var now sim.Duration
	var err error
	for i := 0; i < 3000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(uint64(i%500)), nil, 256)
		if err != nil {
			t.Fatal(err)
		}
	}
	now = tr.Quiesce(now)
	if tr.IO().Checkpoints == 0 {
		t.Fatal("expected periodic checkpoints")
	}
	// Journal segments are recycled in place: the file count must stay
	// bounded (active + pooled) regardless of checkpoint count.
	journals := 0
	for _, name := range fs.List() {
		if len(name) >= 7 && name[:7] == "journal" {
			journals++
		}
	}
	if journals == 0 || journals > 3 {
		t.Fatalf("%d journal files, want 1..3 (recycled pool)", journals)
	}
}

func TestFlushAllWritesEverything(t *testing.T) {
	tr, _, _ := testEnv(t, 16, false, nil)
	var now sim.Duration
	var err error
	for i := 0; i < 200; i++ {
		now, err = tr.Put(now, kv.EncodeKey(uint64(i)), nil, 100)
		if err != nil {
			t.Fatal(err)
		}
	}
	end, err := tr.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	if end < now {
		t.Fatal("FlushAll went back in time")
	}
	if n := tr.core.DirtyCount(); n != 0 {
		t.Fatalf("%d dirty pages after FlushAll", n)
	}
}

func TestConfinedLBAFootprint(t *testing.T) {
	// The block manager must reuse freed extents: after heavy update
	// churn, the engine's file should not sprawl across the device.
	// This is the mechanism behind the paper's Fig 4.
	tr, dev, fs := testEnv(t, 64, false, func(c *Config) {
		c.CacheBytes = 256 << 10
		c.DisableJournal = true
	})
	var now sim.Duration
	var err error
	rng := sim.NewRNG(2)
	// Load 4 MiB of data, then update 5x over.
	const keys = 4096
	for i := uint64(0); i < keys; i++ {
		now, err = tr.Put(now, kv.EncodeKey(i), nil, 1024)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < int(keys)*5; i++ {
		now, err = tr.Put(now, kv.EncodeKey(rng.Uint64n(keys)), nil, 1024)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Open("collection.wt")
	dataPages := int64(keys) * 1024 / 4096
	if f.SizePages() > dataPages*3 {
		t.Fatalf("collection file sprawled: %d pages for %d pages of data",
			f.SizePages(), dataPages)
	}
	// LBA footprint confined: well under half the device was ever
	// written.
	if frac := dev.FractionLBAsWritten(); frac > 0.5 {
		t.Fatalf("LBA footprint %.0f%%, want well under 50%%", frac*100)
	}
}

func TestWAAStableOverTime(t *testing.T) {
	// The paper (Fig 2d): WiredTiger's WA-A is flat over the run. Check
	// the second half of a long update run amplifies like the first.
	tr, dev, _ := testEnv(t, 64, false, func(c *Config) {
		c.CacheBytes = 256 << 10
	})
	var now sim.Duration
	var err error
	rng := sim.NewRNG(3)
	const keys = 2048
	for i := uint64(0); i < keys; i++ {
		now, err = tr.Put(now, kv.EncodeKey(i), nil, 1024)
		if err != nil {
			t.Fatal(err)
		}
	}
	measure := func(n int) float64 {
		c0 := dev.Counters().BytesWritten
		u0 := tr.Stats().UserBytesWritten
		for i := 0; i < n; i++ {
			now, err = tr.Put(now, kv.EncodeKey(rng.Uint64n(keys)), nil, 1024)
			if err != nil {
				t.Fatal(err)
			}
		}
		return float64(dev.Counters().BytesWritten-c0) / float64(tr.Stats().UserBytesWritten-u0)
	}
	first := measure(4000)
	second := measure(4000)
	if second < first*0.7 || second > first*1.3 {
		t.Fatalf("WA-A drifted: %.2f then %.2f", first, second)
	}
	if first < 2 {
		t.Fatalf("WA-A %.2f suspiciously low for page-granular updates", first)
	}
}

func TestPageSerializationRoundTrip(t *testing.T) {
	var m mem
	leaf := &page{leaf: true, serialized: pageHeaderBytes}
	leaf.insertLeaf(&m, kv.EncodeKey(1), []byte("abc"), 0, 7, false)
	leaf.insertLeaf(&m, kv.EncodeKey(2), nil, 64, 9, true)
	data := serializePage(nil, leaf, nil)
	got, ok := parsePage(data)
	if !ok {
		t.Fatal("parse failed")
	}
	if len(got.entries) != 2 || !bytes.Equal(got.entries[0].key, kv.EncodeKey(1)) {
		t.Fatalf("entries wrong: %v", got.entries)
	}
	if string(got.entries[0].val) != "abc" || got.entries[0].seq != 7 {
		t.Fatal("entry 0 wrong")
	}
	if !got.entries[1].del || got.entries[1].seq != 9 || got.entries[1].vlen != 64 {
		t.Fatal("tombstone entry wrong")
	}

	internal := &page{leaf: false, children: []pageID{1, 2, 3}, seps: [][]byte{kv.EncodeKey(10), kv.EncodeKey(20)}}
	internal.recomputeSerialized()
	data = serializePage(nil, internal, func(id pageID) fileExtent {
		return fileExtent{Start: int64(id) * 100, Pages: 4}
	})
	got, ok = parsePage(data)
	if !ok || len(got.children) != 3 || len(got.seps) != 2 {
		t.Fatalf("internal round trip: %+v %v", got, ok)
	}
	// Parsed internal pages carry child disk extents (in-memory ids are
	// assigned during the recovery rebuild).
	if got.childExtents[2].Start != 300 || got.childExtents[2].Pages != 4 ||
		!bytes.Equal(got.seps[1], kv.EncodeKey(20)) {
		t.Fatal("internal content wrong")
	}

	if _, ok := parsePage([]byte{1, 2, 3}); ok {
		t.Fatal("short page should fail")
	}

	// Appending to a non-empty buffer must leave the prefix intact and
	// produce a parseable image after it (the serializer writes its
	// header relative to the append point, not index 0).
	prefixed := serializePage([]byte("prefix"), leaf, nil)
	if string(prefixed[:6]) != "prefix" {
		t.Fatalf("serialize clobbered the buffer prefix: %q", prefixed[:6])
	}
	if got, ok := parsePage(prefixed[6:]); !ok || len(got.entries) != 2 {
		t.Fatal("image appended after a prefix failed to parse")
	}
}

// Property: the tree agrees with a reference map under random workloads.
func TestCloseRejectsOps(t *testing.T) {
	tr, _, _ := testEnv(t, 16, false, nil)
	now, err := tr.Put(0, kv.EncodeKey(1), nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Close(now); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Put(now, kv.EncodeKey(2), nil, 10); err != ErrClosed {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

func TestLRUConsistency(t *testing.T) {
	tr, _, _ := testEnv(t, 32, false, func(c *Config) {
		c.LeafPageBytes = 1 << 10
		c.CacheBytes = 32 << 10
	})
	var now sim.Duration
	var err error
	rng := sim.NewRNG(4)
	for i := 0; i < 3000; i++ {
		now, err = tr.Put(now, kv.EncodeKey(rng.Uint64n(2000)), nil, 64)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Walk the LRU list both ways and verify linkage + budget.
	var forward int64
	count := 0
	for id := tr.lruHead; id != nilPage; id = tr.pages[id].lruOlder {
		p := tr.pages[id]
		if !p.resident {
			t.Fatal("non-resident page on LRU list")
		}
		forward += int64(p.serialized)
		count++
		if count > len(tr.pages) {
			t.Fatal("LRU list cycle")
		}
	}
	if forward != tr.residentBytes {
		t.Fatalf("LRU bytes %d != residentBytes %d", forward, tr.residentBytes)
	}
	if tr.residentBytes > tr.cfg.CacheBytes+int64(tr.cfg.LeafPageBytes) {
		t.Fatalf("cache over budget: %d > %d", tr.residentBytes, tr.cfg.CacheBytes)
	}
}
