package btree

import (
	"encoding/binary"
	"sort"

	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// checkpointJob writes all pages that were dirty when the checkpoint
// began, then retires the journal segment that preceded it. The journal
// is rotated at job creation (foreground), so updates arriving during the
// checkpoint land in the new segment.
type checkpointJob struct {
	t           *Tree
	ids         []pageID
	idx         int
	oldJournal  *wal.Writer
	pendingMark int // deferred-release prefix safe to free at commit
}

// newCheckpointJob snapshots the dirty set and rotates the journal.
// It returns nil if there is nothing to write.
func (t *Tree) newCheckpointJob() (*checkpointJob, error) {
	if t.dirtyCount == 0 {
		return nil, nil
	}
	job := &checkpointJob{t: t, pendingMark: t.bm.pendingMark()}
	for _, id := range t.dirtyIDs {
		if t.pages[id].dirty {
			job.ids = append(job.ids, id)
		}
	}
	t.dirtyIDs = nil
	// Bottom-up order: leaves first, then internal pages deepest-first,
	// the root last. Writing a child records its new extent before its
	// parent's image is serialized, so a completed checkpoint is a
	// consistent tree.
	t.sortBottomUp(job.ids)
	if t.journal != nil {
		job.oldJournal = t.journal
		w, err := t.wrapJournal()
		if err != nil {
			return nil, err
		}
		t.journal = w
	}
	return job, nil
}

// depthOf returns a page's distance from the root (root = 0).
func (t *Tree) depthOf(id pageID) int {
	d := 0
	for p := t.pages[id]; p != nil && p.parent != nilPage; p = t.pages[p.parent] {
		d++
	}
	return d
}

// sortBottomUp orders page ids deepest-first (ties by id for
// determinism); since leaves are the deepest layer they come first and
// the root comes last.
func (t *Tree) sortBottomUp(ids []pageID) {
	depth := make(map[pageID]int, len(ids))
	for _, id := range ids {
		depth[id] = t.depthOf(id)
	}
	// (depth desc, id asc) is a total order over distinct ids, so any
	// sort yields the same deterministic sequence.
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if depth[a] != depth[b] {
			return depth[a] > depth[b]
		}
		return a < b
	})
}

// Step implements sim.Job: write pages until the chunk budget is used.
func (j *checkpointJob) Step(now sim.Duration) (sim.Duration, bool) {
	t := j.t
	if t.fatal != nil {
		return now, true
	}
	budget := t.cfg.ChunkPages
	ps := t.fs.PageSize()
	for budget > 0 && j.idx < len(j.ids) {
		p := t.pages[j.ids[j.idx]]
		j.idx++
		if p == nil || !p.dirty {
			continue // evicted and written in the meantime
		}
		var err error
		now, err = t.writePage(now, p)
		if err != nil {
			t.fatal = err
			return now, true
		}
		t.io.CheckpointPgs++
		budget -= (p.serialized + ps - 1) / ps
	}
	if j.idx < len(j.ids) {
		return now, false
	}
	// Commit: write the checkpoint metadata (root location), release the
	// previous checkpoint's extents, sync, and recycle the old journal
	// segment (its updates are now covered by the checkpoint). Recycling
	// keeps the journal on a fixed set of LBAs, like real log
	// pre-allocation.
	var err error
	if now, err = t.writeMeta(now); err != nil {
		t.fatal = err
		return now, true
	}
	t.bm.commitPendingPrefix(j.pendingMark)
	now = t.fs.Sync(now)
	if j.oldJournal != nil {
		now, err = j.oldJournal.Recycle(now)
		if err != nil {
			t.fatal = err
			return now, true
		}
		t.journalPool = append(t.journalPool, j.oldJournal)
		j.oldJournal = nil
	}
	t.io.Checkpoints++
	return now, true
}

// wrapJournal opens the next journal segment, reusing a recycled one when
// available.
func (t *Tree) wrapJournal() (*wal.Writer, error) {
	if n := len(t.journalPool); n > 0 {
		w := t.journalPool[n-1]
		t.journalPool = t.journalPool[:n-1]
		return w, nil
	}
	return wal.Create(t.fs, t.journalName(), t.cfg.Content)
}

// serializePage produces the on-disk image of a page (content mode).
// Layout: header {magic, leaf flag, count}, then entries (leaf) or
// separators + child extent references (internal), zero-padded by the
// caller to the extent size. resolve maps a child pageID to its current
// on-disk extent; it may be nil for leaves.
func serializePage(p *page, resolve func(pageID) fileExtent) []byte {
	out := make([]byte, pageHeaderBytes, p.serialized)
	binary.LittleEndian.PutUint32(out[0:], 0x42545047) // "BTPG"
	if p.leaf {
		out[4] = 1
	}
	if p.leaf {
		binary.LittleEndian.PutUint32(out[8:], uint32(len(p.entries)))
		for i := range p.entries {
			e := &p.entries[i]
			var hdr [entryOverhead]byte
			binary.LittleEndian.PutUint16(hdr[0:], uint16(len(e.key)))
			vl := int(e.vlen)
			binary.LittleEndian.PutUint32(hdr[2:], uint32(vl))
			seq := e.seq
			if e.del {
				seq |= 1 << 63 // tombstone bit
			}
			binary.LittleEndian.PutUint64(hdr[6:], seq)
			out = append(out, hdr[:]...)
			out = append(out, e.key...)
			if e.val != nil {
				out = append(out, e.val...)
			} else {
				out = append(out, make([]byte, vl)...)
			}
		}
		return out
	}
	binary.LittleEndian.PutUint32(out[8:], uint32(len(p.seps)))
	for _, sep := range p.seps {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(sep)))
		out = append(out, l[:]...)
		out = append(out, sep...)
	}
	for _, c := range p.children {
		var ext fileExtent
		if resolve != nil {
			ext = resolve(c)
		}
		var b [childRefBytes]byte
		binary.LittleEndian.PutUint64(b[0:], uint64(ext.start))
		binary.LittleEndian.PutUint32(b[8:], uint32(ext.pages))
		out = append(out, b[:]...)
	}
	return out
}

// parsePage reconstructs a page from its serialized image (tests verify
// the round trip; the hot path keeps structures in memory).
func parsePage(data []byte) (*page, bool) {
	if len(data) < pageHeaderBytes {
		return nil, false
	}
	if binary.LittleEndian.Uint32(data[0:]) != 0x42545047 {
		return nil, false
	}
	p := &page{leaf: data[4] == 1}
	n := int(binary.LittleEndian.Uint32(data[8:]))
	off := pageHeaderBytes
	if p.leaf {
		for i := 0; i < n; i++ {
			if off+entryOverhead > len(data) {
				return nil, false
			}
			kl := int(binary.LittleEndian.Uint16(data[off:]))
			vl := int(binary.LittleEndian.Uint32(data[off+2:]))
			seq := binary.LittleEndian.Uint64(data[off+6:])
			del := seq&(1<<63) != 0
			seq &^= 1 << 63
			off += entryOverhead
			if off+kl+vl > len(data) {
				return nil, false
			}
			p.entries = append(p.entries, leafEntry{
				key:  cloneBytes(data[off : off+kl]),
				val:  cloneBytes(data[off+kl : off+kl+vl]),
				seq:  seq,
				vlen: int32(vl),
				del:  del,
			})
			off += kl + vl
		}
		return p, true
	}
	for i := 0; i < n; i++ {
		if off+2 > len(data) {
			return nil, false
		}
		sl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+sl > len(data) {
			return nil, false
		}
		p.seps = append(p.seps, cloneBytes(data[off:off+sl]))
		off += sl
	}
	for i := 0; i <= n; i++ {
		if off+childRefBytes > len(data) {
			return nil, false
		}
		p.childExtents = append(p.childExtents, fileExtent{
			start: int64(binary.LittleEndian.Uint64(data[off:])),
			pages: int64(binary.LittleEndian.Uint32(data[off+8:])),
		})
		p.children = append(p.children, nilPage) // assigned during rebuild
		off += childRefBytes
	}
	return p, true
}
