package btree

import (
	"encoding/binary"
	"sort"

	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// checkpointJob writes all pages that were dirty when the checkpoint
// began, then retires the journal segment that preceded it. The journal
// is rotated at job creation (foreground), so updates arriving during the
// checkpoint land in the new segment.
type checkpointJob struct {
	t           *Tree
	ids         []pageID
	idx         int
	oldJournal  *wal.Writer
	pendingMark int // deferred-release prefix safe to free at commit
}

// newCheckpointJob snapshots the dirty set — expanded to the ancestor
// closure — and rotates the journal. It returns nil if there is nothing
// to write.
//
// The closure is load-bearing for recovery: writing a page moves it on
// disk, so every ancestor's serialized child references change and the
// whole root-to-page spine must be rewritten within the SAME
// checkpoint. Without it, a checkpoint whose dirty snapshot contains
// only a leaf would commit metadata pointing at the old root image
// (whose refs still name the leaf's old extent) while recycling the
// journal that held the leaf's updates — data loss on recovery, and
// corruption once the old extent is reused.
func (t *Tree) newCheckpointJob() (*checkpointJob, error) {
	if t.dirtyCount == 0 {
		return nil, nil
	}
	job := &checkpointJob{t: t, pendingMark: t.bm.PendingMark()}
	inJob := make(map[pageID]bool)
	for _, id := range t.dirtyIDs {
		if !t.pages[id].dirty || inJob[id] {
			continue
		}
		inJob[id] = true
		job.ids = append(job.ids, id)
		for p := t.pages[id].parent; p != nilPage && !inJob[p]; p = t.pages[p].parent {
			inJob[p] = true
			t.markDirty(t.pages[p]) // ancestors must be written too
			job.ids = append(job.ids, p)
		}
	}
	t.dirtyIDs = nil
	// Bottom-up order: leaves first, then internal pages deepest-first,
	// the root last. Writing a child records its new extent before its
	// parent's image is serialized, so a completed checkpoint is a
	// consistent tree.
	t.sortBottomUp(job.ids)
	if t.journal != nil {
		job.oldJournal = t.journal
		w, err := t.wrapJournal()
		if err != nil {
			return nil, err
		}
		t.journal = w
	}
	return job, nil
}

// depthOf returns a page's distance from the root (root = 0).
func (t *Tree) depthOf(id pageID) int {
	d := 0
	for p := t.pages[id]; p != nil && p.parent != nilPage; p = t.pages[p.parent] {
		d++
	}
	return d
}

// sortBottomUp orders page ids deepest-first (ties by id for
// determinism); since leaves are the deepest layer they come first and
// the root comes last.
func (t *Tree) sortBottomUp(ids []pageID) {
	depth := make(map[pageID]int, len(ids))
	for _, id := range ids {
		depth[id] = t.depthOf(id)
	}
	// (depth desc, id asc) is a total order over distinct ids, so any
	// sort yields the same deterministic sequence.
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if depth[a] != depth[b] {
			return depth[a] > depth[b]
		}
		return a < b
	})
}

// Step implements sim.Job: write pages until the chunk budget is used.
func (j *checkpointJob) Step(now sim.Duration) (sim.Duration, bool) {
	t := j.t
	if t.fatal != nil {
		return now, true
	}
	budget := t.cfg.ChunkPages
	ps := t.fs.PageSize()
	for budget > 0 && j.idx < len(j.ids) {
		p := t.pages[j.ids[j.idx]]
		j.idx++
		if p == nil || !p.dirty {
			continue // evicted and written in the meantime
		}
		// Foreground splits that ran since the snapshot may have hung
		// children under p that this job has never written (or even
		// never-written brand-new pages with a zero extent). Serializing
		// p's child references without writing them first would commit
		// an image pointing at stale or nonexistent extents — an
		// unrecoverable tree. Flush p's dirty/unwritten descendants
		// before p itself.
		var err error
		var extra int
		now, extra, err = t.writeSubtreeClean(now, p)
		if err != nil {
			t.fatal = err
			return now, true
		}
		budget -= extra
		now, err = t.writePage(now, p)
		if err != nil {
			t.fatal = err
			return now, true
		}
		t.io.CheckpointPgs++
		budget -= (p.serialized + ps - 1) / ps
	}
	if j.idx < len(j.ids) {
		return now, false
	}
	// Commit. A foreground split may have grown a NEW root while the job
	// ran — an ancestor of every snapshot page, so neither the snapshot
	// closure nor writeSubtreeClean (descendants only) wrote it. Without
	// an on-disk root image writeMeta would decline, yet the commit below
	// would still release the previous checkpoint's extents and recycle
	// the journal — destroying the only durable copies of recent updates.
	// Write the current root (and its unwritten spine) first, so the
	// metadata always points at a complete current tree.
	var err error
	if root := t.pages[t.root]; root.dirty || root.disk.Pages == 0 {
		// writeSubtreeClean counts the descendants it writes itself.
		if now, _, err = t.writeSubtreeClean(now, root); err != nil {
			t.fatal = err
			return now, true
		}
		if now, err = t.writePage(now, root); err != nil {
			t.fatal = err
			return now, true
		}
		t.io.CheckpointPgs++
	}
	// Write the checkpoint metadata (root location), release the previous
	// checkpoint's extents, sync, and recycle the old journal segment
	// (its updates are now covered by the checkpoint). Recycling keeps
	// the journal on a fixed set of LBAs, like real log pre-allocation.
	if now, err = t.writeMeta(now); err != nil {
		t.fatal = err
		return now, true
	}
	t.bm.CommitPendingPrefix(j.pendingMark)
	now = t.fs.Sync(now)
	if j.oldJournal != nil {
		now, err = j.oldJournal.Recycle(now)
		if err != nil {
			t.fatal = err
			return now, true
		}
		t.journalPool = append(t.journalPool, j.oldJournal)
		j.oldJournal = nil
	}
	t.io.Checkpoints++
	return now, true
}

// writeSubtreeClean writes every dirty or never-written descendant of p
// (deepest first), returning the pages written. Pages registered by
// splits that ran while the checkpoint was in flight are not in the
// job's snapshot, and their ancestors' images must not be serialized
// before they have on-disk extents.
func (t *Tree) writeSubtreeClean(now sim.Duration, p *page) (sim.Duration, int, error) {
	if p.leaf {
		return now, 0, nil
	}
	ps := t.fs.PageSize()
	pages := 0
	for _, c := range p.children {
		child := t.pages[c]
		if !child.dirty && child.disk.Pages != 0 {
			continue
		}
		var err error
		var extra int
		now, extra, err = t.writeSubtreeClean(now, child)
		if err != nil {
			return now, pages, err
		}
		pages += extra
		now, err = t.writePage(now, child)
		if err != nil {
			return now, pages, err
		}
		t.io.CheckpointPgs++
		pages += (child.serialized + ps - 1) / ps
	}
	return now, pages, nil
}

// wrapJournal opens the next journal segment, reusing a recycled one when
// available.
func (t *Tree) wrapJournal() (*wal.Writer, error) {
	if n := len(t.journalPool); n > 0 {
		w := t.journalPool[n-1]
		t.journalPool = t.journalPool[:n-1]
		return w, nil
	}
	return wal.Create(t.fs, t.journalName(), t.cfg.Content)
}

// serializePage produces the on-disk image of a page (content mode).
// Layout: header {magic, leaf flag, count}, then entries (leaf) or
// separators + child extent references (internal), zero-padded by the
// caller to the extent size. resolve maps a child pageID to its current
// on-disk extent; it may be nil for leaves.
func serializePage(p *page, resolve func(pageID) fileExtent) []byte {
	out := make([]byte, pageHeaderBytes, p.serialized)
	binary.LittleEndian.PutUint32(out[0:], 0x42545047) // "BTPG"
	if p.leaf {
		out[4] = 1
	}
	if p.leaf {
		binary.LittleEndian.PutUint32(out[8:], uint32(len(p.entries)))
		for i := range p.entries {
			e := &p.entries[i]
			var hdr [entryOverhead]byte
			binary.LittleEndian.PutUint16(hdr[0:], uint16(len(e.key)))
			vl := int(e.vlen)
			binary.LittleEndian.PutUint32(hdr[2:], uint32(vl))
			seq := e.seq
			if e.del {
				seq |= 1 << 63 // tombstone bit
			}
			binary.LittleEndian.PutUint64(hdr[6:], seq)
			out = append(out, hdr[:]...)
			out = append(out, e.key...)
			if e.val != nil {
				out = append(out, e.val...)
			} else {
				out = append(out, make([]byte, vl)...)
			}
		}
		return out
	}
	binary.LittleEndian.PutUint32(out[8:], uint32(len(p.seps)))
	for _, sep := range p.seps {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(sep)))
		out = append(out, l[:]...)
		out = append(out, sep...)
	}
	for _, c := range p.children {
		var ext fileExtent
		if resolve != nil {
			ext = resolve(c)
		}
		var b [childRefBytes]byte
		binary.LittleEndian.PutUint64(b[0:], uint64(ext.Start))
		binary.LittleEndian.PutUint32(b[8:], uint32(ext.Pages))
		out = append(out, b[:]...)
	}
	return out
}

// parsePage reconstructs a page from its serialized image (tests verify
// the round trip; the hot path keeps structures in memory).
func parsePage(data []byte) (*page, bool) {
	if len(data) < pageHeaderBytes {
		return nil, false
	}
	if binary.LittleEndian.Uint32(data[0:]) != 0x42545047 {
		return nil, false
	}
	p := &page{leaf: data[4] == 1}
	n := int(binary.LittleEndian.Uint32(data[8:]))
	off := pageHeaderBytes
	if p.leaf {
		for i := 0; i < n; i++ {
			if off+entryOverhead > len(data) {
				return nil, false
			}
			kl := int(binary.LittleEndian.Uint16(data[off:]))
			vl := int(binary.LittleEndian.Uint32(data[off+2:]))
			seq := binary.LittleEndian.Uint64(data[off+6:])
			del := seq&(1<<63) != 0
			seq &^= 1 << 63
			off += entryOverhead
			if off+kl+vl > len(data) {
				return nil, false
			}
			p.entries = append(p.entries, leafEntry{
				key:  cloneBytes(data[off : off+kl]),
				val:  cloneBytes(data[off+kl : off+kl+vl]),
				seq:  seq,
				vlen: int32(vl),
				del:  del,
			})
			off += kl + vl
		}
		return p, true
	}
	for i := 0; i < n; i++ {
		if off+2 > len(data) {
			return nil, false
		}
		sl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+sl > len(data) {
			return nil, false
		}
		p.seps = append(p.seps, cloneBytes(data[off:off+sl]))
		off += sl
	}
	for i := 0; i <= n; i++ {
		if off+childRefBytes > len(data) {
			return nil, false
		}
		p.childExtents = append(p.childExtents, fileExtent{
			Start: int64(binary.LittleEndian.Uint64(data[off:])),
			Pages: int64(binary.LittleEndian.Uint32(data[off+8:])),
		})
		p.children = append(p.children, nilPage) // assigned during rebuild
		off += childRefBytes
	}
	return p, true
}
