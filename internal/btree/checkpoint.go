package btree

import (
	"encoding/binary"

	"ptsbench/internal/cowtree"
)

// The checkpoint discipline — dirty-ancestor-closure snapshot, bottom-up
// write order, writeSubtreeClean for split-orphaned descendants, the
// root-spine write at commit, journal rotation/recycling and the
// double-buffered metadata — lives in internal/cowtree. This file keeps
// only the engine's page codec.

// serializePage appends the on-disk image of a page (content mode) to
// out and returns it. Layout: header {magic, leaf flag, count}, then
// entries (leaf) or separators + child extent references (internal),
// zero-padded by the caller to the extent size. resolve maps a child
// pageID to its current on-disk extent; it may be nil for leaves.
func serializePage(out []byte, p *page, resolve func(pageID) fileExtent) []byte {
	var hdr [pageHeaderBytes]byte
	base := len(out)
	out = append(out, hdr[:]...)
	binary.LittleEndian.PutUint32(out[base:], 0x42545047) // "BTPG"
	if p.leaf {
		out[base+4] = 1
	}
	if p.leaf {
		binary.LittleEndian.PutUint32(out[base+8:], uint32(len(p.entries)))
		for i := range p.entries {
			e := &p.entries[i]
			var eh [entryOverhead]byte
			binary.LittleEndian.PutUint16(eh[0:], uint16(len(e.key)))
			vl := int(e.vlen)
			binary.LittleEndian.PutUint32(eh[2:], uint32(vl))
			seq := e.seq
			if e.del {
				seq |= 1 << 63 // tombstone bit
			}
			binary.LittleEndian.PutUint64(eh[6:], seq)
			out = append(out, eh[:]...)
			out = append(out, e.key...)
			if e.val != nil {
				out = append(out, e.val...)
			} else {
				out = cowtree.AppendZeros(out, vl)
			}
		}
		return out
	}
	binary.LittleEndian.PutUint32(out[base+8:], uint32(len(p.seps)))
	for _, sep := range p.seps {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(sep)))
		out = append(out, l[:]...)
		out = append(out, sep...)
	}
	for _, c := range p.children {
		var ext fileExtent
		if resolve != nil {
			ext = resolve(c)
		}
		var b [childRefBytes]byte
		binary.LittleEndian.PutUint64(b[0:], uint64(ext.Start))
		binary.LittleEndian.PutUint32(b[8:], uint32(ext.Pages))
		out = append(out, b[:]...)
	}
	return out
}

// parsePage reconstructs a page from its serialized image (tests verify
// the round trip; the hot path keeps structures in memory).
func parsePage(data []byte) (*page, bool) {
	if len(data) < pageHeaderBytes {
		return nil, false
	}
	if binary.LittleEndian.Uint32(data[0:]) != 0x42545047 {
		return nil, false
	}
	p := &page{leaf: data[4] == 1}
	n := int(binary.LittleEndian.Uint32(data[8:]))
	off := pageHeaderBytes
	if p.leaf {
		for i := 0; i < n; i++ {
			if off+entryOverhead > len(data) {
				return nil, false
			}
			kl := int(binary.LittleEndian.Uint16(data[off:]))
			vl := int(binary.LittleEndian.Uint32(data[off+2:]))
			seq := binary.LittleEndian.Uint64(data[off+6:])
			del := seq&(1<<63) != 0
			seq &^= 1 << 63
			off += entryOverhead
			if off+kl+vl > len(data) {
				return nil, false
			}
			p.entries = append(p.entries, makeEntry(
				cloneBytes(data[off:off+kl]),
				cloneBytes(data[off+kl:off+kl+vl]),
				seq, vl, del))
			off += kl + vl
		}
		return p, true
	}
	for i := 0; i < n; i++ {
		if off+2 > len(data) {
			return nil, false
		}
		sl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+sl > len(data) {
			return nil, false
		}
		p.seps = append(p.seps, cloneBytes(data[off:off+sl]))
		off += sl
	}
	for i := 0; i <= n; i++ {
		if off+childRefBytes > len(data) {
			return nil, false
		}
		p.childExtents = append(p.childExtents, fileExtent{
			Start: int64(binary.LittleEndian.Uint64(data[off:])),
			Pages: int64(binary.LittleEndian.Uint32(data[off+8:])),
		})
		p.children = append(p.children, nilPage) // assigned during rebuild
		off += childRefBytes
	}
	return p, true
}
