// Package btree implements a WiredTiger-style persistent B+Tree: a
// single collection file managed by a block manager that reuses freed
// extents (no-overwrite/copy-on-write page updates), a small page cache
// with foreground eviction, a synced update journal, and periodic
// checkpoints.
//
// The I/O shape this produces is the one the paper attributes to
// WiredTiger: small random writes confined to a narrow LBA range (the
// collection file), a stable application-level write amplification
// (~pageSize/valueSize plus journal), and write traffic that an SSD
// write cache can absorb.
package btree

import (
	"fmt"
	"time"
)

// Config holds the engine's tuning knobs.
type Config struct {
	// LeafPageBytes is the maximum serialized leaf size (WiredTiger's
	// leaf_page_max, default 32 KiB).
	LeafPageBytes int
	// InternalPageBytes is the maximum serialized internal page size.
	InternalPageBytes int
	// CacheBytes bounds the leaf-page cache (the paper configures a
	// deliberately small 10 MiB cache so the dataset cannot fit in
	// RAM).
	CacheBytes int64
	// CheckpointInterval triggers a checkpoint when this much virtual
	// time has passed since the last one (WiredTiger defaults to 60s).
	CheckpointInterval time.Duration
	// CheckpointPendingBytes triggers a checkpoint when this many bytes
	// of freed extents await release (they only return to the allocator
	// at checkpoint commit; see the block manager).
	CheckpointPendingBytes int64
	// JournalSync syncs the journal on every update.
	JournalSync bool
	// DisableJournal turns journaling off entirely (ablations).
	DisableJournal bool

	// CPUPutTime / CPUGetTime model per-operation engine CPU and
	// synchronization overhead; CPUPerByte adds the payload-dependent
	// part. The paper observes WiredTiger is less device-bound than
	// RocksDB because of these costs (§4.1).
	CPUPutTime time.Duration
	CPUGetTime time.Duration
	CPUPerByte time.Duration

	// ChunkPages is the checkpoint I/O granularity per job step.
	ChunkPages int

	// PrefetchDepth is the number of leaf reads a scan keeps in flight:
	// when a range scan misses the cache it issues reads for up to
	// PrefetchDepth-1 following sibling leaves at the same virtual
	// time, overlapping them on the device's internal lanes (the
	// read-ahead a real engine issues once it detects a sequential leaf
	// walk). 1 (the default) reads one leaf at a time.
	PrefetchDepth int

	// Content selects content mode (values materialized and written
	// through).
	Content bool
}

// NewConfig returns WiredTiger-flavoured defaults for a dataset of
// roughly datasetBytes. The cache scales with the dataset the way the
// paper's 10 MiB cache relates to its 200 GiB dataset (deliberately
// tiny), with a floor of a few leaves.
func NewConfig(datasetBytes int64) Config {
	cache := datasetBytes / 20000
	if cache < 256<<10 {
		cache = 256 << 10
	}
	pending := datasetBytes / 16
	if pending < 512<<10 {
		pending = 512 << 10
	}
	return Config{
		// 48 KiB models WiredTiger's effective reconciliation unit: the
		// in-memory page grows past leaf_page_max before it is split and
		// written out, so the average write-out is larger than the
		// nominal 32 KiB leaf (see DESIGN.md calibration notes).
		LeafPageBytes:          48 << 10,
		InternalPageBytes:      4 << 10,
		CacheBytes:             cache,
		CheckpointInterval:     60 * time.Second,
		CheckpointPendingBytes: pending,
		JournalSync:            true,
		CPUPutTime:             300 * time.Microsecond,
		CPUGetTime:             120 * time.Microsecond,
		CPUPerByte:             65 * time.Nanosecond,
		ChunkPages:             32,
	}
}

// Validate fills defaults and rejects nonsense.
func (c Config) Validate() (Config, error) {
	if c.LeafPageBytes <= 0 {
		return c, fmt.Errorf("btree: LeafPageBytes must be positive")
	}
	if c.InternalPageBytes <= 0 {
		c.InternalPageBytes = 4 << 10
	}
	if c.CacheBytes <= int64(2*c.LeafPageBytes) {
		c.CacheBytes = int64(8 * c.LeafPageBytes)
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 60 * time.Second
	}
	if c.CheckpointPendingBytes <= 0 {
		c.CheckpointPendingBytes = 8 << 20
	}
	if c.ChunkPages <= 0 {
		c.ChunkPages = 32
	}
	if c.PrefetchDepth < 1 {
		c.PrefetchDepth = 1
	}
	return c, nil
}
