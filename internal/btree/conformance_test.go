package btree

import (
	"testing"

	"ptsbench/internal/kvtest"
	"ptsbench/internal/sim"
)

// TestEngineConformance runs the shared engine-conformance suite (see
// internal/kvtest) over the B+Tree: the same put/get/scan/recovery
// contract the LSM and Bε-tree are held to.
func TestEngineConformance(t *testing.T) {
	kvtest.Run(t, func(t *testing.T, content bool) *kvtest.Stack {
		tr, dev, fs := testEnv(t, 32, content, func(c *Config) {
			c.LeafPageBytes = 2 << 10 // small pages: splits participate
			c.JournalSync = true
		})
		return &kvtest.Stack{
			Engine: tr,
			Dev:    dev,
			Reopen: func(now sim.Duration) (kvtest.Engine, sim.Duration, error) {
				re, rnow, err := Recover(fs, tr.cfg, now)
				if err != nil {
					return nil, rnow, err
				}
				return re, rnow, nil
			},
		}
	})
}
