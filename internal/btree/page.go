package btree

import (
	"bytes"
	"sort"
)

// pageID identifies an in-memory page. IDs are never reused.
type pageID uint32

const nilPage pageID = 0

// entryOverhead is the serialized per-entry header in a leaf:
// keyLen(2) + valueLen(4) + seq(8).
const entryOverhead = 14

// pageHeaderBytes is the serialized page header size.
const pageHeaderBytes = 64

// page is an in-memory B+Tree page. Leaves carry entries; internal pages
// carry separator keys and children. The serialized footprint is tracked
// incrementally so splits trigger at the configured page size without
// serializing on every update.
type page struct {
	id     pageID
	parent pageID
	leaf   bool

	// Leaf payload. keys sorted; vals[i] may be nil in accounting mode
	// with vlens[i] carrying the accounted size.
	keys  [][]byte
	vals  [][]byte
	vlens []int32
	seqs  []uint64
	dels  []bool

	// Internal payload: children[i] holds keys < seps[i] for
	// i < len(seps); children[len(seps)] holds the rest.
	seps     [][]byte
	children []pageID

	// childExtents is only populated on pages reconstructed from disk
	// (recovery): the on-disk locations of the children, in child order.
	childExtents []fileExtent

	serialized int  // current serialized size estimate, bytes
	dirty      bool // needs writing before eviction / at checkpoint

	// On-disk location (pages within the collection file); pages==0
	// means never written.
	disk fileExtent

	// Cache bookkeeping (leaves only): resident pages form an LRU list.
	resident   bool
	lruNewer   pageID
	lruOlder   pageID
	everOnDisk bool

	// next chains leaves left-to-right for range scans.
	next pageID
}

// search returns the index of the first key >= target in a leaf.
func (p *page) search(target []byte) int {
	return sort.Search(len(p.keys), func(i int) bool {
		return bytes.Compare(p.keys[i], target) >= 0
	})
}

// childFor returns the child page covering target in an internal page.
func (p *page) childFor(target []byte) pageID {
	i := sort.Search(len(p.seps), func(i int) bool {
		return bytes.Compare(p.seps[i], target) > 0
	})
	return p.children[i]
}

// childIndex returns the position of child id in an internal page.
func (p *page) childIndex(id pageID) int {
	for i, c := range p.children {
		if c == id {
			return i
		}
	}
	return -1
}

// insertLeaf inserts or replaces an entry, returning the serialized size
// delta. When val is non-nil it overrides vlen, keeping the stored bytes
// and the accounted size consistent.
func (p *page) insertLeaf(key, val []byte, vlen int, seq uint64, del bool) int {
	if val != nil {
		vlen = len(val)
	}
	i := p.search(key)
	if i < len(p.keys) && bytes.Equal(p.keys[i], key) {
		old := entryOverhead + len(p.keys[i]) + int(p.vlens[i])
		p.vals[i] = cloneBytes(val)
		p.vlens[i] = int32(vlen)
		p.seqs[i] = seq
		p.dels[i] = del
		delta := entryOverhead + len(key) + vlen - old
		p.serialized += delta
		return delta
	}
	p.keys = append(p.keys, nil)
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = cloneBytes(key)
	p.vals = append(p.vals, nil)
	copy(p.vals[i+1:], p.vals[i:])
	p.vals[i] = cloneBytes(val)
	p.vlens = append(p.vlens, 0)
	copy(p.vlens[i+1:], p.vlens[i:])
	p.vlens[i] = int32(vlen)
	p.seqs = append(p.seqs, 0)
	copy(p.seqs[i+1:], p.seqs[i:])
	p.seqs[i] = seq
	p.dels = append(p.dels, false)
	copy(p.dels[i+1:], p.dels[i:])
	p.dels[i] = del
	delta := entryOverhead + len(key) + vlen
	p.serialized += delta
	return delta
}

// removeLeafAt deletes entry i outright (used by tombstone reclamation in
// tests; normal deletes keep tombstoned entries until overwritten).
func (p *page) removeLeafAt(i int) {
	sz := entryOverhead + len(p.keys[i]) + int(p.vlens[i])
	p.keys = append(p.keys[:i], p.keys[i+1:]...)
	p.vals = append(p.vals[:i], p.vals[i+1:]...)
	p.vlens = append(p.vlens[:i], p.vlens[i+1:]...)
	p.seqs = append(p.seqs[:i], p.seqs[i+1:]...)
	p.dels = append(p.dels[:i], p.dels[i+1:]...)
	p.serialized -= sz
}

// splitLeaf moves the upper half of the entries to a new page and returns
// it with the separator key (first key of the new page).
func (p *page) splitLeaf(newID pageID) (*page, []byte) {
	mid := len(p.keys) / 2
	right := &page{
		id:     newID,
		parent: p.parent,
		leaf:   true,
		keys:   append([][]byte(nil), p.keys[mid:]...),
		vals:   append([][]byte(nil), p.vals[mid:]...),
		vlens:  append([]int32(nil), p.vlens[mid:]...),
		seqs:   append([]uint64(nil), p.seqs[mid:]...),
		dels:   append([]bool(nil), p.dels[mid:]...),
		dirty:  true,
	}
	var moved int
	for i := mid; i < len(p.keys); i++ {
		moved += entryOverhead + len(p.keys[i]) + int(p.vlens[i])
	}
	right.serialized = pageHeaderBytes + moved
	p.keys = p.keys[:mid]
	p.vals = p.vals[:mid]
	p.vlens = p.vlens[:mid]
	p.seqs = p.seqs[:mid]
	p.dels = p.dels[:mid]
	p.serialized -= moved
	// Maintain the leaf chain.
	right.next = p.next
	p.next = right.id
	return right, right.keys[0]
}

// childRefBytes is the serialized size of one child reference in an
// internal page: extent start (8) + extent pages (4), so recovery can
// locate children on disk.
const childRefBytes = 12

// insertChild adds a separator and child after position idx in an
// internal page.
func (p *page) insertChild(idx int, sep []byte, child pageID) {
	p.seps = append(p.seps, nil)
	copy(p.seps[idx+1:], p.seps[idx:])
	p.seps[idx] = cloneBytes(sep)
	p.children = append(p.children, nilPage)
	copy(p.children[idx+2:], p.children[idx+1:])
	p.children[idx+1] = child
	p.serialized += 2 + len(sep) + childRefBytes
}

// splitInternal moves the upper half of an internal page to a new page,
// returning the new page and the separator promoted to the parent.
func (p *page) splitInternal(newID pageID) (*page, []byte) {
	mid := len(p.seps) / 2
	promoted := p.seps[mid]
	right := &page{
		id:       newID,
		parent:   p.parent,
		leaf:     false,
		seps:     append([][]byte(nil), p.seps[mid+1:]...),
		children: append([]pageID(nil), p.children[mid+1:]...),
		dirty:    true,
	}
	right.recomputeSerialized()
	p.seps = p.seps[:mid]
	p.children = p.children[:mid+1]
	p.recomputeSerialized()
	return right, promoted
}

// recomputeSerialized recalculates the internal page footprint.
func (p *page) recomputeSerialized() {
	s := pageHeaderBytes + childRefBytes*len(p.children)
	for _, sep := range p.seps {
		s += 2 + len(sep)
	}
	p.serialized = s
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
