package btree

import (
	"bytes"

	"ptsbench/internal/cowtree"
	"ptsbench/internal/extalloc"
	"ptsbench/internal/kv"
)

// fileExtent aliases the shared extent type; see internal/extalloc.
type fileExtent = extalloc.Extent

// pageID identifies an in-memory page. IDs are never reused. It aliases
// the shared core's node id so pages plug into internal/cowtree without
// conversions.
type pageID = cowtree.NodeID

const nilPage = cowtree.NilNode

// entryOverhead is the serialized per-entry header in a leaf:
// keyLen(2) + valueLen(4) + seq(8).
const entryOverhead = 14

// pageHeaderBytes is the serialized page header size.
const pageHeaderBytes = 64

// page is an in-memory B+Tree page. Leaves carry entries; internal pages
// carry separator keys and children. The serialized footprint is tracked
// incrementally so splits trigger at the configured page size without
// serializing on every update.
type page struct {
	id     pageID
	parent pageID
	leaf   bool

	// Leaf payload, sorted by key. entry.val may be nil in accounting
	// mode with entry.vlen carrying the accounted size. A single entry
	// slice (instead of five parallel column slices) keeps an insert to
	// one shift and a split to one allocation.
	entries []leafEntry

	// Internal payload: children[i] holds keys < seps[i] for
	// i < len(seps); children[len(seps)] holds the rest.
	seps     [][]byte
	children []pageID

	// sepCache holds the separators' word decomposition so descents
	// probe raw uint64 pairs (see kv.SepCache); maintained by
	// refreshSepCache/insertSepCache after any seps mutation.
	sepCache kv.SepCache

	// childExtents is only populated on pages reconstructed from disk
	// (recovery): the on-disk locations of the children, in child order.
	childExtents []fileExtent

	serialized int  // current serialized size estimate, bytes
	dirty      bool // needs writing before eviction / at checkpoint

	// On-disk location (pages within the collection file); pages==0
	// means never written.
	disk fileExtent

	// Cache bookkeeping (leaves only): resident pages form an LRU list.
	resident   bool
	lruNewer   pageID
	lruOlder   pageID
	everOnDisk bool

	// next chains leaves left-to-right for range scans.
	next pageID
}

// mem bundles the tree's allocation helpers handed to page methods: the
// arena backs retained key/value copies, the pool recycles leaf entry
// arrays displaced by growth and splits.
type mem struct {
	arena   cowtree.Arena
	entries cowtree.Pool[leafEntry]
}

// leafEntry is one key-value record inside a leaf page.
type leafEntry struct {
	key  []byte
	val  []byte
	seq  uint64
	vlen int32
	del  bool
}

// makeEntry builds a leafEntry value (one construction point keeps the
// field order in one place).
func makeEntry(key, val []byte, seq uint64, vlen int, del bool) leafEntry {
	return leafEntry{key: key, val: val, seq: seq, vlen: int32(vlen), del: del}
}

// bytes returns the entry's serialized footprint.
func (e *leafEntry) bytes() int {
	return entryOverhead + len(e.key) + int(e.vlen)
}

// search returns the index of the first key >= target in a leaf. Open-
// coded binary search: the closure-based sort.Search showed up in every
// descend/insert profile.
func (p *page) search(target []byte) int {
	wHi, wLo, fast := kv.DecomposeKey(target)
	lo, hi := 0, len(p.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		var c int
		if mk := p.entries[mid].key; fast && len(mk) == kv.KeySize {
			c = kv.CompareKeyWords(mk, wHi, wLo)
		} else {
			c = kv.CompareKeys(mk, target)
		}
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// refreshSepCache rebuilds the separator word cache. Callers invoke it
// after every seps mutation.
func (p *page) refreshSepCache() { p.sepCache.Refresh(p.seps) }

// childFor returns the child page covering target in an internal page.
func (p *page) childFor(target []byte) pageID {
	wHi, wLo, fast := kv.DecomposeKey(target)
	if fast && p.sepCache.Fast() {
		return p.children[p.sepCache.UpperBound(wHi, wLo)]
	}
	lo, hi := 0, len(p.seps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		var c int
		if sk := p.seps[mid]; fast && len(sk) == kv.KeySize {
			c = kv.CompareKeyWords(sk, wHi, wLo)
		} else {
			c = kv.CompareKeys(sk, target)
		}
		if c <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return p.children[lo]
}

// childIndex returns the position of child id in an internal page.
func (p *page) childIndex(id pageID) int {
	for i, c := range p.children {
		if c == id {
			return i
		}
	}
	return -1
}

// insertLeaf inserts or replaces an entry, returning the serialized size
// delta. When val is non-nil it overrides vlen, keeping the stored bytes
// and the accounted size consistent. Retained key/value copies come from
// the tree's arena and array growth recycles through the entry pool, so
// the steady-state path costs no heap allocation.
func (p *page) insertLeaf(m *mem, key, val []byte, vlen int, seq uint64, del bool) int {
	if val != nil {
		vlen = len(val)
	}
	i := p.search(key)
	if i < len(p.entries) && bytes.Equal(p.entries[i].key, key) {
		e := &p.entries[i]
		old := e.bytes()
		e.val = m.arena.Clone(val)
		e.vlen = int32(vlen)
		e.seq = seq
		e.del = del
		delta := entryOverhead + len(key) + vlen - old
		p.serialized += delta
		return delta
	}
	p.entries = m.entries.GrowInsert(p.entries, i,
		makeEntry(m.arena.Clone(key), m.arena.Clone(val), seq, vlen, del))
	delta := entryOverhead + len(key) + vlen
	p.serialized += delta
	return delta
}

// removeLeafAt deletes entry i outright (used by tombstone reclamation in
// tests; normal deletes keep tombstoned entries until overwritten).
func (p *page) removeLeafAt(i int) {
	sz := p.entries[i].bytes()
	p.entries = append(p.entries[:i], p.entries[i+1:]...)
	p.serialized -= sz
}

// splitLeaf moves the upper half of the entries into right (a fresh
// slab-allocated page) and returns it with the separator key (first key
// of the new page). The moved half draws pooled storage whose capacity
// class (next power of two) leaves room to refill toward the page's own
// split without regrowing.
func (p *page) splitLeaf(m *mem, right *page, newID pageID) (*page, []byte) {
	mid := len(p.entries) / 2
	right.id = newID
	right.parent = p.parent
	right.leaf = true
	right.entries = m.entries.CloneTail(p.entries, mid)
	var movedBytes int
	for i := mid; i < len(p.entries); i++ {
		movedBytes += p.entries[i].bytes()
	}
	right.serialized = pageHeaderBytes + movedBytes
	p.entries = p.entries[:mid]
	p.serialized -= movedBytes
	// Maintain the leaf chain.
	right.next = p.next
	p.next = right.id
	return right, right.entries[0].key
}

// childRefBytes is the serialized size of one child reference in an
// internal page: extent start (8) + extent pages (4), so recovery can
// locate children on disk.
const childRefBytes = 12

// insertChild adds a separator and child after position idx in an
// internal page. The separator copy comes from the tree's arena.
func (p *page) insertChild(m *mem, idx int, sep []byte, child pageID) {
	p.seps = append(p.seps, nil)
	copy(p.seps[idx+1:], p.seps[idx:])
	p.seps[idx] = m.arena.Clone(sep)
	p.children = append(p.children, nilPage)
	copy(p.children[idx+2:], p.children[idx+1:])
	p.children[idx+1] = child
	p.serialized += 2 + len(sep) + childRefBytes
	p.insertSepCache(idx, p.seps[idx])
}

// insertSepCache splices one separator's decomposed words into the word
// cache.
func (p *page) insertSepCache(idx int, sep []byte) { p.sepCache.Insert(idx, sep) }

// splitInternal moves the upper half of an internal page into right (a
// fresh slab-allocated page), returning it and the separator promoted to
// the parent.
func (p *page) splitInternal(right *page, newID pageID) (*page, []byte) {
	mid := len(p.seps) / 2
	promoted := p.seps[mid]
	right.id = newID
	right.parent = p.parent
	right.leaf = false
	right.seps = append([][]byte(nil), p.seps[mid+1:]...)
	right.children = append([]pageID(nil), p.children[mid+1:]...)
	right.recomputeSerialized()
	right.refreshSepCache()
	p.seps = p.seps[:mid]
	p.children = p.children[:mid+1]
	p.recomputeSerialized()
	p.refreshSepCache()
	return right, promoted
}

// recomputeSerialized recalculates the internal page footprint.
func (p *page) recomputeSerialized() {
	s := pageHeaderBytes + childRefBytes*len(p.children)
	for _, sep := range p.seps {
		s += 2 + len(sep)
	}
	p.serialized = s
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
