package btree

import (
	"bytes"
	"fmt"

	"ptsbench/internal/cowtree"
	"ptsbench/internal/extalloc"
	"ptsbench/internal/extfs"
	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// The recovery skeleton — metadata selection, the top-down tree walk,
// free-list reconstruction, leaf-chain rebuild, sequence-ordered journal
// replay and stale-segment retirement — lives in internal/cowtree. This
// file provides the engine-specific hooks: page materialization (the
// codec) and the journal-record apply path.

// Recover reopens a B+Tree from its on-device state: the newest
// checkpoint metadata locates the root, the tree is parsed top-down, and
// surviving journal records are replayed on top (sequence-guarded, so a
// replay never regresses a newer on-disk value). It requires content
// mode. The returned time includes all recovery I/O.
func Recover(fs *extfs.FS, cfg Config, now sim.Duration) (*Tree, sim.Duration, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, now, err
	}
	if !cfg.Content {
		return nil, now, fmt.Errorf("btree: Recover requires content mode")
	}
	st, now, err := cowtree.ReadMeta(fs, "wtmeta", metaMagic, "btree", now)
	if err != nil {
		return nil, now, err
	}
	if st == nil {
		// The tree died before its first checkpoint committed: the
		// synced journal is the only durable state. Rebuild from an
		// empty root and replay it (see cowtree.RecoverBootstrap).
		return bootstrap(fs, cfg, now)
	}
	f, err := fs.Open("collection.wt")
	if err != nil {
		return nil, now, fmt.Errorf("btree: collection file missing: %w", err)
	}
	t := &Tree{
		cfg:   cfg,
		fs:    fs,
		file:  f,
		bm:    extalloc.New(f, int64(cfg.LeafPageBytes/fs.PageSize())*16),
		pages: make([]*page, 1, 64), // index 0 is nilPage
	}
	t.core.Init(t, fs, f, t.bm, coreConfig(cfg))
	t.core.SetJournalState(st.JournalID, st.Gen)
	// Rebuild the tree from the root (extents seen during the walk are
	// live; everything else inside the file is free space), then replay
	// the surviving journal segments, newest records winning. The
	// sequence counter is recomputed from what is actually on disk
	// (MaterializeNode tracks the max leaf-entry sequence, ApplyRecovered
	// advances it per replayed record) rather than trusted from the
	// metadata, so it can be checked against the checkpoint floor below.
	now, err = t.core.RecoverTree(now, st.Root, t, func(id cowtree.NodeID) {
		t.root = id
		if root := t.pages[id]; root.leaf {
			t.admit(root)
		}
	})
	if err != nil {
		return nil, now, err
	}
	// The metadata's floor promises every update with seq <= st.Seq is in
	// the checkpointed tree image (tombstoned entries included — deletes
	// keep their entry until overwritten). Recovering less means node
	// writes the device acknowledged before the checkpoint barrier never
	// persisted: the device lied about fsync. Refuse loudly rather than
	// silently serving the stale tree.
	if t.seq < st.Seq {
		return nil, now, fmt.Errorf(
			"btree: recovered sequence %d below checkpoint floor %d: device dropped acknowledged writes (fsync lie)",
			t.seq, st.Seq)
	}
	// Fresh journal; make the replayed state durable, then retire stale
	// segments.
	if err := t.core.StartJournal(); err != nil {
		return nil, now, err
	}
	if end, err := t.FlushAll(now); err != nil {
		return nil, now, err
	} else if end > now {
		now = end
	}
	if err := t.core.RetireStaleSegments(); err != nil {
		return nil, now, err
	}
	return t, now, nil
}

// bootstrap recovers with no committed checkpoint: an empty tree plus
// journal replay, closed out by the first real checkpoint so the next
// crash finds valid metadata.
func bootstrap(fs *extfs.FS, cfg Config, now sim.Duration) (*Tree, sim.Duration, error) {
	f, err := fs.Open("collection.wt")
	if err != nil {
		if f, err = fs.Create("collection.wt"); err != nil {
			return nil, now, err
		}
	}
	t := &Tree{
		cfg:   cfg,
		fs:    fs,
		file:  f,
		bm:    extalloc.New(f, int64(cfg.LeafPageBytes/fs.PageSize())*16),
		pages: make([]*page, 1, 64), // index 0 is nilPage
	}
	t.core.Init(t, fs, f, t.bm, coreConfig(cfg))
	rootLeaf := t.newPage(true)
	rootLeaf.parent = nilPage
	t.root = rootLeaf.id
	t.admit(rootLeaf)
	if now, err = t.core.RecoverBootstrap(now, t); err != nil {
		return nil, now, err
	}
	if err := t.core.StartJournal(); err != nil {
		return nil, now, err
	}
	if end, err := t.FlushAll(now); err != nil {
		return nil, now, err
	} else if end > now {
		now = end
	}
	if err := t.core.RetireStaleSegments(); err != nil {
		return nil, now, err
	}
	return t, now, nil
}

// MaterializeNode implements cowtree.RecoveryEngine: parse one on-disk
// image, register the page and return its child extents for the walk.
func (t *Tree) MaterializeNode(data []byte, ext cowtree.Extent, parent cowtree.NodeID) (cowtree.NodeID, []cowtree.Extent, error) {
	p, ok := parsePage(data)
	if !ok {
		return nilPage, nil, fmt.Errorf("btree: corrupt page at extent %d+%d", ext.Start, ext.Pages)
	}
	t.nextID++
	p.id = t.nextID
	p.parent = parent
	p.disk = ext
	p.everOnDisk = true
	if p.leaf {
		var sz int
		for i := range p.entries {
			sz += p.entries[i].bytes()
			if s := p.entries[i].seq; s > t.seq {
				t.seq = s // recompute the counter from disk state
			}
		}
		p.serialized = pageHeaderBytes + sz
	} else {
		p.recomputeSerialized()
		p.refreshSepCache()
	}
	t.registerPage(p)
	childExts := p.childExtents
	p.childExtents = nil
	return p.id, childExts, nil
}

// LinkChild implements cowtree.RecoveryEngine.
func (t *Tree) LinkChild(parent cowtree.NodeID, i int, child cowtree.NodeID) {
	t.pages[parent].children[i] = child
}

// SetNext implements cowtree.RecoveryEngine (the left-to-right leaf
// chain scans follow).
func (t *Tree) SetNext(id, next cowtree.NodeID) { t.pages[id].next = next }

// ApplyRecovered implements cowtree.RecoveryEngine: replay one journal
// record through the insert path (without journaling, CPU costs or
// eviction), guarded by sequence so stale records never overwrite newer
// on-disk state.
func (t *Tree) ApplyRecovered(now sim.Duration, r *wal.Record) (sim.Duration, error) {
	if r.Seq > t.seq {
		t.seq = r.Seq
	}
	leaf := t.descend(r.Key)
	i := leaf.search(r.Key)
	if i < len(leaf.entries) && bytes.Equal(leaf.entries[i].key, r.Key) && leaf.entries[i].seq >= r.Seq {
		return now, nil // on-disk state is as new or newer
	}
	vlen := r.ValueLen
	if r.Value != nil {
		vlen = len(r.Value)
	}
	delta := leaf.insertLeaf(&t.mem, r.Key, r.Value, vlen, r.Seq, r.Deleted)
	if leaf.resident {
		t.residentBytes += int64(delta)
	}
	t.markDirty(leaf)
	if leaf.serialized > t.cfg.LeafPageBytes {
		t.splitLeaf(leaf)
	}
	return now, nil
}
