package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"ptsbench/internal/extfs"
	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// Checkpoint metadata: a double-buffered pair of tiny files records the
// root page's on-disk extent and the sequence high-water mark of the last
// completed checkpoint. Recovery parses the tree from the root and
// replays the surviving journal segments on top.

const (
	metaA     = "wtmeta-A"
	metaB     = "wtmeta-B"
	metaMagic = 0x57544D54 // "WTMT"
	metaBytes = 4 + 8 + 8 + 8 + 4 + 8 + 4
)

type metaState struct {
	gen       uint64 // checkpoint generation
	seq       uint64 // KV sequence high-water mark at checkpoint
	journalID uint64
	root      fileExtent
}

func (m *metaState) encode() []byte {
	b := make([]byte, metaBytes)
	binary.LittleEndian.PutUint32(b[0:], metaMagic)
	binary.LittleEndian.PutUint64(b[4:], m.gen)
	binary.LittleEndian.PutUint64(b[12:], m.seq)
	binary.LittleEndian.PutUint64(b[20:], uint64(m.root.start))
	binary.LittleEndian.PutUint32(b[28:], uint32(m.root.pages))
	binary.LittleEndian.PutUint64(b[32:], m.journalID)
	binary.LittleEndian.PutUint32(b[40:], crc32.ChecksumIEEE(b[:40]))
	return b
}

func decodeMeta(b []byte) (*metaState, error) {
	if len(b) < metaBytes {
		return nil, fmt.Errorf("btree: metadata too short")
	}
	if binary.LittleEndian.Uint32(b[0:]) != metaMagic {
		return nil, fmt.Errorf("btree: bad metadata magic")
	}
	if crc32.ChecksumIEEE(b[:40]) != binary.LittleEndian.Uint32(b[40:]) {
		return nil, fmt.Errorf("btree: metadata CRC mismatch")
	}
	return &metaState{
		gen:       binary.LittleEndian.Uint64(b[4:]),
		seq:       binary.LittleEndian.Uint64(b[12:]),
		journalID: binary.LittleEndian.Uint64(b[32:]),
		root: fileExtent{
			start: int64(binary.LittleEndian.Uint64(b[20:])),
			pages: int64(binary.LittleEndian.Uint32(b[28:])),
		},
	}, nil
}

// writeMeta persists the checkpoint metadata into the older slot.
func (t *Tree) writeMeta(now sim.Duration) (sim.Duration, error) {
	root := t.pages[t.root]
	if root.disk.pages == 0 {
		// A root that was never written (e.g. an empty tree checkpoint);
		// nothing durable to point at yet.
		return now, nil
	}
	t.metaGen++
	st := metaState{gen: t.metaGen, seq: t.seq, journalID: t.journalID, root: root.disk}
	name := metaA
	if t.metaGen%2 == 0 {
		name = metaB
	}
	f, err := t.fs.Open(name)
	if err != nil {
		if f, err = t.fs.Create(name); err != nil {
			return now, err
		}
		if err := f.Grow(1); err != nil {
			return now, err
		}
	}
	var data []byte
	if t.cfg.Content {
		data = make([]byte, t.fs.PageSize())
		copy(data, st.encode())
	}
	return f.WriteAt(now, 0, 1, data)
}

// readMeta loads the newest valid checkpoint metadata, or nil.
func readMeta(fs *extfs.FS, now sim.Duration) (*metaState, sim.Duration, error) {
	var best *metaState
	for _, name := range []string{metaA, metaB} {
		f, err := fs.Open(name)
		if err != nil {
			continue
		}
		buf := make([]byte, f.SizePages()*int64(fs.PageSize()))
		now, err = f.ReadAt(now, 0, int(f.SizePages()), buf)
		if err != nil {
			return nil, now, err
		}
		st, err := decodeMeta(buf)
		if err != nil {
			continue
		}
		if best == nil || st.gen > best.gen {
			best = st
		}
	}
	return best, now, nil
}

// Recover reopens a B+Tree from its on-device state: the newest
// checkpoint metadata locates the root, the tree is parsed top-down, and
// surviving journal records are replayed on top (sequence-guarded, so a
// replay never regresses a newer on-disk value). It requires content
// mode. The returned time includes all recovery I/O.
func Recover(fs *extfs.FS, cfg Config, now sim.Duration) (*Tree, sim.Duration, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, now, err
	}
	if !cfg.Content {
		return nil, now, fmt.Errorf("btree: Recover requires content mode")
	}
	st, now, err := readMeta(fs, now)
	if err != nil {
		return nil, now, err
	}
	if st == nil {
		return nil, now, fmt.Errorf("btree: no valid checkpoint metadata found")
	}
	f, err := fs.Open("collection.wt")
	if err != nil {
		return nil, now, fmt.Errorf("btree: collection file missing: %w", err)
	}
	t := &Tree{
		cfg:       cfg,
		fs:        fs,
		file:      f,
		bm:        newBlockManager(f, int64(cfg.LeafPageBytes/fs.PageSize())*16),
		pages:     make([]*page, 1, 64), // index 0 is nilPage
		ckptW:     sim.NewWorker("btree-checkpoint"),
		seq:       st.seq,
		journalID: st.journalID,
		metaGen:   st.gen,
	}
	// Rebuild the tree from the root. Extents seen during the walk are
	// live; everything else inside the file is free space.
	used := []fileExtent{}
	rootID, done, err := t.loadSubtree(now, st.root, nilPage, &used)
	if err != nil {
		return nil, now, err
	}
	now = done
	t.root = rootID
	t.rebuildFreeList(used)
	t.rebuildLeafChain()
	if root := t.pages[t.root]; root.leaf {
		t.admit(root)
	}
	// Replay journals, newest records win; guard on per-key sequence so
	// flushed updates are not regressed.
	var records []wal.Record
	var segments []string
	for _, name := range fs.List() {
		if !strings.HasPrefix(name, "journal-") {
			continue
		}
		segments = append(segments, name)
		done, err := wal.Replay(fs, name, now, func(r wal.Record) {
			records = append(records, r)
		})
		if err != nil {
			return nil, now, err
		}
		now = done
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	for i := range records {
		r := &records[i]
		if err := t.applyRecovered(r); err != nil {
			return nil, now, err
		}
		if r.Seq > t.seq {
			t.seq = r.Seq
		}
	}
	// Fresh journal; make the replayed state durable, then retire stale
	// segments.
	if !cfg.DisableJournal {
		w, err := wal.Create(fs, t.journalName(), cfg.Content)
		if err != nil {
			return nil, now, err
		}
		t.journal = w
	}
	if end, err := t.FlushAll(now); err != nil {
		return nil, now, err
	} else if end > now {
		now = end
	}
	for _, name := range segments {
		if t.journal != nil && name == t.journal.Name() {
			continue
		}
		if t.poolTracks(name) {
			continue
		}
		if err := fs.Remove(name); err != nil {
			return nil, now, err
		}
	}
	return t, now, nil
}

func (t *Tree) poolTracks(name string) bool {
	for _, w := range t.journalPool {
		if w.Name() == name {
			return true
		}
	}
	return false
}

// loadSubtree reads and parses the page at ext, recursing into children,
// and returns the assigned in-memory page id.
func (t *Tree) loadSubtree(now sim.Duration, ext fileExtent, parent pageID, used *[]fileExtent) (pageID, sim.Duration, error) {
	if ext.pages <= 0 {
		return nilPage, now, fmt.Errorf("btree: empty extent in tree walk")
	}
	buf := make([]byte, int(ext.pages)*t.fs.PageSize())
	now, err := t.file.ReadAt(now, ext.start, int(ext.pages), buf)
	if err != nil {
		return nilPage, now, err
	}
	p, ok := parsePage(buf)
	if !ok {
		return nilPage, now, fmt.Errorf("btree: corrupt page at extent %d+%d", ext.start, ext.pages)
	}
	t.nextID++
	p.id = t.nextID
	p.parent = parent
	p.disk = ext
	p.everOnDisk = true
	if p.leaf {
		var sz int
		for i := range p.entries {
			sz += p.entries[i].bytes()
		}
		p.serialized = pageHeaderBytes + sz
	} else {
		p.recomputeSerialized()
	}
	t.registerPage(p)
	*used = append(*used, ext)
	if !p.leaf {
		for i, ce := range p.childExtents {
			childID, done, err := t.loadSubtree(now, ce, p.id, used)
			if err != nil {
				return nilPage, now, err
			}
			now = done
			p.children[i] = childID
		}
		p.childExtents = nil
	}
	return p.id, now, nil
}

// rebuildFreeList reconstructs the block manager's free list as the
// complement of the extents the tree references.
func (t *Tree) rebuildFreeList(used []fileExtent) {
	sort.Slice(used, func(i, j int) bool { return used[i].start < used[j].start })
	var cursor int64
	for _, e := range used {
		if e.start > cursor {
			t.bm.release(fileExtent{start: cursor, pages: e.start - cursor})
		}
		if end := e.start + e.pages; end > cursor {
			cursor = end
		}
	}
	if total := t.file.SizePages(); total > cursor {
		t.bm.release(fileExtent{start: cursor, pages: total - cursor})
	}
}

// rebuildLeafChain links leaves left-to-right by walking the tree in
// order.
func (t *Tree) rebuildLeafChain() {
	var prev *page
	var walk func(id pageID)
	walk = func(id pageID) {
		p := t.pages[id]
		if p.leaf {
			if prev != nil {
				prev.next = p.id
			}
			prev = p
			return
		}
		for _, c := range p.children {
			walk(c)
		}
	}
	walk(t.root)
}

// applyRecovered replays one journal record through the insert path
// (without journaling, CPU costs or eviction), guarded by sequence so
// stale records never overwrite newer on-disk state.
func (t *Tree) applyRecovered(r *wal.Record) error {
	leaf := t.descend(r.Key)
	i := leaf.search(r.Key)
	if i < len(leaf.entries) && bytes.Equal(leaf.entries[i].key, r.Key) && leaf.entries[i].seq >= r.Seq {
		return nil // on-disk state is as new or newer
	}
	vlen := r.ValueLen
	if r.Value != nil {
		vlen = len(r.Value)
	}
	delta := leaf.insertLeaf(r.Key, r.Value, vlen, r.Seq, r.Deleted)
	if leaf.resident {
		t.residentBytes += int64(delta)
	}
	t.markDirty(leaf)
	if leaf.serialized > t.cfg.LeafPageBytes {
		t.splitLeaf(leaf)
	}
	return nil
}
