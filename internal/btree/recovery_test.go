package btree

import (
	"bytes"
	"testing"
	"time"

	"ptsbench/internal/cowtree"
	"ptsbench/internal/extfs"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// recoveryEnv builds a content-mode tree with synced journaling.
func recoveryEnv(t *testing.T, tweak func(*Config)) (*Tree, *extfs.FS) {
	t.Helper()
	tr, _, fs := testEnv(t, 32, true, func(c *Config) {
		c.JournalSync = true
		if tweak != nil {
			tweak(c)
		}
	})
	return tr, fs
}

func TestBTreeRecoverAfterCleanClose(t *testing.T) {
	tr, fs := recoveryEnv(t, func(c *Config) { c.LeafPageBytes = 2 << 10 })
	var now sim.Duration
	var err error
	want := map[uint64][]byte{}
	for id := uint64(0); id < 400; id++ {
		v := []byte{byte(id), byte(id >> 8)}
		want[id] = v
		now, err = tr.Put(now, kv.EncodeKey(id), v, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Close(now); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rnow == 0 {
		t.Fatal("recovery should charge I/O time")
	}
	for id, v := range want {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found {
			t.Fatalf("key %d lost after recovery: %v %v", id, found, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("key %d value corrupted: %v vs %v", id, got, v)
		}
	}
	// Structure survived: multi-level tree, working scans.
	if re.Depth() < 2 {
		t.Fatalf("recovered depth %d, want >= 2", re.Depth())
	}
	_, scanned, err := re.Scan(rnow, kv.EncodeKey(100), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(scanned) != 50 {
		t.Fatalf("recovered scan returned %d entries", len(scanned))
	}
	for i, e := range scanned {
		if id, _ := kv.DecodeKey(e.Key); id != uint64(100+i) {
			t.Fatalf("recovered scan out of order at %d", i)
		}
	}
}

func TestBTreeRecoverAfterCrash(t *testing.T) {
	// Updates after the last checkpoint live only in the journal.
	tr, fs := recoveryEnv(t, func(c *Config) { c.LeafPageBytes = 2 << 10 })
	var now sim.Duration
	var err error
	for id := uint64(0); id < 200; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{1}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = tr.FlushAll(now) // checkpoint generation 1
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite a subset and delete another subset, then "crash" (no
	// checkpoint, no close).
	for id := uint64(0); id < 50; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{2}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	for id := uint64(50); id < 80; id++ {
		now, err = tr.Delete(now, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
	}
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 200; id++ {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case id < 50:
			if !found || got[0] != 2 {
				t.Fatalf("key %d: want post-crash value 2, got %v found=%v", id, got, found)
			}
		case id < 80:
			if found {
				t.Fatalf("key %d: deleted before crash but visible", id)
			}
		default:
			if !found || got[0] != 1 {
				t.Fatalf("key %d: want original value 1, got %v found=%v", id, got, found)
			}
		}
	}
}

func TestBTreeRecoveredTreeAcceptsWrites(t *testing.T) {
	tr, fs := recoveryEnv(t, nil)
	now, err := tr.Put(0, kv.EncodeKey(1), []byte("a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Close(now); err != nil {
		t.Fatal(err)
	}
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	rnow, err = re.Put(rnow, kv.EncodeKey(2), []byte("b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.FlushAll(rnow); err != nil {
		t.Fatal(err)
	}
	for id, want := range map[uint64]string{1: "a", 2: "b"} {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found || string(got) != want {
			t.Fatalf("key %d: %q %v %v", id, got, found, err)
		}
	}
}

func TestBTreeRecoverRequiresContentMode(t *testing.T) {
	_, _, fs := testEnv(t, 16, false, nil)
	cfg := NewConfig(8 << 20)
	if _, _, err := Recover(fs, cfg, 0); err == nil {
		t.Fatal("recovery without content mode should fail")
	}
}

// TestBTreeRecoverWithoutMetaBootstraps: a crash before the first
// checkpoint leaves both meta slots empty. Recovery must not wedge the
// tree — it bootstraps an empty root, replays whatever journal
// survived, and commits a first real checkpoint so the next crash is
// ordinary.
func TestBTreeRecoverWithoutMetaBootstraps(t *testing.T) {
	_, _, fs := testEnv(t, 16, true, nil)
	cfg := NewConfig(8 << 20)
	cfg.Content = true
	tr, now, err := Recover(fs, cfg, 0)
	if err != nil {
		t.Fatalf("bootstrap recovery: %v", err)
	}
	if _, _, found, err := tr.Get(now+1, kv.EncodeKey(1)); err != nil || found {
		t.Fatalf("bootstrapped tree should be empty: found=%v err=%v", found, err)
	}
	if _, err := tr.Put(now+2, kv.EncodeKey(1), []byte("a"), 1); err != nil {
		t.Fatalf("put on bootstrapped tree: %v", err)
	}
	if _, got, found, err := tr.Get(now+3, kv.EncodeKey(1)); err != nil || !found || string(got) != "a" {
		t.Fatalf("key 1 after bootstrap put: %q %v %v", got, found, err)
	}
}

// TestBTreeRecoverSingleLeafUpdateBetweenCheckpoints is the regression
// test for the checkpoint ancestor-closure bug: an update that dirties
// only one leaf must survive checkpoint + crash + recovery. Before the
// fix, the checkpoint rewrote the leaf but committed metadata pointing
// at the unchanged old root image — whose child references still named
// the leaf's old extent — while recycling the journal that held the
// update.
func TestBTreeRecoverSingleLeafUpdateBetweenCheckpoints(t *testing.T) {
	tr, fs := recoveryEnv(t, func(c *Config) { c.LeafPageBytes = 2 << 10 })
	var now sim.Duration
	var err error
	for id := uint64(0); id < 500; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{1}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = tr.FlushAll(now) // checkpoint 1
	if err != nil {
		t.Fatal(err)
	}
	now, err = tr.Put(now, kv.EncodeKey(42), []byte{2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	now, err = tr.FlushAll(now) // checkpoint 2 covers the update
	if err != nil {
		t.Fatal(err)
	}
	_ = now
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, got, found, err := re.Get(rnow, kv.EncodeKey(42))
	if err != nil || !found || got[0] != 2 {
		t.Fatalf("key 42 recovered %v found=%v err=%v, want generation 2", got, found, err)
	}
}

// TestBTreeRecoverAfterMidCheckpointSplits is the regression test for
// the checkpoint/split race: with a tiny checkpoint interval and a
// 1-page I/O chunk, foreground splits constantly overlap in-flight
// checkpoints. Before the fix, an in-job internal page serialized after
// a concurrent split embedded a zero extent for the split's brand-new
// child, so Recover failed with "empty extent in tree walk".
func TestBTreeRecoverAfterMidCheckpointSplits(t *testing.T) {
	tr, fs := recoveryEnv(t, func(c *Config) {
		c.LeafPageBytes = 2 << 10
		c.CheckpointInterval = 2 * time.Millisecond
		c.ChunkPages = 1
	})
	var now sim.Duration
	var err error
	for id := uint64(0); id < 6000; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{byte(id)}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	now = tr.Quiesce(now)
	_ = now
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 6000; id += 101 {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found || got[0] != byte(id) {
			t.Fatalf("key %d: %v found=%v err=%v", id, got, found, err)
		}
	}
}

// TestBTreeRecoverAfterMidCheckpointRootGrowth pins the commit-path fix
// for root growth during an in-flight checkpoint (see the betree twin
// for the full mechanism): the test asserts the race actually occurred
// (white-box: the root id changed while a checkpoint job was queued),
// then crash-recovers and verifies every key.
func TestBTreeRecoverAfterMidCheckpointRootGrowth(t *testing.T) {
	tr, fs := recoveryEnv(t, func(c *Config) {
		c.LeafPageBytes = 1 << 10
		c.InternalPageBytes = 512
		c.CheckpointInterval = time.Hour // only the manual checkpoint below
		c.ChunkPages = 1
	})
	var now sim.Duration
	var err error
	// Some initial data, then start a checkpoint WITHOUT stepping it —
	// deterministic in-flight state.
	var id uint64
	for ; id < 50; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{byte(id)}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	// The job snapshots the dirty set and rotates the journal now; it is
	// submitted only after the root has grown, so the commit provably
	// runs against a root the snapshot has never seen (submitting first
	// would let the foreground Pump drain the job before the growth).
	job, err := tr.core.NewCheckpointJob()
	if err != nil || job == nil {
		t.Fatalf("no checkpoint job: %v", err)
	}
	// Grow the root while the checkpoint is logically in flight.
	rootBefore := tr.root
	for tr.root == rootBefore {
		if id > 100000 {
			t.Fatal("root never grew; tighten the config")
		}
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{byte(id)}, 0)
		if err != nil {
			t.Fatal(err)
		}
		id++
	}
	total := id
	tr.core.Worker().Submit(job)
	now = tr.Quiesce(now) // the racy checkpoint commits here
	_ = now
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < total; id += 23 {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found || got[0] != byte(id) {
			t.Fatalf("key %d: %v found=%v err=%v", id, got, found, err)
		}
	}
}

func TestMetaEncodeDecode(t *testing.T) {
	st := cowtree.Meta{Gen: 7, Seq: 1234, JournalID: 3, Root: fileExtent{Start: 99, Pages: 4}}
	got, err := cowtree.DecodeMeta(cowtree.EncodeMeta(&st, metaMagic), metaMagic, "btree")
	if err != nil {
		t.Fatal(err)
	}
	if *got != st {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, st)
	}
	enc := cowtree.EncodeMeta(&st, metaMagic)
	enc[5] ^= 0xFF
	if _, err := cowtree.DecodeMeta(enc, metaMagic, "btree"); err == nil {
		t.Fatal("corrupted metadata should fail")
	}
	if _, err := cowtree.DecodeMeta([]byte{1}, metaMagic, "btree"); err == nil {
		t.Fatal("short metadata should fail")
	}
}

func TestBTreeRecoverUnderEvictionChurn(t *testing.T) {
	// Heavy eviction between checkpoints relocates leaves; the deferred
	// extent release must keep the last checkpoint readable.
	tr, fs := recoveryEnv(t, func(c *Config) {
		c.LeafPageBytes = 2 << 10
		c.CacheBytes = 32 << 10
	})
	var now sim.Duration
	var err error
	rng := sim.NewRNG(8)
	for id := uint64(0); id < 500; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{byte(id)}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = tr.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	// Churn: random overwrites cause evictions and relocations but NO
	// new checkpoint (short virtual time, small pending backlog).
	for i := 0; i < 400; i++ {
		id := rng.Uint64n(500)
		now, err = tr.Put(now, kv.EncodeKey(id), []byte{byte(id), 9}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	re, rnow, err := Recover(fs, tr.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every key readable; values are either the checkpointed or the
	// journal-replayed version, and the journal version must win where
	// it exists.
	for id := uint64(0); id < 500; id++ {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil || !found {
			t.Fatalf("key %d lost: %v %v", id, found, err)
		}
		if len(got) == 2 && (got[0] != byte(id) || got[1] != 9) {
			t.Fatalf("key %d journal version corrupted", id)
		}
		if len(got) == 1 && got[0] != byte(id) {
			t.Fatalf("key %d checkpoint version corrupted", id)
		}
	}
}
