package btree

import (
	"testing"

	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

func TestScanAcrossLeaves(t *testing.T) {
	tr, dev, _ := testEnv(t, 32, false, func(c *Config) {
		c.LeafPageBytes = 1 << 10 // many small leaves
		c.CacheBytes = 16 << 10   // tiny cache: scans must re-read leaves
	})
	var now sim.Duration
	var err error
	for id := uint64(0); id < 1000; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id*3), nil, 16)
		if err != nil {
			t.Fatal(err)
		}
	}
	readsBefore := dev.Counters().ReadOps
	done, got, err := tr.Scan(now, kv.EncodeKey(150), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("scan returned %d entries, want 200", len(got))
	}
	for i, e := range got {
		id, err := kv.DecodeKey(e.Key)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(150 + i*3)
		if id != want {
			t.Fatalf("entry %d: key %d, want %d", i, id, want)
		}
	}
	if dev.Counters().ReadOps == readsBefore {
		t.Fatal("scan should charge leaf reads with a cold cache")
	}
	if done < now {
		t.Fatal("scan time went backwards")
	}
}

func TestScanSkipsTombstonesAndRespectsStart(t *testing.T) {
	tr, _, _ := testEnv(t, 16, false, nil)
	var now sim.Duration
	var err error
	for id := uint64(0); id < 30; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), nil, 16)
		if err != nil {
			t.Fatal(err)
		}
	}
	for id := uint64(10); id < 20; id++ {
		now, err = tr.Delete(now, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
	}
	_, got, err := tr.Scan(now, kv.EncodeKey(5), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Keys 5..9 and 20..29 => 15 entries.
	if len(got) != 15 {
		t.Fatalf("scan returned %d entries, want 15", len(got))
	}
	if id, _ := kv.DecodeKey(got[0].Key); id != 5 {
		t.Fatalf("first key %d, want 5", id)
	}
	if id, _ := kv.DecodeKey(got[5].Key); id != 20 {
		t.Fatalf("sixth key %d, want 20 (tombstone range skipped)", id)
	}
}

func TestScanLimitAndEnd(t *testing.T) {
	tr, _, _ := testEnv(t, 16, false, nil)
	var now sim.Duration
	var err error
	for id := uint64(0); id < 10; id++ {
		now, err = tr.Put(now, kv.EncodeKey(id), nil, 8)
		if err != nil {
			t.Fatal(err)
		}
	}
	_, got, err := tr.Scan(now, kv.EncodeKey(7), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("tail scan returned %d, want 3", len(got))
	}
	_, got, err = tr.Scan(now, kv.EncodeKey(0), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("limited scan returned %d, want 4", len(got))
	}
}

func TestLeafChainComplete(t *testing.T) {
	tr, _, _ := testEnv(t, 32, false, func(c *Config) {
		c.LeafPageBytes = 1 << 10
	})
	var now sim.Duration
	var err error
	rng := sim.NewRNG(6)
	inserted := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		id := rng.Uint64n(5000)
		inserted[id] = true
		now, err = tr.Put(now, kv.EncodeKey(id), nil, 16)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Walking the leaf chain must visit every key exactly once, sorted.
	_, got, err := tr.Scan(now, kv.EncodeKey(0), len(inserted)+10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(inserted) {
		t.Fatalf("chain walk found %d keys, want %d", len(got), len(inserted))
	}
	var prev uint64
	for i, e := range got {
		id, _ := kv.DecodeKey(e.Key)
		if i > 0 && id <= prev {
			t.Fatalf("chain out of order at %d: %d after %d", i, id, prev)
		}
		if !inserted[id] {
			t.Fatalf("phantom key %d", id)
		}
		prev = id
	}
}
