package core

import (
	"math"
	"testing"
	"time"

	"ptsbench/internal/sim"
	"ptsbench/internal/workload"
)

func TestSampleMetrics(t *testing.T) {
	s := Sample{
		UserBytes:  1000,
		HostWriteB: 12000,
		HostPages:  100,
		FlashPages: 210,
	}
	if got := s.WAA(); got != 12.0 {
		t.Fatalf("WAA = %v, want 12", got)
	}
	if got := s.WAD(); got != 2.1 {
		t.Fatalf("WAD = %v, want 2.1", got)
	}
	if got := s.EndToEndWA(); math.Abs(got-25.2) > 1e-9 {
		t.Fatalf("EndToEndWA = %v, want 25.2", got)
	}
	var zero Sample
	if zero.WAA() != 0 || zero.WAD() != 1 {
		t.Fatal("zero sample defaults wrong")
	}
}

func mkSeries(n int, opsRate float64) Series {
	var ser Series
	for i := 0; i <= n; i++ {
		ser.Samples = append(ser.Samples, Sample{
			T:          time.Duration(i) * 10 * time.Second,
			Ops:        int64(float64(i) * 10 * opsRate),
			HostWriteB: int64(i) * 1000,
		})
	}
	return ser
}

func TestSeriesWindow(t *testing.T) {
	ser := mkSeries(10, 500) // 500 ops/s
	ops, wr, rd := ser.Window(1)
	if math.Abs(ops-500) > 1 {
		t.Fatalf("ops rate %v, want 500", ops)
	}
	if wr <= 0 || rd != 0 {
		t.Fatalf("rates: %v %v", wr, rd)
	}
	// Out-of-range windows are zero.
	if o, _, _ := ser.Window(0); o != 0 {
		t.Fatal("window 0 should be zero")
	}
	if o, _, _ := ser.Window(len(ser.Samples)); o != 0 {
		t.Fatal("window past end should be zero")
	}
}

func TestThroughputSeries(t *testing.T) {
	ser := mkSeries(120, 1000)
	tm, kops := ser.ThroughputSeries(60)
	if len(tm) != 2 {
		t.Fatalf("expected 2 windows, got %d", len(tm))
	}
	if math.Abs(kops[0]-1.0) > 0.01 {
		t.Fatalf("kops = %v, want 1.0", kops[0])
	}
	if math.Abs(tm[0]-10.0) > 0.01 {
		t.Fatalf("time = %v min, want 10", tm[0])
	}
}

func TestTailStats(t *testing.T) {
	ser := mkSeries(100, 200)
	ser.Samples[50].DiskUsedBytes = 999 // peak in the middle
	st := ser.TailStats(0.25)
	if math.Abs(st.ThroughputKOps-0.2) > 0.01 {
		t.Fatalf("tail throughput %v, want 0.2", st.ThroughputKOps)
	}
	if st.DiskUsedBytes != 999 {
		t.Fatalf("max disk usage %d, want 999", st.DiskUsedBytes)
	}
	if (Series{}).TailStats(0.5) != (SteadyStats{}) {
		t.Fatal("empty series should give zero stats")
	}
}

func TestCUSUMDetectsShift(t *testing.T) {
	det := NewCUSUM(10, 0.5, 3)
	for i := 0; i < 20; i++ {
		if det.Add(10 + 0.2*float64(i%2)) {
			t.Fatalf("false alarm at stable step %d", i)
		}
	}
	fired := false
	for i := 0; i < 10; i++ {
		if det.Add(13) { // sustained +3 shift
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("CUSUM missed a sustained upward shift")
	}
	det.Reset(13)
	if det.Add(13) {
		t.Fatal("reset detector should not fire immediately")
	}
}

func TestCUSUMDetectsDownwardShift(t *testing.T) {
	det := NewCUSUM(10, 0.5, 3)
	fired := false
	for i := 0; i < 10; i++ {
		if det.Add(6) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("CUSUM missed a downward shift")
	}
}

func TestSteadyStateIndex(t *testing.T) {
	// Decaying series that flattens at index ~10.
	var vals []float64
	for i := 0; i < 10; i++ {
		vals = append(vals, 20-float64(i))
	}
	for i := 0; i < 30; i++ {
		vals = append(vals, 10+0.1*float64(i%3))
	}
	idx := SteadyStateIndex(vals, 0.05, 1.0)
	if idx < 5 || idx > 15 {
		t.Fatalf("steady index %d, want near 10", idx)
	}
	// A series that never settles returns -1.
	var ramp []float64
	for i := 0; i < 40; i++ {
		ramp = append(ramp, float64(i*i))
	}
	if got := SteadyStateIndex(ramp, 0.01, 0.1); got != -1 {
		t.Fatalf("ramp should never settle, got %d", got)
	}
	if got := SteadyStateIndex([]float64{1, 2}, 0.05, 1); got != -1 {
		t.Fatal("short series should return -1")
	}
}

func TestSteadyByCapacityRule(t *testing.T) {
	var ser Series
	for i := 0; i <= 10; i++ {
		ser.Samples = append(ser.Samples, Sample{HostWriteB: int64(i) * 100})
	}
	// 3x a 200-byte capacity = 600 bytes, first reached at index 6.
	if got := SteadyByCapacityRule(ser, 200); got != 6 {
		t.Fatalf("capacity rule index %d, want 6", got)
	}
	if got := SteadyByCapacityRule(ser, 10000); got != -1 {
		t.Fatal("unreachable capacity should return -1")
	}
}

func TestSpaceAmplification(t *testing.T) {
	if got := SpaceAmplification(150, 100); got != 1.5 {
		t.Fatalf("space amp %v", got)
	}
	if got := SpaceAmplification(1, 0); got != 0 {
		t.Fatal("zero dataset should not divide")
	}
}

func TestSpecValidateDefaults(t *testing.T) {
	s, err := (Spec{}).Validate()
	if err != nil {
		t.Fatal(err)
	}
	if s.Scale != 128 || s.ValueBytes != 4000 || s.DatasetFraction != 0.5 {
		t.Fatalf("defaults wrong: %+v", s)
	}
	if s.Duration != 210*time.Minute || s.PartitionFraction != 1 {
		t.Fatalf("duration/partition defaults wrong: %+v", s)
	}
	if _, err := (Spec{DatasetFraction: 0.99}).Validate(); err == nil {
		t.Fatal("oversized dataset fraction should fail")
	}
}

// TestRunSmallLSM is the integration test: a small, short experiment end
// to end.
func TestRunSmallLSM(t *testing.T) {
	res, err := Run(Spec{
		Engine:   LSM,
		Scale:    1024,
		Duration: 30 * time.Minute,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutOfSpace {
		t.Fatal("unexpected OOS")
	}
	if res.NumKeys == 0 || res.DatasetBytes == 0 {
		t.Fatal("dataset not sized")
	}
	if len(res.Series.Samples) < 10 {
		t.Fatalf("too few samples: %d", len(res.Series.Samples))
	}
	if res.Steady.ThroughputKOps <= 0 {
		t.Fatal("no throughput measured")
	}
	if res.Steady.WAA < 1 {
		t.Fatalf("WA-A %v below 1", res.Steady.WAA)
	}
	if res.Steady.WAD < 1 {
		t.Fatalf("WA-D %v below 1", res.Steady.WAD)
	}
	if res.SpaceAmp < 1 {
		t.Fatalf("space amp %v below 1", res.SpaceAmp)
	}
	if res.ScaledKOps <= res.Steady.ThroughputKOps {
		t.Fatal("scaled throughput should exceed raw at scale > 1")
	}
	if res.FracLBAs <= 0 || res.FracLBAs > 1 {
		t.Fatalf("FracLBAs %v out of range", res.FracLBAs)
	}
	if len(res.LBACDF) != 101 {
		t.Fatalf("CDF length %d", len(res.LBACDF))
	}
}

func TestRunSmallBTree(t *testing.T) {
	res, err := Run(Spec{
		Engine:   BTree,
		Scale:    1024,
		Duration: 30 * time.Minute,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutOfSpace {
		t.Fatal("unexpected OOS")
	}
	if res.Steady.ThroughputKOps <= 0 || res.Steady.WAA < 1 {
		t.Fatalf("implausible steady stats: %+v", res.Steady)
	}
	// The B+Tree must stay inside a confined LBA range (Fig 4).
	if res.FracLBAs > 0.9 {
		t.Fatalf("B+Tree wrote %.2f of LBAs, expected confined", res.FracLBAs)
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(Spec{
			Engine:   LSM,
			Scale:    2048,
			Duration: 20 * time.Minute,
			Seed:     3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steady != b.Steady {
		t.Fatalf("steady stats differ: %+v vs %+v", a.Steady, b.Steady)
	}
	if len(a.Series.Samples) != len(b.Series.Samples) {
		t.Fatal("sample counts differ")
	}
	for i := range a.Series.Samples {
		if a.Series.Samples[i] != b.Series.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestRunPreconditionedSlower(t *testing.T) {
	// Pitfall #3 at the runner level: preconditioning must not speed
	// things up, and for the B+Tree it must visibly hurt.
	base := Spec{Engine: BTree, Scale: 1024, Duration: 40 * time.Minute, Seed: 5}
	trimmed, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	prec := base
	prec.Initial = Preconditioned
	precRes, err := Run(prec)
	if err != nil {
		t.Fatal(err)
	}
	if precRes.Steady.WAD <= trimmed.Steady.WAD {
		t.Fatalf("preconditioned WA-D (%v) should exceed trimmed (%v)",
			precRes.Steady.WAD, trimmed.Steady.WAD)
	}
}

func TestRunSoftwareOP(t *testing.T) {
	// Pitfall #6: extra OP lowers WA-D for the LSM on a preconditioned
	// partition.
	base := Spec{Engine: LSM, Scale: 1024, Duration: 40 * time.Minute, Seed: 5,
		Initial: Preconditioned}
	noOP, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withOP := base
	withOP.PartitionFraction = 0.75
	opRes, err := Run(withOP)
	if err != nil {
		t.Fatal(err)
	}
	if opRes.Steady.WAD >= noOP.Steady.WAD {
		t.Fatalf("extra OP should reduce WA-D: %v vs %v",
			opRes.Steady.WAD, noOP.Steady.WAD)
	}
}

func TestRunOutOfSpace(t *testing.T) {
	// The paper's Fig 5/6: RocksDB cannot sustain the largest datasets
	// (space amplification ~1.4 at 0.88 x capacity exceeds the drive).
	// The full 210-minute run must hit ENOSPC.
	res, err := Run(Spec{
		Engine:          LSM,
		Scale:           1024,
		DatasetFraction: 0.88,
		Duration:        210 * time.Minute,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutOfSpace {
		t.Fatal("LSM at 0.88 dataset fraction should run out of space")
	}
}

func TestRunMixedWorkload(t *testing.T) {
	res, err := Run(Spec{
		Engine:       LSM,
		Scale:        1024,
		ReadFraction: 0.5,
		Dist:         workload.Uniform,
		Duration:     20 * time.Minute,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Series.Samples[len(res.Series.Samples)-1]
	if last.Reads == 0 {
		t.Fatal("mixed workload produced no reads")
	}
	frac := float64(last.Reads) / float64(last.Ops)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("read fraction %.2f, want ~0.5", frac)
	}
}

func TestCollectorBaselinesExcludeLoad(t *testing.T) {
	// The first sample of a run must be ~zero even though the load
	// phase wrote a lot.
	res, err := Run(Spec{
		Engine:   BTree,
		Scale:    2048,
		Duration: 20 * time.Minute,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Series.Samples[0]
	if first.Ops != 0 || first.HostWriteB != 0 || first.FlashPages != 0 {
		t.Fatalf("first sample not zeroed: %+v", first)
	}
	if res.LoadHostBytes == 0 {
		t.Fatal("load diagnostics missing")
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(90 * time.Minute); got != "1.5h" {
		t.Fatalf("FormatDuration = %q", got)
	}
	if got := FormatDuration(5 * time.Minute); got != "5m" {
		t.Fatalf("FormatDuration = %q", got)
	}
}

var _ = sim.Duration(0)

func TestLatencyHistogramBasics(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Percentile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should read zero")
	}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != time.Microsecond || h.Max() != time.Millisecond {
		t.Fatalf("min/max: %v/%v", h.Min(), h.Max())
	}
	// Log-bucket resolution is ~4%; allow 10% slack.
	p50 := h.Percentile(0.50)
	if p50 < 440*time.Microsecond || p50 > 560*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500µs", p50)
	}
	p99 := h.Percentile(0.99)
	if p99 < 890*time.Microsecond || p99 > 1100*time.Microsecond {
		t.Fatalf("p99 = %v, want ~990µs", p99)
	}
	mean := h.Mean()
	if mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Fatalf("mean = %v, want ~500µs", mean)
	}
	if h.Percentile(0) != h.Min() || h.Percentile(1) != h.Max() {
		t.Fatal("percentile extremes should clamp to min/max")
	}
}

func TestLatencyHistogramTail(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 9900; i++ {
		h.Record(100 * time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		h.Record(50 * time.Millisecond) // 1% slow tail
	}
	s := h.Percentiles()
	if s.P50 > 150*time.Microsecond {
		t.Fatalf("p50 = %v, want ~100µs", s.P50)
	}
	if s.P999 < 40*time.Millisecond {
		t.Fatalf("p99.9 = %v should capture the tail", s.P999)
	}
	if s.String() == "" {
		t.Fatal("summary should render")
	}
}

func TestLatencyHistogramMerge(t *testing.T) {
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	a.Record(time.Millisecond)
	b.Record(time.Second)
	b.Record(time.Microsecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count %d", a.Count())
	}
	if a.Min() != time.Microsecond || a.Max() != time.Second {
		t.Fatalf("merged extremes %v/%v", a.Min(), a.Max())
	}
}

func TestLatencyHistogramBoundsClamp(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(-time.Second)    // clamps to 0
	h.Record(100 * time.Hour) // clamps to top bucket
	h.Record(time.Nanosecond) // below min bucket
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Percentile(0.99) <= 0 {
		t.Fatal("clamped values should still report")
	}
}

func TestRunReportsLatency(t *testing.T) {
	res, err := Run(Spec{
		Engine:   LSM,
		Scale:    2048,
		Duration: 15 * time.Minute,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count == 0 {
		t.Fatal("no latencies recorded")
	}
	if res.Latency.P50 <= 0 || res.Latency.P99 < res.Latency.P50 {
		t.Fatalf("implausible latency summary: %v", res.Latency)
	}
	// The paper-scale mean must be consistent with throughput: mean
	// per-op time ~ 1/rate for a single-threaded driver.
	meanSec := res.Latency.Mean.Seconds()
	rate := res.Steady.ThroughputKOps * 1000 * float64(res.Spec.Scale)
	if rate > 0 {
		implied := 1 / rate
		if meanSec < implied/4 || meanSec > implied*4 {
			t.Fatalf("mean latency %v inconsistent with rate %.0f ops/s", res.Latency.Mean, rate)
		}
	}
}
