package core

import (
	"errors"
	"fmt"
	"time"

	"ptsbench/internal/betree"
	"ptsbench/internal/blockdev"
	"ptsbench/internal/btree"
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/lsm"
	"ptsbench/internal/sim"
	"ptsbench/internal/workload"
)

// EngineKind selects the persistent tree structure under test.
type EngineKind int

// Engine kinds.
const (
	// LSM is the RocksDB-style log-structured merge tree.
	LSM EngineKind = iota
	// BTree is the WiredTiger-style B+Tree.
	BTree
	// Betree is the buffered copy-on-write Bε-tree.
	Betree
)

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case LSM:
		return "lsm"
	case BTree:
		return "btree"
	case Betree:
		return "betree"
	default:
		return fmt.Sprintf("engine(%d)", int(k))
	}
}

// ParseEngine maps an engine name (as produced by String) back to its
// kind.
func ParseEngine(name string) (EngineKind, error) {
	switch name {
	case "lsm":
		return LSM, nil
	case "btree":
		return BTree, nil
	case "betree":
		return Betree, nil
	default:
		return 0, fmt.Errorf("core: unknown engine %q (have lsm, btree, betree)", name)
	}
}

// InitialState is the drive state before the experiment (§3.4).
type InitialState int

// Initial states.
const (
	// Trimmed: every block discarded, factory-fresh dynamics.
	Trimmed InitialState = iota
	// Preconditioned: sequential fill plus 2× capacity random writes.
	Preconditioned
)

// String implements fmt.Stringer.
func (s InitialState) String() string {
	if s == Preconditioned {
		return "preconditioned"
	}
	return "trimmed"
}

// DeviceSpec describes the simulated SSD at full (paper) scale.
type DeviceSpec struct {
	Profile       flash.Profile
	CapacityBytes int64
	PageSize      int
	PagesPerBlock int
}

// DefaultDevice returns the paper's primary testbed: a 400 GB
// enterprise-class flash SSD (SSD1). PagesPerBlock describes the erase
// stripe (superblock) at full scale: enterprise NVMe drives erase across
// all dies at once, so the effective GC unit is hundreds of megabytes.
func DefaultDevice() DeviceSpec {
	return DeviceSpec{
		Profile:       flash.ProfileSSD1(),
		CapacityBytes: 400 << 30,
		PageSize:      4096,
		PagesPerBlock: 64 << 10, // 256 MiB erase stripes -> ~1600 per drive
	}
}

// Spec fully describes one experiment run.
type Spec struct {
	Name   string
	Device DeviceSpec

	// Scale divides capacity, bandwidths and engine sizings while
	// keeping the virtual time axis; dimensionless results are
	// invariant (see DESIGN.md).
	Scale int64

	Engine EngineKind

	// DatasetFraction sizes the dataset relative to full device
	// capacity (the paper's default is 0.5).
	DatasetFraction float64
	ValueBytes      int
	ReadFraction    float64
	Dist            workload.Dist

	Initial InitialState

	// PartitionFraction < 1 reserves the tail of the LBA space as
	// software over-provisioning (never written, stays trimmed).
	PartitionFraction float64

	// QueueDepth models host I/O concurrency in the measured phase: up
	// to QueueDepth consecutive read operations are submitted at the
	// same virtual time — a multi-threaded client keeping QueueDepth
	// requests in flight — and the clock advances to the slowest
	// completion. It also sets the engines' internal read parallelism
	// (LSM SSTable probe waves and compaction read batching, B+Tree
	// scan sibling prefetch). At the default of 1 the run is the
	// paper's strictly serial closed loop; with larger values
	// throughput grows until the device's Channels × Ways lane count
	// saturates (writes always execute serially, preserving the
	// engines' stall and throttling semantics).
	QueueDepth int

	// Duration is the measured phase length in virtual time; SampleEvery
	// is the instrumentation period.
	Duration    sim.Duration
	SampleEvery sim.Duration

	Seed uint64

	// TweakLSM / TweakBTree / TweakBetree adjust engine configs after
	// scaling.
	TweakLSM    func(*lsm.Config)
	TweakBTree  func(*btree.Config)
	TweakBetree func(*betree.Config)
}

// Validate fills defaults.
func (s Spec) Validate() (Spec, error) {
	if s.Device.CapacityBytes == 0 {
		s.Device = DefaultDevice()
	}
	if s.Scale <= 0 {
		s.Scale = 128
	}
	if s.DatasetFraction <= 0 {
		s.DatasetFraction = 0.5
	}
	if s.DatasetFraction > 0.95 {
		return s, fmt.Errorf("core: dataset fraction %v too large", s.DatasetFraction)
	}
	if s.ValueBytes <= 0 {
		s.ValueBytes = 4000
	}
	if s.PartitionFraction <= 0 || s.PartitionFraction > 1 {
		s.PartitionFraction = 1
	}
	if s.Duration <= 0 {
		s.Duration = 210 * time.Minute
	}
	if s.SampleEvery <= 0 {
		s.SampleEvery = 10 * time.Second
	}
	if s.QueueDepth < 1 {
		s.QueueDepth = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s, nil
}

// Result carries everything the figures need.
type Result struct {
	Spec         Spec
	Series       Series
	Steady       SteadyStats
	SpaceAmp     float64
	DiskUtilPct  float64 // max footprint over full device capacity
	LBACDF       []float64
	FracLBAs     float64
	OutOfSpace   bool
	LoadDuration sim.Duration
	DatasetBytes int64
	NumKeys      uint64

	// Load-phase diagnostics (before instrumentation reset).
	LoadHostBytes  int64
	LoadFlashPages int64
	LoadWAD        float64

	// ScaledKOps re-normalizes throughput to paper scale (measured
	// KOps × Scale) for comparison against the paper's figures.
	ScaledKOps float64

	// Latency summarizes per-operation virtual latencies over the
	// measured phase, re-normalized to paper scale (measured latency /
	// Scale). Throughput plots hide tail behaviour; this doesn't.
	Latency LatencySummary
}

// MeanScaledKOps returns the mean throughput over the whole measured
// phase, re-normalized to paper scale.
func (r *Result) MeanScaledKOps() float64 {
	return r.Series.MeanKOps() * float64(r.Spec.Scale)
}

// engine unifies the two stores for the runner.
type engine interface {
	kv.Engine
	Quiesce(now sim.Duration) sim.Duration
}

// Run executes one experiment.
func Run(spec Spec) (*Result, error) {
	spec, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(spec.Seed)

	// Device, scaled. The erase stripe scales with capacity so the
	// block COUNT — which sets the garbage-collection dynamics — is
	// scale-invariant.
	scaledCapacity := spec.Device.CapacityBytes / spec.Scale
	scaledPPB := spec.Device.PagesPerBlock / int(spec.Scale)
	if scaledPPB < 64 {
		scaledPPB = 64
	}
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  scaledCapacity,
		PageSize:      spec.Device.PageSize,
		PagesPerBlock: scaledPPB,
		Profile:       spec.Device.Profile.Scaled(spec.Scale),
	})
	if err != nil {
		return nil, fmt.Errorf("core: building device: %w", err)
	}
	bdev := blockdev.New(ssd)

	// Partition (software over-provisioning) and initial state. The
	// device starts trimmed; preconditioning ages the partition range.
	partPages := int64(float64(bdev.Pages()) * spec.PartitionFraction)
	var target blockdev.Dev = bdev
	if partPages < bdev.Pages() {
		p, err := bdev.Partition(0, partPages)
		if err != nil {
			return nil, err
		}
		target = p
	}
	if spec.Initial == Preconditioned {
		ssd.PreconditionRange(rng.Split(), 0, partPages, 2)
	}

	fs, err := extfs.Mount(target, extfs.Options{})
	if err != nil {
		return nil, err
	}

	// Engine, scaled. CPU costs scale with the device so that per-op
	// time dilates uniformly (see DESIGN.md "Scaling model").
	datasetBytes := int64(float64(spec.Device.CapacityBytes)*spec.DatasetFraction) / spec.Scale
	numKeys := uint64(datasetBytes / int64(spec.ValueBytes))
	if numKeys == 0 {
		return nil, errors.New("core: dataset too small for value size")
	}
	var eng engine
	switch spec.Engine {
	case LSM:
		cfg := lsm.NewConfig(datasetBytes)
		cfg.CPUPutTime *= time.Duration(spec.Scale)
		cfg.CPUGetTime *= time.Duration(spec.Scale)
		cfg.CPUPerByte *= time.Duration(spec.Scale)
		cfg.DelayedWriteBytesPerSec /= spec.Scale
		cfg.ProbeParallelism = spec.QueueDepth
		cfg.CompactionReadParallelism = spec.QueueDepth
		if spec.TweakLSM != nil {
			spec.TweakLSM(&cfg)
		}
		db, err := lsm.Open(fs, cfg, rng.Split())
		if err != nil {
			return nil, err
		}
		eng = db
	case BTree:
		cfg := btree.NewConfig(datasetBytes)
		cfg.CPUPutTime *= time.Duration(spec.Scale)
		cfg.CPUGetTime *= time.Duration(spec.Scale)
		cfg.CPUPerByte *= time.Duration(spec.Scale)
		cfg.PrefetchDepth = spec.QueueDepth
		if spec.TweakBTree != nil {
			spec.TweakBTree(&cfg)
		}
		tr, err := btree.Open(fs, cfg)
		if err != nil {
			return nil, err
		}
		eng = tr
	case Betree:
		cfg := betree.NewConfig(datasetBytes)
		cfg.CPUPutTime *= time.Duration(spec.Scale)
		cfg.CPUGetTime *= time.Duration(spec.Scale)
		cfg.CPUPerByte *= time.Duration(spec.Scale)
		if spec.TweakBetree != nil {
			spec.TweakBetree(&cfg)
		}
		tr, err := betree.Open(fs, cfg)
		if err != nil {
			return nil, err
		}
		eng = tr
	default:
		return nil, fmt.Errorf("core: unknown engine %v", spec.Engine)
	}

	res := &Result{Spec: spec, DatasetBytes: datasetBytes, NumKeys: numKeys}

	// Load phase: ingest all keys in sequential order (§3.2), then
	// quiesce. The key buffer is reused across iterations (engines copy
	// what they keep), so the loop allocates nothing per key.
	var now sim.Duration
	loadKey := make([]byte, kv.KeySize)
	for id := uint64(0); id < numKeys; id++ {
		kv.AppendKey(loadKey, id)
		now, err = eng.Put(now, loadKey, nil, spec.ValueBytes)
		if err != nil {
			if errors.Is(err, extfs.ErrNoSpace) {
				res.OutOfSpace = true
				res.LoadDuration = now
				return res, nil
			}
			return nil, fmt.Errorf("core: load: %w", err)
		}
	}
	now, err = eng.FlushAll(now)
	if err != nil {
		if errors.Is(err, extfs.ErrNoSpace) {
			res.OutOfSpace = true
			res.LoadDuration = now
			return res, nil
		}
		return nil, err
	}
	res.LoadDuration = now
	res.LoadHostBytes = bdev.Counters().BytesWritten
	loadStats := ssd.Stats()
	res.LoadFlashPages = loadStats.FlashPagesWritten
	res.LoadWAD = loadStats.WAD()

	// Measurement phase: plots exclude loading, so instrumentation is
	// reset here (iostat counters, SMART deltas, LBA histogram).
	bdev.ResetInstrumentation()
	collector := NewCollector(bdev, eng, now, spec.SampleEvery)
	gen, err := workload.NewGenerator(workload.Spec{
		NumKeys:      numKeys,
		ValueBytes:   spec.ValueBytes,
		ReadFraction: spec.ReadFraction,
		Dist:         spec.Dist,
	}, rng.Split())
	if err != nil {
		return nil, err
	}

	deadline := now + spec.Duration
	keyBuf := make([]byte, kv.KeySize)
	lat := NewLatencyHistogram()

	// Batched read submission: with QueueDepth > 1 consecutive reads
	// accumulate into a batch whose operations all start at the same
	// virtual time (QueueDepth outstanding host requests); the clock
	// advances to the slowest completion, so reads overlap on the
	// device's internal lanes. Writes flush the batch first and run
	// serially, keeping the engines' stall/backpressure semantics
	// intact. Latencies are per-operation (submission to completion).
	batch := make([]uint64, 0, spec.QueueDepth)
	flushReads := func() error {
		batchEnd := now
		for _, id := range batch {
			kv.AppendKey(keyBuf, id)
			done, _, _, err := eng.Get(now, keyBuf)
			if err != nil {
				return err
			}
			lat.Record((done - now) / sim.Duration(spec.Scale))
			if done > batchEnd {
				batchEnd = done
			}
		}
		batch = batch[:0]
		now = batchEnd
		return nil
	}

	for now < deadline {
		op := gen.Next()
		if op.Kind == workload.OpRead && spec.QueueDepth > 1 {
			batch = append(batch, op.KeyID)
			if len(batch) < spec.QueueDepth {
				continue
			}
			if err = flushReads(); err != nil {
				break
			}
			if collector.Due(now) {
				collector.Record(now)
			}
			continue
		}
		if len(batch) > 0 {
			if err = flushReads(); err != nil {
				break
			}
		}
		kv.AppendKey(keyBuf, op.KeyID)
		opStart := now
		if op.Kind == workload.OpRead {
			now, _, _, err = eng.Get(now, keyBuf)
		} else {
			now, err = eng.Put(now, keyBuf, nil, spec.ValueBytes)
		}
		if err != nil {
			break
		}
		// Re-normalize to paper scale: simulated service times are
		// dilated by Scale.
		lat.Record((now - opStart) / sim.Duration(spec.Scale))
		if collector.Due(now) {
			collector.Record(now)
		}
	}
	if err == nil && len(batch) > 0 {
		err = flushReads()
	}
	if err != nil {
		if !errors.Is(err, extfs.ErrNoSpace) {
			return nil, fmt.Errorf("core: workload: %w", err)
		}
		res.OutOfSpace = true
	}
	collector.Record(now)
	res.Latency = lat.Percentiles()

	res.Series = collector.Series()
	res.Steady = res.Series.TailStats(0.25)
	res.ScaledKOps = res.Steady.ThroughputKOps * float64(spec.Scale)
	res.SpaceAmp = SpaceAmplification(res.Steady.DiskUsedBytes, datasetBytes)
	res.DiskUtilPct = 100 * float64(res.Steady.DiskUsedBytes) / float64(scaledCapacity)
	res.LBACDF = bdev.WriteCDF(100)
	res.FracLBAs = bdev.FractionLBAsWritten()
	return res, nil
}
