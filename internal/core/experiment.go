package core

import (
	"errors"
	"fmt"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/engine"
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
	"ptsbench/internal/workload"
)

// EngineKind names the persistent tree structure under test. It is the
// engine driver's registry name (see internal/engine), so the set of
// valid kinds is open: adding an engine package that registers itself
// makes its name valid everywhere — specs, spec files, the CLI —
// without touching this package.
type EngineKind string

// Names of the built-in engines, as convenience constants. The strings
// are the registry keys; a fourth engine needs no constant here.
const (
	// LSM is the RocksDB-style log-structured merge tree.
	LSM EngineKind = "lsm"
	// BTree is the WiredTiger-style B+Tree.
	BTree EngineKind = "btree"
	// Betree is the buffered copy-on-write Bε-tree.
	Betree EngineKind = "betree"
)

// String implements fmt.Stringer. The zero value reads as the default
// engine (LSM), matching Validate.
func (k EngineKind) String() string {
	if k == "" {
		return string(LSM)
	}
	return string(k)
}

// ParseEngine maps an engine name to its kind, verifying it against the
// driver registry.
func ParseEngine(name string) (EngineKind, error) {
	if _, err := engine.Lookup(name); err != nil {
		return "", err
	}
	return EngineKind(name), nil
}

// InitialState is the drive state before the experiment (§3.4).
type InitialState int

// Initial states.
const (
	// Trimmed: every block discarded, factory-fresh dynamics.
	Trimmed InitialState = iota
	// Preconditioned: sequential fill plus 2× capacity random writes.
	Preconditioned
)

// String implements fmt.Stringer.
func (s InitialState) String() string {
	if s == Preconditioned {
		return "preconditioned"
	}
	return "trimmed"
}

// ParseInitialState maps an initial-state name (as produced by String)
// back to its value.
func ParseInitialState(name string) (InitialState, error) {
	switch name {
	case "trimmed":
		return Trimmed, nil
	case "preconditioned":
		return Preconditioned, nil
	default:
		return 0, fmt.Errorf("core: unknown initial state %q (have trimmed, preconditioned)", name)
	}
}

// DeviceSpec describes the simulated SSD at full (paper) scale.
type DeviceSpec struct {
	Profile       flash.Profile
	CapacityBytes int64
	PageSize      int
	PagesPerBlock int
}

// DefaultDevice returns the paper's primary testbed: a 400 GB
// enterprise-class flash SSD (SSD1). PagesPerBlock describes the erase
// stripe (superblock) at full scale: enterprise NVMe drives erase across
// all dies at once, so the effective GC unit is hundreds of megabytes.
func DefaultDevice() DeviceSpec {
	return DeviceSpec{
		Profile:       flash.ProfileSSD1(),
		CapacityBytes: 400 << 30,
		PageSize:      4096,
		PagesPerBlock: 64 << 10, // 256 MiB erase stripes -> ~1600 per drive
	}
}

// Spec fully describes one experiment run. It is pure data: every field
// — the engine included, via its registry name and string-valued
// tunables — serializes to JSON and back (see the codec in
// specjson.go), so experiments can be saved, diffed and launched from
// spec files.
type Spec struct {
	Name   string
	Device DeviceSpec

	// Scale divides capacity, bandwidths and engine sizings while
	// keeping the virtual time axis; dimensionless results are
	// invariant (see DESIGN.md).
	Scale int64

	Engine EngineKind

	// DatasetFraction sizes the dataset relative to full device
	// capacity (the paper's default is 0.5).
	DatasetFraction float64
	ValueBytes      int
	ReadFraction    float64
	Dist            workload.Dist
	// ZipfTheta is the Zipfian skew (only meaningful with
	// Dist == workload.Zipfian; 0 selects the YCSB default 0.99).
	ZipfTheta float64

	Initial InitialState

	// PartitionFraction < 1 reserves the tail of the LBA space as
	// software over-provisioning (never written, stays trimmed).
	PartitionFraction float64

	// QueueDepth models host I/O concurrency in the measured phase: up
	// to QueueDepth consecutive read operations are submitted at the
	// same virtual time — a multi-threaded client keeping QueueDepth
	// requests in flight — and the clock advances to the slowest
	// completion. It also sets the engines' internal read parallelism
	// (LSM SSTable probe waves and compaction read batching, B+Tree
	// scan sibling prefetch). At the default of 1 the run is the
	// paper's strictly serial closed loop; with larger values
	// throughput grows until the device's Channels × Ways lane count
	// saturates (writes always execute serially, preserving the
	// engines' stall and throttling semantics).
	QueueDepth int

	// Duration is the measured phase length in virtual time; SampleEvery
	// is the instrumentation period.
	Duration    sim.Duration
	SampleEvery sim.Duration

	Seed uint64

	// Tunables are declarative engine knob overrides, applied to the
	// engine's sized default config after scaling. Keys live in the
	// engine's namespace ("epsilon" for betree, "memtable_bytes" for
	// lsm, ...); `ptsbench engines` lists every knob. Unlike the
	// closure-based Tweak hooks they replace, tunables serialize, so a
	// Spec with engine overrides is still a plain JSON document.
	Tunables map[string]string
}

// Validate fills defaults and fails fast on anything the downstream
// layers would only reject after the device has been built and the
// entire load phase has run: an unknown engine, tunable keys the engine
// doesn't have, a read fraction outside [0,1], an unknown distribution,
// or a nonsense Zipf skew.
func (s Spec) Validate() (Spec, error) {
	def := DefaultDevice()
	if s.Device.CapacityBytes == 0 {
		s.Device.CapacityBytes = def.CapacityBytes
	}
	if s.Device.PageSize == 0 {
		s.Device.PageSize = def.PageSize
	}
	if s.Device.PagesPerBlock == 0 {
		s.Device.PagesPerBlock = def.PagesPerBlock
	}
	if s.Device.Profile == (flash.Profile{}) {
		s.Device.Profile = def.Profile
	}
	if s.Scale <= 0 {
		s.Scale = 128
	}
	if s.Engine == "" {
		s.Engine = LSM
	}
	drv, err := engine.Lookup(string(s.Engine))
	if err != nil {
		return s, fmt.Errorf("core: %w", err)
	}
	if len(s.Tunables) > 0 {
		// Dry-run the tunables against a throwaway config so a typo in
		// a spec file surfaces here, not after a full load phase.
		if err := drv.Configure(engine.Sizing{}).ApplyTunables(s.Tunables); err != nil {
			return s, fmt.Errorf("core: %w", err)
		}
	}
	if s.DatasetFraction <= 0 {
		s.DatasetFraction = 0.5
	}
	if s.DatasetFraction > 0.95 {
		return s, fmt.Errorf("core: dataset fraction %v too large", s.DatasetFraction)
	}
	if s.ValueBytes <= 0 {
		s.ValueBytes = 4000
	}
	if s.ReadFraction < 0 || s.ReadFraction > 1 {
		return s, fmt.Errorf("core: read fraction %v outside [0,1]", s.ReadFraction)
	}
	switch s.Dist {
	case workload.Uniform, workload.Zipfian, workload.SequentialDist:
	default:
		return s, fmt.Errorf("core: unknown distribution %v", s.Dist)
	}
	if s.ZipfTheta < 0 {
		return s, fmt.Errorf("core: negative ZipfTheta %v", s.ZipfTheta)
	}
	if s.Dist == workload.Zipfian && s.ZipfTheta >= 1 {
		return s, fmt.Errorf("core: ZipfTheta %v outside [0,1) (the Zipfian generator requires theta < 1)", s.ZipfTheta)
	}
	if s.PartitionFraction <= 0 || s.PartitionFraction > 1 {
		s.PartitionFraction = 1
	}
	if s.Duration <= 0 {
		s.Duration = 210 * time.Minute
	}
	if s.SampleEvery <= 0 {
		s.SampleEvery = 10 * time.Second
	}
	if s.QueueDepth < 1 {
		s.QueueDepth = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s, nil
}

// Result carries everything the figures need.
type Result struct {
	Spec         Spec
	Series       Series
	Steady       SteadyStats
	SpaceAmp     float64
	DiskUtilPct  float64 // max footprint over full device capacity
	LBACDF       []float64
	FracLBAs     float64
	OutOfSpace   bool
	LoadDuration sim.Duration
	DatasetBytes int64
	NumKeys      uint64

	// Load-phase diagnostics (before instrumentation reset).
	LoadHostBytes  int64
	LoadFlashPages int64
	LoadWAD        float64

	// ScaledKOps re-normalizes throughput to paper scale (measured
	// KOps × Scale) for comparison against the paper's figures.
	ScaledKOps float64

	// Latency summarizes per-operation virtual latencies over the
	// measured phase, re-normalized to paper scale (measured latency /
	// Scale). Throughput plots hide tail behaviour; this doesn't.
	Latency LatencySummary
}

// MeanScaledKOps returns the mean throughput over the whole measured
// phase, re-normalized to paper scale.
func (r *Result) MeanScaledKOps() float64 {
	return r.Series.MeanKOps() * float64(r.Spec.Scale)
}

// Run executes one experiment. The engine is resolved through the
// driver registry: Run has no per-engine code, so a new tree structure
// only needs its own package plus a registration import somewhere in
// the caller's build (internal/engine/all collects the built-ins).
func Run(spec Spec) (*Result, error) {
	spec, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	drv, err := engine.Lookup(string(spec.Engine))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rng := sim.NewRNG(spec.Seed)

	// Device, scaled. The erase stripe scales with capacity so the
	// block COUNT — which sets the garbage-collection dynamics — is
	// scale-invariant.
	scaledCapacity := spec.Device.CapacityBytes / spec.Scale
	scaledPPB := spec.Device.PagesPerBlock / int(spec.Scale)
	if scaledPPB < 64 {
		scaledPPB = 64
	}
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  scaledCapacity,
		PageSize:      spec.Device.PageSize,
		PagesPerBlock: scaledPPB,
		Profile:       spec.Device.Profile.Scaled(spec.Scale),
	})
	if err != nil {
		return nil, fmt.Errorf("core: building device: %w", err)
	}
	bdev := blockdev.New(ssd)

	// Partition (software over-provisioning) and initial state. The
	// device starts trimmed; preconditioning ages the partition range.
	partPages := int64(float64(bdev.Pages()) * spec.PartitionFraction)
	var target blockdev.Dev = bdev
	if partPages < bdev.Pages() {
		p, err := bdev.Partition(0, partPages)
		if err != nil {
			return nil, err
		}
		target = p
	}
	if spec.Initial == Preconditioned {
		ssd.PreconditionRange(rng.Split(), 0, partPages, 2)
	}

	fs, err := extfs.Mount(target, extfs.Options{})
	if err != nil {
		return nil, err
	}

	// Engine, resolved through the registry and scaled by its driver.
	// CPU costs scale with the device so that per-op time dilates
	// uniformly (see DESIGN.md "Scaling model").
	datasetBytes := int64(float64(spec.Device.CapacityBytes)*spec.DatasetFraction) / spec.Scale
	numKeys := uint64(datasetBytes / int64(spec.ValueBytes))
	if numKeys == 0 {
		return nil, errors.New("core: dataset too small for value size")
	}
	cfg := drv.Configure(engine.Sizing{
		DatasetBytes: datasetBytes,
		Scale:        spec.Scale,
		QueueDepth:   spec.QueueDepth,
	})
	if err := cfg.ApplyTunables(spec.Tunables); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	eng, err := cfg.Open(engine.Env{FS: fs, RNG: rng})
	if err != nil {
		return nil, err
	}

	res := &Result{Spec: spec, DatasetBytes: datasetBytes, NumKeys: numKeys}

	// Load phase: ingest all keys in sequential order (§3.2), then
	// quiesce. The key buffer is reused across iterations (engines copy
	// what they keep), so the loop allocates nothing per key.
	var now sim.Duration
	loadKey := make([]byte, kv.KeySize)
	for id := uint64(0); id < numKeys; id++ {
		kv.AppendKey(loadKey, id)
		now, err = eng.Put(now, loadKey, nil, spec.ValueBytes)
		if err != nil {
			if errors.Is(err, extfs.ErrNoSpace) {
				res.OutOfSpace = true
				res.LoadDuration = now
				return res, nil
			}
			return nil, fmt.Errorf("core: load: %w", err)
		}
	}
	now, err = eng.FlushAll(now)
	if err != nil {
		if errors.Is(err, extfs.ErrNoSpace) {
			res.OutOfSpace = true
			res.LoadDuration = now
			return res, nil
		}
		return nil, err
	}
	res.LoadDuration = now
	res.LoadHostBytes = bdev.Counters().BytesWritten
	loadStats := ssd.Stats()
	res.LoadFlashPages = loadStats.FlashPagesWritten
	res.LoadWAD = loadStats.WAD()

	// Measurement phase: plots exclude loading, so instrumentation is
	// reset here (iostat counters, SMART deltas, LBA histogram).
	bdev.ResetInstrumentation()
	collector := NewCollector(bdev, eng, now, spec.SampleEvery)
	gen, err := workload.NewGenerator(workload.Spec{
		NumKeys:      numKeys,
		ValueBytes:   spec.ValueBytes,
		ReadFraction: spec.ReadFraction,
		Dist:         spec.Dist,
		ZipfTheta:    spec.ZipfTheta,
	}, rng.Split())
	if err != nil {
		return nil, err
	}

	deadline := now + spec.Duration
	keyBuf := make([]byte, kv.KeySize)
	lat := NewLatencyHistogram()

	// Batched read submission: with QueueDepth > 1 consecutive reads
	// accumulate into a batch whose operations all start at the same
	// virtual time (QueueDepth outstanding host requests); the clock
	// advances to the slowest completion, so reads overlap on the
	// device's internal lanes. Writes flush the batch first and run
	// serially, keeping the engines' stall/backpressure semantics
	// intact. Latencies are per-operation (submission to completion).
	batch := make([]uint64, 0, spec.QueueDepth)
	flushReads := func() error {
		batchEnd := now
		for _, id := range batch {
			kv.AppendKey(keyBuf, id)
			done, _, _, err := eng.Get(now, keyBuf)
			if err != nil {
				return err
			}
			lat.Record((done - now) / sim.Duration(spec.Scale))
			if done > batchEnd {
				batchEnd = done
			}
		}
		batch = batch[:0]
		now = batchEnd
		return nil
	}

	for now < deadline {
		op := gen.Next()
		if op.Kind == workload.OpRead && spec.QueueDepth > 1 {
			batch = append(batch, op.KeyID)
			if len(batch) < spec.QueueDepth {
				continue
			}
			if err = flushReads(); err != nil {
				break
			}
			if collector.Due(now) {
				collector.Record(now)
			}
			continue
		}
		if len(batch) > 0 {
			if err = flushReads(); err != nil {
				break
			}
		}
		kv.AppendKey(keyBuf, op.KeyID)
		opStart := now
		if op.Kind == workload.OpRead {
			now, _, _, err = eng.Get(now, keyBuf)
		} else {
			now, err = eng.Put(now, keyBuf, nil, spec.ValueBytes)
		}
		if err != nil {
			break
		}
		// Re-normalize to paper scale: simulated service times are
		// dilated by Scale.
		lat.Record((now - opStart) / sim.Duration(spec.Scale))
		if collector.Due(now) {
			collector.Record(now)
		}
	}
	if err == nil && len(batch) > 0 {
		err = flushReads()
	}
	if err != nil {
		if !errors.Is(err, extfs.ErrNoSpace) {
			return nil, fmt.Errorf("core: workload: %w", err)
		}
		res.OutOfSpace = true
	}
	collector.Record(now)
	res.Latency = lat.Percentiles()

	res.Series = collector.Series()
	res.Steady = res.Series.TailStats(0.25)
	res.ScaledKOps = res.Steady.ThroughputKOps * float64(spec.Scale)
	res.SpaceAmp = SpaceAmplification(res.Steady.DiskUsedBytes, datasetBytes)
	res.DiskUtilPct = 100 * float64(res.Steady.DiskUsedBytes) / float64(scaledCapacity)
	res.LBACDF = bdev.WriteCDF(100)
	res.FracLBAs = bdev.FractionLBAsWritten()
	return res, nil
}
