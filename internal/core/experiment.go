package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/engine"
	"ptsbench/internal/extfs"
	"ptsbench/internal/filedev"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/replica"
	"ptsbench/internal/sim"
	"ptsbench/internal/store"
	"ptsbench/internal/workload"
)

// EngineKind names the persistent tree structure under test. It is the
// engine driver's registry name (see internal/engine), so the set of
// valid kinds is open: adding an engine package that registers itself
// makes its name valid everywhere — specs, spec files, the CLI —
// without touching this package.
type EngineKind string

// Names of the built-in engines, as convenience constants. The strings
// are the registry keys; a fourth engine needs no constant here.
const (
	// LSM is the RocksDB-style log-structured merge tree.
	LSM EngineKind = "lsm"
	// BTree is the WiredTiger-style B+Tree.
	BTree EngineKind = "btree"
	// Betree is the buffered copy-on-write Bε-tree.
	Betree EngineKind = "betree"
)

// String implements fmt.Stringer. The zero value reads as the default
// engine (LSM), matching Validate.
func (k EngineKind) String() string {
	if k == "" {
		return string(LSM)
	}
	return string(k)
}

// ParseEngine maps an engine name to its kind, verifying it against the
// driver registry.
func ParseEngine(name string) (EngineKind, error) {
	if _, err := engine.Lookup(name); err != nil {
		return "", err
	}
	return EngineKind(name), nil
}

// InitialState is the drive state before the experiment (§3.4).
type InitialState int

// Initial states.
const (
	// Trimmed: every block discarded, factory-fresh dynamics.
	Trimmed InitialState = iota
	// Preconditioned: sequential fill plus 2× capacity random writes.
	Preconditioned
)

// String implements fmt.Stringer.
func (s InitialState) String() string {
	if s == Preconditioned {
		return "preconditioned"
	}
	return "trimmed"
}

// ParseInitialState maps an initial-state name (as produced by String)
// back to its value.
func ParseInitialState(name string) (InitialState, error) {
	switch name {
	case "trimmed":
		return Trimmed, nil
	case "preconditioned":
		return Preconditioned, nil
	default:
		return 0, fmt.Errorf("core: unknown initial state %q (have trimmed, preconditioned)", name)
	}
}

// DeviceSpec describes the simulated SSD at full (paper) scale.
type DeviceSpec struct {
	Profile       flash.Profile
	CapacityBytes int64
	PageSize      int
	PagesPerBlock int
}

// DefaultDevice returns the paper's primary testbed: a 400 GB
// enterprise-class flash SSD (SSD1). PagesPerBlock describes the erase
// stripe (superblock) at full scale: enterprise NVMe drives erase across
// all dies at once, so the effective GC unit is hundreds of megabytes.
func DefaultDevice() DeviceSpec {
	return DeviceSpec{
		Profile:       flash.ProfileSSD1(),
		CapacityBytes: 400 << 30,
		PageSize:      4096,
		PagesPerBlock: 64 << 10, // 256 MiB erase stripes -> ~1600 per drive
	}
}

// Spec fully describes one experiment run. It is pure data: every field
// — the engine included, via its registry name and string-valued
// tunables — serializes to JSON and back (see the codec in
// specjson.go), so experiments can be saved, diffed and launched from
// spec files.
type Spec struct {
	Name   string
	Device DeviceSpec

	// Scale divides capacity, bandwidths and engine sizings while
	// keeping the virtual time axis; dimensionless results are
	// invariant (see DESIGN.md).
	Scale int64

	Engine EngineKind

	// DatasetFraction sizes the dataset relative to full device
	// capacity (the paper's default is 0.5).
	DatasetFraction float64
	ValueBytes      int
	ReadFraction    float64
	Dist            workload.Dist
	// ZipfTheta is the Zipfian skew (only meaningful with
	// Dist == workload.Zipfian; 0 selects the YCSB default 0.99).
	ZipfTheta float64

	Initial InitialState

	// PartitionFraction < 1 reserves the tail of the LBA space as
	// software over-provisioning (never written, stays trimmed).
	PartitionFraction float64

	// QueueDepth models host I/O concurrency in the measured phase: up
	// to QueueDepth consecutive read operations are submitted at the
	// same virtual time — a multi-threaded client keeping QueueDepth
	// requests in flight — and the clock advances to the slowest
	// completion. It also sets the engines' internal read parallelism
	// (LSM SSTable probe waves and compaction read batching, B+Tree
	// scan sibling prefetch). At the default of 1 the run is the
	// paper's strictly serial closed loop; with larger values
	// throughput grows until the device's Channels × Ways lane count
	// saturates (writes always execute serially, preserving the
	// engines' stall and throttling semantics).
	QueueDepth int

	// Shards splits the serving layer into N hash-partitioned shards,
	// each owning its own engine instance on its own slice of the device
	// (capacity, dataset and engine sizing all divide by N). Shard
	// workers run concurrently in real time but the result is
	// deterministic, and a 1-shard run is bit-identical to the historical
	// single-engine path. Defaults to 1.
	Shards int

	// Clients is the number of closed-loop clients driving the store,
	// each with its own deterministic key stream (see
	// workload.ClientSeed). Operations submitted by different clients at
	// overlapping virtual times queue FIFO on their key's shard, so
	// throughput scales with shards while per-op latency grows with
	// queueing. Defaults to Shards (one client per shard minimum).
	Clients int

	// Skew routes this fraction of operations to a hot 1/16th of the
	// keyspace on top of the base distribution — cross-shard load
	// imbalance for sharded runs. 0 (the default) draws no extra
	// randomness, keeping historical key streams bit-identical.
	Skew float64

	// Replicas turns every shard into a replica group of N complete
	// engine stacks (internal/replica), each on its own private device
	// the same size as the shard's slice — so replication honestly
	// multiplies device traffic and space while throughput stays
	// logical. Defaults to 1 (no group is constructed; the run is
	// bit-identical to the unreplicated store).
	Replicas int

	// ReplMode is the replication discipline for Replicas > 1: "chain"
	// (writes flow head→tail, ack at the tail, reads at the tail) or
	// "quorum" (writes everywhere, ack at ⌈R/2⌉+1, reads with
	// read-repair). Defaults to "chain" for replicated specs; ignored
	// (and left empty) at Replicas == 1.
	ReplMode string

	// Duration is the measured phase length in virtual time; SampleEvery
	// is the instrumentation period.
	Duration    sim.Duration
	SampleEvery sim.Duration

	Seed uint64

	// Tunables are declarative engine knob overrides, applied to the
	// engine's sized default config after scaling. Keys live in the
	// engine's namespace ("epsilon" for betree, "memtable_bytes" for
	// lsm, ...); `ptsbench engines` lists every knob. Unlike the
	// closure-based Tweak hooks they replace, tunables serialize, so a
	// Spec with engine overrides is still a plain JSON document.
	Tunables map[string]string

	// Backend selects the storage authority under the filesystem:
	// "sim" (the default; the simulated flash device) or "file" (one
	// real file per shard through internal/filedev, with measured I/O
	// latencies folded into virtual time).
	Backend string

	// Dir is where the file backend keeps its per-shard images. Empty
	// runs in a temporary directory removed when Run returns. File
	// backend only.
	Dir string

	// Fsync is the file backend's durability discipline: "none",
	// "barrier" (the default; fsync on every filesystem sync barrier)
	// or "always" (fsync per write). File backend only.
	Fsync string
}

// Validate fills defaults and fails fast on anything the downstream
// layers would only reject after the device has been built and the
// entire load phase has run: an unknown engine, tunable keys the engine
// doesn't have, a read fraction outside [0,1], an unknown distribution,
// or a nonsense Zipf skew.
func (s Spec) Validate() (Spec, error) {
	def := DefaultDevice()
	if s.Device.CapacityBytes == 0 {
		s.Device.CapacityBytes = def.CapacityBytes
	}
	if s.Device.PageSize == 0 {
		s.Device.PageSize = def.PageSize
	}
	if s.Device.PagesPerBlock == 0 {
		s.Device.PagesPerBlock = def.PagesPerBlock
	}
	if s.Device.Profile == (flash.Profile{}) {
		s.Device.Profile = def.Profile
	}
	if s.Scale <= 0 {
		s.Scale = 128
	}
	if s.Engine == "" {
		s.Engine = LSM
	}
	drv, err := engine.Lookup(string(s.Engine))
	if err != nil {
		return s, fmt.Errorf("core: %w", err)
	}
	if len(s.Tunables) > 0 {
		// Dry-run the tunables against a throwaway config so a typo in
		// a spec file surfaces here, not after a full load phase.
		if err := drv.Configure(engine.Sizing{}).ApplyTunables(s.Tunables); err != nil {
			return s, fmt.Errorf("core: %w", err)
		}
	}
	if s.DatasetFraction <= 0 {
		s.DatasetFraction = 0.5
	}
	if s.DatasetFraction > 0.95 {
		return s, fmt.Errorf("core: dataset fraction %v too large", s.DatasetFraction)
	}
	if s.ValueBytes <= 0 {
		s.ValueBytes = 4000
	}
	if s.ReadFraction < 0 || s.ReadFraction > 1 {
		return s, fmt.Errorf("core: read fraction %v outside [0,1]", s.ReadFraction)
	}
	switch s.Dist {
	case workload.Uniform, workload.Zipfian, workload.SequentialDist:
	default:
		return s, fmt.Errorf("core: unknown distribution %v", s.Dist)
	}
	if s.ZipfTheta < 0 {
		return s, fmt.Errorf("core: negative ZipfTheta %v", s.ZipfTheta)
	}
	if s.Dist == workload.Zipfian && s.ZipfTheta >= 1 {
		return s, fmt.Errorf("core: ZipfTheta %v outside [0,1) (the Zipfian generator requires theta < 1)", s.ZipfTheta)
	}
	if s.PartitionFraction <= 0 || s.PartitionFraction > 1 {
		s.PartitionFraction = 1
	}
	if s.Duration <= 0 {
		s.Duration = 210 * time.Minute
	}
	if s.SampleEvery <= 0 {
		s.SampleEvery = 10 * time.Second
	}
	if s.QueueDepth < 1 {
		s.QueueDepth = 1
	}
	if s.Shards < 0 {
		return s, fmt.Errorf("core: shards must be >= 1 (got %d); omit the field for the single-shard default", s.Shards)
	}
	if s.Shards == 0 {
		s.Shards = 1
	}
	if s.Shards > 1024 {
		return s, fmt.Errorf("core: %d shards is beyond any simulated device's lane budget (max 1024)", s.Shards)
	}
	if s.Clients < 0 {
		return s, fmt.Errorf("core: clients must be >= 1 (got %d); omit the field for one client per shard", s.Clients)
	}
	if s.Clients == 0 {
		s.Clients = s.Shards
	}
	if s.Clients < s.Shards {
		return s, fmt.Errorf("core: %d clients cannot keep %d shards busy; use at least one client per shard (clients >= shards)", s.Clients, s.Shards)
	}
	if s.Skew < 0 || s.Skew > 1 {
		return s, fmt.Errorf("core: skew %v outside [0,1] (the fraction of operations sent to the hot keyspace)", s.Skew)
	}
	if s.Replicas < 0 {
		return s, fmt.Errorf("core: replicas must be >= 1 (got %d); omit the field for the unreplicated default", s.Replicas)
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	// Every replica is a complete engine stack on its own device, so the
	// lane budget bounds shards × replicas, not shards alone.
	if s.Shards*s.Replicas > 1024 {
		return s, fmt.Errorf("core: %d shards x %d replicas is %d engine stacks, beyond any simulated device's lane budget (max 1024)", s.Shards, s.Replicas, s.Shards*s.Replicas)
	}
	switch s.ReplMode {
	case "":
		if s.Replicas > 1 {
			s.ReplMode = "chain"
		}
	case "chain", "quorum":
	default:
		return s, fmt.Errorf("core: unknown repl_mode %q (have chain, quorum)", s.ReplMode)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	switch s.Backend {
	case "":
		s.Backend = "sim"
	case "sim", "file":
	default:
		return s, fmt.Errorf("core: unknown backend %q (have sim, file)", s.Backend)
	}
	if s.Backend == "sim" {
		if s.Dir != "" {
			return s, errors.New(`core: dir requires backend "file"`)
		}
		if s.Fsync != "" {
			return s, errors.New(`core: fsync requires backend "file"`)
		}
	} else {
		if _, err := filedev.ParseDiscipline(s.Fsync); err != nil {
			return s, fmt.Errorf("core: %w", err)
		}
		// Flash-level knobs have no file-backend counterpart; reject
		// rather than silently measure something else.
		if s.Initial == Preconditioned {
			return s, errors.New("core: preconditioning requires the simulated backend")
		}
		if s.PartitionFraction != 1 {
			return s, errors.New("core: partition_fraction requires the simulated backend")
		}
	}
	return s, nil
}

// Result carries everything the figures need.
type Result struct {
	Spec         Spec
	Series       Series
	Steady       SteadyStats
	SpaceAmp     float64
	DiskUtilPct  float64 // max footprint over full device capacity
	LBACDF       []float64
	FracLBAs     float64
	OutOfSpace   bool
	LoadDuration sim.Duration
	DatasetBytes int64
	NumKeys      uint64

	// Measured-phase TRIM traffic at the block layer: discard commands
	// issued and the logical pages they covered (engine file deletions
	// under a discard-mounted filesystem reach the device as TRIMs).
	DiscardOps     int64
	PagesDiscarded int64

	// Load-phase diagnostics (before instrumentation reset).
	LoadHostBytes  int64
	LoadFlashPages int64
	LoadWAD        float64

	// ScaledKOps re-normalizes throughput to paper scale (measured
	// KOps × Scale) for comparison against the paper's figures.
	ScaledKOps float64

	// Latency summarizes per-operation virtual latencies over the
	// measured phase, re-normalized to paper scale (measured latency /
	// Scale). Throughput plots hide tail behaviour; this doesn't.
	Latency LatencySummary
}

// MeanScaledKOps returns the mean throughput over the whole measured
// phase, re-normalized to paper scale.
func (r *Result) MeanScaledKOps() float64 {
	return r.Series.MeanKOps() * float64(r.Spec.Scale)
}

// Run executes one experiment. The engine is resolved through the
// driver registry and served through the sharded store pipeline
// (internal/store): Run builds one engine stack per shard, loads the
// dataset, then drives the measured phase as Spec.Clients closed-loop
// clients submitting into the store. With the default 1 shard / 1
// client the submission schedule collapses to the historical
// synchronous op loop and the result is bit-identical to it (the golden
// fixtures pin this).
func Run(spec Spec) (*Result, error) {
	spec, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	drv, err := engine.Lookup(string(spec.Engine))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rng := sim.NewRNG(spec.Seed)

	// Device geometry, scaled. The erase stripe scales with capacity so
	// the block COUNT — which sets the garbage-collection dynamics — is
	// scale-invariant; shards then split capacity, dataset and engine
	// sizing evenly, so each shard is a proportionally smaller replica
	// of the single-shard stack.
	scaledCapacity := spec.Device.CapacityBytes / spec.Scale
	scaledPPB := spec.Device.PagesPerBlock / int(spec.Scale)
	if scaledPPB < 64 {
		scaledPPB = 64
	}
	datasetBytes := int64(float64(spec.Device.CapacityBytes)*spec.DatasetFraction) / spec.Scale
	numKeys := uint64(datasetBytes / int64(spec.ValueBytes))
	if numKeys == 0 {
		return nil, errors.New("core: dataset too small for value size")
	}

	// The file backend keeps one image file per shard; without an
	// explicit dir they live in (and vanish with) a temp directory.
	fileBackend := spec.Backend == "file"
	var runDir string
	if fileBackend {
		if spec.Dir == "" {
			runDir, err = os.MkdirTemp("", "ptsbench-filedev-")
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			defer os.RemoveAll(runDir)
		} else {
			runDir = spec.Dir
			if err := os.MkdirAll(runDir, 0o755); err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
	}
	var fdevs []*filedev.Dev
	defer func() {
		for _, fd := range fdevs {
			fd.Close()
		}
	}()

	// openStack builds one complete engine stack — device, filesystem,
	// sized engine — for replica r of shard i. Every replica is a full
	// copy of the shard: same device slice, same dataset sizing.
	openStack := func(i, r int, stackRNG *sim.RNG) (engine.Engine, blockdev.Host, error) {
		var host blockdev.Host
		var target blockdev.Dev
		if fileBackend {
			discipline, err := filedev.ParseDiscipline(spec.Fsync)
			if err != nil {
				return nil, nil, err
			}
			image := fmt.Sprintf("shard-%03d.img", i)
			if spec.Replicas > 1 {
				image = fmt.Sprintf("shard-%03d-r%d.img", i, r)
			}
			fdev, err := filedev.Open(filedev.Config{
				Path:     filepath.Join(runDir, image),
				Pages:    (scaledCapacity / int64(spec.Shards)) / int64(spec.Device.PageSize),
				PageSize: spec.Device.PageSize,
				Fsync:    discipline,
				Measure:  true,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("building file device: %w", err)
			}
			fdevs = append(fdevs, fdev)
			host, target = fdev, fdev
		} else {
			ssd, err := flash.NewDevice(flash.Config{
				LogicalBytes:  scaledCapacity / int64(spec.Shards),
				PageSize:      spec.Device.PageSize,
				PagesPerBlock: scaledPPB,
				Profile:       spec.Device.Profile.Scaled(spec.Scale),
			})
			if err != nil {
				return nil, nil, fmt.Errorf("building device: %w", err)
			}
			bdev := blockdev.New(ssd)

			// Partition (software over-provisioning) and initial state.
			// The device starts trimmed; preconditioning ages the
			// partition.
			partPages := int64(float64(bdev.Pages()) * spec.PartitionFraction)
			host, target = bdev, bdev
			if partPages < bdev.Pages() {
				p, err := bdev.Partition(0, partPages)
				if err != nil {
					return nil, nil, err
				}
				target = p
			}
			if spec.Initial == Preconditioned {
				ssd.PreconditionRange(stackRNG.Split(), 0, partPages, 2)
			}
		}

		fs, err := extfs.Mount(target, extfs.Options{})
		if err != nil {
			return nil, nil, err
		}
		cfg := drv.Configure(engine.Sizing{
			DatasetBytes: datasetBytes / int64(spec.Shards),
			Scale:        spec.Scale,
			QueueDepth:   spec.QueueDepth,
		})
		if err := cfg.ApplyTunables(spec.Tunables); err != nil {
			return nil, nil, err
		}
		eng, err := cfg.Open(engine.Env{FS: fs, RNG: stackRNG})
		if err != nil {
			return nil, nil, err
		}
		return eng, host, nil
	}

	// Per-shard stacks. Shard 0 consumes the experiment's primary RNG
	// stream in the historical order (precondition split, then the
	// engine env); later shards draw derived independent streams, so the
	// shard count never perturbs shard 0's randomness — or any
	// single-shard result. Replicated specs build R stacks per shard
	// behind a replica.Group: replica 0 keeps the shard's historical
	// stream, later replicas draw their own, so Replicas == 1 never
	// constructs a group and stays bit-identical to the unreplicated
	// store.
	st, err := store.New(spec.Shards, func(i int) (store.Stack, error) {
		shardRNG := rng
		if i > 0 {
			shardRNG = sim.NewRNG(shardSeed(spec.Seed, i))
		}
		if spec.Replicas <= 1 {
			eng, host, err := openStack(i, 0, shardRNG)
			if err != nil {
				return store.Stack{}, err
			}
			return store.Stack{Engine: eng, Dev: host}, nil
		}
		mode, err := replica.ParseMode(spec.ReplMode)
		if err != nil {
			return store.Stack{}, err
		}
		members := make([]replica.Member, spec.Replicas)
		devs := make([]blockdev.Host, spec.Replicas)
		for r := 0; r < spec.Replicas; r++ {
			stackRNG := shardRNG
			if r > 0 {
				stackRNG = sim.NewRNG(replicaSeed(spec.Seed, i, r))
			}
			eng, host, err := openStack(i, r, stackRNG)
			if err != nil {
				return store.Stack{}, err
			}
			members[r] = replica.Member{Engine: eng}
			devs[r] = host
		}
		g, err := replica.New(mode, members)
		if err != nil {
			return store.Stack{}, err
		}
		return store.Stack{Engine: g, Dev: devs[0], Devs: devs}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer st.Close()

	res := &Result{Spec: spec, DatasetBytes: datasetBytes, NumKeys: numKeys}

	// Load phase: ingest all keys in sequential order (§3.2) — each on
	// its owning shard, shards in parallel — then quiesce.
	now, err := st.Load(spec.ValueBytes, numKeys)
	if err == nil {
		now, err = st.FlushAll(0)
	}
	if err != nil {
		if errors.Is(err, extfs.ErrNoSpace) {
			res.OutOfSpace = true
			res.LoadDuration = now
			return res, nil
		}
		return nil, fmt.Errorf("core: load: %w", err)
	}
	res.LoadDuration = now
	devs := st.Devs()
	var loadDev blockdev.Counters
	var loadSSD flash.Stats
	for _, d := range devs {
		loadDev = loadDev.Add(d.Counters())
		// Flash internals exist only on the simulated device; the file
		// backend reports zero flash pages and the neutral WAD of 1.
		if sd, ok := d.(interface{ SSD() *flash.Device }); ok {
			loadSSD = loadSSD.Add(sd.SSD().Stats())
		}
	}
	res.LoadHostBytes = loadDev.BytesWritten
	res.LoadFlashPages = loadSSD.FlashPagesWritten
	res.LoadWAD = loadSSD.WAD()

	// Measurement phase: plots exclude loading, so instrumentation is
	// reset here (iostat counters, SMART deltas, LBA histogram).
	for _, d := range devs {
		d.ResetInstrumentation()
	}
	collector := NewCollector(devs, st, now, spec.SampleEvery)
	baseSeed := rng.Uint64()
	gens, err := workload.NewClientGenerators(workload.Spec{
		NumKeys:      numKeys,
		ValueBytes:   spec.ValueBytes,
		ReadFraction: spec.ReadFraction,
		Dist:         spec.Dist,
		ZipfTheta:    spec.ZipfTheta,
		Skew:         spec.Skew,
	}, baseSeed, spec.Clients)
	if err != nil {
		return nil, err
	}

	deadline := now + spec.Duration
	lat := NewLatencyHistogram()
	clients := make([]*runClient, spec.Clients)
	for i := range clients {
		keys := make([][]byte, spec.QueueDepth)
		for j := range keys {
			keys[j] = make([]byte, kv.KeySize)
		}
		clients[i] = &runClient{
			gen:   gens[i],
			now:   now,
			keys:  keys,
			batch: make([]uint64, 0, spec.QueueDepth),
		}
	}

	// Closed-loop epochs: every live client prepares its next submission
	// (a read wave of up to QueueDepth operations, or one serial op),
	// the store pumps all shards in parallel, and completions come back
	// in global submission order. Reads accumulate into waves whose
	// operations all start at the same virtual time; a write flushes the
	// client's pending wave first and runs serially, keeping the
	// engines' stall and backpressure semantics intact. Latencies are
	// per-operation (submission to completion), re-normalized to paper
	// scale.
	var runErr error
	active := len(clients)
	for active > 0 && runErr == nil {
		submitted := false
		for id, c := range clients {
			if c.done {
				continue
			}
			if c.step(st, &spec, id, deadline) {
				submitted = true
			} else {
				active--
			}
		}
		if !submitted {
			break
		}
		comps := st.Pump()
		for i := range comps {
			comp := &comps[i]
			c := clients[comp.Client]
			if comp.Err != nil {
				if runErr == nil {
					runErr = comp.Err
				}
				// A failed wave leaves the client clock at the submit
				// time (the wave never "lands"); a failed serial op
				// consumed virtual time up to the failure.
				if comp.Wave {
					c.waveErr = true
				} else {
					c.now = comp.Done
				}
				continue
			}
			lat.Record((comp.Done - comp.Submit) / sim.Duration(spec.Scale))
			if comp.Wave {
				if comp.Done > c.waveEnd {
					c.waveEnd = comp.Done
				}
			} else {
				c.now = comp.Done
			}
		}
		for _, c := range clients {
			if !c.submitted {
				continue
			}
			c.submitted = false
			if c.wave {
				if !c.waveErr {
					c.now = c.waveEnd
				}
				c.wave, c.waveErr = false, false
			}
			if runErr == nil && c.dueCheck && collector.Due(c.now) {
				collector.Record(c.now)
			}
		}
	}
	if runErr != nil {
		if !errors.Is(runErr, extfs.ErrNoSpace) {
			return nil, fmt.Errorf("core: workload: %w", runErr)
		}
		res.OutOfSpace = true
	}
	var end sim.Duration
	for _, c := range clients {
		if c.now > end {
			end = c.now
		}
	}
	collector.Record(end)
	res.Latency = lat.Percentiles()

	res.Series = collector.Series()
	res.Steady = res.Series.TailStats(0.25)
	res.ScaledKOps = res.Steady.ThroughputKOps * float64(spec.Scale)
	res.SpaceAmp = SpaceAmplification(res.Steady.DiskUsedBytes, datasetBytes)
	res.DiskUtilPct = 100 * float64(res.Steady.DiskUsedBytes) / float64(scaledCapacity)
	res.LBACDF = blockdev.CombinedWriteCDF(devs, 100)
	res.FracLBAs = blockdev.CombinedFractionLBAsWritten(devs)
	var measDev blockdev.Counters
	for _, d := range devs {
		measDev = measDev.Add(d.Counters())
	}
	res.DiscardOps = measDev.DiscardOps
	res.PagesDiscarded = measDev.PagesDiscarded
	return res, nil
}

// shardSeed derives shard i's independent RNG seed from the experiment
// seed (shard 0 uses the primary stream directly and never calls this).
func shardSeed(seed uint64, shard int) uint64 {
	z := uint64(shard) + 0x6A09E667F3BCC909
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return seed ^ z ^ (z >> 31)
}

// replicaSeed derives replica r of shard i's independent RNG seed
// (replica 0 keeps the shard's stream and never calls this). A
// different additive constant than shardSeed keeps the two stream
// families disjoint.
func replicaSeed(seed uint64, shard, rep int) uint64 {
	z := uint64(shard)<<20 + uint64(rep) + 0xBB67AE8584CAA73B
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return seed ^ z ^ (z >> 31)
}

// runClient is one closed-loop client of the measured phase. Its state
// machine replicates the historical op loop exactly: reads accumulate
// into a wave until QueueDepth; a write (or the deadline) flushes the
// pending wave first, the write itself riding the next epoch.
type runClient struct {
	gen   *workload.Generator
	now   sim.Duration
	keys  [][]byte // per-wave-slot key buffers, reused every epoch
	batch []uint64 // pending read wave (key ids)

	held    workload.Op // write held while its preceding wave flushes
	hasHeld bool

	// Per-epoch submission state.
	submitted bool
	wave      bool
	waveEnd   sim.Duration
	waveErr   bool
	dueCheck  bool

	done bool
}

// step prepares the client's next submission. It returns false once the
// client has passed the deadline with nothing left to flush.
func (c *runClient) step(st *store.Store, spec *Spec, id int, deadline sim.Duration) bool {
	if c.hasHeld {
		c.hasHeld = false
		c.submitSingle(st, spec, id, c.held)
		return true
	}
	for {
		if c.now >= deadline {
			if len(c.batch) > 0 {
				// Final partial wave: no sample check (the run's closing
				// Record covers it), matching the historical loop.
				c.submitWave(st, id, false)
				return true
			}
			c.done = true
			return false
		}
		op := c.gen.Next()
		if op.Kind == workload.OpRead && spec.QueueDepth > 1 {
			c.batch = append(c.batch, op.KeyID)
			if len(c.batch) < spec.QueueDepth {
				continue
			}
			c.submitWave(st, id, true)
			return true
		}
		if len(c.batch) > 0 {
			c.submitWave(st, id, false)
			c.held = op
			c.hasHeld = true
			return true
		}
		c.submitSingle(st, spec, id, op)
		return true
	}
}

func (c *runClient) submitWave(st *store.Store, id int, due bool) {
	for i, keyID := range c.batch {
		kv.AppendKey(c.keys[i], keyID)
		st.Submit(store.Op{
			Kind:   store.Get,
			Client: id,
			Submit: c.now,
			KeyID:  keyID,
			Key:    c.keys[i],
			Wave:   true,
		})
	}
	c.batch = c.batch[:0]
	c.submitted, c.wave, c.waveEnd, c.waveErr = true, true, c.now, false
	c.dueCheck = due
}

func (c *runClient) submitSingle(st *store.Store, spec *Spec, id int, op workload.Op) {
	kv.AppendKey(c.keys[0], op.KeyID)
	sop := store.Op{
		Client: id,
		Submit: c.now,
		KeyID:  op.KeyID,
		Key:    c.keys[0],
	}
	if op.Kind == workload.OpRead {
		sop.Kind = store.Get
	} else {
		sop.Kind = store.Put
		sop.ValueLen = spec.ValueBytes
	}
	st.Submit(sop)
	c.submitted, c.wave = true, false
	c.dueCheck = true
}
