package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestValidateBackend(t *testing.T) {
	s, err := (Spec{}).Validate()
	if err != nil || s.Backend != "sim" {
		t.Fatalf("default backend = %q, err %v; want sim", s.Backend, err)
	}
	for _, bad := range []Spec{
		{Backend: "ramdisk"},
		{Dir: "/tmp/x"},                            // dir without file backend
		{Fsync: "barrier"},                         // fsync without file backend
		{Backend: "file", Fsync: "flush"},          // unknown discipline
		{Backend: "file", Initial: Preconditioned}, // no flash to precondition
		{Backend: "file", PartitionFraction: 0.5},  // no LBA space to reserve
	} {
		if _, err := bad.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", bad)
		}
	}
	s, err = (Spec{Backend: "file", Fsync: "always"}).Validate()
	if err != nil || s.Backend != "file" || s.Fsync != "always" {
		t.Fatalf("file backend spec rejected: %+v, %v", s, err)
	}
}

func TestBackendJSONRoundTrip(t *testing.T) {
	in := Spec{
		Engine:  BTree,
		Backend: "file",
		Dir:     "/tmp/ptsbench-images",
		Fsync:   "none",
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Spec
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Backend != "file" || out.Dir != in.Dir || out.Fsync != "none" {
		t.Fatalf("round trip lost backend fields: %+v", out)
	}
	// The default backend stays off the wire so historical spec files
	// and fixtures are byte-identical.
	data, err = json.Marshal(Spec{Engine: LSM})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"backend", "dir", "fsync"} {
		if jsonHasKey(t, data, key) {
			t.Fatalf("default spec serialized %q: %s", key, data)
		}
	}
}

func jsonHasKey(t *testing.T, data []byte, key string) bool {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	_, ok := m[key]
	return ok
}

// TestRunFileBackend drives a short experiment end to end over real
// backing files: the engine, filesystem and serving layers are the
// same code as the simulated path; only the device authority changes.
func TestRunFileBackend(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Spec{
		Engine:   LSM,
		Scale:    4096,
		Duration: 2 * time.Minute,
		Seed:     7,
		Backend:  "file",
		Dir:      dir,
		Fsync:    "barrier",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutOfSpace {
		t.Fatal("unexpected OOS")
	}
	if res.Steady.ThroughputKOps <= 0 {
		t.Fatal("no throughput measured")
	}
	if res.FracLBAs <= 0 || res.FracLBAs > 1 {
		t.Fatalf("FracLBAs %v out of range", res.FracLBAs)
	}
	// No flash layer: the device-internal metrics stay neutral.
	if res.LoadFlashPages != 0 || res.LoadWAD != 1 {
		t.Fatalf("file backend reported flash internals: pages %d WAD %v",
			res.LoadFlashPages, res.LoadWAD)
	}
	// The shard image is a real file in the caller's directory.
	st, err := os.Stat(filepath.Join(dir, "shard-000.img"))
	if err != nil {
		t.Fatalf("shard image missing: %v", err)
	}
	if st.Size() == 0 {
		t.Fatal("shard image empty")
	}
}

// TestRunFileBackendSharded exercises the per-shard image layout and
// the temp-dir default (no Dir: images must not leak).
func TestRunFileBackendSharded(t *testing.T) {
	res, err := Run(Spec{
		Engine:   LSM,
		Scale:    4096,
		Duration: 2 * time.Minute,
		Seed:     3,
		Shards:   2,
		Backend:  "file",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steady.ThroughputKOps <= 0 {
		t.Fatal("no throughput measured")
	}
}
