package core

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ptsbench/internal/flash"
	"ptsbench/internal/sim"
)

// The golden fixtures pin the exact numeric output of the experiment
// runner. The trimmed-device LSM fixtures were generated from the
// per-page (pre-batching) implementation of the flash, blockdev and
// engine hot paths; the batched implementation must reproduce them bit
// for bit, which is the load-bearing equivalence argument for the
// performance work (batching is a speedup, not a remodel). The
// preconditioned fixture pins the post-change O(blocks) sequential fill
// — the one deliberate behavioural change of the batching work — and
// the B+Tree fixture was regenerated after the deliberate checkpoint
// ancestor-closure fix (checkpoints must rewrite the root-to-leaf spine
// of every dirty page or recovery reads a stale tree), so both guard
// against future drift rather than pre-change equivalence. The Bε-tree
// fixtures pin the buffered engine at QD 1/QD 16 from its initial
// (post-fix) implementation.
//
// Regenerate (only when a deliberate behavioural change is made):
//
//	go test ./internal/core -run TestGoldenResults -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite golden result fixtures")

// goldenResult is the JSON-serializable deep content of a Result: every
// sample of the series, the FTL/device counters embedded in them, the
// derived steady-state stats and the latency percentiles.
type goldenResult struct {
	Series         Series
	Steady         SteadyStats
	SpaceAmp       float64
	DiskUtilPct    float64
	LBACDF         []float64
	FracLBAs       float64
	LoadDuration   sim.Duration
	DatasetBytes   int64
	NumKeys        uint64
	LoadHostBytes  int64
	LoadFlashPages int64
	LoadWAD        float64
	ScaledKOps     float64
	Latency        LatencySummary
}

func goldenOf(r *Result) goldenResult {
	return goldenResult{
		Series:         r.Series,
		Steady:         r.Steady,
		SpaceAmp:       r.SpaceAmp,
		DiskUtilPct:    r.DiskUtilPct,
		LBACDF:         r.LBACDF,
		FracLBAs:       r.FracLBAs,
		LoadDuration:   r.LoadDuration,
		DatasetBytes:   r.DatasetBytes,
		NumKeys:        r.NumKeys,
		LoadHostBytes:  r.LoadHostBytes,
		LoadFlashPages: r.LoadFlashPages,
		LoadWAD:        r.LoadWAD,
		ScaledKOps:     r.ScaledKOps,
		Latency:        r.Latency,
	}
}

func goldenSpecs() map[string]Spec {
	dev := func(p flash.Profile) DeviceSpec {
		return DeviceSpec{
			Profile:       p,
			CapacityBytes: 400 << 30,
			PageSize:      4096,
			PagesPerBlock: 64 << 10,
		}
	}
	// 4×4 internal lanes so that QD 16 genuinely stripes requests over
	// multiple dies — the multi-lane striping arithmetic is exactly what
	// the batched dispatch must reproduce.
	lanes := flash.ProfileSSD1().WithParallelism(4, 4)
	base := Spec{
		Device:       dev(lanes),
		Engine:       LSM,
		Scale:        4096,
		ReadFraction: 0.5,
		Duration:     20 * time.Minute,
		SampleEvery:  30 * time.Second,
		Seed:         42,
	}
	qd16 := base
	qd16.QueueDepth = 16
	cached := base
	cached.Device = dev(flash.ProfileSSD2()) // write-back cache: destage paths
	btree := base
	btree.Engine = BTree
	btree.QueueDepth = 16
	precond := base
	precond.Initial = Preconditioned // pins the O(blocks) sequential fill
	// Bε-tree fixtures at QD 1 and QD 16 (same scheme as the others):
	// they pin the buffered-flush engine bit-identically so future
	// refactors of the flush/checkpoint paths are provably behaviour-
	// preserving for the new engine too.
	betreeQD1 := base
	betreeQD1.Engine = Betree
	betreeQD16 := betreeQD1
	betreeQD16.QueueDepth = 16
	return map[string]Spec{
		"lsm-ssd1-qd1":     base,
		"lsm-ssd1-qd16":    qd16,
		"lsm-ssd2-cache":   cached,
		"btree-ssd1-qd16":  btree,
		"lsm-ssd1-precond": precond,
		"betree-ssd1-qd1":  betreeQD1,
		"betree-ssd1-qd16": betreeQD16,
	}
}

func TestGoldenResults(t *testing.T) {
	for name, spec := range goldenSpecs() {
		t.Run(name, func(t *testing.T) {
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(goldenOf(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden_"+name+".json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading fixture (run with -update-golden to create): %v", err)
			}
			if string(got) != string(want) {
				diffAt := 0
				for diffAt < len(got) && diffAt < len(want) && got[diffAt] == want[diffAt] {
					diffAt++
				}
				lo := diffAt - 120
				if lo < 0 {
					lo = 0
				}
				hiG, hiW := diffAt+120, diffAt+120
				if hiG > len(got) {
					hiG = len(got)
				}
				if hiW > len(want) {
					hiW = len(want)
				}
				t.Fatalf("result diverges from pre-batching golden fixture %s\nfirst difference at byte %d\ngot:  …%s…\nwant: …%s…",
					path, diffAt, got[lo:hiG], want[lo:hiW])
			}
		})
	}
}
