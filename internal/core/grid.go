package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunGrid executes a grid of independent experiment cells across
// goroutines, returning results in cell order. Each cell is a complete
// Run: it builds its own device, filesystem, engine and RNG (seeded
// from its Spec.Seed), and the simulation shares no mutable state
// between runs — so RunGrid(specs, w) returns bit-identical Results to
// calling Run sequentially on each spec, for any worker count. This is
// what makes parameter sweeps (queue depth, dataset size, SSD profile)
// scale with host cores without giving up the harness's determinism
// guarantee.
//
// workers bounds the number of concurrently executing cells; values
// below 1 default to GOMAXPROCS. All cells run to completion even when
// one fails; the first error in cell order is returned alongside the
// partial results (failed cells are nil).
func RunGrid(specs []Spec, workers int) ([]*Result, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				results[i], errs[i] = Run(specs[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			name := specs[i].Name
			if name == "" {
				name = fmt.Sprintf("cell %d", i)
			}
			return results, fmt.Errorf("core: grid %s: %w", name, err)
		}
	}
	return results, nil
}
