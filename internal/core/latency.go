package core

import (
	"fmt"
	"math"
	"sort"

	"ptsbench/internal/sim"
)

// LatencyHistogram records per-operation virtual latencies in
// logarithmically spaced buckets (~4% resolution), cheap enough to feed
// every operation of a run. The paper's companion work (SILK, bLSM)
// shows that LSM throughput numbers hide latency spikes; the histogram
// lets the harness report tail percentiles alongside throughput.
type LatencyHistogram struct {
	counts []uint64
	total  uint64
	min    sim.Duration
	max    sim.Duration
	sum    float64
}

// latBuckets spans 1µs .. ~18h in 1024 log-spaced buckets.
const (
	latBuckets  = 1024
	latMinNanos = 1e3   // 1µs
	latMaxNanos = 65e12 // ~18h
)

// NewLatencyHistogram returns an empty histogram.
func NewLatencyHistogram() *LatencyHistogram {
	return &LatencyHistogram{counts: make([]uint64, latBuckets)}
}

// bucketOf maps a latency to its bucket index.
func bucketOf(d sim.Duration) int {
	ns := float64(d)
	if ns < latMinNanos {
		return 0
	}
	if ns >= latMaxNanos {
		return latBuckets - 1
	}
	frac := math.Log(ns/latMinNanos) / math.Log(latMaxNanos/latMinNanos)
	i := int(frac * float64(latBuckets-1))
	if i < 0 {
		i = 0
	}
	if i >= latBuckets {
		i = latBuckets - 1
	}
	return i
}

// bucketValue returns the representative latency of bucket i (its lower
// bound).
func bucketValue(i int) sim.Duration {
	frac := float64(i) / float64(latBuckets-1)
	ns := latMinNanos * math.Exp(frac*math.Log(latMaxNanos/latMinNanos))
	return sim.Duration(ns)
}

// Record adds one observation.
func (h *LatencyHistogram) Record(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += float64(d)
	if h.total == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() uint64 { return h.total }

// Mean returns the average latency.
func (h *LatencyHistogram) Mean() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return sim.Duration(h.sum / float64(h.total))
}

// Min and Max return the observed extremes.
func (h *LatencyHistogram) Min() sim.Duration { return h.min }

// Max returns the largest observed latency.
func (h *LatencyHistogram) Max() sim.Duration { return h.max }

// Percentile returns the latency at quantile q in (0, 1], e.g. 0.99. The
// result is bucket-resolution (~4%).
func (h *LatencyHistogram) Percentile(q float64) sim.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return bucketValue(i)
		}
	}
	return h.max
}

// Percentiles returns the common reporting set.
func (h *LatencyHistogram) Percentiles() LatencySummary {
	return LatencySummary{
		Count: h.total,
		Mean:  h.Mean(),
		P50:   h.Percentile(0.50),
		P90:   h.Percentile(0.90),
		P99:   h.Percentile(0.99),
		P999:  h.Percentile(0.999),
		Max:   h.max,
	}
}

// Merge adds another histogram's observations into h.
func (h *LatencyHistogram) Merge(o *LatencyHistogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if o.total > 0 {
		if h.total == 0 || o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.total += o.total
	h.sum += o.sum
}

// LatencySummary is a compact percentile report.
type LatencySummary struct {
	Count                     uint64
	Mean, P50, P90, P99, P999 sim.Duration
	Max                       sim.Duration
}

// String renders the summary on one line.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v p99.9=%v max=%v",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}

// SortDurations is a small helper for exact percentiles over short slices
// (tests and reports).
func SortDurations(ds []sim.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
