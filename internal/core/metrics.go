// Package core implements the paper's primary contribution: the
// pitfall-aware benchmarking methodology for persistent tree structures
// on flash SSDs. It defines the metrics of §3.3 (KV throughput, device
// throughput, application- and device-level write amplification, space
// amplification), the steady-state detection guidelines of §4.1 (CUSUM
// and the 3×-capacity rule), and the experiment runner that wires a
// workload, an engine, a filesystem and a simulated SSD together and
// samples everything over virtual time.
package core

import (
	"fmt"
	"math"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// Sample is one instrumentation snapshot. Cumulative counters are
// recorded raw; windowed rates are derived between samples at reporting
// time, which is how the paper suggests computing amplification figures
// (cumulative ratios rather than small-window ratios, §4.1).
type Sample struct {
	T sim.Duration // virtual time since measurement start

	// Cumulative counters since measurement start.
	Ops        int64
	Reads      int64
	UserBytes  int64 // application payload written
	HostWriteB int64 // device-level host writes (iostat)
	HostReadB  int64
	FlashPages int64 // flash-level programs (SMART)
	HostPages  int64 // host pages written (SMART)
	StallTime  sim.Duration

	// Point-in-time gauges.
	DiskUsedBytes int64
	CacheFillPgs  int64
}

// WAA returns the cumulative application-level write amplification at
// this sample: host bytes written per user byte accepted (§2.1.3; the
// measurement includes filesystem overhead exactly as the paper's
// iostat-based metric does).
func (s Sample) WAA() float64 {
	if s.UserBytes == 0 {
		return 0
	}
	return float64(s.HostWriteB) / float64(s.UserBytes)
}

// WAD returns the cumulative device-level write amplification at this
// sample: flash pages programmed per host page written (§2.2.3, measured
// via SMART as in the paper).
func (s Sample) WAD() float64 {
	if s.HostPages == 0 {
		return 1
	}
	return float64(s.FlashPages) / float64(s.HostPages)
}

// EndToEndWA returns WAA*WAD — the paper's end-to-end write
// amplification from application to flash cells (§4.2.ii).
func (s Sample) EndToEndWA() float64 { return s.WAA() * s.WAD() }

// Series extracts windowed rates from consecutive samples.
type Series struct {
	Samples []Sample
}

// Window returns per-interval rates between samples i-1 and i.
func (ser Series) Window(i int) (opsPerSec, writeMBps, readMBps float64) {
	if i <= 0 || i >= len(ser.Samples) {
		return 0, 0, 0
	}
	a, b := ser.Samples[i-1], ser.Samples[i]
	dt := b.T - a.T
	if dt <= 0 {
		return 0, 0, 0
	}
	secs := dt.Seconds()
	opsPerSec = float64(b.Ops-a.Ops) / secs
	writeMBps = float64(b.HostWriteB-a.HostWriteB) / secs / (1 << 20)
	readMBps = float64(b.HostReadB-a.HostReadB) / secs / (1 << 20)
	return opsPerSec, writeMBps, readMBps
}

// ThroughputSeries returns (minutes, kops/s) averaged over windows of
// `window` samples — the paper plots 10-minute averages (§3.3).
func (ser Series) ThroughputSeries(window int) (tMin, kops []float64) {
	if window < 1 {
		window = 1
	}
	for i := window; i < len(ser.Samples); i += window {
		a, b := ser.Samples[i-window], ser.Samples[i]
		dt := (b.T - a.T).Seconds()
		if dt <= 0 {
			continue
		}
		tMin = append(tMin, b.T.Minutes())
		kops = append(kops, float64(b.Ops-a.Ops)/dt/1000)
	}
	return tMin, kops
}

// RateSeries returns windowed device write/read throughput in MB/s.
func (ser Series) RateSeries(window int) (tMin, writeMBps, readMBps []float64) {
	if window < 1 {
		window = 1
	}
	for i := window; i < len(ser.Samples); i += window {
		a, b := ser.Samples[i-window], ser.Samples[i]
		dt := (b.T - a.T).Seconds()
		if dt <= 0 {
			continue
		}
		tMin = append(tMin, b.T.Minutes())
		writeMBps = append(writeMBps, float64(b.HostWriteB-a.HostWriteB)/dt/(1<<20))
		readMBps = append(readMBps, float64(b.HostReadB-a.HostReadB)/dt/(1<<20))
	}
	return tMin, writeMBps, readMBps
}

// WASeries returns cumulative WA-A and WA-D over time.
func (ser Series) WASeries(window int) (tMin, waa, wad []float64) {
	if window < 1 {
		window = 1
	}
	for i := window; i < len(ser.Samples); i += window {
		s := ser.Samples[i]
		tMin = append(tMin, s.T.Minutes())
		waa = append(waa, s.WAA())
		wad = append(wad, s.WAD())
	}
	return tMin, waa, wad
}

// SteadyStats aggregates the tail of the run.
type SteadyStats struct {
	ThroughputKOps float64
	WAA            float64
	WAD            float64
	EndToEndWA     float64
	DiskUsedBytes  int64 // maximum observed (the paper reports max)
}

// TailStats computes steady-state figures over the last `fraction` of the
// run (e.g. 0.25 = final quarter).
func (ser Series) TailStats(fraction float64) SteadyStats {
	n := len(ser.Samples)
	if n < 2 {
		return SteadyStats{}
	}
	start := n - 1 - int(float64(n-1)*fraction)
	if start < 0 {
		start = 0
	}
	if start >= n-1 {
		start = n - 2
	}
	a, b := ser.Samples[start], ser.Samples[n-1]
	dt := (b.T - a.T).Seconds()
	st := SteadyStats{
		WAA:        b.WAA(),
		WAD:        b.WAD(),
		EndToEndWA: b.EndToEndWA(),
	}
	if dt > 0 {
		st.ThroughputKOps = float64(b.Ops-a.Ops) / dt / 1000
	}
	for _, s := range ser.Samples {
		if s.DiskUsedBytes > st.DiskUsedBytes {
			st.DiskUsedBytes = s.DiskUsedBytes
		}
	}
	return st
}

// StatsSource is the slice of an engine (or a sharded store — anything
// aggregating engines) the collector samples.
type StatsSource interface {
	Stats() kv.EngineStats
	DiskUsageBytes() int64
}

// Collector samples a running experiment over one or more devices (the
// per-shard devices of a sharded store sum into one host-visible view).
type Collector struct {
	devs     []blockdev.Host
	src      StatsSource
	baseDev  blockdev.Counters
	baseSSD  flash.Stats
	baseEng  kv.EngineStats
	interval sim.Duration
	next     sim.Duration
	start    sim.Duration
	series   Series
}

// NewCollector snapshots baselines at the measurement start so that the
// load phase is excluded (the paper's plots omit loading).
func NewCollector(devs []blockdev.Host, src StatsSource, start, interval sim.Duration) *Collector {
	c := &Collector{
		devs:     devs,
		src:      src,
		baseEng:  src.Stats(),
		interval: interval,
		start:    start,
		next:     start,
	}
	c.baseDev, c.baseSSD, _ = c.sumDevs()
	c.Record(start) // t=0 sample
	return c
}

func (c *Collector) sumDevs() (blockdev.Counters, flash.Stats, int64) {
	var devC blockdev.Counters
	var ssdC flash.Stats
	var cacheFill int64
	for _, d := range c.devs {
		devC = devC.Add(d.Counters())
		// Flash-internals stats exist only on the simulated device; a
		// file-backed device contributes zeros (real hardware hides its
		// FTL the same way).
		if sd, ok := d.(interface{ SSD() *flash.Device }); ok {
			ssdC = ssdC.Add(sd.SSD().Stats())
			cacheFill += sd.SSD().CacheFillPages()
		}
	}
	return devC, ssdC, cacheFill
}

// Due reports whether a sample is due at time now.
func (c *Collector) Due(now sim.Duration) bool { return now >= c.next }

// Record captures a sample at time now and schedules the next one.
func (c *Collector) Record(now sim.Duration) {
	devSum, ssdSum, cacheFill := c.sumDevs()
	devC := devSum.Sub(c.baseDev)
	ssdC := ssdSum.Sub(c.baseSSD)
	engC := c.src.Stats().Sub(c.baseEng)
	c.series.Samples = append(c.series.Samples, Sample{
		T:             now - c.start,
		Ops:           engC.Puts + engC.Gets,
		Reads:         engC.Gets,
		UserBytes:     engC.UserBytesWritten,
		HostWriteB:    devC.BytesWritten,
		HostReadB:     devC.BytesRead,
		FlashPages:    ssdC.FlashPagesWritten,
		HostPages:     ssdC.HostPagesWritten,
		StallTime:     engC.StallTime,
		DiskUsedBytes: c.src.DiskUsageBytes(),
		CacheFillPgs:  cacheFill,
	})
	for c.next <= now {
		c.next += c.interval
	}
}

// Series returns the collected series.
func (c *Collector) Series() Series { return c.series }

// CUSUM implements Page's cumulative-sum change detector (the paper's
// suggested steady-state test, §4.1): it tracks positive and negative
// deviations from a reference mean and flags a change when either sum
// exceeds the threshold.
type CUSUM struct {
	mean      float64
	slack     float64 // k: allowed drift per step
	threshold float64 // h: detection threshold
	pos, neg  float64
}

// NewCUSUM builds a detector around a reference mean. slack and
// threshold are in the metric's units.
func NewCUSUM(mean, slack, threshold float64) *CUSUM {
	return &CUSUM{mean: mean, slack: slack, threshold: threshold}
}

// Add feeds an observation; it returns true when a change is detected
// (the detector then keeps reporting true until Reset).
func (c *CUSUM) Add(x float64) bool {
	c.pos = math.Max(0, c.pos+x-c.mean-c.slack)
	c.neg = math.Max(0, c.neg+c.mean-x-c.slack)
	return c.pos > c.threshold || c.neg > c.threshold
}

// Reset clears the accumulated sums and re-centres on a new mean.
func (c *CUSUM) Reset(mean float64) {
	c.mean = mean
	c.pos, c.neg = 0, 0
}

// SteadyStateIndex locates the earliest index i such that a CUSUM
// detector calibrated on values[i:] flags no change through the end of
// the series — i.e. the series is statistically flat from i on. A tail
// of at least 8 observations is required, so the verdict is not based on
// a sliver of data. It returns -1 if the series never settles. slackFrac
// and threshFrac scale the detector's slack and threshold by the tail
// mean (e.g. 0.05, 0.5).
func SteadyStateIndex(values []float64, slackFrac, threshFrac float64) int {
	n := len(values)
	if n < 8 {
		return -1
	}
	for i := 0; i+8 <= n; i++ {
		mean := meanOf(values[i:])
		slack := math.Abs(mean) * slackFrac
		thresh := math.Abs(mean) * threshFrac
		if thresh == 0 {
			thresh = 1e-9
		}
		det := NewCUSUM(mean, slack, thresh)
		settled := true
		for _, v := range values[i:] {
			if det.Add(v) {
				settled = false
				break
			}
		}
		if settled {
			return i
		}
	}
	return -1
}

func meanOf(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// SteadyByCapacityRule implements the paper's rule of thumb: consider the
// SSD at steady state once cumulative host writes reach 3× the device
// capacity (§4.1). It returns the first sample index satisfying the rule
// or -1.
func SteadyByCapacityRule(ser Series, capacityBytes int64) int {
	for i, s := range ser.Samples {
		if s.HostWriteB >= 3*capacityBytes {
			return i
		}
	}
	return -1
}

// MeanKOps returns the mean operation rate (KOps/s) over the whole
// measured phase — steadier than the tail quarter when background
// compaction bursts make the tail noisy (queue-depth sweeps use it).
func (ser Series) MeanKOps() float64 {
	n := len(ser.Samples)
	if n == 0 {
		return 0
	}
	last := ser.Samples[n-1]
	if last.T <= 0 {
		return 0
	}
	return float64(last.Ops) / last.T.Seconds() / 1000
}

// SpaceAmplification is disk footprint over logical dataset size
// (§2.1.4).
func SpaceAmplification(diskUsedBytes, datasetBytes int64) float64 {
	if datasetBytes == 0 {
		return 0
	}
	return float64(diskUsedBytes) / float64(datasetBytes)
}

// FormatDuration renders a virtual duration compactly for reports.
func FormatDuration(d sim.Duration) string {
	if d >= 60e9*60 {
		return fmt.Sprintf("%.1fh", d.Hours())
	}
	return fmt.Sprintf("%.0fm", d.Minutes())
}
