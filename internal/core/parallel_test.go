package core

import (
	"reflect"
	"testing"
	"time"

	"ptsbench/internal/workload"
)

// parallelDevice returns the default testbed with a 4x4 internal lane
// array (16-way parallelism).
func parallelDevice() DeviceSpec {
	dev := DefaultDevice()
	dev.Profile = dev.Profile.WithParallelism(4, 4)
	return dev
}

// TestRunDeterminismByteIdentical guards the concurrent grid runner and
// the queue-depth machinery: two identical Run invocations must produce
// deeply identical Results, including every sample, histogram bucket
// and latency percentile.
func TestRunDeterminismByteIdentical(t *testing.T) {
	spec := Spec{
		Device:       parallelDevice(),
		Engine:       LSM,
		Scale:        2048,
		QueueDepth:   8,
		ReadFraction: 0.9,
		Dist:         workload.Uniform,
		Duration:     15 * time.Minute,
		Seed:         9,
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical specs produced different results:\n%+v\nvs\n%+v", a.Steady, b.Steady)
	}
}

// TestRunGridMatchesSequential: the concurrent grid runner must produce
// results bit-identical to sequential Run over the same cells.
func TestRunGridMatchesSequential(t *testing.T) {
	var specs []Spec
	for _, qd := range []int{1, 8} {
		for _, eng := range []EngineKind{LSM, BTree} {
			specs = append(specs, Spec{
				Device:       parallelDevice(),
				Engine:       eng,
				Scale:        2048,
				QueueDepth:   qd,
				ReadFraction: 0.9,
				Dist:         workload.Uniform,
				Duration:     10 * time.Minute,
				Seed:         4,
			})
		}
	}
	grid, err := RunGrid(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		seq, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(grid[i], seq) {
			t.Fatalf("grid cell %d differs from sequential run: %+v vs %+v",
				i, grid[i].Steady, seq.Steady)
		}
	}
}

func TestRunGridErrorPropagates(t *testing.T) {
	specs := []Spec{
		{Engine: LSM, Scale: 2048, Duration: 5 * time.Minute, Seed: 1},
		{Engine: LSM, DatasetFraction: 0.99}, // Validate rejects this
	}
	res, err := RunGrid(specs, 2)
	if err == nil {
		t.Fatal("expected an error from the invalid cell")
	}
	if res[0] == nil {
		t.Fatal("healthy cells should still complete")
	}
	if res[1] != nil {
		t.Fatal("failed cell should be nil")
	}
}

// TestQueueDepthMonotonicThroughput is the acceptance sweep: on a
// read-heavy workload against a 16-lane device, simulated throughput
// must be monotonically non-decreasing in queue depth up to the
// channel x way count, and must not collapse beyond it.
func TestQueueDepthMonotonicThroughput(t *testing.T) {
	qds := []int{1, 4, 16, 32}
	var specs []Spec
	for _, qd := range qds {
		specs = append(specs, Spec{
			Device:       parallelDevice(),
			Engine:       LSM,
			Scale:        2048,
			QueueDepth:   qd,
			ReadFraction: 0.95,
			Dist:         workload.Uniform,
			Duration:     20 * time.Minute,
			Seed:         1,
		})
	}
	results, err := RunGrid(specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var kops []float64
	for _, r := range results {
		if r.OutOfSpace {
			t.Fatal("unexpected OOS in sweep")
		}
		// Mean throughput over the whole measured phase: the tail
		// quarter alone is sensitive to where a compaction burst lands.
		kops = append(kops, r.MeanScaledKOps())
	}
	t.Logf("QD sweep throughput (KOps): qd1=%.1f qd4=%.1f qd16=%.1f qd32=%.1f",
		kops[0], kops[1], kops[2], kops[3])
	// Non-decreasing up to the lane count (16).
	for i := 1; i < 3; i++ {
		if kops[i] < kops[i-1] {
			t.Fatalf("throughput decreased from QD %d (%.2f) to QD %d (%.2f)",
				qds[i-1], kops[i-1], qds[i], kops[i])
		}
	}
	// Parallelism must actually pay off, not just hold steady.
	if kops[2] < 1.5*kops[0] {
		t.Fatalf("QD 16 (%.2f) should comfortably beat QD 1 (%.2f) on 16 lanes",
			kops[2], kops[0])
	}
	// Past saturation throughput may flatten but must not collapse.
	if kops[3] < 0.9*kops[2] {
		t.Fatalf("QD 32 (%.2f) collapsed versus QD 16 (%.2f)", kops[3], kops[2])
	}
}

// TestQueueDepthDefaultIsSerial: QueueDepth 0 validates to 1 and the
// knob reaches the engine configs.
func TestQueueDepthValidate(t *testing.T) {
	s, err := (Spec{}).Validate()
	if err != nil {
		t.Fatal(err)
	}
	if s.QueueDepth != 1 {
		t.Fatalf("default QueueDepth = %d, want 1", s.QueueDepth)
	}
}
