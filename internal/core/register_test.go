package core

// The package under test resolves engines through the driver registry
// and deliberately imports no engine package; its tests exercise real
// engines, so they pull in the registrations explicitly.
import _ "ptsbench/internal/engine/all"
