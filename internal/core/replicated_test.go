package core

// Tests for replicated shard groups at the experiment level: spec
// validation of replica shapes, the R=1 identity guarantee, determinism
// of replicated runs in both modes, and the replicas × modes sweep
// axes.

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestValidateReplicaShapes(t *testing.T) {
	base := Spec{Engine: LSM, Scale: 4096, Duration: 10 * time.Minute}
	cases := []struct {
		name            string
		mutate          func(*Spec)
		wantErrContains string
	}{
		{"negative replicas", func(s *Spec) { s.Replicas = -1 }, "replicas must be >= 1"},
		{"replicas overflow lane budget", func(s *Spec) { s.Replicas = 2048 }, "lane budget"},
		{"shards x replicas overflow lane budget", func(s *Spec) { s.Shards = 512; s.Clients = 512; s.Replicas = 3 }, "lane budget"},
		{"unknown repl mode", func(s *Spec) { s.Replicas = 3; s.ReplMode = "paxos" }, "unknown repl_mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mutate(&s)
			_, err := s.Validate()
			if err == nil {
				t.Fatalf("expected error for %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErrContains) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErrContains)
			}
		})
	}

	// Defaults: 1 replica, no mode; replicated specs default to chain.
	v, err := base.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.Replicas != 1 || v.ReplMode != "" {
		t.Fatalf("defaults: replicas=%d mode=%q, want 1 and empty", v.Replicas, v.ReplMode)
	}
	s := base
	s.Replicas = 3
	if v, err = s.Validate(); err != nil || v.ReplMode != "chain" {
		t.Fatalf("replicated specs should default to chain: %q, %v", v.ReplMode, err)
	}
	// 1024 engine stacks exactly is the budget, not over it.
	s = base
	s.Shards, s.Clients, s.Replicas = 256, 256, 4
	if _, err = s.Validate(); err != nil {
		t.Fatalf("256 shards x 4 replicas should fit the lane budget: %v", err)
	}
}

// TestReplicasOneIsIdentical: an explicit Replicas=1 spec never
// constructs a replica group and reproduces the unreplicated run
// sample for sample.
func TestReplicasOneIsIdentical(t *testing.T) {
	base := Spec{
		Engine:   LSM,
		Scale:    4096,
		Shards:   2,
		Clients:  4,
		Duration: 10 * time.Minute,
		Seed:     3,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withField := base
	withField.Replicas = 1
	repl, err := Run(withField)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Steady != repl.Steady {
		t.Fatalf("steady stats differ: %+v vs %+v", plain.Steady, repl.Steady)
	}
	if plain.Latency != repl.Latency {
		t.Fatalf("latency differs: %+v vs %+v", plain.Latency, repl.Latency)
	}
	if len(plain.Series.Samples) != len(repl.Series.Samples) {
		t.Fatal("sample counts differ")
	}
	for i := range plain.Series.Samples {
		if plain.Series.Samples[i] != repl.Series.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

// TestReplicatedRunDeterminism: replica groups ride the concurrent
// shard workers, but a replicated experiment must replay
// sample-for-sample in both modes.
func TestReplicatedRunDeterminism(t *testing.T) {
	for _, mode := range []string{"chain", "quorum"} {
		t.Run(mode, func(t *testing.T) {
			run := func() *Result {
				res, err := Run(Spec{
					Engine:   LSM,
					Scale:    4096,
					Shards:   2,
					Clients:  4,
					Replicas: 3,
					ReplMode: mode,
					Duration: 10 * time.Minute,
					Seed:     5,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if a.Steady != b.Steady {
				t.Fatalf("steady stats differ: %+v vs %+v", a.Steady, b.Steady)
			}
			if a.Latency != b.Latency {
				t.Fatalf("latency differs: %+v vs %+v", a.Latency, b.Latency)
			}
			for i := range a.Series.Samples {
				if a.Series.Samples[i] != b.Series.Samples[i] {
					t.Fatalf("sample %d differs", i)
				}
			}
		})
	}
}

// TestReplicatedRunBasics: a replicated run completes with plausible
// stats, and replication shows where it must — device write traffic
// and space multiply by ~R while logical throughput does not.
func TestReplicatedRunBasics(t *testing.T) {
	run := func(replicas int) *Result {
		res, err := Run(Spec{
			Engine:   LSM,
			Scale:    4096,
			Shards:   2,
			Clients:  4,
			Replicas: replicas,
			ReplMode: "chain",
			Duration: 10 * time.Minute,
			Seed:     7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OutOfSpace {
			t.Fatal("unexpected OOS")
		}
		return res
	}
	one, three := run(1), run(3)
	if three.Steady.ThroughputKOps <= 0 {
		t.Fatalf("implausible replicated steady stats: %+v", three.Steady)
	}
	// Load-phase host writes are physical: three full copies of the
	// dataset land on three devices.
	if lo := 2 * one.LoadHostBytes; three.LoadHostBytes < lo {
		t.Fatalf("replicated load wrote %d host bytes, want >= %d (~3x the unreplicated %d)",
			three.LoadHostBytes, lo, one.LoadHostBytes)
	}
	// Footprint is per-replica honest: ~3x the space.
	if lo := 2 * one.Steady.DiskUsedBytes; three.Steady.DiskUsedBytes < lo {
		t.Fatalf("replicated footprint %d, want >= %d (~3x the unreplicated %d)",
			three.Steady.DiskUsedBytes, lo, one.Steady.DiskUsedBytes)
	}
	// Logical throughput must NOT be multiplied by R — acks wait for
	// replication, so it can only be at or below the unreplicated rate.
	if three.Steady.ThroughputKOps > one.Steady.ThroughputKOps*1.05 {
		t.Fatalf("replicated throughput %v kops exceeds unreplicated %v kops: stats are counting per-replica ops",
			three.Steady.ThroughputKOps, one.Steady.ThroughputKOps)
	}
}

// TestReplicatedSpecGridExpands: the replicas × modes sweep axes
// expand, run unreplicated cells once (not once per mode), and name
// replicated cells uniquely.
func TestReplicatedSpecGridExpands(t *testing.T) {
	doc := []byte(`{
		"name": "replicated",
		"engines": ["lsm"],
		"scales": [4096],
		"shard_counts": [2],
		"client_counts": [4],
		"replica_counts": [1, 2, 3],
		"repl_modes": ["chain", "quorum"],
		"duration": "10m",
		"seed": 5
	}`)
	exp, err := ParseExperiment(doc)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := exp.Specs(false)
	if err != nil {
		t.Fatal(err)
	}
	// R=1 runs once; R=2 and R=3 run per mode: 1 + 2*2 = 5 cells.
	if len(specs) != 5 {
		t.Fatalf("expected 5 cells, got %d", len(specs))
	}
	seen := map[string]bool{}
	unreplicated := 0
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate cell name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Replicas == 1 {
			unreplicated++
			if strings.Contains(s.Name, "r=") {
				t.Fatalf("unreplicated cell name %q carries the replica suffix", s.Name)
			}
		} else if !strings.Contains(s.Name, "r=") || !strings.Contains(s.Name, s.ReplMode) {
			t.Fatalf("replicated cell name %q missing replicas or mode", s.Name)
		}
	}
	if unreplicated != 1 {
		t.Fatalf("expected exactly 1 unreplicated cell, got %d", unreplicated)
	}
}

// TestReplicatedSpecJSONFields: the replication fields ride the wire
// when set — and stay entirely off it for unreplicated specs, keeping
// historical spec documents byte-identical.
func TestReplicatedSpecJSONFields(t *testing.T) {
	s, err := Spec{Engine: LSM, Shards: 2, Clients: 4, Replicas: 3, ReplMode: "quorum"}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"replicas":3`, `"repl_mode":"quorum"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("wire form %s missing %s", data, want)
		}
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Replicas != 3 || back.ReplMode != "quorum" {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	// Unreplicated specs never mention replication on the wire.
	plain, err := Spec{Engine: LSM}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	data, err = json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "repl") {
		t.Fatalf("unreplicated wire form mentions replication: %s", data)
	}
}
