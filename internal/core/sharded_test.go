package core

// Tests for the sharded serving layer at the experiment level: spec
// validation of shard/client shapes, determinism of concurrent-shard
// runs, and the scaling the shards × clients figure is built on.

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestValidateShardClientShapes(t *testing.T) {
	base := Spec{Engine: LSM, Scale: 4096, Duration: 10 * time.Minute}
	cases := []struct {
		name            string
		mutate          func(*Spec)
		wantErrContains string
	}{
		{"negative shards", func(s *Spec) { s.Shards = -1 }, "shards must be >= 1"},
		{"absurd shards", func(s *Spec) { s.Shards = 4096 }, "lane budget"},
		{"negative clients", func(s *Spec) { s.Clients = -2 }, "clients must be >= 1"},
		{"starved shards", func(s *Spec) { s.Shards = 4; s.Clients = 2 }, "cannot keep 4 shards busy"},
		{"skew below range", func(s *Spec) { s.Skew = -0.1 }, "outside [0,1]"},
		{"skew above range", func(s *Spec) { s.Skew = 1.5 }, "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mutate(&s)
			_, err := s.Validate()
			if err == nil {
				t.Fatalf("expected error for %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErrContains) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErrContains)
			}
		})
	}

	// Defaults: 1 shard, clients follow shards.
	v, err := base.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.Shards != 1 || v.Clients != 1 {
		t.Fatalf("defaults: shards=%d clients=%d, want 1/1", v.Shards, v.Clients)
	}
	s := base
	s.Shards = 4
	if v, err = s.Validate(); err != nil || v.Clients != 4 {
		t.Fatalf("clients should default to shards: %d, %v", v.Clients, err)
	}
}

// TestShardedRunDeterminism: shard workers run on real goroutines, but
// a sharded experiment must replay sample-for-sample.
func TestShardedRunDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(Spec{
			Engine:   LSM,
			Scale:    4096,
			Shards:   4,
			Clients:  8,
			Duration: 10 * time.Minute,
			Seed:     3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steady != b.Steady {
		t.Fatalf("steady stats differ: %+v vs %+v", a.Steady, b.Steady)
	}
	if a.Latency != b.Latency {
		t.Fatalf("latency differs: %+v vs %+v", a.Latency, b.Latency)
	}
	if len(a.Series.Samples) != len(b.Series.Samples) {
		t.Fatal("sample counts differ")
	}
	for i := range a.Series.Samples {
		if a.Series.Samples[i] != b.Series.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

// TestShardedRunBasics: a sharded run produces a well-formed result —
// and a skewed one still completes with plausible stats.
func TestShardedRunBasics(t *testing.T) {
	res, err := Run(Spec{
		Engine:   LSM,
		Scale:    4096,
		Shards:   2,
		Clients:  4,
		Skew:     0.5,
		Duration: 10 * time.Minute,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutOfSpace {
		t.Fatal("unexpected OOS")
	}
	if res.Steady.ThroughputKOps <= 0 || res.Steady.WAA < 1 || res.Steady.WAD < 1 {
		t.Fatalf("implausible steady stats: %+v", res.Steady)
	}
	if len(res.LBACDF) != 101 {
		t.Fatalf("combined CDF length %d", len(res.LBACDF))
	}
	if res.FracLBAs <= 0 || res.FracLBAs > 1 {
		t.Fatalf("FracLBAs %v out of range", res.FracLBAs)
	}
}

// TestShardedThroughputScales: with enough clients, four shards beat
// one — the claim the shards × clients figure quantifies.
func TestShardedThroughputScales(t *testing.T) {
	run := func(shards int) float64 {
		res, err := Run(Spec{
			Engine:   LSM,
			Scale:    4096,
			Shards:   shards,
			Clients:  8,
			Duration: 10 * time.Minute,
			Seed:     11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Steady.ThroughputKOps
	}
	one, four := run(1), run(4)
	if four <= one {
		t.Fatalf("4 shards (%v kops) should out-serve 1 shard (%v kops) with 8 clients", four, one)
	}
}

// TestShardedSpecGridExpands: the shards × clients sweep axes expand,
// skip starved combinations, and name cells uniquely.
func TestShardedSpecGridExpands(t *testing.T) {
	doc := []byte(`{
		"name": "sharded",
		"engines": ["lsm"],
		"scales": [4096],
		"shard_counts": [1, 2, 4],
		"client_counts": [1, 4, 8],
		"duration": "10m",
		"seed": 5
	}`)
	exp, err := ParseExperiment(doc)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := exp.Specs(false)
	if err != nil {
		t.Fatal(err)
	}
	// 3x3 grid minus the starved cells (2,1), (4,1): 7 remain.
	if len(specs) != 7 {
		t.Fatalf("expected 7 feasible cells, got %d", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Clients < s.Shards {
			t.Fatalf("starved cell survived: %d shards, %d clients", s.Shards, s.Clients)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate cell name %q", s.Name)
		}
		seen[s.Name] = true
	}
	// The default serving shape keeps its historical cell name.
	var oneByOne Spec
	for _, s := range specs {
		if s.Shards == 1 && s.Clients == 1 {
			oneByOne = s
		}
	}
	if strings.Contains(oneByOne.Name, "s=") {
		t.Fatalf("1-shard/1-client cell name %q should not carry the serving suffix", oneByOne.Name)
	}
}

// TestShardedSpecJSONFields: the serving-layer fields ride the wire.
func TestShardedSpecJSONFields(t *testing.T) {
	s, err := Spec{Engine: LSM, Shards: 4, Clients: 8, Skew: 0.25}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"shards":4`, `"clients":8`, `"skew":0.25`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("wire form %s missing %s", data, want)
		}
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Shards != 4 || back.Clients != 8 || back.Skew != 0.25 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}
