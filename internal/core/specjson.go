package core

// The JSON codec for Spec and Result, and the declarative Experiment
// file format behind `ptsbench exp`.
//
// A Spec is pure data (the engine is a registry name, its knobs are
// string-valued tunables), so it round-trips through JSON: encode,
// decode, Validate — and you have the identical experiment back. The
// codec keeps the wire format human-friendly (durations as "210m",
// distributions and initial states by name, stock device profiles as
// "ssd1"/"ssd2"/"ssd3" with an optional channels × ways override)
// while Result serializes with Go's default layout everywhere else, so
// existing numeric fixtures are untouched.
//
// An Experiment is a Spec template plus sweep lists (engines, read
// fractions, queue depths, scales); Specs expands the cross product
// into runnable cells, each carrying the per-engine tunables block.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ptsbench/internal/flash"
	"ptsbench/internal/sim"
	"ptsbench/internal/workload"
)

// specJSON is the wire format of Spec.
type specJSON struct {
	Name              string            `json:"name,omitempty"`
	Device            *deviceJSON       `json:"device,omitempty"`
	Scale             int64             `json:"scale,omitempty"`
	Engine            string            `json:"engine,omitempty"`
	DatasetFraction   float64           `json:"dataset_fraction,omitempty"`
	ValueBytes        int               `json:"value_bytes,omitempty"`
	ReadFraction      float64           `json:"read_fraction,omitempty"`
	Dist              string            `json:"dist,omitempty"`
	ZipfTheta         float64           `json:"zipf_theta,omitempty"`
	Initial           string            `json:"initial,omitempty"`
	PartitionFraction float64           `json:"partition_fraction,omitempty"`
	QueueDepth        int               `json:"queue_depth,omitempty"`
	Shards            int               `json:"shards,omitempty"`
	Clients           int               `json:"clients,omitempty"`
	Skew              float64           `json:"skew,omitempty"`
	Replicas          int               `json:"replicas,omitempty"`
	ReplMode          string            `json:"repl_mode,omitempty"`
	Duration          string            `json:"duration,omitempty"`
	SampleEvery       string            `json:"sample_every,omitempty"`
	Seed              uint64            `json:"seed,omitempty"`
	Tunables          map[string]string `json:"tunables,omitempty"`
	Backend           string            `json:"backend,omitempty"`
	Dir               string            `json:"dir,omitempty"`
	Fsync             string            `json:"fsync,omitempty"`
}

// deviceJSON is the wire format of DeviceSpec. Stock profiles are
// referenced by short name; anything custom is embedded in full under
// profile_spec.
type deviceJSON struct {
	Profile       string         `json:"profile,omitempty"`
	ProfileSpec   *flash.Profile `json:"profile_spec,omitempty"`
	Channels      int            `json:"channels,omitempty"`
	Ways          int            `json:"ways,omitempty"`
	CapacityBytes int64          `json:"capacity_bytes,omitempty"`
	PageSize      int            `json:"page_size,omitempty"`
	PagesPerBlock int            `json:"pages_per_block,omitempty"`
}

// stockProfile resolves the short profile names of the paper's three
// SSD types.
func stockProfile(name string) (flash.Profile, bool) {
	switch name {
	case "ssd1":
		return flash.ProfileSSD1(), true
	case "ssd2":
		return flash.ProfileSSD2(), true
	case "ssd3":
		return flash.ProfileSSD3(), true
	default:
		return flash.Profile{}, false
	}
}

// stockNameOf recognizes a profile as a stock one modulo its
// channels × ways geometry.
func stockNameOf(p flash.Profile) (string, bool) {
	base := p
	base.Channels, base.Ways = 0, 0
	for _, name := range []string{"ssd1", "ssd2", "ssd3"} {
		stock, _ := stockProfile(name)
		if base == stock {
			return name, true
		}
	}
	return "", false
}

func marshalDevice(d DeviceSpec) *deviceJSON {
	if d == (DeviceSpec{}) {
		return nil
	}
	dj := &deviceJSON{
		CapacityBytes: d.CapacityBytes,
		PageSize:      d.PageSize,
		PagesPerBlock: d.PagesPerBlock,
	}
	if name, ok := stockNameOf(d.Profile); ok {
		dj.Profile = name
		dj.Channels = d.Profile.Channels
		dj.Ways = d.Profile.Ways
	} else if d.Profile != (flash.Profile{}) {
		p := d.Profile
		dj.ProfileSpec = &p
	}
	return dj
}

func unmarshalDevice(dj *deviceJSON) (DeviceSpec, error) {
	if dj == nil {
		return DeviceSpec{}, nil
	}
	d := DeviceSpec{
		CapacityBytes: dj.CapacityBytes,
		PageSize:      dj.PageSize,
		PagesPerBlock: dj.PagesPerBlock,
	}
	switch {
	case dj.ProfileSpec != nil:
		d.Profile = *dj.ProfileSpec
	case dj.Profile != "":
		p, ok := stockProfile(dj.Profile)
		if !ok {
			return d, fmt.Errorf("core: unknown device profile %q (have ssd1, ssd2, ssd3)", dj.Profile)
		}
		d.Profile = p
	}
	// The channels/ways override applies to stock and custom profiles
	// alike (taking precedence over a geometry embedded in
	// profile_spec), so a spec can give any device internal lanes.
	if dj.Channels > 0 || dj.Ways > 0 {
		d.Profile = d.Profile.WithParallelism(dj.Channels, dj.Ways)
	}
	return d, nil
}

// MarshalJSON implements json.Marshaler with the human-friendly wire
// format (durations as strings, names instead of enum ordinals).
func (s Spec) MarshalJSON() ([]byte, error) {
	sj := specJSON{
		Name:              s.Name,
		Device:            marshalDevice(s.Device),
		Scale:             s.Scale,
		Engine:            string(s.Engine),
		DatasetFraction:   s.DatasetFraction,
		ValueBytes:        s.ValueBytes,
		ReadFraction:      s.ReadFraction,
		ZipfTheta:         s.ZipfTheta,
		PartitionFraction: s.PartitionFraction,
		QueueDepth:        s.QueueDepth,
		Shards:            s.Shards,
		Clients:           s.Clients,
		Skew:              s.Skew,
		Seed:              s.Seed,
		Tunables:          s.Tunables,
		Dir:               s.Dir,
		Fsync:             s.Fsync,
	}
	if s.Backend != "" && s.Backend != "sim" {
		sj.Backend = s.Backend
	}
	// Replication fields serialize only when they mean something, so
	// every pre-replication spec document stays byte-identical.
	if s.Replicas > 1 {
		sj.Replicas = s.Replicas
	}
	if s.ReplMode != "" && s.Replicas > 1 {
		sj.ReplMode = s.ReplMode
	}
	if s.Dist != workload.Uniform {
		sj.Dist = s.Dist.String()
	}
	if s.Initial != Trimmed {
		sj.Initial = s.Initial.String()
	}
	if s.Duration != 0 {
		sj.Duration = time.Duration(s.Duration).String()
	}
	if s.SampleEvery != 0 {
		sj.SampleEvery = time.Duration(s.SampleEvery).String()
	}
	return json.Marshal(sj)
}

// UnmarshalJSON implements json.Unmarshaler. Unknown fields are errors:
// a typo in a saved experiment should fail loudly, not silently run the
// default it was trying to override.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var sj specJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sj); err != nil {
		return fmt.Errorf("core: parsing spec: %w", err)
	}
	out := Spec{
		Name:              sj.Name,
		Scale:             sj.Scale,
		Engine:            EngineKind(sj.Engine),
		DatasetFraction:   sj.DatasetFraction,
		ValueBytes:        sj.ValueBytes,
		ReadFraction:      sj.ReadFraction,
		ZipfTheta:         sj.ZipfTheta,
		PartitionFraction: sj.PartitionFraction,
		QueueDepth:        sj.QueueDepth,
		Shards:            sj.Shards,
		Clients:           sj.Clients,
		Skew:              sj.Skew,
		Replicas:          sj.Replicas,
		ReplMode:          sj.ReplMode,
		Seed:              sj.Seed,
		Tunables:          sj.Tunables,
		Backend:           sj.Backend,
		Dir:               sj.Dir,
		Fsync:             sj.Fsync,
	}
	var err error
	if out.Device, err = unmarshalDevice(sj.Device); err != nil {
		return err
	}
	if sj.Dist != "" {
		if out.Dist, err = workload.ParseDist(sj.Dist); err != nil {
			return err
		}
	}
	if sj.Initial != "" {
		if out.Initial, err = ParseInitialState(sj.Initial); err != nil {
			return err
		}
	}
	if sj.Duration != "" {
		d, err := time.ParseDuration(sj.Duration)
		if err != nil {
			return fmt.Errorf("core: parsing spec duration: %w", err)
		}
		out.Duration = sim.Duration(d)
	}
	if sj.SampleEvery != "" {
		d, err := time.ParseDuration(sj.SampleEvery)
		if err != nil {
			return fmt.Errorf("core: parsing spec sample_every: %w", err)
		}
		out.SampleEvery = sim.Duration(d)
	}
	*s = out
	return nil
}

// WriteResultsJSON writes results as one indented JSON array; Spec's
// codec keeps the embedded specs declarative, so a result file can be
// re-run by extracting its specs.
func WriteResultsJSON(w io.Writer, results []*Result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadResultsJSON parses a WriteResultsJSON file.
func ReadResultsJSON(r io.Reader) ([]*Result, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var results []*Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, err
	}
	return results, nil
}

// Experiment is the declarative description of an experiment grid: a
// Spec template plus sweep lists. It is what a `ptsbench exp` spec file
// parses into.
type Experiment struct {
	// Name labels the run and prefixes every cell name.
	Name string
	// Base holds the per-cell template (device, dataset, workload,
	// durations, seed). Its Engine/ReadFraction/QueueDepth/Scale are
	// the fallback when the corresponding sweep list is empty.
	Base Spec
	// Engines, ReadFractions, QueueDepths, Scales, ShardCounts,
	// ClientCounts, ReplicaCounts and ReplModes are the sweep axes;
	// Specs expands their cross product. Cells whose client count
	// cannot keep their shard count busy (clients < shards) are skipped
	// rather than rejected, so a rectangular shards × clients grid
	// stays usable; likewise unreplicated cells run once, not once per
	// replication mode.
	Engines       []EngineKind
	ReadFractions []float64
	QueueDepths   []int
	Scales        []int64
	ShardCounts   []int
	ClientCounts  []int
	ReplicaCounts []int
	ReplModes     []string
	// Tunables are per-engine knob overrides: cells of engine E run
	// with Tunables[E].
	Tunables map[EngineKind]map[string]string
}

// experimentJSON is the wire format of Experiment: the spec fields
// flattened to the top level, plural sweep lists beside their singular
// fallbacks, and tunables namespaced per engine.
type experimentJSON struct {
	Name              string                       `json:"name,omitempty"`
	Device            *deviceJSON                  `json:"device,omitempty"`
	Engines           []string                     `json:"engines,omitempty"`
	Engine            string                       `json:"engine,omitempty"`
	Scales            []int64                      `json:"scales,omitempty"`
	Scale             int64                        `json:"scale,omitempty"`
	DatasetFraction   float64                      `json:"dataset_fraction,omitempty"`
	ValueBytes        int                          `json:"value_bytes,omitempty"`
	ReadFractions     []float64                    `json:"read_fractions,omitempty"`
	ReadFraction      float64                      `json:"read_fraction,omitempty"`
	QueueDepths       []int                        `json:"queue_depths,omitempty"`
	QueueDepth        int                          `json:"queue_depth,omitempty"`
	ShardCounts       []int                        `json:"shard_counts,omitempty"`
	Shards            int                          `json:"shards,omitempty"`
	ClientCounts      []int                        `json:"client_counts,omitempty"`
	Clients           int                          `json:"clients,omitempty"`
	ReplicaCounts     []int                        `json:"replica_counts,omitempty"`
	Replicas          int                          `json:"replicas,omitempty"`
	ReplModes         []string                     `json:"repl_modes,omitempty"`
	ReplMode          string                       `json:"repl_mode,omitempty"`
	Skew              float64                      `json:"skew,omitempty"`
	Dist              string                       `json:"dist,omitempty"`
	ZipfTheta         float64                      `json:"zipf_theta,omitempty"`
	Initial           string                       `json:"initial,omitempty"`
	PartitionFraction float64                      `json:"partition_fraction,omitempty"`
	Duration          string                       `json:"duration,omitempty"`
	SampleEvery       string                       `json:"sample_every,omitempty"`
	Seed              uint64                       `json:"seed,omitempty"`
	Tunables          map[string]map[string]string `json:"tunables,omitempty"`
	Backend           string                       `json:"backend,omitempty"`
	Dir               string                       `json:"dir,omitempty"`
	Fsync             string                       `json:"fsync,omitempty"`
}

// ParseExperiment parses a declarative experiment file. Unknown fields,
// unknown engines, distributions or initial states are errors.
func ParseExperiment(data []byte) (*Experiment, error) {
	var ej experimentJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ej); err != nil {
		return nil, fmt.Errorf("core: parsing experiment: %w", err)
	}
	e := &Experiment{
		Name: ej.Name,
		Base: Spec{
			Scale:             ej.Scale,
			Engine:            EngineKind(ej.Engine),
			DatasetFraction:   ej.DatasetFraction,
			ValueBytes:        ej.ValueBytes,
			ReadFraction:      ej.ReadFraction,
			ZipfTheta:         ej.ZipfTheta,
			PartitionFraction: ej.PartitionFraction,
			QueueDepth:        ej.QueueDepth,
			Shards:            ej.Shards,
			Clients:           ej.Clients,
			Replicas:          ej.Replicas,
			ReplMode:          ej.ReplMode,
			Skew:              ej.Skew,
			Seed:              ej.Seed,
			Backend:           ej.Backend,
			Dir:               ej.Dir,
			Fsync:             ej.Fsync,
		},
	}
	var err error
	if e.Base.Device, err = unmarshalDevice(ej.Device); err != nil {
		return nil, err
	}
	if ej.Dist != "" {
		if e.Base.Dist, err = workload.ParseDist(ej.Dist); err != nil {
			return nil, err
		}
	}
	if ej.Initial != "" {
		if e.Base.Initial, err = ParseInitialState(ej.Initial); err != nil {
			return nil, err
		}
	}
	if ej.Duration != "" {
		d, err := time.ParseDuration(ej.Duration)
		if err != nil {
			return nil, fmt.Errorf("core: parsing experiment duration: %w", err)
		}
		e.Base.Duration = sim.Duration(d)
	}
	if ej.SampleEvery != "" {
		d, err := time.ParseDuration(ej.SampleEvery)
		if err != nil {
			return nil, fmt.Errorf("core: parsing experiment sample_every: %w", err)
		}
		e.Base.SampleEvery = sim.Duration(d)
	}
	for _, name := range ej.Engines {
		k, err := ParseEngine(name)
		if err != nil {
			return nil, err
		}
		e.Engines = append(e.Engines, k)
	}
	if len(ej.Tunables) > 0 {
		e.Tunables = make(map[EngineKind]map[string]string, len(ej.Tunables))
		for name, t := range ej.Tunables {
			k, err := ParseEngine(name)
			if err != nil {
				return nil, fmt.Errorf("core: tunables: %w", err)
			}
			e.Tunables[k] = t
		}
	}
	e.ReadFractions = ej.ReadFractions
	e.QueueDepths = ej.QueueDepths
	e.Scales = ej.Scales
	e.ShardCounts = ej.ShardCounts
	e.ClientCounts = ej.ClientCounts
	e.ReplicaCounts = ej.ReplicaCounts
	e.ReplModes = ej.ReplModes
	return e, nil
}

// Specs expands the experiment's sweep cross product into validated,
// runnable cells (engines × read fractions × queue depths × scales).
// Empty sweep lists fall back to the Base value for that axis. With
// quick set, each cell's measured phase is shortened the way the
// figures' -quick mode shortens runs (capped at 60 virtual minutes,
// shorter runs halved).
func (e *Experiment) Specs(quick bool) ([]Spec, error) {
	engines := e.Engines
	if len(engines) == 0 {
		engines = []EngineKind{e.Base.Engine}
	}
	readFracs := e.ReadFractions
	if len(readFracs) == 0 {
		readFracs = []float64{e.Base.ReadFraction}
	}
	queueDepths := e.QueueDepths
	if len(queueDepths) == 0 {
		queueDepths = []int{e.Base.QueueDepth}
	}
	scales := e.Scales
	if len(scales) == 0 {
		scales = []int64{e.Base.Scale}
	}
	shardCounts := e.ShardCounts
	if len(shardCounts) == 0 {
		shardCounts = []int{e.Base.Shards}
	}
	clientCounts := e.ClientCounts
	if len(clientCounts) == 0 {
		clientCounts = []int{e.Base.Clients}
	}
	replicaCounts := e.ReplicaCounts
	if len(replicaCounts) == 0 {
		replicaCounts = []int{e.Base.Replicas}
	}
	replModes := e.ReplModes
	if len(replModes) == 0 {
		replModes = []string{e.Base.ReplMode}
	}
	name := e.Name
	if name == "" {
		name = "exp"
	}
	var specs []Spec
	for _, eng := range engines {
		for _, rf := range readFracs {
			for _, qd := range queueDepths {
				for _, scale := range scales {
					for _, shards := range shardCounts {
						for _, clients := range clientCounts {
							// An explicit client count below the shard
							// count can't keep every shard busy; drop
							// the cell so rectangular grids expand
							// cleanly (clients == 0 means one client
							// per shard and is always feasible).
							if clients != 0 && clients < shards {
								continue
							}
							for mi, replMode := range replModes {
								for _, replicas := range replicaCounts {
									// An unreplicated cell has no mode:
									// run it once, under the first mode
									// only, so a replicas × modes grid
									// doesn't duplicate its R=1 column.
									if replicas <= 1 && mi > 0 {
										continue
									}
									spec := e.Base
									spec.Engine = eng
									spec.ReadFraction = rf
									spec.QueueDepth = qd
									spec.Scale = scale
									spec.Shards = shards
									spec.Clients = clients
									spec.Replicas = replicas
									spec.ReplMode = replMode
									if replicas <= 1 {
										spec.ReplMode = ""
									}
									if t := e.Tunables[eng]; len(t) > 0 {
										// Clone so cells never share a mutable map.
										spec.Tunables = make(map[string]string, len(t))
										for k, v := range t {
											spec.Tunables[k] = v
										}
									}
									spec, err := spec.Validate()
									if err != nil {
										return nil, err
									}
									spec.Name = fmt.Sprintf("%s %s rf=%g qd=%d x%d",
										name, eng, spec.ReadFraction, spec.QueueDepth, spec.Scale)
									if spec.Shards != 1 || spec.Clients != 1 {
										// Only non-default serving layouts carry
										// the suffix, so historical cell names
										// are untouched.
										spec.Name += fmt.Sprintf(" s=%d c=%d", spec.Shards, spec.Clients)
									}
									if spec.Replicas > 1 {
										spec.Name += fmt.Sprintf(" r=%d %s", spec.Replicas, spec.ReplMode)
									}
									if quick {
										if spec.Duration > 60*time.Minute {
											spec.Duration = 60 * time.Minute
										} else {
											spec.Duration /= 2
										}
									}
									specs = append(specs, spec)
								}
							}
						}
					}
				}
			}
		}
	}
	return specs, nil
}
