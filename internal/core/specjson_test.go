package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"ptsbench/internal/flash"
	"ptsbench/internal/workload"
)

// randomSpec builds a valid spec from randomly chosen legal parts.
func randomSpec(r *rand.Rand) Spec {
	pick := func(n int) int { return r.Intn(n) }
	s := Spec{
		Name:              []string{"", "cell-a", "päper scale"}[pick(3)],
		Engine:            []EngineKind{LSM, BTree, Betree, ""}[pick(4)],
		Scale:             []int64{0, 128, 4096}[pick(3)],
		DatasetFraction:   []float64{0, 0.25, 0.5}[pick(3)],
		ValueBytes:        []int{0, 128, 4000}[pick(3)],
		ReadFraction:      []float64{0, 0.5, 0.95, 1}[pick(4)],
		Dist:              []workload.Dist{workload.Uniform, workload.Zipfian, workload.SequentialDist}[pick(3)],
		Initial:           []InitialState{Trimmed, Preconditioned}[pick(2)],
		PartitionFraction: []float64{0, 0.75, 1}[pick(3)],
		QueueDepth:        []int{0, 1, 16}[pick(3)],
		Shards:            []int{0, 1, 4}[pick(3)],
		Skew:              []float64{0, 0.3}[pick(2)],
		Duration:          []time.Duration{0, 20 * time.Minute, 210 * time.Minute}[pick(3)],
		SampleEvery:       []time.Duration{0, 10 * time.Second, 30 * time.Second}[pick(3)],
		Seed:              uint64(pick(100)),
	}
	if s.Dist == workload.Zipfian {
		s.ZipfTheta = []float64{0, 0.8, 0.99}[pick(3)]
	}
	if s.Shards > 0 && pick(2) == 0 {
		s.Clients = s.Shards * []int{1, 3}[pick(2)]
	}
	switch pick(4) {
	case 0:
		// zero device; Validate fills the default
	case 1:
		s.Device = DefaultDevice()
	case 2:
		d := DefaultDevice()
		d.Profile = flash.ProfileSSD2().WithParallelism(4, 4)
		s.Device = d
	case 3:
		// custom profile: must survive via profile_spec
		d := DefaultDevice()
		d.Profile.WriteBW /= 2
		d.Profile.Name = "custom-half-write"
		s.Device = d
	}
	switch s.Engine {
	case Betree:
		if pick(2) == 0 {
			s.Tunables = map[string]string{"epsilon": "0.6"}
		}
	case LSM:
		if pick(2) == 0 {
			s.Tunables = map[string]string{"memtable_bytes": "131072", "sync_wal": "false"}
		}
	}
	return s
}

// TestSpecJSONRoundTrip is the codec's property test: for many random
// valid specs, encode → decode → Validate must reproduce the validated
// original exactly.
func TestSpecJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		orig, err := randomSpec(r).Validate()
		if err != nil {
			t.Fatalf("random spec invalid: %v", err)
		}
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var decoded Spec
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		got, err := decoded.Validate()
		if err != nil {
			t.Fatalf("validate after round trip: %v\njson: %s", err, data)
		}
		if !reflect.DeepEqual(orig, got) {
			t.Fatalf("round trip diverged\norig:    %+v\ndecoded: %+v\njson: %s", orig, got, data)
		}
	}
}

// TestCustomProfileSurvivesValidate: a fully custom device profile —
// even one without a cosmetic Name — must never be silently replaced
// by the SSD1 default.
func TestCustomProfileSurvivesValidate(t *testing.T) {
	var s Spec
	doc := []byte(`{"device": {"profile_spec": {
		"ReadFixed": 90000, "WriteFixed": 25000,
		"ReadBW": 1000000000, "WriteBW": 500000000,
		"InternalReadBW": 1000000000, "InternalWriteBW": 500000000,
		"EraseTime": 2000000, "HardwareOP": 0.25
	}}}`)
	if err := json.Unmarshal(doc, &s); err != nil {
		t.Fatal(err)
	}
	v, err := s.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.Device.Profile.WriteBW != 500000000 {
		t.Fatalf("custom profile replaced by default: %+v", v.Device.Profile)
	}
	if v.Device.CapacityBytes != DefaultDevice().CapacityBytes {
		t.Fatal("unset capacity should still default")
	}
}

// TestChannelsOverrideAppliesToCustomProfile: the channels/ways fields
// must give a custom profile_spec internal lanes too, not only stock
// profiles.
func TestChannelsOverrideAppliesToCustomProfile(t *testing.T) {
	var s Spec
	doc := []byte(`{"device": {
		"profile_spec": {"Name": "custom", "ReadBW": 1000000000, "WriteBW": 500000000},
		"channels": 4, "ways": 2
	}}`)
	if err := json.Unmarshal(doc, &s); err != nil {
		t.Fatal(err)
	}
	if got := s.Device.Profile.ParallelLanes(); got != 8 {
		t.Fatalf("ParallelLanes = %d, want 8 (channels*ways override dropped)", got)
	}
}

func TestSpecJSONRejectsUnknownFields(t *testing.T) {
	var s Spec
	err := json.Unmarshal([]byte(`{"engine":"lsm","quantum_mode":true}`), &s)
	if err == nil || !strings.Contains(err.Error(), "quantum_mode") {
		t.Fatalf("unknown field should error with the field name: %v", err)
	}
}

// TestSpecRejectsUnknownTunables pins the fail-fast diagnostics: a spec
// with a tunable key the engine doesn't have must fail Validate (not a
// 20-minute load phase later), naming the engine.
func TestSpecRejectsUnknownTunables(t *testing.T) {
	var s Spec
	if err := json.Unmarshal([]byte(`{"engine":"betree","tunables":{"bogus_knob":"1"}}`), &s); err != nil {
		t.Fatal(err)
	}
	_, err := s.Validate()
	if err == nil {
		t.Fatal("unknown tunable should fail Validate")
	}
	if !strings.Contains(err.Error(), "betree") || !strings.Contains(err.Error(), "bogus_knob") {
		t.Fatalf("error should name the engine and the knob: %v", err)
	}
	// A knob from the wrong engine's namespace is just as unknown.
	s = Spec{Engine: BTree, Tunables: map[string]string{"epsilon": "0.5"}}
	if _, err := s.Validate(); err == nil || !strings.Contains(err.Error(), "btree") {
		t.Fatalf("cross-engine knob should fail naming btree: %v", err)
	}
	// Malformed values fail too, naming engine and value.
	s = Spec{Engine: Betree, Tunables: map[string]string{"epsilon": "a-lot"}}
	if _, err := s.Validate(); err == nil || !strings.Contains(err.Error(), "betree") {
		t.Fatalf("malformed value should fail naming the engine: %v", err)
	}
}

func TestSpecValidateFailsFast(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"read fraction high", Spec{ReadFraction: 1.5}, "read fraction"},
		{"read fraction negative", Spec{ReadFraction: -0.1}, "read fraction"},
		{"unknown dist", Spec{Dist: workload.Dist(42)}, "distribution"},
		{"negative zipf", Spec{ZipfTheta: -1}, "ZipfTheta"},
		{"zipf theta too large", Spec{Dist: workload.Zipfian, ZipfTheta: 1.2}, "ZipfTheta"},
		{"unknown engine", Spec{Engine: "quantum-tree"}, "quantum-tree"},
	}
	for _, tc := range cases {
		_, err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: Validate() err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestParseExperimentExpandsGrid(t *testing.T) {
	doc := []byte(`{
		"name": "grid",
		"engines": ["lsm", "betree"],
		"read_fractions": [0.05, 0.95],
		"queue_depths": [1, 16],
		"scales": [2048],
		"duration": "20m",
		"sample_every": "30s",
		"seed": 9,
		"tunables": {"betree": {"epsilon": "0.4"}}
	}`)
	exp, err := ParseExperiment(doc)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := exp.Specs(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("expected 2x2x2x1 = 8 cells, got %d", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate cell name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Duration != 20*time.Minute || s.Seed != 9 || s.Scale != 2048 {
			t.Fatalf("base fields not applied: %+v", s)
		}
		switch s.Engine {
		case Betree:
			if s.Tunables["epsilon"] != "0.4" {
				t.Fatalf("betree cell missing its tunables: %+v", s.Tunables)
			}
		case LSM:
			if len(s.Tunables) != 0 {
				t.Fatalf("lsm cell should have no tunables: %+v", s.Tunables)
			}
		}
	}
	// Tunable maps must not be shared between cells.
	var betreeCells []Spec
	for _, s := range specs {
		if s.Engine == Betree {
			betreeCells = append(betreeCells, s)
		}
	}
	betreeCells[0].Tunables["epsilon"] = "0.9"
	if betreeCells[1].Tunables["epsilon"] != "0.4" {
		t.Fatal("cells share one tunables map")
	}
	// Quick mode shortens every cell.
	quick, err := exp.Specs(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range quick {
		if s.Duration != 10*time.Minute {
			t.Fatalf("quick should halve 20m to 10m, got %v", s.Duration)
		}
	}
}

func TestParseExperimentErrors(t *testing.T) {
	if _, err := ParseExperiment([]byte(`{"engnes": ["lsm"]}`)); err == nil {
		t.Fatal("typo'd field should error")
	}
	if _, err := ParseExperiment([]byte(`{"engines": ["fractal-tree"]}`)); err == nil {
		t.Fatal("unknown engine should error")
	}
	if _, err := ParseExperiment([]byte(`{"tunables": {"fractal-tree": {"x": "1"}}}`)); err == nil {
		t.Fatal("tunables for an unknown engine should error")
	}
	if _, err := ParseExperiment([]byte(`{"duration": "three hours"}`)); err == nil {
		t.Fatal("malformed duration should error")
	}
	exp, err := ParseExperiment([]byte(`{"read_fractions": [2.0], "scale": 2048}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Specs(false); err == nil {
		t.Fatal("expansion should fail validation on a bad read fraction")
	}
}

// TestResultsJSONRoundTrip: a Result file (specs embedded) must decode
// back to the same steady-state numbers and re-runnable specs.
func TestResultsJSONRoundTrip(t *testing.T) {
	res, err := Run(Spec{
		Engine:   BTree,
		Scale:    4096,
		Duration: 8 * time.Minute,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResultsJSON(&buf, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadResultsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("expected 1 result, got %d", len(decoded))
	}
	if decoded[0].Steady != res.Steady {
		t.Fatalf("steady stats diverged: %+v vs %+v", decoded[0].Steady, res.Steady)
	}
	spec, err := decoded[0].Spec.Validate()
	if err != nil {
		t.Fatalf("embedded spec no longer validates: %v", err)
	}
	if !reflect.DeepEqual(spec, res.Spec) {
		t.Fatalf("embedded spec diverged:\n%+v\nvs\n%+v", spec, res.Spec)
	}
}
