// Package costmodel implements the paper's back-of-the-envelope storage
// provisioning analysis (§4.5, §4.6): given the measured per-drive
// throughput and capacity of each configuration, compute how many drives
// a deployment needs for a target dataset size and aggregate throughput,
// and map out which configuration is cheaper across a grid — the paper's
// Fig 6c and Fig 8 heatmaps.
package costmodel

import (
	"fmt"
	"math"
	"strings"
)

// Option is one deployable configuration (a PTS on a drive model, with
// its measured steady-state characteristics).
type Option struct {
	Name string
	// ThroughputKOps is the measured per-instance steady throughput.
	ThroughputKOps float64
	// MaxDatasetBytes is the largest dataset one drive can host: drive
	// capacity divided by the configuration's space amplification (and
	// reduced by any capacity given up to software over-provisioning).
	MaxDatasetBytes float64
}

// DrivesNeeded returns the number of drives option o needs to host
// datasetBytes at targetKOps, following the paper's assumptions: one PTS
// instance per drive, aggregate throughput additive.
func (o Option) DrivesNeeded(datasetBytes, targetKOps float64) int {
	if o.MaxDatasetBytes <= 0 || o.ThroughputKOps <= 0 {
		return math.MaxInt32
	}
	forCapacity := math.Ceil(datasetBytes / o.MaxDatasetBytes)
	forThroughput := math.Ceil(targetKOps / o.ThroughputKOps)
	n := forCapacity
	if forThroughput > n {
		n = forThroughput
	}
	if n < 1 {
		n = 1
	}
	return int(n)
}

// Cell is one heatmap entry.
type Cell struct {
	DatasetBytes float64
	TargetKOps   float64
	Winner       string // option name, or "tie"
	Drives       []int  // per option, same order as the Options slice
}

// Heatmap compares options over a grid.
type Heatmap struct {
	Options  []Option
	Datasets []float64 // bytes
	Targets  []float64 // KOps
	Cells    [][]Cell  // [target][dataset]
}

// Compute builds the heatmap.
func Compute(options []Option, datasets []float64, targets []float64) (*Heatmap, error) {
	if len(options) < 2 {
		return nil, fmt.Errorf("costmodel: need at least two options, got %d", len(options))
	}
	h := &Heatmap{Options: options, Datasets: datasets, Targets: targets}
	for _, t := range targets {
		row := make([]Cell, 0, len(datasets))
		for _, d := range datasets {
			cell := Cell{DatasetBytes: d, TargetKOps: t}
			best, bestIdx, tie := math.MaxInt32, -1, false
			for i, o := range options {
				n := o.DrivesNeeded(d, t)
				cell.Drives = append(cell.Drives, n)
				switch {
				case n < best:
					best, bestIdx, tie = n, i, false
				case n == best:
					tie = true
				}
			}
			if tie {
				cell.Winner = "tie"
			} else {
				cell.Winner = options[bestIdx].Name
			}
			row = append(row, cell)
		}
		h.Cells = append(h.Cells, row)
	}
	return h, nil
}

// Render draws the heatmap as aligned text, targets down, datasets
// across, matching the orientation of the paper's figures (y axis:
// target throughput, x axis: dataset size).
func (h *Heatmap) Render() string {
	var b strings.Builder
	short := map[string]string{"tie": "="}
	for i, o := range h.Options {
		short[o.Name] = fmt.Sprintf("%c", 'A'+i)
		fmt.Fprintf(&b, "  %c = %s (%.2f KOps/drive, %.0f GB/drive)\n",
			'A'+i, o.Name, o.ThroughputKOps, o.MaxDatasetBytes/(1<<30))
	}
	fmt.Fprintf(&b, "  %-12s", "tgt \\ data")
	for _, d := range h.Datasets {
		fmt.Fprintf(&b, "%8.1fTB", d/(1<<40))
	}
	b.WriteByte('\n')
	for ti := len(h.Targets) - 1; ti >= 0; ti-- { // high targets on top
		fmt.Fprintf(&b, "  %-9.0fKOps", h.Targets[ti])
		for di := range h.Datasets {
			fmt.Fprintf(&b, "%10s", short[h.Cells[ti][di].Winner])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WinnerAt returns the winning option name for the cell nearest to the
// given dataset size and target.
func (h *Heatmap) WinnerAt(datasetBytes, targetKOps float64) string {
	di, ti := 0, 0
	for i, d := range h.Datasets {
		if math.Abs(d-datasetBytes) < math.Abs(h.Datasets[di]-datasetBytes) {
			di = i
		}
	}
	for i, t := range h.Targets {
		if math.Abs(t-targetKOps) < math.Abs(h.Targets[ti]-targetKOps) {
			ti = i
		}
	}
	return h.Cells[ti][di].Winner
}
