package costmodel

import (
	"strings"
	"testing"
	"testing/quick"
)

func opts() []Option {
	return []Option{
		{Name: "rocksdb", ThroughputKOps: 3.0, MaxDatasetBytes: 270 << 30},    // fast, space-hungry
		{Name: "wiredtiger", ThroughputKOps: 1.0, MaxDatasetBytes: 350 << 30}, // slow, compact
	}
}

func TestDrivesNeeded(t *testing.T) {
	o := Option{Name: "x", ThroughputKOps: 2, MaxDatasetBytes: 100 << 30}
	cases := []struct {
		data   float64
		target float64
		want   int
	}{
		{50 << 30, 1, 1},   // fits, throughput fine
		{50 << 30, 4, 2},   // throughput-bound
		{250 << 30, 1, 3},  // capacity-bound
		{250 << 30, 10, 5}, // throughput-bound dominates
		{1, 0.1, 1},        // minimum one drive
	}
	for i, c := range cases {
		if got := o.DrivesNeeded(c.data, c.target); got != c.want {
			t.Fatalf("case %d: DrivesNeeded = %d, want %d", i, got, c.want)
		}
	}
}

func TestInvalidOption(t *testing.T) {
	bad := Option{Name: "bad"}
	if bad.DrivesNeeded(1<<30, 1) < 1000000 {
		t.Fatal("invalid option should need effectively infinite drives")
	}
}

func TestComputeRequiresTwoOptions(t *testing.T) {
	if _, err := Compute(opts()[:1], []float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for single option")
	}
}

func TestHeatmapShape(t *testing.T) {
	// The paper's Fig 6c structure: the faster system wins at high
	// target throughput / small datasets; the space-efficient one wins
	// for large datasets at low throughput targets.
	datasets := []float64{1 << 40, 2 << 40, 3 << 40, 4 << 40, 5 << 40}
	targets := []float64{5, 10, 15, 20, 25}
	h, err := Compute(opts(), datasets, targets)
	if err != nil {
		t.Fatal(err)
	}
	if w := h.WinnerAt(1<<40, 25); w != "rocksdb" {
		t.Fatalf("high-throughput small-data winner = %s, want rocksdb", w)
	}
	if w := h.WinnerAt(5<<40, 5); w != "wiredtiger" {
		t.Fatalf("low-throughput big-data winner = %s, want wiredtiger", w)
	}
}

func TestHeatmapMonotoneDrives(t *testing.T) {
	// Property: more data or a higher target never needs fewer drives.
	f := func(tput1, tput2 uint8, cap1, cap2 uint8) bool {
		o := []Option{
			{Name: "a", ThroughputKOps: float64(tput1%20) + 1, MaxDatasetBytes: float64(cap1%200+1) * (1 << 30)},
			{Name: "b", ThroughputKOps: float64(tput2%20) + 1, MaxDatasetBytes: float64(cap2%200+1) * (1 << 30)},
		}
		datasets := []float64{1 << 40, 2 << 40, 4 << 40}
		targets := []float64{2, 8, 16}
		h, err := Compute(o, datasets, targets)
		if err != nil {
			return false
		}
		for ti := range targets {
			for di := range datasets {
				for oi := range o {
					n := h.Cells[ti][di].Drives[oi]
					if di > 0 && n < h.Cells[ti][di-1].Drives[oi] {
						return false
					}
					if ti > 0 && n < h.Cells[ti-1][di].Drives[oi] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderContainsLegendAndGrid(t *testing.T) {
	h, err := Compute(opts(), []float64{1 << 40, 5 << 40}, []float64{5, 25})
	if err != nil {
		t.Fatal(err)
	}
	out := h.Render()
	if !strings.Contains(out, "rocksdb") || !strings.Contains(out, "wiredtiger") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "KOps") || !strings.Contains(out, "TB") {
		t.Fatalf("axes missing:\n%s", out)
	}
}

func TestTie(t *testing.T) {
	same := []Option{
		{Name: "a", ThroughputKOps: 1, MaxDatasetBytes: 1 << 40},
		{Name: "b", ThroughputKOps: 1, MaxDatasetBytes: 1 << 40},
	}
	h, err := Compute(same, []float64{1 << 40}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if h.Cells[0][0].Winner != "tie" {
		t.Fatalf("equal options should tie, got %s", h.Cells[0][0].Winner)
	}
}
