package cowtree

import "math/bits"

// Arena is a chunked byte allocator for the small immortal byte slices
// the tree engines retain — key copies taken at the Put boundary and
// separator keys. The engines' node structures never free individual
// keys (ids and nodes are immortal in the simulation's memory model),
// so a bump allocator turns the dominant steady-state allocation — one
// heap object per fresh key — into one chunk allocation per ~4096 keys.
// A nil-safe zero value is ready to use.
type Arena struct {
	chunk []byte
}

// arenaChunkBytes is the bump-chunk size. Large enough to amortize the
// chunk allocation to noise, small enough that a mostly-idle tree does
// not strand much memory.
const arenaChunkBytes = 64 << 10

// Clone copies b into the arena, preserving nil.
func (a *Arena) Clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := a.Alloc(len(b))
	copy(out, b)
	return out
}

// Alloc returns a zeroed n-byte slice carved from the arena. Slices with
// n larger than the chunk size get their own allocation.
func (a *Arena) Alloc(n int) []byte {
	if n > arenaChunkBytes {
		return make([]byte, n)
	}
	if len(a.chunk) < n {
		a.chunk = make([]byte, arenaChunkBytes)
	}
	out := a.chunk[:n:n]
	a.chunk = a.chunk[n:]
	return out
}

// Pool recycles slices of T by power-of-two capacity class. The
// engines' leaf-entry and message arrays churn constantly — every
// append past capacity retires one array, every leaf split demands a
// fresh one — and that churn was the dominant byte source feeding the
// GC once per-key allocations moved to the arena. Retired arrays keep
// their contents (the pointers they hold are arena-backed and immortal
// anyway); Get never clears, so every caller must fully overwrite the
// returned prefix.
type Pool[T any] struct {
	classes [32][][]T
}

// Get returns a slice of length n whose capacity is the next power of
// two >= n, reusing a retired array of that class when available.
func (p *Pool[T]) Get(n int) []T {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1))
	if s := p.classes[c]; len(s) > 0 {
		out := s[len(s)-1]
		s[len(s)-1] = nil
		p.classes[c] = s[:len(s)-1]
		return out[:n]
	}
	return make([]T, n, 1<<c)
}

// Put retires a slice's backing array for reuse. The caller must not
// touch s afterwards. Arrays land in the largest class their capacity
// can fully serve.
func (p *Pool[T]) Put(s []T) {
	c := cap(s)
	if c == 0 {
		return
	}
	k := bits.Len(uint(c)) - 1
	p.classes[k] = append(p.classes[k], s[:0])
}

// GrowInsert inserts e at position i of s (0 <= i <= len(s)), growing
// through the pool when capacity is exhausted so the displaced array is
// recycled instead of becoming garbage.
func (p *Pool[T]) GrowInsert(s []T, i int, e T) []T {
	if len(s) < cap(s) {
		s = s[:len(s)+1]
		copy(s[i+1:], s[i:])
		s[i] = e
		return s
	}
	grown := p.Get(len(s) + 1)
	copy(grown, s[:i])
	copy(grown[i+1:], s[i:])
	grown[i] = e
	p.Put(s)
	return grown
}

// CloneTail copies src[from:] into a pooled array (used by splits to
// hand the moved half its own storage).
func (p *Pool[T]) CloneTail(src []T, from int) []T {
	out := p.Get(len(src) - from)
	copy(out, src[from:])
	return out
}

// Slab is a chunked struct allocator: Get hands out pointers into
// block-allocated backing arrays, turning one heap object per node into
// one per slabBlock nodes. Engines use it for their page/node structs,
// which are immortal (ids are never reused, and evicting a leaf only
// drops its residency flag).
type Slab[T any] struct {
	block []T
}

// slabBlock is the number of structs per backing array.
const slabBlock = 256

// Get returns a pointer to a zeroed T.
func (s *Slab[T]) Get() *T {
	if len(s.block) == 0 {
		s.block = make([]T, slabBlock)
	}
	out := &s.block[0]
	s.block = s.block[1:]
	return out
}

// zeroPad backs AppendZeros.
var zeroPad [4096]byte

// AppendZeros appends n zero bytes to out — the engines' codecs use it
// to zero-fill accounting-mode values without allocating per entry.
func AppendZeros(out []byte, n int) []byte {
	for n > len(zeroPad) {
		out = append(out, zeroPad[:]...)
		n -= len(zeroPad)
	}
	return append(out, zeroPad[:n]...)
}
