package cowtree

import (
	"slices"

	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// Job writes all nodes that were dirty when the checkpoint began — for a
// Bε-tree that includes interior nodes, whose images carry their message
// buffers — then retires the journal segment that preceded it. The
// journal is rotated at job creation (foreground), so updates arriving
// during the checkpoint land in the new segment.
type Job struct {
	c           *Core
	ids         []NodeID
	keys        []uint64 // packed (depth desc, id asc) sort keys, reused
	idx         int
	oldJournal  *wal.Writer
	pendingMark int // deferred-release prefix safe to free at commit
	// snapSeq is the engine's sequence high-water mark when the dirty set
	// was snapshotted. Every update with seq <= snapSeq dirtied a node
	// before the snapshot, so the snapshot closure contains it and the
	// committed tree image covers it — making snapSeq a recovery floor:
	// a recovered tree whose max sequence falls below the metadata's
	// floor proves node writes the device acknowledged never persisted.
	snapSeq uint64
}

// NewCheckpointJob snapshots the dirty set — expanded to the ancestor
// closure — and rotates the journal. It returns nil if there is nothing
// to write.
//
// The closure is load-bearing for recovery: writing a node moves it on
// disk, so every ancestor's serialized child references change and the
// whole root-to-node spine must be rewritten within the SAME
// checkpoint. Without it, a checkpoint whose dirty snapshot contains
// only a leaf would commit metadata pointing at the old root image
// (whose refs still name the leaf's old extent) while recycling the
// journal that held the leaf's updates — data loss on recovery, and
// corruption once the old extent is reused.
func (c *Core) NewCheckpointJob() (*Job, error) {
	if c.dirtyCount == 0 {
		return nil, nil
	}
	job := c.getJob()
	job.pendingMark = c.bm.PendingMark()
	job.snapSeq = c.eng.Seq()
	c.epoch++
	eng, stamp := c.eng, c.epoch
	for _, id := range c.dirtyIDs {
		if !eng.Dirty(id) || c.stampInJob(id, stamp) {
			continue
		}
		job.ids = append(job.ids, id)
		for p := eng.Parent(id); p != NilNode && !c.stampInJob(p, stamp); p = eng.Parent(p) {
			eng.MarkDirty(p) // ancestors must be written too
			job.ids = append(job.ids, p)
		}
	}
	c.dirtyIDs = c.dirtyIDs[:0]
	// Bottom-up order: leaves first, then interior nodes deepest-first,
	// the root last. Writing a child records its new extent before its
	// parent's image is serialized, so a completed checkpoint is a
	// consistent tree.
	c.sortBottomUp(job)
	if c.journal != nil {
		job.oldJournal = c.journal
		w, err := c.wrapJournal()
		if err != nil {
			return nil, err
		}
		c.journal = w
	}
	return job, nil
}

// getJob takes a retired job from the pool (its slices keep their
// capacity) or allocates a fresh one. Jobs return to the pool at commit;
// overlapping jobs — only reachable by holding an unsubmitted job while
// another triggers — simply each draw their own.
func (c *Core) getJob() *Job {
	if n := len(c.jobPool); n > 0 {
		j := c.jobPool[n-1]
		c.jobPool = c.jobPool[:n-1]
		return j
	}
	return &Job{c: c}
}

// putJob retires a completed job's scratch back to the pool.
func (c *Core) putJob(j *Job) {
	j.ids = j.ids[:0]
	j.keys = j.keys[:0]
	j.idx = 0
	j.oldJournal = nil
	j.snapSeq = 0
	c.jobPool = append(c.jobPool, j)
}

// stampInJob stamps id as belonging to this snapshot epoch, growing the
// id-indexed scratch as needed; it reports whether the id was already
// stamped. The epoch stamp replaces the per-job membership map the old
// per-engine implementations allocated on every checkpoint.
func (c *Core) stampInJob(id NodeID, epoch uint32) bool {
	if int(id) >= len(c.inJob) {
		grown := make([]uint32, int(id)*2+16)
		copy(grown, c.inJob)
		c.inJob = grown
	}
	if c.inJob[id] == epoch {
		return true
	}
	c.inJob[id] = epoch
	return false
}

// depthOf returns a node's distance from the root (root = 0).
func (c *Core) depthOf(id NodeID) uint32 {
	d := uint32(0)
	for p := c.eng.Parent(id); p != NilNode; p = c.eng.Parent(p) {
		d++
	}
	return d
}

// sortBottomUp orders the job's node ids deepest-first (ties by id for
// determinism); since leaves are the deepest layer they come first and
// the root comes last. The (depth desc, id asc) key is a total order
// over distinct ids packed into one uint64, so a plain slices.Sort
// yields the same deterministic sequence the old two-key comparison
// sort produced — without a comparison closure or a per-job depth map.
func (c *Core) sortBottomUp(job *Job) {
	keys := job.keys
	for _, id := range job.ids {
		keys = append(keys, uint64(^c.depthOf(id))<<32|uint64(id))
	}
	slices.Sort(keys)
	job.keys = keys
	for i, k := range keys {
		job.ids[i] = NodeID(k & 0xFFFFFFFF)
	}
}

// Step implements sim.Job: write nodes until the chunk budget is used.
func (j *Job) Step(now sim.Duration) (sim.Duration, bool) {
	c := j.c
	eng := c.eng
	if c.fatal != nil {
		return now, true
	}
	budget := c.cfg.ChunkPages
	ps := c.fs.PageSize()
	for budget > 0 && j.idx < len(j.ids) {
		id := j.ids[j.idx]
		j.idx++
		if !eng.Live(id) || !eng.Dirty(id) {
			continue // evicted and written in the meantime
		}
		// Foreground splits that ran since the snapshot may have hung
		// children under the node that this job has never written (or
		// even never-written brand-new nodes with a zero extent).
		// Serializing its child references without writing them first
		// would commit an image pointing at stale or nonexistent extents
		// — an unrecoverable tree. Flush the node's dirty/unwritten
		// descendants before the node itself.
		var err error
		var extra int
		now, extra, err = c.writeSubtreeClean(now, id)
		if err != nil {
			c.Fail(err)
			return now, true
		}
		budget -= extra
		now, err = eng.WriteNode(now, id)
		if err != nil {
			c.Fail(err)
			return now, true
		}
		c.io.CheckpointPgs++
		budget -= (eng.SerializedBytes(id) + ps - 1) / ps
	}
	if j.idx < len(j.ids) {
		return now, false
	}
	// Commit. A foreground split may have grown a NEW root while the job
	// ran — an ancestor of every snapshot node, so neither the snapshot
	// closure nor writeSubtreeClean (descendants only) wrote it. Without
	// an on-disk root image WriteMeta would decline, yet the commit below
	// would still release the previous checkpoint's extents and recycle
	// the journal — destroying the only durable copies of recent updates.
	// Write the current root (and its unwritten spine) first, so the
	// metadata always points at a complete current tree.
	var err error
	if root := eng.Root(); eng.NeedsWrite(root) {
		// writeSubtreeClean counts the descendants it writes itself.
		if now, _, err = c.writeSubtreeClean(now, root); err != nil {
			c.Fail(err)
			return now, true
		}
		if now, err = eng.WriteNode(now, root); err != nil {
			c.Fail(err)
			return now, true
		}
		c.io.CheckpointPgs++
	}
	// Write the checkpoint metadata (root location), release the previous
	// checkpoint's extents, sync, and recycle the old journal segment
	// (its updates are now covered by the checkpoint). Recycling keeps
	// the journal on a fixed set of LBAs, like real log pre-allocation.
	//
	// The barrier orders the commit against power cuts: every node image
	// must be durable BEFORE the metadata that names its extents can be,
	// or a cut could leave a durable root pointing at torn children.
	// The fs.Sync below is itself a barrier, ordering the metadata write
	// before the journal recycle the same way.
	if err = c.fs.Barrier(); err != nil {
		c.Fail(err)
		return now, true
	}
	if now, err = c.writeMetaFloor(now, j.snapSeq); err != nil {
		c.Fail(err)
		return now, true
	}
	c.bm.CommitPendingPrefix(j.pendingMark)
	if now, err = c.fs.Sync(now); err != nil {
		c.Fail(err)
		return now, true
	}
	if j.oldJournal != nil {
		now, err = j.oldJournal.Recycle(now)
		if err != nil {
			c.Fail(err)
			return now, true
		}
		c.journalPool = append(c.journalPool, j.oldJournal)
		j.oldJournal = nil
	}
	c.io.Checkpoints++
	c.putJob(j)
	return now, true
}

// writeSubtreeClean writes every dirty or never-written descendant of a
// node (deepest first), returning the pages written. Nodes registered by
// splits that ran while the checkpoint was in flight are not in the
// job's snapshot, and their ancestors' images must not be serialized
// before they have on-disk extents.
//
// The needy-children list for each recursion depth comes from a
// per-depth scratch slice (depth is bounded by the tree height, and a
// child written here can only re-dirty its PARENT, never a sibling, so
// the list stays valid across the loop's writes).
func (c *Core) writeSubtreeClean(now sim.Duration, id NodeID) (sim.Duration, int, error) {
	return c.writeSubtreeCleanAt(now, id, 0)
}

func (c *Core) writeSubtreeCleanAt(now sim.Duration, id NodeID, depth int) (sim.Duration, int, error) {
	eng := c.eng
	if eng.Leaf(id) {
		return now, 0, nil
	}
	if depth >= len(c.subtreeScratch) {
		c.subtreeScratch = append(c.subtreeScratch, nil)
	}
	needy := eng.AppendNeedsWrite(id, c.subtreeScratch[depth][:0])
	c.subtreeScratch[depth] = needy // keep the grown capacity
	ps := c.fs.PageSize()
	pages := 0
	for _, child := range needy {
		var err error
		var extra int
		now, extra, err = c.writeSubtreeCleanAt(now, child, depth+1)
		if err != nil {
			return now, pages, err
		}
		pages += extra
		now, err = eng.WriteNode(now, child)
		if err != nil {
			return now, pages, err
		}
		c.io.CheckpointPgs++
		pages += (eng.SerializedBytes(child) + ps - 1) / ps
	}
	return now, pages, nil
}
