package cowtree

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ptsbench/internal/sim"
)

// These tests pin the checkpoint/recovery discipline engine-agnostically
// over the stub engine (stub_test.go): the three crash-recovery bugs PR 3
// fixed twice — once per engine copy — plus a randomized
// checkpoint-overlap stress test. The same scenarios also run through
// the real engines' recovery suites (internal/btree, internal/betree);
// here they guard the shared core itself, so a future engine inherits
// the discipline without porting the tests.

func val(g, k uint64) []byte { return []byte(fmt.Sprintf("g%d-k%d", g, k)) }

// TestStubLeafOnlyDirtySnapshot is the ancestor-closure regression: an
// update that dirties ONLY a leaf must survive checkpoint + crash +
// recovery. Without the closure, the second checkpoint would rewrite the
// leaf but commit metadata pointing at the unchanged old root image —
// whose child references still name the leaf's old extent — while
// recycling the journal holding the update: silent data loss.
func TestStubLeafOnlyDirtySnapshot(t *testing.T) {
	fs, err := stubEnv()
	if err != nil {
		t.Fatal(err)
	}
	cfg := stubConfig(time.Hour, 32) // manual checkpoints only
	tr, err := openStub(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now sim.Duration
	for k := uint64(0); k < 200; k++ {
		if now, err = tr.put(now, k, val(1, k)); err != nil {
			t.Fatal(err)
		}
	}
	if now, err = tr.flushAll(now); err != nil { // checkpoint 1
		t.Fatal(err)
	}
	if now, err = tr.put(now, 42, val(2, 42)); err != nil {
		t.Fatal(err)
	}
	if now, err = tr.flushAll(now); err != nil { // checkpoint 2: one dirty leaf
		t.Fatal(err)
	}
	_ = now
	re, rnow, err := recoverStub(fs, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = rnow
	got, ok := re.get(42)
	if !ok || !bytes.Equal(got, val(2, 42)) {
		t.Fatalf("key 42 after recovery: %q ok=%v, want generation 2", got, ok)
	}
	for k := uint64(0); k < 200; k++ {
		if k == 42 {
			continue
		}
		if got, ok := re.get(k); !ok || !bytes.Equal(got, val(1, k)) {
			t.Fatalf("key %d after recovery: %q ok=%v", k, got, ok)
		}
	}
}

// TestStubSplitDuringCheckpoint is the checkpoint/split-race regression:
// with a tiny checkpoint interval and a 1-page I/O chunk, foreground
// splits constantly overlap in-flight checkpoints. Without
// writeSubtreeClean, an in-job interior serialized after a concurrent
// split embeds a zero extent for the split's never-written child and
// recovery fails with "empty extent in tree walk".
func TestStubSplitDuringCheckpoint(t *testing.T) {
	fs, err := stubEnv()
	if err != nil {
		t.Fatal(err)
	}
	cfg := stubConfig(50*time.Microsecond, 1)
	tr, err := openStub(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now sim.Duration
	const keys = 2000
	for k := uint64(0); k < keys; k++ {
		if now, err = tr.put(now, k, val(1, k)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.core.IO().Checkpoints < 2 {
		t.Fatalf("only %d checkpoints ran; the race never happened", tr.core.IO().Checkpoints)
	}
	now = tr.core.Quiesce(now)
	_ = now
	re, _, err := recoverStub(fs, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < keys; k += 13 {
		if got, ok := re.get(k); !ok || !bytes.Equal(got, val(1, k)) {
			t.Fatalf("key %d after recovery: %q ok=%v", k, got, ok)
		}
	}
}

// TestStubRootGrowthDuringCheckpoint is the commit-path regression for
// root growth during an in-flight checkpoint: the new root is an
// ANCESTOR of every snapshot node, so neither the snapshot closure nor
// writeSubtreeClean (descendants only) writes it. Without the commit's
// root-spine write, WriteMeta silently declines (no on-disk root image)
// while the commit still releases the previous checkpoint's extents and
// recycles the journal — data loss across the next crash. The test
// asserts the race actually occurred (white-box: the root id changed
// while a checkpoint job was held), then crash-recovers and verifies
// every key.
func TestStubRootGrowthDuringCheckpoint(t *testing.T) {
	fs, err := stubEnv()
	if err != nil {
		t.Fatal(err)
	}
	cfg := stubConfig(time.Hour, 1)
	tr, err := openStub(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now sim.Duration
	var k uint64
	for ; k < 30; k++ {
		if now, err = tr.put(now, k, val(1, k)); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot the dirty set and rotate the journal now; submit only
	// after the root has grown, so the commit provably runs against a
	// root the snapshot has never seen.
	job, err := tr.core.NewCheckpointJob()
	if err != nil || job == nil {
		t.Fatalf("no checkpoint job: %v", err)
	}
	rootBefore := tr.root
	for tr.root == rootBefore {
		if k > 100000 {
			t.Fatal("root never grew; tighten the stub limits")
		}
		if now, err = tr.put(now, k, val(1, k)); err != nil {
			t.Fatal(err)
		}
		k++
	}
	total := k
	tr.core.Worker().Submit(job)
	now = tr.core.Quiesce(now) // the racy checkpoint commits here
	_ = now
	re, _, err := recoverStub(fs, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < total; k++ {
		if got, ok := re.get(k); !ok || !bytes.Equal(got, val(1, k)) {
			t.Fatalf("key %d after recovery: %q ok=%v", k, got, ok)
		}
	}
}

// TestStubCheckpointOverlapStress drives random update/overwrite
// workloads against constantly overlapping checkpoints (tiny interval,
// 1-page chunks), crashes at an arbitrary point, recovers, and verifies
// every key against a reference model — including that the recovered
// tree accepts further writes and another recovery round-trips them.
func TestStubCheckpointOverlapStress(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fs, err := stubEnv()
			if err != nil {
				t.Fatal(err)
			}
			cfg := stubConfig(80*time.Microsecond, 1)
			tr, err := openStub(fs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRNG(seed)
			model := map[uint64][]byte{}
			var now sim.Duration
			const space = 700
			for op := 0; op < 4000; op++ {
				k := rng.Uint64n(space)
				v := val(uint64(op), k)
				model[k] = v
				if now, err = tr.put(now, k, v); err != nil {
					t.Fatal(err)
				}
				if op%1000 == 999 {
					// Occasionally force a synchronous full checkpoint.
					if now, err = tr.flushAll(now); err != nil {
						t.Fatal(err)
					}
				}
			}
			if tr.core.IO().Checkpoints < 3 {
				t.Fatalf("only %d checkpoints ran; stress shape wrong", tr.core.IO().Checkpoints)
			}
			// Crash (no quiesce, no close) and recover.
			re, rnow, err := recoverStub(fs, cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range model {
				if got, ok := re.get(k); !ok || !bytes.Equal(got, v) {
					t.Fatalf("key %d after recovery: %q ok=%v want %q", k, got, ok, v)
				}
			}
			// The recovered tree keeps working and survives another cycle.
			for op := 0; op < 300; op++ {
				k := rng.Uint64n(space)
				v := val(uint64(90000+op), k)
				model[k] = v
				if rnow, err = re.put(rnow, k, v); err != nil {
					t.Fatal(err)
				}
			}
			if _, err = re.flushAll(rnow); err != nil {
				t.Fatal(err)
			}
			re2, _, err := recoverStub(fs, cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range model {
				if got, ok := re2.get(k); !ok || !bytes.Equal(got, v) {
					t.Fatalf("key %d after second recovery: %q ok=%v want %q", k, got, ok, v)
				}
			}
		})
	}
}
