// Package cowtree implements the copy-on-write checkpoint/recovery
// discipline shared by the page/node-based tree engines (B+Tree,
// Bε-tree), the way internal/extalloc was extracted for their extent
// allocator. The engines keep their own node representation, codecs and
// read/write paths; this package owns everything both had duplicated:
//
//   - dirty-set tracking (append-order transition log, filtered on the
//     node flag at snapshot time),
//   - the checkpoint job: dirty-ancestor-closure snapshot, bottom-up
//     write order, writeSubtreeClean for split-orphaned descendants,
//     root-spine write at commit, metadata write, deferred-extent
//     release, journal rotation and recycling,
//   - the double-buffered checkpoint metadata codec,
//   - the journal segment pool,
//   - the recovery skeleton: tree walk from the checkpointed root,
//     free-list reconstruction, leaf-chain rebuild, sequence-sorted
//     journal replay and stale-segment retirement.
//
// An engine embeds a Core, implements the small Engine interface over
// its node type, and routes its checkpoint/recovery entry points through
// the Core. PR 3 fixed three crash-recovery bugs twice — once per copied
// implementation; the discipline now lives here once, pinned by
// engine-agnostic tests over a stub engine in this package and by both
// engines' recovery regression suites.
package cowtree

import (
	"fmt"
	"time"

	"ptsbench/internal/deverr"
	"ptsbench/internal/extalloc"
	"ptsbench/internal/extfs"
	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// NodeID identifies an in-memory tree node. IDs are handed out
// sequentially by the engine and never reused; 0 is the nil node.
type NodeID uint32

// NilNode is the zero NodeID.
const NilNode NodeID = 0

// Extent aliases the shared allocator extent type.
type Extent = extalloc.Extent

// Engine is the view the checkpoint/recovery core has of a tree engine.
// All methods are keyed by NodeID; the engine owns the id-indexed node
// storage. None of these sit on the engine's steady-state op path — the
// core calls them while snapshotting or writing a checkpoint and during
// recovery — so the interface indirection costs nothing per Put/Get.
type Engine interface {
	// Root returns the current root node id.
	Root() NodeID
	// Parent returns a node's parent id (NilNode for the root).
	Parent(NodeID) NodeID
	// Leaf reports whether the node is a leaf.
	Leaf(NodeID) bool
	// Children returns an interior node's child ids (nil for leaves).
	// The core only reads the slice.
	Children(NodeID) []NodeID
	// Dirty reports whether the node needs writing.
	Dirty(NodeID) bool
	// NeedsWrite reports Dirty(id) || DiskExtent(id).Pages == 0 in one
	// call (the commit's root check).
	NeedsWrite(NodeID) bool
	// AppendNeedsWrite appends to dst, in child order, the ids of the
	// node's children for which NeedsWrite holds, and returns dst. One
	// batched call replaces a per-child interface call in the
	// checkpoint's subtree walk, which scans every written interior
	// node's full fanout (the walk almost always finds nothing — only
	// children registered by splits that raced the in-flight checkpoint
	// qualify).
	AppendNeedsWrite(id NodeID, dst []NodeID) []NodeID
	// Live reports whether the id still names a node (engines that
	// never deallocate return true for every assigned id).
	Live(NodeID) bool
	// DiskExtent returns the node's current on-disk extent (Pages == 0
	// means never written).
	DiskExtent(NodeID) Extent
	// SerializedBytes returns the node's serialized footprint.
	SerializedBytes(NodeID) int
	// MarkDirty flags the node for the next checkpoint. The engine must
	// call Core.TrackDirty on the false->true transition.
	MarkDirty(NodeID)
	// WriteNode reconciles one node copy-on-write: allocate a fresh
	// extent, serialize, write, clear the dirty flag, dirty the parent.
	WriteNode(now sim.Duration, id NodeID) (sim.Duration, error)
	// Seq returns the KV sequence high-water mark (persisted in the
	// checkpoint metadata).
	Seq() uint64
}

// Config carries the engine-specific constants and tuning the core
// needs. The naming fields keep each engine's on-device footprint
// exactly what it was before the extraction.
type Config struct {
	// Name tags errors and the checkpoint worker ("btree", "betree").
	Name string
	// MetaPrefix names the double-buffered metadata files
	// ("<prefix>-A"/"<prefix>-B").
	MetaPrefix string
	// MetaMagic is the 32-bit magic of the metadata codec.
	MetaMagic uint32
	// JournalPrefix prefixes journal segment file names; segments are
	// "<prefix>NNNNNN".
	JournalPrefix string

	// ChunkPages is the checkpoint I/O granularity per job step.
	ChunkPages int
	// CheckpointInterval triggers a checkpoint when this much virtual
	// time passed since the last one.
	CheckpointInterval time.Duration
	// CheckpointPendingBytes triggers a checkpoint when this many bytes
	// of freed extents await release.
	CheckpointPendingBytes int64
	// Content selects content mode (values materialized and written
	// through).
	Content bool
	// DisableJournal turns journaling off entirely.
	DisableJournal bool
}

// IOStats counts the core's checkpoint activity.
type IOStats struct {
	Checkpoints   int64
	CheckpointPgs int64
}

// Core owns the shared checkpoint/recovery state of one tree. Engines
// embed it by value and call Init once at construction.
type Core struct {
	eng  Engine
	fs   *extfs.FS
	file *extfs.File
	bm   *extalloc.Manager
	cfg  Config

	// dirtyIDs is the append-order log of false->true dirty
	// transitions; dirtyCount tracks how many nodes are currently
	// dirty. Snapshots filter stale entries on the node flag.
	dirtyIDs   []NodeID
	dirtyCount int

	journal     *wal.Writer
	journalID   uint64
	journalPool []*wal.Writer // recycled segments awaiting reuse
	group       bool          // group commit open: per-record syncs deferred

	ckptW    *sim.Worker
	lastCkpt sim.Duration
	metaGen  uint64

	io      IOStats
	fatal   error
	metaBuf []byte // reused page-sized metadata write image (content mode)

	// Checkpoint scratch, reused across checkpoints (a retired job's
	// slices return to the pool at commit; concurrent jobs — possible
	// only through the white-box test path that holds a job while
	// triggering another — each draw their own).
	jobPool []*Job
	inJob   []uint32 // id-indexed epoch stamps replacing a per-job map
	epoch   uint32
	// subtreeScratch holds writeSubtreeClean's per-depth needy-children
	// lists (reused across checkpoints).
	subtreeScratch [][]NodeID

	// recovered segment names, kept between ReplayJournals and
	// RetireStaleSegments.
	segments []string
}

// Init wires the core to its engine and device state. The engine's
// journal is not created here; call StartJournal once the tree shell is
// ready (Open) or after replay (Recover).
func (c *Core) Init(eng Engine, fs *extfs.FS, file *extfs.File, bm *extalloc.Manager, cfg Config) {
	c.eng = eng
	c.fs = fs
	c.file = file
	c.bm = bm
	c.cfg = cfg
	c.ckptW = sim.NewWorker(cfg.Name + "-checkpoint")
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// FS returns the mounted filesystem.
func (c *Core) FS() *extfs.FS { return c.fs }

// BM returns the extent allocator.
func (c *Core) BM() *extalloc.Manager { return c.bm }

// IO returns the core's checkpoint counters.
func (c *Core) IO() IOStats { return c.io }

// Err returns the sticky fatal error, if any.
func (c *Core) Err() error { return c.fatal }

// Fail records a fatal error (the first one wins). The error is
// latched: even when the root cause was a transient device error, the
// core is permanently wedged, so deverr.IsTransient must report false
// for everything returned from here on — otherwise the serving layer
// would retry a dead engine instead of failing the replica over.
func (c *Core) Fail(err error) {
	if c.fatal == nil {
		c.fatal = deverr.Latch(err)
	}
}

// Pump drives the background checkpoint worker up to now.
func (c *Core) Pump(now sim.Duration) { c.ckptW.Pump(now) }

// Worker exposes the checkpoint worker (tests submit jobs directly to
// provoke checkpoint/foreground races deterministically).
func (c *Core) Worker() *sim.Worker { return c.ckptW }

// ---- dirty tracking ----

// TrackDirty records a node's false->true dirty transition. The engine's
// MarkDirty checks the node flag first, so this is called once per
// transition, not once per markDirty call.
func (c *Core) TrackDirty(id NodeID) {
	c.dirtyCount++
	c.dirtyIDs = append(c.dirtyIDs, id)
}

// NoteClean records that a node's dirty flag was cleared. Its entry in
// the transition log stays behind; snapshots filter on the flag, so a
// stale id is skipped for free.
func (c *Core) NoteClean() { c.dirtyCount-- }

// DirtyCount reports the number of currently dirty nodes.
func (c *Core) DirtyCount() int { return c.dirtyCount }

// ---- journal ----

// Journal returns the active journal segment writer, or nil when
// journaling is disabled.
func (c *Core) Journal() *wal.Writer { return c.journal }

// JournalID returns the id of the most recently named segment.
func (c *Core) JournalID() uint64 { return c.journalID }

// JournalSyncCount returns the number of device-reaching syncs issued on
// the active journal segment (see wal.Writer.SyncCount). The count does
// not carry across journal rotations; tests reading it bracket a window
// short enough that no checkpoint rotates the segment.
func (c *Core) JournalSyncCount() int64 {
	if c.journal == nil {
		return 0
	}
	return c.journal.SyncCount()
}

// SetJournalState seeds the journal id and metadata generation from
// recovered checkpoint metadata.
func (c *Core) SetJournalState(journalID, metaGen uint64) {
	c.journalID = journalID
	c.metaGen = metaGen
}

// journalName mints the next segment name.
func (c *Core) journalName() string {
	c.journalID++
	return fmt.Sprintf("%s%06d", c.cfg.JournalPrefix, c.journalID)
}

// StartJournal creates the initial journal segment (no-op when
// journaling is disabled).
func (c *Core) StartJournal() error {
	if c.cfg.DisableJournal {
		return nil
	}
	w, err := wal.Create(c.fs, c.journalName(), c.cfg.Content)
	if err != nil {
		return err
	}
	c.journal = w
	return nil
}

// BeginGroup opens a group commit: while it is active, engines skip
// their per-record journal syncs (they consult GroupActive at the
// append site) so a batch of writes from independent clients commits
// with one sync. The serving layer brackets multi-write intake batches
// with BeginGroup/EndGroup.
func (c *Core) BeginGroup() { c.group = true }

// GroupActive reports whether a group commit is open.
func (c *Core) GroupActive() bool { return c.group }

// EndGroup closes the group and, when sync is set, durably syncs the
// journal tail once, returning the sync completion time. Records whose
// segment was rotated away by an intervening checkpoint need no sync —
// the checkpoint superseded them.
func (c *Core) EndGroup(now sim.Duration, sync bool) (sim.Duration, error) {
	c.group = false
	if !sync || c.journal == nil {
		return now, nil
	}
	return c.journal.Sync(now)
}

// wrapJournal opens the next journal segment, reusing a recycled one
// when available.
func (c *Core) wrapJournal() (*wal.Writer, error) {
	if n := len(c.journalPool); n > 0 {
		w := c.journalPool[n-1]
		c.journalPool = c.journalPool[:n-1]
		return w, nil
	}
	return wal.Create(c.fs, c.journalName(), c.cfg.Content)
}

// poolTracks reports whether a recycled segment with the given name is
// waiting in the pool.
func (c *Core) poolTracks(name string) bool {
	for _, w := range c.journalPool {
		if w.Name() == name {
			return true
		}
	}
	return false
}

// ---- checkpoint scheduling ----

// MaybeCheckpoint starts a checkpoint when the interval elapsed — or the
// deferred-release backlog has grown too large — and none is running.
func (c *Core) MaybeCheckpoint(now sim.Duration) {
	if c.ckptW.QueueLen() > 0 {
		return
	}
	intervalDue := now-c.lastCkpt >= c.cfg.CheckpointInterval
	pendingDue := c.bm.PendingPages()*int64(c.fs.PageSize()) >= c.cfg.CheckpointPendingBytes
	if !intervalDue && !pendingDue {
		return
	}
	c.lastCkpt = now
	job, err := c.NewCheckpointJob()
	if err != nil {
		c.Fail(err)
		return
	}
	if job != nil {
		c.ckptW.Submit(job)
	}
}

// Checkpoint runs a full checkpoint synchronously: drain in-flight
// background work, snapshot, write, commit. It returns the virtual
// completion time.
func (c *Core) Checkpoint(now sim.Duration) (sim.Duration, error) {
	c.ckptW.Pump(now)
	end := c.ckptW.RunUntilDrained()
	if end < now {
		end = now
	}
	job, err := c.NewCheckpointJob()
	if err != nil {
		return end, err
	}
	if job != nil {
		c.ckptW.Submit(job)
		end = c.ckptW.RunUntilDrained()
	}
	if c.fatal != nil {
		return end, c.fatal
	}
	return end, nil
}

// Quiesce drains background checkpoint work.
func (c *Core) Quiesce(now sim.Duration) sim.Duration {
	c.ckptW.Pump(now)
	end := c.ckptW.RunUntilDrained()
	if end < now {
		end = now
	}
	return end
}
