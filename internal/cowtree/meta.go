package cowtree

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ptsbench/internal/extfs"
	"ptsbench/internal/sim"
)

// Checkpoint metadata: a double-buffered pair of tiny files records the
// root node's on-disk extent and the sequence high-water mark of the
// last completed checkpoint. Recovery parses the tree from the root and
// replays the surviving journal segments on top. The layout (and each
// engine's magic and file names) is exactly what the engines wrote
// before the extraction, so existing on-device state stays readable.

// metaBytes is the encoded metadata size:
// magic(4) + gen(8) + seq(8) + rootStart(8) + rootPages(4) +
// journalID(8) + crc(4).
const metaBytes = 4 + 8 + 8 + 8 + 4 + 8 + 4

// Meta is one decoded checkpoint metadata record.
type Meta struct {
	Gen       uint64 // checkpoint generation
	Seq       uint64 // KV sequence high-water mark at checkpoint
	JournalID uint64
	Root      Extent
}

// EncodeMeta serializes a metadata record under the given magic.
func EncodeMeta(m *Meta, magic uint32) []byte {
	b := make([]byte, metaBytes)
	binary.LittleEndian.PutUint32(b[0:], magic)
	binary.LittleEndian.PutUint64(b[4:], m.Gen)
	binary.LittleEndian.PutUint64(b[12:], m.Seq)
	binary.LittleEndian.PutUint64(b[20:], uint64(m.Root.Start))
	binary.LittleEndian.PutUint32(b[28:], uint32(m.Root.Pages))
	binary.LittleEndian.PutUint64(b[32:], m.JournalID)
	binary.LittleEndian.PutUint32(b[40:], crc32.ChecksumIEEE(b[:40]))
	return b
}

// DecodeMeta parses a metadata record, verifying magic and CRC. name
// tags errors with the owning engine.
func DecodeMeta(b []byte, magic uint32, name string) (*Meta, error) {
	if len(b) < metaBytes {
		return nil, fmt.Errorf("%s: metadata too short", name)
	}
	if binary.LittleEndian.Uint32(b[0:]) != magic {
		return nil, fmt.Errorf("%s: bad metadata magic", name)
	}
	if crc32.ChecksumIEEE(b[:40]) != binary.LittleEndian.Uint32(b[40:]) {
		return nil, fmt.Errorf("%s: metadata CRC mismatch", name)
	}
	return &Meta{
		Gen:       binary.LittleEndian.Uint64(b[4:]),
		Seq:       binary.LittleEndian.Uint64(b[12:]),
		JournalID: binary.LittleEndian.Uint64(b[32:]),
		Root: Extent{
			Start: int64(binary.LittleEndian.Uint64(b[20:])),
			Pages: int64(binary.LittleEndian.Uint32(b[28:])),
		},
	}, nil
}

// metaName returns the metadata slot file name for a generation.
func metaName(prefix string, gen uint64) string {
	if gen%2 == 0 {
		return prefix + "-B"
	}
	return prefix + "-A"
}

// WriteMeta persists the checkpoint metadata into the older slot,
// recording the engine's current sequence as the recovery floor. A root
// that was never written (e.g. an empty-tree checkpoint) leaves nothing
// durable to point at yet, so the write declines silently.
func (c *Core) WriteMeta(now sim.Duration) (sim.Duration, error) {
	return c.writeMetaFloor(now, c.eng.Seq())
}

// writeMetaFloor is WriteMeta with an explicit sequence floor. Checkpoint
// jobs pass the snapshot-time sequence rather than the commit-time one:
// updates that arrived while the job ran live in the NEW journal segment
// (rotated at snapshot), which is not covered by this checkpoint, so a
// commit-time floor would falsely implicate legitimately-lost unsynced
// journal records. The snapshot floor is exactly what the tree image
// guarantees, so recovery can assert it loudly (see each engine's
// Recover) and any shortfall convicts the device of lying about fsync.
func (c *Core) writeMetaFloor(now sim.Duration, floor uint64) (sim.Duration, error) {
	root := c.eng.Root()
	disk := c.eng.DiskExtent(root)
	if disk.Pages == 0 {
		return now, nil
	}
	c.metaGen++
	m := Meta{Gen: c.metaGen, Seq: floor, JournalID: c.journalID, Root: disk}
	name := metaName(c.cfg.MetaPrefix, c.metaGen)
	f, err := c.fs.Open(name)
	if err != nil {
		if f, err = c.fs.Create(name); err != nil {
			return now, err
		}
		if err := f.Grow(1); err != nil {
			return now, err
		}
	}
	var data []byte
	if c.cfg.Content {
		if c.metaBuf == nil {
			c.metaBuf = make([]byte, c.fs.PageSize())
		}
		data = c.metaBuf
		copy(data, EncodeMeta(&m, c.cfg.MetaMagic))
	}
	return f.WriteAt(now, 0, 1, data)
}

// ReadMeta loads the newest valid checkpoint metadata from the
// double-buffered slot pair, or nil when neither slot holds one. A nil
// result without an error means bootstrap is legitimate: slots missing,
// or existing but all-zero — which is what a first checkpoint's torn
// slot write leaves behind. When both slots exist, neither decodes and
// at least one holds non-zero bytes, the metadata is corrupt (bit rot
// or a scribble — no power cut this stack models can produce it, since
// the alternating slot writes never tear both generations at once), and
// ReadMeta fails loudly instead of silently bootstrapping an empty tree
// over real data.
func ReadMeta(fs *extfs.FS, prefix string, magic uint32, name string, now sim.Duration) (*Meta, sim.Duration, error) {
	var best *Meta
	slots, garbled := 0, 0
	for _, slot := range []string{prefix + "-A", prefix + "-B"} {
		f, err := fs.Open(slot)
		if err != nil {
			continue
		}
		slots++
		buf := make([]byte, f.SizePages()*int64(fs.PageSize()))
		now, err = f.ReadAt(now, 0, int(f.SizePages()), buf)
		if err != nil {
			return nil, now, err
		}
		m, err := DecodeMeta(buf, magic, name)
		if err != nil {
			if !allZero(buf) {
				garbled++
			}
			continue
		}
		if best == nil || m.Gen > best.Gen {
			best = m
		}
	}
	if best == nil && slots == 2 && garbled > 0 {
		return nil, now, fmt.Errorf("%s: checkpoint metadata corrupt in both slots", name)
	}
	return best, now, nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
