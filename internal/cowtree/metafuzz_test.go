package cowtree

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ptsbench/internal/extfs"
	"ptsbench/internal/filedev"
)

// FuzzMetaDecode hammers the checkpoint-metadata codec with arbitrary
// bytes: DecodeMeta must never panic, and whenever it accepts an input
// the decoded record must re-encode to exactly the bytes it came from —
// a decode that "succeeds" on garbage it cannot reproduce would be a
// silent corruption of the recovery root.
func FuzzMetaDecode(f *testing.F) {
	valid := EncodeMeta(&Meta{Gen: 7, Seq: 42, JournalID: 3, Root: Extent{Start: 128, Pages: 2}}, stubMetaMagic)
	f.Add(valid)
	f.Add(valid[:20]) // truncated
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x40 // bit flip inside Gen
	f.Add(flipped)
	f.Add(make([]byte, metaBytes)) // all zeros
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMeta(data, stubMetaMagic, "fuzz")
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("DecodeMeta returned nil meta without an error")
		}
		re := EncodeMeta(m, stubMetaMagic)
		if !bytes.Equal(re, data[:metaBytes]) {
			t.Fatalf("decode/encode roundtrip diverges:\n in  %x\n out %x", data[:metaBytes], re)
		}
	})
}

// fileStubEnv mounts extfs over a real backing file, so the corruption
// below lands in an actual file image rather than the simulated content
// store.
func fileStubEnv(t *testing.T) (*filedev.Dev, *extfs.FS) {
	t.Helper()
	dev, err := filedev.Open(filedev.Config{
		Path:  filepath.Join(t.TempDir(), "stub.img"),
		Pages: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() })
	fs, err := extfs.Mount(dev, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dev, fs
}

// garbleSlot overwrites a metadata slot's page with non-zero junk
// directly through the device — modeling bit rot or a scribble beneath
// the filesystem, not a torn write (which zeroes or truncates).
func garbleSlot(t *testing.T, dev *filedev.Dev, fs *extfs.FS, slot string) {
	t.Helper()
	f, err := fs.Open(slot)
	if err != nil {
		t.Fatalf("meta slot %s missing: %v", slot, err)
	}
	exts := f.Extents()
	if len(exts) != 1 || exts[0][1] != 1 {
		t.Fatalf("meta slot %s not a single page: %v", slot, exts)
	}
	junk := make([]byte, dev.PageSize())
	for i := range junk {
		junk[i] = 0xA5
	}
	dev.Restore(exts[0][0], 1, junk)
}

// TestMetaSlotCorruptionOnFileDevice scripts real checkpoints onto a
// file-backed device and then corrupts the double-buffered metadata
// slots in place. One garbled slot must fall back to the survivor; both
// garbled must be a loud recovery error, never a silent bootstrap of an
// empty tree over real data; both all-zero (a first checkpoint's torn
// slot writes) must stay a legitimate bootstrap.
func TestMetaSlotCorruptionOnFileDevice(t *testing.T) {
	// Three checkpoints populate both slots: gens 1 and 3 land in
	// stmeta-A, gen 2 in stmeta-B.
	t.Run("both-slots-garbled", func(t *testing.T) {
		dev, fs := fileStubEnv(t)
		now, err := runMetaScript(fs, 3)
		if err != nil {
			t.Fatal(err)
		}
		garbleSlot(t, dev, fs, "stmeta-A")
		garbleSlot(t, dev, fs, "stmeta-B")
		_, _, err = recoverStub(fs, stubConfig(time.Hour, 4), now)
		if err == nil {
			t.Fatal("recovery succeeded over corrupt metadata in both slots")
		}
		if !strings.Contains(err.Error(), "corrupt in both slots") {
			t.Fatalf("wrong error for double corruption: %v", err)
		}
	})

	t.Run("one-slot-garbled", func(t *testing.T) {
		dev, fs := fileStubEnv(t)
		now, err := runMetaScript(fs, 3)
		if err != nil {
			t.Fatal(err)
		}
		garbleSlot(t, dev, fs, "stmeta-B") // stale gen 2; gen 3 in slot A survives
		rt, _, err := recoverStub(fs, stubConfig(time.Hour, 4), now)
		if err != nil {
			t.Fatalf("recovery with one garbled slot: %v", err)
		}
		for cp := 1; cp <= 3; cp++ {
			for i := 0; i < 8; i++ {
				v, ok := rt.get(uint64(cp*100 + i))
				if !ok || string(v) != string(tornVal(cp, i)) {
					t.Fatalf("batch %d key %d lost (got %q, ok=%v)", cp, cp*100+i, v, ok)
				}
			}
		}
	})

	t.Run("all-zero-slots-bootstrap", func(t *testing.T) {
		_, fs := fileStubEnv(t)
		for _, slot := range []string{"stmeta-A", "stmeta-B"} {
			f, err := fs.Create(slot)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Grow(1); err != nil {
				t.Fatal(err)
			}
		}
		m, _, err := ReadMeta(fs, "stmeta", stubMetaMagic, "stub", 0)
		if err != nil {
			t.Fatalf("all-zero slots must bootstrap, got error: %v", err)
		}
		if m != nil {
			t.Fatalf("all-zero slots decoded to %+v", m)
		}
	})
}
