package cowtree

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// RecoveryEngine extends Engine with the hooks recovery needs: the
// engine materializes nodes from their serialized images (its codec)
// and applies replayed journal records (its insert path); the core
// drives the tree walk, free-list reconstruction, leaf-chain rebuild
// and sequence-ordered replay.
type RecoveryEngine interface {
	Engine
	// MaterializeNode parses one on-disk image into a freshly
	// registered node and returns its id plus, for interior nodes, the
	// on-disk extents of its children in child order (nil for leaves).
	// The engine records ext as the node's current location.
	MaterializeNode(data []byte, ext Extent, parent NodeID) (NodeID, []Extent, error)
	// LinkChild records that the interior node's i-th child is the node
	// with the given id.
	LinkChild(parent NodeID, i int, child NodeID)
	// SetNext chains leaves left-to-right for range scans.
	SetNext(id, next NodeID)
	// ApplyRecovered replays one journal record through the engine's
	// insert path (without journaling, CPU costs or eviction),
	// sequence-guarded so stale records never overwrite newer on-disk
	// state. The engine also advances its sequence high-water mark.
	ApplyRecovered(now sim.Duration, r *wal.Record) (sim.Duration, error)
}

// RecoverTree rebuilds the engine's in-memory tree from the checkpoint
// root extent and replays surviving journal segments on top: the tree
// is parsed top-down (extents seen during the walk are live; everything
// else inside the collection file is free space), the block manager's
// free list is reconstructed as the complement, leaves are re-chained
// left-to-right, and journal records are replayed in sequence order.
// The setRoot callback hands the engine its recovered root id before
// the chain rebuild and replay run (both consult eng.Root()).
func (c *Core) RecoverTree(now sim.Duration, rootExt Extent, eng RecoveryEngine, setRoot func(NodeID)) (sim.Duration, error) {
	used := []Extent{}
	rootID, now, err := c.loadSubtree(now, rootExt, NilNode, eng, &used)
	if err != nil {
		return now, err
	}
	setRoot(rootID)
	c.rebuildFreeList(used)
	c.rebuildLeafChain(eng)
	now, err = c.replayJournals(now, eng)
	if err != nil {
		return now, err
	}
	return now, nil
}

// RecoverBootstrap rebuilds recovery state for a tree that crashed
// before its first checkpoint ever committed: both metadata slots are
// empty or torn, so nothing inside the collection file is live and the
// synced journal is the only durable state. The engine installs a fresh
// empty root first (as in Open); the core then marks the whole file
// free and replays the surviving journal segments onto it. Alternating
// slot writes mean a tree with a committed checkpoint can never lose
// both slots to one torn write, so reaching this path implies there is
// no older checkpoint to roll back to.
func (c *Core) RecoverBootstrap(now sim.Duration, eng RecoveryEngine) (sim.Duration, error) {
	c.rebuildFreeList(nil)
	return c.replayJournals(now, eng)
}

// loadSubtree reads and parses the node at ext, recursing into children,
// and returns the engine-assigned node id.
func (c *Core) loadSubtree(now sim.Duration, ext Extent, parent NodeID, eng RecoveryEngine, used *[]Extent) (NodeID, sim.Duration, error) {
	if ext.Pages <= 0 {
		return NilNode, now, fmt.Errorf("%s: empty extent in tree walk", c.cfg.Name)
	}
	buf := make([]byte, int(ext.Pages)*c.fs.PageSize())
	now, err := c.file.ReadAt(now, ext.Start, int(ext.Pages), buf)
	if err != nil {
		return NilNode, now, err
	}
	id, childExts, err := eng.MaterializeNode(buf, ext, parent)
	if err != nil {
		return NilNode, now, err
	}
	*used = append(*used, ext)
	for i, ce := range childExts {
		childID, done, err := c.loadSubtree(now, ce, id, eng, used)
		if err != nil {
			return NilNode, now, err
		}
		now = done
		eng.LinkChild(id, i, childID)
	}
	return id, now, nil
}

// rebuildFreeList reconstructs the block manager's free list as the
// complement of the extents the tree references.
func (c *Core) rebuildFreeList(used []Extent) {
	sort.Slice(used, func(i, j int) bool { return used[i].Start < used[j].Start })
	var cursor int64
	for _, e := range used {
		if e.Start > cursor {
			c.bm.Release(Extent{Start: cursor, Pages: e.Start - cursor})
		}
		if end := e.Start + e.Pages; end > cursor {
			cursor = end
		}
	}
	if total := c.file.SizePages(); total > cursor {
		c.bm.Release(Extent{Start: cursor, Pages: total - cursor})
	}
}

// rebuildLeafChain links leaves left-to-right by walking the tree in
// order.
func (c *Core) rebuildLeafChain(eng RecoveryEngine) {
	prev := NilNode
	var walk func(id NodeID)
	walk = func(id NodeID) {
		if eng.Leaf(id) {
			if prev != NilNode {
				eng.SetNext(prev, id)
			}
			prev = id
			return
		}
		for _, child := range eng.Children(id) {
			walk(child)
		}
	}
	walk(eng.Root())
}

// replayJournals collects every surviving journal segment, replays the
// records in global sequence order through the engine's recovery apply
// path, and remembers the segment names so RetireStaleSegments can
// remove them once the replayed state is durable again.
func (c *Core) replayJournals(now sim.Duration, eng RecoveryEngine) (sim.Duration, error) {
	var records []wal.Record
	c.segments = c.segments[:0]
	for _, name := range c.fs.List() {
		if !strings.HasPrefix(name, c.cfg.JournalPrefix) {
			continue
		}
		// The checkpoint metadata we recovered from may predate segments
		// that survived on disk (a cut can land after a journal rotation
		// but before the checkpoint that would record it commits). Minting
		// names from the metadata's journal id alone would collide with
		// such a survivor and fail StartJournal with ErrExist — advance the
		// counter past every name actually present.
		if id, err := strconv.ParseUint(name[len(c.cfg.JournalPrefix):], 10, 64); err == nil && id > c.journalID {
			c.journalID = id
		}
		c.segments = append(c.segments, name)
		done, err := wal.Replay(c.fs, name, now, func(r wal.Record) {
			records = append(records, r)
		})
		if err != nil {
			return now, err
		}
		now = done
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	for i := range records {
		var err error
		now, err = eng.ApplyRecovered(now, &records[i])
		if err != nil {
			return now, err
		}
	}
	return now, nil
}

// RetireStaleSegments removes the replayed journal segments, keeping the
// active writer's segment and any recycled segment waiting in the pool.
// Call it after the replayed state has been made durable (StartJournal +
// a full checkpoint).
func (c *Core) RetireStaleSegments() error {
	for _, name := range c.segments {
		if c.journal != nil && name == c.journal.Name() {
			continue
		}
		if c.poolTracks(name) {
			continue
		}
		if err := c.fs.Remove(name); err != nil {
			return err
		}
	}
	c.segments = nil
	return nil
}
