package cowtree

import (
	"encoding/binary"
	"fmt"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/extalloc"
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
	"ptsbench/internal/sim"
	"ptsbench/internal/wal"
)

// This file implements stubTree, a deliberately tiny copy-on-write tree
// engine over the Core — fixed fanout, uint64 keys, no cache, no
// buffers — exercised by the engine-agnostic regression tests in
// checkpoint_test.go. It is also the reference answer to "what must an
// engine implement": the Engine/RecoveryEngine methods below plus a
// node codec and an insert path are the entire integration surface.

const (
	stubLeafMax   = 8          // entries per leaf before a split
	stubFanoutMax = 4          // children per interior node before a split
	stubMagic     = 0x53545542 // "STUB"
	stubMetaMagic = 0x53544d54 // "STMT"
)

type stubNode struct {
	id     NodeID
	parent NodeID
	leaf   bool

	// Leaf payload, sorted by key.
	keys []uint64
	vals [][]byte
	seqs []uint64

	// Interior payload: children[i] covers keys < seps[i].
	seps     []uint64
	children []NodeID

	childExtents []Extent // recovery only

	dirty bool
	disk  Extent
	next  NodeID
}

type stubTree struct {
	core   Core
	fs     *extfs.FS
	file   *extfs.File
	bm     *extalloc.Manager
	nodes  []*stubNode
	root   NodeID
	nextID NodeID
	seq    uint64
}

// stubEnv mounts a content-enabled simulated device.
func stubEnv() (*extfs.FS, error) {
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  32 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		Profile: flash.Profile{
			Name:       "stub",
			ReadFixed:  5 * time.Microsecond,
			WriteFixed: 5 * time.Microsecond,
			ReadBW:     2 << 30,
			WriteBW:    1 << 30,
			HardwareOP: 0.25,
			EraseTime:  200 * time.Microsecond,
		},
	})
	if err != nil {
		return nil, err
	}
	dev := blockdev.New(ssd)
	dev.EnableContentStore()
	return extfs.Mount(dev, extfs.Options{})
}

func stubConfig(interval time.Duration, chunkPages int) Config {
	return Config{
		Name:                   "stub",
		MetaPrefix:             "stmeta",
		MetaMagic:              stubMetaMagic,
		JournalPrefix:          "sjournal-",
		ChunkPages:             chunkPages,
		CheckpointInterval:     interval,
		CheckpointPendingBytes: 1 << 30, // interval-driven only
		Content:                true,
	}
}

func openStub(fs *extfs.FS, cfg Config) (*stubTree, error) {
	f, err := fs.Create("collection.stub")
	if err != nil {
		return nil, err
	}
	t := &stubTree{
		fs:    fs,
		file:  f,
		bm:    extalloc.New(f, 64),
		nodes: make([]*stubNode, 1, 16), // index 0 is NilNode
	}
	t.core.Init(t, fs, f, t.bm, cfg)
	root := t.newNode(true)
	root.parent = NilNode
	t.root = root.id
	if err := t.core.StartJournal(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *stubTree) newNode(leaf bool) *stubNode {
	t.nextID++
	n := &stubNode{id: t.nextID, leaf: leaf}
	if int(n.id) != len(t.nodes) {
		panic("stub: ids must be sequential")
	}
	t.nodes = append(t.nodes, n)
	t.markDirty(n)
	return n
}

func (t *stubTree) markDirty(n *stubNode) {
	if n.dirty {
		return
	}
	n.dirty = true
	t.core.TrackDirty(n.id)
}

// ---- Engine implementation ----

func (t *stubTree) Root() NodeID            { return t.root }
func (t *stubTree) Parent(id NodeID) NodeID { return t.nodes[id].parent }
func (t *stubTree) Leaf(id NodeID) bool     { return t.nodes[id].leaf }
func (t *stubTree) Children(id NodeID) []NodeID {
	return t.nodes[id].children
}
func (t *stubTree) Dirty(id NodeID) bool { return t.nodes[id].dirty }
func (t *stubTree) NeedsWrite(id NodeID) bool {
	n := t.nodes[id]
	return n.dirty || n.disk.Pages == 0
}
func (t *stubTree) AppendNeedsWrite(id NodeID, dst []NodeID) []NodeID {
	for _, c := range t.nodes[id].children {
		if n := t.nodes[c]; n.dirty || n.disk.Pages == 0 {
			dst = append(dst, c)
		}
	}
	return dst
}
func (t *stubTree) Live(id NodeID) bool         { return t.nodes[id] != nil }
func (t *stubTree) DiskExtent(id NodeID) Extent { return t.nodes[id].disk }
func (t *stubTree) SerializedBytes(id NodeID) int {
	return len(serializeStub(t.nodes[id], nil))
}
func (t *stubTree) MarkDirty(id NodeID) { t.markDirty(t.nodes[id]) }
func (t *stubTree) Seq() uint64         { return t.seq }

func (t *stubTree) WriteNode(now sim.Duration, id NodeID) (sim.Duration, error) {
	n := t.nodes[id]
	data := serializeStub(n, func(c NodeID) Extent { return t.nodes[c].disk })
	ps := t.fs.PageSize()
	pages := int64((len(data) + ps - 1) / ps)
	if n.disk.Pages > 0 {
		t.bm.ReleaseDeferred(n.disk)
	}
	ext, err := t.bm.Alloc(pages)
	if err != nil {
		return now, err
	}
	padded := make([]byte, pages*int64(ps))
	copy(padded, data)
	done, err := t.file.WriteAt(now, ext.Start, int(pages), padded)
	if err != nil {
		return now, err
	}
	n.disk = ext
	if n.dirty {
		n.dirty = false
		t.core.NoteClean()
	}
	if n.parent != NilNode {
		t.markDirty(t.nodes[n.parent])
	}
	return done, nil
}

// ---- RecoveryEngine implementation ----

func (t *stubTree) MaterializeNode(data []byte, ext Extent, parent NodeID) (NodeID, []Extent, error) {
	n, ok := parseStub(data)
	if !ok {
		return NilNode, nil, fmt.Errorf("stub: corrupt node at %d+%d", ext.Start, ext.Pages)
	}
	t.nextID++
	n.id = t.nextID
	n.parent = parent
	n.disk = ext
	if int(n.id) != len(t.nodes) {
		panic("stub: ids must be sequential")
	}
	t.nodes = append(t.nodes, n)
	exts := n.childExtents
	n.childExtents = nil
	return n.id, exts, nil
}

func (t *stubTree) LinkChild(parent NodeID, i int, child NodeID) {
	t.nodes[parent].children[i] = child
}

func (t *stubTree) SetNext(id, next NodeID) { t.nodes[id].next = next }

func (t *stubTree) ApplyRecovered(now sim.Duration, r *wal.Record) (sim.Duration, error) {
	if r.Seq > t.seq {
		t.seq = r.Seq
	}
	key := binary.BigEndian.Uint64(r.Key)
	leaf := t.descend(key)
	i := leafSearch(leaf, key)
	if i < len(leaf.keys) && leaf.keys[i] == key && leaf.seqs[i] >= r.Seq {
		return now, nil // on-disk state is as new or newer
	}
	t.insertLeaf(leaf, key, append([]byte(nil), r.Value...), r.Seq)
	return now, nil
}

// ---- tree operations ----

func (t *stubTree) descend(key uint64) *stubNode {
	n := t.nodes[t.root]
	for !n.leaf {
		i := 0
		for i < len(n.seps) && key >= n.seps[i] {
			i++
		}
		n = t.nodes[n.children[i]]
	}
	return n
}

func leafSearch(n *stubNode, key uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (t *stubTree) insertLeaf(leaf *stubNode, key uint64, val []byte, seq uint64) {
	i := leafSearch(leaf, key)
	if i < len(leaf.keys) && leaf.keys[i] == key {
		leaf.vals[i] = val
		leaf.seqs[i] = seq
	} else {
		leaf.keys = append(leaf.keys, 0)
		copy(leaf.keys[i+1:], leaf.keys[i:])
		leaf.keys[i] = key
		leaf.vals = append(leaf.vals, nil)
		copy(leaf.vals[i+1:], leaf.vals[i:])
		leaf.vals[i] = val
		leaf.seqs = append(leaf.seqs, 0)
		copy(leaf.seqs[i+1:], leaf.seqs[i:])
		leaf.seqs[i] = seq
	}
	t.markDirty(leaf)
	if len(leaf.keys) > stubLeafMax {
		t.splitLeaf(leaf)
	}
}

func (t *stubTree) put(now sim.Duration, key uint64, val []byte) (sim.Duration, error) {
	if err := t.core.Err(); err != nil {
		return now, err
	}
	t.core.Pump(now)
	now += time.Microsecond
	t.seq++
	t.insertLeaf(t.descend(key), key, val, t.seq)
	if w := t.core.Journal(); w != nil {
		var kb [8]byte
		binary.BigEndian.PutUint64(kb[:], key)
		rec := wal.Record{Seq: t.seq, Key: kb[:], Value: val, ValueLen: len(val)}
		var err error
		now, err = w.Append(now, &rec, true)
		if err != nil {
			return now, err
		}
	}
	t.core.MaybeCheckpoint(now)
	return now, nil
}

func (t *stubTree) get(key uint64) ([]byte, bool) {
	leaf := t.descend(key)
	i := leafSearch(leaf, key)
	if i < len(leaf.keys) && leaf.keys[i] == key {
		return leaf.vals[i], true
	}
	return nil, false
}

func (t *stubTree) splitLeaf(leaf *stubNode) {
	mid := len(leaf.keys) / 2
	right := t.newNode(true)
	right.parent = leaf.parent
	right.keys = append(right.keys, leaf.keys[mid:]...)
	right.vals = append(right.vals, leaf.vals[mid:]...)
	right.seqs = append(right.seqs, leaf.seqs[mid:]...)
	leaf.keys = leaf.keys[:mid]
	leaf.vals = leaf.vals[:mid]
	leaf.seqs = leaf.seqs[:mid]
	right.next = leaf.next
	leaf.next = right.id
	t.markDirty(leaf)
	t.insertIntoParent(leaf, right.keys[0], right)
}

func (t *stubTree) insertIntoParent(left *stubNode, sep uint64, right *stubNode) {
	if left.id == t.root {
		newRoot := t.newNode(false)
		newRoot.seps = []uint64{sep}
		newRoot.children = []NodeID{left.id, right.id}
		left.parent = newRoot.id
		right.parent = newRoot.id
		t.root = newRoot.id
		return
	}
	parent := t.nodes[left.parent]
	idx := 0
	for idx < len(parent.children) && parent.children[idx] != left.id {
		idx++
	}
	parent.seps = append(parent.seps, 0)
	copy(parent.seps[idx+1:], parent.seps[idx:])
	parent.seps[idx] = sep
	parent.children = append(parent.children, NilNode)
	copy(parent.children[idx+2:], parent.children[idx+1:])
	parent.children[idx+1] = right.id
	right.parent = parent.id
	t.markDirty(parent)
	if len(parent.children) > stubFanoutMax {
		t.splitInterior(parent)
	}
}

func (t *stubTree) splitInterior(n *stubNode) {
	mid := len(n.seps) / 2
	promoted := n.seps[mid]
	right := t.newNode(false)
	right.parent = n.parent
	right.seps = append(right.seps, n.seps[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.seps = n.seps[:mid]
	n.children = n.children[:mid+1]
	for _, c := range right.children {
		t.nodes[c].parent = right.id
	}
	t.markDirty(n)
	t.insertIntoParent(n, promoted, right)
}

func (t *stubTree) flushAll(now sim.Duration) (sim.Duration, error) {
	return t.core.Checkpoint(now)
}

// recoverStub reopens a stub tree from its on-device state, mirroring
// the engines' Recover entry points step by step.
func recoverStub(fs *extfs.FS, cfg Config, now sim.Duration) (*stubTree, sim.Duration, error) {
	st, now, err := ReadMeta(fs, cfg.MetaPrefix, cfg.MetaMagic, cfg.Name, now)
	if err != nil {
		return nil, now, err
	}
	if st == nil {
		return nil, now, fmt.Errorf("stub: no valid checkpoint metadata")
	}
	f, err := fs.Open("collection.stub")
	if err != nil {
		return nil, now, err
	}
	t := &stubTree{
		fs:    fs,
		file:  f,
		bm:    extalloc.New(f, 64),
		nodes: make([]*stubNode, 1, 16),
		seq:   st.Seq,
	}
	t.core.Init(t, fs, f, t.bm, cfg)
	t.core.SetJournalState(st.JournalID, st.Gen)
	now, err = t.core.RecoverTree(now, st.Root, t, func(id NodeID) { t.root = id })
	if err != nil {
		return nil, now, err
	}
	if err := t.core.StartJournal(); err != nil {
		return nil, now, err
	}
	if end, err := t.flushAll(now); err != nil {
		return nil, now, err
	} else if end > now {
		now = end
	}
	if err := t.core.RetireStaleSegments(); err != nil {
		return nil, now, err
	}
	return t, now, nil
}

// ---- codec ----

// serializeStub encodes a node: magic(4) leaf(1) count(4), then per
// entry key(8) seq(8) vlen(4) val (leaf), or seps (8 each) followed by
// count+1 child extents (start 8, pages 4) resolved via the callback.
func serializeStub(n *stubNode, resolve func(NodeID) Extent) []byte {
	out := make([]byte, 9)
	binary.LittleEndian.PutUint32(out[0:], stubMagic)
	if n.leaf {
		out[4] = 1
		binary.LittleEndian.PutUint32(out[5:], uint32(len(n.keys)))
		for i := range n.keys {
			var hdr [20]byte
			binary.LittleEndian.PutUint64(hdr[0:], n.keys[i])
			binary.LittleEndian.PutUint64(hdr[8:], n.seqs[i])
			binary.LittleEndian.PutUint32(hdr[16:], uint32(len(n.vals[i])))
			out = append(out, hdr[:]...)
			out = append(out, n.vals[i]...)
		}
		return out
	}
	binary.LittleEndian.PutUint32(out[5:], uint32(len(n.seps)))
	for _, sep := range n.seps {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], sep)
		out = append(out, b[:]...)
	}
	for _, c := range n.children {
		var ext Extent
		if resolve != nil {
			ext = resolve(c)
		}
		var b [12]byte
		binary.LittleEndian.PutUint64(b[0:], uint64(ext.Start))
		binary.LittleEndian.PutUint32(b[8:], uint32(ext.Pages))
		out = append(out, b[:]...)
	}
	return out
}

func parseStub(data []byte) (*stubNode, bool) {
	if len(data) < 9 || binary.LittleEndian.Uint32(data[0:]) != stubMagic {
		return nil, false
	}
	n := &stubNode{leaf: data[4] == 1}
	count := int(binary.LittleEndian.Uint32(data[5:]))
	off := 9
	if n.leaf {
		for i := 0; i < count; i++ {
			if off+20 > len(data) {
				return nil, false
			}
			key := binary.LittleEndian.Uint64(data[off:])
			seq := binary.LittleEndian.Uint64(data[off+8:])
			vlen := int(binary.LittleEndian.Uint32(data[off+16:]))
			off += 20
			if off+vlen > len(data) {
				return nil, false
			}
			n.keys = append(n.keys, key)
			n.seqs = append(n.seqs, seq)
			n.vals = append(n.vals, append([]byte(nil), data[off:off+vlen]...))
			off += vlen
		}
		return n, true
	}
	for i := 0; i < count; i++ {
		if off+8 > len(data) {
			return nil, false
		}
		n.seps = append(n.seps, binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	for i := 0; i <= count; i++ {
		if off+12 > len(data) {
			return nil, false
		}
		n.childExtents = append(n.childExtents, Extent{
			Start: int64(binary.LittleEndian.Uint64(data[off:])),
			Pages: int64(binary.LittleEndian.Uint32(data[off+8:])),
		})
		n.children = append(n.children, NilNode)
		off += 12
	}
	return n, true
}
