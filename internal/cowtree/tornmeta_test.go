package cowtree

import (
	"fmt"
	"testing"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/extfs"
	"ptsbench/internal/faultdev"
	"ptsbench/internal/flash"
	"ptsbench/internal/sim"
)

// These tests script a power cut that lands exactly on a checkpoint's
// metadata-page write, for each of the two double-buffered slots. The
// write is lost whole, so recovery must fall back to the other slot's
// checkpoint and rebuild the newest batch from the surviving journal
// segment (whose recycle was also cut away). A dry fault-free pass
// locates the metadata write in the device write log; the fault pass
// replays the identical script with the cut armed at that index.

// stubFaultEnv mounts extfs on a fault-injecting wrapper (the wrapper
// is the content authority; the inner blockdev keeps only counters).
func stubFaultEnv(plan faultdev.Plan) (*extfs.FS, *faultdev.Dev, error) {
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  32 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		Profile: flash.Profile{
			Name:       "stub",
			ReadFixed:  5 * time.Microsecond,
			WriteFixed: 5 * time.Microsecond,
			ReadBW:     2 << 30,
			WriteBW:    1 << 30,
			HardwareOP: 0.25,
			EraseTime:  200 * time.Microsecond,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	fd := faultdev.Wrap(blockdev.New(ssd), plan)
	fs, err := extfs.Mount(fd, extfs.Options{})
	if err != nil {
		return nil, nil, err
	}
	return fs, fd, nil
}

func tornVal(cp, i int) []byte { return []byte(fmt.Sprintf("v%d-%d", cp, i)) }

// runMetaScript drives a stub tree through rounds of 8 puts each
// followed by an explicit checkpoint (the interval is set far out, so
// checkpoints happen only where the script says).
func runMetaScript(fs *extfs.FS, checkpoints int) (sim.Duration, error) {
	t, err := openStub(fs, stubConfig(time.Hour, 4))
	if err != nil {
		return 0, err
	}
	var now sim.Duration
	for cp := 1; cp <= checkpoints; cp++ {
		for i := 0; i < 8; i++ {
			if now, err = t.put(now, uint64(cp*100+i), tornVal(cp, i)); err != nil {
				return now, err
			}
		}
		if now, err = t.flushAll(now); err != nil {
			return now, err
		}
	}
	return now, nil
}

func TestTornMetaSlotRecovery(t *testing.T) {
	cases := []struct {
		name        string
		checkpoints int
		slot        string
	}{
		// Odd generations land in slot A, even in slot B; the cut takes
		// out the FINAL checkpoint's slot. With 3 checkpoints the torn
		// slot A still holds gen 1's stale record underneath (fallback
		// must prefer slot B's newer gen 2); with 2 checkpoints slot B
		// was being written for the first time and reads back as zeros.
		{"slot-A", 3, "stmeta-A"},
		{"slot-B", 2, "stmeta-B"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Dry pass: find the final write into the target slot file.
			fs, fd, err := stubFaultEnv(faultdev.Plan{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := runMetaScript(fs, tc.checkpoints); err != nil {
				t.Fatal(err)
			}
			f, err := fs.Open(tc.slot)
			if err != nil {
				t.Fatalf("meta slot %s missing after script: %v", tc.slot, err)
			}
			exts := f.Extents()
			if len(exts) != 1 || exts[0][1] != 1 {
				t.Fatalf("meta slot %s not a single page: %v", tc.slot, exts)
			}
			var cutAt int64
			for i, w := range fd.WriteLog() {
				if w.Off == exts[0][0] {
					cutAt = int64(i + 1) // device writes are 1-indexed
				}
			}
			if cutAt == 0 {
				t.Fatalf("no write to %s in the device log", tc.slot)
			}

			// Fault pass: identical script, the metadata write lost whole.
			fs2, fd2, err := stubFaultEnv(faultdev.Plan{
				Seed:           1,
				CutAfterWrites: cutAt,
				CutKeepPages:   -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			now, err := runMetaScript(fs2, tc.checkpoints)
			if err != nil {
				t.Fatal(err)
			}
			if !fd2.Cut() {
				t.Fatal("cut never fired (write sequence diverged from dry pass)")
			}
			fd2.PowerCut()
			fd2.PowerOn()

			rt, _, err := recoverStub(fs2, stubConfig(time.Hour, 4), now)
			if err != nil {
				t.Fatalf("recovery after torn %s: %v", tc.slot, err)
			}
			// Batches up to N-1 come from the older slot's checkpoint
			// image; batch N from replaying the journal segment whose
			// recycle the cut also threw away.
			for cp := 1; cp <= tc.checkpoints; cp++ {
				for i := 0; i < 8; i++ {
					v, ok := rt.get(uint64(cp*100 + i))
					if !ok || string(v) != string(tornVal(cp, i)) {
						t.Fatalf("batch %d key %d lost after torn %s (got %q, ok=%v)",
							cp, cp*100+i, tc.slot, v, ok)
					}
				}
			}
		})
	}
}

// TestJournalIDCollisionAfterRecovery pins the journal-name regression:
// checkpoint metadata can predate journal segments that survived a cut
// (rotation committed, checkpoint didn't), and recovery must advance
// its name counter past every survivor instead of minting a colliding
// name and failing with ErrExist.
func TestJournalIDCollisionAfterRecovery(t *testing.T) {
	fs, err := stubEnv()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := openStub(fs, stubConfig(time.Hour, 4))
	if err != nil {
		t.Fatal(err)
	}
	var now sim.Duration
	for i := 0; i < 8; i++ {
		if now, err = tree.put(now, uint64(i), tornVal(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint 1 commits metadata naming journal id 1.
	if now, err = tree.flushAll(now); err != nil {
		t.Fatal(err)
	}
	// Rotate the journal (as checkpoint 2 would) but never commit the
	// checkpoint: segment 2 exists on disk, metadata still says 1.
	if now, err = tree.put(now, 100, tornVal(9, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.core.NewCheckpointJob(); err != nil {
		t.Fatal(err)
	}
	// Recovery must replay both segments and start a journal whose name
	// does not collide with the surviving "sjournal-000002".
	rt, _, err := recoverStub(fs, stubConfig(time.Hour, 4), now)
	if err != nil {
		t.Fatalf("recovery with stranded journal segment: %v", err)
	}
	if v, ok := rt.get(100); !ok || string(v) != string(tornVal(9, 0)) {
		t.Fatalf("rotated-segment record lost (got %q, ok=%v)", v, ok)
	}
}
