package crash

import (
	"fmt"
	"testing"
)

// TestCrashMatrix is the fixed-seed CI matrix: every engine × shard
// shape survives a sampled power cut and recovers to a state the
// reference model allows. Each case runs a handful of independent
// seeds; any failure prints a one-line ptsbench repro.
func TestCrashMatrix(t *testing.T) {
	for _, eng := range []string{"lsm", "btree", "betree"} {
		for _, shards := range []int{1, 4} {
			eng, shards := eng, shards
			t.Run(fmt.Sprintf("%s/shards=%d", eng, shards), func(t *testing.T) {
				t.Parallel()
				rep, err := Run(Spec{
					Engine: eng,
					Shards: shards,
					Ops:    300,
					Seed:   1,
					Trials: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Checked == 0 || rep.Scanned == 0 {
					t.Fatalf("trivial trial: %+v", rep)
				}
			})
		}
	}
}

// TestCrashPinnedCut exercises the explicit cut pinning path: the cut
// must land exactly where the spec says.
func TestCrashPinnedCut(t *testing.T) {
	rep, err := Run(Spec{
		Engine:   "btree",
		Shards:   2,
		Ops:      200,
		Seed:     7,
		CutShard: 1,
		CutWrite: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CutShard != 1 || rep.CutWrite != 5 {
		t.Fatalf("pinned cut not honored: %+v", rep)
	}
}

// TestSpecValidate covers default filling and fail-fast rejection.
func TestSpecValidate(t *testing.T) {
	s, err := Spec{Engine: "lsm", Seed: 3}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards != 1 || s.Ops != 400 || s.Keys != 50 || s.Trials != 1 || s.CutShard != -1 {
		t.Fatalf("defaults wrong: %+v", s)
	}
	bad := []Spec{
		{},                          // no engine
		{Engine: "nope"},            // unknown engine
		{Engine: "lsm", Shards: 65}, // too many shards
		{Engine: "lsm", Ops: -1},
		{Engine: "lsm", Trials: -1},
		{Engine: "lsm", Shards: 2, CutShard: 2, CutWrite: 1},
		{Engine: "lsm", CutWrite: -5},
	}
	for i, b := range bad {
		if _, err := b.Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, b)
		}
	}
}

// TestReproLine pins the repro format the CLI prints on failure: every
// knob shaping the trial appears, so the line replays without the spec
// it came from.
func TestReproLine(t *testing.T) {
	s, err := Spec{Engine: "lsm", Shards: 4, Ops: 300}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	got := ReproLine(s, 99)
	want := "ptsbench crash -engine lsm -shards 4 -ops 300 -keys 37 -seed 99"
	if got != want {
		t.Fatalf("repro line %q, want %q", got, want)
	}

	s, err = Spec{
		Engine:   "btree",
		Shards:   2,
		Ops:      200,
		Keys:     64,
		Replicas: 3,
		ReplMode: "quorum",
		CutShard: 1,
		CutWrite: 5,
	}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	got = ReproLine(s, 7)
	want = "ptsbench crash -engine btree -shards 2 -ops 200 -keys 64 -seed 7" +
		" -replicas 3 -repl-mode quorum -cut-shard 1 -cut-write 5"
	if got != want {
		t.Fatalf("replicated repro line %q, want %q", got, want)
	}
}
