package crash

// Error-plan trials: instead of cutting power, the fault plan arms the
// host-stack error model (internal/faultdev) on ONE replica of one
// shard at a sampled write boundary — transient EIOs, short writes,
// misdirected writes, lying fsyncs — and the harness proves the stack
// degrades instead of corrupting:
//
//  1. the serving layer absorbs transient errors with deterministic
//     virtual-time retries and fails persistently-erroring replicas
//     out of their groups on its own (store.Stack.AutoFailover), so
//     the op log keeps acknowledging end to end,
//  2. down its damaged replica, the group still holds every
//     acknowledged write (verifyDegraded) — zero loss at failover,
//  3. the damaged replica is power-cycled and recovered from whatever
//     its image really holds. Recovery either succeeds (any staleness
//     is repaired by Reconcile like a normal rejoin) or refuses
//     LOUDLY — page parse/CRC failures, the cowtree sequence-floor
//     check, the LSM table-id binding. A loud refusal is the detection
//     contract working, not a trial failure: the replica is rebuilt
//     empty and Reconcile copies it back from the surviving authority,
//     exactly like an operator replacing a bad disk,
//  4. afterwards every replica is entry-identical and the full model
//     verification passes — zero acknowledged-write loss in every
//     case, deterministically replayable from the seed line.
//
// Serving-phase reads on the victim's shard are not checkable: until
// its damage is DETECTED the victim legally serves reads (chain tail,
// quorum first-consistent), and silently stale data is exactly what
// the end-state verification — after failover, recovery, reconcile —
// convicts the stack of keeping or repairs.

import (
	"fmt"
	"os"
	"path/filepath"

	"ptsbench/internal/engine"
	"ptsbench/internal/faultdev"
	"ptsbench/internal/kvtest"
	"ptsbench/internal/replica"
	"ptsbench/internal/sim"
	"ptsbench/internal/store"
)

// errorPlan builds the victim replica's fault plan: the error model
// arms at the sampled write (a prefix of the log runs clean, like the
// cut trials) and every requested kind fires per-op with ErrorProb.
// The fsynclie kind also carries the harness's drop/torn severities:
// a lied-about barrier leaves its window volatile, and the trial's
// power cycle is what turns the lie into actual damage.
func errorPlan(spec Spec, seed uint64, armWrite int64) faultdev.Plan {
	p := faultdev.Plan{
		Seed:           seed*0x2545F4914F6CDD1D + 1,
		ArmAfterWrites: armWrite,
	}
	for _, k := range spec.ErrorKinds {
		switch k {
		case "eio":
			p.ReadEIOProb = spec.ErrorProb
			p.WriteEIOProb = spec.ErrorProb
		case "short":
			p.ShortProb = spec.ErrorProb
		case "misdirect":
			p.MisdirectProb = spec.ErrorProb
		case "fsynclie":
			p.FsyncLieProb = spec.ErrorProb
			p.DropProb = dropProb
			p.TornProb = tornProb
		}
	}
	return p
}

// runErrorTrial executes one (spec, seed) error-plan trial: calibrate,
// arm the error model on the sampled replica, serve the whole op log
// through retries and automatic failover, then recover or rebuild the
// victim and verify zero acknowledged-write loss.
func runErrorTrial(spec Spec, seed uint64) (*Report, error) {
	ops := genOps(spec, seed)

	dir, calibDir, faultDir, rebuildDir := "", "", "", ""
	if spec.Device == "file" {
		if spec.Dir == "" {
			tmp, err := os.MkdirTemp("", "ptsbench-crash-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		} else {
			dir = filepath.Join(spec.Dir, fmt.Sprintf("trial-%d", seed))
		}
		calibDir = filepath.Join(dir, "calib")
		faultDir = filepath.Join(dir, "fault")
		rebuildDir = filepath.Join(dir, "rebuild")
	}

	// Pass 1 (calibration): identical stacks, no faults — pass 2's Nth
	// device write on any replica is pass 1's Nth write, so the sampled
	// arm point is meaningful.
	writes, err := calibrateReplicated(spec, ops, calibDir)
	if err != nil {
		return nil, fmt.Errorf("calibration (fault-free) pass failed: %w", err)
	}
	victimShard, victimRep, armWrite := sampleReplicaCut(spec, seed, writes)
	if armWrite == 0 {
		return nil, fmt.Errorf("op log produced no device writes to arm at")
	}

	rep := &Report{Spec: spec, Seed: seed, CutShard: victimShard, CutReplica: victimRep, CutWrite: armWrite}
	plans := make([][]faultdev.Plan, spec.Shards)
	for i := range plans {
		plans[i] = make([]faultdev.Plan, spec.Replicas)
	}
	plans[victimShard][victimRep] = errorPlan(spec, seed, armWrite)
	groups, st, err := buildReplicatedEnv(spec, plans, faultDir, true)
	if err != nil {
		return rep, err
	}
	defer closeReplicated(groups)
	defer st.Close()

	// Pass 2: replay the WHOLE op log. Errors fire probabilistically
	// from the arm point on; the serving layer retries, fails the
	// victim over when damage turns persistent, and the machine never
	// stops acknowledging.
	model := kvtest.NewModel()
	var lastDone sim.Duration
	for start := 0; start < len(ops); start += batchSize {
		end := start + batchSize
		if end > len(ops) {
			end = len(ops)
		}
		comps := submitBatch(st, ops, start, end)
		for _, c := range comps {
			if c.Done > lastDone {
				lastDone = c.Done
			}
		}
		if err := applyErrorBatch(model, ops, comps, victimShard, spec.Shards); err != nil {
			return rep, err
		}
	}
	rep.CutOp = len(ops)
	victim := groups[victimShard].envs[victimRep]
	rep.Injected = victim.fd.Injected().Total()

	// Serving may already have failed the victim out (a persistent
	// error through AutoFailover); otherwise remove it now — its device
	// is known-damaged, and the degraded check below must not let the
	// damaged copy answer for the group.
	if groups[victimShard].group.Alive(victimRep) {
		if err := groups[victimShard].group.Kill(victimRep); err != nil {
			return rep, err
		}
	}
	if err := st.ClearFailure(victimShard); err != nil {
		return rep, err
	}

	// Degraded serving: down the damaged replica, the group must hold
	// every key to its allowed states — zero acknowledged-write loss.
	now, err := verifyDegraded(st, model, lastDone)
	if err != nil {
		return rep, fmt.Errorf("degraded group after failing shard %d replica %d (armed at write %d): %w",
			victimShard, victimRep, armWrite, err)
	}

	// Power-cycle the victim: unbarriered writes resolve (for fsynclie,
	// the lied-about windows drop or tear here), the error model
	// disarms, and the file backend is proven byte-identical to the
	// resolved image.
	victim.fd.PowerCut()
	if _, err := victim.fd.PowerOn(); err != nil {
		return rep, fmt.Errorf("shard %d replica %d power-on: %w", victimShard, victimRep, err)
	}
	if victim.fdev != nil {
		if err := verifyFileImage(victim); err != nil {
			return rep, fmt.Errorf("shard %d replica %d after power-on (armed at write %d): %w",
				victimShard, victimRep, armWrite, err)
		}
	}

	// Recover the victim from its damaged image. A loud refusal is the
	// detection contract working — the stack refused to serve damaged
	// state — and downgrades the rejoin to a rebuild-from-peers: a
	// fresh empty stack that Reconcile repopulates from the authority.
	reng, rnow, rerr := victim.cfg.Recover(engine.Env{
		FS:      victim.fs,
		RNG:     sim.NewRNG(uint64(900 + victimShard*8 + victimRep)),
		Content: true,
	}, now)
	if rerr != nil {
		rep.RecoveredLoud = true
		fresh, err := buildShard(spec, victimShard, victimRep, faultdev.Plan{}, rebuildDir)
		if err != nil {
			return rep, fmt.Errorf("rebuilding shard %d replica %d after loud recovery refusal (%v): %w",
				victimShard, victimRep, rerr, err)
		}
		if victim.fdev != nil {
			victim.fdev.Close()
		}
		groups[victimShard].envs[victimRep] = fresh
		reng, rnow = fresh.eng, now
	}
	if err := groups[victimShard].group.Revive(victimRep, replica.Member{Engine: reng, Start: rnow}); err != nil {
		return rep, err
	}
	recNow, err := groups[victimShard].group.Reconcile(maxDur(now, rnow))
	if err != nil {
		return rep, fmt.Errorf("reconciling shard %d replica %d: %w", victimShard, victimRep, err)
	}

	// Reconvergence and full model verification, exactly like the cut
	// trials: every replica entry-identical, every key in its allowed
	// states, post-failover write/flush/read cycle intact.
	if err := verifyConverged(groups, recNow); err != nil {
		return rep, fmt.Errorf("after reconciling shard %d replica %d: %w", victimShard, victimRep, err)
	}
	if err := verify(rep, st, model, spec, []sim.Duration{recNow}); err != nil {
		return rep, fmt.Errorf("errors armed at shard %d replica %d write %d: %w", victimShard, victimRep, armWrite, err)
	}
	return rep, nil
}

// applyErrorBatch folds one batch's completions into the model. Ops on
// the victim's shard may error at any point once the model is armed —
// retry/failover absorbs almost all of them, but an op that exhausts
// its budget surfaces its error, and its effect on the group is then
// ambiguous (the chain or quorum apply may have stopped part-way).
// Reads on the victim shard are skipped entirely: the damaged replica
// may legally serve them before detection. Error-free shards must stay
// perfect.
func applyErrorBatch(model *kvtest.Model, ops []opRec, comps []store.Completion, victimShard, shards int) error {
	for _, c := range comps {
		idx := int(c.Seq)
		op := ops[idx]
		onVictim := store.ShardOf(op.id, shards) == victimShard
		if c.Err != nil && !onVictim {
			return fmt.Errorf("op %d (%v key %d) failed on an error-free shard: %w", idx, op.kind, op.id, c.Err)
		}
		switch op.kind {
		case store.Put:
			if c.Err != nil {
				model.AllowPut(op.id, op.val)
			} else {
				model.Put(op.id, op.val)
			}
		case store.Delete:
			if c.Err != nil {
				model.AllowDelete(op.id)
			} else {
				model.Delete(op.id)
			}
		default: // Get
			if onVictim {
				continue
			}
			if !model.Check(op.id, c.Value, c.Found) {
				return fmt.Errorf("op %d: get key %d outside its allowed states (found=%v, ambiguous=%v)",
					idx, op.id, c.Found, model.Ambiguous(op.id))
			}
		}
	}
	return nil
}
