package crash

// Tests for error-plan trials: every engine survives every host-stack
// error kind in both replication shapes with zero acknowledged-write
// loss, and the trial is deterministically replayable from its seed.

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestErrorTrialMatrix is the fixed-seed error-injection CI matrix:
// every engine × replication shape × error kind. Each cell runs
// several seeds so the arm point moves around the op log.
func TestErrorTrialMatrix(t *testing.T) {
	for _, eng := range []string{"lsm", "btree", "betree"} {
		for _, mc := range []struct {
			mode     string
			replicas int
		}{{"chain", 2}, {"quorum", 3}} {
			for _, kind := range []string{"eio", "short", "misdirect", "fsynclie"} {
				eng, mc, kind := eng, mc, kind
				t.Run(fmt.Sprintf("%s/%s/%s", eng, mc.mode, kind), func(t *testing.T) {
					t.Parallel()
					rep, err := Run(Spec{
						Engine:     eng,
						Ops:        250,
						Seed:       21,
						Trials:     2,
						Replicas:   mc.replicas,
						ReplMode:   mc.mode,
						ErrorKinds: []string{kind},
						ErrorProb:  0.05,
					})
					if err != nil {
						t.Fatal(err)
					}
					if rep.Checked == 0 || rep.Scanned == 0 {
						t.Fatalf("trivial trial: %+v", rep)
					}
				})
			}
		}
	}
}

// TestErrorTrialAllKinds arms every kind at once on one replica — the
// worst single-device day the model can produce.
func TestErrorTrialAllKinds(t *testing.T) {
	rep, err := Run(Spec{
		Engine:     "btree",
		Shards:     2,
		Ops:        250,
		Seed:       5,
		Trials:     2,
		Replicas:   2,
		ErrorKinds: []string{"eio", "short", "misdirect", "fsynclie"},
		ErrorProb:  0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked == 0 {
		t.Fatalf("trivial trial: %+v", rep)
	}
}

// TestErrorTrialInjects proves the model actually fires under the
// matrix shape: across a handful of seeds, at least one trial must
// inject at least one event (a zero-injection run would vacuously
// pass).
func TestErrorTrialInjects(t *testing.T) {
	var injected int64
	for seed := uint64(21); seed < 27; seed++ {
		rep, err := Run(Spec{
			Engine:     "btree",
			Ops:        250,
			Seed:       seed,
			Replicas:   2,
			ErrorKinds: []string{"eio"},
			ErrorProb:  0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		injected += rep.Injected
	}
	if injected == 0 {
		t.Fatal("no error events injected across six seeds")
	}
}

// TestErrorTrialFileDevice runs one error trial on real backing files:
// after the victim's power cycle the file must match the resolved
// durable image byte for byte before recovery reads it.
func TestErrorTrialFileDevice(t *testing.T) {
	rep, err := Run(Spec{
		Engine:     "lsm",
		Ops:        200,
		Seed:       9,
		Replicas:   2,
		Device:     "file",
		ErrorKinds: []string{"short", "fsynclie"},
		ErrorProb:  0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked == 0 {
		t.Fatalf("trivial trial: %+v", rep)
	}
}

// TestErrorTrialDeterminism: the same (spec, seed) replays to the same
// arm coordinates, injection counts and verification counts.
func TestErrorTrialDeterminism(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Spec{
			Engine:     "betree",
			Ops:        250,
			Seed:       17,
			Replicas:   3,
			ReplMode:   "quorum",
			ErrorKinds: []string{"misdirect", "eio"},
			ErrorProb:  0.06,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.CutShard != b.CutShard || a.CutReplica != b.CutReplica || a.CutWrite != b.CutWrite ||
		a.Injected != b.Injected || a.RecoveredLoud != b.RecoveredLoud ||
		a.Checked != b.Checked || a.Scanned != b.Scanned || a.Ambiguous != b.Ambiguous {
		t.Fatalf("error trials diverged:\n%+v\n%+v", a, b)
	}
}

// TestErrorSpecValidate covers the error-field validation paths and
// defaults.
func TestErrorSpecValidate(t *testing.T) {
	s, err := Spec{Engine: "lsm", Replicas: 2, ErrorKinds: []string{"eio"}}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if s.ErrorProb != 0.05 {
		t.Fatalf("error_prob should default to 0.05, got %g", s.ErrorProb)
	}
	bad := []Spec{
		{Engine: "lsm", Replicas: 2, ErrorKinds: []string{"enoent"}},               // unknown kind
		{Engine: "lsm", Replicas: 2, ErrorKinds: []string{"eio", "eio"}},           // duplicate
		{Engine: "lsm", Replicas: 2, ErrorKinds: []string{"eio"}, ErrorProb: 1.5},  // prob > 1
		{Engine: "lsm", Replicas: 2, ErrorKinds: []string{"eio"}, ErrorProb: -0.1}, // negative prob
		{Engine: "lsm", ErrorKinds: []string{"eio"}},                               // unreplicated
		{Engine: "lsm", Replicas: 2, ErrorProb: 0.1},                               // prob without kinds
	}
	for i, b := range bad {
		if _, err := b.Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, b)
		}
	}
}

// TestErrorSpecJSONRoundTrip pins the spec's JSON field names — repro
// lines and saved spec files depend on them.
func TestErrorSpecJSONRoundTrip(t *testing.T) {
	in := Spec{
		Engine:     "btree",
		Replicas:   2,
		ErrorKinds: []string{"short", "fsynclie"},
		ErrorProb:  0.07,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"error_kinds":["short","fsynclie"]`, `"error_prob":0.07`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("encoded spec %s missing %s", b, want)
		}
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the spec:\nin  %+v\nout %+v", in, out)
	}
}

// TestErrorReproLine pins the repro line format for error trials.
func TestErrorReproLine(t *testing.T) {
	spec, err := Spec{
		Engine:     "lsm",
		Replicas:   3,
		ReplMode:   "quorum",
		ErrorKinds: []string{"eio", "fsynclie"},
		ErrorProb:  0.05,
	}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	got := ReproLine(spec, 42)
	want := "ptsbench crash -engine lsm -shards 1 -ops 400 -keys 50 -seed 42" +
		" -replicas 3 -repl-mode quorum -errors eio,fsynclie -error-prob 0.05"
	if got != want {
		t.Fatalf("repro line drifted:\ngot  %s\nwant %s", got, want)
	}
}
