package crash

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFileCrashMatrix is the file-device half of the CI crash matrix:
// the identical harness — op log, sampled cut, faultdev resolution,
// reference-model check — runs over real backing files
// (internal/filedev) instead of the flash simulator, and after every
// power-on additionally proves that the backing file matches the
// wrapper's resolved durable image byte for byte. Any failure prints a
// replayable `ptsbench crash ... -device file` line.
func TestFileCrashMatrix(t *testing.T) {
	for _, eng := range []string{"lsm", "btree", "betree"} {
		for _, shards := range []int{1, 4} {
			eng, shards := eng, shards
			t.Run(fmt.Sprintf("%s/shards=%d", eng, shards), func(t *testing.T) {
				t.Parallel()
				rep, err := Run(Spec{
					Engine: eng,
					Shards: shards,
					Ops:    300,
					Seed:   11,
					Trials: 3,
					Device: "file",
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Checked == 0 || rep.Scanned == 0 {
					t.Fatalf("trivial trial: %+v", rep)
				}
			})
		}
	}
}

// TestFileCrashUserDir pins the on-disk layout a caller-provided Dir
// keeps for inspection: trial-SEED/{calib,fault}/shard-NNN.img, with
// non-empty fault images surviving the run.
func TestFileCrashUserDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(Spec{
		Engine: "lsm",
		Ops:    200,
		Seed:   5,
		Device: "file",
		Dir:    dir,
	}); err != nil {
		t.Fatal(err)
	}
	for _, pass := range []string{"calib", "fault"} {
		img := filepath.Join(dir, "trial-5", pass, "shard-000.img")
		st, err := os.Stat(img)
		if err != nil {
			t.Fatalf("%s image missing: %v", pass, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s image empty", pass)
		}
	}
}

// TestFileDeviceSpec covers the device field's validation and the repro
// line's -device suffix.
func TestFileDeviceSpec(t *testing.T) {
	s, err := Spec{Engine: "lsm"}.Validate()
	if err != nil || s.Device != "sim" {
		t.Fatalf("default device = %q, err %v; want sim", s.Device, err)
	}
	for _, bad := range []Spec{
		{Engine: "lsm", Device: "ramdisk"},
		{Engine: "lsm", Dir: "/tmp/x"}, // dir without the file device
	} {
		if _, err := bad.Validate(); err == nil {
			t.Errorf("bad spec validated: %+v", bad)
		}
	}
	got := ReproLine(Spec{Engine: "btree", Shards: 2, Ops: 300, Device: "file"}, 42)
	if !strings.HasSuffix(got, " -device file") {
		t.Fatalf("file repro line %q lacks -device file", got)
	}
}
