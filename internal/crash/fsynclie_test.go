package crash

// Scripted fsync-lie regressions: a single replica over a lying device
// either recovers to a state consistent with some acknowledged history
// or refuses LOUDLY — it must never come back with silently invented
// or corrupt data. The pinned seeds prove each engine's loud-detection
// path actually fires (a sweep that never went loud would be testing
// nothing), and pin the detection message so it can't silently rot.

import (
	"strings"
	"testing"

	"ptsbench/internal/engine"
	"ptsbench/internal/faultdev"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// fsyncLieOutcome runs one scripted trial: a put/flush workload over a
// device whose barriers lie, a power cut mid-stream, then recovery.
// Returns whether recovery refused loudly and with what message; on a
// quiet recovery it verifies every surviving value matches something
// the workload actually acknowledged.
func fsyncLieOutcome(t *testing.T, engName string, seed uint64) (bool, string) {
	t.Helper()
	spec, err := Spec{Engine: engName, Seed: seed}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	// High lie rate, and the power cut lands right after the final
	// checkpoint: when that checkpoint's commit sync lies, its whole
	// window (nodes, meta, manifest, journal recycling) is still
	// volatile at the cut, and the drop/torn resolution at power-on
	// turns the lie into real damage for recovery to catch.
	plan := faultdev.Plan{
		Seed:         seed,
		FsyncLieProb: 0.6,
		DropProb:     0.5,
		TornProb:     0.5,
	}
	sh, err := buildShard(spec, 0, 0, plan, "")
	if err != nil {
		t.Fatal(err)
	}
	const keys = 40
	acked := make(map[uint64][][]byte, keys)
	var now sim.Duration
	for i := 0; i < 160; i++ {
		id := uint64(i % keys)
		val := []byte{byte(i / keys), byte(id)}
		now, err = sh.eng.Put(now, kv.EncodeKey(id), val, 0)
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked[id] = append(acked[id], val)
		if (i+1)%25 == 0 {
			now, err = sh.eng.FlushAll(now)
			if err != nil {
				t.Fatalf("flush at %d: %v", i, err)
			}
		}
	}
	now, err = sh.eng.FlushAll(now)
	if err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if sh.fd.Injected().FsyncLies == 0 {
		t.Fatalf("seed %d: no fsync lies injected — trial is vacuous", seed)
	}
	sh.fd.PowerCut()
	if _, err := sh.fd.PowerOn(); err != nil {
		t.Fatal(err)
	}
	reng, rnow, rerr := sh.cfg.Recover(engine.Env{FS: sh.fs, RNG: sim.NewRNG(900), Content: true}, now)
	if rerr != nil {
		return true, rerr.Error()
	}
	// Quiet recovery: with one copy, writes the lying barrier claimed
	// durable may be gone — that loss is what replication's read-repair
	// exists for — but whatever IS served must be an acknowledged value,
	// never invented or corrupt bytes.
	for id := uint64(0); id < keys; id++ {
		_, got, found, gerr := reng.Get(rnow, kv.EncodeKey(id))
		if gerr != nil {
			t.Fatalf("seed %d: quiet recovery then failing read of key %d: %v", seed, id, gerr)
		}
		if !found {
			continue
		}
		ok := false
		for _, v := range acked[id] {
			if len(got) == len(v) && got[0] == v[0] && got[1] == v[1] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("seed %d: key %d recovered to %v, never acknowledged", seed, id, got)
		}
	}
	return false, ""
}

// TestFsyncLieLoudDetection pins, per engine, a seed whose trial ends
// in a loud recovery refusal, and the detection message it produces.
// The cowtree engines catch the lie via the checkpoint sequence floor;
// the LSM catches it via manifest/SST integrity (a referenced table
// whose acknowledged image never landed).
func TestFsyncLieLoudDetection(t *testing.T) {
	cases := []struct {
		engine  string
		seed    uint64
		message string
	}{
		{"btree", 11, "below checkpoint floor"},
		{"betree", 11, "below checkpoint floor"},
		{"lsm", 19, "footer magic not found"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.engine, func(t *testing.T) {
			loud, msg := fsyncLieOutcome(t, c.engine, c.seed)
			if !loud {
				t.Fatalf("seed %d recovered quietly; want loud refusal", c.seed)
			}
			if !strings.Contains(msg, c.message) {
				t.Fatalf("loud message drifted:\ngot  %s\nwant substring %q", msg, c.message)
			}
		})
	}
}

// TestFsyncLieSweep runs every engine across a band of seeds: every
// outcome must be loud or acknowledged-consistent, and at least one
// seed per engine must go loud.
func TestFsyncLieSweep(t *testing.T) {
	for _, engName := range []string{"lsm", "btree", "betree"} {
		engName := engName
		t.Run(engName, func(t *testing.T) {
			t.Parallel()
			louds := 0
			for seed := uint64(1); seed <= 20; seed++ {
				loud, msg := fsyncLieOutcome(t, engName, seed)
				if loud {
					louds++
					t.Logf("seed %d loud: %s", seed, msg)
				}
			}
			if louds == 0 {
				t.Fatal("no seed produced a loud recovery refusal")
			}
		})
	}
}
