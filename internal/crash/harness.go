package crash

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/engine"
	"ptsbench/internal/extfs"
	"ptsbench/internal/faultdev"
	"ptsbench/internal/filedev"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/kvtest"
	"ptsbench/internal/sim"
	"ptsbench/internal/store"
)

// Fault severity of the sampled cut: unbarriered writes drop or tear
// with these probabilities at power-on. The harness never injects
// bit-rot — corrupting *durable* state is beyond the crash-consistency
// contract it verifies (scripted tests use Plan.RotPages directly).
const (
	dropProb = 0.25
	tornProb = 0.5
)

// batchSize is the ops submitted per store Pump. Batches carrying
// several writes exercise group commit, so torn group syncs are part of
// the sampled fault space.
const batchSize = 16

// Report summarizes one passing trial (the last one, when Trials > 1).
type Report struct {
	Spec       Spec
	Seed       uint64
	CutShard   int
	CutReplica int // replica the cut killed (replicated trials only)
	CutWrite   int64
	CutOp      int // ops submitted before the machine (or replica) died
	Ambiguous  int // keys with more than one allowed recovered state
	Checked    int // keys verified by point reads
	Scanned    int // entries verified by the full scan
	// Error-plan trials only:
	Injected      int64 // device error-model events the victim fired
	RecoveredLoud bool  // victim recovery refused loudly; replica rebuilt
}

// ReproLine renders the CLI invocation that replays a trial exactly:
// every knob that shapes the op log, the cut sampling or the device
// stack appears, so the line works without consulting the spec it came
// from.
func ReproLine(spec Spec, seed uint64) string {
	line := fmt.Sprintf("ptsbench crash -engine %s -shards %d -ops %d -keys %d -seed %d",
		spec.Engine, spec.Shards, spec.Ops, spec.Keys, seed)
	if spec.Replicas > 1 {
		line += fmt.Sprintf(" -replicas %d -repl-mode %s", spec.Replicas, spec.ReplMode)
	}
	if len(spec.ErrorKinds) > 0 {
		line += fmt.Sprintf(" -errors %s -error-prob %g", strings.Join(spec.ErrorKinds, ","), spec.ErrorProb)
	}
	if spec.CutShard >= 0 && spec.CutWrite > 0 {
		line += fmt.Sprintf(" -cut-shard %d -cut-write %d", spec.CutShard, spec.CutWrite)
	}
	if spec.Device == "file" {
		line += " -device file"
	}
	if spec.Dir != "" {
		line += fmt.Sprintf(" -dir %s", spec.Dir)
	}
	return line
}

// Run validates the spec and executes its trials. On failure the error
// begins with the trial's reproduction line.
func Run(spec Spec) (*Report, error) {
	spec, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	var rep *Report
	for t := 0; t < spec.Trials; t++ {
		seed := spec.Seed + uint64(t)
		switch {
		case len(spec.ErrorKinds) > 0:
			rep, err = runErrorTrial(spec, seed)
		case spec.Replicas > 1:
			rep, err = runReplicaTrial(spec, seed)
		default:
			rep, err = runTrial(spec, seed)
		}
		if err != nil {
			return rep, fmt.Errorf("reproduce: %s\n%w", ReproLine(spec, seed), err)
		}
	}
	return rep, nil
}

// opRec is one recorded op of the deterministic log.
type opRec struct {
	kind store.OpKind
	id   uint64
	val  []byte
}

// genOps builds the seed-determined op log: mostly puts, some deletes
// and reads, values self-describing (key id, op index, seed) so any
// stale or cross-wired value is visible on inspection.
func genOps(spec Spec, seed uint64) []opRec {
	rng := sim.NewRNG(seed ^ 0x9E3779B97F4A7C15)
	ops := make([]opRec, spec.Ops)
	for i := range ops {
		id := rng.Uint64n(uint64(spec.Keys))
		switch r := rng.Uint64n(100); {
		case r < 15:
			ops[i] = opRec{kind: store.Get, id: id}
		case r < 30:
			ops[i] = opRec{kind: store.Delete, id: id}
		default:
			val := make([]byte, 24)
			binary.LittleEndian.PutUint64(val[0:], id)
			binary.LittleEndian.PutUint64(val[8:], uint64(i))
			binary.LittleEndian.PutUint64(val[16:], seed)
			ops[i] = opRec{kind: store.Put, id: id, val: val}
		}
	}
	return ops
}

// shardEnv is one shard's device stack with its fault wrapper. fdev is
// non-nil only on the file device, where the inner authority is a real
// backing file instead of the flash simulator.
type shardEnv struct {
	dev  blockdev.Host
	fdev *filedev.Dev
	fd   *faultdev.Dev
	fs   *extfs.FS
	cfg  engine.Config
	eng  engine.Engine
}

// buildShard assembles device → faultdev → extfs → engine for replica r
// of shard i (r is always 0 unreplicated, and image names and RNG
// streams then match the historical single-copy layout exactly). The
// inner device is the flash simulator (dir == "") or a real backing
// file in dir (spec.Device "file"; fixed I/O costs keep both passes of
// a trial write-for-write identical). The filesystem mounts on the
// FAULT wrapper, so every engine write, read and sync barrier passes
// through the fault plan; the inner device keeps the iostat counters
// and is not the content authority for reads — the wrapper is. On the
// file device the wrapper still forwards real bytes and barriers down,
// so the file carries real content and real fsyncs, and power-on
// rewinds it to the resolved durable image via the Restorer hook.
func buildShard(spec Spec, i, r int, plan faultdev.Plan, dir string) (*shardEnv, error) {
	image := fmt.Sprintf("shard-%03d.img", i)
	rngSeed := uint64(100 + i)
	if spec.Replicas > 1 {
		image = fmt.Sprintf("shard-%03d-r%d.img", i, r)
		rngSeed = uint64(100 + i*8 + r)
	}
	var (
		host blockdev.Host
		fdev *filedev.Dev
	)
	if dir == "" {
		ssd, err := flash.NewDevice(flash.Config{
			LogicalBytes:  32 << 20,
			PageSize:      4096,
			PagesPerBlock: 64,
			Profile:       flash.ProfileSSD1().Scaled(4096),
		})
		if err != nil {
			return nil, err
		}
		host = blockdev.New(ssd)
	} else {
		var err error
		fdev, err = filedev.Open(filedev.Config{
			Path:  filepath.Join(dir, image),
			Pages: (32 << 20) / 4096,
		})
		if err != nil {
			return nil, err
		}
		host = fdev
	}
	fd := faultdev.Wrap(host, plan)
	fs, err := extfs.Mount(fd, extfs.Options{})
	if err != nil {
		return nil, err
	}
	drv, err := engine.Lookup(spec.Engine)
	if err != nil {
		return nil, err
	}
	cfg := drv.Configure(engine.Sizing{DatasetBytes: 16 << 20})
	if err := cfg.ApplyTunables(DurabilityTunables(spec.Engine)); err != nil {
		return nil, err
	}
	if err := cfg.ApplyTunables(spec.Tunables); err != nil {
		return nil, err
	}
	eng, err := cfg.Open(engine.Env{FS: fs, RNG: sim.NewRNG(rngSeed), Content: true})
	if err != nil {
		return nil, err
	}
	return &shardEnv{dev: host, fdev: fdev, fd: fd, fs: fs, cfg: cfg, eng: eng}, nil
}

func buildEnv(spec Spec, plans []faultdev.Plan, dir string) ([]*shardEnv, *store.Store, error) {
	shards := make([]*shardEnv, spec.Shards)
	st, err := store.New(spec.Shards, func(i int) (store.Stack, error) {
		sh, err := buildShard(spec, i, 0, plans[i], dir)
		if err != nil {
			return store.Stack{}, err
		}
		shards[i] = sh
		return store.Stack{Engine: sh.eng, Dev: sh.dev, Fault: sh.fd}, nil
	})
	if err != nil {
		closeShards(shards)
		return nil, nil, err
	}
	return shards, st, nil
}

// closeShards closes any file-backed devices (the simulator needs no
// teardown). Safe on partially-built slices.
func closeShards(shards []*shardEnv) {
	for _, sh := range shards {
		if sh != nil && sh.fdev != nil {
			sh.fdev.Close()
		}
	}
}

// runTrial executes one (spec, seed) trial: a fault-free calibration
// pass counts per-shard write traffic, the harness samples a cut point
// from it, and the faulty pass replays the identical op log, dies at
// the cut, recovers every shard and verifies the result.
func runTrial(spec Spec, seed uint64) (*Report, error) {
	ops := genOps(spec, seed)

	// On the file device each pass gets its own image directory: Open
	// truncates, so the layout survives for post-mortem inspection when
	// the caller pinned Dir, and a temp default leaks nothing.
	dir, calibDir, faultDir := "", "", ""
	if spec.Device == "file" {
		if spec.Dir == "" {
			tmp, err := os.MkdirTemp("", "ptsbench-crash-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		} else {
			dir = filepath.Join(spec.Dir, fmt.Sprintf("trial-%d", seed))
		}
		calibDir = filepath.Join(dir, "calib")
		faultDir = filepath.Join(dir, "fault")
	}

	// Pass 1 (calibration): same wrapper, no faults — identical timing
	// and write sequence, so pass 2's Nth write is pass 1's Nth write.
	writes, err := calibrate(spec, ops, calibDir)
	if err != nil {
		return nil, fmt.Errorf("calibration (fault-free) pass failed: %w", err)
	}
	cutShard, cutWrite := sampleCut(spec, seed, writes)
	if cutWrite == 0 {
		return nil, fmt.Errorf("op log produced no device writes to cut at")
	}

	rep := &Report{Spec: spec, Seed: seed, CutShard: cutShard, CutWrite: cutWrite}
	plans := make([]faultdev.Plan, spec.Shards)
	plans[cutShard] = faultdev.Plan{
		Seed:           seed*0x2545F4914F6CDD1D + 1,
		CutAfterWrites: cutWrite,
		CutKeepPages:   0, // random tear of the in-flight write
		DropProb:       dropProb,
		TornProb:       tornProb,
	}
	shards, st, err := buildEnv(spec, plans, faultDir)
	if err != nil {
		return rep, err
	}
	defer closeShards(shards)
	defer st.Close()

	// Pass 2: replay until the cut fires.
	model := kvtest.NewModel()
	cut := false
	var lastDone sim.Duration
	for start := 0; start < len(ops) && !cut; start += batchSize {
		end := start + batchSize
		if end > len(ops) {
			end = len(ops)
		}
		comps := submitBatch(st, ops, start, end)
		cut = shards[cutShard].fd.Cut()
		for _, c := range comps {
			if c.Done > lastDone {
				lastDone = c.Done
			}
		}
		if err := applyBatch(model, ops, comps, cut, cutShard, spec.Shards); err != nil {
			return rep, err
		}
		rep.CutOp = end
	}
	if !cut {
		return rep, fmt.Errorf("cut at shard %d write %d never fired (calibration divergence)", cutShard, cutWrite)
	}

	// Power failure takes the whole machine: cut every shard, then
	// resolve what survived and recover each engine from it.
	for _, sh := range shards {
		sh.fd.PowerCut()
	}
	for i, sh := range shards {
		if _, err := sh.fd.PowerOn(); err != nil {
			return rep, fmt.Errorf("shard %d power-on: %w", i, err)
		}
	}
	// File device only: the backing file must now BE the resolved
	// durable image — dropped and torn pages rewound, everything else
	// byte-identical. This is what makes the file trials stronger than
	// the simulated ones: the bytes recovery reads really are the bytes
	// a crashed kernel would have left.
	for i, sh := range shards {
		if sh.fdev == nil {
			continue
		}
		if err := verifyFileImage(sh); err != nil {
			return rep, fmt.Errorf("shard %d after power-on (cut at shard %d write %d): %w",
				i, cutShard, cutWrite, err)
		}
	}
	recovered := make([]engine.Engine, spec.Shards)
	starts := make([]sim.Duration, spec.Shards)
	for i, sh := range shards {
		eng, rnow, err := sh.cfg.Recover(engine.Env{FS: sh.fs, RNG: sim.NewRNG(uint64(900 + i)), Content: true}, lastDone)
		if err != nil {
			return rep, fmt.Errorf("shard %d recovery failed after cut (shard %d, write %d): %w",
				i, cutShard, cutWrite, err)
		}
		recovered[i] = eng
		starts[i] = rnow
	}
	rst, err := store.New(spec.Shards, func(i int) (store.Stack, error) {
		return store.Stack{Engine: recovered[i], Dev: shards[i].dev, Fault: shards[i].fd, Start: starts[i]}, nil
	})
	if err != nil {
		return rep, err
	}
	defer rst.Close()

	if err := verify(rep, rst, model, spec, starts); err != nil {
		return rep, fmt.Errorf("cut at shard %d write %d: %w", cutShard, cutWrite, err)
	}
	return rep, nil
}

// calibrate runs the op log fault-free and returns per-shard write
// counts.
func calibrate(spec Spec, ops []opRec, dir string) ([]int64, error) {
	shards, st, err := buildEnv(spec, make([]faultdev.Plan, spec.Shards), dir)
	if err != nil {
		return nil, err
	}
	defer closeShards(shards)
	defer st.Close()
	for start := 0; start < len(ops); start += batchSize {
		end := start + batchSize
		if end > len(ops) {
			end = len(ops)
		}
		for _, c := range submitBatch(st, ops, start, end) {
			if c.Err != nil {
				return nil, fmt.Errorf("op %d: %w", c.Seq, c.Err)
			}
		}
	}
	writes := make([]int64, spec.Shards)
	for i, sh := range shards {
		writes[i] = sh.fd.Writes()
	}
	return writes, nil
}

// verifyFileImage compares a shard's backing file, page by page,
// against the fault wrapper's resolved durable image (zeros where
// nothing durable was ever written). Reads go straight to the filedev —
// below the fault wrapper, whose own content store must not be allowed
// to mask a divergence in the file.
func verifyFileImage(sh *shardEnv) error {
	ps := sh.fdev.PageSize()
	zero := make([]byte, ps)
	buf := make([]byte, ps)
	for lba := int64(0); lba < sh.fdev.Pages(); lba++ {
		sh.fdev.ReadAt(0, lba, 1, buf)
		want := sh.fd.DurablePage(lba)
		if want == nil {
			want = zero
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("backing file diverges from the durable image at LBA %d", lba)
		}
	}
	return nil
}

// sampleCut picks the cut's (shard, write index): spec pins win;
// otherwise one uniform draw over all observed writes, so shards are
// weighted by their traffic.
func sampleCut(spec Spec, seed uint64, writes []int64) (int, int64) {
	if spec.CutShard >= 0 && spec.CutWrite > 0 {
		w := spec.CutWrite
		if max := writes[spec.CutShard]; w > max {
			w = max
		}
		return spec.CutShard, w
	}
	var total int64
	for _, w := range writes {
		total += w
	}
	if total == 0 {
		return 0, 0
	}
	rng := sim.NewRNG(seed)
	pick := 1 + int64(rng.Uint64n(uint64(total)))
	for i, w := range writes {
		if pick <= w {
			if spec.CutShard >= 0 && i != spec.CutShard {
				// Shard pinned but write sampled: re-scale into it.
				w := 1 + int64(rng.Uint64n(uint64(maxI64(writes[spec.CutShard], 1))))
				return spec.CutShard, w
			}
			return i, pick
		}
		pick -= w
	}
	return len(writes) - 1, writes[len(writes)-1]
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// submitBatch submits ops[start:end) with strictly increasing submit
// times and pumps them to completion.
func submitBatch(st *store.Store, ops []opRec, start, end int) []store.Completion {
	for i := start; i < end; i++ {
		op := store.Op{
			Client: 0,
			Submit: sim.Duration(i+1) * 1000, // 1µs apart
			KeyID:  ops[i].id,
			Key:    kv.EncodeKey(ops[i].id),
		}
		switch ops[i].kind {
		case store.Put:
			op.Kind = store.Put
			op.Value = ops[i].val
		case store.Delete:
			op.Kind = store.Delete
		default:
			op.Kind = store.Get
		}
		st.Submit(op)
	}
	return st.Pump()
}

// applyBatch folds one batch's completions into the model. Completions
// arrive in submission order, so the model sees each key's ops exactly
// as its shard processed them. In the batch the cut landed on, the cut
// shard's ops are ambiguous — acknowledged in memory, durable only up
// to an unknown prefix — while other shards completed the batch intact
// (their fault plans are empty, so pending writes survive power-on).
func applyBatch(model *kvtest.Model, ops []opRec, comps []store.Completion, cut bool, cutShard, shards int) error {
	for _, c := range comps {
		idx := int(c.Seq)
		op := ops[idx]
		ambiguous := cut && store.ShardOf(op.id, shards) == cutShard
		if c.Err != nil && !ambiguous {
			return fmt.Errorf("op %d (%v key %d) failed pre-cut: %w", idx, op.kind, op.id, c.Err)
		}
		switch op.kind {
		case store.Put:
			if ambiguous {
				model.AllowPut(op.id, op.val)
			} else {
				model.Put(op.id, op.val)
			}
		case store.Delete:
			if ambiguous {
				model.AllowDelete(op.id)
			} else {
				model.Delete(op.id)
			}
		default: // Get: verify against the model's exact state
			if ambiguous {
				continue
			}
			want, present := model.Value(op.id)
			if c.Found != present {
				return fmt.Errorf("op %d: get key %d found=%v, model present=%v (pre-cut divergence)",
					idx, op.id, c.Found, present)
			}
			if present && !bytes.Equal(c.Value, want) {
				return fmt.Errorf("op %d: get key %d returned wrong value (pre-cut divergence)", idx, op.id)
			}
		}
	}
	return nil
}

// verify checks the recovered store against the model: point reads for
// every tracked key, one full merged scan (ordered, members allowed,
// certain keys present), and a post-recovery write/flush/read cycle.
func verify(rep *Report, rst *store.Store, model *kvtest.Model, spec Spec, starts []sim.Duration) error {
	now := starts[0]
	for _, s := range starts {
		if s > now {
			now = s
		}
	}
	ids := model.IDs()
	for _, id := range ids {
		if model.Ambiguous(id) {
			rep.Ambiguous++
		}
	}

	// Point reads through the recovered serving layer. Completions come
	// back in submission order, so position j of a batch is ids[start+j].
	for start := 0; start < len(ids); start += batchSize {
		end := start + batchSize
		if end > len(ids) {
			end = len(ids)
		}
		for j := start; j < end; j++ {
			rst.Submit(store.Op{
				Kind:   store.Get,
				Submit: now + sim.Duration(j+1)*1000,
				KeyID:  ids[j],
				Key:    kv.EncodeKey(ids[j]),
			})
		}
		comps := rst.Pump()
		if len(comps) != end-start {
			return fmt.Errorf("recovered store returned %d completions for %d gets", len(comps), end-start)
		}
		for j, c := range comps {
			id := ids[start+j]
			if c.Err != nil {
				return fmt.Errorf("recovered get key %d: %w", id, c.Err)
			}
			if !model.Check(id, c.Value, c.Found) {
				return fmt.Errorf("recovered key %d outside its allowed states (found=%v, ambiguous=%v)",
					id, c.Found, model.Ambiguous(id))
			}
			rep.Checked++
		}
	}

	// One full merged scan: strictly ordered, every entry an allowed
	// member with an allowed value, every certainly-present key
	// surfaced.
	scanNow := now + sim.Duration(len(ids)+2)*1000
	_, entries, err := rst.Scan(scanNow, kv.EncodeKey(0), spec.Keys+16)
	if err != nil {
		return fmt.Errorf("recovered scan: %w", err)
	}
	seen := make(map[uint64]bool, len(entries))
	var prev []byte
	for i, e := range entries {
		if i > 0 && kv.CompareKeys(prev, e.Key) >= 0 {
			return fmt.Errorf("recovered scan out of order at entry %d", i)
		}
		prev = append(prev[:0], e.Key...)
		id, err := kv.DecodeKey(e.Key)
		if err != nil {
			return fmt.Errorf("recovered scan entry %d: %w", i, err)
		}
		if !model.MayContain(id) {
			return fmt.Errorf("recovered scan surfaced key %d, which must be absent", id)
		}
		if !model.CheckValue(id, e.Value) {
			return fmt.Errorf("recovered scan key %d has a value outside its allowed set", id)
		}
		seen[id] = true
	}
	for _, id := range ids {
		if model.MustContain(id) && !seen[id] {
			return fmt.Errorf("recovered scan missing key %d, which must be present", id)
		}
	}
	rep.Scanned = len(entries)

	// The recovered store accepts, persists and re-serves new writes.
	postNow := scanNow + sim.Duration(spec.Keys)*1000
	const postKeys = 8
	postVal := func(j int) []byte {
		v := make([]byte, 16)
		binary.LittleEndian.PutUint64(v[0:], uint64(spec.Keys+j))
		binary.LittleEndian.PutUint64(v[8:], rep.Seed)
		return v
	}
	for j := 0; j < postKeys; j++ {
		rst.Submit(store.Op{
			Kind:   store.Put,
			Submit: postNow + sim.Duration(j+1)*1000,
			KeyID:  uint64(spec.Keys + j),
			Key:    kv.EncodeKey(uint64(spec.Keys + j)),
			Value:  postVal(j),
		})
	}
	for _, c := range rst.Pump() {
		if c.Err != nil {
			return fmt.Errorf("post-recovery put: %w", c.Err)
		}
		if c.Done > postNow {
			postNow = c.Done
		}
	}
	flushed, err := rst.FlushAll(postNow)
	if err != nil {
		return fmt.Errorf("post-recovery flush: %w", err)
	}
	for j := 0; j < postKeys; j++ {
		rst.Submit(store.Op{
			Kind:   store.Get,
			Submit: flushed + sim.Duration(j+1)*1000,
			KeyID:  uint64(spec.Keys + j),
			Key:    kv.EncodeKey(uint64(spec.Keys + j)),
		})
	}
	comps := rst.Pump()
	for j, c := range comps {
		if c.Err != nil || !c.Found || !bytes.Equal(c.Value, postVal(j)) {
			return fmt.Errorf("post-recovery write %d lost or wrong (found=%v, err=%v)", j, c.Found, c.Err)
		}
	}
	return nil
}
