package crash

// Pull in every engine driver so the matrix can look them up.
import _ "ptsbench/internal/engine/all"
