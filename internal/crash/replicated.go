package crash

// Replicated trials: instead of cutting power on the whole machine, the
// fault plan cuts ONE replica's device inside a replica group
// (internal/replica) while the machine keeps running. The harness then
// proves the replication layer masks the failure end to end:
//
//  1. the group keeps acknowledging operations through the kill (the
//     dying replica's device ignores I/O rather than erroring, exactly
//     like a dropped-off NVMe namespace; any engine error it does cause
//     mid-batch is confined to the detection window),
//  2. failover — the dead replica is removed from the group between
//     pump rounds and the degraded group still serves every
//     acknowledged write,
//  3. the killed replica recovers from its OWN durable image (power-on
//     resolves torn/dropped unbarriered writes, recovery runs through
//     the engine registry), rejoins stale, and Reconcile repairs it
//     from the surviving authority,
//  4. afterwards every replica of every group is entry-identical and
//     the whole store still satisfies the reference model, including a
//     post-failover write/flush/read cycle.
//
// The ambiguity window is much narrower than the whole-machine trial's:
// live replicas never lose memory, so any operation the group
// acknowledged without error is durable at the group — it is verified
// EXACTLY, not as an allowed-state set. Only operations that errored in
// the detection window (the chain or quorum apply aborted part-way) are
// ambiguous, and reads served in that window may have come from the
// dying replica, so they are not checkable.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/engine"
	"ptsbench/internal/faultdev"
	"ptsbench/internal/kv"
	"ptsbench/internal/kvtest"
	"ptsbench/internal/replica"
	"ptsbench/internal/sim"
	"ptsbench/internal/store"
)

// replicaEnv is one replicated shard: R complete device stacks behind
// one replica group.
type replicaEnv struct {
	envs  []*shardEnv
	group *replica.Group
}

// buildReplicatedEnv assembles spec.Shards replica groups of
// spec.Replicas full stacks each, behind one store. autoFailover hands
// replica-kill authority to the serving layer (error-plan trials);
// cut trials keep it false so their manual Kill stays exclusive.
func buildReplicatedEnv(spec Spec, plans [][]faultdev.Plan, dir string, autoFailover bool) ([]*replicaEnv, *store.Store, error) {
	mode, err := replica.ParseMode(spec.ReplMode)
	if err != nil {
		return nil, nil, err
	}
	groups := make([]*replicaEnv, spec.Shards)
	st, err := store.New(spec.Shards, func(i int) (store.Stack, error) {
		re := &replicaEnv{}
		groups[i] = re
		members := make([]replica.Member, spec.Replicas)
		devs := make([]blockdev.Host, spec.Replicas)
		faults := make([]*faultdev.Dev, spec.Replicas)
		for r := 0; r < spec.Replicas; r++ {
			sh, err := buildShard(spec, i, r, plans[i][r], dir)
			if err != nil {
				return store.Stack{}, err
			}
			re.envs = append(re.envs, sh)
			members[r] = replica.Member{Engine: sh.eng}
			devs[r] = sh.dev
			faults[r] = sh.fd
		}
		g, err := replica.New(mode, members)
		if err != nil {
			return store.Stack{}, err
		}
		re.group = g
		return store.Stack{Engine: g, Dev: devs[0], Fault: faults[0], Devs: devs, Faults: faults, AutoFailover: autoFailover}, nil
	})
	if err != nil {
		closeReplicated(groups)
		return nil, nil, err
	}
	return groups, st, nil
}

// closeReplicated closes any file-backed devices across all replicas.
// Safe on partially-built slices.
func closeReplicated(groups []*replicaEnv) {
	for _, re := range groups {
		if re != nil {
			closeShards(re.envs)
		}
	}
}

// calibrateReplicated runs the op log fault-free and returns per-shard,
// per-replica device write counts.
func calibrateReplicated(spec Spec, ops []opRec, dir string) ([][]int64, error) {
	plans := make([][]faultdev.Plan, spec.Shards)
	for i := range plans {
		plans[i] = make([]faultdev.Plan, spec.Replicas)
	}
	groups, st, err := buildReplicatedEnv(spec, plans, dir, false)
	if err != nil {
		return nil, err
	}
	defer closeReplicated(groups)
	defer st.Close()
	for start := 0; start < len(ops); start += batchSize {
		end := start + batchSize
		if end > len(ops) {
			end = len(ops)
		}
		for _, c := range submitBatch(st, ops, start, end) {
			if c.Err != nil {
				return nil, fmt.Errorf("op %d: %w", c.Seq, c.Err)
			}
		}
	}
	writes := make([][]int64, spec.Shards)
	for i, re := range groups {
		writes[i] = make([]int64, spec.Replicas)
		for r, sh := range re.envs {
			writes[i][r] = sh.fd.Writes()
		}
	}
	return writes, nil
}

// sampleReplicaCut picks the (shard, replica, write index) the kill
// lands on. A pinned CutShard confines the draw to that shard; a pinned
// CutWrite pins the write index within the sampled replica. The replica
// itself is always sampled by write traffic — every replica of the cut
// shard must be reachable by some seed.
func sampleReplicaCut(spec Spec, seed uint64, writes [][]int64) (int, int, int64) {
	rng := sim.NewRNG(seed)
	if spec.CutShard >= 0 {
		rep := weightedReplica(rng, writes[spec.CutShard])
		max := maxI64(writes[spec.CutShard][rep], 1)
		w := spec.CutWrite
		if w == 0 {
			w = 1 + int64(rng.Uint64n(uint64(max)))
		} else if w > max {
			w = max
		}
		if writes[spec.CutShard][rep] == 0 {
			return spec.CutShard, rep, 0
		}
		return spec.CutShard, rep, w
	}
	var total int64
	for _, row := range writes {
		for _, w := range row {
			total += w
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	pick := 1 + int64(rng.Uint64n(uint64(total)))
	for i, row := range writes {
		for r, w := range row {
			if pick <= w {
				return i, r, pick
			}
			pick -= w
		}
	}
	last := len(writes) - 1
	lastRep := len(writes[last]) - 1
	return last, lastRep, writes[last][lastRep]
}

// weightedReplica samples one replica index of a shard proportionally
// to its device write traffic.
func weightedReplica(rng *sim.RNG, row []int64) int {
	var total int64
	for _, w := range row {
		total += w
	}
	if total == 0 {
		return 0
	}
	pick := 1 + int64(rng.Uint64n(uint64(total)))
	for r, w := range row {
		if pick <= w {
			return r
		}
		pick -= w
	}
	return len(row) - 1
}

// runReplicaTrial executes one replicated (spec, seed) trial: calibrate,
// kill one replica's device at the sampled write, fail it over, serve
// degraded, recover it, reconcile, and verify everything.
func runReplicaTrial(spec Spec, seed uint64) (*Report, error) {
	ops := genOps(spec, seed)

	dir, calibDir, faultDir := "", "", ""
	if spec.Device == "file" {
		if spec.Dir == "" {
			tmp, err := os.MkdirTemp("", "ptsbench-crash-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		} else {
			dir = filepath.Join(spec.Dir, fmt.Sprintf("trial-%d", seed))
		}
		calibDir = filepath.Join(dir, "calib")
		faultDir = filepath.Join(dir, "fault")
	}

	// Pass 1 (calibration): identical stacks, no faults, so pass 2's Nth
	// write on any replica device is pass 1's Nth write.
	writes, err := calibrateReplicated(spec, ops, calibDir)
	if err != nil {
		return nil, fmt.Errorf("calibration (fault-free) pass failed: %w", err)
	}
	cutShard, cutRep, cutWrite := sampleReplicaCut(spec, seed, writes)
	if cutWrite == 0 {
		return nil, fmt.Errorf("op log produced no device writes to cut at")
	}

	rep := &Report{Spec: spec, Seed: seed, CutShard: cutShard, CutReplica: cutRep, CutWrite: cutWrite}
	plans := make([][]faultdev.Plan, spec.Shards)
	for i := range plans {
		plans[i] = make([]faultdev.Plan, spec.Replicas)
	}
	plans[cutShard][cutRep] = faultdev.Plan{
		Seed:           seed*0x2545F4914F6CDD1D + 1,
		CutAfterWrites: cutWrite,
		CutKeepPages:   0, // random tear of the in-flight write
		DropProb:       dropProb,
		TornProb:       tornProb,
	}
	groups, st, err := buildReplicatedEnv(spec, plans, faultDir, false)
	if err != nil {
		return rep, err
	}
	defer closeReplicated(groups)
	defer st.Close()

	// Pass 2: replay the whole op log. The kill fires mid-batch; the
	// harness notices between pumps, fails the replica out of its group
	// and keeps going — the machine never stops serving.
	model := kvtest.NewModel()
	killed := false
	var lastDone sim.Duration
	for start := 0; start < len(ops); start += batchSize {
		end := start + batchSize
		if end > len(ops) {
			end = len(ops)
		}
		comps := submitBatch(st, ops, start, end)
		window := !killed && groups[cutShard].envs[cutRep].fd.Cut()
		for _, c := range comps {
			if c.Done > lastDone {
				lastDone = c.Done
			}
		}
		if err := applyReplicaBatch(model, ops, comps, window, cutShard, spec.Shards); err != nil {
			return rep, err
		}
		if window {
			// Failover: the dead replica leaves the group, and the sticky
			// shard error its death may have caused is cleared with it.
			if err := groups[cutShard].group.Kill(cutRep); err != nil {
				return rep, err
			}
			if err := st.ClearFailure(cutShard); err != nil {
				return rep, err
			}
			rep.CutOp = end
			killed = true
		}
	}
	if !killed {
		return rep, fmt.Errorf("cut at shard %d replica %d write %d never fired (calibration divergence)",
			cutShard, cutRep, cutWrite)
	}

	// Degraded serving: down one replica, the group must still hold
	// every key to its allowed states — zero acknowledged-write loss at
	// the moment of failover.
	now, err := verifyDegraded(st, model, lastDone)
	if err != nil {
		return rep, fmt.Errorf("degraded group after killing shard %d replica %d at write %d: %w",
			cutShard, cutRep, cutWrite, err)
	}

	// Recover the killed replica from its own durable image: power-on
	// resolves the unbarriered window (drops/tears), the file backend is
	// proven byte-identical to that image, and recovery runs through the
	// registry exactly like a machine restart.
	env := groups[cutShard].envs[cutRep]
	if _, err := env.fd.PowerOn(); err != nil {
		return rep, fmt.Errorf("shard %d replica %d power-on: %w", cutShard, cutRep, err)
	}
	if env.fdev != nil {
		if err := verifyFileImage(env); err != nil {
			return rep, fmt.Errorf("shard %d replica %d after power-on (cut at write %d): %w",
				cutShard, cutRep, cutWrite, err)
		}
	}
	reng, rnow, err := env.cfg.Recover(engine.Env{
		FS:      env.fs,
		RNG:     sim.NewRNG(uint64(900 + cutShard*8 + cutRep)),
		Content: true,
	}, now)
	if err != nil {
		return rep, fmt.Errorf("shard %d replica %d recovery failed after cut at write %d: %w",
			cutShard, cutRep, cutWrite, err)
	}
	if err := groups[cutShard].group.Revive(cutRep, replica.Member{Engine: reng, Start: rnow}); err != nil {
		return rep, err
	}
	recNow, err := groups[cutShard].group.Reconcile(maxDur(now, rnow))
	if err != nil {
		return rep, fmt.Errorf("reconciling shard %d replica %d: %w", cutShard, cutRep, err)
	}

	// Reconvergence: every replica of every group entry-identical.
	if err := verifyConverged(groups, recNow); err != nil {
		return rep, fmt.Errorf("after reconciling shard %d replica %d: %w", cutShard, cutRep, err)
	}

	// Full model verification through the serving layer — point reads,
	// ordered merged scan, post-failover write/flush/read cycle. In
	// chain mode the revived replica serves these reads itself whenever
	// it is the tail, so recovery is load-bearing, not decorative.
	if err := verify(rep, st, model, spec, []sim.Duration{recNow}); err != nil {
		return rep, fmt.Errorf("cut at shard %d replica %d write %d: %w", cutShard, cutRep, cutWrite, err)
	}
	return rep, nil
}

// applyReplicaBatch folds one batch's completions into the model. In
// the batch the kill landed on (window), the cut shard's operations
// split three ways: acknowledged without error means every live
// replica applied them — exact; errored means the chain or quorum
// apply aborted part-way — ambiguous; reads may have been served by the
// dying replica — skipped. Outside the window everything must succeed,
// and reads are checked against each key's allowed states (keys from
// the window stay ambiguous until a later write pins them).
func applyReplicaBatch(model *kvtest.Model, ops []opRec, comps []store.Completion, window bool, cutShard, shards int) error {
	for _, c := range comps {
		idx := int(c.Seq)
		op := ops[idx]
		inWindow := window && store.ShardOf(op.id, shards) == cutShard
		if c.Err != nil && !inWindow {
			return fmt.Errorf("op %d (%v key %d) failed while the group was live: %w", idx, op.kind, op.id, c.Err)
		}
		switch op.kind {
		case store.Put:
			if c.Err != nil {
				model.AllowPut(op.id, op.val)
			} else {
				model.Put(op.id, op.val)
			}
		case store.Delete:
			if c.Err != nil {
				model.AllowDelete(op.id)
			} else {
				model.Delete(op.id)
			}
		default: // Get
			if inWindow {
				continue
			}
			if !model.Check(op.id, c.Value, c.Found) {
				return fmt.Errorf("op %d: get key %d outside its allowed states (found=%v, ambiguous=%v)",
					idx, op.id, c.Found, model.Ambiguous(op.id))
			}
		}
	}
	return nil
}

// verifyDegraded point-reads every tracked key through the store while
// the group is down one replica. Returns the virtual time the last read
// finished.
func verifyDegraded(st *store.Store, model *kvtest.Model, now sim.Duration) (sim.Duration, error) {
	ids := model.IDs()
	for start := 0; start < len(ids); start += batchSize {
		end := start + batchSize
		if end > len(ids) {
			end = len(ids)
		}
		for j := start; j < end; j++ {
			st.Submit(store.Op{
				Kind:   store.Get,
				Submit: now + sim.Duration(j+1)*1000,
				KeyID:  ids[j],
				Key:    kv.EncodeKey(ids[j]),
			})
		}
		comps := st.Pump()
		if len(comps) != end-start {
			return now, fmt.Errorf("degraded store returned %d completions for %d gets", len(comps), end-start)
		}
		for j, c := range comps {
			id := ids[start+j]
			if c.Err != nil {
				return now, fmt.Errorf("degraded get key %d: %w", id, c.Err)
			}
			if !model.Check(id, c.Value, c.Found) {
				return now, fmt.Errorf("acknowledged write lost: key %d outside its allowed states (found=%v, ambiguous=%v)",
					id, c.Found, model.Ambiguous(id))
			}
			if c.Done > now {
				now = c.Done
			}
		}
	}
	return now, nil
}

// scanPage is verifyConverged's per-Scan window.
const scanPage = 128

// entryEqual compares two logical entries: key bytes, value bytes, and
// accounted length.
func entryEqual(a, b kv.Entry) bool {
	return bytes.Equal(a.Key, b.Key) && bytes.Equal(a.Value, b.Value) && a.ValueLen == b.ValueLen
}

func maxDur(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}

// scanReplica pages one replica's full key space directly off its
// engine (below the group, so stale or diverged state cannot hide
// behind the serving rotation).
func scanReplica(g *replica.Group, r int, now sim.Duration) ([]kv.Entry, error) {
	sc, ok := g.Engine(r).(store.Scanner)
	if !ok {
		return nil, fmt.Errorf("replica %d engine does not support Scan", r)
	}
	var out []kv.Entry
	start := make([]byte, kv.KeySize)
	for {
		_, ents, err := sc.Scan(now, start, scanPage)
		if err != nil {
			return nil, fmt.Errorf("scanning replica %d: %w", r, err)
		}
		for _, e := range ents {
			out = append(out, kv.Entry{
				Key:      append([]byte(nil), e.Key...),
				Value:    append([]byte(nil), e.Value...),
				ValueLen: e.ValueLen,
			})
		}
		if len(ents) < scanPage {
			return out, nil
		}
		id, err := kv.DecodeKey(ents[len(ents)-1].Key)
		if err != nil {
			return nil, fmt.Errorf("replica %d surfaced an undecodable key: %w", r, err)
		}
		start = kv.EncodeKey(id + 1)
	}
}

// verifyConverged proves every replica of every group holds the exact
// same logical entries — key, value bytes, and accounted length.
func verifyConverged(groups []*replicaEnv, now sim.Duration) error {
	for i, re := range groups {
		ref, err := scanReplica(re.group, 0, now)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		for r := 1; r < re.group.Replicas(); r++ {
			got, err := scanReplica(re.group, r, now)
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			if len(got) != len(ref) {
				return fmt.Errorf("shard %d: replica %d holds %d entries, replica 0 holds %d",
					i, r, len(got), len(ref))
			}
			for k := range ref {
				if !entryEqual(ref[k], got[k]) {
					return fmt.Errorf("shard %d: replica %d diverges from replica 0 at entry %d (key %x)",
						i, r, k, ref[k].Key)
				}
			}
		}
	}
	return nil
}
