package crash

// Tests for replicated crash trials: every engine survives a mid-batch
// replica kill in both replication modes, fails over with zero
// acknowledged-write loss, recovers the killed replica from its own
// durable image, and reconverges entry-for-entry.

import (
	"fmt"
	"testing"
)

// TestReplicaCrashMatrix is the fixed-seed replicated CI matrix: every
// engine × mode shape masks a sampled replica kill. Chain runs at R=2
// (smallest failable chain), quorum at R=3 (smallest group that keeps a
// write majority after a kill).
func TestReplicaCrashMatrix(t *testing.T) {
	for _, eng := range []string{"lsm", "btree", "betree"} {
		for _, mc := range []struct {
			mode     string
			replicas int
		}{{"chain", 2}, {"quorum", 3}} {
			eng, mc := eng, mc
			t.Run(fmt.Sprintf("%s/%s/r=%d", eng, mc.mode, mc.replicas), func(t *testing.T) {
				t.Parallel()
				rep, err := Run(Spec{
					Engine:   eng,
					Shards:   2,
					Ops:      300,
					Seed:     1,
					Trials:   3,
					Replicas: mc.replicas,
					ReplMode: mc.mode,
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Checked == 0 || rep.Scanned == 0 {
					t.Fatalf("trivial trial: %+v", rep)
				}
				if rep.CutReplica < 0 || rep.CutReplica >= mc.replicas {
					t.Fatalf("cut replica %d out of range for %d replicas", rep.CutReplica, mc.replicas)
				}
			})
		}
	}
}

// TestReplicaCrashChainThree covers a deeper chain so the kill can land
// on a mid-chain replica, not just head or tail.
func TestReplicaCrashChainThree(t *testing.T) {
	rep, err := Run(Spec{
		Engine:   "lsm",
		Ops:      300,
		Seed:     11,
		Trials:   4,
		Replicas: 3,
		ReplMode: "chain",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked == 0 {
		t.Fatalf("trivial trial: %+v", rep)
	}
}

// TestReplicaCrashPinnedCut pins the shard and write index; the kill
// must land exactly there (replica still sampled by traffic).
func TestReplicaCrashPinnedCut(t *testing.T) {
	rep, err := Run(Spec{
		Engine:   "btree",
		Shards:   2,
		Ops:      200,
		Seed:     7,
		Replicas: 2,
		ReplMode: "chain",
		CutShard: 1,
		CutWrite: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CutShard != 1 || rep.CutWrite != 5 {
		t.Fatalf("pinned cut not honored: %+v", rep)
	}
}

// TestReplicaCrashFileDevice runs one replicated trial on real backing
// files: power-on must leave the killed replica's file byte-identical
// to the fault wrapper's resolved durable image before recovery reads
// it.
func TestReplicaCrashFileDevice(t *testing.T) {
	rep, err := Run(Spec{
		Engine:   "betree",
		Ops:      250,
		Seed:     3,
		Trials:   2,
		Replicas: 2,
		ReplMode: "chain",
		Device:   "file",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked == 0 {
		t.Fatalf("trivial trial: %+v", rep)
	}
}

// TestReplicaCrashDeterminism: the same (spec, seed) replays to the
// same cut coordinates and verification counts.
func TestReplicaCrashDeterminism(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Spec{
			Engine:   "lsm",
			Shards:   2,
			Ops:      250,
			Seed:     13,
			Replicas: 3,
			ReplMode: "quorum",
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.CutShard != b.CutShard || a.CutReplica != b.CutReplica || a.CutWrite != b.CutWrite ||
		a.CutOp != b.CutOp || a.Checked != b.Checked || a.Scanned != b.Scanned || a.Ambiguous != b.Ambiguous {
		t.Fatalf("replicated trials diverged:\n%+v\n%+v", a, b)
	}
}

// TestReplicaSpecValidate covers the replica-shape error paths and the
// replicated defaults.
func TestReplicaSpecValidate(t *testing.T) {
	s, err := Spec{Engine: "lsm", Replicas: 2}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if s.ReplMode != "chain" {
		t.Fatalf("replicated specs should default to chain, got %q", s.ReplMode)
	}
	s, err = Spec{Engine: "lsm"}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if s.Replicas != 1 || s.ReplMode != "" {
		t.Fatalf("unreplicated defaults wrong: %+v", s)
	}
	bad := []Spec{
		{Engine: "lsm", Replicas: -1},                       // negative
		{Engine: "lsm", Replicas: 6},                        // over the cap
		{Engine: "lsm", Replicas: 3, ReplMode: "paxos"},     // unknown mode
		{Engine: "lsm", Replicas: 2, ReplMode: "quorum"},    // kill would lose the majority
		{Engine: "lsm", Replicas: 2, ReplMode: "chainsaw"},  // unknown mode, replicated
		{Engine: "lsm", Replicas: 1, ReplMode: "telepathy"}, // unknown mode, unreplicated
	}
	for i, b := range bad {
		if _, err := b.Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, b)
		}
	}
}
