// Package crash is the randomized crash-recovery harness: it runs a
// seed-determined op log against an engine over fault-injecting devices
// (internal/faultdev), kills the machine at a sampled write boundary,
// re-opens every shard through the engine registry's Recover path, and
// checks the recovered store against the internal/kvtest reference
// model — every acknowledged-and-synced write present, every in-flight
// write either absent or fully intact, scans strictly ordered.
//
// A trial is fully determined by (Spec, seed): the op stream, the cut
// point sampling and the fault resolution all draw from seeded RNGs, so
// any failure shrinks to a one-line `ptsbench crash` reproduction.
package crash

import (
	"fmt"

	"ptsbench/internal/engine"
)

// Spec declares one crash-recovery experiment. The zero value is not
// runnable; Validate fills defaults and fails fast on anything
// malformed, mirroring the experiment spec discipline of internal/core.
type Spec struct {
	// Engine names a registered engine driver ("lsm", "btree",
	// "betree").
	Engine string `json:"engine"`
	// Shards is the store's shard count (each shard runs its own engine
	// on its own faulty device; the cut takes all of them down at
	// once). Default 1.
	Shards int `json:"shards,omitempty"`
	// Ops is the length of the recorded op log. Default 400.
	Ops int `json:"ops,omitempty"`
	// Keys bounds the key space the op log draws from. Default
	// max(16, Ops/8).
	Keys int `json:"keys,omitempty"`
	// Seed drives everything: op stream, cut sampling, fault
	// resolution. Trial t runs with Seed+t.
	Seed uint64 `json:"seed"`
	// Trials is the number of independent seeds to run. Default 1.
	Trials int `json:"trials,omitempty"`
	// CutShard pins the shard the power cut targets (-1 samples one
	// proportionally to write traffic). Default -1.
	CutShard int `json:"cut_shard,omitempty"`
	// CutWrite pins the 1-based host write the cut lands on within the
	// target shard (0 samples one uniformly). Default 0.
	CutWrite int64 `json:"cut_write,omitempty"`
	// Replicas turns every shard into a replica group of R complete
	// engine stacks (internal/replica), each behind its own fault
	// wrapper. The cut then kills ONE replica's device — the machine
	// stays up and every operation keeps acknowledging — and the trial
	// verifies zero acknowledged-write loss at the group, recovery of
	// the killed replica from its own durable image, and byte-comparable
	// reconvergence of every replica after Reconcile. Default 1 (the
	// whole-machine power-cut trial). The cut replica is always sampled
	// by write traffic within the cut shard; CutShard/CutWrite pins keep
	// their meaning.
	Replicas int `json:"replicas,omitempty"`
	// ReplMode is the replication mode for Replicas > 1: "chain" or
	// "quorum" (default chain). Quorum needs Replicas >= 3 here: killing
	// a replica of a 2-group drops it below its write majority, so no
	// degraded traffic could run.
	ReplMode string `json:"repl_mode,omitempty"`
	// ErrorKinds switches the trial from a power cut to the host-stack
	// error model: the listed kinds ("eio", "short", "misdirect",
	// "fsynclie") arm on ONE replica of one shard at the sampled write
	// and fire per-op with ErrorProb for the rest of the log. The trial
	// then proves graceful degradation — retries absorb transient
	// errors, persistent errors fail the replica out automatically, the
	// damaged replica is power-cycled and recovered (loud refusal is
	// the detection contract working and triggers a rebuild from the
	// surviving authority) — and zero acknowledged-write loss at the
	// group. Requires Replicas >= 2. CutShard/CutWrite pins keep their
	// meaning, aiming the ARM point instead of a cut.
	ErrorKinds []string `json:"error_kinds,omitempty"`
	// ErrorProb is the per-op probability of each armed error kind.
	// Default 0.05. Only meaningful with ErrorKinds.
	ErrorProb float64 `json:"error_prob,omitempty"`
	// Tunables are extra engine knob overrides, applied on top of the
	// harness's durability defaults (per-record journal sync).
	Tunables map[string]string `json:"tunables,omitempty"`
	// Device selects the backing block device: "sim" (default) runs the
	// flash simulator, "file" runs real backing files through
	// internal/filedev (deterministic fixed I/O costs) under the same
	// fault wrapper — the harness then additionally checks after every
	// power-on that the backing file matches the wrapper's resolved
	// durable image byte for byte.
	Device string `json:"device,omitempty"`
	// Dir, file device only, is the directory that keeps each trial's
	// shard images (under trial-SEED/{calib,fault}/) for post-mortem
	// inspection. Default: a temp directory removed when the trial ends.
	Dir string `json:"dir,omitempty"`
}

// Validate fills defaults and fails fast on malformed fields. It
// returns the normalized spec.
func (s Spec) Validate() (Spec, error) {
	if s.Engine == "" {
		return s, fmt.Errorf("crash: engine is required")
	}
	if _, err := engine.Lookup(s.Engine); err != nil {
		return s, fmt.Errorf("crash: %w", err)
	}
	if s.Shards == 0 {
		s.Shards = 1
	}
	if s.Shards < 1 || s.Shards > 64 {
		return s, fmt.Errorf("crash: shards must be in [1,64] (got %d)", s.Shards)
	}
	if s.Ops == 0 {
		s.Ops = 400
	}
	if s.Ops < 1 {
		return s, fmt.Errorf("crash: ops must be positive (got %d)", s.Ops)
	}
	if s.Keys == 0 {
		s.Keys = s.Ops / 8
		if s.Keys < 16 {
			s.Keys = 16
		}
	}
	if s.Keys < 1 {
		return s, fmt.Errorf("crash: keys must be positive (got %d)", s.Keys)
	}
	if s.Trials == 0 {
		s.Trials = 1
	}
	if s.Trials < 1 {
		return s, fmt.Errorf("crash: trials must be positive (got %d)", s.Trials)
	}
	if s.CutShard == 0 && s.CutWrite == 0 {
		// Distinguish "unset" from an explicit shard 0 pin: the zero
		// value samples. Explicit pins use CutShard >= 0 together with
		// CutWrite > 0; a bare CutShard 0 with no CutWrite is the
		// common JSON-default case and means "sample".
		s.CutShard = -1
	}
	if s.CutShard >= s.Shards {
		return s, fmt.Errorf("crash: cut_shard %d out of range (shards %d)", s.CutShard, s.Shards)
	}
	if s.CutWrite < 0 {
		return s, fmt.Errorf("crash: cut_write must be >= 0 (got %d)", s.CutWrite)
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	if s.Replicas < 1 || s.Replicas > 5 {
		return s, fmt.Errorf("crash: replicas must be in [1,5] (got %d)", s.Replicas)
	}
	switch s.ReplMode {
	case "":
		if s.Replicas > 1 {
			s.ReplMode = "chain"
		}
	case "chain", "quorum":
	default:
		return s, fmt.Errorf("crash: unknown repl_mode %q (have chain, quorum)", s.ReplMode)
	}
	if s.Replicas > 1 && s.ReplMode == "quorum" && s.Replicas < 3 {
		return s, fmt.Errorf("crash: quorum with %d replicas cannot stay writable after a replica kill; use replicas >= 3 or chain", s.Replicas)
	}
	if s.ErrorProb != 0 && len(s.ErrorKinds) == 0 {
		return s, fmt.Errorf("crash: error_prob requires error_kinds")
	}
	if len(s.ErrorKinds) > 0 {
		seen := make(map[string]bool, len(s.ErrorKinds))
		for _, k := range s.ErrorKinds {
			switch k {
			case "eio", "short", "misdirect", "fsynclie":
			default:
				return s, fmt.Errorf("crash: unknown error kind %q (have eio, short, misdirect, fsynclie)", k)
			}
			if seen[k] {
				return s, fmt.Errorf("crash: duplicate error kind %q", k)
			}
			seen[k] = true
		}
		if s.ErrorProb == 0 {
			s.ErrorProb = 0.05
		}
		if s.ErrorProb < 0 || s.ErrorProb > 1 {
			return s, fmt.Errorf("crash: error_prob must be in (0,1] (got %g)", s.ErrorProb)
		}
		if s.Replicas < 2 {
			return s, fmt.Errorf("crash: error trials need replicas >= 2 (a single copy has nothing to fail the damaged replica over to)")
		}
	}
	switch s.Device {
	case "":
		s.Device = "sim"
	case "sim", "file":
	default:
		return s, fmt.Errorf("crash: unknown device %q (want sim or file)", s.Device)
	}
	if s.Dir != "" && s.Device != "file" {
		return s, fmt.Errorf("crash: dir requires the file device")
	}
	return s, nil
}

// DurabilityTunables returns the per-engine knob overrides that make
// every acknowledged write durable at its completion time — the
// contract the harness verifies. Small structure sizes keep trees and
// memtables rotating within short op logs.
func DurabilityTunables(eng string) map[string]string {
	switch eng {
	case "lsm":
		return map[string]string{
			"memtable_bytes":  "16384",
			"wal_flush_bytes": "0", // sync the WAL on every put
		}
	default: // cowtree family: btree, betree and future tree engines
		return map[string]string{
			"journal_sync":    "true",
			"leaf_page_bytes": "2048",
		}
	}
}
