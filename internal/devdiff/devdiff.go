// Package devdiff is the differential checker between the two device
// authorities: the same seeded op log is driven through two identical
// engine stacks, one over the simulated flash block device
// (internal/blockdev with its content store) and one over a real
// backing file (internal/filedev), and everything logically observable
// must agree — per-op results, engine stats, host I/O counters, the
// per-LBA write histogram, the full device image byte for byte, and a
// complete scan of both recovered engines.
//
// The two backends charge different virtual-time costs, so the driver
// is built to make timing irrelevant: ops are submitted on a fixed
// one-minute grid (dwarfing any per-op latency difference) and both
// engines quiesce together every few ops, draining background work at
// identical logical times. Any remaining divergence is a real
// behavioural difference between the backends — which is exactly what
// the checker exists to catch.
package devdiff

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/crash"
	"ptsbench/internal/engine"
	"ptsbench/internal/extfs"
	"ptsbench/internal/filedev"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// fullEngine is the surface the differential driver needs: the harness
// interface plus deletes, scans and background-work draining. All three
// engines implement it (it mirrors internal/kvtest.Engine, redeclared
// here so the CLI binary doesn't link the testing package).
type fullEngine interface {
	kv.Engine
	Delete(now sim.Duration, key []byte) (sim.Duration, error)
	Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error)
	Quiesce(now sim.Duration) sim.Duration
}

// quiesceEvery is the op interval at which both stacks drain background
// work together. Small enough that time-triggered maintenance can never
// drift across backends by more than one window.
const quiesceEvery = 32

// flushEvery is the op interval at which both stacks take a full flush
// (memtable rotation / checkpoint) so on-device structure beyond the
// journal tail enters the image comparison.
const flushEvery = 192

// gridStep spaces op submissions far beyond any per-op latency
// difference between the backends, so completion times never influence
// which virtual time an op (or a quiesce) runs at.
const gridStep = sim.Duration(time.Minute)

// Spec declares one differential run.
type Spec struct {
	// Engine names a registered engine driver.
	Engine string
	// Ops is the op-log length. Default 600.
	Ops int
	// Keys bounds the key space. Default max(16, Ops/8).
	Keys int
	// Seed drives the op log.
	Seed uint64
	// Dir, when non-empty, keeps the file backend's image there
	// (default: a temp file, removed).
	Dir string
}

// Report summarizes a passing run.
type Report struct {
	Engine        string
	Ops           int
	Counters      blockdev.Counters // identical on both devices
	PagesWritten  int64             // LBAs with at least one write
	PagesCompared int64             // full image size, in pages
	ScanEntries   int               // recovered entries compared
}

// stack is one engine over one device authority.
type stack struct {
	host blockdev.Host
	fdev *filedev.Dev // non-nil on the file side
	fs   *extfs.FS
	cfg  engine.Config
	eng  fullEngine
}

func (s Spec) validate() (Spec, error) {
	if s.Engine == "" {
		return s, fmt.Errorf("devdiff: engine is required")
	}
	if _, err := engine.Lookup(s.Engine); err != nil {
		return s, fmt.Errorf("devdiff: %w", err)
	}
	if s.Ops == 0 {
		s.Ops = 600
	}
	if s.Ops < 1 {
		return s, fmt.Errorf("devdiff: ops must be positive (got %d)", s.Ops)
	}
	if s.Keys == 0 {
		s.Keys = s.Ops / 8
		if s.Keys < 16 {
			s.Keys = 16
		}
	}
	if s.Keys < 1 {
		return s, fmt.Errorf("devdiff: keys must be positive (got %d)", s.Keys)
	}
	return s, nil
}

// Run executes the differential check and fails on the first
// divergence between the simulated and file-backed stacks.
func Run(spec Spec) (*Report, error) {
	spec, err := spec.validate()
	if err != nil {
		return nil, err
	}
	dir := spec.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ptsbench-devdiff-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	// The simulated stack first: its geometry defines the file device's,
	// so the filesystem allocators see identical capacity on both sides.
	sstk, err := buildSim(spec)
	if err != nil {
		return nil, err
	}
	fstk, err := buildFile(spec, filepath.Join(dir, "dev.img"), sstk.host.Pages(), sstk.host.PageSize())
	if err != nil {
		return nil, err
	}
	defer fstk.fdev.Close()

	rep := &Report{Engine: spec.Engine, Ops: spec.Ops}
	if err := drive(spec, sstk, fstk); err != nil {
		return rep, err
	}
	if err := compareHosts(rep, sstk.host, fstk.host); err != nil {
		return rep, err
	}
	if err := compareImages(rep, sstk.host, fstk.host); err != nil {
		return rep, err
	}
	if err := compareRecovered(rep, spec, sstk, fstk); err != nil {
		return rep, err
	}
	return rep, nil
}

func buildSim(spec Spec) (*stack, error) {
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  32 << 20,
		PageSize:      4096,
		PagesPerBlock: 64,
		Profile:       flash.ProfileSSD1().Scaled(4096),
	})
	if err != nil {
		return nil, err
	}
	dev := blockdev.New(ssd)
	dev.EnableContentStore()
	return finishStack(spec, dev, nil)
}

func buildFile(spec Spec, path string, pages int64, pageSize int) (*stack, error) {
	fdev, err := filedev.Open(filedev.Config{
		Path:     path,
		Pages:    pages,
		PageSize: pageSize,
	})
	if err != nil {
		return nil, err
	}
	return finishStack(spec, fdev, fdev)
}

func finishStack(spec Spec, host blockdev.Host, fdev *filedev.Dev) (*stack, error) {
	fs, err := extfs.Mount(host, extfs.Options{})
	if err != nil {
		return nil, err
	}
	drv, err := engine.Lookup(spec.Engine)
	if err != nil {
		return nil, err
	}
	cfg := drv.Configure(engine.Sizing{DatasetBytes: 16 << 20})
	if err := cfg.ApplyTunables(crash.DurabilityTunables(spec.Engine)); err != nil {
		return nil, err
	}
	if err := cfg.ApplyTunables(diffTunables(spec.Engine)); err != nil {
		return nil, err
	}
	eng, err := cfg.Open(engine.Env{FS: fs, RNG: sim.NewRNG(1), Content: true})
	if err != nil {
		return nil, err
	}
	return &stack{host: host, fdev: fdev, fs: fs, cfg: cfg, eng: eng.(fullEngine)}, nil
}

// diffTunables pins clock-driven maintenance off for the differential
// run. The cowtree family's interval checkpoint compares a
// device-latency-contaminated `now` against the interval, so a trigger
// landing near the submission grid can tip on which backend's latency
// is larger — a timing artifact, not a behavioural divergence. A small
// pending-bytes threshold keeps checkpoints happening, driven purely by
// logical state the two backends share.
func diffTunables(eng string) map[string]string {
	switch eng {
	case "lsm": // flushes and compactions are size-triggered already
		return nil
	default: // cowtree family
		return map[string]string{
			"checkpoint_interval":      "16384h",
			"checkpoint_pending_bytes": "262144",
		}
	}
}

// drive replays the seeded op log against both engines in lockstep,
// comparing every per-op result, then quiesces both.
func drive(spec Spec, sstk, fstk *stack) error {
	rng := sim.NewRNG(spec.Seed ^ 0xD1FFD1FFD1FFD1FF)
	val := make([]byte, 24)
	for i := 0; i < spec.Ops; i++ {
		now := sim.Duration(i+1) * gridStep
		id := rng.Uint64n(uint64(spec.Keys))
		key := kv.EncodeKey(id)
		switch r := rng.Uint64n(100); {
		case r < 15:
			_, sv, sfound, serr := sstk.eng.Get(now, key)
			_, fv, ffound, ferr := fstk.eng.Get(now, key)
			if serr != nil || ferr != nil {
				return fmt.Errorf("devdiff: op %d get key %d: sim %v, file %v", i, id, serr, ferr)
			}
			if sfound != ffound || !bytes.Equal(sv, fv) {
				return fmt.Errorf("devdiff: op %d get key %d diverged: sim found=%v, file found=%v", i, id, sfound, ffound)
			}
		case r < 30:
			if _, err := sstk.eng.Delete(now, key); err != nil {
				return fmt.Errorf("devdiff: op %d sim delete: %w", i, err)
			}
			if _, err := fstk.eng.Delete(now, key); err != nil {
				return fmt.Errorf("devdiff: op %d file delete: %w", i, err)
			}
		default:
			binary.LittleEndian.PutUint64(val[0:], id)
			binary.LittleEndian.PutUint64(val[8:], uint64(i))
			binary.LittleEndian.PutUint64(val[16:], spec.Seed)
			if _, err := sstk.eng.Put(now, key, val, 0); err != nil {
				return fmt.Errorf("devdiff: op %d sim put: %w", i, err)
			}
			if _, err := fstk.eng.Put(now, key, val, 0); err != nil {
				return fmt.Errorf("devdiff: op %d file put: %w", i, err)
			}
		}
		if (i+1)%flushEvery == 0 {
			// A full flush forces real structure — SSTs, leaves,
			// checkpoints — onto the device, so the image comparison
			// covers more than the journal tail.
			q := now + gridStep/2
			if _, err := sstk.eng.FlushAll(q); err != nil {
				return fmt.Errorf("devdiff: sim flush at op %d: %w", i, err)
			}
			if _, err := fstk.eng.FlushAll(q); err != nil {
				return fmt.Errorf("devdiff: file flush at op %d: %w", i, err)
			}
		} else if (i+1)%quiesceEvery == 0 {
			q := now + gridStep/2
			sstk.eng.Quiesce(q)
			fstk.eng.Quiesce(q)
		}
	}
	end := sim.Duration(spec.Ops+1) * gridStep
	sstk.eng.Quiesce(end)
	fstk.eng.Quiesce(end)
	if s, f := sstk.eng.Stats(), fstk.eng.Stats(); s != f {
		return fmt.Errorf("devdiff: engine stats diverged:\nsim  %+v\nfile %+v", s, f)
	}
	return nil
}

// compareHosts checks the logical I/O instrumentation: iostat counters
// and the per-LBA write histogram must be identical.
func compareHosts(rep *Report, sdev, fdev blockdev.Host) error {
	sc, fc := sdev.Counters(), fdev.Counters()
	if sc != fc {
		return fmt.Errorf("devdiff: host counters diverged:\nsim  %+v\nfile %+v", sc, fc)
	}
	rep.Counters = sc
	sh, fh := sdev.WriteHist(), fdev.WriteHist()
	if !slices.Equal(sh, fh) {
		for i := range sh {
			if sh[i] != fh[i] {
				return fmt.Errorf("devdiff: write histogram diverged at LBA %d: sim %d, file %d", i, sh[i], fh[i])
			}
		}
		return fmt.Errorf("devdiff: write histogram lengths diverged: sim %d, file %d", len(sh), len(fh))
	}
	for _, w := range sh {
		if w > 0 {
			rep.PagesWritten++
		}
	}
	return nil
}

// compareImages reads both devices end to end and demands bytewise
// equality — the backing file must hold exactly the pages the simulated
// content store holds, with zeros everywhere else. Runs after
// compareHosts so the comparison reads don't pollute the counters.
func compareImages(rep *Report, sdev, fdev blockdev.Host) error {
	ps := sdev.PageSize()
	const chunk = 64
	sbuf := make([]byte, chunk*ps)
	fbuf := make([]byte, chunk*ps)
	pages := sdev.Pages()
	for off := int64(0); off < pages; off += chunk {
		n := int(min(int64(chunk), pages-off))
		sdev.ReadAt(0, off, n, sbuf[:n*ps])
		fdev.ReadAt(0, off, n, fbuf[:n*ps])
		if !bytes.Equal(sbuf[:n*ps], fbuf[:n*ps]) {
			for i := 0; i < n; i++ {
				if !bytes.Equal(sbuf[i*ps:(i+1)*ps], fbuf[i*ps:(i+1)*ps]) {
					return fmt.Errorf("devdiff: device images diverged at LBA %d", off+int64(i))
				}
			}
		}
	}
	rep.PagesCompared = pages
	return nil
}

// compareRecovered closes and reopens the backing file (the file side's
// real restart), recovers both engines through the registry, and
// compares a full scan of each.
func compareRecovered(rep *Report, spec Spec, sstk, fstk *stack) error {
	if err := fstk.fdev.Close(); err != nil {
		return err
	}
	if err := fstk.fdev.Reopen(); err != nil {
		return err
	}
	now := sim.Duration(spec.Ops+2) * gridStep
	seng, snow, err := sstk.cfg.Recover(engine.Env{FS: sstk.fs, RNG: sim.NewRNG(2), Content: true}, now)
	if err != nil {
		return fmt.Errorf("devdiff: sim recovery: %w", err)
	}
	feng, fnow, err := fstk.cfg.Recover(engine.Env{FS: fstk.fs, RNG: sim.NewRNG(2), Content: true}, now)
	if err != nil {
		return fmt.Errorf("devdiff: file recovery: %w", err)
	}
	scanNow := snow
	if fnow > scanNow {
		scanNow = fnow
	}
	_, sentries, err := seng.(fullEngine).Scan(scanNow, kv.EncodeKey(0), spec.Keys+16)
	if err != nil {
		return fmt.Errorf("devdiff: sim recovered scan: %w", err)
	}
	_, fentries, err := feng.(fullEngine).Scan(scanNow, kv.EncodeKey(0), spec.Keys+16)
	if err != nil {
		return fmt.Errorf("devdiff: file recovered scan: %w", err)
	}
	if len(sentries) != len(fentries) {
		return fmt.Errorf("devdiff: recovered scans diverged: sim %d entries, file %d", len(sentries), len(fentries))
	}
	for i := range sentries {
		if !bytes.Equal(sentries[i].Key, fentries[i].Key) || !bytes.Equal(sentries[i].Value, fentries[i].Value) {
			id, _ := kv.DecodeKey(sentries[i].Key)
			return fmt.Errorf("devdiff: recovered scans diverged at entry %d (sim key %d)", i, id)
		}
	}
	rep.ScanEntries = len(sentries)
	return nil
}
