package devdiff

import (
	"testing"

	"ptsbench/internal/engine"
	_ "ptsbench/internal/engine/all"
)

// TestDifferentialAllEngines is the capstone of the file backend: for
// every registered engine, the same seeded op log over the simulated
// device and over a real backing file must produce identical per-op
// results, identical engine stats, identical host I/O counters and
// write histograms, a byte-identical device image, and identical
// recovered scans after the file side's real close-and-reopen.
func TestDifferentialAllEngines(t *testing.T) {
	for _, name := range engine.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Spec{Engine: name, Ops: 600, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Counters.WriteOps == 0 || rep.PagesWritten == 0 || rep.ScanEntries == 0 {
				t.Fatalf("trivial run: %+v", rep)
			}
		})
	}
}

// TestSpecValidate covers defaults and fail-fast rejection.
func TestSpecValidate(t *testing.T) {
	s, err := (Spec{Engine: "lsm"}).validate()
	if err != nil {
		t.Fatal(err)
	}
	if s.Ops != 600 || s.Keys != 75 {
		t.Fatalf("defaults wrong: %+v", s)
	}
	for _, bad := range []Spec{
		{},                        // no engine
		{Engine: "nope"},          // unknown engine
		{Engine: "lsm", Ops: -1},  // bad ops
		{Engine: "lsm", Keys: -1}, // bad keys
	} {
		if _, err := bad.validate(); err == nil {
			t.Errorf("bad spec validated: %+v", bad)
		}
	}
}
