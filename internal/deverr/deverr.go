// Package deverr defines the typed I/O error the storage stack
// propagates from the block layer up through the filesystem, the WAL
// and the engines to the serving layer. Before it existed every device
// failure was a panic; now a failed page read surfaces as a value the
// store can classify: transient errors (a command-level EIO that a
// retry may clear) are retried with backoff, persistent ones (a latent
// sector error, a failing backing file) fail the replica out of its
// group.
//
// The error taxonomy follows the host-stack failure modes of the
// flash-integration survey (Tehrany et al.): read/write EIO, latent
// sector errors, short writes, misdirected writes and fsync lies. Only
// the first two ever surface as errors — the last three are silent
// corruptions the device acknowledges, which recovery and read-repair
// must catch from the damage itself.
package deverr

import (
	"errors"
	"fmt"
)

// Op names the I/O operation that failed.
type Op string

// Operations.
const (
	OpRead    Op = "read"
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpRestore Op = "restore"
)

// Kind classifies the failure.
type Kind string

// Kinds.
const (
	// KindEIO is a command-level I/O error: the device refused the op.
	// Injected transient EIOs clear on retry; a real backing-file
	// syscall failure is persistent.
	KindEIO Kind = "eio"
	// KindLatent is a latent sector error: reads of the LBA fail until
	// a successful rewrite reallocates it. Always persistent.
	KindLatent Kind = "latent"
	// KindBounds is an out-of-range request — a recoverable caller bug
	// (bad offset from corrupt metadata), not a device fault.
	KindBounds Kind = "bounds"
)

// Error is a typed device I/O failure. LBA is the device page the
// failure is attributed to (the first affected page for multi-page
// ops; -1 when no single page applies, e.g. a sync). Transient
// failures may clear on retry; persistent ones will not.
type Error struct {
	Op        Op
	LBA       int64
	Kind      Kind
	Transient bool
	Cause     error // underlying error, if any (a real syscall failure)
}

// Error implements error.
func (e *Error) Error() string {
	t := "persistent"
	if e.Transient {
		t = "transient"
	}
	msg := fmt.Sprintf("deverr: %s %s %s at lba %d", t, e.Kind, e.Op, e.LBA)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Cause }

// As extracts the typed device error from an error chain.
func As(err error) (*Error, bool) {
	var de *Error
	if errors.As(err, &de) {
		return de, true
	}
	return nil, false
}

// Latched marks an error a subsystem has latched as its permanent
// failure state: every later call returns it verbatim, so retrying the
// caller's operation cannot help even when the ROOT cause was a
// transient device error (an engine whose background checkpoint died
// on one EIO stays dead). IsTransient treats a latched chain as
// persistent; the root cause stays reachable through Unwrap.
type Latched struct {
	Cause error
}

// Error implements error.
func (l *Latched) Error() string { return "latched: " + l.Cause.Error() }

// Unwrap exposes the latched cause to errors.Is/As.
func (l *Latched) Unwrap() error { return l.Cause }

// Latch wraps an error about to be recorded as a sticky subsystem
// failure. nil stays nil; an already-latched error is not re-wrapped.
func Latch(err error) error {
	if err == nil {
		return nil
	}
	var l *Latched
	if errors.As(err, &l) {
		return err
	}
	return &Latched{Cause: err}
}

// IsTransient reports whether err carries a transient device error —
// the store's retry predicate. Persistent errors, latched errors and
// non-device errors are not retryable.
func IsTransient(err error) bool {
	var l *Latched
	if errors.As(err, &l) {
		return false
	}
	de, ok := As(err)
	return ok && de.Transient
}
