// Package all registers every built-in engine driver with the registry
// in internal/engine, the way database/sql users import driver packages
// for their side effects. Packages that resolve engines by name at run
// time (internal/figures, the facade, command binaries, tests) blank-
// import it; packages that already import a concrete engine get that
// engine's registration for free from its own init.
package all

import (
	// Each engine package self-registers its driver from init.
	_ "ptsbench/internal/betree"
	_ "ptsbench/internal/btree"
	_ "ptsbench/internal/lsm"
)
