// Package engine defines the pluggable storage-engine driver interface
// and its registry. The experiment runner (internal/core), the figures,
// the CLI and the public facade all resolve engines by name through the
// registry instead of switching over a hard-coded enum, so adding a
// tree structure to the laboratory is one new package plus one
// self-registration — the pattern host storage stacks use to keep their
// device and engine layers pluggable.
//
// A Driver turns a Sizing (dataset size, simulation scale, host queue
// depth) into a Config: the engine's own tuning structure, sized with
// its defaults and with CPU costs and internal parallelism scaled the
// way the experiment runner requires. A Config then accepts declarative,
// serializable knob overrides (ApplyTunables) and opens or recovers the
// engine on a filesystem. Because every knob is a named string-valued
// tunable rather than a Go closure, a full experiment — engine included
// — can be described as data, saved to JSON, diffed and replayed.
package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ptsbench/internal/extfs"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// Engine is the runtime interface the harness drives: the kv.Engine
// operations plus the simulation lifecycle hooks every tree structure
// implements.
type Engine interface {
	kv.Engine
	// Quiesce pumps background work (flushes, compactions, checkpoints)
	// to completion and returns the advanced virtual time.
	Quiesce(now sim.Duration) sim.Duration
	// Close persists all state and shuts the engine down.
	Close(now sim.Duration) (sim.Duration, error)
}

// GroupCommitter is the optional surface of engines whose journal can
// defer per-write durability to a single batch-end sync (group commit).
// The store's shard workers bracket intake batches carrying more than
// one write with Begin/End, so concurrent clients share one journal
// sync the way production write-ahead logs batch fsyncs. Engines whose
// write path already batches durability internally (the LSM WAL flushes
// by accumulated bytes) simply don't implement it.
type GroupCommitter interface {
	// BeginGroupCommit suppresses per-write journal syncs until
	// EndGroupCommit.
	BeginGroupCommit()
	// EndGroupCommit closes the group and syncs the journal tail once,
	// returning the sync completion time.
	EndGroupCommit(now sim.Duration) (sim.Duration, error)
}

// Env is the environment an engine opens on.
type Env struct {
	// FS is the filesystem the engine stores its files in.
	FS *extfs.FS
	// RNG seeds engine-internal randomness (e.g. skiplist tower
	// heights). Drivers that need it split a child stream from it;
	// drivers of deterministic engines ignore it entirely, so the
	// parent stream is only advanced by engines that consumed
	// randomness before the registry existed — which keeps historical
	// runs bit-identical.
	RNG *sim.RNG
	// Content selects content mode: values are materialized and
	// written through to the device (required for recovery tests).
	Content bool
}

// Sizing parameterizes a driver's default configuration.
type Sizing struct {
	// DatasetBytes sizes caches, memtables and node budgets, the same
	// way the engines' NewConfig constructors are documented.
	DatasetBytes int64
	// Scale dilates per-operation CPU costs and divides throttling
	// rates so that a scaled experiment traces the full-size one's
	// virtual-time curves. Values below 2 leave the config at paper
	// scale.
	Scale int64
	// QueueDepth sets engine-internal read parallelism (SSTable probe
	// waves, compaction read batching, scan prefetch). Values below 2
	// keep the strictly serial defaults.
	QueueDepth int
}

// CPUScale returns the factor Scale applies to CPU cost durations.
func (s Sizing) CPUScale() time.Duration {
	if s.Scale > 1 {
		return time.Duration(s.Scale)
	}
	return 1
}

// Tunable documents one declarative knob of an engine config.
type Tunable struct {
	// Name is the knob's key within the engine's namespace (e.g.
	// "epsilon" under engine "betree").
	Name string
	// Kind is the value syntax: "int", "float", "bool" or "duration".
	Kind string
	// Doc is a one-line description.
	Doc string
}

// Config is a sized engine configuration: a Driver's defaults after
// Sizing, ready to accept declarative overrides and open engines.
// Implementations are pointers to the engine's own config struct, so
// typed callers (the facade's thin wrappers) and declarative callers
// share one code path.
type Config interface {
	// Tunables lists the knobs ApplyTunables accepts.
	Tunables() []Tunable
	// ApplyTunables validates and applies engine-namespaced knob
	// overrides. Unknown keys and malformed values are errors naming
	// the engine; a nil or empty map is a no-op.
	ApplyTunables(tunables map[string]string) error
	// Open creates a fresh engine on env. The filesystem must be
	// empty.
	Open(env Env) (Engine, error)
	// Recover reopens an engine from on-device state (checkpoint
	// metadata, manifests, journal/WAL replay), returning the engine
	// and the virtual time consumed by recovery I/O. env must have
	// content mode enabled.
	Recover(env Env, now sim.Duration) (Engine, sim.Duration, error)
}

// Driver describes one pluggable engine.
type Driver interface {
	// Name is the registry key and the spelling used by experiment
	// specs and the CLI ("lsm", "btree", "betree", ...).
	Name() string
	// Configure returns a fresh Config sized for s.
	Configure(s Sizing) Config
}

var (
	regMu    sync.RWMutex
	registry = map[string]Driver{}
)

// Register adds a driver to the registry. Engine packages call it from
// init, so importing an engine package (directly, or via the blank
// imports of internal/engine/all) is what makes it available. Register
// panics on an empty name or a duplicate registration — both are
// programmer errors caught by any test that imports the package.
func Register(d Driver) {
	name := d.Name()
	if name == "" {
		panic("engine: Register with empty driver name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: driver %q registered twice", name))
	}
	registry[name] = d
}

// Lookup resolves a driver by name.
func Lookup(name string) (Driver, error) {
	regMu.RLock()
	d, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return d, nil
}

// Names lists the registered engine names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Knobs binds declarative knob names to the fields of a concrete engine
// config, giving every driver the same parse/validate/apply behaviour
// and the same error spelling (prefixed with the engine name, as the
// spec-file diagnostics require). Drivers build one per config value,
// with the destinations pointing into the receiver.
type Knobs struct {
	engine string
	docs   []Tunable
	set    map[string]func(string) error
}

// NewKnobs starts an empty knob set for the named engine.
func NewKnobs(engineName string) *Knobs {
	return &Knobs{engine: engineName, set: map[string]func(string) error{}}
}

func (k *Knobs) add(name, kind, doc string, fn func(string) error) {
	if _, dup := k.set[name]; dup {
		panic(fmt.Sprintf("engine: %s: duplicate tunable %q", k.engine, name))
	}
	k.docs = append(k.docs, Tunable{Name: name, Kind: kind, Doc: doc})
	k.set[name] = fn
}

// Int binds an integer knob.
func (k *Knobs) Int(name, doc string, dst *int) {
	k.add(name, "int", doc, func(v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		*dst = n
		return nil
	})
}

// Int64 binds a 64-bit integer knob (byte sizes, rates).
func (k *Knobs) Int64(name, doc string, dst *int64) {
	k.add(name, "int", doc, func(v string) error {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return err
		}
		*dst = n
		return nil
	})
}

// Float binds a float64 knob.
func (k *Knobs) Float(name, doc string, dst *float64) {
	k.add(name, "float", doc, func(v string) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		*dst = f
		return nil
	})
}

// Bool binds a boolean knob.
func (k *Knobs) Bool(name, doc string, dst *bool) {
	k.add(name, "bool", doc, func(v string) error {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return err
		}
		*dst = b
		return nil
	})
}

// Duration binds a time.Duration knob ("300us", "1m30s").
func (k *Knobs) Duration(name, doc string, dst *time.Duration) {
	k.add(name, "duration", doc, func(v string) error {
		d, err := time.ParseDuration(v)
		if err != nil {
			return err
		}
		*dst = d
		return nil
	})
}

// Docs lists the bound tunables in registration order.
func (k *Knobs) Docs() []Tunable {
	return append([]Tunable(nil), k.docs...)
}

// Apply sets the bound destinations from m. Keys are applied in sorted
// order so repeated applications are deterministic; the first failure
// aborts with an error naming the engine and the offending knob.
func (k *Knobs) Apply(m map[string]string) error {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for key := range m {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fn, ok := k.set[key]
		if !ok {
			return fmt.Errorf("%s: unknown tunable %q (have %s)",
				k.engine, key, strings.Join(k.names(), ", "))
		}
		if err := fn(m[key]); err != nil {
			return fmt.Errorf("%s: tunable %s=%q: %v", k.engine, key, m[key], err)
		}
	}
	return nil
}

func (k *Knobs) names() []string {
	names := make([]string, 0, len(k.set))
	for name := range k.set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
