package engine

import (
	"strings"
	"testing"
	"time"
)

type fakeDriver struct{ name string }

func (d fakeDriver) Name() string              { return d.name }
func (d fakeDriver) Configure(s Sizing) Config { return nil }

func TestRegistryLookupAndNames(t *testing.T) {
	Register(fakeDriver{name: "zzz-test-engine"})
	d, err := Lookup("zzz-test-engine")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "zzz-test-engine" {
		t.Fatalf("wrong driver: %q", d.Name())
	}
	found := false
	names := Names()
	for i, name := range names {
		if i > 0 && names[i-1] > name {
			t.Fatalf("Names not sorted: %v", names)
		}
		if name == "zzz-test-engine" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered driver missing from Names: %v", names)
	}
	if _, err := Lookup("no-such-engine"); err == nil {
		t.Fatal("unknown engine should error")
	} else if !strings.Contains(err.Error(), "zzz-test-engine") {
		t.Fatalf("lookup error should list registered engines: %v", err)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	Register(fakeDriver{name: "dup-test-engine"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	Register(fakeDriver{name: "dup-test-engine"})
}

func TestRegisterRejectsEmptyName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty driver name should panic")
		}
	}()
	Register(fakeDriver{})
}

func TestKnobsApply(t *testing.T) {
	var (
		i   int
		i64 int64
		f   float64
		b   bool
		d   time.Duration
	)
	k := NewKnobs("toy")
	k.Int("count", "a count", &i)
	k.Int64("bytes", "a size", &i64)
	k.Float("ratio", "a ratio", &f)
	k.Bool("flag", "a flag", &b)
	k.Duration("pause", "a pause", &d)

	if err := k.Apply(nil); err != nil {
		t.Fatalf("nil map should be a no-op: %v", err)
	}
	err := k.Apply(map[string]string{
		"count": "7",
		"bytes": "1048576",
		"ratio": "0.75",
		"flag":  "true",
		"pause": "90ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 7 || i64 != 1<<20 || f != 0.75 || !b || d != 90*time.Millisecond {
		t.Fatalf("values not applied: %d %d %v %v %v", i, i64, f, b, d)
	}

	docs := k.Docs()
	if len(docs) != 5 || docs[0].Name != "count" || docs[0].Kind != "int" {
		t.Fatalf("docs wrong: %+v", docs)
	}
}

func TestKnobsApplyErrors(t *testing.T) {
	var i int
	k := NewKnobs("toy")
	k.Int("count", "a count", &i)

	err := k.Apply(map[string]string{"nope": "1"})
	if err == nil {
		t.Fatal("unknown knob should error")
	}
	if !strings.Contains(err.Error(), "toy") || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error should name engine and knob: %v", err)
	}
	if !strings.Contains(err.Error(), "count") {
		t.Fatalf("error should list the valid knobs: %v", err)
	}
	err = k.Apply(map[string]string{"count": "not-a-number"})
	if err == nil || !strings.Contains(err.Error(), "toy") {
		t.Fatalf("parse failure should name the engine: %v", err)
	}
}

func TestSizingCPUScale(t *testing.T) {
	if (Sizing{}).CPUScale() != 1 || (Sizing{Scale: 1}).CPUScale() != 1 {
		t.Fatal("unscaled sizing should return 1")
	}
	if (Sizing{Scale: 128}).CPUScale() != 128 {
		t.Fatal("scale factor lost")
	}
}
