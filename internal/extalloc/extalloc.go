// Package extalloc implements the extent allocator shared by the
// page/node-based engines (B+Tree, Bε-tree): page-extents inside one
// collection file, WiredTiger-style. Freed extents are reused
// lowest-offset-first, which keeps the file compact and the engine's
// LBA footprint confined — the behaviour behind the paper's Fig 4
// (WiredTiger never writes ~45% of the device). Extents freed by
// copy-on-write rewrites only return to the allocator when the next
// checkpoint commits, so the page images a completed checkpoint
// references survive until a newer one replaces them (the avail-list
// discipline crash recovery requires).
//
// The free set is a treap keyed by extent start and augmented with the
// subtree's maximum extent size, so the leftmost extent that fits an
// allocation is found in O(log n) — the previous sorted-slice
// implementation's linear first-fit scan and O(n) insert/delete
// memmoves accounted for roughly a quarter of the fig2 B+Tree cell's
// CPU. The allocation policy (lowest-offset first fit, neighbour
// merging on release) is unchanged and pinned by a differential test
// against a reference implementation.
package extalloc

import (
	"fmt"

	"ptsbench/internal/extfs"
)

// Extent is a contiguous run of pages inside the collection file.
// Pages == 0 means "no extent" (a node never written).
type Extent struct {
	Start, Pages int64
}

// treapNode is one free extent. Priorities are minted from a
// deterministic counter hash, so the tree shape — and therefore
// performance, but not the allocation results, which depend only on the
// key order — is reproducible across runs.
type treapNode struct {
	ext         Extent
	prio        uint64
	max         int64 // max Pages within this subtree
	left, right *treapNode
}

// Manager allocates extents inside one file.
type Manager struct {
	file *extfs.File
	root *treapNode
	// spare chains recycled nodes through their left pointers, so the
	// steady state allocates no treap nodes.
	spare     *treapNode
	prioSeed  uint64
	freeTotal int64
	// pending holds extents freed since the last checkpoint; they join
	// the free list only when the checkpoint commits.
	pending      []Extent
	pendingTotal int64
	// growChunk batches file growth to limit filesystem fragmentation.
	growChunk int64
}

// New creates a manager over f. growChunk <= 0 selects a default.
func New(f *extfs.File, growChunk int64) *Manager {
	if growChunk <= 0 {
		growChunk = 256
	}
	return &Manager{file: f, growChunk: growChunk}
}

// splitmix64 is the priority mixer (deterministic, well-distributed).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (m *Manager) newNode(e Extent) *treapNode {
	nd := m.spare
	if nd != nil {
		m.spare = nd.left
		*nd = treapNode{}
	} else {
		nd = &treapNode{}
	}
	m.prioSeed++
	nd.ext = e
	nd.prio = splitmix64(m.prioSeed)
	nd.max = e.Pages
	return nd
}

func (m *Manager) recycle(nd *treapNode) {
	nd.right = nil
	nd.left = m.spare
	m.spare = nd
}

// upd pulls the subtree max up into nd.
func upd(nd *treapNode) {
	mx := nd.ext.Pages
	if nd.left != nil && nd.left.max > mx {
		mx = nd.left.max
	}
	if nd.right != nil && nd.right.max > mx {
		mx = nd.right.max
	}
	nd.max = mx
}

// join merges two treaps where every key in l precedes every key in r.
func join(l, r *treapNode) *treapNode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio >= r.prio:
		l.right = join(l.right, r)
		upd(l)
		return l
	default:
		r.left = join(l, r.left)
		upd(r)
		return r
	}
}

// insert adds nd (a detached single node) into the subtree.
func insert(root, nd *treapNode) *treapNode {
	if root == nil {
		return nd
	}
	if nd.prio > root.prio {
		// Split root's subtree around nd's key.
		nd.left, nd.right = split(root, nd.ext.Start)
		upd(nd)
		return nd
	}
	if nd.ext.Start < root.ext.Start {
		root.left = insert(root.left, nd)
	} else {
		root.right = insert(root.right, nd)
	}
	upd(root)
	return root
}

// split partitions a treap into keys < at and keys >= at.
func split(nd *treapNode, at int64) (l, r *treapNode) {
	if nd == nil {
		return nil, nil
	}
	if nd.ext.Start < at {
		nd.right, r = split(nd.right, at)
		upd(nd)
		return nd, r
	}
	l, nd.left = split(nd.left, at)
	upd(nd)
	return l, nd
}

// removeKey deletes the node with the given start, handing it to
// recycle. The key must exist.
func (m *Manager) removeKey(nd *treapNode, start int64) *treapNode {
	if nd == nil {
		return nil
	}
	switch {
	case start < nd.ext.Start:
		nd.left = m.removeKey(nd.left, start)
	case start > nd.ext.Start:
		nd.right = m.removeKey(nd.right, start)
	default:
		out := join(nd.left, nd.right)
		m.recycle(nd)
		return out
	}
	upd(nd)
	return nd
}

// Alloc returns a contiguous extent of n pages, reusing the
// lowest-offset free extent that fits, growing the file if necessary.
func (m *Manager) Alloc(n int64) (Extent, error) {
	if n <= 0 {
		return Extent{}, fmt.Errorf("extalloc: alloc of %d pages", n)
	}
	if m.root != nil && m.root.max >= n {
		var out Extent
		m.root = m.take(m.root, n, &out)
		m.freeTotal -= n
		return out, nil
	}
	grow := n
	if grow < m.growChunk {
		grow = m.growChunk
	}
	start := m.file.SizePages()
	if err := m.file.Grow(grow); err != nil {
		// Retry with the exact need (the chunk may not fit).
		if grow == n {
			return Extent{}, err
		}
		grow = n
		if err := m.file.Grow(grow); err != nil {
			return Extent{}, err
		}
	}
	if grow > n {
		m.Release(Extent{Start: start + n, Pages: grow - n})
	}
	return Extent{Start: start, Pages: n}, nil
}

// take carves want pages out of the leftmost extent that fits (the
// caller guarantees nd.max >= want). Taking a prefix moves the node's
// start forward, which preserves the key order — the shrunk extent
// still sits strictly between its neighbours.
func (m *Manager) take(nd *treapNode, want int64, out *Extent) *treapNode {
	if nd.left != nil && nd.left.max >= want {
		nd.left = m.take(nd.left, want, out)
		upd(nd)
		return nd
	}
	if nd.ext.Pages >= want {
		*out = Extent{Start: nd.ext.Start, Pages: want}
		if nd.ext.Pages == want {
			merged := join(nd.left, nd.right)
			m.recycle(nd)
			return merged
		}
		nd.ext.Start += want
		nd.ext.Pages -= want
		upd(nd)
		return nd
	}
	nd.right = m.take(nd.right, want, out)
	upd(nd)
	return nd
}

// findAdjacent returns the free extents immediately before and after
// start: pred is the extent with the greatest start < start, succ the
// one with the smallest start > start (either may be nil).
func (m *Manager) findAdjacent(start int64) (pred, succ *treapNode) {
	nd := m.root
	for nd != nil {
		if nd.ext.Start < start {
			pred = nd
			nd = nd.right
		} else {
			succ = nd
			nd = nd.left
		}
	}
	return pred, succ
}

// Release returns an extent to the free pool, merging neighbours.
func (m *Manager) Release(e Extent) {
	if e.Pages <= 0 {
		return
	}
	m.freeTotal += e.Pages
	pred, succ := m.findAdjacent(e.Start)
	if pred != nil && pred.ext.Start+pred.ext.Pages == e.Start {
		e = Extent{Start: pred.ext.Start, Pages: pred.ext.Pages + e.Pages}
		m.root = m.removeKey(m.root, pred.ext.Start)
	}
	if succ != nil && e.Start+e.Pages == succ.ext.Start {
		e.Pages += succ.ext.Pages
		m.root = m.removeKey(m.root, succ.ext.Start)
	}
	m.root = insert(m.root, m.newNode(e))
}

// ReleaseDeferred queues an extent for release at the next checkpoint
// commit.
func (m *Manager) ReleaseDeferred(e Extent) {
	if e.Pages > 0 {
		m.pending = append(m.pending, e)
		m.pendingTotal += e.Pages
	}
}

// PendingPages reports the total pages awaiting release.
func (m *Manager) PendingPages() int64 { return m.pendingTotal }

// PendingMark returns a cursor into the deferred-release queue; a
// checkpoint snapshots it at creation and releases only that prefix at
// commit. Extents deferred DURING the checkpoint may still be
// referenced by images the checkpoint already wrote, so they wait for
// the next one.
func (m *Manager) PendingMark() int { return len(m.pending) }

// CommitPendingPrefix releases the first n deferred extents.
func (m *Manager) CommitPendingPrefix(n int) {
	if n > len(m.pending) {
		n = len(m.pending)
	}
	for _, e := range m.pending[:n] {
		m.pendingTotal -= e.Pages
		m.Release(e)
	}
	m.pending = append(m.pending[:0], m.pending[n:]...)
}

// FreePages reports the total free pages inside the file.
func (m *Manager) FreePages() int64 { return m.freeTotal }
