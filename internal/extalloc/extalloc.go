// Package extalloc implements the extent allocator shared by the
// page/node-based engines (B+Tree, Bε-tree): page-extents inside one
// collection file, WiredTiger-style. Freed extents are reused
// lowest-offset-first, which keeps the file compact and the engine's
// LBA footprint confined — the behaviour behind the paper's Fig 4
// (WiredTiger never writes ~45% of the device). Extents freed by
// copy-on-write rewrites only return to the allocator when the next
// checkpoint commits, so the page images a completed checkpoint
// references survive until a newer one replaces them (the avail-list
// discipline crash recovery requires).
package extalloc

import (
	"fmt"
	"sort"

	"ptsbench/internal/extfs"
)

// Extent is a contiguous run of pages inside the collection file.
// Pages == 0 means "no extent" (a node never written).
type Extent struct {
	Start, Pages int64
}

// Manager allocates extents inside one file.
type Manager struct {
	file *extfs.File
	free []Extent // sorted by start, merged
	// pending holds extents freed since the last checkpoint; they join
	// the free list only when the checkpoint commits.
	pending      []Extent
	pendingTotal int64
	// growChunk batches file growth to limit filesystem fragmentation.
	growChunk int64
}

// New creates a manager over f. growChunk <= 0 selects a default.
func New(f *extfs.File, growChunk int64) *Manager {
	if growChunk <= 0 {
		growChunk = 256
	}
	return &Manager{file: f, growChunk: growChunk}
}

// Alloc returns a contiguous extent of n pages, reusing the
// lowest-offset free extent that fits, growing the file if necessary.
func (m *Manager) Alloc(n int64) (Extent, error) {
	if n <= 0 {
		return Extent{}, fmt.Errorf("extalloc: alloc of %d pages", n)
	}
	for i := range m.free {
		e := m.free[i]
		if e.Pages >= n {
			out := Extent{Start: e.Start, Pages: n}
			if e.Pages == n {
				m.free = append(m.free[:i], m.free[i+1:]...)
			} else {
				m.free[i] = Extent{Start: e.Start + n, Pages: e.Pages - n}
			}
			return out, nil
		}
	}
	grow := n
	if grow < m.growChunk {
		grow = m.growChunk
	}
	start := m.file.SizePages()
	if err := m.file.Grow(grow); err != nil {
		// Retry with the exact need (the chunk may not fit).
		if grow == n {
			return Extent{}, err
		}
		grow = n
		if err := m.file.Grow(grow); err != nil {
			return Extent{}, err
		}
	}
	if grow > n {
		m.Release(Extent{Start: start + n, Pages: grow - n})
	}
	return Extent{Start: start, Pages: n}, nil
}

// Release returns an extent to the free pool, merging neighbours.
func (m *Manager) Release(e Extent) {
	if e.Pages <= 0 {
		return
	}
	i := sort.Search(len(m.free), func(i int) bool {
		return m.free[i].Start >= e.Start
	})
	m.free = append(m.free, Extent{})
	copy(m.free[i+1:], m.free[i:])
	m.free[i] = e
	if i+1 < len(m.free) && m.free[i].Start+m.free[i].Pages == m.free[i+1].Start {
		m.free[i].Pages += m.free[i+1].Pages
		m.free = append(m.free[:i+1], m.free[i+2:]...)
	}
	if i > 0 && m.free[i-1].Start+m.free[i-1].Pages == m.free[i].Start {
		m.free[i-1].Pages += m.free[i].Pages
		m.free = append(m.free[:i], m.free[i+1:]...)
	}
}

// ReleaseDeferred queues an extent for release at the next checkpoint
// commit.
func (m *Manager) ReleaseDeferred(e Extent) {
	if e.Pages > 0 {
		m.pending = append(m.pending, e)
		m.pendingTotal += e.Pages
	}
}

// PendingPages reports the total pages awaiting release.
func (m *Manager) PendingPages() int64 { return m.pendingTotal }

// PendingMark returns a cursor into the deferred-release queue; a
// checkpoint snapshots it at creation and releases only that prefix at
// commit. Extents deferred DURING the checkpoint may still be
// referenced by images the checkpoint already wrote, so they wait for
// the next one.
func (m *Manager) PendingMark() int { return len(m.pending) }

// CommitPendingPrefix releases the first n deferred extents.
func (m *Manager) CommitPendingPrefix(n int) {
	if n > len(m.pending) {
		n = len(m.pending)
	}
	for _, e := range m.pending[:n] {
		m.pendingTotal -= e.Pages
		m.Release(e)
	}
	m.pending = append(m.pending[:0], m.pending[n:]...)
}

// FreePages reports the total free pages inside the file.
func (m *Manager) FreePages() int64 {
	var n int64
	for _, e := range m.free {
		n += e.Pages
	}
	return n
}
