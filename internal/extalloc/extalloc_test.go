package extalloc

import (
	"testing"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
)

func testFile(t *testing.T) *extfs.File {
	t.Helper()
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		Profile: flash.Profile{
			Name:       "ea-test",
			ReadFixed:  5 * time.Microsecond,
			WriteFixed: 5 * time.Microsecond,
			ReadBW:     2 << 30,
			WriteBW:    1 << 30,
			HardwareOP: 0.25,
			EraseTime:  200 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := extfs.Mount(blockdev.New(ssd), extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("ea-test")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAllocReleaseReuse(t *testing.T) {
	m := New(testFile(t), 64)
	a, err := m.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Start == b.Start {
		t.Fatal("overlapping allocations")
	}
	m.Release(a)
	c, err := m.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Start != a.Start {
		t.Fatalf("lowest-first reuse broken: got %d, want %d", c.Start, a.Start)
	}
	// Free-list merging: release adjacent extents and allocate across.
	m.Release(c)
	m.Release(b)
	d, err := m.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if d.Start != a.Start {
		t.Fatalf("merge failed: got %d", d.Start)
	}
}

func TestDeferredReleaseWaitsForCommit(t *testing.T) {
	m := New(testFile(t), 64)
	a, err := m.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	m.ReleaseDeferred(a)
	if m.PendingPages() != 8 {
		t.Fatalf("pending %d, want 8", m.PendingPages())
	}
	mark := m.PendingMark()
	b, _ := m.Alloc(8)
	if b.Start == a.Start {
		t.Fatal("deferred extent reused before commit")
	}
	// An extent deferred after the mark must survive the commit.
	m.ReleaseDeferred(b)
	m.CommitPendingPrefix(mark)
	if m.PendingPages() != 8 {
		t.Fatalf("post-commit pending %d, want 8 (b still deferred)", m.PendingPages())
	}
	c, _ := m.Alloc(8)
	if c.Start != a.Start {
		t.Fatalf("committed extent not reused: got %d, want %d", c.Start, a.Start)
	}
}
