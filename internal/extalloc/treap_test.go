package extalloc

import (
	"sort"
	"testing"

	"ptsbench/internal/sim"
)

// refAlloc is the previous sorted-slice implementation of the free set,
// kept as the behavioural reference: lowest-offset first fit, neighbour
// merge on release. The treap must produce exactly the same extents.
type refAlloc struct {
	free []Extent
}

func (r *refAlloc) alloc(n int64) (Extent, bool) {
	for i := range r.free {
		e := r.free[i]
		if e.Pages >= n {
			out := Extent{Start: e.Start, Pages: n}
			if e.Pages == n {
				r.free = append(r.free[:i], r.free[i+1:]...)
			} else {
				r.free[i] = Extent{Start: e.Start + n, Pages: e.Pages - n}
			}
			return out, true
		}
	}
	return Extent{}, false
}

func (r *refAlloc) release(e Extent) {
	i := sort.Search(len(r.free), func(i int) bool {
		return r.free[i].Start >= e.Start
	})
	r.free = append(r.free, Extent{})
	copy(r.free[i+1:], r.free[i:])
	r.free[i] = e
	if i+1 < len(r.free) && r.free[i].Start+r.free[i].Pages == r.free[i+1].Start {
		r.free[i].Pages += r.free[i+1].Pages
		r.free = append(r.free[:i+1], r.free[i+2:]...)
	}
	if i > 0 && r.free[i-1].Start+r.free[i-1].Pages == r.free[i].Start {
		r.free[i-1].Pages += r.free[i].Pages
		r.free = append(r.free[:i], r.free[i+1:]...)
	}
}

func (r *refAlloc) total() int64 {
	var n int64
	for _, e := range r.free {
		n += e.Pages
	}
	return n
}

// flatten walks the treap in key order.
func flatten(nd *treapNode, out *[]Extent) {
	if nd == nil {
		return
	}
	flatten(nd.left, out)
	*out = append(*out, nd.ext)
	flatten(nd.right, out)
}

// TestTreapMatchesReference drives the treap-backed manager and the old
// sorted-slice implementation through a long random alloc/release
// workload and demands identical extents, identical free sets and
// intact treap invariants at every step.
func TestTreapMatchesReference(t *testing.T) {
	m := New(testFile(t), 64)
	// Seed both with one big region so the manager never grows the file
	// (growth paths differ only in where fresh pages come from).
	const region = 3000
	m.Release(Extent{Start: 0, Pages: region})
	ref := &refAlloc{}
	ref.release(Extent{Start: 0, Pages: region})

	var held []Extent
	rng := sim.NewRNG(42)
	for step := 0; step < 5000; step++ {
		if rng.Uint64n(100) < 55 || len(held) == 0 {
			n := int64(rng.Uint64n(40) + 1)
			want, ok := ref.alloc(n)
			if !ok {
				continue // reference full; keep the managers in lockstep
			}
			got, err := m.Alloc(n)
			if err != nil {
				t.Fatalf("step %d: treap alloc failed where reference succeeded: %v", step, err)
			}
			if got != want {
				t.Fatalf("step %d: alloc(%d) = %+v, reference %+v", step, n, got, want)
			}
			held = append(held, got)
		} else {
			i := int(rng.Uint64n(uint64(len(held))))
			e := held[i]
			held = append(held[:i], held[i+1:]...)
			// Split some releases in two to exercise partial merges.
			if e.Pages > 2 && rng.Uint64n(2) == 0 {
				cut := int64(rng.Uint64n(uint64(e.Pages-1)) + 1)
				m.Release(Extent{Start: e.Start + cut, Pages: e.Pages - cut})
				ref.release(Extent{Start: e.Start + cut, Pages: e.Pages - cut})
				e.Pages = cut
			}
			m.Release(e)
			ref.release(e)
		}
		var got []Extent
		flatten(m.root, &got)
		if len(got) != len(ref.free) {
			t.Fatalf("step %d: free set sizes differ: %d vs %d", step, len(got), len(ref.free))
		}
		for i := range got {
			if got[i] != ref.free[i] {
				t.Fatalf("step %d: free[%d] = %+v, reference %+v", step, i, got[i], ref.free[i])
			}
		}
		if m.FreePages() != ref.total() {
			t.Fatalf("step %d: FreePages %d, reference %d", step, m.FreePages(), ref.total())
		}
		checkTreap(t, m.root)
	}
}

// checkTreap verifies heap order on priorities and the max augmentation.
func checkTreap(t *testing.T, nd *treapNode) int64 {
	t.Helper()
	if nd == nil {
		return 0
	}
	mx := nd.ext.Pages
	if nd.left != nil {
		if nd.left.prio > nd.prio {
			t.Fatal("treap heap order violated (left)")
		}
		if lm := checkTreap(t, nd.left); lm > mx {
			mx = lm
		}
	}
	if nd.right != nil {
		if nd.right.prio > nd.prio {
			t.Fatal("treap heap order violated (right)")
		}
		if rm := checkTreap(t, nd.right); rm > mx {
			mx = rm
		}
	}
	if nd.max != mx {
		t.Fatalf("max augmentation stale: node %+v has max %d, want %d", nd.ext, nd.max, mx)
	}
	return mx
}
