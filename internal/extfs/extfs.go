// Package extfs implements a minimal extent-based filesystem over a
// simulated block device. It exists because the filesystem's allocation
// policy and discard behaviour are load-bearing for the paper's results:
//
//   - The paper mounts ext4 with `nodiscard` (§3.5), so deleting a file
//     does NOT trim its blocks — the SSD keeps treating them as valid
//     until they are overwritten. This couples LSM file churn to garbage
//     collection.
//   - ext4's allocator spreads new allocations across the partition
//     rather than immediately reusing just-freed space; combined with
//     file churn this makes an LSM write to the whole LBA range over
//     time (Fig 4). extfs reproduces this with a rotating first-fit
//     allocator.
//
// extfs is page-granular: file sizes are tracked in bytes, but I/O and
// allocation happen in whole device pages.
package extfs

import (
	"errors"
	"fmt"
	"sort"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/sim"
)

// ErrNoSpace is returned when an allocation cannot be satisfied. The
// harness relies on it to reproduce the paper's "RocksDB runs out of
// space" outcome for the largest datasets (Fig 5/6).
var ErrNoSpace = errors.New("extfs: no space left on device")

// ErrNotExist is returned when opening or removing a missing file.
var ErrNotExist = errors.New("extfs: file does not exist")

// ErrExist is returned when creating a file that already exists.
var ErrExist = errors.New("extfs: file already exists")

// Options configure mount behaviour.
type Options struct {
	// Discard, when true, TRIMs freed extents on file deletion (like
	// mounting with -o discard). The paper's setup uses nodiscard, the
	// default here.
	Discard bool
}

// metaPages is the fixed metadata region at the start of the partition
// (superblock + inode table stand-in). Metadata writes are tiny and, per
// the paper's assumption (§3.3), negligible next to data traffic; we
// model them with one-page journal writes on sync.
const metaPages = 4

// FS is a mounted filesystem.
type FS struct {
	dev   blockdev.Dev
	ps    int // cached dev.PageSize()
	opts  Options
	files map[string]*File
	alloc *allocator
	// usedDataPages counts pages allocated to live files.
	usedDataPages int64
	nextMetaPage  int64 // round-robin cursor within the metadata region
}

// Mount formats and mounts a filesystem over dev. (There is no persistent
// superblock to re-read: the simulation always starts from mkfs.)
func Mount(dev blockdev.Dev, opts Options) (*FS, error) {
	if dev.Pages() <= metaPages+1 {
		return nil, fmt.Errorf("extfs: device too small (%d pages)", dev.Pages())
	}
	fs := &FS{
		dev:   dev,
		ps:    dev.PageSize(),
		opts:  opts,
		files: make(map[string]*File),
		alloc: newAllocator(metaPages, dev.Pages()-metaPages),
	}
	return fs, nil
}

// PageSize returns the underlying device page size.
func (fs *FS) PageSize() int { return fs.ps }

// Device exposes the block device the filesystem is mounted on.
func (fs *FS) Device() blockdev.Dev { return fs.dev }

// CapacityPages returns the number of pages available for file data.
func (fs *FS) CapacityPages() int64 { return fs.dev.Pages() - metaPages }

// FreePages returns the number of unallocated data pages.
func (fs *FS) FreePages() int64 { return fs.alloc.totalFree }

// UsedPages returns pages allocated to live files plus metadata.
func (fs *FS) UsedPages() int64 { return fs.usedDataPages + metaPages }

// UsedBytes returns the total on-device footprint in bytes (page
// granular, as a real filesystem would report in df).
func (fs *FS) UsedBytes() int64 { return fs.UsedPages() * int64(fs.dev.PageSize()) }

// List returns the names of all files, sorted.
func (fs *FS) List() []string {
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Create creates an empty file.
func (fs *FS) Create(name string) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExist, name)
	}
	f := &File{fs: fs, name: name}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return f, nil
}

// Remove deletes a file and frees its extents. Under nodiscard (the
// default) the device is NOT informed, so the SSD continues to see the
// old blocks as valid data.
func (fs *FS) Remove(name string) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	for _, e := range f.extents {
		fs.alloc.release(e)
		if fs.opts.Discard {
			fs.dev.Discard(e.start, int(e.n))
		}
	}
	fs.usedDataPages -= f.pages
	f.extents = nil
	f.pages = 0
	f.size = 0
	f.removed = true
	delete(fs.files, name)
	return nil
}

// Sync models a metadata commit: one page journal write into the metadata
// region. Engines call it on fsync-equivalent points. Like a real fsync
// it is also a durability barrier: everything written before it survives
// a power cut (see Barrier). Device failures — a refused journal write,
// a failing fsync — propagate as typed errors; like a real fsync error,
// nothing can be assumed durable when one is returned.
func (fs *FS) Sync(now sim.Duration) (sim.Duration, error) {
	p := fs.nextMetaPage
	fs.nextMetaPage = (fs.nextMetaPage + 1) % metaPages
	done, err := fs.dev.WriteErr(now, p, 1, nil)
	if err != nil {
		return now, err
	}
	if err := fs.Barrier(); err != nil {
		return done, err
	}
	return done, nil
}

// Barrier marks every write issued so far as durable on devices that
// distinguish acknowledged from durable writes; on plain devices it is
// a no-op. It costs no virtual time and no I/O — the write that makes
// a commit point durable is modeled by the caller (a WAL sync, a
// metadata journal write); the barrier only tells the device where the
// power-cut-survivable frontier is. A real backing file's failing
// fsync surfaces here as a typed error.
func (fs *FS) Barrier() error {
	return fs.dev.SyncErr()
}

// File is an open file backed by a list of extents.
type File struct {
	fs      *FS
	name    string
	extents []extent
	pages   int64 // allocated length in pages
	size    int64 // logical size in bytes (size <= pages*pageSize)
	removed bool
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// SizeBytes returns the logical file size in bytes.
func (f *File) SizeBytes() int64 { return f.size }

// SizePages returns the allocated size in pages.
func (f *File) SizePages() int64 { return f.pages }

// Extents returns a copy of the file's extent list (for tests and LBA
// analysis).
func (f *File) Extents() [][2]int64 {
	out := make([][2]int64, len(f.extents))
	for i, e := range f.extents {
		out[i] = [2]int64{e.start, e.n}
	}
	return out
}

// Grow extends the file by n pages, allocating extents. It returns
// ErrNoSpace if the allocation cannot be satisfied (the file is left
// unchanged in that case).
func (f *File) Grow(n int64) error {
	if f.removed {
		return fmt.Errorf("extfs: file %s is removed", f.name)
	}
	if n <= 0 {
		return nil
	}
	got, err := f.fs.alloc.allocate(n)
	if err != nil {
		return err
	}
	f.extents = append(f.extents, got...)
	f.coalesceTail(len(got))
	f.pages += n
	f.fs.usedDataPages += n
	return nil
}

// coalesceTail merges the newly appended extents with their predecessors
// when physically contiguous, keeping the extent list compact.
func (f *File) coalesceTail(added int) {
	for i := len(f.extents) - added; i < len(f.extents) && i > 0; i++ {
		prev, cur := &f.extents[i-1], f.extents[i]
		if prev.start+prev.n == cur.start {
			prev.n += cur.n
			f.extents = append(f.extents[:i], f.extents[i+1:]...)
			i--
		}
	}
}

// Append appends n pages of data to the file starting at virtual time
// now. data may be nil (accounting-only mode) or exactly n pages long.
// bytes records the logical payload size (≤ n*pageSize); the remainder is
// padding that still occupies device pages, as in a real filesystem.
func (f *File) Append(now sim.Duration, n int, data []byte, bytes int64) (sim.Duration, error) {
	if n <= 0 {
		return now, nil
	}
	startPage := f.pages
	if err := f.Grow(int64(n)); err != nil {
		return now, err
	}
	f.size += bytes
	return f.writePages(now, startPage, n, data)
}

// WriteAt overwrites n pages at page offset off (which must be within the
// allocated size). Overwrites do not change the logical size.
func (f *File) WriteAt(now sim.Duration, off int64, n int, data []byte) (sim.Duration, error) {
	if off < 0 || off+int64(n) > f.pages {
		return now, fmt.Errorf("extfs: write [%d,+%d) beyond EOF %d of %s", off, n, f.pages, f.name)
	}
	return f.writePages(now, off, n, data)
}

// ReadAt reads n pages at page offset off into buf (which may be nil).
func (f *File) ReadAt(now sim.Duration, off int64, n int, buf []byte) (sim.Duration, error) {
	if off < 0 || off+int64(n) > f.pages {
		return now, fmt.Errorf("extfs: read [%d,+%d) beyond EOF %d of %s", off, n, f.pages, f.name)
	}
	ps := f.fs.ps
	for n > 0 {
		start, count := f.mapRun(off, n)
		var sub []byte
		if buf != nil {
			sub = buf[:count*ps]
			buf = buf[count*ps:]
		}
		var err error
		now, err = f.fs.dev.ReadErr(now, start, count, sub)
		if err != nil {
			return now, err
		}
		off += int64(count)
		n -= count
	}
	return now, nil
}

// writePages performs the device writes for a page run, splitting along
// extent boundaries. A device failure mid-run leaves earlier pages
// written — the caller decides whether the partial state is recoverable
// (engines treat it like a torn write and rely on recovery).
func (f *File) writePages(now sim.Duration, off int64, n int, data []byte) (sim.Duration, error) {
	ps := f.fs.ps
	for n > 0 {
		start, count := f.mapRun(off, n)
		var sub []byte
		if data != nil {
			sub = data[:count*ps]
			data = data[count*ps:]
		}
		var err error
		now, err = f.fs.dev.WriteErr(now, start, count, sub)
		if err != nil {
			return now, err
		}
		off += int64(count)
		n -= count
	}
	return now, nil
}

// mapRun translates file page offset off into a device page address and
// the number of contiguous pages available there (bounded by n).
func (f *File) mapRun(off int64, n int) (devPage int64, count int) {
	var base int64
	for _, e := range f.extents {
		if off < base+e.n {
			within := off - base
			avail := e.n - within
			if int64(n) < avail {
				avail = int64(n)
			}
			return e.start + within, int(avail)
		}
		base += e.n
	}
	panic(fmt.Sprintf("extfs: offset %d beyond mapped extents of %s", off, f.name))
}

// extent is a contiguous run of device pages.
type extent struct {
	start, n int64
}

// allocator manages free extents with a rotating first-fit policy: each
// allocation scans forward from a cursor that only wraps at the end of
// the partition. Freed space behind the cursor is therefore not reused
// until the cursor wraps — which makes a file-churning workload (an LSM)
// sweep the entire LBA range, as ext4 does in the paper's Fig 4.
type allocator struct {
	free      []extent // sorted by start, non-overlapping, non-adjacent
	totalFree int64
	cursor    int64
	base      int64 // first allocatable page
	limit     int64 // one past last allocatable page
	// scratch backs allocate's result slice; the result is only valid
	// until the next allocate call (every caller copies immediately).
	scratch []extent
}

func newAllocator(base, n int64) *allocator {
	return &allocator{
		free:      []extent{{start: base, n: n}},
		totalFree: n,
		cursor:    base,
		base:      base,
		limit:     base + n,
	}
}

// allocate returns extents totalling n pages, or ErrNoSpace (leaving the
// allocator unchanged) when free space is insufficient. The returned
// slice aliases the allocator's scratch buffer and is valid only until
// the next allocate call.
func (a *allocator) allocate(n int64) ([]extent, error) {
	if n > a.totalFree {
		return nil, fmt.Errorf("%w (want %d pages, have %d)", ErrNoSpace, n, a.totalFree)
	}
	out := a.scratch[:0]
	defer func() { a.scratch = out }()
	remaining := n
	wrapped := false
	for remaining > 0 {
		i := a.firstFreeAt(a.cursor)
		if i == len(a.free) {
			if wrapped {
				// Should be impossible: totalFree said there was space.
				panic("extfs: allocator inconsistency")
			}
			a.cursor = a.base
			wrapped = true
			continue
		}
		e := &a.free[i]
		start := e.start
		if start < a.cursor {
			start = a.cursor
		}
		avail := e.start + e.n - start
		take := avail
		if take > remaining {
			take = remaining
		}
		out = append(out, extent{start: start, n: take})
		a.carve(i, start, take)
		a.totalFree -= take
		remaining -= take
		a.cursor = start + take
		if a.cursor >= a.limit {
			a.cursor = a.base
			wrapped = true
		}
	}
	return out, nil
}

// firstFreeAt returns the index of the first free extent containing or
// after page p, or len(free).
func (a *allocator) firstFreeAt(p int64) int {
	return sort.Search(len(a.free), func(i int) bool {
		return a.free[i].start+a.free[i].n > p
	})
}

// carve removes [start, start+take) from free extent i, splitting as
// needed.
func (a *allocator) carve(i int, start, take int64) {
	e := a.free[i]
	leftN := start - e.start
	rightN := (e.start + e.n) - (start + take)
	switch {
	case leftN == 0 && rightN == 0:
		a.free = append(a.free[:i], a.free[i+1:]...)
	case leftN == 0:
		a.free[i] = extent{start: start + take, n: rightN}
	case rightN == 0:
		a.free[i] = extent{start: e.start, n: leftN}
	default:
		a.free[i] = extent{start: e.start, n: leftN}
		rest := extent{start: start + take, n: rightN}
		a.free = append(a.free, extent{})
		copy(a.free[i+2:], a.free[i+1:])
		a.free[i+1] = rest
	}
}

// release returns an extent to the free pool, merging neighbours.
func (a *allocator) release(e extent) {
	i := sort.Search(len(a.free), func(i int) bool {
		return a.free[i].start >= e.start
	})
	a.free = append(a.free, extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = e
	a.totalFree += e.n
	// Merge with successor.
	if i+1 < len(a.free) && a.free[i].start+a.free[i].n == a.free[i+1].start {
		a.free[i].n += a.free[i+1].n
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	// Merge with predecessor.
	if i > 0 && a.free[i-1].start+a.free[i-1].n == a.free[i].start {
		a.free[i-1].n += a.free[i].n
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}
