package extfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/flash"
)

func newTestFS(t *testing.T, opts Options) (*FS, *blockdev.Device) {
	t.Helper()
	cfg := flash.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		Profile: flash.Profile{
			Name:       "fs-test",
			ReadFixed:  time.Microsecond,
			WriteFixed: time.Microsecond,
			ReadBW:     1 << 30,
			WriteBW:    1 << 30,
			HardwareOP: 0.25,
			EraseTime:  100 * time.Microsecond,
		},
	}
	ssd, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.New(ssd)
	fs, err := Mount(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

func TestCreateOpenRemove(t *testing.T) {
	fs, _ := newTestFS(t, Options{})
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("a"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
	got, err := fs.Open("a")
	if err != nil || got != f {
		t.Fatalf("Open: %v", err)
	}
	if _, err := fs.Open("b"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Open missing: %v", err)
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestList(t *testing.T) {
	fs, _ := newTestFS(t, Options{})
	for _, n := range []string{"c", "a", "b"} {
		if _, err := fs.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("List = %v", got)
	}
}

func TestAppendAndRead(t *testing.T) {
	fs, dev := newTestFS(t, Options{})
	dev.EnableContentStore()
	f, _ := fs.Create("data")
	payload := make([]byte, 3*4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := f.Append(0, 3, payload, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if f.SizeBytes() != 3*4096 || f.SizePages() != 3 {
		t.Fatalf("size %d/%d pages", f.SizeBytes(), f.SizePages())
	}
	buf := make([]byte, 3*4096)
	if _, err := f.ReadAt(0, 0, 3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, buf) {
		t.Fatal("read back mismatch")
	}
}

func TestWriteAtWithinFile(t *testing.T) {
	fs, dev := newTestFS(t, Options{})
	dev.EnableContentStore()
	f, _ := fs.Create("f")
	if err := f.Grow(4); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 4096)
	page[0] = 0xAB
	if _, err := f.WriteAt(0, 2, 1, page); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := f.ReadAt(0, 2, 1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Fatal("WriteAt data not read back")
	}
	if _, err := f.WriteAt(0, 4, 1, nil); err == nil {
		t.Fatal("write past EOF should fail")
	}
	if _, err := f.ReadAt(0, 3, 2, nil); err == nil {
		t.Fatal("read past EOF should fail")
	}
}

func TestByteSizeTracksPayload(t *testing.T) {
	fs, _ := newTestFS(t, Options{})
	f, _ := fs.Create("f")
	// 5000 bytes of payload in 2 pages: size is 5000, footprint 2 pages.
	if _, err := f.Append(0, 2, nil, 5000); err != nil {
		t.Fatal(err)
	}
	if f.SizeBytes() != 5000 {
		t.Fatalf("SizeBytes = %d, want 5000", f.SizeBytes())
	}
	if f.SizePages() != 2 {
		t.Fatalf("SizePages = %d, want 2", f.SizePages())
	}
}

func TestUsedPagesAccounting(t *testing.T) {
	fs, _ := newTestFS(t, Options{})
	base := fs.UsedPages()
	f, _ := fs.Create("f")
	if err := f.Grow(10); err != nil {
		t.Fatal(err)
	}
	if fs.UsedPages() != base+10 {
		t.Fatalf("UsedPages = %d, want %d", fs.UsedPages(), base+10)
	}
	if err := fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if fs.UsedPages() != base {
		t.Fatalf("UsedPages after remove = %d, want %d", fs.UsedPages(), base)
	}
}

func TestNoSpace(t *testing.T) {
	fs, _ := newTestFS(t, Options{})
	f, _ := fs.Create("big")
	if err := f.Grow(fs.FreePages()); err != nil {
		t.Fatal(err)
	}
	g, _ := fs.Create("more")
	if err := g.Grow(1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
	// Failed grow must not corrupt accounting.
	if fs.FreePages() != 0 {
		t.Fatalf("FreePages = %d after failed grow", fs.FreePages())
	}
}

func TestNodiscardKeepsDeviceMapped(t *testing.T) {
	fs, dev := newTestFS(t, Options{}) // nodiscard default
	f, _ := fs.Create("f")
	if _, err := f.Append(0, 8, nil, 8*4096); err != nil {
		t.Fatal(err)
	}
	mapped := dev.SSD().MappedPages()
	if err := fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if dev.SSD().MappedPages() != mapped {
		t.Fatal("nodiscard mount must not trim on remove")
	}
}

func TestDiscardMountTrims(t *testing.T) {
	fs, dev := newTestFS(t, Options{Discard: true})
	f, _ := fs.Create("f")
	if _, err := f.Append(0, 8, nil, 8*4096); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if dev.SSD().MappedPages() != 0 {
		t.Fatalf("discard mount should trim; %d pages still mapped",
			dev.SSD().MappedPages())
	}
}

func TestRotatingAllocatorSweepsLBARange(t *testing.T) {
	// Churning files through a half-full filesystem must touch (almost)
	// the whole partition: this is the ext4 behaviour behind the paper's
	// Fig 4 RocksDB curve.
	fs, dev := newTestFS(t, Options{})
	const filePages = 64
	// Keep 16 live files (~25% of the 4096-page device), churn 200 times.
	names := []string{}
	for i := 0; i < 200; i++ {
		name := string(rune('A'+i%26)) + string(rune('0'+i/26))
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Append(0, filePages, nil, filePages*4096); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		if len(names) > 16 {
			if err := fs.Remove(names[0]); err != nil {
				t.Fatal(err)
			}
			names = names[1:]
		}
	}
	if frac := dev.FractionLBAsWritten(); frac < 0.95 {
		t.Fatalf("file churn touched only %.0f%% of LBAs, want >95%%", frac*100)
	}
}

func TestGrowAfterFragmentation(t *testing.T) {
	fs, dev := newTestFS(t, Options{})
	dev.EnableContentStore()
	// Create interleaved files, remove every other one, then allocate a
	// file larger than any single hole.
	var files []*File
	for i := 0; i < 10; i++ {
		f, _ := fs.Create(string(rune('a' + i)))
		if err := f.Grow(100); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	for i := 0; i < 10; i += 2 {
		if err := fs.Remove(string(rune('a' + i))); err != nil {
			t.Fatal(err)
		}
	}
	big, _ := fs.Create("big")
	if err := big.Grow(400); err != nil {
		t.Fatal(err)
	}
	if big.SizePages() != 400 {
		t.Fatalf("fragmented grow got %d pages", big.SizePages())
	}
	// Multi-extent read/write round trip across fragment boundaries.
	data := make([]byte, 400*4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if _, err := big.WriteAt(0, 0, 400, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 400*4096)
	if _, err := big.ReadAt(0, 0, 400, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, buf) {
		t.Fatal("fragmented round trip mismatch")
	}
}

func TestSyncWritesMetadata(t *testing.T) {
	fs, dev := newTestFS(t, Options{})
	before := dev.Counters().WriteOps
	end, err := fs.Sync(0)
	if err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Fatal("Sync should take time")
	}
	if dev.Counters().WriteOps != before+1 {
		t.Fatal("Sync should issue one metadata write")
	}
}

func TestRemovedFileRejectsGrow(t *testing.T) {
	fs, _ := newTestFS(t, Options{})
	f, _ := fs.Create("f")
	if err := fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if err := f.Grow(1); err == nil {
		t.Fatal("grow on removed file should fail")
	}
}

// Property: the allocator never double-allocates and conserves pages
// through arbitrary alloc/free sequences.
func TestAllocatorConservationProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const total = 4096
		a := newAllocator(0, total)
		owned := map[int64]bool{} // page -> allocated
		var live []extent
		for _, op := range ops {
			if op%3 != 0 && len(live) > 0 { // free
				e := live[0]
				live = live[1:]
				a.release(e)
				for p := e.start; p < e.start+e.n; p++ {
					if !owned[p] {
						return false // double free
					}
					delete(owned, p)
				}
				continue
			}
			n := int64(op%64) + 1
			got, err := a.allocate(n)
			if err != nil {
				continue // pool exhausted is fine
			}
			var sum int64
			for _, e := range got {
				sum += e.n
				for p := e.start; p < e.start+e.n; p++ {
					if owned[p] {
						return false // double allocation
					}
					owned[p] = true
				}
				live = append(live, e)
			}
			if sum != n {
				return false
			}
		}
		return a.totalFree == total-int64(len(owned))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMountTooSmall(t *testing.T) {
	fs, _ := newTestFS(t, Options{})
	_ = fs
	cfgDev, err := flash.NewDevice(flash.Config{
		LogicalBytes:  16 << 20,
		PageSize:      4096,
		PagesPerBlock: 32,
		Profile: flash.Profile{
			Name: "t", ReadBW: 1 << 30, WriteBW: 1 << 30, HardwareOP: 0.1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := blockdev.New(cfgDev)
	p, err := d.Partition(0, metaPages) // too small for data
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(p, Options{}); err == nil {
		t.Fatal("mount on tiny partition should fail")
	}
}
