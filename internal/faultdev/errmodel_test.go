package faultdev

// Tests for the host-stack error model: per-op EIO verdicts, short and
// misdirected writes, lying fsyncs, sticky latent sectors, the arm
// point, disarm-on-PowerOn, and the bit-identity guarantee for plans
// with no error verdicts.

import (
	"bytes"
	"errors"
	"testing"

	"ptsbench/internal/deverr"
)

// TestWriteEIOTransient: an armed WriteEIOProb=1 plan fails every write
// with a typed transient EIO, nothing lands, and the counter advances.
func TestWriteEIOTransient(t *testing.T) {
	d := Wrap(newInner(t), Plan{Seed: 3, WriteEIOProb: 1})
	_, err := d.WriteErr(0, 5, 1, pageData(d, 0x7E, 1))
	if err == nil {
		t.Fatal("write should fail with EIO")
	}
	de, ok := deverr.As(err)
	if !ok || de.Op != deverr.OpWrite || de.Kind != deverr.KindEIO || !de.Transient {
		t.Fatalf("wrong error shape: %v", err)
	}
	if !deverr.IsTransient(err) {
		t.Fatal("write EIO must classify as transient")
	}
	if got := readPage(t, d, 5); got[0] != 0 {
		t.Fatalf("failed write landed: %#x", got[0])
	}
	if inj := d.Injected(); inj.WriteEIO != 1 || inj.Total() != 1 {
		t.Fatalf("injection counters wrong: %+v", inj)
	}
	if d.Writes() != 0 {
		t.Fatal("a refused write must not count as acknowledged")
	}
}

// TestReadEIOTransient: an armed ReadEIOProb=1 plan fails every read
// with a transient EIO; the data stays intact underneath.
func TestReadEIOTransient(t *testing.T) {
	d := Wrap(newInner(t), Plan{Seed: 3, ReadEIOProb: 1})
	if _, err := d.WriteErr(0, 2, 1, pageData(d, 0x42, 1)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, d.PageSize())
	_, err := d.ReadErr(0, 2, 1, buf)
	de, ok := deverr.As(err)
	if !ok || de.Op != deverr.OpRead || !de.Transient {
		t.Fatalf("wrong error shape: %v", err)
	}
	if inj := d.Injected(); inj.ReadEIO != 1 {
		t.Fatalf("injection counters wrong: %+v", inj)
	}
}

// TestShortWritePrefix: a short verdict keeps only a prefix of a
// multi-page write; single-page writes are never shortened.
func TestShortWritePrefix(t *testing.T) {
	d := Wrap(newInner(t), Plan{Seed: 7, ShortProb: 1})
	if _, err := d.WriteErr(0, 0, 1, pageData(d, 0x01, 1)); err != nil {
		t.Fatal(err)
	}
	if got := readPage(t, d, 0); got[0] != 0x01 {
		t.Fatal("single-page write must land whole")
	}
	if _, err := d.WriteErr(0, 10, 4, pageData(d, 0x02, 4)); err != nil {
		t.Fatal(err)
	}
	if inj := d.Injected(); inj.Shorts != 1 {
		t.Fatalf("short counter wrong: %+v", inj)
	}
	if got := readPage(t, d, 10); got[0] != 0x02 {
		t.Fatal("short write must keep at least its first page")
	}
	if got := readPage(t, d, 13); got[0] != 0 {
		t.Fatal("short write must lose its last page (keep < n always)")
	}
	// The lost suffix stays lost across a barrier: the ack lied about it.
	d.SyncBarrier()
	if got := d.DurablePage(13); got != nil {
		t.Fatal("shortened page must not become durable at the barrier")
	}
}

// TestMisdirectNeighbor: a misdirected write lands exactly one LBA away
// and the target keeps its stale content.
func TestMisdirectNeighbor(t *testing.T) {
	d := Wrap(newInner(t), Plan{Seed: 5, MisdirectProb: 1})
	if _, err := d.WriteErr(0, 20, 1, pageData(d, 0x9A, 1)); err != nil {
		t.Fatal(err)
	}
	if inj := d.Injected(); inj.Misdirects != 1 {
		t.Fatalf("misdirect counter wrong: %+v", inj)
	}
	if got := readPage(t, d, 20); got[0] != 0 {
		t.Fatal("misdirected target must keep stale (zero) content")
	}
	if got := readPage(t, d, 21); got[0] != 0x9A {
		t.Fatal("payload must land on the neighboring LBA")
	}
}

// TestFsyncLie: a lying barrier acknowledges without advancing the
// durability frontier; a later honest barrier heals the window.
func TestFsyncLie(t *testing.T) {
	d := Wrap(newInner(t), Plan{Seed: 11, FsyncLieProb: 1})
	if _, err := d.WriteErr(0, 4, 1, pageData(d, 0x33, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.SyncErr(); err != nil {
		t.Fatal(err)
	}
	if inj := d.Injected(); inj.FsyncLies != 1 {
		t.Fatalf("fsync-lie counter wrong: %+v", inj)
	}
	if d.DurablePage(4) != nil {
		t.Fatal("lying barrier must not make the write durable")
	}
	// Disable the lie; the next barrier folds the still-pending window.
	d.plan.FsyncLieProb = 0
	if err := d.SyncErr(); err != nil {
		t.Fatal(err)
	}
	if got := d.DurablePage(4); got == nil || got[0] != 0x33 {
		t.Fatal("honest barrier must fold the window the lie left pending")
	}
}

// TestLatentSticky: reads of a latent sector fail persistently until a
// successful rewrite reallocates it.
func TestLatentSticky(t *testing.T) {
	d := Wrap(newInner(t), Plan{Seed: 2, LatentPages: []int64{7}})
	buf := make([]byte, d.PageSize())
	for i := 0; i < 2; i++ {
		_, err := d.ReadErr(0, 7, 1, buf)
		de, ok := deverr.As(err)
		if !ok || de.Kind != deverr.KindLatent || de.Transient {
			t.Fatalf("read %d: want persistent latent error, got %v", i, err)
		}
		if deverr.IsTransient(err) {
			t.Fatal("latent errors must not classify as transient")
		}
	}
	if inj := d.Injected(); inj.LatentReads != 2 {
		t.Fatalf("latent counter wrong: %+v", inj)
	}
	if _, err := d.WriteErr(0, 7, 1, pageData(d, 0x55, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadErr(0, 7, 1, buf); err != nil {
		t.Fatalf("rewrite must reallocate the sector: %v", err)
	}
	if buf[0] != 0x55 {
		t.Fatal("reallocated sector must serve the new content")
	}
}

// TestArmAfterWrites holds every verdict until the Nth acknowledged
// write.
func TestArmAfterWrites(t *testing.T) {
	d := Wrap(newInner(t), Plan{Seed: 9, ArmAfterWrites: 2, WriteEIOProb: 1})
	if _, err := d.WriteErr(0, 0, 1, pageData(d, 0x01, 1)); err != nil {
		t.Fatalf("write 1 precedes the arm point: %v", err)
	}
	if _, err := d.WriteErr(0, 1, 1, pageData(d, 0x02, 1)); err != nil {
		t.Fatalf("write 2 is the arm point itself (verdicts apply after): %v", err)
	}
	if _, err := d.WriteErr(0, 2, 1, pageData(d, 0x03, 1)); err == nil {
		t.Fatal("write 3 is past the arm point and must fail")
	}
}

// TestPowerOnDisarms: a power cycle disarms the whole error model so
// recovery I/O runs fault-free, while the damage already done stays.
func TestPowerOnDisarms(t *testing.T) {
	d := Wrap(newInner(t), Plan{
		Seed: 13, ReadEIOProb: 1, WriteEIOProb: 1, ShortProb: 1,
		MisdirectProb: 1, FsyncLieProb: 1, LatentPages: []int64{3},
	})
	d.PowerCut()
	if _, err := d.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteErr(0, 3, 2, pageData(d, 0x66, 2)); err != nil {
		t.Fatalf("post-power-on write must run fault-free: %v", err)
	}
	buf := make([]byte, 2*d.PageSize())
	if _, err := d.ReadErr(0, 3, 2, buf); err != nil {
		t.Fatalf("post-power-on read must run fault-free: %v", err)
	}
	if buf[0] != 0x66 || buf[d.PageSize()] != 0x66 {
		t.Fatal("post-power-on write must land whole and in place")
	}
	if err := d.SyncErr(); err != nil {
		t.Fatal(err)
	}
	if d.DurablePage(3) == nil {
		t.Fatal("post-power-on barrier must be honest")
	}
}

// TestZeroProbBitIdentity: a plan with no error verdicts consumes
// nothing from the error stream and resolves a cut identically to a
// pre-error-model plan — the golden-fixture compatibility guarantee.
func TestZeroProbBitIdentity(t *testing.T) {
	run := func(plan Plan) []byte {
		d := Wrap(newInner(t), plan)
		for i := int64(0); i < 6; i++ {
			d.WriteAt(0, i*4, 3, pageData(d, byte(0x10+i), 3))
			if i == 2 {
				d.SyncBarrier()
			}
		}
		if _, err := d.PowerOn(); err != nil {
			t.Fatal(err)
		}
		var img []byte
		for lba := int64(0); lba < 24; lba++ {
			if p := d.DurablePage(lba); p != nil {
				img = append(img, byte(lba), p[0])
			}
		}
		return img
	}
	base := run(Plan{Seed: 77, DropProb: 0.4, TornProb: 0.5, CutAfterWrites: 5})
	// Same plan plus an armed-but-never-triggering error model: the
	// verdict stream is separate, so the resolved image is identical.
	withModel := run(Plan{
		Seed: 77, DropProb: 0.4, TornProb: 0.5, CutAfterWrites: 5,
		ArmAfterWrites: 1000, ReadEIOProb: 0.5, WriteEIOProb: 0.5,
	})
	if !bytes.Equal(base, withModel) {
		t.Fatalf("durable image diverged:\nbase %x\nwith %x", base, withModel)
	}
}

// TestErrVerdictDeterminism: same plan, same op sequence, same verdicts
// and counters.
func TestErrVerdictDeterminism(t *testing.T) {
	run := func() (Injected, []error) {
		d := Wrap(newInner(t), Plan{Seed: 19, WriteEIOProb: 0.4, ReadEIOProb: 0.3, ShortProb: 0.3})
		var errs []error
		buf := make([]byte, 2*d.PageSize())
		for i := int64(0); i < 20; i++ {
			_, werr := d.WriteErr(0, i*2, 2, pageData(d, byte(i), 2))
			_, rerr := d.ReadErr(0, i*2, 2, buf)
			errs = append(errs, werr, rerr)
		}
		return d.Injected(), errs
	}
	injA, errsA := run()
	injB, errsB := run()
	if injA != injB {
		t.Fatalf("counters diverged: %+v vs %+v", injA, injB)
	}
	if injA.Total() == 0 {
		t.Fatal("probabilistic plan injected nothing over 40 ops")
	}
	for i := range errsA {
		if (errsA[i] == nil) != (errsB[i] == nil) {
			t.Fatalf("verdict %d diverged: %v vs %v", i, errsA[i], errsB[i])
		}
	}
}

// TestLatchedClassification pins the deverr.Latched contract the
// engines rely on: latching strips transience, survives double-latch,
// and keeps the root cause reachable.
func TestLatchedClassification(t *testing.T) {
	if deverr.Latch(nil) != nil {
		t.Fatal("latching nil must stay nil")
	}
	cause := &deverr.Error{Op: deverr.OpWrite, LBA: 9, Kind: deverr.KindEIO, Transient: true}
	if !deverr.IsTransient(cause) {
		t.Fatal("raw transient EIO must classify as transient")
	}
	latched := deverr.Latch(cause)
	if deverr.IsTransient(latched) {
		t.Fatal("a latched error must never classify as transient")
	}
	if deverr.Latch(latched) != latched {
		t.Fatal("double latch must not re-wrap")
	}
	de, ok := deverr.As(latched)
	if !ok || de != cause {
		t.Fatal("the root cause must stay reachable through the latch")
	}
	if !errors.Is(latched, cause) {
		t.Fatal("errors.Is must see through the latch")
	}
}
