// Package faultdev wraps a blockdev.Dev with deterministic, seed-driven
// storage faults: torn multi-page writes (prefix, suffix or interior
// pages lost), silently dropped writes, a power cut at an arbitrary
// write boundary, read bit-rot on selected LBAs, and the host-stack
// error model of the flash-integration survey (Tehrany et al.) —
// per-op read/write EIO, sticky latent sector errors, short writes,
// misdirected writes and lying fsyncs.
//
// The wrapper owns the content store and threads the block layer's sync
// barrier through it, so "what survived the cut" is well-defined: pages
// covered by the last SyncBarrier before the cut are durable; everything
// acknowledged after it is at the fault plan's mercy when power returns.
// The inner device still sees every acknowledged write and read, so
// virtual-time costs and iostat counters are unchanged — with a zero
// Plan the wrapper is a transparent content-carrying overlay, which is
// what lets the crash harness run its fault-free calibration pass and
// its faulty pass over identical timing.
//
// Randomness comes from two independent streams seeded by Plan.Seed:
// the legacy stream is consumed only at PowerOn (so a seed and a cut
// point fully determine the surviving disk image), and error verdicts
// draw from a derived second stream guarded by their probabilities —
// a plan with zero error probabilities consumes nothing from it and
// replays bit-identically to pre-error-model plans.
package faultdev

import (
	"slices"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/deverr"
	"ptsbench/internal/sim"
)

// Restorer is the optional inner-device surface used at PowerOn: a raw
// content write that bypasses counters, timing and the write histogram.
// A real file-backed device (internal/filedev) implements it so the
// backing file can be rewound to exactly the resolved durable image —
// the on-disk analogue of the page cache vanishing with the power.
// Purely simulated devices carry no content and don't need it. A
// failure is reported (not panicked): PowerOn propagates it so the
// harness can surface a broken backing file as a trial error.
type Restorer interface {
	Restore(off int64, n int, data []byte) error
}

// Plan is a deterministic fault plan. The zero value injects nothing.
type Plan struct {
	// Seed drives every random decision the plan makes.
	Seed uint64
	// CutAfterWrites, when positive, cuts power on the Nth host write
	// (1-based): that write and everything after it never reaches the
	// device, and all I/O is ignored until PowerOn. Zero never cuts.
	CutAfterWrites int64
	// CutKeepPages shapes the write the cut landed on: -1 drops it
	// entirely, 0 tears it at a random boundary (prefix, suffix or
	// interior pages lost), k>0 keeps exactly its first k pages.
	CutKeepPages int
	// DropProb is the probability that a write acknowledged after the
	// last sync barrier is silently dropped at power-on. Independent
	// per-op drops subsume reordering: an older surviving write paired
	// with a newer dropped one is exactly a reordered cache flush.
	DropProb float64
	// TornProb is the probability that a surviving unbarriered
	// multi-page write comes back torn (random prefix/suffix/interior
	// pages lost) instead of intact.
	TornProb float64
	// RotPages lists LBAs whose reads return bit-rotted data. The
	// corruption is a stable function of the page — repeated reads see
	// identical corrupt bytes, the way a real flipped cell would.
	RotPages []int64

	// --- Host-stack error model (Tehrany et al.) ---
	// Verdicts below draw from a second RNG derived from Seed, guarded
	// by their probabilities, so a plan that sets none of them replays
	// bit-identically to a pre-error-model plan. PowerOn disarms the
	// whole error model so recovery I/O runs fault-free.

	// ArmAfterWrites, when positive, holds the error model inactive
	// until the Nth acknowledged host write (1-based): verdicts apply
	// after it. Zero arms the model immediately.
	ArmAfterWrites int64
	// ReadEIOProb is the per-op probability that a read fails with a
	// transient EIO (no data transferred, no time charged; a retry
	// redraws the verdict).
	ReadEIOProb float64
	// WriteEIOProb is the per-op probability that a write fails with a
	// transient EIO before reaching the media.
	WriteEIOProb float64
	// ShortProb is the per-op probability that a multi-page write is
	// acknowledged as complete while only a prefix of its pages lands.
	ShortProb float64
	// MisdirectProb is the per-op probability that a write's payload
	// lands one LBA away from its target (the target keeps stale data).
	MisdirectProb float64
	// FsyncLieProb is the per-barrier probability that SyncBarrier
	// acknowledges without advancing the durability frontier: the
	// pending window stays volatile and the inner device's real fsync
	// is skipped.
	FsyncLieProb float64
	// LatentPages lists LBAs with latent sector errors: reads fail with
	// a sticky, persistent error until a successful write reallocates
	// the sector.
	LatentPages []int64
}

// errSeedSalt derives the error-verdict RNG stream from Plan.Seed.
const errSeedSalt = 0x9E3779B97F4A7C15

// errorModel reports whether any error verdict can ever fire.
func (p *Plan) errorModel() bool {
	return p.ReadEIOProb > 0 || p.WriteEIOProb > 0 || p.ShortProb > 0 ||
		p.MisdirectProb > 0 || p.FsyncLieProb > 0 || len(p.LatentPages) > 0
}

// Injected counts error-model events fired so far, for tests and the
// crash harness's trial reports.
type Injected struct {
	ReadEIO     int64 // transient read EIOs returned
	WriteEIO    int64 // transient write EIOs returned
	LatentReads int64 // reads failed on a latent sector
	Shorts      int64 // writes acked with only a prefix persisted
	Misdirects  int64 // writes landed on a neighboring LBA
	FsyncLies   int64 // barriers acked without durability
}

// Total sums all injected events.
func (i Injected) Total() int64 {
	return i.ReadEIO + i.WriteEIO + i.LatentReads + i.Shorts + i.Misdirects + i.FsyncLies
}

// WriteRecord logs one acknowledged host write (scripted tests use the
// log to locate a specific write, e.g. a metadata-slot update, and aim
// the cut at it).
type WriteRecord struct {
	Off int64
	N   int
}

// pendingOp is one acknowledged-but-unbarriered operation, in order.
type pendingOp struct {
	off      int64
	n        int
	pages    [][]byte // per-page copies; nil for accounting-only writes
	keep     []bool   // short-write survival mask; nil when all pages landed
	discard  bool
	inflight bool // the write the power cut landed on
}

// Outcome summarizes what PowerOn did to the pending window.
type Outcome struct {
	Applied int // ops folded in intact
	Dropped int // ops lost entirely
	Torn    int // ops applied with pages missing
}

// Dev is a fault-injecting blockdev.Dev wrapper. It implements
// blockdev.Barrier and reports ContentEnabled, so engines run their
// content-mode recovery paths against it directly.
type Dev struct {
	inner blockdev.Dev
	plan  Plan
	rng   *sim.RNG // legacy stream: consumed only at PowerOn
	errs  *sim.RNG // error-verdict stream, derived from Seed
	ps    int

	durable map[int64][]byte // survives a power cut
	current map[int64][]byte // acknowledged state, served to reads
	pending []pendingOp      // acknowledged since the last barrier
	rot     map[int64]bool
	latent  map[int64]bool // sticky read-failing LBAs until rewritten

	writes   int64
	barriers int64
	cut      bool
	log      []WriteRecord
	injected Injected
}

// Wrap builds a fault-injecting overlay over inner. The inner device
// should not carry its own content store — the wrapper is the content
// authority (an inner store would bypass the fault semantics on reads).
func Wrap(inner blockdev.Dev, plan Plan) *Dev {
	d := &Dev{
		inner:   inner,
		plan:    plan,
		rng:     sim.NewRNG(plan.Seed),
		errs:    sim.NewRNG(plan.Seed ^ errSeedSalt),
		ps:      inner.PageSize(),
		durable: make(map[int64][]byte),
		current: make(map[int64][]byte),
	}
	if len(plan.RotPages) > 0 {
		d.rot = make(map[int64]bool, len(plan.RotPages))
		for _, p := range plan.RotPages {
			d.rot[p] = true
		}
	}
	if len(plan.LatentPages) > 0 {
		d.latent = make(map[int64]bool, len(plan.LatentPages))
		for _, p := range plan.LatentPages {
			d.latent[p] = true
		}
	}
	return d
}

// armed reports whether the error model is active: past the arm point
// (or armed from the start) and some verdict configured.
func (d *Dev) armed() bool {
	return d.plan.errorModel() &&
		(d.plan.ArmAfterWrites <= 0 || d.writes >= d.plan.ArmAfterWrites)
}

// PageSize implements blockdev.Dev.
func (d *Dev) PageSize() int { return d.ps }

// Pages implements blockdev.Dev.
func (d *Dev) Pages() int64 { return d.inner.Pages() }

// ContentEnabled reports that reads return real bytes (the wrapper owns
// the content store regardless of the inner device's mode).
func (d *Dev) ContentEnabled() bool { return true }

// Cut reports whether the power cut has fired. The serving layer polls
// it between pump rounds; ops issued after the cut are ignored, never
// failed, so engine code needs no error plumbing.
func (d *Dev) Cut() bool { return d.cut }

// Writes returns the number of host writes acknowledged so far (the
// unit CutAfterWrites counts in).
func (d *Dev) Writes() int64 { return d.writes }

// Barriers returns the number of sync barriers observed.
func (d *Dev) Barriers() int64 { return d.barriers }

// WriteLog returns the acknowledged write log, oldest first.
func (d *Dev) WriteLog() []WriteRecord { return d.log }

// Injected returns the error-model event counts fired so far.
func (d *Dev) Injected() Injected { return d.injected }

// DurablePage returns the durable image of one page — nil if nothing
// durable was ever written there, meaning it reads as zeros. The crash
// harness uses it to prove a Restorer-backed inner device's file
// matches the resolved durable image after power-on. The returned slice
// is the live page; callers must not mutate it.
func (d *Dev) DurablePage(lba int64) []byte { return d.durable[lba] }

// WriteAt implements blockdev.Dev as a thin panic wrapper over
// WriteErr — plans without error verdicts never fail, so sim callers
// and golden fixtures are untouched.
func (d *Dev) WriteAt(now sim.Duration, off int64, n int, data []byte) sim.Duration {
	done, err := d.WriteErr(now, off, n, data)
	if err != nil {
		panic(err)
	}
	return done
}

// WriteErr implements blockdev.Dev. The write is acknowledged into the
// current image and forwarded to the inner device for timing and
// accounting, but stays in the pending window — not durable — until
// the next SyncBarrier. When the error model is armed the op may
// instead fail with a transient EIO (nothing lands, no time charged —
// the retry's attempt pays), land one LBA off target (misdirect), or
// acknowledge with only a prefix of its pages persisted (short write).
// A successful write repairs any latent sector it covers.
func (d *Dev) WriteErr(now sim.Duration, off int64, n int, data []byte) (sim.Duration, error) {
	if n <= 0 || d.cut {
		return now, nil
	}
	target := off
	var keep []bool
	if d.armed() {
		if d.plan.WriteEIOProb > 0 && d.errs.Float64() < d.plan.WriteEIOProb {
			d.injected.WriteEIO++
			return now, &deverr.Error{Op: deverr.OpWrite, LBA: off, Kind: deverr.KindEIO, Transient: true}
		}
		if d.plan.MisdirectProb > 0 && d.errs.Float64() < d.plan.MisdirectProb {
			if t := d.misdirectTarget(off, n); t != off {
				d.injected.Misdirects++
				target = t
			}
		}
		if n > 1 && d.plan.ShortProb > 0 && d.errs.Float64() < d.plan.ShortProb {
			k := 1 + d.errs.Intn(n-1)
			keep = make([]bool, n)
			for i := 0; i < k; i++ {
				keep[i] = true
			}
			d.injected.Shorts++
		}
	}
	d.writes++
	d.log = append(d.log, WriteRecord{Off: target, N: n})
	op := pendingOp{off: target, n: n, keep: keep}
	if data != nil {
		op.pages = make([][]byte, n)
		for i := 0; i < n; i++ {
			page := make([]byte, d.ps)
			copy(page, data[i*d.ps:(i+1)*d.ps])
			op.pages[i] = page
			if keep == nil || keep[i] {
				d.current[target+int64(i)] = page
			}
		}
	}
	if d.latent != nil {
		for i := 0; i < n; i++ {
			if keep == nil || keep[i] {
				delete(d.latent, target+int64(i))
			}
		}
	}
	if d.plan.CutAfterWrites > 0 && d.writes == d.plan.CutAfterWrites {
		// Power dies mid-write: the op never reaches the device, and the
		// acknowledgment never happens either — but the harness's model
		// already treats every op after the previous pump as ambiguous,
		// so marking it inflight (for CutKeepPages shaping at PowerOn)
		// is all that's needed.
		op.inflight = true
		d.pending = append(d.pending, op)
		d.cut = true
		return now, nil
	}
	d.pending = append(d.pending, op)
	// Forward the real bytes: a content-less simulated inner ignores
	// them, a file-backed inner persists them — which is what makes the
	// Restore rewind at PowerOn meaningful.
	return d.inner.WriteErr(now, target, n, data)
}

// misdirectTarget shifts an op one LBA, staying in bounds; returns off
// unchanged when no neighboring placement fits.
func (d *Dev) misdirectTarget(off int64, n int) int64 {
	if off+int64(n)+1 <= d.Pages() {
		return off + 1
	}
	if off > 0 {
		return off - 1
	}
	return off
}

// ReadAt implements blockdev.Dev as a thin panic wrapper over ReadErr.
func (d *Dev) ReadAt(now sim.Duration, off int64, n int, buf []byte) sim.Duration {
	done, err := d.ReadErr(now, off, n, buf)
	if err != nil {
		panic(err)
	}
	return done
}

// ReadErr implements blockdev.Dev: it serves the acknowledged image
// (zeros for never-written pages), applies bit-rot to planned LBAs, and
// forwards to the inner device for timing and accounting. Reads
// touching a latent sector fail with a sticky persistent error until
// the sector is rewritten; an armed ReadEIOProb fails the op with a
// transient EIO a retry may clear.
func (d *Dev) ReadErr(now sim.Duration, off int64, n int, buf []byte) (sim.Duration, error) {
	if n <= 0 || d.cut {
		return now, nil
	}
	if d.latent != nil {
		for i := 0; i < n; i++ {
			if d.latent[off+int64(i)] {
				d.injected.LatentReads++
				return now, &deverr.Error{Op: deverr.OpRead, LBA: off + int64(i), Kind: deverr.KindLatent}
			}
		}
	}
	if d.armed() && d.plan.ReadEIOProb > 0 && d.errs.Float64() < d.plan.ReadEIOProb {
		d.injected.ReadEIO++
		return now, &deverr.Error{Op: deverr.OpRead, LBA: off, Kind: deverr.KindEIO, Transient: true}
	}
	if buf != nil {
		for i := 0; i < n; i++ {
			lba := off + int64(i)
			dst := buf[i*d.ps : (i+1)*d.ps]
			if page := d.current[lba]; page != nil {
				copy(dst, page)
			} else {
				clear(dst)
			}
			if d.rot[lba] {
				rotPage(dst)
			}
		}
	}
	return d.inner.ReadErr(now, off, n, nil)
}

// rotPage applies the stable bit-rot pattern: a fixed XOR over a sparse
// byte stride, enough to break any CRC while staying deterministic
// across repeated reads.
func rotPage(dst []byte) {
	for j := 0; j < len(dst); j += 61 {
		dst[j] ^= 0xA5
	}
}

// Discard implements blockdev.Dev. Like a write, a TRIM is only durable
// once a barrier covers it.
func (d *Dev) Discard(off int64, n int) {
	if n <= 0 || d.cut {
		return
	}
	for i := 0; i < n; i++ {
		delete(d.current, off+int64(i))
	}
	d.pending = append(d.pending, pendingOp{off: off, n: n, discard: true})
	d.inner.Discard(off, n)
}

// SyncBarrier implements blockdev.Barrier as a thin panic wrapper over
// SyncErr.
func (d *Dev) SyncBarrier() {
	if err := d.SyncErr(); err != nil {
		panic(err)
	}
}

// SyncErr implements blockdev.Dev: everything acknowledged so far
// survives a power cut. Barriers cost no virtual time and no I/O —
// they only advance the durability frontier — but they do forward to
// the inner device's barrier, so a file-backed inner issues its real
// fsync exactly where the simulated stack draws the durability line.
// An armed FsyncLieProb verdict acknowledges the barrier without
// folding anything durable and skips the inner fsync — the lying-disk
// failure mode: the caller proceeds believing its commit point held.
func (d *Dev) SyncErr() error {
	if d.cut {
		return nil
	}
	d.barriers++
	if d.armed() && d.plan.FsyncLieProb > 0 && d.errs.Float64() < d.plan.FsyncLieProb {
		d.injected.FsyncLies++
		return nil
	}
	for _, op := range d.pending {
		d.foldDurable(op, nil)
	}
	d.pending = d.pending[:0]
	return d.inner.SyncErr()
}

// PowerCut forces the cut immediately (the harness cuts the remaining
// shards of a store when one shard's plan fires, so the whole machine
// loses power at once).
func (d *Dev) PowerCut() { d.cut = true }

// PowerOn resolves the pending window against the fault plan and brings
// the device back: each unbarriered op survives intact, comes back
// torn, or vanishes, per the plan's seeded RNG; the acknowledged image
// is reset to what proved durable; the cut and the error model are
// disarmed so recovery I/O runs fault-free. The returned error is a
// Restorer failure rewinding a real backing file (never set for purely
// simulated inners).
func (d *Dev) PowerOn() (Outcome, error) {
	var out Outcome
	affected := make(map[int64]struct{})
	for _, op := range d.pending {
		for i := 0; i < op.n; i++ {
			affected[op.off+int64(i)] = struct{}{}
		}
		keep := d.resolveKeep(op)
		switch {
		case keep == nil:
			out.Applied++
			d.foldDurable(op, nil)
		case len(keep) == 0:
			out.Dropped++
		default:
			out.Torn++
			d.foldDurable(op, keep)
		}
	}
	d.pending = d.pending[:0]
	d.current = make(map[int64][]byte, len(d.durable))
	for lba, page := range d.durable {
		// Sharing page slices is safe: writes always store fresh copies.
		d.current[lba] = page
	}
	err := d.restoreInner(affected)
	d.cut = false
	d.plan.CutAfterWrites = 0 // a plan cuts at most once
	// Disarm the error model: recovery must observe the damage already
	// done, not suffer fresh verdicts while reading it back.
	d.plan.ReadEIOProb, d.plan.WriteEIOProb = 0, 0
	d.plan.ShortProb, d.plan.MisdirectProb, d.plan.FsyncLieProb = 0, 0, 0
	d.latent = nil
	return out, err
}

// restoreInner rewinds a Restorer-capable inner device so every page
// touched by the pending window matches the resolved durable image —
// dropped and torn pages revert to their last barriered content (zeros
// if never durably written). Pages outside the window already match:
// their writes were forwarded verbatim and folded intact.
func (d *Dev) restoreInner(affected map[int64]struct{}) error {
	r, ok := d.inner.(Restorer)
	if !ok || len(affected) == 0 {
		return nil
	}
	lbas := make([]int64, 0, len(affected))
	for lba := range affected {
		lbas = append(lbas, lba)
	}
	slices.Sort(lbas)
	for _, lba := range lbas {
		if err := r.Restore(lba, 1, d.durable[lba]); err != nil { // nil page zeroes the range
			return err
		}
	}
	return nil
}

// resolveKeep decides an op's fate at power-on: nil means intact, an
// empty mask means dropped, otherwise keep[i] reports whether page i
// survived.
func (d *Dev) resolveKeep(op pendingOp) []bool {
	if op.inflight {
		switch {
		case d.plan.CutKeepPages < 0:
			return []bool{}
		case d.plan.CutKeepPages > 0:
			k := d.plan.CutKeepPages
			if k >= op.n {
				return nil
			}
			keep := make([]bool, op.n)
			for i := 0; i < k; i++ {
				keep[i] = true
			}
			return keep
		default:
			return d.tearMask(op.n)
		}
	}
	if d.plan.DropProb > 0 && d.rng.Float64() < d.plan.DropProb {
		return []bool{}
	}
	if op.n > 1 && d.plan.TornProb > 0 && d.rng.Float64() < d.plan.TornProb {
		return d.tearMask(op.n)
	}
	return nil
}

// tearMask builds a random torn-write survival mask: one of prefix
// lost, suffix lost, or a single interior page lost. A 1-page write
// tears to nothing (its only page is lost).
func (d *Dev) tearMask(n int) []bool {
	keep := make([]bool, n)
	if n == 1 {
		return keep
	}
	switch d.rng.Intn(3) {
	case 0: // prefix lost: pages [0,k) gone
		k := 1 + d.rng.Intn(n-1)
		for i := k; i < n; i++ {
			keep[i] = true
		}
	case 1: // suffix lost: pages [k,n) gone
		k := 1 + d.rng.Intn(n-1)
		for i := 0; i < k; i++ {
			keep[i] = true
		}
	default: // one interior page gone
		hole := d.rng.Intn(n)
		for i := range keep {
			keep[i] = i != hole
		}
	}
	return keep
}

// foldDurable applies an op (optionally masked by keep, intersected
// with the op's own short-write mask) to the durable image.
// Accounting-only writes (no pages) change no content.
func (d *Dev) foldDurable(op pendingOp, keep []bool) {
	kept := func(i int) bool {
		return (keep == nil || keep[i]) && (op.keep == nil || op.keep[i])
	}
	if op.discard {
		for i := 0; i < op.n; i++ {
			if kept(i) {
				delete(d.durable, op.off+int64(i))
			}
		}
		return
	}
	if op.pages == nil {
		return
	}
	for i := 0; i < op.n; i++ {
		if kept(i) {
			d.durable[op.off+int64(i)] = op.pages[i]
		}
	}
}
