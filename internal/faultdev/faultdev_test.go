package faultdev

import (
	"bytes"
	"testing"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/flash"
)

func newInner(t *testing.T) *blockdev.Device {
	t.Helper()
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  8 << 20,
		PageSize:      4096,
		PagesPerBlock: 64,
		Profile:       flash.ProfileSSD1().Scaled(4096),
	})
	if err != nil {
		t.Fatal(err)
	}
	return blockdev.New(ssd)
}

func pageData(d *Dev, fill byte, n int) []byte {
	data := make([]byte, n*d.PageSize())
	for i := range data {
		data[i] = fill
	}
	return data
}

func readPage(t *testing.T, d *Dev, lba int64) []byte {
	t.Helper()
	buf := make([]byte, d.PageSize())
	d.ReadAt(0, lba, 1, buf)
	return buf
}

// A zero plan is a transparent content-carrying overlay: reads return
// acknowledged writes, and the inner device sees the traffic.
func TestTransparentOverlay(t *testing.T) {
	inner := newInner(t)
	d := Wrap(inner, Plan{})
	d.WriteAt(0, 10, 2, pageData(d, 0xAB, 2))
	if got := readPage(t, d, 11); got[0] != 0xAB {
		t.Fatalf("acknowledged write not visible: got %#x", got[0])
	}
	if got := readPage(t, d, 12); got[0] != 0 {
		t.Fatalf("unwritten page not zero: got %#x", got[0])
	}
	c := inner.Counters()
	if c.WriteOps != 1 || c.ReadOps != 2 {
		t.Fatalf("inner counters not forwarded: %+v", c)
	}
	if !d.ContentEnabled() {
		t.Fatal("wrapper must report content enabled")
	}
}

// Only barriered writes survive a cut; the in-flight write is shaped by
// CutKeepPages, and everything post-cut is ignored until PowerOn.
func TestCutDurabilityFrontier(t *testing.T) {
	d := Wrap(newInner(t), Plan{Seed: 1, CutAfterWrites: 3, CutKeepPages: -1})
	d.WriteAt(0, 0, 1, pageData(d, 0x11, 1)) // write 1
	d.SyncBarrier()
	d.WriteAt(0, 1, 1, pageData(d, 0x22, 1)) // write 2: acked, unbarriered
	d.WriteAt(0, 2, 1, pageData(d, 0x33, 1)) // write 3: the cut lands here
	if !d.Cut() {
		t.Fatal("cut did not fire on write 3")
	}
	d.WriteAt(0, 3, 1, pageData(d, 0x44, 1)) // post-cut: ignored
	d.SyncBarrier()                          // post-cut: must not make anything durable
	out, err := d.PowerOn()
	if err != nil {
		t.Fatal(err)
	}
	if out.Dropped != 1 {
		t.Fatalf("inflight write not dropped: %+v", out)
	}
	if got := readPage(t, d, 0); got[0] != 0x11 {
		t.Fatalf("barriered write lost: got %#x", got[0])
	}
	if got := readPage(t, d, 1); got[0] != 0x22 {
		t.Fatalf("unbarriered pre-cut write lost with DropProb=0: got %#x", got[0])
	}
	for lba, name := range map[int64]string{2: "inflight", 3: "post-cut"} {
		if got := readPage(t, d, lba); got[0] != 0 {
			t.Fatalf("%s write survived: got %#x", name, got[0])
		}
	}
}

// CutKeepPages > 0 keeps exactly the leading pages of the in-flight
// write; the rest retain their previous durable content.
func TestCutKeepPrefix(t *testing.T) {
	d := Wrap(newInner(t), Plan{Seed: 1, CutAfterWrites: 2, CutKeepPages: 2})
	d.WriteAt(0, 0, 4, pageData(d, 0x0F, 4))
	d.SyncBarrier()
	d.WriteAt(0, 0, 4, pageData(d, 0xF0, 4)) // cut: keep pages 0-1
	d.PowerOn()
	for lba := int64(0); lba < 4; lba++ {
		want := byte(0xF0)
		if lba >= 2 {
			want = 0x0F
		}
		if got := readPage(t, d, lba); got[0] != want {
			t.Fatalf("page %d: got %#x want %#x", lba, got[0], want)
		}
	}
}

// A random tear (CutKeepPages == 0) loses a prefix, a suffix, or one
// interior page — never everything-kept, and lost pages show old data.
func TestCutRandomTear(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		d := Wrap(newInner(t), Plan{Seed: seed, CutAfterWrites: 2})
		d.WriteAt(0, 0, 4, pageData(d, 0x0F, 4))
		d.SyncBarrier()
		d.WriteAt(0, 0, 4, pageData(d, 0xF0, 4))
		d.PowerOn()
		kept, lost := 0, 0
		for lba := int64(0); lba < 4; lba++ {
			switch got := readPage(t, d, lba); got[0] {
			case 0xF0:
				kept++
			case 0x0F:
				lost++
			default:
				t.Fatalf("seed %d page %d: unexpected byte %#x", seed, lba, got[0])
			}
		}
		if lost == 0 {
			t.Fatalf("seed %d: torn write survived intact", seed)
		}
		if kept+lost != 4 {
			t.Fatalf("seed %d: %d kept + %d lost != 4", seed, kept, lost)
		}
	}
}

// DropProb=1 erases every unbarriered write at power-on, including a
// pending discard — whose drop must resurrect the pre-discard page.
func TestDropAndDiscardPending(t *testing.T) {
	d := Wrap(newInner(t), Plan{Seed: 7, DropProb: 1})
	d.WriteAt(0, 0, 1, pageData(d, 0x11, 1))
	d.SyncBarrier()
	d.Discard(0, 1)
	if got := readPage(t, d, 0); got[0] != 0 {
		t.Fatalf("discard not visible pre-cut: got %#x", got[0])
	}
	d.WriteAt(0, 1, 1, pageData(d, 0x22, 1))
	d.PowerCut()
	d.PowerOn()
	if got := readPage(t, d, 0); got[0] != 0x11 {
		t.Fatalf("dropped discard must resurrect the page: got %#x", got[0])
	}
	if got := readPage(t, d, 1); got[0] != 0 {
		t.Fatalf("unbarriered write must drop at DropProb=1: got %#x", got[0])
	}
}

// Bit-rot corrupts planned LBAs deterministically and leaves the rest
// intact.
func TestBitRotStable(t *testing.T) {
	d := Wrap(newInner(t), Plan{Seed: 3, RotPages: []int64{5}})
	d.WriteAt(0, 4, 2, pageData(d, 0x77, 2))
	d.SyncBarrier()
	clean := readPage(t, d, 4)
	rot1 := readPage(t, d, 5)
	rot2 := readPage(t, d, 5)
	if clean[0] != 0x77 {
		t.Fatalf("clean page corrupted: %#x", clean[0])
	}
	if rot1[0] == 0x77 {
		t.Fatal("rot page not corrupted")
	}
	if !bytes.Equal(rot1, rot2) {
		t.Fatal("bit-rot must be stable across reads")
	}
}

// The same seed resolves the same pending window identically.
func TestDeterministicResolution(t *testing.T) {
	run := func() ([]byte, Outcome) {
		d := Wrap(newInner(t), Plan{Seed: 42, DropProb: 0.5, TornProb: 0.5})
		for i := int64(0); i < 8; i++ {
			d.WriteAt(0, i*4, 3, pageData(d, byte(0x10+i), 3))
		}
		d.PowerCut()
		out, err := d.PowerOn()
		if err != nil {
			t.Fatal(err)
		}
		img := make([]byte, 0, 32*d.PageSize())
		for lba := int64(0); lba < 32; lba++ {
			img = append(img, readPage(t, d, lba)...)
		}
		return img, out
	}
	img1, out1 := run()
	img2, out2 := run()
	if out1 != out2 {
		t.Fatalf("outcomes differ: %+v vs %+v", out1, out2)
	}
	if !bytes.Equal(img1, img2) {
		t.Fatal("surviving images differ for the same seed")
	}
	if out1.Dropped == 0 && out1.Torn == 0 {
		t.Fatalf("plan with drop/torn probability resolved everything intact: %+v", out1)
	}
}

// The write log records every acknowledged write so scripted tests can
// aim the cut at a specific one.
func TestWriteLog(t *testing.T) {
	d := Wrap(newInner(t), Plan{})
	d.WriteAt(0, 3, 2, nil)
	d.WriteAt(0, 9, 1, nil)
	log := d.WriteLog()
	if len(log) != 2 || log[0] != (WriteRecord{Off: 3, N: 2}) || log[1] != (WriteRecord{Off: 9, N: 1}) {
		t.Fatalf("unexpected write log: %+v", log)
	}
}
