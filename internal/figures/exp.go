package figures

import (
	"fmt"

	"ptsbench/internal/core"
)

// ExpReport renders the results of a declarative experiment grid
// (`ptsbench exp`) as a Report, reusing the figure renderer and CSV
// writer: one summary table over all cells plus a throughput series per
// cell. results must be in cell order, as core.RunGrid returns them.
func ExpReport(name string, specs []core.Spec, results []*core.Result) *Report {
	if name == "" {
		name = "exp"
	}
	rep := &Report{
		ID:      "exp",
		Caption: fmt.Sprintf("declarative experiment grid %q (%d cells)", name, len(specs)),
	}
	summary := Table{
		Title: "Steady state per cell (final quarter)",
		Header: []string{"cell", "engine", "reads", "QD", "scale",
			"KOps/s", "WA-A", "WA-D", "space amp", "p99 read"},
	}
	for i, res := range results {
		spec := specs[i]
		if res == nil {
			continue
		}
		if res.OutOfSpace {
			rep.Notes = append(rep.Notes, spec.Name+" ran out of space")
			summary.Rows = append(summary.Rows, []string{
				spec.Name, spec.Engine.String(), fmt.Sprintf("%.0f%%", spec.ReadFraction*100),
				fmt.Sprintf("%d", spec.QueueDepth), fmt.Sprintf("%d", spec.Scale),
				"OOS", "OOS", "OOS", "OOS", "OOS",
			})
			continue
		}
		summary.Rows = append(summary.Rows, []string{
			spec.Name,
			spec.Engine.String(),
			fmt.Sprintf("%.0f%%", spec.ReadFraction*100),
			fmt.Sprintf("%d", spec.QueueDepth),
			fmt.Sprintf("%d", spec.Scale),
			fmt.Sprintf("%.2f", res.ScaledKOps),
			fmt.Sprintf("%.2f", res.Steady.WAA),
			fmt.Sprintf("%.2f", res.Steady.WAD),
			fmt.Sprintf("%.2f", res.SpaceAmp),
			res.Latency.P99.String(),
		})
		// Window adaptively: spec files sweep durations from smoke-test
		// minutes to paper-length hours, so a fixed 10-minute window
		// would leave short runs with an empty curve.
		window := len(res.Series.Samples) / 8
		if window < 1 {
			window = 1
		}
		if window > windowSamples {
			window = windowSamples
		}
		rep.Series = append(rep.Series, throughputSeries(spec.Name, res, window))
	}
	rep.Tables = []Table{summary}
	return rep
}
