// Package figures regenerates every table and figure of the paper's
// evaluation section (§4). Each FigN function wires the workload, engine,
// filesystem and simulated SSD through internal/core at the requested
// scale and returns a Report with the same series and rows the paper
// plots. EXPERIMENTS.md records paper-vs-measured values for each.
package figures

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"ptsbench/internal/core"
	"ptsbench/internal/costmodel"
	_ "ptsbench/internal/engine/all" // register every engine driver for core.Run
	"ptsbench/internal/flash"
)

// Options tune a figure run.
type Options struct {
	// Scale overrides the figure's default simulation scale (0 keeps
	// the default; larger is faster and coarser).
	Scale int64
	// Quick shortens run durations for smoke tests and benchmarks.
	Quick bool
	// Seed overrides the default deterministic seed.
	Seed uint64
	// Engines restricts a figure to the given engines (nil keeps the
	// figure's default set). The CLI's -engine flag feeds this.
	Engines []core.EngineKind
}

func (o Options) scale(def int64) int64 {
	if o.Scale > 0 {
		return o.Scale
	}
	return def
}

func (o Options) duration(def time.Duration) time.Duration {
	if o.Quick {
		if def > 60*time.Minute {
			return 60 * time.Minute
		}
		return def / 2
	}
	return def
}

func (o Options) seed() uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

// engines returns the engine iteration set: the override when given,
// the figure's default otherwise.
func (o Options) engines(def []core.EngineKind) []core.EngineKind {
	if len(o.Engines) > 0 {
		return o.Engines
	}
	return def
}

// Series is one named curve.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Table is one result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Report is the output of one figure reproduction.
type Report struct {
	ID      string
	Caption string
	Series  []Series
	Tables  []Table
	Notes   []string
}

// Registry maps figure IDs to their constructors.
func Registry() map[string]func(Options) (*Report, error) {
	return map[string]func(Options) (*Report, error){
		"fig2":  Fig2,
		"fig3":  Fig3,
		"fig4":  Fig4,
		"fig5":  Fig5,
		"fig6":  Fig6,
		"fig7":  Fig7,
		"fig8":  Fig8,
		"fig9":  Fig9,
		"fig10": Fig10,
		"fig11": Fig11,
		// qdsweep extends the paper: queue-depth vs throughput on a
		// device with internal channel/way parallelism.
		"qdsweep": FigQDSweep,
		// betradeoff extends the paper: the Bε-tree's three-way
		// trade-off between throughput and write amplification as the
		// buffer fraction (ε) and the read fraction vary.
		"betradeoff": FigBetradeoff,
		// shardsweep extends the paper: throughput and tail latency of
		// the sharded serving layer as shards and closed-loop clients
		// vary.
		"shardsweep": FigShardSweep,
		// replsweep extends the paper: the cost of replication —
		// throughput, tail latency and physical write traffic as the
		// replication factor and discipline (chain vs quorum) vary.
		"replsweep": FigReplSweep,
	}
}

// IDs lists the figure identifiers in paper order, followed by the
// extension figures.
func IDs() []string {
	return []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "qdsweep", "betradeoff", "shardsweep", "replsweep"}
}

// windowSamples is how many 10s samples form the paper's 10-minute
// reporting window.
const windowSamples = 60

// baseSpec returns the paper's default experiment (§3.2, §3.5).
func baseSpec(o Options, engine core.EngineKind, init core.InitialState) core.Spec {
	return core.Spec{
		Device:          core.DefaultDevice(),
		Scale:           o.scale(128),
		Engine:          engine,
		DatasetFraction: 0.5,
		ValueBytes:      4000,
		Initial:         init,
		Duration:        o.duration(210 * time.Minute),
		SampleEvery:     10 * time.Second,
		Seed:            o.seed(),
	}
}

func engineName(k core.EngineKind) string {
	switch k {
	case core.LSM:
		return "RocksDB-like LSM"
	case core.Betree:
		return "Be-tree (buffered)"
	default:
		return "WiredTiger-like B+Tree"
	}
}

// throughputSeries extracts the scaled KOps curve.
func throughputSeries(name string, res *core.Result, window int) Series {
	t, kops := res.Series.ThroughputSeries(window)
	scaled := make([]float64, len(kops))
	for i, v := range kops {
		scaled[i] = v * float64(res.Spec.Scale)
	}
	return Series{Name: name, XLabel: "time (min)", YLabel: "KOps/s", X: t, Y: scaled}
}

func deviceWriteSeries(name string, res *core.Result, window int) Series {
	t, w, _ := res.Series.RateSeries(window)
	scaled := make([]float64, len(w))
	for i, v := range w {
		scaled[i] = v * float64(res.Spec.Scale)
	}
	return Series{Name: name, XLabel: "time (min)", YLabel: "MB/s", X: t, Y: scaled}
}

func waSeries(name string, res *core.Result, window int) (Series, Series) {
	t, waa, wad := res.Series.WASeries(window)
	return Series{Name: name + " WA-A", XLabel: "time (min)", YLabel: "WA-A", X: t, Y: waa},
		Series{Name: name + " WA-D", XLabel: "time (min)", YLabel: "WA-D", X: t, Y: wad}
}

// bothEngines is the engine pair of the paper's own evaluation; the
// dataset-size / over-provisioning / cost-model figures keep it as
// their default so they reproduce the paper's two-way comparisons.
var bothEngines = []core.EngineKind{core.LSM, core.BTree}

// allEngines adds the Bε-tree: the workload-generic figures (steady
// state, initial state, LBA coverage, SSD types, workload variants,
// queue-depth sweep) run all three tree structures by default.
var allEngines = []core.EngineKind{core.LSM, core.BTree, core.Betree}

// runCells executes a figure's independent experiment cells concurrently
// via core.RunGrid (which is documented to return bit-identical Results
// to sequential Run calls) and returns them in cell order. Every figure
// whose loop body was a plain core.Run call goes through here, so a
// figure's wall-clock cost is its slowest cell, not the sum of cells.
func runCells(id string, specs []core.Spec) ([]*core.Result, error) {
	results, err := core.RunGrid(specs, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	return results, nil
}

// Fig2 reproduces Figure 2: KV and device throughput, WA-A and WA-D over
// time for both engines on a trimmed SSD.
func Fig2(o Options) (*Report, error) {
	rep := &Report{
		ID: "fig2",
		Caption: "Steady state vs bursty performance on a trimmed SSD: " +
			"KV throughput, device write throughput, WA-A and WA-D over time",
	}
	engines := o.engines(allEngines)
	var specs []core.Spec
	for _, eng := range engines {
		spec := baseSpec(o, eng, core.Trimmed)
		spec.Name = fmt.Sprintf("fig2 %v", eng)
		specs = append(specs, spec)
	}
	results, err := runCells("fig2", specs)
	if err != nil {
		return nil, err
	}
	for i, eng := range engines {
		res := results[i]
		if res.OutOfSpace {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s ran out of space", engineName(eng)))
			continue
		}
		name := engineName(eng)
		rep.Series = append(rep.Series, throughputSeries(name+" throughput", res, windowSamples))
		rep.Series = append(rep.Series, deviceWriteSeries(name+" device writes", res, windowSamples))
		waa, wad := waSeries(name, res, windowSamples)
		rep.Series = append(rep.Series, waa, wad)
		rep.Tables = append(rep.Tables, steadyTable(name, res))
	}
	return rep, nil
}

func steadyTable(name string, res *core.Result) Table {
	return Table{
		Title:  name + " steady state (final quarter)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"throughput (KOps/s, paper scale)", fmt.Sprintf("%.2f", res.ScaledKOps)},
			{"WA-A", fmt.Sprintf("%.2f", res.Steady.WAA)},
			{"WA-D", fmt.Sprintf("%.2f", res.Steady.WAD)},
			{"end-to-end WA", fmt.Sprintf("%.2f", res.Steady.EndToEndWA)},
			{"space amplification", fmt.Sprintf("%.2f", res.SpaceAmp)},
			{"disk utilization (%)", fmt.Sprintf("%.1f", res.DiskUtilPct)},
			{"LBAs written (fraction)", fmt.Sprintf("%.2f", res.FracLBAs)},
		},
	}
}

// Fig3 reproduces Figure 3: throughput and WA-D over time, trimmed versus
// preconditioned initial device state.
func Fig3(o Options) (*Report, error) {
	rep := &Report{
		ID: "fig3",
		Caption: "Impact of the initial state of the SSD (trimmed vs " +
			"preconditioned) on throughput and WA-D over time",
	}
	engines := o.engines(allEngines)
	var specs []core.Spec
	for _, eng := range engines {
		for _, init := range []core.InitialState{core.Trimmed, core.Preconditioned} {
			spec := baseSpec(o, eng, init)
			spec.Name = fmt.Sprintf("fig3 %v/%v", eng, init)
			specs = append(specs, spec)
		}
	}
	results, err := runCells("fig3", specs)
	if err != nil {
		return nil, err
	}
	cell := 0
	for _, eng := range engines {
		for _, init := range []core.InitialState{core.Trimmed, core.Preconditioned} {
			res := results[cell]
			cell++
			if res.OutOfSpace {
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s %v ran out of space", engineName(eng), init))
				continue
			}
			name := fmt.Sprintf("%s (%v)", engineName(eng), init)
			rep.Series = append(rep.Series, throughputSeries(name+" throughput", res, windowSamples))
			_, wad := waSeries(name, res, windowSamples)
			rep.Series = append(rep.Series, wad)
			rep.Tables = append(rep.Tables, steadyTable(name, res))
		}
	}
	return rep, nil
}

// Fig4 reproduces Figure 4: the CDF of per-LBA write counts with LBAs
// sorted by decreasing write count, for both engines on the default
// workload.
func Fig4(o Options) (*Report, error) {
	rep := &Report{
		ID: "fig4",
		Caption: "CDF of LBA write probability (LBAs sorted by decreasing " +
			"write count); WiredTiger leaves a large fraction of the LBA " +
			"space unwritten",
	}
	engines := o.engines(allEngines)
	var specs []core.Spec
	for _, eng := range engines {
		spec := baseSpec(o, eng, core.Trimmed)
		spec.Name = fmt.Sprintf("fig4 %v", eng)
		specs = append(specs, spec)
	}
	results, err := runCells("fig4", specs)
	if err != nil {
		return nil, err
	}
	for i, eng := range engines {
		res := results[i]
		x := make([]float64, len(res.LBACDF))
		for i := range x {
			x[i] = float64(i) / float64(len(x)-1)
		}
		rep.Series = append(rep.Series, Series{
			Name:   engineName(eng),
			XLabel: "LBA (normalized, sorted by decreasing writes)",
			YLabel: "CDF",
			X:      x,
			Y:      res.LBACDF,
		})
		rep.Tables = append(rep.Tables, Table{
			Title:  engineName(eng) + " LBA coverage",
			Header: []string{"metric", "value"},
			Rows: [][]string{
				{"fraction of LBAs written", fmt.Sprintf("%.2f", res.FracLBAs)},
				{"fraction never written", fmt.Sprintf("%.2f", 1-res.FracLBAs)},
			},
		})
	}
	return rep, nil
}

// fig5Fractions are the dataset-to-capacity ratios of Figure 5.
var fig5Fractions = []float64{0.25, 0.37, 0.5, 0.62}

// Fig5 reproduces Figure 5: steady-state throughput, WA-D and WA-A as a
// function of dataset size, trimmed and preconditioned.
func Fig5(o Options) (*Report, error) {
	rep := &Report{
		ID:      "fig5",
		Caption: "Impact of dataset size: steady-state throughput, WA-D and WA-A",
	}
	tput := Table{Title: "Throughput (KOps/s)", Header: []string{"config"}}
	wad := Table{Title: "WA-D", Header: []string{"config"}}
	waa := Table{Title: "WA-A", Header: []string{"config"}}
	for _, f := range fig5Fractions {
		h := fmt.Sprintf("%.2f", f)
		tput.Header = append(tput.Header, h)
		wad.Header = append(wad.Header, h)
		waa.Header = append(waa.Header, h)
	}
	engines := o.engines(bothEngines)
	var specs []core.Spec
	for _, eng := range engines {
		for _, init := range []core.InitialState{core.Trimmed, core.Preconditioned} {
			for _, frac := range fig5Fractions {
				spec := baseSpec(o, eng, init)
				spec.Name = fmt.Sprintf("fig5 %v/%v/%.2f", eng, init, frac)
				spec.DatasetFraction = frac
				spec.Duration = o.duration(150 * time.Minute)
				specs = append(specs, spec)
			}
		}
	}
	results, err := runCells("fig5", specs)
	if err != nil {
		return nil, err
	}
	cell := 0
	for _, eng := range engines {
		for _, init := range []core.InitialState{core.Trimmed, core.Preconditioned} {
			name := fmt.Sprintf("%s %v", engineName(eng), init)
			tr := []string{name}
			wr := []string{name}
			ar := []string{name}
			for range fig5Fractions {
				res := results[cell]
				cell++
				if res.OutOfSpace {
					tr = append(tr, "OOS")
					wr = append(wr, "OOS")
					ar = append(ar, "OOS")
					continue
				}
				tr = append(tr, fmt.Sprintf("%.2f", res.ScaledKOps))
				wr = append(wr, fmt.Sprintf("%.2f", res.Steady.WAD))
				ar = append(ar, fmt.Sprintf("%.1f", res.Steady.WAA))
			}
			tput.Rows = append(tput.Rows, tr)
			wad.Rows = append(wad.Rows, wr)
			waa.Rows = append(waa.Rows, ar)
		}
	}
	rep.Tables = []Table{tput, wad, waa}
	return rep, nil
}

// fig6Fractions extend the sweep to the sizes where RocksDB runs out of
// space in the paper.
var fig6Fractions = []float64{0.25, 0.37, 0.5, 0.62, 0.75, 0.88}

// Fig6 reproduces Figure 6: disk utilization, space amplification, and
// the storage-cost heatmap.
func Fig6(o Options) (*Report, error) {
	rep := &Report{
		ID:      "fig6",
		Caption: "Space amplification and its effect on storage cost",
	}
	util := Table{Title: "Disk utilization (%)", Header: []string{"config"}}
	amp := Table{Title: "Space amplification", Header: []string{"config"}}
	for _, f := range fig6Fractions {
		util.Header = append(util.Header, fmt.Sprintf("%.2f", f))
		amp.Header = append(amp.Header, fmt.Sprintf("%.2f", f))
	}
	// Measured 0.5-fraction figures feed the cost model, like the
	// paper's use of its Fig 5a/6a measurements.
	var options []costmodel.Option
	devCap := float64(core.DefaultDevice().CapacityBytes)
	engines := o.engines(bothEngines)
	var specs []core.Spec
	for _, eng := range engines {
		for _, frac := range fig6Fractions {
			spec := baseSpec(o, eng, core.Preconditioned)
			spec.Name = fmt.Sprintf("fig6 %v/%.2f", eng, frac)
			spec.DatasetFraction = frac
			spec.Duration = o.duration(120 * time.Minute)
			specs = append(specs, spec)
		}
	}
	results, err := runCells("fig6", specs)
	if err != nil {
		return nil, err
	}
	cell := 0
	for _, eng := range engines {
		ur := []string{engineName(eng)}
		ar := []string{engineName(eng)}
		for _, frac := range fig6Fractions {
			res := results[cell]
			cell++
			if res.OutOfSpace {
				ur = append(ur, "OOS")
				ar = append(ar, "OOS")
				continue
			}
			ur = append(ur, fmt.Sprintf("%.0f", res.DiskUtilPct))
			ar = append(ar, fmt.Sprintf("%.2f", res.SpaceAmp))
			if frac == 0.5 {
				options = append(options, costmodel.Option{
					Name:            engineName(eng),
					ThroughputKOps:  res.ScaledKOps,
					MaxDatasetBytes: devCap / res.SpaceAmp,
				})
			}
		}
		util.Rows = append(util.Rows, ur)
		amp.Rows = append(amp.Rows, ar)
	}
	rep.Tables = []Table{util, amp}
	if len(options) >= 2 {
		heat, err := costmodel.Compute(options, tbRange(1, 5), kopsRange(5, 25))
		if err != nil {
			return nil, err
		}
		rep.Tables = append(rep.Tables, heatTable("Cheaper system (fewer drives)", heat))
	}
	return rep, nil
}

func tbRange(lo, hi int) []float64 {
	var out []float64
	for tb := lo; tb <= hi; tb++ {
		out = append(out, float64(tb)*(1<<40))
	}
	return out
}

func kopsRange(lo, hi float64) []float64 {
	var out []float64
	for k := lo; k <= hi; k += 5 {
		out = append(out, k)
	}
	return out
}

func heatTable(title string, h *costmodel.Heatmap) Table {
	t := Table{Title: title, Header: []string{"target \\ dataset"}}
	for _, d := range h.Datasets {
		t.Header = append(t.Header, fmt.Sprintf("%.0fTB", d/(1<<40)))
	}
	for ti := len(h.Targets) - 1; ti >= 0; ti-- {
		row := []string{fmt.Sprintf("%.0f KOps", h.Targets[ti])}
		for di := range h.Datasets {
			row = append(row, h.Cells[ti][di].Winner)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7 reproduces Figure 7: the effect of software over-provisioning
// (a 300 GB partition with 100 GB kept trimmed) on throughput and WA-D.
func Fig7(o Options) (*Report, error) {
	rep := &Report{
		ID:      "fig7",
		Caption: "Impact of extra SSD over-provisioning (OP)",
	}
	tput := Table{
		Title:  "Throughput (KOps/s)",
		Header: []string{"config", "No OP", "Extra OP"},
	}
	wad := Table{
		Title:  "WA-D",
		Header: []string{"config", "No OP", "Extra OP"},
	}
	engines := o.engines(bothEngines)
	var specs []core.Spec
	for _, eng := range engines {
		for _, init := range []core.InitialState{core.Trimmed, core.Preconditioned} {
			for _, partFrac := range []float64{1.0, 0.75} {
				spec := baseSpec(o, eng, init)
				spec.Name = fmt.Sprintf("fig7 %v/%v/%.2f", eng, init, partFrac)
				spec.PartitionFraction = partFrac
				spec.Duration = o.duration(150 * time.Minute)
				specs = append(specs, spec)
			}
		}
	}
	results, err := runCells("fig7", specs)
	if err != nil {
		return nil, err
	}
	cell := 0
	for _, eng := range engines {
		for _, init := range []core.InitialState{core.Trimmed, core.Preconditioned} {
			name := fmt.Sprintf("%s %v", engineName(eng), init)
			tr := []string{name}
			wr := []string{name}
			for range []float64{1.0, 0.75} {
				res := results[cell]
				cell++
				if res.OutOfSpace {
					tr = append(tr, "OOS")
					wr = append(wr, "OOS")
					continue
				}
				tr = append(tr, fmt.Sprintf("%.2f", res.ScaledKOps))
				wr = append(wr, fmt.Sprintf("%.2f", res.Steady.WAD))
			}
			tput.Rows = append(tput.Rows, tr)
			wad.Rows = append(wad.Rows, wr)
		}
	}
	rep.Tables = []Table{tput, wad}
	return rep, nil
}

// Fig8 reproduces Figure 8: the storage-cost heatmap comparing RocksDB
// with and without extra over-provisioning on a preconditioned SSD.
func Fig8(o Options) (*Report, error) {
	rep := &Report{
		ID:      "fig8",
		Caption: "Storage cost of RocksDB with vs without extra OP (preconditioned)",
	}
	if len(o.Engines) > 0 {
		rep.Notes = append(rep.Notes,
			"fig8 is an LSM-specific over-provisioning study; the -engine override is ignored")
	}
	devCap := float64(core.DefaultDevice().CapacityBytes)
	var options []costmodel.Option
	var specs []core.Spec
	for _, partFrac := range []float64{1.0, 0.75} {
		spec := baseSpec(o, core.LSM, core.Preconditioned)
		spec.Name = fmt.Sprintf("fig8 part=%.2f", partFrac)
		spec.PartitionFraction = partFrac
		spec.Duration = o.duration(150 * time.Minute)
		specs = append(specs, spec)
	}
	results, err := runCells("fig8", specs)
	if err != nil {
		return nil, err
	}
	for i, partFrac := range []float64{1.0, 0.75} {
		res := results[i]
		name := "No OP"
		if partFrac < 1 {
			name = "Extra OP"
		}
		if res.OutOfSpace {
			rep.Notes = append(rep.Notes, name+" ran out of space")
			continue
		}
		options = append(options, costmodel.Option{
			Name:           name,
			ThroughputKOps: res.ScaledKOps,
			// With extra OP only partFrac of the drive is usable.
			MaxDatasetBytes: devCap * partFrac / res.SpaceAmp,
		})
	}
	if len(options) == 2 {
		heat, err := costmodel.Compute(options, tbRange(1, 5), kopsRange(5, 25))
		if err != nil {
			return nil, err
		}
		rep.Tables = append(rep.Tables, heatTable("Cheaper RocksDB configuration", heat))
	}
	return rep, nil
}

// fig9Devices returns the three SSD specs of §4.7.
func fig9Devices() []core.DeviceSpec {
	d1 := core.DefaultDevice()
	d2 := core.DefaultDevice()
	d2.Profile = ssd2Profile()
	d3 := core.DefaultDevice()
	d3.Profile = ssd3Profile()
	return []core.DeviceSpec{d1, d2, d3}
}

// Fig9 reproduces Figure 9: steady throughput of both engines across the
// three SSD types, with a 10x smaller dataset and trimmed devices so GC
// effects are minimized.
func Fig9(o Options) (*Report, error) {
	rep := &Report{
		ID:      "fig9",
		Caption: "Impact of SSD type on throughput (small dataset, trimmed)",
	}
	tbl := Table{Title: "Throughput (KOps/s)", Header: []string{"engine", "SSD1", "SSD2", "SSD3"}}
	engines := o.engines(allEngines)
	var specs []core.Spec
	for _, eng := range engines {
		for _, dev := range fig9Devices() {
			spec := baseSpec(o, eng, core.Trimmed)
			spec.Name = fmt.Sprintf("fig9 %v/%s", eng, dev.Profile.Name)
			spec.Device = dev
			spec.DatasetFraction = 0.05 // 10x smaller than the default 0.5
			spec.Duration = o.duration(90 * time.Minute)
			specs = append(specs, spec)
		}
	}
	results, err := runCells("fig9", specs)
	if err != nil {
		return nil, err
	}
	cell := 0
	for _, eng := range engines {
		row := []string{engineName(eng)}
		for range fig9Devices() {
			res := results[cell]
			cell++
			row = append(row, fmt.Sprintf("%.2f", res.ScaledKOps))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	rep.Tables = []Table{tbl}
	return rep, nil
}

// Fig10 reproduces Figure 10: throughput over time (1-minute averages)
// across the three SSD types, showing per-device variability.
func Fig10(o Options) (*Report, error) {
	rep := &Report{
		ID:      "fig10",
		Caption: "Throughput variability (1-minute averages) per SSD type",
	}
	const oneMinuteWindow = 6 // 6 x 10s samples
	engines := o.engines(allEngines)
	var specs []core.Spec
	for _, eng := range engines {
		for _, dev := range fig9Devices() {
			spec := baseSpec(o, eng, core.Trimmed)
			spec.Name = fmt.Sprintf("fig10 %v/%s", eng, dev.Profile.Name)
			spec.Device = dev
			spec.DatasetFraction = 0.05
			spec.Duration = o.duration(90 * time.Minute)
			specs = append(specs, spec)
		}
	}
	results, err := runCells("fig10", specs)
	if err != nil {
		return nil, err
	}
	cell := 0
	for _, eng := range engines {
		for i := range fig9Devices() {
			res := results[cell]
			cell++
			name := fmt.Sprintf("%s SSD%d", engineName(eng), i+1)
			rep.Series = append(rep.Series, throughputSeries(name, res, oneMinuteWindow))
			rep.Tables = append(rep.Tables, variabilityTable(name, res, oneMinuteWindow))
		}
	}
	return rep, nil
}

// variabilityTable summarizes throughput swings over 1-minute windows.
func variabilityTable(name string, res *core.Result, window int) Table {
	_, kops := res.Series.ThroughputSeries(window)
	if len(kops) == 0 {
		return Table{Title: name + " variability"}
	}
	lo, hi, sum := kops[0], kops[0], 0.0
	zeros := 0
	for _, v := range kops {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		if v < 0.001 {
			zeros++
		}
		sum += v
	}
	mean := sum / float64(len(kops))
	cv := 0.0
	if mean > 0 {
		var ss float64
		for _, v := range kops {
			ss += (v - mean) * (v - mean)
		}
		cv = sqrtF(ss/float64(len(kops))) / mean
	}
	f := float64(res.Spec.Scale)
	return Table{
		Title:  name + " variability (1-min windows)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"min (KOps/s)", fmt.Sprintf("%.2f", lo*f)},
			{"max (KOps/s)", fmt.Sprintf("%.2f", hi*f)},
			{"mean (KOps/s)", fmt.Sprintf("%.2f", mean*f)},
			{"coeff. of variation", fmt.Sprintf("%.2f", cv)},
			{"stalled minutes", fmt.Sprintf("%d", zeros)},
		},
	}
}

// Fig11 reproduces Figure 11: the pitfalls under two workload variants —
// a 50:50 read:write mix and small (128 B) values — on trimmed and
// preconditioned devices.
func Fig11(o Options) (*Report, error) {
	rep := &Report{
		ID:      "fig11",
		Caption: "Additional workloads: 50:50 read:write mix and 128-byte values",
	}
	engines := o.engines(allEngines)
	var specs []core.Spec
	var names []string
	// 50:50 mix at the default scale.
	for _, eng := range engines {
		for _, init := range []core.InitialState{core.Trimmed, core.Preconditioned} {
			spec := baseSpec(o, eng, init)
			spec.Name = fmt.Sprintf("fig11 rw %v/%v", eng, init)
			spec.ReadFraction = 0.5
			specs = append(specs, spec)
			names = append(names, fmt.Sprintf("%s 50:50 (%v)", engineName(eng), init))
		}
	}
	// 128-byte values at a larger scale (more keys per byte).
	for _, eng := range engines {
		for _, init := range []core.InitialState{core.Trimmed, core.Preconditioned} {
			spec := baseSpec(o, eng, init)
			spec.Name = fmt.Sprintf("fig11 128B %v/%v", eng, init)
			spec.Scale = o.scale(512)
			spec.ValueBytes = 128
			specs = append(specs, spec)
			names = append(names, fmt.Sprintf("%s 128B (%v)", engineName(eng), init))
		}
	}
	results, err := runCells("fig11", specs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		rep.Series = append(rep.Series, throughputSeries(names[i]+" throughput", res, windowSamples))
		_, wad := waSeries(names[i], res, windowSamples)
		rep.Series = append(rep.Series, wad)
	}
	return rep, nil
}

// qdSweepDepths are the host queue depths of the parallelism sweep.
var qdSweepDepths = []int{1, 4, 16, 32}

// FigQDSweep goes beyond the paper: it sweeps host queue depth on an
// SSD with 4 channels × 4 ways of internal parallelism and a read-heavy
// (95:5) workload, showing throughput growing with queue depth until
// the lane array saturates — the effect Didona et al. flag as missing
// from queue-depth-1 evaluations and Roh et al. exploit inside a
// B+Tree. The independent cells of the sweep execute concurrently via
// core.RunGrid.
//
// Engine-internal QD usage differs by design: the LSM additionally
// parallelizes the multi-table probes of a single Get
// (ProbeParallelism), while the B+Tree and Bε-tree answer a point read
// from at most one leaf — there is nothing inside one lookup to
// overlap, so their curves reflect host-level read batching alone
// (their PrefetchDepth/scan-side parallelism only matters for range
// scans, which this workload does not issue).
func FigQDSweep(o Options) (*Report, error) {
	rep := &Report{
		ID: "qdsweep",
		Caption: "Impact of host queue depth on a 4-channel x 4-way SSD " +
			"(read-heavy workload): throughput scales with I/O concurrency " +
			"until the internal lanes saturate",
	}
	dev := core.DefaultDevice()
	dev.Profile = dev.Profile.WithParallelism(4, 4)
	engines := o.engines(allEngines)
	var specs []core.Spec
	for _, eng := range engines {
		for _, qd := range qdSweepDepths {
			spec := baseSpec(o, eng, core.Trimmed)
			spec.Name = fmt.Sprintf("%v-qd%d", eng, qd)
			spec.Device = dev
			spec.Scale = o.scale(512)
			spec.QueueDepth = qd
			spec.ReadFraction = 0.95
			spec.Duration = o.duration(90 * time.Minute)
			specs = append(specs, spec)
		}
	}
	results, err := core.RunGrid(specs, 0)
	if err != nil {
		return nil, fmt.Errorf("qdsweep: %w", err)
	}
	tbl := Table{
		Title:  "Mean throughput (KOps/s, paper scale)",
		Header: []string{"engine"},
	}
	for _, qd := range qdSweepDepths {
		tbl.Header = append(tbl.Header, fmt.Sprintf("QD %d", qd))
	}
	lat := Table{
		Title:  "p99 read latency (paper scale)",
		Header: append([]string(nil), tbl.Header...),
	}
	cell := 0
	for _, eng := range engines {
		name := engineName(eng)
		s := Series{Name: name, XLabel: "queue depth", YLabel: "KOps/s"}
		tr := []string{name}
		lr := []string{name}
		for _, qd := range qdSweepDepths {
			res := results[cell]
			cell++
			if res.OutOfSpace {
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s QD %d ran out of space", name, qd))
				tr = append(tr, "OOS")
				lr = append(lr, "OOS")
				continue
			}
			kops := res.MeanScaledKOps()
			s.X = append(s.X, float64(qd))
			s.Y = append(s.Y, kops)
			tr = append(tr, fmt.Sprintf("%.2f", kops))
			lr = append(lr, res.Latency.P99.String())
		}
		rep.Series = append(rep.Series, s)
		tbl.Rows = append(tbl.Rows, tr)
		lat.Rows = append(lat.Rows, lr)
	}
	rep.Tables = []Table{tbl, lat}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("device: %d channels x %d ways (%d lanes)",
			dev.Profile.Channels, dev.Profile.Ways, dev.Profile.ParallelLanes()))
	return rep, nil
}

// betradeoffEpsilons are the buffer-fraction knob settings of the
// Bε-tree trade-off sweep; 1.0 is the degenerate B+Tree point (no
// buffering).
var betradeoffEpsilons = []float64{0.4, 0.6, 0.8, 1.0}

// betradeoffReadFracs are the workload mixes of the sweep: write-heavy,
// balanced, read-heavy.
var betradeoffReadFracs = []float64{0.05, 0.5, 0.95}

// FigBetradeoff goes beyond the paper: it maps the Bε-tree's three-way
// trade-off — throughput, application-level WA and device-level WA — as
// the buffer fraction (ε) and the read fraction vary. Small ε buys
// write batching (fewer, larger leaf write-backs) at the cost of fanout
// (deeper tree); ε = 1 is the B+Tree end of the spectrum. The paper's
// steady-state methodology applies unchanged: every cell is measured
// over the tail of a long run on a trimmed device.
func FigBetradeoff(o Options) (*Report, error) {
	rep := &Report{
		ID: "betradeoff",
		Caption: "Be-tree trade-off: throughput, WA-A and WA-D vs buffer " +
			"fraction (ε) and read fraction (ε = 1 degenerates to a B+Tree)",
	}
	if len(o.Engines) > 0 && !(len(o.Engines) == 1 && o.Engines[0] == core.Betree) {
		rep.Notes = append(rep.Notes,
			"betradeoff sweeps the Bε-tree's ε knob; the -engine override is ignored")
	}
	var specs []core.Spec
	for _, rf := range betradeoffReadFracs {
		for _, eps := range betradeoffEpsilons {
			spec := baseSpec(o, core.Betree, core.Trimmed)
			spec.Name = fmt.Sprintf("betradeoff rf=%.2f eps=%.2f", rf, eps)
			spec.ReadFraction = rf
			spec.Duration = o.duration(120 * time.Minute)
			// The ε override travels as a declarative tunable (the
			// spec stays serializable); 'g'/-1 formatting round-trips
			// the float64 exactly.
			spec.Tunables = map[string]string{
				"epsilon": strconv.FormatFloat(eps, 'g', -1, 64),
			}
			specs = append(specs, spec)
		}
	}
	results, err := runCells("betradeoff", specs)
	if err != nil {
		return nil, err
	}
	tput := Table{Title: "Throughput (KOps/s)", Header: []string{"read fraction"}}
	waa := Table{Title: "WA-A", Header: []string{"read fraction"}}
	wad := Table{Title: "WA-D", Header: []string{"read fraction"}}
	for _, eps := range betradeoffEpsilons {
		h := fmt.Sprintf("ε=%.1f", eps)
		tput.Header = append(tput.Header, h)
		waa.Header = append(waa.Header, h)
		wad.Header = append(wad.Header, h)
	}
	cell := 0
	for _, rf := range betradeoffReadFracs {
		name := fmt.Sprintf("reads %.0f%%", rf*100)
		ts := Series{Name: name + " throughput", XLabel: "ε", YLabel: "KOps/s"}
		as := Series{Name: name + " WA-A", XLabel: "ε", YLabel: "WA-A"}
		ds := Series{Name: name + " WA-D", XLabel: "ε", YLabel: "WA-D"}
		tr := []string{name}
		ar := []string{name}
		dr := []string{name}
		for _, eps := range betradeoffEpsilons {
			res := results[cell]
			cell++
			if res.OutOfSpace {
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s ε=%.1f ran out of space", name, eps))
				tr = append(tr, "OOS")
				ar = append(ar, "OOS")
				dr = append(dr, "OOS")
				continue
			}
			ts.X = append(ts.X, eps)
			ts.Y = append(ts.Y, res.ScaledKOps)
			as.X = append(as.X, eps)
			as.Y = append(as.Y, res.Steady.WAA)
			ds.X = append(ds.X, eps)
			ds.Y = append(ds.Y, res.Steady.WAD)
			tr = append(tr, fmt.Sprintf("%.2f", res.ScaledKOps))
			ar = append(ar, fmt.Sprintf("%.2f", res.Steady.WAA))
			dr = append(dr, fmt.Sprintf("%.2f", res.Steady.WAD))
		}
		rep.Series = append(rep.Series, ts, as, ds)
		tput.Rows = append(tput.Rows, tr)
		waa.Rows = append(waa.Rows, ar)
		wad.Rows = append(wad.Rows, dr)
	}
	rep.Tables = []Table{tput, waa, wad}
	return rep, nil
}

// shardSweepShards and shardSweepClients span the serving-layer grid:
// shard counts across the columns, closed-loop client counts across the
// series.
var (
	shardSweepShards  = []int{1, 2, 4, 8}
	shardSweepClients = []int{8, 16}
)

// FigShardSweep goes beyond the paper: it sweeps the sharded serving
// layer (internal/store) over shard and client counts on the default
// balanced workload. Each shard owns an independent engine on its own
// slice of the device, so aggregate throughput grows with shards as
// long as the clients supply enough concurrent load, while per-op
// latency reflects FIFO queueing on each shard — the classic
// partitioned-store trade-off, measured under the same deterministic
// simulation as the paper's figures.
func FigShardSweep(o Options) (*Report, error) {
	rep := &Report{
		ID: "shardsweep",
		Caption: "Throughput and tail latency of the sharded serving layer: " +
			"shards scale aggregate service capacity; clients set the " +
			"offered closed-loop concurrency",
	}
	engines := o.engines([]core.EngineKind{core.LSM})
	var specs []core.Spec
	for _, eng := range engines {
		for _, clients := range shardSweepClients {
			for _, shards := range shardSweepShards {
				spec := baseSpec(o, eng, core.Trimmed)
				spec.Name = fmt.Sprintf("%v-s%d-c%d", eng, shards, clients)
				spec.Scale = o.scale(2048)
				spec.ReadFraction = 0.5
				spec.Shards = shards
				spec.Clients = clients
				spec.Duration = o.duration(60 * time.Minute)
				specs = append(specs, spec)
			}
		}
	}
	results, err := core.RunGrid(specs, 0)
	if err != nil {
		return nil, fmt.Errorf("shardsweep: %w", err)
	}
	tput := Table{
		Title:  "Mean throughput (KOps/s, paper scale)",
		Header: []string{"engine / clients"},
	}
	for _, shards := range shardSweepShards {
		tput.Header = append(tput.Header, fmt.Sprintf("%d shards", shards))
	}
	lat := Table{
		Title:  "p99 operation latency (paper scale)",
		Header: append([]string(nil), tput.Header...),
	}
	cell := 0
	for _, eng := range engines {
		for _, clients := range shardSweepClients {
			label := fmt.Sprintf("%s, %d clients", engineName(eng), clients)
			s := Series{Name: label, XLabel: "shards", YLabel: "KOps/s"}
			tr := []string{label}
			lr := []string{label}
			for _, shards := range shardSweepShards {
				res := results[cell]
				cell++
				if res.OutOfSpace {
					rep.Notes = append(rep.Notes, fmt.Sprintf("%s at %d shards ran out of space", label, shards))
					tr = append(tr, "OOS")
					lr = append(lr, "OOS")
					continue
				}
				kops := res.MeanScaledKOps()
				s.X = append(s.X, float64(shards))
				s.Y = append(s.Y, kops)
				tr = append(tr, fmt.Sprintf("%.2f", kops))
				lr = append(lr, res.Latency.P99.String())
			}
			rep.Series = append(rep.Series, s)
			tput.Rows = append(tput.Rows, tr)
			lat.Rows = append(lat.Rows, lr)
		}
	}
	rep.Tables = []Table{tput, lat}
	return rep, nil
}

// replSweepReplicas and replSweepModes span the replication grid: the
// factors worth paying for (beyond 3 the ack chain just gets longer)
// and both disciplines. The unreplicated point anchors both series.
var (
	replSweepReplicas = []int{1, 2, 3}
	replSweepModes    = []string{"chain", "quorum"}
)

// FigReplSweep (extension) measures what replication costs: every
// shard becomes a replica group of R complete engine stacks
// (internal/replica), writes replicate before acknowledging — down the
// chain in chain mode, to a majority in quorum mode — so logical
// throughput can only fall with R while physical write traffic and
// footprint multiply by it. The sweep pins those three curves for both
// disciplines under the same deterministic simulation as the paper's
// figures.
func FigReplSweep(o Options) (*Report, error) {
	rep := &Report{
		ID: "replsweep",
		Caption: "The cost of replication: acks wait for the chain or the " +
			"quorum, so throughput and tail latency pay for the " +
			"R-fold physical redundancy",
	}
	engines := o.engines([]core.EngineKind{core.LSM})
	// One R=1 anchor cell per engine, then one cell per (mode, R>1):
	// both disciplines are identical at R=1, so it runs once.
	cellSpec := func(eng core.EngineKind, mode string, replicas int) core.Spec {
		spec := baseSpec(o, eng, core.Trimmed)
		if replicas == 1 {
			spec.Name = fmt.Sprintf("%v-r1", eng)
		} else {
			spec.Name = fmt.Sprintf("%v-%s-r%d", eng, mode, replicas)
		}
		spec.Scale = o.scale(2048)
		spec.ReadFraction = 0.5
		spec.Shards = 2
		spec.Clients = 8
		spec.Replicas = replicas
		spec.ReplMode = mode
		spec.Duration = o.duration(60 * time.Minute)
		return spec
	}
	var specs []core.Spec
	for _, eng := range engines {
		specs = append(specs, cellSpec(eng, "", 1))
		for _, mode := range replSweepModes {
			for _, replicas := range replSweepReplicas[1:] {
				specs = append(specs, cellSpec(eng, mode, replicas))
			}
		}
	}
	results, err := core.RunGrid(specs, 0)
	if err != nil {
		return nil, fmt.Errorf("replsweep: %w", err)
	}
	tput := Table{
		Title:  "Mean throughput (KOps/s, paper scale)",
		Header: []string{"engine / mode"},
	}
	for _, replicas := range replSweepReplicas {
		tput.Header = append(tput.Header, fmt.Sprintf("R=%d", replicas))
	}
	lat := Table{
		Title:  "p99 operation latency (paper scale)",
		Header: append([]string(nil), tput.Header...),
	}
	foot := Table{
		Title:  "Max footprint (MiB, all replicas)",
		Header: append([]string(nil), tput.Header...),
	}
	cell := 0
	for _, eng := range engines {
		anchor := results[cell]
		cell++
		for _, mode := range replSweepModes {
			label := fmt.Sprintf("%s, %s", engineName(eng), mode)
			s := Series{Name: label, XLabel: "replicas", YLabel: "KOps/s"}
			tr := []string{label}
			lr := []string{label}
			fr := []string{label}
			for _, replicas := range replSweepReplicas {
				res := anchor
				if replicas > 1 {
					res = results[cell]
					cell++
				}
				if res.OutOfSpace {
					rep.Notes = append(rep.Notes, fmt.Sprintf("%s at R=%d ran out of space", label, replicas))
					tr = append(tr, "OOS")
					lr = append(lr, "OOS")
					fr = append(fr, "OOS")
					continue
				}
				kops := res.MeanScaledKOps()
				s.X = append(s.X, float64(replicas))
				s.Y = append(s.Y, kops)
				tr = append(tr, fmt.Sprintf("%.2f", kops))
				lr = append(lr, res.Latency.P99.String())
				fr = append(fr, fmt.Sprintf("%.1f", float64(res.Steady.DiskUsedBytes)/(1<<20)))
			}
			rep.Series = append(rep.Series, s)
			tput.Rows = append(tput.Rows, tr)
			lat.Rows = append(lat.Rows, lr)
			foot.Rows = append(foot.Rows, fr)
		}
	}
	rep.Tables = []Table{tput, lat, foot}
	return rep, nil
}

func sqrtF(x float64) float64 { return math.Sqrt(x) }

func ssd2Profile() flash.Profile { return flash.ProfileSSD2() }
func ssd3Profile() flash.Profile { return flash.ProfileSSD3() }
