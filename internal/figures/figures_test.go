package figures

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ptsbench/internal/core"
)

// fastOptions keep figure tests quick: coarse scale, short runs.
func fastOptions() Options {
	return Options{Quick: true, Scale: 1024, Seed: 1}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range IDs() {
		if reg[id] == nil {
			t.Fatalf("figure %s missing from registry", id)
		}
	}
	if len(reg) != len(IDs()) {
		t.Fatalf("registry has %d entries, IDs has %d", len(reg), len(IDs()))
	}
}

func TestFig2Structure(t *testing.T) {
	rep, err := Fig2(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig2" {
		t.Fatalf("ID = %s", rep.ID)
	}
	// Three engines x (throughput, device writes, WA-A, WA-D).
	if len(rep.Series) != 12 {
		t.Fatalf("series count %d, want 12", len(rep.Series))
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("table count %d, want 3", len(rep.Tables))
	}
	for _, s := range rep.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("series %s malformed: %d/%d points", s.Name, len(s.X), len(s.Y))
		}
	}
}

func TestFig4WTConfined(t *testing.T) {
	rep, err := Fig4(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline for Fig 4: WiredTiger leaves a substantial
	// fraction of LBAs unwritten; RocksDB covers far more. The Bε-tree
	// writes through one collection file too, so it is also confined.
	frac := map[string]float64{}
	for _, tbl := range rep.Tables {
		for _, row := range tbl.Rows {
			if row[0] == "fraction of LBAs written" {
				v, err := strconv.ParseFloat(row[1], 64)
				if err != nil {
					t.Fatal(err)
				}
				frac[tbl.Title] = v
			}
		}
	}
	var lsmFrac, btFrac, beFrac float64
	for title, v := range frac {
		switch {
		case strings.Contains(title, "LSM"):
			lsmFrac = v
		case strings.Contains(title, "B+Tree"):
			btFrac = v
		case strings.Contains(title, "Be-tree"):
			beFrac = v
		}
	}
	if lsmFrac <= btFrac {
		t.Fatalf("LSM LBA coverage (%.2f) should exceed B+Tree's (%.2f)", lsmFrac, btFrac)
	}
	if btFrac > 0.7 {
		t.Fatalf("B+Tree coverage %.2f should be confined", btFrac)
	}
	if beFrac > 0.7 || beFrac <= 0 {
		t.Fatalf("Bε-tree coverage %.2f should be confined and nonzero", beFrac)
	}
	if lsmFrac <= beFrac {
		t.Fatalf("LSM LBA coverage (%.2f) should exceed the Bε-tree's (%.2f)", lsmFrac, beFrac)
	}
}

func TestFig9Shape(t *testing.T) {
	rep, err := Fig9(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	if len(tbl.Rows) != 3 || len(tbl.Rows[0]) != 4 {
		t.Fatalf("fig9 table malformed: %+v", tbl)
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	// Paper's qualitative structure (Fig 9): for the LSM, SSD3 (no GC, fast)
	// beats SSD1, and SSD2 (slow QLC backend) is the worst. For the
	// B+Tree, the SSD2 write cache absorbs its small writes, so SSD2
	// beats SSD1.
	lsm := tbl.Rows[0]
	bt := tbl.Rows[1]
	if !(parse(lsm[3]) > parse(lsm[1]) && parse(lsm[1]) > parse(lsm[2])) {
		t.Fatalf("LSM SSD ordering wrong: %v", lsm)
	}
	if !(parse(bt[2]) > parse(bt[1])) {
		t.Fatalf("B+Tree should be faster on SSD2 than SSD1: %v", bt)
	}
	if !(parse(bt[3]) > parse(bt[1])) {
		t.Fatalf("B+Tree should be fastest on SSD3: %v", bt)
	}
}

func TestRenderAndCSV(t *testing.T) {
	rep, err := Fig4(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig4") || !strings.Contains(out, "CDF") {
		t.Fatalf("render missing headers:\n%s", out)
	}
	dir := t.TempDir()
	if err := rep.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(rep.Series)+len(rep.Tables) {
		t.Fatalf("CSV file count %d, want %d", len(files), len(rep.Series)+len(rep.Tables))
	}
	// Files parse as CSV with at least a header.
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("empty CSV %s", f.Name())
		}
		if !strings.HasPrefix(f.Name(), "fig4_") || !strings.HasSuffix(f.Name(), ".csv") {
			t.Fatalf("bad CSV name %s", f.Name())
		}
	}
}

func TestCSVNameSanitization(t *testing.T) {
	got := csvName("fig2", "RocksDB-like LSM (trimmed) WA-D")
	if strings.ContainsAny(got, " ()") {
		t.Fatalf("unsafe csv name %q", got)
	}
	if !strings.HasPrefix(got, "fig2_") {
		t.Fatalf("missing prefix: %q", got)
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline(nil); s != "(empty)" {
		t.Fatalf("empty sparkline = %q", s)
	}
	s := sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length wrong: %q", s)
	}
	flat := sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat sparkline wrong: %q", flat)
	}
}

func TestOptionsHelpers(t *testing.T) {
	var o Options
	if o.scale(128) != 128 {
		t.Fatal("default scale")
	}
	o.Scale = 64
	if o.scale(128) != 64 {
		t.Fatal("override scale")
	}
	if o.seed() != 1 {
		t.Fatal("default seed")
	}
	o.Seed = 9
	if o.seed() != 9 {
		t.Fatal("override seed")
	}
}

func TestFig3InitialStateContrast(t *testing.T) {
	rep, err := Fig3(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 3 engines x 2 states x (throughput + WA-D) series, 6 tables.
	if len(rep.Series) != 12 || len(rep.Tables) != 6 {
		t.Fatalf("fig3 shape: %d series, %d tables", len(rep.Series), len(rep.Tables))
	}
	// Pitfall #3 headline: B+Tree WA-D differs by initial state.
	wad := map[string]float64{}
	for _, tbl := range rep.Tables {
		for _, row := range tbl.Rows {
			if row[0] == "WA-D" {
				v, err := strconv.ParseFloat(row[1], 64)
				if err != nil {
					t.Fatal(err)
				}
				wad[tbl.Title] = v
			}
		}
	}
	var btTrim, btPrec float64
	for title, v := range wad {
		if strings.Contains(title, "B+Tree") {
			if strings.Contains(title, "precondition") {
				btPrec = v
			} else {
				btTrim = v
			}
		}
	}
	if btPrec <= btTrim {
		t.Fatalf("preconditioned B+Tree WA-D (%v) should exceed trimmed (%v)", btPrec, btTrim)
	}
}

func TestFig5Sweep(t *testing.T) {
	rep, err := Fig5(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("fig5 tables: %d", len(rep.Tables))
	}
	tput := rep.Tables[0]
	if len(tput.Rows) != 4 || len(tput.Rows[0]) != 5 {
		t.Fatalf("fig5 throughput table malformed: %+v", tput)
	}
	// LSM throughput declines with dataset size (pitfall #4).
	first, err := strconv.ParseFloat(tput.Rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	last, err := strconv.ParseFloat(tput.Rows[0][4], 64)
	if err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Fatalf("LSM throughput should decline with dataset size: %v -> %v", first, last)
	}
}

func TestFig7OPEffect(t *testing.T) {
	rep, err := Fig7(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	wad := rep.Tables[1]
	// Row 1: LSM preconditioned; extra OP must lower WA-D.
	var lsmPrec []string
	for _, row := range wad.Rows {
		if strings.Contains(row[0], "LSM") && strings.Contains(row[0], "precondition") {
			lsmPrec = row
		}
	}
	if lsmPrec == nil {
		t.Fatalf("missing LSM preconditioned row: %+v", wad)
	}
	noOP, err1 := strconv.ParseFloat(lsmPrec[1], 64)
	withOP, err2 := strconv.ParseFloat(lsmPrec[2], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable cells: %v", lsmPrec)
	}
	if withOP >= noOP {
		t.Fatalf("extra OP should reduce LSM WA-D: %v -> %v", noOP, withOP)
	}
}

func TestFig6OOSAtLargeDatasets(t *testing.T) {
	rep, err := Fig6(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	util := rep.Tables[0]
	lsmRow := util.Rows[0]
	// The paper's LSM cannot hold the largest dataset (0.88). At 0.75
	// the coarse quick-mode run may survive the shortened window, but
	// only while critically full.
	if lsmRow[6] != "OOS" {
		t.Fatalf("LSM should run out of space at 0.88: %v", lsmRow)
	}
	if lsmRow[5] != "OOS" {
		v, err := strconv.ParseFloat(lsmRow[5], 64)
		if err != nil || v < 90 {
			t.Fatalf("LSM at 0.75 should be OOS or critically full: %v", lsmRow)
		}
	}
	btRow := util.Rows[1]
	for i := 1; i < len(btRow); i++ {
		if btRow[i] == "OOS" {
			t.Fatalf("B+Tree should fit every dataset: %v", btRow)
		}
	}
}

func TestEngineOverrideRestrictsFigure(t *testing.T) {
	o := fastOptions()
	o.Engines = []core.EngineKind{core.Betree}
	rep, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	// One engine x (throughput, device writes, WA-A, WA-D) + its table.
	if len(rep.Series) != 4 || len(rep.Tables) != 1 {
		t.Fatalf("restricted fig2 shape: %d series, %d tables", len(rep.Series), len(rep.Tables))
	}
	for _, s := range rep.Series {
		if !strings.Contains(s.Name, "Be-tree") {
			t.Fatalf("unexpected series %q for betree-only run", s.Name)
		}
	}
}

func TestFigBetradeoffShape(t *testing.T) {
	rep, err := FigBetradeoff(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "betradeoff" {
		t.Fatalf("ID = %s", rep.ID)
	}
	// 3 read fractions x (throughput, WA-A, WA-D) series; 3 tables.
	if len(rep.Series) != 9 || len(rep.Tables) != 3 {
		t.Fatalf("betradeoff shape: %d series, %d tables", len(rep.Series), len(rep.Tables))
	}
	for _, s := range rep.Series {
		if len(s.X) != len(betradeoffEpsilons) {
			t.Fatalf("series %s has %d points, want %d", s.Name, len(s.X), len(betradeoffEpsilons))
		}
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	// The design-space headline on the write-heavy mix: the buffered end
	// (smallest ε) must beat the degenerate B+Tree end (ε = 1) on both
	// throughput and application-level write amplification.
	tput, waa := rep.Tables[0], rep.Tables[1]
	writeHeavy := tput.Rows[0]
	last := len(writeHeavy) - 1
	if parse(writeHeavy[1]) <= parse(writeHeavy[last]) {
		t.Fatalf("buffered ε should out-write ε=1: %v", writeHeavy)
	}
	waaRow := waa.Rows[0]
	if parse(waaRow[1]) >= parse(waaRow[last]) {
		t.Fatalf("buffered ε should have lower WA-A than ε=1: %v", waaRow)
	}
}

func TestFigQDSweepMonotone(t *testing.T) {
	rep, err := FigQDSweep(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "qdsweep" {
		t.Fatalf("ID = %s", rep.ID)
	}
	if len(rep.Series) != 3 {
		t.Fatalf("series count %d, want 3 (one per engine)", len(rep.Series))
	}
	for _, s := range rep.Series {
		if len(s.Y) != len(qdSweepDepths) {
			t.Fatalf("%s: %d points, want %d", s.Name, len(s.Y), len(qdSweepDepths))
		}
		// Throughput must be non-decreasing up to the 16-lane saturation
		// point (QD 1, 4, 16).
		for i := 1; i < 3; i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("%s: throughput fell from QD %v (%.2f) to QD %v (%.2f)",
					s.Name, s.X[i-1], s.Y[i-1], s.X[i], s.Y[i])
			}
		}
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("tables %d, want 2", len(rep.Tables))
	}
}

func TestFigShardSweepScales(t *testing.T) {
	o := fastOptions()
	o.Scale = 4096
	rep, err := FigShardSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "shardsweep" {
		t.Fatalf("ID = %s", rep.ID)
	}
	if len(rep.Series) != len(shardSweepClients) {
		t.Fatalf("series count %d, want %d (one per client count)", len(rep.Series), len(shardSweepClients))
	}
	for _, s := range rep.Series {
		if len(s.Y) != len(shardSweepShards) {
			t.Fatalf("%s: %d points, want %d", s.Name, len(s.Y), len(shardSweepShards))
		}
		// The scaling claim the figure exists to demonstrate: with
		// enough clients, many shards out-serve one shard.
		last := len(s.Y) - 1
		if s.Y[last] <= s.Y[0] {
			t.Fatalf("%s: %v shards (%.2f kops) did not out-serve %v shard (%.2f kops)",
				s.Name, s.X[last], s.Y[last], s.X[0], s.Y[0])
		}
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("tables %d, want 2 (throughput + p99)", len(rep.Tables))
	}
}

func TestFigReplSweepCosts(t *testing.T) {
	o := fastOptions()
	o.Scale = 4096
	rep, err := FigReplSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "replsweep" {
		t.Fatalf("ID = %s", rep.ID)
	}
	if len(rep.Series) != len(replSweepModes) {
		t.Fatalf("series count %d, want %d (one per mode)", len(rep.Series), len(replSweepModes))
	}
	for _, s := range rep.Series {
		if len(s.Y) != len(replSweepReplicas) {
			t.Fatalf("%s: %d points, want %d", s.Name, len(s.Y), len(replSweepReplicas))
		}
		// Both modes anchor on the same unreplicated cell.
		if s.X[0] != 1 || s.Y[0] != rep.Series[0].Y[0] {
			t.Fatalf("%s: R=1 anchor differs across modes: %v", s.Name, s.Y[0])
		}
		// The cost claim the figure exists to demonstrate: acks wait
		// for replication, so R>1 never beats the unreplicated rate.
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[0]*1.05 {
				t.Fatalf("%s: R=%v (%.2f kops) beats unreplicated (%.2f kops)",
					s.Name, s.X[i], s.Y[i], s.Y[0])
			}
		}
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("tables %d, want 3 (throughput + p99 + footprint)", len(rep.Tables))
	}
}
