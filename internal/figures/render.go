package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Render writes a human-readable version of the report to w: tables as
// aligned text, series as compact sparkline-style rows plus key points.
func (r *Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "=== %s: %s ===\n", r.ID, r.Caption)
	for _, note := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", note)
	}
	for _, t := range r.Tables {
		fmt.Fprintf(w, "\n%s\n", t.Title)
		widths := make([]int, len(t.Header))
		for i, h := range t.Header {
			widths[i] = len(h)
		}
		for _, row := range t.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		printRow := func(cells []string) {
			for i, c := range cells {
				if i < len(widths) {
					fmt.Fprintf(w, "  %-*s", widths[i], c)
				} else {
					fmt.Fprintf(w, "  %s", c)
				}
			}
			fmt.Fprintln(w)
		}
		printRow(t.Header)
		printRow(dashes(widths))
		for _, row := range t.Rows {
			printRow(row)
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "\n%s  [%s vs %s]\n", s.Name, s.YLabel, s.XLabel)
		fmt.Fprintf(w, "  %s\n", sparkline(s.Y))
		if n := len(s.X); n > 0 {
			fmt.Fprintf(w, "  start %.2f @ %.0f | mid %.2f | end %.2f @ %.0f\n",
				s.Y[0], s.X[0], s.Y[n/2], s.Y[n-1], s.X[n-1])
		}
	}
	fmt.Fprintln(w)
	return nil
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, n := range widths {
		out[i] = strings.Repeat("-", n)
	}
	return out
}

// sparkline draws a series with eight-level block characters.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return "(empty)"
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * 7.999)
		}
		if idx < 0 {
			idx = 0
		}
		if idx > 7 {
			idx = 7
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// WriteCSV writes every series and table of the report as CSV files into
// dir (created if needed). Series files have columns x,y; table files
// mirror the table layout. File names are derived from the report ID and
// the series/table name.
func (r *Report) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range r.Series {
		f, err := os.Create(filepath.Join(dir, csvName(r.ID, s.Name)))
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		if err := w.Write([]string{s.XLabel, s.YLabel}); err != nil {
			f.Close()
			return err
		}
		for i := range s.X {
			if err := w.Write([]string{
				strconv.FormatFloat(s.X[i], 'f', -1, 64),
				strconv.FormatFloat(s.Y[i], 'f', -1, 64),
			}); err != nil {
				f.Close()
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		f, err := os.Create(filepath.Join(dir, csvName(r.ID, t.Title)))
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		if err := w.Write(t.Header); err != nil {
			f.Close()
			return err
		}
		for _, row := range t.Rows {
			if err := w.Write(row); err != nil {
				f.Close()
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// csvName builds a filesystem-safe file name.
func csvName(id, name string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, name)
	for strings.Contains(clean, "--") {
		clean = strings.ReplaceAll(clean, "--", "-")
	}
	clean = strings.Trim(clean, "-")
	return id + "_" + clean + ".csv"
}
