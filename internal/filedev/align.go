package filedev

import "unsafe"

// alignedBuf returns a size-byte buffer whose base address is aligned
// to align — O_DIRECT requires sector-aligned user memory, and the Go
// allocator only guarantees much smaller alignments for large slices.
func alignedBuf(size, align int) []byte {
	raw := make([]byte, size+align)
	off := 0
	if rem := int(uintptr(unsafe.Pointer(unsafe.SliceData(raw))) % uintptr(align)); rem != 0 {
		off = align - rem
	}
	return raw[off : off+size]
}
