package filedev_test

import (
	"testing"

	"ptsbench/internal/crash"
	"ptsbench/internal/engine"
	_ "ptsbench/internal/engine/all"
	"ptsbench/internal/kvtest"
)

// TestEngineConformanceOverFiles runs the full shared conformance
// suite — put/get/delete semantics, scan-vs-model, recovery after a
// checkpoint with a real close-and-reopen of the backing file — for
// every registered engine over the file-backed device. The simulated
// and real backends must honour the identical engine contract; this is
// the file half of that claim (internal/devdiff proves the two halves
// agree bit for bit).
func TestEngineConformanceOverFiles(t *testing.T) {
	for _, name := range engine.Names() {
		drv, err := engine.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			kvtest.Run(t, func(t *testing.T, content bool) *kvtest.Stack {
				return kvtest.NewFileStack(t, drv, crash.DurabilityTunables(name), content)
			})
		})
	}
}
