//go:build linux

package filedev

import (
	"os"
	"syscall"
)

// fallocate mode bits (linux/falloc.h); defined locally so the package
// stays dependency-free.
const (
	fallocKeepSize  = 0x01
	fallocPunchHole = 0x02
)

// openFile opens path for read/write, attempting O_DIRECT when direct
// is requested. Filesystems that reject O_DIRECT (tmpfs) fall back to
// buffered I/O — the caller learns the outcome from the bool.
func openFile(path string, direct bool) (*os.File, bool, error) {
	if direct {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|syscall.O_DIRECT, 0o644)
		if err == nil {
			return f, true, nil
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	return f, false, err
}

// punchHole deallocates [off, off+length) so it reads back as zeros.
// Filesystems without hole punching return an error and the caller
// zero-fills instead.
func punchHole(f *os.File, off, length int64) error {
	return syscall.Fallocate(int(f.Fd()), fallocPunchHole|fallocKeepSize, off, length)
}
