//go:build !linux

package filedev

import (
	"errors"
	"os"
)

// openFile opens path for read/write. O_DIRECT is linux-only; other
// platforms always use buffered I/O.
func openFile(path string, direct bool) (*os.File, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	return f, false, err
}

// punchHole is unsupported off linux; the caller zero-fills.
func punchHole(f *os.File, off, length int64) error {
	return errors.ErrUnsupported
}
