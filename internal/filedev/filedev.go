// Package filedev is an os.File-backed implementation of the block
// layer's Dev interface: the same page-granular WriteAt/ReadAt/Discard
// surface the simulated device offers, but every page lands in a real
// file on a real filesystem, so the kernel's write path — page cache,
// fsync, FLUSH barriers — is actually exercised. It is the
// "real-durability backend" the roadmap calls for: engines and the
// fault-injecting wrapper run unchanged on either authority, and the
// differential checker in internal/devdiff proves the two agree.
//
// Durability discipline is configurable (DisciplineNone /
// DisciplineBarrier / DisciplineAlways), mirroring the fsync spectrum
// real engines expose. Time accounting has two modes: fixed per-op
// costs (deterministic, the test default) or measured wall-clock
// latency folded into virtual time (for looking at real hardware).
// Host instrumentation — iostat Counters and the per-LBA write
// histogram — matches the simulated blockdev.Device, so the Fig 4
// plots work over either backend.
package filedev

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/deverr"
	"ptsbench/internal/sim"
)

// Discipline selects when writes become durable.
type Discipline int

const (
	// DisciplineBarrier fsyncs on SyncBarrier — the default, and the
	// contract extfs.FS.Barrier expects: acknowledged writes may sit in
	// the page cache until the next barrier.
	DisciplineBarrier Discipline = iota
	// DisciplineNone never fsyncs; durability is whatever the kernel
	// writeback gives you. Fastest, and what "running without fsync"
	// measures.
	DisciplineNone
	// DisciplineAlways fsyncs after every write — O_SYNC-style, the
	// most conservative discipline.
	DisciplineAlways
)

// ParseDiscipline maps the spec-file spelling to a Discipline.
func ParseDiscipline(s string) (Discipline, error) {
	switch s {
	case "", "barrier":
		return DisciplineBarrier, nil
	case "none":
		return DisciplineNone, nil
	case "always":
		return DisciplineAlways, nil
	}
	return 0, fmt.Errorf("filedev: unknown fsync discipline %q (want none, barrier or always)", s)
}

// String returns the spec-file spelling.
func (d Discipline) String() string {
	switch d {
	case DisciplineNone:
		return "none"
	case DisciplineAlways:
		return "always"
	default:
		return "barrier"
	}
}

// Costs are the fixed virtual-time charges used when Config.Measure is
// off. Zero fields take the Default* values, loosely shaped like a
// datacenter NVMe drive; tests rely only on their determinism.
type Costs struct {
	ReadOp    sim.Duration // per read command
	ReadPage  sim.Duration // per page read
	WriteOp   sim.Duration // per write command
	WritePage sim.Duration // per page written
	Sync      sim.Duration // per fsync
}

// Default fixed costs (see Costs).
const (
	DefaultReadOpCost    = 60 * time.Microsecond
	DefaultReadPageCost  = 2 * time.Microsecond
	DefaultWriteOpCost   = 20 * time.Microsecond
	DefaultWritePageCost = 3 * time.Microsecond
	DefaultSyncCost      = 500 * time.Microsecond
)

func (c Costs) withDefaults() Costs {
	if c.ReadOp == 0 {
		c.ReadOp = DefaultReadOpCost
	}
	if c.ReadPage == 0 {
		c.ReadPage = DefaultReadPageCost
	}
	if c.WriteOp == 0 {
		c.WriteOp = DefaultWriteOpCost
	}
	if c.WritePage == 0 {
		c.WritePage = DefaultWritePageCost
	}
	if c.Sync == 0 {
		c.Sync = DefaultSyncCost
	}
	return c
}

// Config describes a file-backed device.
type Config struct {
	// Path is the backing file; created (and truncated to a fresh
	// all-zero sparse image) by Open.
	Path string
	// Pages is the device capacity in pages. Required.
	Pages int64
	// PageSize is the sector size in bytes; 4096 when zero.
	PageSize int
	// Fsync is the durability discipline (default DisciplineBarrier).
	Fsync Discipline
	// Direct requests O_DIRECT-style aligned I/O through a bounce
	// buffer. Best-effort: filesystems that reject O_DIRECT (tmpfs)
	// silently fall back to buffered I/O; Direct() reports the outcome.
	Direct bool
	// Measure folds measured wall-clock latencies into virtual time
	// instead of charging the fixed Costs. Real-hardware mode; not
	// deterministic.
	Measure bool
	// Costs are the fixed charges when Measure is off; zero fields
	// take defaults.
	Costs Costs
}

// Dev is an open file-backed device. It implements blockdev.Dev and
// blockdev.Barrier (and therefore blockdev.Host). Like the simulated
// device it is not internally locked: callers serialize access per
// shard. I/O errors from the backing file surface as persistent typed
// deverr errors on the WriteErr/ReadErr/SyncErr surface; the legacy
// WriteAt/ReadAt/SyncBarrier wrappers panic on them, for callers with
// no error channel.
type Dev struct {
	f    *os.File
	cfg  Config
	ps   int
	n    int64
	cost Costs

	direct bool   // O_DIRECT actually in effect
	bounce []byte // aligned scratch for direct mode, zero-fill and nil-buf I/O

	counters  blockdev.Counters
	writeHist []uint32
	fsyncs    int64

	// pendingSync carries the cost of the last barrier fsync into the
	// next I/O completion: SyncBarrier has no time signature, so its
	// latency is attributed to the op that follows it — in practice the
	// next write of the sync epoch, which is where a real queue would
	// feel it.
	pendingSync sim.Duration

	closed bool
}

// bounceBytes is the chunk size for aligned/zero-fill I/O.
const bounceBytes = 256 << 10

// Open creates (truncating any previous image) the backing file and
// returns a fresh all-zero device, matching the simulated device's
// initial state.
func Open(cfg Config) (*Dev, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("filedev: empty path")
	}
	if cfg.Pages <= 0 {
		return nil, fmt.Errorf("filedev: pages must be positive, got %d", cfg.Pages)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.PageSize < 512 || cfg.PageSize%512 != 0 {
		return nil, fmt.Errorf("filedev: page size %d is not a multiple of 512", cfg.PageSize)
	}
	if err := os.MkdirAll(filepath.Dir(cfg.Path), 0o755); err != nil {
		return nil, fmt.Errorf("filedev: %w", err)
	}
	d := &Dev{
		cfg:  cfg,
		ps:   cfg.PageSize,
		n:    cfg.Pages,
		cost: cfg.Costs.withDefaults(),
	}
	f, direct, err := openFile(cfg.Path, cfg.Direct)
	if err != nil {
		return nil, fmt.Errorf("filedev: %w", err)
	}
	d.f, d.direct = f, direct
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("filedev: %w", err)
	}
	if err := f.Truncate(cfg.Pages * int64(cfg.PageSize)); err != nil {
		f.Close()
		return nil, fmt.Errorf("filedev: %w", err)
	}
	d.writeHist = make([]uint32, cfg.Pages)
	// The bounce buffer must be a whole number of pages so every chunk
	// of a split I/O stays aligned under O_DIRECT.
	chunk := (bounceBytes / cfg.PageSize) * cfg.PageSize
	if chunk == 0 {
		chunk = cfg.PageSize
	}
	d.bounce = alignedBuf(chunk, cfg.PageSize)
	return d, nil
}

// Path returns the backing file path.
func (d *Dev) Path() string { return d.cfg.Path }

// Direct reports whether O_DIRECT is actually in effect (the request
// may have fallen back on filesystems that reject it).
func (d *Dev) Direct() bool { return d.direct }

// Discipline returns the configured fsync discipline.
func (d *Dev) Discipline() Discipline { return d.cfg.Fsync }

// Fsyncs returns the cumulative number of fsync calls issued.
func (d *Dev) Fsyncs() int64 { return d.fsyncs }

// PageSize implements blockdev.Dev.
func (d *Dev) PageSize() int { return d.ps }

// Pages implements blockdev.Dev.
func (d *Dev) Pages() int64 { return d.n }

// ContentEnabled reports that reads return real data — a real file
// always retains content, so the file backend satisfies every
// content-requiring caller (WAL replay, recovery, kvtest).
func (d *Dev) ContentEnabled() bool { return true }

// Counters implements blockdev.Host.
func (d *Dev) Counters() blockdev.Counters { return d.counters }

// WriteHist implements blockdev.Host.
func (d *Dev) WriteHist() []uint32 { return d.writeHist }

// ResetInstrumentation implements blockdev.Host.
func (d *Dev) ResetInstrumentation() {
	d.counters = blockdev.Counters{}
	clear(d.writeHist)
	d.fsyncs = 0
}

// WriteAt implements blockdev.Dev as a thin panic wrapper over
// WriteErr — the legacy surface for callers with no error channel.
func (d *Dev) WriteAt(now sim.Duration, off int64, n int, data []byte) sim.Duration {
	done, err := d.WriteErr(now, off, n, data)
	if err != nil {
		panic(err)
	}
	return done
}

// WriteErr implements blockdev.Dev. data may be nil: the page range is
// zero-filled, so accounting-only callers still produce well-defined
// on-disk state. Syscall failures surface as persistent typed errors.
func (d *Dev) WriteErr(now sim.Duration, off int64, n int, data []byte) (sim.Duration, error) {
	if n <= 0 {
		return now, nil
	}
	if err := d.checkRangeErr(deverr.OpWrite, off, n); err != nil {
		return now, err
	}
	ps := d.ps
	if data != nil && len(data) != n*ps {
		return now, &deverr.Error{Op: deverr.OpWrite, LBA: off, Kind: deverr.KindBounds,
			Cause: fmt.Errorf("filedev: data length %d != %d pages", len(data), n)}
	}
	d.counters.BytesWritten += int64(n) * int64(ps)
	d.counters.WriteOps++
	for i := range d.writeHist[off : off+int64(n)] {
		d.writeHist[off+int64(i)]++
	}

	start := time.Now()
	byteOff := off * int64(ps)
	var err error
	if data == nil {
		err = d.zeroFill(byteOff, int64(n)*int64(ps))
	} else if d.direct {
		err = d.writeBounced(byteOff, data)
	} else {
		if _, werr := d.f.WriteAt(data, byteOff); werr != nil {
			err = werr
		}
	}
	if err != nil {
		return now, &deverr.Error{Op: deverr.OpWrite, LBA: off, Kind: deverr.KindEIO, Cause: err}
	}
	if d.cfg.Fsync == DisciplineAlways {
		if err := d.fsync(); err != nil {
			return now, &deverr.Error{Op: deverr.OpSync, LBA: -1, Kind: deverr.KindEIO, Cause: err}
		}
	}

	done := now + d.pendingSync
	d.pendingSync = 0
	if d.cfg.Measure {
		return done + sim.Duration(time.Since(start)), nil
	}
	done += d.cost.WriteOp + sim.Duration(n)*d.cost.WritePage
	if d.cfg.Fsync == DisciplineAlways {
		done += d.cost.Sync
	}
	return done, nil
}

// ReadAt implements blockdev.Dev as a thin panic wrapper over ReadErr.
func (d *Dev) ReadAt(now sim.Duration, off int64, n int, buf []byte) sim.Duration {
	done, err := d.ReadErr(now, off, n, buf)
	if err != nil {
		panic(err)
	}
	return done
}

// ReadErr implements blockdev.Dev. With a nil buf the pages are still
// read (into scratch) so measured-mode timing reflects real I/O.
func (d *Dev) ReadErr(now sim.Duration, off int64, n int, buf []byte) (sim.Duration, error) {
	if n <= 0 {
		return now, nil
	}
	if err := d.checkRangeErr(deverr.OpRead, off, n); err != nil {
		return now, err
	}
	ps := d.ps
	if buf != nil && len(buf) != n*ps {
		return now, &deverr.Error{Op: deverr.OpRead, LBA: off, Kind: deverr.KindBounds,
			Cause: fmt.Errorf("filedev: buffer length %d != %d pages", len(buf), n)}
	}
	d.counters.BytesRead += int64(n) * int64(ps)
	d.counters.ReadOps++

	start := time.Now()
	byteOff := off * int64(ps)
	var err error
	if buf == nil || d.direct {
		err = d.readBounced(byteOff, int64(n)*int64(ps), buf)
	} else {
		if _, rerr := d.f.ReadAt(buf, byteOff); rerr != nil {
			err = rerr
		}
	}
	if err != nil {
		return now, &deverr.Error{Op: deverr.OpRead, LBA: off, Kind: deverr.KindEIO, Cause: err}
	}

	done := now + d.pendingSync
	d.pendingSync = 0
	if d.cfg.Measure {
		return done + sim.Duration(time.Since(start)), nil
	}
	return done + d.cost.ReadOp + sim.Duration(n)*d.cost.ReadPage, nil
}

// Discard implements blockdev.Dev: punches a hole where the filesystem
// supports it (the range reads back as zeros either way), matching the
// simulated device's TRIM semantics.
func (d *Dev) Discard(off int64, n int) {
	if n <= 0 {
		return
	}
	if err := d.checkRangeErr(deverr.OpWrite, off, n); err != nil {
		panic(err)
	}
	d.counters.DiscardOps++
	d.counters.PagesDiscarded += int64(n)
	byteOff := off * int64(d.ps)
	length := int64(n) * int64(d.ps)
	if punchHole(d.f, byteOff, length) != nil {
		if err := d.zeroFill(byteOff, length); err != nil {
			panic(err) // Discard has no error channel; a dead file is loud
		}
	}
}

// Restore writes raw page content without touching counters, timing or
// the write histogram — the hook internal/faultdev uses at power-on to
// rewind the backing file to the resolved durable image. data may be
// nil to zero the range. Out-of-range requests and syscall failures
// are recoverable conditions here (the harness surfaces them as trial
// errors), so they return typed errors instead of panicking.
func (d *Dev) Restore(off int64, n int, data []byte) error {
	if n <= 0 {
		return nil
	}
	if err := d.checkRangeErr(deverr.OpRestore, off, n); err != nil {
		return err
	}
	byteOff := off * int64(d.ps)
	if data == nil {
		if err := d.zeroFill(byteOff, int64(n)*int64(d.ps)); err != nil {
			return &deverr.Error{Op: deverr.OpRestore, LBA: off, Kind: deverr.KindEIO, Cause: err}
		}
		return nil
	}
	if len(data) != n*d.ps {
		return &deverr.Error{Op: deverr.OpRestore, LBA: off, Kind: deverr.KindBounds,
			Cause: fmt.Errorf("filedev: restore length %d != %d pages", len(data), n)}
	}
	var err error
	if d.direct {
		err = d.writeBounced(byteOff, data)
	} else if _, werr := d.f.WriteAt(data, byteOff); werr != nil {
		err = werr
	}
	if err != nil {
		return &deverr.Error{Op: deverr.OpRestore, LBA: off, Kind: deverr.KindEIO, Cause: err}
	}
	return nil
}

// SyncBarrier implements blockdev.Barrier as a thin panic wrapper over
// SyncErr.
func (d *Dev) SyncBarrier() {
	if err := d.SyncErr(); err != nil {
		panic(err)
	}
}

// SyncErr implements blockdev.Dev: under DisciplineBarrier it fsyncs
// the backing file — the device-level FLUSH the simulated stack only
// models. Its latency is charged to the next I/O (see pendingSync).
func (d *Dev) SyncErr() error {
	if d.cfg.Fsync != DisciplineBarrier {
		return nil
	}
	start := time.Now()
	if err := d.fsync(); err != nil {
		return &deverr.Error{Op: deverr.OpSync, LBA: -1, Kind: deverr.KindEIO, Cause: err}
	}
	if d.cfg.Measure {
		d.pendingSync += sim.Duration(time.Since(start))
	} else {
		d.pendingSync += d.cost.Sync
	}
	return nil
}

// Close fsyncs (unless DisciplineNone) and closes the backing file.
// The image stays on disk for inspection or Reopen.
func (d *Dev) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	if d.cfg.Fsync != DisciplineNone {
		if err := d.f.Sync(); err != nil {
			d.f.Close()
			return fmt.Errorf("filedev: %w", err)
		}
		d.fsyncs++
	}
	if err := d.f.Close(); err != nil {
		return fmt.Errorf("filedev: %w", err)
	}
	return nil
}

// Reopen closes (without fsync — durability must have come from the
// discipline) and reopens the backing file in place, preserving its
// content: the real-file analogue of recovery-by-restart. Counters and
// the write histogram survive; the Dev pointer stays valid, so a
// filesystem mounted over it keeps working.
func (d *Dev) Reopen() error {
	if !d.closed {
		if err := d.f.Close(); err != nil {
			return fmt.Errorf("filedev: %w", err)
		}
	}
	f, direct, err := openFile(d.cfg.Path, d.cfg.Direct)
	if err != nil {
		return fmt.Errorf("filedev: %w", err)
	}
	d.f, d.direct, d.closed = f, direct, false
	return nil
}

func (d *Dev) fsync() error {
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("filedev: fsync %s: %w", d.cfg.Path, err)
	}
	d.fsyncs++
	return nil
}

// writeBounced copies data through the aligned bounce buffer in chunks
// (O_DIRECT requires aligned user memory).
func (d *Dev) writeBounced(byteOff int64, data []byte) error {
	for len(data) > 0 {
		n := len(data)
		if n > len(d.bounce) {
			n = len(d.bounce)
		}
		copy(d.bounce[:n], data[:n])
		if _, err := d.f.WriteAt(d.bounce[:n], byteOff); err != nil {
			return fmt.Errorf("filedev: write %s: %w", d.cfg.Path, err)
		}
		data = data[n:]
		byteOff += int64(n)
	}
	return nil
}

// readBounced reads length bytes at byteOff through the bounce buffer,
// copying into out when non-nil.
func (d *Dev) readBounced(byteOff, length int64, out []byte) error {
	var done int64
	for done < length {
		n := length - done
		if n > int64(len(d.bounce)) {
			n = int64(len(d.bounce))
		}
		if _, err := d.f.ReadAt(d.bounce[:n], byteOff+done); err != nil {
			return fmt.Errorf("filedev: read %s: %w", d.cfg.Path, err)
		}
		if out != nil {
			copy(out[done:done+n], d.bounce[:n])
		}
		done += n
	}
	return nil
}

// zeroFill writes zeros over [byteOff, byteOff+length) using the
// bounce buffer (which writeBounced may have dirtied, so clear first).
func (d *Dev) zeroFill(byteOff, length int64) error {
	clear(d.bounce)
	var done int64
	for done < length {
		n := length - done
		if n > int64(len(d.bounce)) {
			n = int64(len(d.bounce))
		}
		if _, err := d.f.WriteAt(d.bounce[:n], byteOff+done); err != nil {
			return fmt.Errorf("filedev: write %s: %w", d.cfg.Path, err)
		}
		done += n
	}
	return nil
}

func (d *Dev) checkRangeErr(op deverr.Op, off int64, n int) error {
	if off < 0 || off+int64(n) > d.n {
		return &deverr.Error{Op: op, LBA: off, Kind: deverr.KindBounds,
			Cause: fmt.Errorf("filedev: I/O [%d,+%d) beyond device end %d", off, n, d.n)}
	}
	return nil
}

var (
	_ blockdev.Dev     = (*Dev)(nil)
	_ blockdev.Barrier = (*Dev)(nil)
)
