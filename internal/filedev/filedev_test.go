package filedev

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/sim"
)

func open(t *testing.T, cfg Config) *Dev {
	t.Helper()
	if cfg.Path == "" {
		cfg.Path = filepath.Join(t.TempDir(), "dev.img")
	}
	if cfg.Pages == 0 {
		cfg.Pages = 64
	}
	d, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func page(d *Dev, fill byte) []byte {
	b := make([]byte, d.PageSize())
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestRoundTrip(t *testing.T) {
	d := open(t, Config{})
	now := d.WriteAt(0, 3, 1, page(d, 0xAB))
	if now <= 0 {
		t.Fatalf("write completion %v not after submit", now)
	}
	buf := make([]byte, d.PageSize())
	d.ReadAt(now, 3, 1, buf)
	if !bytes.Equal(buf, page(d, 0xAB)) {
		t.Fatalf("read back wrong bytes: %x...", buf[:8])
	}
	// Unwritten pages read as zeros, like a fresh simulated device.
	d.ReadAt(now, 9, 1, buf)
	if !bytes.Equal(buf, make([]byte, d.PageSize())) {
		t.Fatalf("unwritten page not zero: %x...", buf[:8])
	}
	// Accounting-only (nil data) writes zero the range.
	d.WriteAt(now, 3, 1, nil)
	d.ReadAt(now, 3, 1, buf)
	if !bytes.Equal(buf, make([]byte, d.PageSize())) {
		t.Fatalf("nil-data write did not zero the page: %x...", buf[:8])
	}
}

func TestCountersAndHist(t *testing.T) {
	d := open(t, Config{})
	ps := int64(d.PageSize())
	d.WriteAt(0, 0, 2, nil)
	d.WriteAt(0, 1, 1, nil)
	d.ReadAt(0, 0, 3, nil)
	d.Discard(1, 1)
	got := d.Counters()
	want := blockdev.Counters{
		BytesWritten: 3 * ps, BytesRead: 3 * ps,
		WriteOps: 2, ReadOps: 1,
		DiscardOps: 1, PagesDiscarded: 1,
	}
	if got != want {
		t.Fatalf("counters = %+v, want %+v", got, want)
	}
	hist := d.WriteHist()
	if hist[0] != 1 || hist[1] != 2 || hist[2] != 0 {
		t.Fatalf("writeHist[0:3] = %v, want [1 2 0]", hist[:3])
	}
	d.ResetInstrumentation()
	if d.Counters() != (blockdev.Counters{}) || d.WriteHist()[1] != 0 || d.Fsyncs() != 0 {
		t.Fatalf("ResetInstrumentation left state behind")
	}
}

func TestFixedCostsDeterministic(t *testing.T) {
	run := func() []sim.Duration {
		d := open(t, Config{})
		var ts []sim.Duration
		now := sim.Duration(0)
		for i := 0; i < 5; i++ {
			now = d.WriteAt(now, int64(i), 1, page(d, byte(i)))
			ts = append(ts, now)
		}
		d.SyncBarrier()
		now = d.ReadAt(now, 0, 4, nil)
		ts = append(ts, now)
		return ts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timing diverged at op %d: %v vs %v", i, a[i], b[i])
		}
	}
	// The fixed write cost is op + pages*page.
	if want := DefaultWriteOpCost + DefaultWritePageCost; a[0] != want {
		t.Fatalf("first write completed at %v, want %v", a[0], want)
	}
	// The barrier's sync cost lands on the op after it.
	gap := a[5] - a[4]
	if want := DefaultSyncCost + DefaultReadOpCost + 4*DefaultReadPageCost; gap != want {
		t.Fatalf("post-barrier read cost %v, want %v", gap, want)
	}
}

func TestDisciplines(t *testing.T) {
	t.Run("none", func(t *testing.T) {
		d := open(t, Config{Fsync: DisciplineNone})
		d.WriteAt(0, 0, 1, nil)
		d.SyncBarrier()
		if d.Fsyncs() != 0 {
			t.Fatalf("DisciplineNone fsynced %d times", d.Fsyncs())
		}
	})
	t.Run("barrier", func(t *testing.T) {
		d := open(t, Config{Fsync: DisciplineBarrier})
		d.WriteAt(0, 0, 1, nil)
		if d.Fsyncs() != 0 {
			t.Fatalf("fsync before barrier")
		}
		d.SyncBarrier()
		d.SyncBarrier()
		if d.Fsyncs() != 2 {
			t.Fatalf("barrier fsyncs = %d, want 2", d.Fsyncs())
		}
	})
	t.Run("always", func(t *testing.T) {
		d := open(t, Config{Fsync: DisciplineAlways})
		d.WriteAt(0, 0, 1, nil)
		d.WriteAt(0, 1, 1, nil)
		if d.Fsyncs() != 2 {
			t.Fatalf("always fsyncs = %d, want 2", d.Fsyncs())
		}
		d.SyncBarrier() // redundant under always; must not double-count
		if d.Fsyncs() != 2 {
			t.Fatalf("SyncBarrier fsynced under DisciplineAlways")
		}
	})
}

func TestParseDiscipline(t *testing.T) {
	for s, want := range map[string]Discipline{
		"": DisciplineBarrier, "barrier": DisciplineBarrier,
		"none": DisciplineNone, "always": DisciplineAlways,
	} {
		got, err := ParseDiscipline(s)
		if err != nil || got != want {
			t.Fatalf("ParseDiscipline(%q) = %v, %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseDiscipline("flush"); err == nil {
		t.Fatalf("ParseDiscipline accepted junk")
	}
}

func TestDiscardZeroes(t *testing.T) {
	d := open(t, Config{})
	d.WriteAt(0, 2, 2, append(page(d, 0x11), page(d, 0x22)...))
	d.Discard(2, 2)
	buf := make([]byte, 2*d.PageSize())
	d.ReadAt(0, 2, 2, buf)
	if !bytes.Equal(buf, make([]byte, len(buf))) {
		t.Fatalf("discarded range not zero")
	}
}

func TestCloseReopenPreservesContent(t *testing.T) {
	d := open(t, Config{})
	now := d.WriteAt(0, 5, 1, page(d, 0x7E))
	d.SyncBarrier()
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Reopen(); err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	buf := make([]byte, d.PageSize())
	d.ReadAt(now, 5, 1, buf)
	if !bytes.Equal(buf, page(d, 0x7E)) {
		t.Fatalf("content lost across close/reopen")
	}
}

func TestOpenTruncatesPreviousImage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	d := open(t, Config{Path: path})
	d.WriteAt(0, 0, 1, page(d, 0xFF))
	d.Close()
	d2 := open(t, Config{Path: path})
	buf := make([]byte, d2.PageSize())
	d2.ReadAt(0, 0, 1, buf)
	if !bytes.Equal(buf, make([]byte, len(buf))) {
		t.Fatalf("Open did not present a fresh zero device")
	}
}

func TestDirectRequestRoundTrips(t *testing.T) {
	// O_DIRECT may or may not stick (tmpfs rejects it); either way the
	// device must work and report the outcome truthfully.
	d := open(t, Config{Direct: true})
	t.Logf("O_DIRECT in effect: %v", d.Direct())
	now := d.WriteAt(0, 1, 2, append(page(d, 0x01), page(d, 0x02)...))
	buf := make([]byte, 2*d.PageSize())
	d.ReadAt(now, 1, 2, buf)
	if buf[0] != 0x01 || buf[d.PageSize()] != 0x02 {
		t.Fatalf("direct-mode round trip failed")
	}
}

func TestMeasuredMode(t *testing.T) {
	d := open(t, Config{Measure: true})
	t0 := sim.Duration(time.Hour)
	done := d.WriteAt(t0, 0, 1, page(d, 1))
	if done <= t0 {
		t.Fatalf("measured write completion %v not after submit %v", done, t0)
	}
	d.SyncBarrier()
	done2 := d.ReadAt(done, 0, 1, nil)
	if done2 <= done {
		t.Fatalf("measured read completion %v not after %v", done2, done)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Pages: 8}); err == nil {
		t.Fatalf("Open accepted empty path")
	}
	if _, err := Open(Config{Path: filepath.Join(t.TempDir(), "x"), Pages: 0}); err == nil {
		t.Fatalf("Open accepted zero pages")
	}
	if _, err := Open(Config{Path: filepath.Join(t.TempDir(), "x"), Pages: 8, PageSize: 1000}); err == nil {
		t.Fatalf("Open accepted unaligned page size")
	}
}

func TestRangePanics(t *testing.T) {
	d := open(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-range write did not panic")
		}
	}()
	d.WriteAt(0, d.Pages(), 1, nil)
}
