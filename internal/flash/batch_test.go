package flash

import (
	"testing"
	"time"

	"ptsbench/internal/sim"
)

// Equivalence tests for the batched hot paths: the range and closed-form
// implementations must reproduce the per-page primitives exactly. These
// complement internal/core's golden fixtures (which pin whole-experiment
// results against the pre-batching implementation).

func twinFTLs(t *testing.T) (*ftl, *ftl) {
	t.Helper()
	cfg := Config{
		LogicalBytes:  32 << 20,
		PageSize:      4096,
		PagesPerBlock: 64,
		Profile:       ProfileSSD1().Scaled(4096),
	}
	cfg, err := cfg.Validate()
	if err != nil {
		t.Fatal(err)
	}
	return newFTL(cfg), newFTL(cfg)
}

func sameFTLState(t *testing.T, a, b *ftl) {
	t.Helper()
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.stats != b.stats {
		t.Fatalf("stats diverge: %+v vs %+v", a.stats, b.stats)
	}
	if a.mappedPages != b.mappedPages {
		t.Fatalf("mappedPages %d vs %d", a.mappedPages, b.mappedPages)
	}
	for i := range a.l2p {
		if a.l2p[i] != b.l2p[i] {
			t.Fatalf("l2p[%d]: %d vs %d", i, a.l2p[i], b.l2p[i])
		}
	}
	for i := range a.p2l {
		if a.p2l[i] != b.p2l[i] {
			t.Fatalf("p2l[%d]: %d vs %d", i, a.p2l[i], b.p2l[i])
		}
	}
	if len(a.freeBlocks) != len(b.freeBlocks) {
		t.Fatalf("free pool %d vs %d", len(a.freeBlocks), len(b.freeBlocks))
	}
}

// TestHostWriteRangeEquivalence drives twin FTLs through an identical
// workload — one using hostWriteRange, the other per-page hostWrite — and
// requires identical state and identical aggregated GC work, including
// phases where garbage collection triggers mid-range.
func TestHostWriteRangeEquivalence(t *testing.T) {
	ranged, paged := twinFTLs(t)
	rng := sim.NewRNG(42)
	total := ranged.logicalPages
	// Overwrite pressure: 4x the logical space in ranges of 1..300 pages
	// (many spanning several erase blocks), at random offsets.
	var written int64
	for written < 4*total {
		n := 1 + int64(rng.Uint64n(300))
		lpn := int64(rng.Uint64n(uint64(total - n)))
		wantWork := gcWork{}
		for i := int64(0); i < n; i++ {
			wantWork.add(paged.hostWrite(lpn + i))
		}
		gotWork := ranged.hostWriteRange(lpn, n)
		if gotWork != wantWork {
			t.Fatalf("range [%d,+%d): gc work %+v, per-page %+v", lpn, n, gotWork, wantWork)
		}
		written += n
	}
	sameFTLState(t, ranged, paged)
}

// TestHostWriteRangeStripedEquivalence checks that the striped range
// write attributes per-lane GC work exactly as per-page attribution
// would, and mutates the FTL identically.
func TestHostWriteRangeStripedEquivalence(t *testing.T) {
	const lanes = 16
	ranged, paged := twinFTLs(t)
	rng := sim.NewRNG(7)
	total := ranged.logicalPages
	var written int64
	for written < 3*total {
		n := 1 + int64(rng.Uint64n(200))
		lpn := int64(rng.Uint64n(uint64(total - n)))
		var want [lanes]gcWork
		for i := int64(0); i < n; i++ {
			want[(lpn+i)%lanes].add(paged.hostWrite(lpn + i))
		}
		var got [lanes]gcWork
		ranged.hostWriteRangeStriped(lpn, n, got[:])
		if got != want {
			t.Fatalf("range [%d,+%d): striped gc work %v, per-page %v", lpn, n, got, want)
		}
		written += n
	}
	sameFTLState(t, ranged, paged)
}

// TestSubmitUniformMatchesPerPageStriping cross-checks the closed-form
// per-lane page counts of submitUniform against a brute-force per-page
// computation over many (lpn, n, lanes) combinations.
func TestSubmitUniformMatchesPerPageStriping(t *testing.T) {
	for _, lanes := range []int{1, 2, 3, 4, 8, 16} {
		dev, err := NewDevice(Config{
			LogicalBytes:  32 << 20,
			PageSize:      4096,
			PagesPerBlock: 64,
			Profile:       ProfileSSD1().Scaled(4096).WithParallelism(lanes, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force model of the pre-batching per-page dispatch.
		brute := sim.NewMultiResource(lanes)
		rng := sim.NewRNG(uint64(lanes))
		var now sim.Duration
		for iter := 0; iter < 500; iter++ {
			n := 1 + int(rng.Uint64n(100))
			lpn := int64(rng.Uint64n(uint64(dev.LogicalPages() - int64(n))))
			got := dev.SubmitRead(now, lpn, n)

			fixed := dev.cfg.Profile.ReadFixed
			perPage := dev.laneReadPerPage
			svc := make([]time.Duration, lanes)
			touched := make([]bool, lanes)
			lead := int(lpn % int64(lanes))
			svc[lead] = fixed
			touched[lead] = true
			for i := 0; i < n; i++ {
				lane := int((lpn + int64(i)) % int64(lanes))
				svc[lane] += perPage
				touched[lane] = true
			}
			want := now
			for lane := 0; lane < lanes; lane++ {
				if !touched[lane] {
					continue
				}
				if end := brute.AcquireLane(lane, now, svc[lane]); end > want {
					want = end
				}
			}
			if got != want {
				t.Fatalf("lanes=%d iter=%d lpn=%d n=%d: got %v want %v", lanes, iter, lpn, n, got, want)
			}
			now = got
		}
	}
}

// TestHostWriteRangeAllocFree asserts the batched FTL write path performs
// no heap allocation per range.
func TestHostWriteRangeAllocFree(t *testing.T) {
	f, _ := twinFTLs(t)
	total := f.logicalPages
	f.sequentialFill(0, total)
	rng := sim.NewRNG(3)
	allocs := testing.AllocsPerRun(200, func() {
		lpn := int64(rng.Uint64n(uint64(total - 64)))
		f.hostWriteRange(lpn, 64)
	})
	if allocs > 0.02 {
		t.Fatalf("hostWriteRange allocates %.2f objects per call, want 0", allocs)
	}
}

// TestSequentialFillState checks the O(blocks) fill leaves a consistent,
// fully mapped FTL with exact stats.
func TestSequentialFillState(t *testing.T) {
	f, _ := twinFTLs(t)
	f.sequentialFill(0, f.logicalPages)
	if err := f.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.mappedPages != f.logicalPages {
		t.Fatalf("mapped %d of %d pages", f.mappedPages, f.logicalPages)
	}
	if f.stats.HostPagesWritten != f.logicalPages || f.stats.FlashPagesWritten != f.logicalPages {
		t.Fatalf("stats %+v, want host=flash=%d", f.stats, f.logicalPages)
	}
	// Overwriting after a fill must behave (GC keeps up, invariants hold).
	rng := sim.NewRNG(5)
	for i := int64(0); i < 2*f.logicalPages; i++ {
		f.hostWrite(int64(rng.Uint64n(uint64(f.logicalPages))))
	}
	if err := f.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
