// Package flash simulates a flash SSD at the flash-translation-layer
// level: a page-mapped FTL with log-structured writes, greedy garbage
// collection, hardware over-provisioning, TRIM, an optional write-back
// cache with background destaging, and a latency/bandwidth service-time
// model. The simulator exposes SMART-style counters so that callers can
// measure device-level write amplification (WA-D) exactly the way the
// paper does (§3.3, metric iv).
//
// The FTL mechanics are the standard model used by the SSD-performance
// literature the paper builds on (Desnoyers; Hu et al.; Stoica &
// Ailamaki): WA-D emerges from utilization, over-provisioning and the
// spatial distribution of invalidations, rather than being scripted.
package flash

import (
	"fmt"
	"time"
)

// Profile describes the performance envelope and internal organization of
// an SSD model. The three stock profiles correspond to the paper's SSD1
// (enterprise flash, Intel p3600-like), SSD2 (consumer QLC with a large
// write cache, Intel 660p-like) and SSD3 (3DXP/Optane-like, no GC).
type Profile struct {
	Name string

	// Host-visible service-time model. A request of n pages costs
	// Fixed + n*PageSize/BW on the device's FIFO resource.
	ReadFixed  time.Duration
	WriteFixed time.Duration
	ReadBW     int64 // bytes/second
	WriteBW    int64 // bytes/second

	// Internal flash timings, used for GC relocations, erases and cache
	// destaging. For cacheless drives InternalWriteBW usually equals
	// WriteBW.
	InternalReadBW  int64
	InternalWriteBW int64
	EraseTime       time.Duration // per block

	// HardwareOP is the hidden extra capacity: physical bytes =
	// logical bytes * (1 + HardwareOP).
	HardwareOP float64

	// CacheBytes, when non-zero, enables a write-back cache that absorbs
	// host writes at CacheWriteBW/CacheWriteFixed speed and destages to
	// flash at InternalWriteBW in the background.
	CacheBytes      int64
	CacheWriteBW    int64
	CacheWriteFixed time.Duration

	// NoGC marks media with in-place update capability (3DXP-like):
	// the FTL is bypassed and WA-D is identically 1.
	NoGC bool

	// Channels and Ways describe the device's internal parallelism: the
	// flash array is organized as Channels independent buses, each with
	// Ways dies, giving Channels × Ways concurrent service lanes.
	// Logical pages stripe round-robin over the lanes, and each lane
	// serves its pages at 1/(Channels × Ways) of the device bandwidths
	// above — so a single large request or many overlapping small ones
	// reach full device bandwidth, while one small request at queue
	// depth 1 occupies a single die, exactly the behaviour Roh et al.
	// exploit ("B+-tree Index Optimization by Exploiting Internal
	// Parallelism of Flash-based SSDs"). Zero values default to 1
	// (a single serial lane: the classic FIFO device model, and the
	// behaviour of every stock profile unless overridden).
	Channels int
	Ways     int
}

// WithParallelism returns a copy of the profile with the given internal
// geometry (channels × ways service lanes).
func (p Profile) WithParallelism(channels, ways int) Profile {
	p.Channels = channels
	p.Ways = ways
	return p
}

// ParallelLanes returns the number of internal service lanes
// (channels × ways, minimum 1).
func (p Profile) ParallelLanes() int {
	c, w := p.Channels, p.Ways
	if c < 1 {
		c = 1
	}
	if w < 1 {
		w = 1
	}
	return c * w
}

// Scaled returns a copy of the profile with every bandwidth and the cache
// size divided by f and every fixed per-request latency multiplied by f.
// This dilates every per-operation service time by exactly f, so a scaled
// experiment traces the same virtual-time curves as the full-size one
// with 1/f of the operations (see DESIGN.md, "Scaling model").
//
// EraseTime deliberately does NOT scale: the experiment runner shrinks
// the erase-block size together with capacity, so a scaled workload
// performs the same NUMBER of erases as the full-size one — each must
// therefore keep its full-size duration for total GC time to be
// preserved. The OP fraction is dimensionless and unchanged.
func (p Profile) Scaled(f int64) Profile {
	if f <= 1 {
		return p
	}
	q := p
	q.ReadBW /= f
	q.WriteBW /= f
	q.InternalReadBW /= f
	q.InternalWriteBW /= f
	q.CacheBytes /= f
	if q.CacheWriteBW != 0 {
		q.CacheWriteBW /= f
	}
	q.ReadFixed *= time.Duration(f)
	q.WriteFixed *= time.Duration(f)
	q.CacheWriteFixed *= time.Duration(f)
	return q
}

// ProfileSSD1 models an enterprise datacenter flash SSD (Intel DC
// p3600-class): strong sustained write bandwidth, moderate latency, a
// generous hardware over-provisioning, and no oversized write cache.
func ProfileSSD1() Profile {
	return Profile{
		Name:            "SSD1-enterprise-flash",
		ReadFixed:       90 * time.Microsecond,
		WriteFixed:      25 * time.Microsecond,
		ReadBW:          2200 << 20, // 2.2 GiB/s
		WriteBW:         550 << 20,  // 550 MiB/s sustained
		InternalReadBW:  2200 << 20,
		InternalWriteBW: 550 << 20,
		EraseTime:       2 * time.Millisecond,
		HardwareOP:      0.25,
	}
}

// ProfileSSD2 models a consumer QLC SSD (Intel 660p-class): a large
// SLC-mode write cache that absorbs bursts at high speed, with a slow QLC
// backend. Small steady writes are served from the cache; large bursts
// overwhelm it and are throttled to the QLC destage rate — the behaviour
// behind the paper's Fig 9/10 observations.
func ProfileSSD2() Profile {
	return Profile{
		Name:            "SSD2-consumer-QLC",
		ReadFixed:       90 * time.Microsecond,
		WriteFixed:      20 * time.Microsecond,
		ReadBW:          1800 << 20,
		WriteBW:         1500 << 20, // into cache
		InternalReadBW:  1800 << 20,
		InternalWriteBW: 100 << 20, // QLC program rate
		EraseTime:       3 * time.Millisecond,
		HardwareOP:      0.07,
		CacheBytes:      24 << 30, // SLC cache
		CacheWriteBW:    1500 << 20,
		CacheWriteFixed: 15 * time.Microsecond,
	}
}

// ProfileSSD3 models a 3D XPoint (Optane-class) SSD: very low latency,
// high bandwidth, in-place updates, no garbage collection, WA-D == 1.
func ProfileSSD3() Profile {
	return Profile{
		Name:            "SSD3-optane",
		ReadFixed:       10 * time.Microsecond,
		WriteFixed:      10 * time.Microsecond,
		ReadBW:          2400 << 20,
		WriteBW:         2000 << 20,
		InternalReadBW:  2400 << 20,
		InternalWriteBW: 2000 << 20,
		EraseTime:       0,
		HardwareOP:      0.02,
		NoGC:            true,
	}
}

// Config fully determines a simulated device.
type Config struct {
	// LogicalBytes is the capacity advertised to the host.
	LogicalBytes int64
	// PageSize is the flash page (and host sector) size in bytes.
	PageSize int
	// PagesPerBlock is the erase-block size in pages.
	PagesPerBlock int
	// GCLowWater and GCHighWater bound the free-block pool: garbage
	// collection starts when free blocks drop below GCLowWater and runs
	// until GCHighWater blocks are free. Zero values pick defaults.
	GCLowWater  int
	GCHighWater int

	// Streams is the number of concurrently open host write blocks,
	// modelling die/channel striping: consecutive host pages scatter
	// pseudo-randomly over the open blocks, as they do across the dies
	// of a real SSD. This decorrelates logical adjacency from physical
	// adjacency, which is what makes even sequential file churn produce
	// garbage-collection load (the analytic models the paper leans on
	// assume exactly this placement). Default 96.
	Streams int

	// GC selects the victim-selection policy (ablation knob); the
	// default is greedy (min-valid), the standard production policy.
	GC GCPolicy

	Profile Profile
}

// GCPolicy selects how garbage collection picks victim blocks.
type GCPolicy int

// GC policies.
const (
	// GCGreedy picks the closed block with the fewest valid pages.
	GCGreedy GCPolicy = iota
	// GCRandom picks a uniformly random closed block — the classic
	// baseline that shows how much greedy selection saves.
	GCRandom
)

// Validate checks the configuration for consistency and fills defaults,
// returning a normalized copy.
func (c Config) Validate() (Config, error) {
	if c.PageSize <= 0 {
		return c, fmt.Errorf("flash: PageSize must be positive, got %d", c.PageSize)
	}
	if c.PagesPerBlock <= 1 {
		return c, fmt.Errorf("flash: PagesPerBlock must be > 1, got %d", c.PagesPerBlock)
	}
	if c.LogicalBytes < int64(c.PageSize*c.PagesPerBlock)*4 {
		return c, fmt.Errorf("flash: LogicalBytes %d too small for geometry", c.LogicalBytes)
	}
	if c.Profile.HardwareOP < 0 {
		return c, fmt.Errorf("flash: negative hardware OP %v", c.Profile.HardwareOP)
	}
	if c.Profile.ReadBW <= 0 || c.Profile.WriteBW <= 0 {
		return c, fmt.Errorf("flash: profile %q has non-positive bandwidth", c.Profile.Name)
	}
	if c.Profile.InternalReadBW <= 0 {
		c.Profile.InternalReadBW = c.Profile.ReadBW
	}
	if c.Profile.InternalWriteBW <= 0 {
		c.Profile.InternalWriteBW = c.Profile.WriteBW
	}
	if c.GCLowWater <= 0 {
		c.GCLowWater = 4
	}
	if c.GCHighWater <= c.GCLowWater {
		c.GCHighWater = c.GCLowWater + 4
	}
	if c.Streams <= 0 {
		c.Streams = 96
	}
	if c.Profile.Channels < 1 {
		c.Profile.Channels = 1
	}
	if c.Profile.Ways < 1 {
		c.Profile.Ways = 1
	}
	if c.Profile.CacheBytes > 0 && c.Profile.CacheWriteBW <= 0 {
		c.Profile.CacheWriteBW = c.Profile.WriteBW
	}
	return c, nil
}

// logicalPages returns the number of host-visible pages.
func (c Config) logicalPages() int64 {
	return c.LogicalBytes / int64(c.PageSize)
}

// physicalBlocks returns the number of physical erase blocks, including
// hardware over-provisioning and the free pool reserve.
func (c Config) physicalBlocks() int {
	physPages := float64(c.logicalPages()) * (1 + c.Profile.HardwareOP)
	blocks := int(physPages) / c.PagesPerBlock
	min := int(c.logicalPages())/c.PagesPerBlock + 2*c.GCHighWater + c.Streams + 2
	if blocks < min {
		blocks = min
	}
	return blocks
}
