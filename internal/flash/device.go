package flash

import (
	"time"

	"ptsbench/internal/sim"
)

// Device is a simulated flash SSD. It combines the FTL (mapping, GC) with
// a service-time model and a lane-parallel dispatch queue, so that
// callers obtain virtual completion times for every request. Device is
// not safe for concurrent use; the whole simulation is single-threaded
// and deterministic.
//
// Internal parallelism: the device exposes Channels × Ways independent
// service lanes (see Profile). Logical pages stripe round-robin over the
// lanes, each lane running at 1/lanes of the device bandwidth, so
// requests submitted at overlapping virtual times — a host queue depth
// greater than one — genuinely overlap as long as they land on distinct
// lanes. With one lane (every stock profile's default) the device is the
// classic single FIFO of the paper's model.
//
// Device does not store data content: it accounts I/O and maintains the
// logical-to-physical state that drives garbage collection. Content
// retention for correctness tests lives one layer up, in
// internal/blockdev.
type Device struct {
	cfg  Config
	ftl  *ftl
	res  *sim.MultiResource
	noGC bool

	// Derived per-page service times. The host/internal rates are
	// device-wide; the lane* variants are the per-lane cost of one page
	// (device rate × lane count), which is what striped submission
	// charges.
	hostReadPerPage  time.Duration
	hostWritePerPage time.Duration
	intReadPerPage   time.Duration
	intWritePerPage  time.Duration
	cacheWritePage   time.Duration
	laneReadPerPage  time.Duration
	laneWritePerPage time.Duration
	laneIntRead      time.Duration
	laneIntWrite     time.Duration
	laneWork         []gcWork // per-request scratch, len = lanes

	// Write-back cache state (enabled when cacheCapPages > 0). The cache
	// absorbs host writes at cache speed and destages them to the FTL in
	// the background at the internal write rate. pending is a FIFO of
	// page writes awaiting destage.
	cacheCapPages int64
	cacheFill     int64
	pending       []pendingRange
	pendingHead   int // index of first live entry in pending
	drainCursor   sim.Duration

	noGCWrites int64 // host pages written in NoGC mode (no FTL)
}

type pendingRange struct {
	lpn int64
	n   int64
}

// NewDevice validates cfg and constructs the simulated SSD in trimmed
// (factory-fresh) state.
func NewDevice(cfg Config) (*Device, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	lanes := cfg.Profile.ParallelLanes()
	d := &Device{
		cfg:      cfg,
		res:      sim.NewMultiResource(lanes),
		noGC:     cfg.Profile.NoGC,
		laneWork: make([]gcWork, lanes),
	}
	// NoGC media still get an FTL: GC never runs for them (writes bypass
	// hostWrite), but the l2p table backs the mapped-pages bookkeeping
	// used by the utilization metrics.
	d.ftl = newFTL(cfg)
	ps := int64(cfg.PageSize)
	d.hostReadPerPage = bwTime(ps, cfg.Profile.ReadBW)
	d.hostWritePerPage = bwTime(ps, cfg.Profile.WriteBW)
	d.intReadPerPage = bwTime(ps, cfg.Profile.InternalReadBW)
	d.intWritePerPage = bwTime(ps, cfg.Profile.InternalWriteBW)
	d.laneReadPerPage = d.hostReadPerPage * time.Duration(lanes)
	d.laneWritePerPage = d.hostWritePerPage * time.Duration(lanes)
	d.laneIntRead = d.intReadPerPage * time.Duration(lanes)
	d.laneIntWrite = d.intWritePerPage * time.Duration(lanes)
	if cfg.Profile.CacheBytes > 0 {
		d.cacheCapPages = cfg.Profile.CacheBytes / ps
		d.cacheWritePage = bwTime(ps, cfg.Profile.CacheWriteBW)
	}
	return d, nil
}

// bwTime converts a byte count at a bandwidth into a duration.
func bwTime(bytes, bw int64) time.Duration {
	if bw <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / float64(bw) * float64(time.Second))
}

// Config returns the validated configuration.
func (d *Device) Config() Config { return d.cfg }

// PageSize returns the device page (sector) size in bytes.
func (d *Device) PageSize() int { return d.cfg.PageSize }

// LogicalPages returns the host-visible capacity in pages.
func (d *Device) LogicalPages() int64 { return d.cfg.logicalPages() }

// LogicalBytes returns the host-visible capacity in bytes.
func (d *Device) LogicalBytes() int64 { return d.cfg.LogicalBytes }

// Stats returns a copy of the cumulative SMART-style counters.
func (d *Device) Stats() Stats {
	s := d.ftl.stats
	if d.noGC {
		s.HostPagesWritten = d.noGCWrites
		s.FlashPagesWritten = d.noGCWrites
	}
	return s
}

// WAD returns cumulative device write amplification since construction.
func (d *Device) WAD() float64 { return d.Stats().WAD() }

// gcTime converts FTL-internal work into device time at device-wide
// internal rates (used by the write-back cache's destage engine, which
// models the drive's internal machinery as a whole).
func (d *Device) gcTime(w gcWork) time.Duration {
	return time.Duration(w.relocated)*(d.intReadPerPage+d.intWritePerPage) +
		time.Duration(w.erases)*d.cfg.Profile.EraseTime
}

// laneGCTime converts FTL-internal work into the service time of the
// single lane (die) whose write triggered it: relocations run at
// per-lane internal rates, erases take their full per-block time. With
// one lane this equals gcTime.
func (d *Device) laneGCTime(w gcWork) time.Duration {
	return time.Duration(w.relocated)*(d.laneIntRead+d.laneIntWrite) +
		time.Duration(w.erases)*d.cfg.Profile.EraseTime
}

// ParallelLanes returns the number of internal service lanes.
func (d *Device) ParallelLanes() int { return d.res.Lanes() }

// laneCount returns the number of pages of a contiguous n-page striped
// request that land on the k-th involved lane (k = 0 holds the request's
// first page): pages lpn+k, lpn+k+lanes, lpn+k+2·lanes, …
func laneCount(n, k, lanes int) int {
	return (n - k + lanes - 1) / lanes
}

// submitUniform dispatches an n-page request starting at logical page lpn
// whose pages all cost the same perPage service time: page lpn+i lands on
// lane (lpn+i) mod lanes (striped placement) and each involved lane is
// charged its page count in closed form — O(min(n, lanes)) arithmetic, no
// per-page work. The request's fixed command overhead (controller/command
// processing) is charged once, on the lane holding the first page, rather
// than per lane — so a multi-page request occupies the array for its
// data-transfer time plus a single command setup, which is what lets
// overlapping requests scale throughput up to the lane count instead of
// drowning in replicated setup costs. All involved lanes start at now;
// the request completes when its slowest lane finishes.
func (d *Device) submitUniform(now sim.Duration, lpn int64, n int,
	fixed, perPage time.Duration) sim.Duration {
	lanes := len(d.laneWork)
	if lanes == 1 {
		return d.res.AcquireLane(0, now, fixed+time.Duration(n)*perPage)
	}
	lead := int(lpn % int64(lanes))
	m := lanes
	if n < m {
		m = n
	}
	done := now
	for k := 0; k < m; k++ {
		lane := (lead + k) % lanes
		svc := time.Duration(laneCount(n, k, lanes)) * perPage
		if k == 0 {
			svc += fixed
		}
		if end := d.res.AcquireLane(lane, now, svc); end > done {
			done = end
		}
	}
	return done
}

// SubmitWrite submits a write of n pages starting at logical page lpn at
// virtual time now, and returns its completion time. Pages stripe over
// the device's internal lanes; on a single-lane device the request is
// FIFO-queued behind all previously submitted requests.
func (d *Device) SubmitWrite(now sim.Duration, lpn int64, n int) sim.Duration {
	if n <= 0 {
		return now
	}
	d.checkRange(lpn, n)
	if d.noGC {
		d.noGCWrites += int64(n)
		d.ftl.markMappedRange(lpn, int64(n))
		return d.submitUniform(now, lpn, n, d.cfg.Profile.WriteFixed, d.laneWritePerPage)
	}
	if d.cacheCapPages > 0 {
		return d.cachedWrite(now, lpn, n)
	}
	lanes := len(d.laneWork)
	if lanes == 1 {
		w := d.ftl.hostWriteRange(lpn, int64(n))
		service := d.cfg.Profile.WriteFixed +
			time.Duration(n)*d.laneWritePerPage + d.laneGCTime(w)
		return d.res.AcquireLane(0, now, service)
	}
	// Multi-lane: one FTL range write accumulates the GC work caused by
	// each page into that page's lane, so the per-die attribution (and
	// therefore every completion time) matches the per-page dispatch
	// exactly — laneGCTime is linear in the work counts.
	work := d.laneWork
	for i := range work {
		work[i] = gcWork{}
	}
	d.ftl.hostWriteRangeStriped(lpn, int64(n), work)
	lead := int(lpn % int64(lanes))
	m := lanes
	if n < m {
		m = n
	}
	done := now
	for k := 0; k < m; k++ {
		lane := (lead + k) % lanes
		svc := time.Duration(laneCount(n, k, lanes))*d.laneWritePerPage +
			d.laneGCTime(work[lane])
		if k == 0 {
			svc += d.cfg.Profile.WriteFixed
		}
		if end := d.res.AcquireLane(lane, now, svc); end > done {
			done = end
		}
	}
	return done
}

// cachedWrite implements the write-back cache path: writes land in the
// cache at cache speed; if the cache is full the request stalls while
// pages are force-destaged at the internal flash rate. This is the
// mechanism behind the consumer-SSD burst stalls in the paper's Fig 10.
func (d *Device) cachedWrite(now sim.Duration, lpn int64, n int) sim.Duration {
	d.destageTo(now)
	var stall time.Duration
	need := int64(n)
	if d.cacheFill+need > d.cacheCapPages {
		// Force-destage until the request fits (or the queue drains).
		t := now
		if d.drainCursor > t {
			t = d.drainCursor
		}
		toFree := d.cacheFill + need - d.cacheCapPages
		if toFree > d.cacheFill {
			toFree = d.cacheFill
		}
		t += d.destagePages(toFree)
		d.drainCursor = t
		if t > now {
			stall = t - now
		}
		if d.cacheFill+need > d.cacheCapPages {
			// Request larger than the whole cache: write through the
			// remainder at internal speed.
			over := d.cacheFill + need - d.cacheCapPages
			w := d.ftl.hostWriteRange(lpn, over)
			stall += time.Duration(over)*d.intWritePerPage + d.gcTime(w)
			lpn += over
			need -= over
		}
	}
	if need > 0 {
		d.pending = append(d.pending, pendingRange{lpn: lpn, n: need})
		d.cacheFill += need
		d.ftl.stats.HostPagesWritten += need
	}
	service := stall + d.cfg.Profile.CacheWriteFixed + time.Duration(need)*d.cacheWritePage
	// The write-back cache is a single controller front-end (DRAM/SLC
	// port): its bandwidth does not multiply with the flash lane count,
	// so cached writes always serialize through lane 0. On a one-lane
	// device this is exactly the classic shared FIFO.
	return d.res.AcquireLane(0, now, service)
}

// nextPendingRun returns the oldest live pending range, or nil when the
// destage queue is empty (compacting it away in that case).
func (d *Device) nextPendingRun() *pendingRange {
	for d.pendingHead < len(d.pending) && d.pending[d.pendingHead].n == 0 {
		d.pendingHead++
	}
	if d.pendingHead >= len(d.pending) {
		d.pending = d.pending[:0]
		d.pendingHead = 0
		return nil
	}
	return &d.pending[d.pendingHead]
}

// advancePendingHead retires the (fully drained) head range, compacting
// the dead prefix when it dominates the slice: a long run that appends
// and destages in lockstep never fully drains the queue, so without this
// the slice (and its dead prefix) would grow for the life of the device.
func (d *Device) advancePendingHead() {
	d.pendingHead++
	if d.pendingHead >= len(d.pending) {
		d.pending = d.pending[:0]
		d.pendingHead = 0
	} else if d.pendingHead >= 64 && d.pendingHead*2 >= len(d.pending) {
		n := copy(d.pending, d.pending[d.pendingHead:])
		d.pending = d.pending[:n]
		d.pendingHead = 0
	}
}

// destagePages moves exactly count cached pages (fewer only if the queue
// empties) to the FTL in contiguous runs and returns the flash time
// consumed. Each run is one FTL range write, so mapping updates and the
// GC check amortize over the run; total cost equals the per-page sum
// because the time conversion is linear in the work counts.
func (d *Device) destagePages(count int64) time.Duration {
	var cost time.Duration
	for count > 0 {
		r := d.nextPendingRun()
		if r == nil {
			break
		}
		k := r.n
		if k > count {
			k = count
		}
		w := d.ftl.hostWriteCachedRange(r.lpn, k)
		cost += time.Duration(k)*d.intWritePerPage + d.gcTime(w)
		r.lpn += k
		r.n -= k
		d.cacheFill -= k
		count -= k
		if r.n == 0 {
			d.advancePendingHead()
		}
	}
	return cost
}

// destageTo applies background destaging progress up to virtual time now.
func (d *Device) destageTo(now sim.Duration) {
	for d.cacheFill > 0 && d.drainCursor < now {
		r := d.nextPendingRun()
		if r == nil {
			break
		}
		// Walk the run page by page — each page's cost depends on the GC
		// it triggers and the drain stops mid-run when the cursor reaches
		// now — but commit the queue bookkeeping once per run.
		k := int64(0)
		for k < r.n && d.drainCursor < now {
			w := d.ftl.hostWriteCached(r.lpn + k)
			d.drainCursor += d.intWritePerPage + d.gcTime(w)
			k++
		}
		r.lpn += k
		r.n -= k
		d.cacheFill -= k
		if r.n == 0 {
			d.advancePendingHead()
		}
	}
	if d.drainCursor < now {
		d.drainCursor = now // cache empty: destage engine idles
	}
}

// CacheFillPages reports the number of pages currently buffered in the
// write cache (0 for cacheless devices).
func (d *Device) CacheFillPages() int64 { return d.cacheFill }

// SubmitRead submits a read of n pages starting at lpn at time now and
// returns its completion time.
func (d *Device) SubmitRead(now sim.Duration, lpn int64, n int) sim.Duration {
	if n <= 0 {
		return now
	}
	d.checkRange(lpn, n)
	d.ftl.stats.HostPagesRead += int64(n)
	return d.submitUniform(now, lpn, n, d.cfg.Profile.ReadFixed, d.laneReadPerPage)
}

// Trim discards the mapping for n pages starting at lpn (like a ranged
// blkdiscard / ATA TRIM). It is timeless: real TRIM latency is negligible
// at the granularity the harness uses it.
func (d *Device) Trim(lpn int64, n int) {
	d.checkRange(lpn, n)
	if d.noGC {
		d.ftl.unmarkMappedRange(lpn, int64(n))
		return
	}
	d.dropPendingIn(lpn, n)
	for i := 0; i < n; i++ {
		d.ftl.trim(lpn + int64(i))
	}
}

// dropPendingIn removes cached-but-not-destaged writes that fall in the
// trimmed range so they are not later destaged onto discarded LBAs.
func (d *Device) dropPendingIn(lpn int64, n int) {
	if d.cacheCapPages == 0 || d.cacheFill == 0 {
		return
	}
	end := lpn + int64(n)
	kept := d.pending[:0]
	var fill int64
	for _, r := range d.pending[d.pendingHead:] {
		if r.n == 0 {
			continue
		}
		rEnd := r.lpn + r.n
		if rEnd <= lpn || r.lpn >= end {
			kept = append(kept, r)
			fill += r.n
			continue
		}
		// Overlap: keep the non-overlapping head/tail fragments.
		if r.lpn < lpn {
			kept = append(kept, pendingRange{lpn: r.lpn, n: lpn - r.lpn})
			fill += lpn - r.lpn
		}
		if rEnd > end {
			kept = append(kept, pendingRange{lpn: end, n: rEnd - end})
			fill += rEnd - end
		}
	}
	d.pending = kept
	d.pendingHead = 0
	d.cacheFill = fill
}

// TrimAll resets the device to a factory-fresh state (blkdiscard of the
// whole drive), per the paper's "Trimmed" initial condition (§3.4).
func (d *Device) TrimAll() {
	d.pending = d.pending[:0]
	d.pendingHead = 0
	d.cacheFill = 0
	if d.noGC {
		for i := range d.ftl.l2p {
			d.ftl.l2p[i] = unmapped
		}
		d.ftl.mappedPages = 0
		return
	}
	d.ftl.trimAll()
}

// Precondition ages the device per the paper's §3.4: first write the
// whole logical address space sequentially, then issue uniformly random
// single-page writes totalling `multiple` times the logical capacity
// (the paper uses 2×) so that garbage collection reaches steady state.
// Preconditioning is timeless: it models setup work done before the
// experiment clock starts.
//
// The sequential fill uses the FTL's O(blocks) block-sequential fast
// path; the random phase — the part that actually drives GC to steady
// state, and 2× the fill's size at the paper's setting — performs real
// per-page writes.
func (d *Device) Precondition(rng *sim.RNG, multiple int) {
	if d.noGC {
		d.ftl.markMappedRange(0, d.ftl.logicalPages)
		d.noGCWrites += d.ftl.logicalPages * int64(multiple+1)
		return
	}
	total := d.ftl.logicalPages
	d.ftl.sequentialFill(0, total)
	for i := int64(0); i < total*int64(multiple); i++ {
		d.ftl.hostWrite(int64(rng.Uint64n(uint64(total))))
	}
}

// PreconditionRange ages only the LBA range [firstPage, firstPage+pages):
// sequential fill of the range, then `multiple`× its size of uniform
// random overwrites inside it. The harness uses it to precondition a
// partition while leaving software-over-provisioned space trimmed
// (Fig 7's "preconditioned partition" configuration).
func (d *Device) PreconditionRange(rng *sim.RNG, firstPage, pages int64, multiple int) {
	d.checkRange(firstPage, int(pages))
	if d.noGC {
		d.ftl.markMappedRange(firstPage, pages)
		d.noGCWrites += pages * int64(multiple+1)
		return
	}
	d.ftl.sequentialFill(firstPage, pages)
	for i := int64(0); i < pages*int64(multiple); i++ {
		d.ftl.hostWrite(firstPage + int64(rng.Uint64n(uint64(pages))))
	}
}

// Utilization returns the fraction of physical pages holding valid data.
func (d *Device) Utilization() float64 {
	phys := int64(d.ftl.numBlocks) * int64(d.ftl.pagesPerBlock)
	return float64(d.ftl.validPages()) / float64(phys)
}

// MappedPages returns the number of logical pages with live data.
func (d *Device) MappedPages() int64 { return d.ftl.mappedPages }

// BusyUntil exposes the device FIFO's next-idle time, used by the harness
// to quiesce.
func (d *Device) BusyUntil() sim.Duration { return d.res.BusyUntil() }

// BusyTotal exposes cumulative device service time (for utilization
// reporting).
func (d *Device) BusyTotal() sim.Duration { return d.res.BusyTotal() }

// CheckInvariants verifies FTL internal consistency (tests only).
func (d *Device) CheckInvariants() error {
	if d.noGC {
		return nil
	}
	return d.ftl.checkInvariants()
}

// MaxEraseCount returns the largest per-block erase count — a wear
// indicator analogous to a SMART media-wear attribute.
func (d *Device) MaxEraseCount() int {
	max := int32(0)
	for _, e := range d.ftl.eraseCount {
		if e > max {
			max = e
		}
	}
	return int(max)
}

func (d *Device) checkRange(lpn int64, n int) {
	if lpn < 0 || lpn+int64(n) > d.ftl.logicalPages {
		panic("flash: I/O beyond device capacity")
	}
}
