package flash

import (
	"testing"
	"testing/quick"
	"time"

	"ptsbench/internal/sim"
)

// testConfig returns a small device: 64 MiB logical, 4 KiB pages,
// 64-page (256 KiB) blocks, 25% hardware OP.
func testConfig() Config {
	return Config{
		LogicalBytes:  64 << 20,
		PageSize:      4096,
		PagesPerBlock: 64,
		Profile:       testProfile(),
	}
}

func testProfile() Profile {
	return Profile{
		Name:            "test",
		ReadFixed:       10 * time.Microsecond,
		WriteFixed:      10 * time.Microsecond,
		ReadBW:          1 << 30,
		WriteBW:         512 << 20,
		InternalReadBW:  1 << 30,
		InternalWriteBW: 512 << 20,
		EraseTime:       time.Millisecond,
		HardwareOP:      0.25,
	}
}

func newTestDevice(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(c *Config) {}, true},
		{"zero page size", func(c *Config) { c.PageSize = 0 }, false},
		{"one page per block", func(c *Config) { c.PagesPerBlock = 1 }, false},
		{"tiny capacity", func(c *Config) { c.LogicalBytes = 4096 }, false},
		{"negative OP", func(c *Config) { c.Profile.HardwareOP = -0.1 }, false},
		{"zero write bw", func(c *Config) { c.Profile.WriteBW = 0 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(&cfg)
			_, err := cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := testConfig()
	cfg.Profile.InternalReadBW = 0
	cfg.Profile.InternalWriteBW = 0
	got, err := cfg.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile.InternalReadBW != got.Profile.ReadBW {
		t.Fatal("InternalReadBW default not applied")
	}
	if got.GCLowWater <= 0 || got.GCHighWater <= got.GCLowWater {
		t.Fatalf("watermark defaults wrong: %d/%d", got.GCLowWater, got.GCHighWater)
	}
}

func TestProfileScaled(t *testing.T) {
	p := ProfileSSD1()
	s := p.Scaled(128)
	if s.WriteBW != p.WriteBW/128 || s.ReadBW != p.ReadBW/128 {
		t.Fatal("bandwidth not scaled down")
	}
	if s.HardwareOP != p.HardwareOP {
		t.Fatal("OP fraction must not scale")
	}
	// Fixed latencies dilate by f so per-op service times scale
	// uniformly; the erase time stays (the erase COUNT is preserved by
	// the geometry scaling, see Scaled's doc comment).
	if s.ReadFixed != p.ReadFixed*128 || s.WriteFixed != p.WriteFixed*128 {
		t.Fatal("fixed latencies must scale up by f")
	}
	if s.EraseTime != p.EraseTime {
		t.Fatal("erase time must not scale")
	}
	if same := p.Scaled(1); same.WriteBW != p.WriteBW {
		t.Fatal("Scaled(1) must be identity")
	}
}

func TestWriteReadCompletionTimes(t *testing.T) {
	d := newTestDevice(t, testConfig())
	// One 4 KiB write: fixed 10µs + 4096B at 512 MiB/s ≈ 7.6µs.
	done := d.SubmitWrite(0, 0, 1)
	if done <= 10*time.Microsecond || done > 30*time.Microsecond {
		t.Fatalf("write completion %v out of expected range", done)
	}
	// A read submitted before the write completes queues behind it.
	rdone := d.SubmitRead(0, 0, 1)
	if rdone <= done {
		t.Fatalf("read should queue behind write: %v <= %v", rdone, done)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := newTestDevice(t, testConfig())
	d.SubmitWrite(0, 0, 10)
	d.SubmitRead(0, 0, 4)
	s := d.Stats()
	if s.HostPagesWritten != 10 {
		t.Fatalf("HostPagesWritten = %d, want 10", s.HostPagesWritten)
	}
	if s.HostPagesRead != 4 {
		t.Fatalf("HostPagesRead = %d, want 4", s.HostPagesRead)
	}
	if s.FlashPagesWritten != 10 {
		t.Fatalf("FlashPagesWritten = %d, want 10 (no GC yet)", s.FlashPagesWritten)
	}
	if got := s.WAD(); got != 1 {
		t.Fatalf("WAD = %v, want 1 before GC", got)
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{HostPagesWritten: 10, FlashPagesWritten: 25, Erases: 3}
	b := Stats{HostPagesWritten: 4, FlashPagesWritten: 10, Erases: 1}
	got := a.Sub(b)
	if got.HostPagesWritten != 6 || got.FlashPagesWritten != 15 || got.Erases != 2 {
		t.Fatalf("Sub wrong: %+v", got)
	}
}

func TestWADEmptyIsOne(t *testing.T) {
	if (Stats{}).WAD() != 1 {
		t.Fatal("WAD of zero stats must be 1")
	}
}

// fillSequential writes the whole logical space once, in order.
func fillSequential(d *Device) sim.Duration {
	var now sim.Duration
	pages := d.LogicalPages()
	const chunk = 256
	for lpn := int64(0); lpn < pages; lpn += chunk {
		n := chunk
		if lpn+int64(n) > pages {
			n = int(pages - lpn)
		}
		now = d.SubmitWrite(now, lpn, n)
	}
	return now
}

func TestSequentialOverwriteLowWAD(t *testing.T) {
	d := newTestDevice(t, testConfig())
	now := fillSequential(d)
	// Overwrite sequentially twice more: invalidations are perfectly
	// aligned with blocks, so GC finds empty victims and WA-D stays ~1.
	for pass := 0; pass < 2; pass++ {
		pages := d.LogicalPages()
		for lpn := int64(0); lpn < pages; lpn += 256 {
			n := int64(256)
			if lpn+n > pages {
				n = pages - lpn
			}
			now = d.SubmitWrite(now, lpn, int(n))
		}
	}
	if wad := d.WAD(); wad > 1.05 {
		t.Fatalf("sequential overwrite WA-D = %v, want ~1", wad)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOverwriteElevatedWAD(t *testing.T) {
	d := newTestDevice(t, testConfig())
	fillSequential(d)
	before := d.Stats()
	rng := sim.NewRNG(1)
	pages := d.LogicalPages()
	var now sim.Duration
	// Random single-page overwrites totalling 3x the logical capacity.
	for i := int64(0); i < pages*3; i++ {
		now = d.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
	}
	delta := d.Stats().Sub(before)
	wad := delta.WAD()
	// With 25% OP and 100% utilization, greedy GC under uniform random
	// traffic should give WA-D in a 1.5–3.5 band (theory ≈ 2).
	if wad < 1.3 || wad > 3.5 {
		t.Fatalf("random overwrite WA-D = %v, want in [1.3, 3.5]", wad)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWADIncreasesWithUtilization(t *testing.T) {
	// Writing only half the LBA space leaves the rest as implicit OP,
	// so WA-D must be lower than at full utilization.
	run := func(fraction float64) float64 {
		d := newTestDevice(t, testConfig())
		pages := int64(float64(d.LogicalPages()) * fraction)
		rng := sim.NewRNG(7)
		var now sim.Duration
		for lpn := int64(0); lpn < pages; lpn += 64 {
			now = d.SubmitWrite(now, lpn, 64)
		}
		before := d.Stats()
		for i := int64(0); i < pages*3; i++ {
			now = d.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
		}
		return d.Stats().Sub(before).WAD()
	}
	low := run(0.5)
	high := run(1.0)
	if low >= high {
		t.Fatalf("WA-D at 50%% util (%v) should be below WA-D at 100%% (%v)", low, high)
	}
	if low > 1.6 {
		t.Fatalf("WA-D at 50%% utilization = %v, want modest (<1.6)", low)
	}
}

func TestMoreOPLowersWAD(t *testing.T) {
	run := func(op float64) float64 {
		cfg := testConfig()
		cfg.Profile.HardwareOP = op
		d := newTestDevice(t, cfg)
		fillSequential(d)
		before := d.Stats()
		rng := sim.NewRNG(3)
		pages := d.LogicalPages()
		var now sim.Duration
		for i := int64(0); i < pages*3; i++ {
			now = d.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
		}
		return d.Stats().Sub(before).WAD()
	}
	small := run(0.07)
	large := run(0.50)
	if large >= small {
		t.Fatalf("WA-D with 50%% OP (%v) should be below WA-D with 7%% OP (%v)", large, small)
	}
}

func TestTrimAllResets(t *testing.T) {
	d := newTestDevice(t, testConfig())
	fillSequential(d)
	if d.MappedPages() != d.LogicalPages() {
		t.Fatalf("mapped %d, want full", d.MappedPages())
	}
	d.TrimAll()
	if d.MappedPages() != 0 {
		t.Fatalf("mapped %d after TrimAll, want 0", d.MappedPages())
	}
	if d.Utilization() != 0 {
		t.Fatalf("utilization %v after TrimAll, want 0", d.Utilization())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// After a full trim, sequential refill incurs no extra GC writes.
	before := d.Stats()
	fillSequential(d)
	delta := d.Stats().Sub(before)
	if delta.WAD() > 1.01 {
		t.Fatalf("refill after trim WA-D = %v, want ~1", delta.WAD())
	}
}

func TestTrimRange(t *testing.T) {
	d := newTestDevice(t, testConfig())
	d.SubmitWrite(0, 0, 128)
	if d.MappedPages() != 128 {
		t.Fatalf("mapped %d, want 128", d.MappedPages())
	}
	d.Trim(0, 64)
	if d.MappedPages() != 64 {
		t.Fatalf("mapped %d after trim, want 64", d.MappedPages())
	}
	if got := d.Stats().TrimmedPages; got != 64 {
		t.Fatalf("TrimmedPages = %d, want 64", got)
	}
	// Trimming unmapped pages is a no-op.
	d.Trim(0, 64)
	if d.MappedPages() != 64 {
		t.Fatal("double trim changed mapping")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPreconditionReachesFullUtilization(t *testing.T) {
	d := newTestDevice(t, testConfig())
	d.Precondition(sim.NewRNG(1), 2)
	if d.MappedPages() != d.LogicalPages() {
		t.Fatalf("precondition left %d mapped, want %d", d.MappedPages(), d.LogicalPages())
	}
	// Preconditioning must have triggered GC (random phase writes 2x
	// capacity into a full drive).
	if d.Stats().Relocations == 0 {
		t.Fatal("precondition triggered no GC relocations")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPreconditionedVsTrimmedFirstWrites(t *testing.T) {
	// On a trimmed device the first burst of random writes has WA-D ~1;
	// on a preconditioned device even the first write is an overwrite
	// and GC starts immediately. This is the paper's pitfall #3 at the
	// device level.
	trimmed := newTestDevice(t, testConfig())
	prec := newTestDevice(t, testConfig())
	prec.Precondition(sim.NewRNG(5), 2)
	precBase := prec.Stats()

	rng1 := sim.NewRNG(9)
	rng2 := sim.NewRNG(9)
	pages := trimmed.LogicalPages()
	var t1, t2 sim.Duration
	burst := pages / 4
	for i := int64(0); i < burst; i++ {
		t1 = trimmed.SubmitWrite(t1, int64(rng1.Uint64n(uint64(pages))), 1)
		t2 = prec.SubmitWrite(t2, int64(rng2.Uint64n(uint64(pages))), 1)
	}
	wTrim := trimmed.WAD()
	wPrec := prec.Stats().Sub(precBase).WAD()
	if wTrim > 1.05 {
		t.Fatalf("trimmed first-burst WA-D = %v, want ~1", wTrim)
	}
	if wPrec < 1.2 {
		t.Fatalf("preconditioned first-burst WA-D = %v, want > 1.2", wPrec)
	}
	if t2 <= t1 {
		t.Fatalf("preconditioned device should be slower: trimmed %v, prec %v", t1, t2)
	}
}

func TestNoGCDevice(t *testing.T) {
	cfg := testConfig()
	cfg.Profile = ProfileSSD3()
	cfg.Profile.ReadBW = 1 << 30 // keep the test device small/fast
	cfg.Profile.WriteBW = 1 << 30
	cfg.Profile.InternalReadBW = 1 << 30
	cfg.Profile.InternalWriteBW = 1 << 30
	d := newTestDevice(t, cfg)
	rng := sim.NewRNG(2)
	pages := d.LogicalPages()
	var now sim.Duration
	for i := int64(0); i < pages*2; i++ {
		now = d.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
	}
	if wad := d.WAD(); wad != 1 {
		t.Fatalf("NoGC device WAD = %v, want exactly 1", wad)
	}
	d.Precondition(sim.NewRNG(3), 2)
	if wad := d.WAD(); wad != 1 {
		t.Fatalf("NoGC device WAD after precondition = %v, want 1", wad)
	}
	d.TrimAll()
	if d.MappedPages() != 0 {
		t.Fatal("NoGC TrimAll failed")
	}
}

func TestWriteCacheAbsorbsBursts(t *testing.T) {
	cfg := testConfig()
	cfg.Profile.CacheBytes = 8 << 20 // 2048-page cache
	cfg.Profile.CacheWriteBW = 2 << 30
	cfg.Profile.CacheWriteFixed = 5 * time.Microsecond
	cfg.Profile.InternalWriteBW = 64 << 20 // slow backend
	d := newTestDevice(t, cfg)

	// A burst that fits in the cache completes at cache speed.
	done := d.SubmitWrite(0, 0, 1024)
	cacheOnly := cfg.Profile.CacheWriteFixed + time.Duration(1024)*bwTime(4096, cfg.Profile.CacheWriteBW)
	if done > cacheOnly*2 {
		t.Fatalf("cached burst took %v, expected ≈%v", done, cacheOnly)
	}
	if d.CacheFillPages() != 1024 {
		t.Fatalf("cache fill %d, want 1024", d.CacheFillPages())
	}
	// Much later, the cache has destaged in the background.
	d.SubmitRead(10*time.Second, 0, 1)
	d.destageTo(10 * time.Second)
	if d.CacheFillPages() != 0 {
		t.Fatalf("cache fill %d after idle, want 0", d.CacheFillPages())
	}
	if got := d.Stats().FlashPagesWritten; got != 1024 {
		t.Fatalf("flash pages %d after destage, want 1024", got)
	}
}

func TestWriteCacheOverflowStalls(t *testing.T) {
	cfg := testConfig()
	cfg.Profile.CacheBytes = 4 << 20 // 1024-page cache
	cfg.Profile.CacheWriteBW = 2 << 30
	cfg.Profile.InternalWriteBW = 32 << 20 // very slow backend
	d := newTestDevice(t, cfg)

	// First burst fills the cache.
	done1 := d.SubmitWrite(0, 0, 1024)
	// Second immediate burst must wait for destaging at backend speed.
	done2 := d.SubmitWrite(done1, 1024, 1024)
	backendPerPage := bwTime(4096, cfg.Profile.InternalWriteBW)
	minStall := time.Duration(512) * backendPerPage // at least half must destage
	if done2-done1 < minStall {
		t.Fatalf("overflow burst finished too fast: %v, want >= %v stall", done2-done1, minStall)
	}
	if d.Stats().HostPagesWritten != 2048 {
		t.Fatalf("host pages %d, want 2048", d.Stats().HostPagesWritten)
	}
}

func TestWriteCacheHugeRequestWritesThrough(t *testing.T) {
	cfg := testConfig()
	cfg.Profile.CacheBytes = 1 << 20 // 256-page cache
	cfg.Profile.CacheWriteBW = 2 << 30
	d := newTestDevice(t, cfg)
	// Request of 4x the cache size: must not lose pages.
	d.SubmitWrite(0, 0, 1024)
	d.destageTo(time.Hour)
	if got := d.Stats().FlashPagesWritten; got != 1024 {
		t.Fatalf("flash pages %d, want 1024", got)
	}
	if d.MappedPages() != 1024 {
		t.Fatalf("mapped %d, want 1024", d.MappedPages())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrimDropsPendingCacheWrites(t *testing.T) {
	cfg := testConfig()
	cfg.Profile.CacheBytes = 8 << 20
	cfg.Profile.CacheWriteBW = 2 << 30
	d := newTestDevice(t, cfg)
	d.SubmitWrite(0, 0, 512)
	d.Trim(100, 100)
	d.destageTo(time.Hour)
	// 512 admitted, 100 dropped by trim: 412 destaged.
	if got := d.Stats().FlashPagesWritten; got != 412 {
		t.Fatalf("flash pages %d, want 412", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := newTestDevice(t, testConfig())
	for _, f := range []func(){
		func() { d.SubmitWrite(0, -1, 1) },
		func() { d.SubmitWrite(0, d.LogicalPages(), 1) },
		func() { d.SubmitRead(0, d.LogicalPages()-1, 2) },
		func() { d.Trim(-5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-range I/O")
				}
			}()
			f()
		}()
	}
}

func TestZeroLengthIO(t *testing.T) {
	d := newTestDevice(t, testConfig())
	if got := d.SubmitWrite(time.Second, 0, 0); got != time.Second {
		t.Fatalf("zero write advanced time: %v", got)
	}
	if got := d.SubmitRead(time.Second, 0, 0); got != time.Second {
		t.Fatalf("zero read advanced time: %v", got)
	}
}

func TestMaxEraseCountGrows(t *testing.T) {
	d := newTestDevice(t, testConfig())
	fillSequential(d)
	rng := sim.NewRNG(4)
	var now sim.Duration
	pages := d.LogicalPages()
	for i := int64(0); i < pages*2; i++ {
		now = d.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
	}
	if d.MaxEraseCount() == 0 {
		t.Fatal("expected erases after sustained overwrites")
	}
}

// Property: after any sequence of writes/trims, FTL invariants hold and
// WA-D >= 1 (flash can never write fewer pages than the host sent, modulo
// cacheless operation).
func TestFTLInvariantProperty(t *testing.T) {
	cfg := Config{
		LogicalBytes:  4 << 20, // small for speed
		PageSize:      4096,
		PagesPerBlock: 16,
		Profile:       testProfile(),
	}
	f := func(seed uint64, ops []uint16) bool {
		d, err := NewDevice(cfg)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)
		pages := d.LogicalPages()
		var now sim.Duration
		for _, op := range ops {
			lpn := int64(rng.Uint64n(uint64(pages)))
			n := int(op%8) + 1
			if lpn+int64(n) > pages {
				n = int(pages - lpn)
			}
			switch op % 5 {
			case 0, 1, 2:
				now = d.SubmitWrite(now, lpn, n)
			case 3:
				d.Trim(lpn, n)
			case 4:
				now = d.SubmitRead(now, lpn, n)
			}
		}
		if err := d.CheckInvariants(); err != nil {
			t.Logf("invariant violated: %v", err)
			return false
		}
		s := d.Stats()
		return s.FlashPagesWritten >= s.HostPagesWritten-s.TrimmedPages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy GC with ample OP keeps WA-D bounded under random load.
func TestWADBoundedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := Config{
			LogicalBytes:  8 << 20,
			PageSize:      4096,
			PagesPerBlock: 32,
			Profile:       testProfile(), // 25% OP
		}
		d, err := NewDevice(cfg)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)
		pages := d.LogicalPages()
		var now sim.Duration
		for i := int64(0); i < pages*4; i++ {
			now = d.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
		}
		wad := d.WAD()
		return wad >= 1 && wad < 4.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Stats, sim.Duration) {
		d, _ := NewDevice(testConfig())
		rng := sim.NewRNG(11)
		pages := d.LogicalPages()
		var now sim.Duration
		for i := int64(0); i < pages*2; i++ {
			now = d.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
		}
		return d.Stats(), now
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("simulation not deterministic: %+v@%v vs %+v@%v", s1, t1, s2, t2)
	}
}

func TestStockProfilesConstruct(t *testing.T) {
	for _, p := range []Profile{ProfileSSD1(), ProfileSSD2(), ProfileSSD3()} {
		cfg := Config{
			LogicalBytes:  64 << 20,
			PageSize:      4096,
			PagesPerBlock: 64,
			Profile:       p.Scaled(4096), // scale down the stock bandwidths
		}
		if _, err := NewDevice(cfg); err != nil {
			t.Fatalf("profile %s: %v", p.Name, err)
		}
	}
}
