package flash

// This file implements the flash translation layer: a page-level mapping
// with log-structured writes and greedy garbage collection. The FTL layer
// is pure logic — it counts work (programs, relocations, erases) and the
// Device layer converts work into virtual time.

import (
	"fmt"

	"ptsbench/internal/sim"
)

const (
	unmapped = int32(-1)
)

type blockState uint8

const (
	blockFree blockState = iota
	blockOpen
	blockClosed
)

// gcWork summarizes the internal work caused by one FTL operation, so the
// device can convert it to service time.
type gcWork struct {
	relocated int // valid pages moved during GC
	erases    int // blocks erased
}

func (w *gcWork) add(o gcWork) {
	w.relocated += o.relocated
	w.erases += o.erases
}

type ftl struct {
	pageSize      int
	pagesPerBlock int
	numBlocks     int
	logicalPages  int64

	gcLowWater  int
	gcHighWater int

	l2p        []int32 // logical page -> physical page, or unmapped
	p2l        []int32 // physical page -> logical page, or unmapped
	validCount []int32 // valid pages per block
	writePtr   []int32 // next program offset per block
	state      []blockState
	eraseCount []int32 // wear per block

	freeBlocks []int32
	// hostOpen are the concurrently open host-write blocks (die
	// striping); each page write lands on a pseudo-random stream.
	hostOpen []int32
	gcOpen   int32 // block receiving GC relocations, -1 if none
	rng      *sim.RNG

	// Greedy victim selection: buckets[v] holds closed blocks with
	// exactly v valid pages; bucketPos[b] is b's index in its bucket
	// (-1 when b is not bucketed). minBucket is a lazy lower bound on
	// the first non-empty bucket.
	buckets   [][]int32
	bucketPos []int32
	minBucket int
	gcPolicy  GCPolicy

	mappedPages int64 // logical pages with a valid mapping

	stats Stats
}

// Stats are the device's SMART-style cumulative counters. All counts are
// in pages except Erases (blocks).
type Stats struct {
	HostPagesWritten  int64
	HostPagesRead     int64
	FlashPagesWritten int64 // host-destined programs + GC relocations
	Relocations       int64 // GC-moved valid pages
	Erases            int64
	TrimmedPages      int64
}

// WAD returns the cumulative device-level write amplification: flash
// pages programmed per host page written. It returns 1 when no host
// writes have occurred.
func (s Stats) WAD() float64 {
	if s.HostPagesWritten == 0 {
		return 1
	}
	return float64(s.FlashPagesWritten) / float64(s.HostPagesWritten)
}

// Sub returns s - o, for computing per-interval deltas.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		HostPagesWritten:  s.HostPagesWritten - o.HostPagesWritten,
		HostPagesRead:     s.HostPagesRead - o.HostPagesRead,
		FlashPagesWritten: s.FlashPagesWritten - o.FlashPagesWritten,
		Relocations:       s.Relocations - o.Relocations,
		Erases:            s.Erases - o.Erases,
		TrimmedPages:      s.TrimmedPages - o.TrimmedPages,
	}
}

// Add returns s + o, for aggregating per-shard devices.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		HostPagesWritten:  s.HostPagesWritten + o.HostPagesWritten,
		HostPagesRead:     s.HostPagesRead + o.HostPagesRead,
		FlashPagesWritten: s.FlashPagesWritten + o.FlashPagesWritten,
		Relocations:       s.Relocations + o.Relocations,
		Erases:            s.Erases + o.Erases,
		TrimmedPages:      s.TrimmedPages + o.TrimmedPages,
	}
}

func newFTL(cfg Config) *ftl {
	nb := cfg.physicalBlocks()
	ppb := cfg.PagesPerBlock
	f := &ftl{
		pageSize:      cfg.PageSize,
		pagesPerBlock: ppb,
		numBlocks:     nb,
		logicalPages:  cfg.logicalPages(),
		gcLowWater:    cfg.GCLowWater,
		gcHighWater:   cfg.GCHighWater,
		l2p:           make([]int32, cfg.logicalPages()),
		p2l:           make([]int32, nb*ppb),
		validCount:    make([]int32, nb),
		writePtr:      make([]int32, nb),
		state:         make([]blockState, nb),
		eraseCount:    make([]int32, nb),
		buckets:       make([][]int32, ppb+1),
		bucketPos:     make([]int32, nb),
		hostOpen:      make([]int32, cfg.Streams),
		gcOpen:        -1,
		rng:           sim.NewRNG(0xF7A5DE71CE),
		gcPolicy:      cfg.GC,
	}
	for i := range f.hostOpen {
		f.hostOpen[i] = -1
	}
	for i := range f.l2p {
		f.l2p[i] = unmapped
	}
	for i := range f.p2l {
		f.p2l[i] = unmapped
	}
	for i := range f.bucketPos {
		f.bucketPos[i] = -1
	}
	f.freeBlocks = make([]int32, 0, nb)
	for b := nb - 1; b >= 0; b-- {
		f.freeBlocks = append(f.freeBlocks, int32(b))
	}
	f.minBucket = ppb + 1
	return f
}

// bucketInsert places closed block b into the bucket for its valid count.
func (f *ftl) bucketInsert(b int32) {
	v := f.validCount[b]
	f.bucketPos[b] = int32(len(f.buckets[v]))
	f.buckets[v] = append(f.buckets[v], b)
	if int(v) < f.minBucket {
		f.minBucket = int(v)
	}
}

// bucketRemove removes block b from its current bucket.
func (f *ftl) bucketRemove(b int32) {
	v := f.validCount[b]
	pos := f.bucketPos[b]
	bucket := f.buckets[v]
	last := bucket[len(bucket)-1]
	bucket[pos] = last
	f.bucketPos[last] = pos
	f.buckets[v] = bucket[:len(bucket)-1]
	f.bucketPos[b] = -1
}

// invalidate marks physical page ppn stale and updates bucket placement.
func (f *ftl) invalidate(ppn int32) {
	b := ppn / int32(f.pagesPerBlock)
	if f.p2l[ppn] == unmapped {
		return
	}
	f.p2l[ppn] = unmapped
	if f.state[b] == blockClosed {
		f.bucketRemove(b)
		f.validCount[b]--
		f.bucketInsert(b)
	} else {
		f.validCount[b]--
	}
}

// popFreeBlock takes a block from the free pool and opens it.
func (f *ftl) popFreeBlock() int32 {
	if len(f.freeBlocks) == 0 {
		panic("flash: free block pool exhausted (GC invariant broken)")
	}
	b := f.freeBlocks[len(f.freeBlocks)-1]
	f.freeBlocks = f.freeBlocks[:len(f.freeBlocks)-1]
	f.state[b] = blockOpen
	f.writePtr[b] = 0
	return b
}

// closeBlock transitions a full open block into the GC candidate set.
func (f *ftl) closeBlock(b int32) {
	f.state[b] = blockClosed
	f.bucketInsert(b)
}

// program writes one page into the given frontier (host or GC), returning
// the physical page used. The frontier is replaced from the free pool as
// blocks fill. The bool reports whether lpn was programmed for GC.
func (f *ftl) program(frontier *int32, lpn int64) int32 {
	if *frontier < 0 || f.writePtr[*frontier] >= int32(f.pagesPerBlock) {
		if *frontier >= 0 {
			f.closeBlock(*frontier)
		}
		*frontier = f.popFreeBlock()
	}
	b := *frontier
	ppn := b*int32(f.pagesPerBlock) + f.writePtr[b]
	f.writePtr[b]++
	f.p2l[ppn] = int32(lpn)
	f.validCount[b]++
	f.l2p[lpn] = ppn
	return ppn
}

// writeOne performs the mapping update and flash program for one
// host-destined page write: invalidate the old version (if any), program
// the new one at a pseudo-randomly chosen stream frontier (modelling die
// striping). It is the single page-write primitive behind every direct,
// cached and ranged host-write path.
func (f *ftl) writeOne(lpn int64) {
	if old := f.l2p[lpn]; old != unmapped {
		f.invalidate(old)
	} else {
		f.mappedPages++
	}
	f.program(&f.hostOpen[f.rng.Intn(len(f.hostOpen))], lpn)
	f.stats.FlashPagesWritten++
}

func (f *ftl) checkLPN(lpn int64) {
	if lpn < 0 || lpn >= f.logicalPages {
		panic("flash: logical page out of range")
	}
}

func (f *ftl) checkLPNRange(lpn, n int64) {
	if lpn < 0 || n < 0 || lpn+n > f.logicalPages {
		panic("flash: logical page range out of range")
	}
}

// hostWrite performs a host-destined page write at logical page lpn and
// returns the internal GC work it triggered.
func (f *ftl) hostWrite(lpn int64) gcWork {
	f.checkLPN(lpn)
	f.writeOne(lpn)
	f.stats.HostPagesWritten++
	return f.maybeGC()
}

// hostWriteCached is hostWrite for pages arriving via the write cache:
// the host-page counter was already incremented at cache admission, so
// only the flash program is accounted here.
func (f *ftl) hostWriteCached(lpn int64) gcWork {
	f.checkLPN(lpn)
	f.writeOne(lpn)
	return f.maybeGC()
}

// hostWriteRange performs n consecutive host page writes starting at lpn
// and returns the aggregated GC work. State transitions are identical to
// n sequential hostWrite calls — pages program in ascending order and the
// GC trigger is evaluated after every program (a single comparison while
// the free pool is healthy) — but the bounds check and the host-page
// counter update amortize over the range.
func (f *ftl) hostWriteRange(lpn, n int64) gcWork {
	f.checkLPNRange(lpn, n)
	var work gcWork
	for i := int64(0); i < n; i++ {
		f.writeOne(lpn + i)
		if len(f.freeBlocks) < f.gcLowWater {
			work.add(f.maybeGC())
		}
	}
	f.stats.HostPagesWritten += n
	return work
}

// hostWriteCachedRange is hostWriteRange for destaged cache pages (the
// host-page counter was already incremented at cache admission).
func (f *ftl) hostWriteCachedRange(lpn, n int64) gcWork {
	f.checkLPNRange(lpn, n)
	var work gcWork
	for i := int64(0); i < n; i++ {
		f.writeOne(lpn + i)
		if len(f.freeBlocks) < f.gcLowWater {
			work.add(f.maybeGC())
		}
	}
	return work
}

// hostWriteRangeStriped is hostWriteRange for striped multi-lane
// dispatch: the GC work caused by page lpn+i accumulates into
// perLane[(lpn+i) mod len(perLane)], preserving the per-die attribution
// of per-page dispatch (the device converts each lane's work to service
// time with a linear function, so aggregation is exact).
func (f *ftl) hostWriteRangeStriped(lpn, n int64, perLane []gcWork) {
	f.checkLPNRange(lpn, n)
	lanes := int64(len(perLane))
	for i := int64(0); i < n; i++ {
		f.writeOne(lpn + i)
		if len(f.freeBlocks) < f.gcLowWater {
			perLane[(lpn+i)%lanes].add(f.maybeGC())
		}
	}
	f.stats.HostPagesWritten += n
}

// markMappedRange records presence for [lpn, lpn+n) without any flash
// machinery — the NoGC (in-place update) write path, where only the
// mapped-pages utilization bookkeeping applies.
func (f *ftl) markMappedRange(lpn, n int64) {
	f.checkLPNRange(lpn, n)
	for p := lpn; p < lpn+n; p++ {
		if f.l2p[p] == unmapped {
			f.l2p[p] = 0 // presence marker
			f.mappedPages++
		}
	}
}

// unmarkMappedRange drops presence for [lpn, lpn+n) (NoGC trim).
func (f *ftl) unmarkMappedRange(lpn, n int64) {
	f.checkLPNRange(lpn, n)
	for p := lpn; p < lpn+n; p++ {
		if f.l2p[p] != unmapped {
			f.l2p[p] = unmapped
			f.mappedPages--
		}
	}
}

// sequentialFill lays pages [first, first+n) into freshly opened blocks
// in LBA order — the O(blocks) fast path behind Precondition's
// sequential-fill phase. Each block is claimed from the free pool, filled
// with consecutive logical pages in one pass (block-sequential placement
// rather than per-page pseudo-random striping: for preconditioning the
// two are equivalent, because the subsequent random-overwrite phase is
// what sets the steady-state invalidation pattern), closed, and the GC
// trigger evaluated once per block — the only points at which the free
// pool changes.
func (f *ftl) sequentialFill(first, n int64) {
	f.checkLPNRange(first, n)
	ppb := int64(f.pagesPerBlock)
	lpn := first
	end := first + n
	for lpn < end {
		b := f.popFreeBlock()
		base := int64(b) * ppb
		count := ppb
		if end-lpn < count {
			count = end - lpn
		}
		for i := int64(0); i < count; i++ {
			p := lpn + i
			if old := f.l2p[p]; old != unmapped {
				f.invalidate(old)
			} else {
				f.mappedPages++
			}
			f.p2l[base+i] = int32(p)
			f.l2p[p] = int32(base + i)
		}
		f.writePtr[b] = int32(count)
		f.validCount[b] = int32(count)
		f.closeBlock(b)
		f.maybeGC()
		lpn += count
	}
	f.stats.FlashPagesWritten += n
	f.stats.HostPagesWritten += n
}

// pickVictim returns the next GC victim, or -1 if no closed block exists.
// Greedy picks the closed block with the fewest valid pages; random picks
// any closed block (ablation baseline).
func (f *ftl) pickVictim() int32 {
	if f.gcPolicy == GCRandom {
		// Bounded random probing; fall back to greedy if unlucky.
		for i := 0; i < 32; i++ {
			b := int32(f.rng.Intn(f.numBlocks))
			if f.state[b] == blockClosed {
				return b
			}
		}
	}
	for f.minBucket <= f.pagesPerBlock {
		bucket := f.buckets[f.minBucket]
		if len(bucket) > 0 {
			return bucket[len(bucket)-1]
		}
		f.minBucket++
	}
	return -1
}

// maybeGC runs greedy garbage collection when the free pool is low,
// reclaiming blocks until the high watermark is restored.
func (f *ftl) maybeGC() gcWork {
	var work gcWork
	if len(f.freeBlocks) >= f.gcLowWater {
		return work
	}
	for len(f.freeBlocks) < f.gcHighWater {
		v := f.pickVictim()
		if v < 0 {
			// No closed block to collect: force-close a host frontier
			// so its invalidated pages become reclaimable. If even that
			// is impossible the device is genuinely wedged, which the
			// capacity validation is supposed to prevent.
			closed := false
			for i, b := range f.hostOpen {
				if b >= 0 && f.writePtr[b] > 0 {
					f.closeBlock(b)
					f.hostOpen[i] = -1
					closed = true
					break
				}
			}
			if closed {
				continue
			}
			break
		}
		if f.validCount[v] >= int32(f.pagesPerBlock) && len(f.freeBlocks) > 0 {
			// Collecting a fully valid block makes no net progress;
			// stop rather than churn (utilization is at the physical
			// limit).
			break
		}
		f.bucketRemove(v)
		f.state[v] = blockOpen // transitional: not a candidate while moving
		base := v * int32(f.pagesPerBlock)
		for i := int32(0); i < int32(f.pagesPerBlock); i++ {
			ppn := base + i
			lpn := f.p2l[ppn]
			if lpn == unmapped {
				continue
			}
			// Relocate: invalidate in place, re-program at GC frontier.
			f.p2l[ppn] = unmapped
			f.validCount[v]--
			f.program(&f.gcOpen, int64(lpn))
			f.stats.FlashPagesWritten++
			f.stats.Relocations++
			work.relocated++
		}
		f.eraseBlock(v)
		work.erases++
	}
	return work
}

// eraseBlock resets block b and returns it to the free pool.
func (f *ftl) eraseBlock(b int32) {
	f.state[b] = blockFree
	f.writePtr[b] = 0
	f.validCount[b] = 0
	f.eraseCount[b]++
	f.stats.Erases++
	f.freeBlocks = append(f.freeBlocks, b)
}

// trim invalidates the mapping for lpn, if any.
func (f *ftl) trim(lpn int64) {
	if old := f.l2p[lpn]; old != unmapped {
		f.invalidate(old)
		f.l2p[lpn] = unmapped
		f.mappedPages--
		f.stats.TrimmedPages++
	}
}

// trimAll resets the device to a factory-fresh block layout: every block
// erased and free, all mappings dropped. Wear counters are preserved;
// cumulative traffic counters are preserved too (the harness snapshots
// stats at experiment start).
func (f *ftl) trimAll() {
	for i := range f.l2p {
		f.l2p[i] = unmapped
	}
	for i := range f.p2l {
		f.p2l[i] = unmapped
	}
	for b := 0; b < f.numBlocks; b++ {
		f.validCount[int32(b)] = 0
		f.writePtr[int32(b)] = 0
		f.state[int32(b)] = blockFree
		f.bucketPos[int32(b)] = -1
	}
	for i := range f.buckets {
		f.buckets[i] = f.buckets[i][:0]
	}
	f.minBucket = f.pagesPerBlock + 1
	f.freeBlocks = f.freeBlocks[:0]
	for b := f.numBlocks - 1; b >= 0; b-- {
		f.freeBlocks = append(f.freeBlocks, int32(b))
	}
	for i := range f.hostOpen {
		f.hostOpen[i] = -1
	}
	f.gcOpen = -1
	f.stats.TrimmedPages += f.mappedPages
	f.mappedPages = 0
}

// validPages returns the total number of valid (mapped) physical pages.
func (f *ftl) validPages() int64 { return f.mappedPages }

// checkInvariants verifies internal consistency; tests call it after
// randomized operation sequences.
func (f *ftl) checkInvariants() error {
	var valid int64
	for b := 0; b < f.numBlocks; b++ {
		var count int32
		base := b * f.pagesPerBlock
		for i := 0; i < f.pagesPerBlock; i++ {
			if int32(i) >= f.writePtr[b] && f.state[b] != blockFree {
				if f.p2l[base+i] != unmapped {
					return errorf("block %d page %d mapped beyond write pointer", b, i)
				}
				continue
			}
			if lpn := f.p2l[base+i]; lpn != unmapped {
				count++
				if f.l2p[lpn] != int32(base+i) {
					return errorf("p2l/l2p mismatch at block %d page %d", b, i)
				}
			}
		}
		if count != f.validCount[b] {
			return errorf("block %d valid count %d, recount %d", b, f.validCount[b], count)
		}
		valid += int64(count)
	}
	if valid != f.mappedPages {
		return errorf("mappedPages %d, recount %d", f.mappedPages, valid)
	}
	return nil
}

func errorf(format string, args ...any) error {
	return fmt.Errorf("flash: "+format, args...)
}
