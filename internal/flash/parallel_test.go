package flash

import (
	"testing"
	"time"

	"ptsbench/internal/sim"
)

// parallelConfig returns the small test device with a 4x4 lane array.
func parallelConfig() Config {
	cfg := testConfig()
	cfg.Profile.Channels = 4
	cfg.Profile.Ways = 4
	return cfg
}

func TestParallelLanesDefaultOne(t *testing.T) {
	d := newTestDevice(t, testConfig())
	if d.ParallelLanes() != 1 {
		t.Fatalf("default lanes = %d, want 1", d.ParallelLanes())
	}
	d = newTestDevice(t, parallelConfig())
	if d.ParallelLanes() != 16 {
		t.Fatalf("4x4 lanes = %d, want 16", d.ParallelLanes())
	}
}

func TestParallelReadsOverlap(t *testing.T) {
	d := newTestDevice(t, parallelConfig())
	// Two single-page reads at the same time to different lanes (lpn 0
	// and 1) complete at the same instant: full overlap.
	d1 := d.SubmitRead(0, 0, 1)
	d2 := d.SubmitRead(0, 1, 1)
	if d1 != d2 {
		t.Fatalf("reads on distinct lanes should overlap: %v vs %v", d1, d2)
	}
	// A read to the SAME lane (lpn 16 maps to lane 0 again) queues.
	d3 := d.SubmitRead(0, 16, 1)
	if d3 <= d1 {
		t.Fatalf("same-lane read should queue: %v vs %v", d3, d1)
	}
}

func TestSequentialBandwidthPreserved(t *testing.T) {
	// A large sequential read stripes over all lanes; each lane runs at
	// 1/16 bandwidth on 1/16 of the pages, so the completion time
	// matches the single-lane device exactly.
	serial := newTestDevice(t, testConfig())
	parallel := newTestDevice(t, parallelConfig())
	const n = 256
	if got, want := parallel.SubmitRead(0, 0, n), serial.SubmitRead(0, 0, n); got != want {
		t.Fatalf("sequential read: %v on 16 lanes vs %v on 1", got, want)
	}
}

func TestParallelRandomReadThroughputScales(t *testing.T) {
	// N random-ish single-page reads issued in batches of qd: the
	// makespan must shrink (or hold) as qd grows, up to the lane count.
	makespan := func(qd int) sim.Duration {
		d := newTestDevice(t, parallelConfig())
		var now sim.Duration
		const n = 256
		for i := 0; i < n; i += qd {
			batchEnd := now
			for k := 0; k < qd && i+k < n; k++ {
				// Consecutive lpns land on distinct lanes.
				if done := d.SubmitRead(now, int64((i+k)%int(d.LogicalPages())), 1); done > batchEnd {
					batchEnd = done
				}
			}
			now = batchEnd
		}
		return now
	}
	m1, m4, m16, m32 := makespan(1), makespan(4), makespan(16), makespan(32)
	if !(m4 < m1) || !(m16 < m4) {
		t.Fatalf("makespan should shrink with queue depth: qd1=%v qd4=%v qd16=%v", m1, m4, m16)
	}
	if m32 > m16 {
		t.Fatalf("beyond the lane count the makespan must not regress: qd16=%v qd32=%v", m16, m32)
	}
}

func TestParallelWriteGCStaysConsistent(t *testing.T) {
	// Hammer a 16-lane device with random writes well past capacity so
	// GC runs on every lane, then verify FTL invariants and WA-D > 1.
	cfg := parallelConfig()
	d := newTestDevice(t, cfg)
	rng := sim.NewRNG(11)
	pages := d.LogicalPages()
	var now sim.Duration
	for i := int64(0); i < 3*pages; i++ {
		now = d.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants after parallel GC: %v", err)
	}
	if d.WAD() <= 1 {
		t.Fatalf("WA-D = %v, want > 1 after overwrite churn", d.WAD())
	}
	if now <= 0 {
		t.Fatal("no time accrued")
	}
}

func TestScaledKeepsParallelism(t *testing.T) {
	p := testProfile().WithParallelism(8, 2).Scaled(64)
	if p.ParallelLanes() != 16 {
		t.Fatalf("Scaled dropped parallelism: %d lanes", p.ParallelLanes())
	}
}

func TestPendingFIFOStaysBounded(t *testing.T) {
	// Regression test for the write-back cache FIFO: a long run that
	// appends and destages in lockstep must not grow the pending slice
	// (or its drained prefix) without bound.
	cfg := testConfig()
	cfg.Profile.CacheBytes = 1 << 20 // 256 pages of cache
	cfg.Profile.CacheWriteBW = 1 << 30
	d := newTestDevice(t, cfg)
	var now sim.Duration
	rng := sim.NewRNG(3)
	pages := d.LogicalPages()
	for i := 0; i < 200000; i++ {
		now = d.SubmitWrite(now, int64(rng.Uint64n(uint64(pages))), 1)
		// Give the destage engine idle time so the queue keeps churning
		// without ever fully draining.
		now += 50 * time.Microsecond
		if len(d.pending) > 4096 {
			t.Fatalf("pending grew to %d entries (head %d) at op %d",
				len(d.pending), d.pendingHead, i)
		}
	}
}
