package kv

import (
	"bytes"
	"testing"
)

// FuzzEncodeDecodeKey pins the canonical key codec: encode/decode round
// trips exactly, byte order preserves numeric order, the allocation-free
// AppendKey matches EncodeKey, and the decomposed-word compare fast
// paths agree with bytes.Compare.
func FuzzEncodeDecodeKey(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(42), ^uint64(0))
	f.Add(uint64(1)<<40, uint64(1)<<40+1)
	f.Fuzz(func(t *testing.T, a, b uint64) {
		ka, kb := EncodeKey(a), EncodeKey(b)
		if len(ka) != KeySize {
			t.Fatalf("key length %d", len(ka))
		}
		got, err := DecodeKey(ka)
		if err != nil || got != a {
			t.Fatalf("round trip %d -> %d (%v)", a, got, err)
		}

		// Ordering: bytes.Compare must mirror numeric order.
		c := bytes.Compare(ka, kb)
		switch {
		case a < b && c >= 0, a > b && c <= 0, a == b && c != 0:
			t.Fatalf("order mismatch: %d vs %d -> compare %d", a, b, c)
		}

		// AppendKey is the allocation-free twin of EncodeKey.
		buf := make([]byte, KeySize)
		AppendKey(buf, a)
		if !bytes.Equal(buf, ka) {
			t.Fatalf("AppendKey mismatch for %d", a)
		}

		// The word-compare fast paths agree with the generic compare.
		if CompareKeys(ka, kb) != c {
			t.Fatalf("CompareKeys disagrees with bytes.Compare for %d vs %d", a, b)
		}
		hi, lo, ok := DecomposeKey(kb)
		if !ok {
			t.Fatal("DecomposeKey rejected a canonical key")
		}
		if CompareKeyWords(ka, hi, lo) != c {
			t.Fatalf("CompareKeyWords disagrees with bytes.Compare for %d vs %d", a, b)
		}
	})
}
