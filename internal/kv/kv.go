// Package kv defines the types shared by the storage engines (LSM,
// B+Tree, Bε-tree): keys, entries, iterators, the engine interface the
// benchmark harness drives, and deterministic value synthesis used at
// benchmark scale (where value bytes are accounted but not retained).
package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"ptsbench/internal/sim"
)

// KeySize is the fixed key size used by the paper's workload (16-byte
// keys, §3.2). Engines accept arbitrary keys; the workload generator
// produces keys of this size.
const KeySize = 16

// EncodeKey produces the canonical 16-byte big-endian key for a numeric
// key id. Big-endian preserves numeric order under bytes.Compare.
func EncodeKey(id uint64) []byte {
	k := make([]byte, KeySize)
	binary.BigEndian.PutUint64(k[8:], id)
	return k
}

// AppendKey writes the canonical key for id into dst (which must be
// KeySize long), avoiding an allocation.
func AppendKey(dst []byte, id uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = 0
	}
	binary.BigEndian.PutUint64(dst[8:], id)
}

// DecodeKey recovers the numeric id from a canonical key.
func DecodeKey(k []byte) (uint64, error) {
	if len(k) != KeySize {
		return 0, fmt.Errorf("kv: key length %d, want %d", len(k), KeySize)
	}
	return binary.BigEndian.Uint64(k[8:]), nil
}

// SynthValue fills dst with a deterministic pattern derived from the key
// and sequence number. The same (key, seq, len) always produces the same
// bytes, so correctness tests can verify reads without storing values.
func SynthValue(dst []byte, key []byte, seq uint64) {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, b := range key {
		h = (h ^ uint64(b)) * 1099511628211
	}
	h ^= seq * 0x9E3779B97F4A7C15
	for i := range dst {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		dst[i] = byte(h)
	}
}

// Entry is a versioned key-value record. A nil Value with Deleted set is
// a tombstone.
//
// ValueLen is the accounted payload size: at benchmark scale the engines
// run in accounting-only mode where Value is nil but ValueLen still
// records how many bytes the value occupies on device. When Value is
// non-nil, ValueLen == len(Value).
type Entry struct {
	Key      []byte
	Value    []byte
	ValueLen int
	Seq      uint64
	Deleted  bool
}

// CompareKeys orders two keys like bytes.Compare, with a branch-light
// fast path for the workload's fixed 16-byte keys (two big-endian word
// compares instead of a generic memcmp call) — key comparison is the
// single hottest operation in the merge, probe and memtable paths.
func CompareKeys(a, b []byte) int {
	if len(a) == KeySize && len(b) == KeySize {
		ah, bh := binary.BigEndian.Uint64(a), binary.BigEndian.Uint64(b)
		if ah != bh {
			if ah < bh {
				return -1
			}
			return 1
		}
		al, bl := binary.BigEndian.Uint64(a[8:]), binary.BigEndian.Uint64(b[8:])
		if al != bl {
			if al < bl {
				return -1
			}
			return 1
		}
		return 0
	}
	return bytes.Compare(a, b)
}

// DecomposeKey splits a fixed-size key into two big-endian words whose
// pairwise comparison reproduces bytes.Compare. Search loops call this
// once per lookup and then compare raw words per probe. ok is false for
// keys of any other length (callers fall back to CompareKeys).
func DecomposeKey(k []byte) (hi, lo uint64, ok bool) {
	if len(k) != KeySize {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(k), binary.BigEndian.Uint64(k[8:]), true
}

// CompareKeyWords compares key k — which must be exactly KeySize bytes
// (callers guard the length) — against the decomposed words (hi, lo),
// returning <0, 0, >0 like bytes.Compare(k, original).
func CompareKeyWords(k []byte, hi, lo uint64) int {
	kh := binary.BigEndian.Uint64(k)
	if kh != hi {
		if kh < hi {
			return -1
		}
		return 1
	}
	kl := binary.BigEndian.Uint64(k[8:])
	if kl != lo {
		if kl < lo {
			return -1
		}
		return 1
	}
	return 0
}

// Compare orders entries by key ascending, then by sequence descending
// (newest first), the standard LSM internal ordering.
func Compare(a, b *Entry) int {
	if c := CompareKeys(a.Key, b.Key); c != 0 {
		return c
	}
	switch {
	case a.Seq > b.Seq:
		return -1
	case a.Seq < b.Seq:
		return 1
	default:
		return 0
	}
}

// Iterator walks entries in key order. It starts positioned before the
// first entry; Next advances and reports whether an entry is available.
type Iterator interface {
	Next() bool
	Entry() *Entry
}

// Engine is the interface the harness drives. All methods thread virtual
// time: they accept the submission time and return the completion time.
type Engine interface {
	// Put writes a key-value pair. valueLen is used when value is nil
	// (accounting-only mode at benchmark scale).
	Put(now sim.Duration, key, value []byte, valueLen int) (sim.Duration, error)
	// Get reads a key. The returned value is nil in accounting-only
	// mode even when found is true.
	Get(now sim.Duration, key []byte) (done sim.Duration, value []byte, found bool, err error)
	// FlushAll persists all buffered state (used at checkpoints and
	// shutdown) and returns when the device is quiet.
	FlushAll(now sim.Duration) (sim.Duration, error)
	// Stats returns cumulative engine counters.
	Stats() EngineStats
	// DiskUsageBytes reports the engine's current on-device footprint,
	// for the paper's space-amplification metric.
	DiskUsageBytes() int64
}

// EngineStats are cumulative application-level counters. The harness
// combines UserBytesWritten with the block device's counters to compute
// WA-A exactly as the paper defines it (§2.1.3).
type EngineStats struct {
	Puts             int64
	Gets             int64
	UserBytesWritten int64 // sum of key+value payload accepted from the app
	UserBytesRead    int64
	StallTime        sim.Duration // time Puts spent blocked on backpressure
}

// Sub returns s - o for interval deltas.
func (s EngineStats) Sub(o EngineStats) EngineStats {
	return EngineStats{
		Puts:             s.Puts - o.Puts,
		Gets:             s.Gets - o.Gets,
		UserBytesWritten: s.UserBytesWritten - o.UserBytesWritten,
		UserBytesRead:    s.UserBytesRead - o.UserBytesRead,
		StallTime:        s.StallTime - o.StallTime,
	}
}

// Add returns s + o, for aggregating the shards of a partitioned store.
func (s EngineStats) Add(o EngineStats) EngineStats {
	return EngineStats{
		Puts:             s.Puts + o.Puts,
		Gets:             s.Gets + o.Gets,
		UserBytesWritten: s.UserBytesWritten + o.UserBytesWritten,
		UserBytesRead:    s.UserBytesRead + o.UserBytesRead,
		StallTime:        s.StallTime + o.StallTime,
	}
}

// SepCache caches the big-endian word decomposition of a sorted set of
// separator keys while every separator is a fixed-size key, so a
// descent's binary search probes raw uint64 pairs instead of re-decoding
// separator bytes on every comparison. The zero value is an inactive
// cache (callers fall back to byte comparison); Refresh activates it.
// The B-tree-family engines share it for their interior nodes — the
// separators only change on splits, so the cache refresh is off the hot
// path.
type SepCache struct {
	hi, lo []uint64
	fast   bool
}

// Fast reports whether the cache is active (every separator decomposed).
func (c *SepCache) Fast() bool { return c.fast }

// Refresh rebuilds the cache from the full separator set.
func (c *SepCache) Refresh(seps [][]byte) {
	c.hi = c.hi[:0]
	c.lo = c.lo[:0]
	for _, sep := range seps {
		hi, lo, ok := DecomposeKey(sep)
		if !ok {
			c.fast = false
			return
		}
		c.hi = append(c.hi, hi)
		c.lo = append(c.lo, lo)
	}
	c.fast = true
}

// Insert splices one separator's words in at idx (a full Refresh per
// child insert would re-decode the whole fanout on every leaf split).
// A non-fixed-size separator deactivates the cache.
func (c *SepCache) Insert(idx int, sep []byte) {
	if !c.fast {
		return
	}
	hi, lo, ok := DecomposeKey(sep)
	if !ok {
		c.fast = false
		c.hi, c.lo = c.hi[:0], c.lo[:0]
		return
	}
	c.hi = append(c.hi, 0)
	copy(c.hi[idx+1:], c.hi[idx:])
	c.hi[idx] = hi
	c.lo = append(c.lo, 0)
	copy(c.lo[idx+1:], c.lo[idx:])
	c.lo[idx] = lo
}

// UpperBound returns the number of cached separators <= the target key
// given by its decomposed words — which is exactly the child index a
// B-tree descent takes (childFor sends key == sep to the right child).
func (c *SepCache) UpperBound(wHi, wLo uint64) int {
	lo, hi := 0, len(c.hi)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h := c.hi[mid]; h < wHi || (h == wHi && c.lo[mid] <= wLo) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
