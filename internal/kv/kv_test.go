package kv

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestKeyRoundTrip(t *testing.T) {
	for _, id := range []uint64{0, 1, 42, 1 << 40, ^uint64(0)} {
		k := EncodeKey(id)
		if len(k) != KeySize {
			t.Fatalf("key length %d", len(k))
		}
		got, err := DecodeKey(k)
		if err != nil || got != id {
			t.Fatalf("round trip %d -> %d (%v)", id, got, err)
		}
	}
}

func TestKeyOrderMatchesNumericOrder(t *testing.T) {
	f := func(a, b uint64) bool {
		ka, kb := EncodeKey(a), EncodeKey(b)
		c := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendKeyMatchesEncodeKey(t *testing.T) {
	buf := make([]byte, KeySize)
	for _, id := range []uint64{0, 7, 1 << 33} {
		AppendKey(buf, id)
		if !bytes.Equal(buf, EncodeKey(id)) {
			t.Fatalf("AppendKey mismatch for %d", id)
		}
	}
}

func TestDecodeKeyBadLength(t *testing.T) {
	if _, err := DecodeKey([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for short key")
	}
}

func TestSynthValueDeterministic(t *testing.T) {
	k := EncodeKey(99)
	a := make([]byte, 128)
	b := make([]byte, 128)
	SynthValue(a, k, 5)
	SynthValue(b, k, 5)
	if !bytes.Equal(a, b) {
		t.Fatal("SynthValue not deterministic")
	}
	SynthValue(b, k, 6)
	if bytes.Equal(a, b) {
		t.Fatal("SynthValue ignores seq")
	}
	SynthValue(b, EncodeKey(100), 5)
	if bytes.Equal(a, b) {
		t.Fatal("SynthValue ignores key")
	}
}

func TestSynthValueNotAllZero(t *testing.T) {
	v := make([]byte, 64)
	SynthValue(v, EncodeKey(1), 1)
	zero := true
	for _, b := range v {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		t.Fatal("SynthValue produced all zeros")
	}
}

func TestEntryCompare(t *testing.T) {
	a := &Entry{Key: EncodeKey(1), Seq: 10}
	b := &Entry{Key: EncodeKey(2), Seq: 5}
	if Compare(a, b) >= 0 {
		t.Fatal("key order broken")
	}
	// Same key: newer seq sorts first.
	c := &Entry{Key: EncodeKey(1), Seq: 20}
	if Compare(c, a) >= 0 {
		t.Fatal("seq order broken: newer must sort before older")
	}
	if Compare(a, a) != 0 {
		t.Fatal("self-compare not zero")
	}
}

func TestEngineStatsSub(t *testing.T) {
	a := EngineStats{Puts: 10, Gets: 5, UserBytesWritten: 1000}
	b := EngineStats{Puts: 4, Gets: 2, UserBytesWritten: 300}
	d := a.Sub(b)
	if d.Puts != 6 || d.Gets != 3 || d.UserBytesWritten != 700 {
		t.Fatalf("Sub wrong: %+v", d)
	}
}

func TestSepCache(t *testing.T) {
	var c SepCache
	if c.Fast() {
		t.Fatal("zero cache must be inactive")
	}
	seps := [][]byte{EncodeKey(10), EncodeKey(20), EncodeKey(30)}
	c.Refresh(seps)
	if !c.Fast() {
		t.Fatal("cache inactive after Refresh over fixed-size keys")
	}
	for _, tc := range []struct {
		id   uint64
		want int
	}{{5, 0}, {10, 1}, {15, 1}, {20, 2}, {29, 2}, {30, 3}, {99, 3}} {
		hi, lo, ok := DecomposeKey(EncodeKey(tc.id))
		if !ok {
			t.Fatal("decompose failed")
		}
		if got := c.UpperBound(hi, lo); got != tc.want {
			t.Fatalf("UpperBound(%d) = %d, want %d", tc.id, got, tc.want)
		}
	}
	// Insert keeps the cache consistent with a full refresh.
	c.Insert(1, EncodeKey(15))
	var ref SepCache
	ref.Refresh([][]byte{EncodeKey(10), EncodeKey(15), EncodeKey(20), EncodeKey(30)})
	hi, lo, _ := DecomposeKey(EncodeKey(16))
	if c.UpperBound(hi, lo) != ref.UpperBound(hi, lo) || c.UpperBound(hi, lo) != 2 {
		t.Fatal("Insert diverged from Refresh")
	}
	// A non-fixed-size separator deactivates the cache.
	c.Insert(0, []byte("short"))
	if c.Fast() {
		t.Fatal("cache must deactivate on a non-fixed-size separator")
	}
	c.Refresh([][]byte{[]byte("x")})
	if c.Fast() {
		t.Fatal("Refresh over variable keys must stay inactive")
	}
}
