package kvtest

import (
	"fmt"
	"testing"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/deverr"
	"ptsbench/internal/engine"
	"ptsbench/internal/extfs"
	"ptsbench/internal/faultdev"
	"ptsbench/internal/flash"
	"ptsbench/internal/sim"
)

// retryAttempts bounds the block-layer retry loop. Each attempt redraws
// its verdict from the plan's error stream, so at the low probabilities
// the faulty conformance suite uses, surfacing a transient error past
// the bound is effectively impossible (p^7).
const retryAttempts = 7

// RetryDev is a block-layer retry shim over a fault-injecting device:
// transient per-command EIOs are retried in place, the way a host
// storage stack reissues a failed command before involving anyone
// above it. Persistent errors surface immediately. It lets the engine
// conformance suite run over an EIO-injecting device without teaching
// the suite about retries — the same division of labour as the serving
// layer, where the store retries transient errors and fails replicas
// over on persistent ones.
type RetryDev struct {
	inner   *faultdev.Dev
	Retries int64 // transient errors absorbed
}

// NewRetryDev wraps a fault-injecting device.
func NewRetryDev(inner *faultdev.Dev) *RetryDev { return &RetryDev{inner: inner} }

// PageSize implements blockdev.Dev.
func (r *RetryDev) PageSize() int { return r.inner.PageSize() }

// Pages implements blockdev.Dev.
func (r *RetryDev) Pages() int64 { return r.inner.Pages() }

// ContentEnabled reports the wrapped device's content mode.
func (r *RetryDev) ContentEnabled() bool { return r.inner.ContentEnabled() }

// Discard implements blockdev.Dev.
func (r *RetryDev) Discard(off int64, n int) { r.inner.Discard(off, n) }

// retry drives one op until it succeeds, fails persistently, or the
// attempt bound runs out. A failed attempt charges no virtual time, so
// the successful attempt's completion time is the op's.
func (r *RetryDev) retry(op func() (sim.Duration, error)) (sim.Duration, error) {
	var (
		done sim.Duration
		err  error
	)
	for attempt := 0; attempt < retryAttempts; attempt++ {
		done, err = op()
		if err == nil || !deverr.IsTransient(err) {
			return done, err
		}
		r.Retries++
	}
	return done, fmt.Errorf("kvtest: transient error survived %d retries: %w", retryAttempts, err)
}

// WriteErr implements blockdev.Dev with transient retry.
func (r *RetryDev) WriteErr(now sim.Duration, off int64, n int, data []byte) (sim.Duration, error) {
	return r.retry(func() (sim.Duration, error) { return r.inner.WriteErr(now, off, n, data) })
}

// ReadErr implements blockdev.Dev with transient retry.
func (r *RetryDev) ReadErr(now sim.Duration, off int64, n int, buf []byte) (sim.Duration, error) {
	return r.retry(func() (sim.Duration, error) { return r.inner.ReadErr(now, off, n, buf) })
}

// WriteAt implements blockdev.Dev as a panic wrapper over WriteErr.
func (r *RetryDev) WriteAt(now sim.Duration, off int64, n int, data []byte) sim.Duration {
	done, err := r.WriteErr(now, off, n, data)
	if err != nil {
		panic(err)
	}
	return done
}

// ReadAt implements blockdev.Dev as a panic wrapper over ReadErr.
func (r *RetryDev) ReadAt(now sim.Duration, off int64, n int, buf []byte) sim.Duration {
	done, err := r.ReadErr(now, off, n, buf)
	if err != nil {
		panic(err)
	}
	return done
}

// SyncErr implements blockdev.Dev with transient retry.
func (r *RetryDev) SyncErr() error {
	_, err := r.retry(func() (sim.Duration, error) { return 0, r.inner.SyncErr() })
	return err
}

// SyncBarrier implements blockdev.Barrier.
func (r *RetryDev) SyncBarrier() {
	if err := r.SyncErr(); err != nil {
		panic(err)
	}
}

// FaultyStack is a Stack over an error-injecting device, exposing the
// injection and retry counters so tests can prove the plan actually
// fired.
type FaultyStack struct {
	Stack
	Fault *faultdev.Dev
	Retry *RetryDev
}

// NewFaultyStack opens a fresh engine of the given driver over a
// simulated flash device wrapped in a fault-injecting overlay running
// the given error plan, with a block-layer retry shim absorbing
// transient verdicts. Its Reopen power cycles the device first —
// faultdev folds the pending window intact when the plan has no
// drop/torn probabilities and disarms the error model — so recovery
// reads a clean, honest device, the way the crash harness recovers
// after its own power cycle.
func NewFaultyStack(t *testing.T, drv engine.Driver, tunables map[string]string, plan faultdev.Plan, content bool) *FaultyStack {
	t.Helper()
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  32 << 20,
		PageSize:      4096,
		PagesPerBlock: 64,
		Profile:       flash.ProfileSSD1().Scaled(4096),
	})
	if err != nil {
		t.Fatal(err)
	}
	host := blockdev.New(ssd)
	fd := faultdev.Wrap(host, plan)
	rd := NewRetryDev(fd)
	fs, err := extfs.Mount(rd, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := drv.Configure(engine.Sizing{DatasetBytes: 16 << 20})
	if err := cfg.ApplyTunables(tunables); err != nil {
		t.Fatal(err)
	}
	eng, err := cfg.Open(engine.Env{FS: fs, RNG: sim.NewRNG(1), Content: content})
	if err != nil {
		t.Fatal(err)
	}
	st := &FaultyStack{
		Stack: Stack{Engine: eng.(Engine), Dev: host},
		Fault: fd,
		Retry: rd,
	}
	if content {
		st.Reopen = func(now sim.Duration) (Engine, sim.Duration, error) {
			fd.PowerCut()
			if _, err := fd.PowerOn(); err != nil {
				return nil, 0, err
			}
			re, rnow, err := cfg.Recover(engine.Env{FS: fs, RNG: sim.NewRNG(2), Content: true}, now)
			if err != nil {
				return nil, 0, err
			}
			return re.(Engine), rnow, nil
		}
	}
	return st
}
