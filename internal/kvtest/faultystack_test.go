package kvtest_test

// The faulty-stack conformance run: every registered engine must pass
// the full shared conformance suite over a device injecting low-rate
// transient EIOs on both reads and writes, with the block-layer retry
// shim absorbing the verdicts. Engine behaviour — semantics, scan
// ordering, recovery, deterministic replay — must be indistinguishable
// from a healthy device.

import (
	"sync/atomic"
	"testing"

	"ptsbench/internal/crash"
	"ptsbench/internal/engine"
	_ "ptsbench/internal/engine/all"
	"ptsbench/internal/faultdev"
	"ptsbench/internal/kvtest"
)

// eioPlan is the low-rate transient-EIO plan the conformance run uses.
// The seed varies per stack so different subtests exercise different
// verdict sequences while each stays deterministic.
func eioPlan(seed uint64) faultdev.Plan {
	return faultdev.Plan{
		Seed:         seed,
		ReadEIOProb:  0.02,
		WriteEIOProb: 0.02,
	}
}

// TestEngineConformanceUnderEIO runs the full conformance suite per
// engine over the EIO-injecting stack, then proves the run was not
// vacuous: across the suite's stacks the plan must have injected at
// least one error and the retry shim must have absorbed every one.
func TestEngineConformanceUnderEIO(t *testing.T) {
	for _, name := range engine.Names() {
		drv, err := engine.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			var injected, retried atomic.Int64
			var stacks atomic.Uint64
			kvtest.Run(t, func(t *testing.T, content bool) *kvtest.Stack {
				seed := 1000 + stacks.Add(1)
				fs := kvtest.NewFaultyStack(t, drv, crash.DurabilityTunables(name), eioPlan(seed), content)
				t.Cleanup(func() {
					inj := fs.Fault.Injected()
					injected.Add(inj.ReadEIO + inj.WriteEIO)
					retried.Add(fs.Retry.Retries)
				})
				return &fs.Stack
			})
			if injected.Load() == 0 {
				t.Fatal("no EIO injected across the whole suite: the run was vacuous")
			}
			if injected.Load() != retried.Load() {
				t.Fatalf("injected %d EIOs but retried %d: some surfaced past the shim",
					injected.Load(), retried.Load())
			}
		})
	}
}
