package kvtest

import (
	"path/filepath"
	"testing"

	"ptsbench/internal/engine"
	"ptsbench/internal/extfs"
	"ptsbench/internal/filedev"
	"ptsbench/internal/sim"
)

// NewFileStack opens a fresh engine of the given driver over a real
// file-backed device (internal/filedev) in a per-test temp directory,
// with deterministic fixed I/O costs. Its Reopen path is a REAL
// close-and-reopen of the backing file — durability must have come
// from the engine's fsync discipline, not from process memory — before
// the driver's recovery runs over the same mounted filesystem.
//
// The helper takes engine.Driver rather than a concrete engine so this
// package never imports engine implementations (their test packages
// import the suite); the per-engine loop lives in
// internal/filedev's conformance test.
func NewFileStack(t *testing.T, drv engine.Driver, tunables map[string]string, content bool) *Stack {
	t.Helper()
	dev, err := filedev.Open(filedev.Config{
		Path:  filepath.Join(t.TempDir(), "dev.img"),
		Pages: (32 << 20) / 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dev.Close() })
	fs, err := extfs.Mount(dev, extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := drv.Configure(engine.Sizing{DatasetBytes: 16 << 20})
	if err := cfg.ApplyTunables(tunables); err != nil {
		t.Fatal(err)
	}
	eng, err := cfg.Open(engine.Env{FS: fs, RNG: sim.NewRNG(1), Content: content})
	if err != nil {
		t.Fatal(err)
	}
	st := &Stack{Engine: eng.(Engine), Dev: dev}
	if content {
		st.Reopen = func(now sim.Duration) (Engine, sim.Duration, error) {
			if err := dev.Close(); err != nil {
				return nil, 0, err
			}
			if err := dev.Reopen(); err != nil {
				return nil, 0, err
			}
			re, rnow, err := cfg.Recover(engine.Env{FS: fs, RNG: sim.NewRNG(2), Content: true}, now)
			if err != nil {
				return nil, 0, err
			}
			return re.(Engine), rnow, nil
		}
	}
	return st
}
