// Package kvtest is the shared engine-conformance suite: one set of
// correctness tests that every storage engine (LSM, B+Tree, Bε-tree)
// must pass identically. Each engine's test package supplies a Factory
// that opens a fresh engine on its own simulated stack; Run then drives
// put/get/overwrite/delete semantics, scan ordering, deterministic
// value verification (kv.SynthValue), recovery after a checkpoint, and
// deterministic replay through the kv.Engine surface.
//
// Keeping the suite here — instead of copy-pasting the same tests into
// each engine package — pins the ENGINE CONTRACT, so a new tree
// structure starts from the full behavioural spec of the existing ones.
package kvtest

import (
	"bytes"
	"fmt"
	"testing"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// Engine is the surface the conformance suite drives: the harness
// interface plus deletes, range scans and background-work draining,
// which all three engines implement.
type Engine interface {
	kv.Engine
	Delete(now sim.Duration, key []byte) (sim.Duration, error)
	Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error)
	Quiesce(now sim.Duration) sim.Duration
}

// Stack is one freshly opened engine on its own device — simulated
// (blockdev.Device) or a real backing file (filedev.Dev); the suite
// only needs the shared Host instrumentation surface.
type Stack struct {
	Engine Engine
	Dev    blockdev.Host
	// Reopen recovers the engine from its on-device state (checkpoint /
	// manifest plus journal replay). Only called on content-mode stacks,
	// after the original engine has quiesced.
	Reopen func(now sim.Duration) (Engine, sim.Duration, error)
}

// Factory opens a fresh engine. content selects content mode (values
// materialized on the device); the suite uses accounting mode only for
// the reference-map and determinism tests.
type Factory func(t *testing.T, content bool) *Stack

// Run executes the conformance suite against the factory.
func Run(t *testing.T, open Factory) {
	t.Run("PutGetBasic", func(t *testing.T) { testPutGetBasic(t, open) })
	t.Run("OverwriteLatestWins", func(t *testing.T) { testOverwrite(t, open) })
	t.Run("DeleteHidesKey", func(t *testing.T) { testDelete(t, open) })
	t.Run("ScanOrdering", func(t *testing.T) { testScanOrdering(t, open) })
	t.Run("SynthValues", func(t *testing.T) { testSynthValues(t, open) })
	t.Run("ReferenceMap", func(t *testing.T) { testReferenceMap(t, open) })
	t.Run("RecoveryAfterCheckpoint", func(t *testing.T) { testRecovery(t, open) })
	t.Run("DeterministicReplay", func(t *testing.T) { testDeterministicReplay(t, open) })
}

func testPutGetBasic(t *testing.T, open Factory) {
	s := open(t, true)
	e := s.Engine
	var now sim.Duration
	var err error
	now, err = e.Put(now, kv.EncodeKey(1), []byte("hello"), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, v, found, err := e.Get(now, kv.EncodeKey(1))
	if err != nil || !found || string(v) != "hello" {
		t.Fatalf("Get: %q %v %v", v, found, err)
	}
	_, _, found, err = e.Get(now, kv.EncodeKey(2))
	if err != nil || found {
		t.Fatalf("missing key visible: %v %v", found, err)
	}
	st := e.Stats()
	if st.Puts != 1 || st.Gets != 2 || st.UserBytesWritten != int64(kv.KeySize+5) {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func testOverwrite(t *testing.T, open Factory) {
	s := open(t, true)
	e := s.Engine
	var now sim.Duration
	var err error
	// Three generations of the same keys, with a full flush between
	// generations so every persistence layer (memtable/buffer AND
	// on-disk structure) holds stale versions.
	for gen := 0; gen < 3; gen++ {
		for i := uint64(0); i < 50; i++ {
			now, err = e.Put(now, kv.EncodeKey(i), []byte{byte(gen), byte(i)}, 0)
			if err != nil {
				t.Fatal(err)
			}
		}
		now, err = e.FlushAll(now)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 50; i++ {
		_, got, found, err := e.Get(now, kv.EncodeKey(i))
		if err != nil || !found {
			t.Fatalf("key %d: %v %v", i, found, err)
		}
		if got[0] != 2 {
			t.Fatalf("key %d returned generation %d, want 2", i, got[0])
		}
	}
}

func testDelete(t *testing.T, open Factory) {
	s := open(t, true)
	e := s.Engine
	var now sim.Duration
	var err error
	now, err = e.Put(now, kv.EncodeKey(1), []byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	now, err = e.FlushAll(now) // key 1 reaches disk
	if err != nil {
		t.Fatal(err)
	}
	now, err = e.Delete(now, kv.EncodeKey(1))
	if err != nil {
		t.Fatal(err)
	}
	_, _, found, err := e.Get(now, kv.EncodeKey(1))
	if err != nil || found {
		t.Fatalf("deleted key visible: %v %v", found, err)
	}
	// Still deleted after the tombstone reaches disk.
	now, err = e.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	_, _, found, err = e.Get(now, kv.EncodeKey(1))
	if err != nil || found {
		t.Fatalf("deleted key visible after flush: %v %v", found, err)
	}
}

func testScanOrdering(t *testing.T, open Factory) {
	s := open(t, true)
	e := s.Engine
	ref := NewModel()
	var now sim.Duration
	var err error
	put := func(id uint64, v []byte) {
		now, err = e.Put(now, kv.EncodeKey(id), v, 0)
		if err != nil {
			t.Fatal(err)
		}
		ref.Put(id, v)
	}
	del := func(id uint64) {
		now, err = e.Delete(now, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
		ref.Delete(id)
	}
	// Interleave inserts (out of order), overwrites and deletes, with a
	// flush in the middle so part of the data is on disk and part in the
	// engine's write path (memtable / leaf cache / interior buffers).
	for i := uint64(0); i < 300; i += 2 {
		put(i, []byte{1, byte(i)})
	}
	now, err = e.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i < 300; i += 2 {
		put(i, []byte{2, byte(i)})
	}
	for i := uint64(0); i < 300; i += 7 {
		del(i)
	}
	for i := uint64(4); i < 300; i += 10 {
		put(i, []byte{3, byte(i)})
	}

	checkScan := func(start uint64, limit int) {
		t.Helper()
		_, got, err := e.Scan(now, kv.EncodeKey(start), limit)
		if err != nil {
			t.Fatal(err)
		}
		var want []uint64
		for _, id := range ref.IDs() {
			if ref.MustContain(id) && id >= start && len(want) < limit {
				want = append(want, id)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("scan(%d, %d): %d entries, want %d", start, limit, len(got), len(want))
		}
		for i, entry := range got {
			id, err := kv.DecodeKey(entry.Key)
			if err != nil {
				t.Fatal(err)
			}
			if id != want[i] {
				t.Fatalf("scan(%d, %d) position %d: key %d, want %d", start, limit, i, id, want[i])
			}
			if i > 0 && kv.CompareKeys(got[i-1].Key, entry.Key) >= 0 {
				t.Fatalf("scan out of order at %d", i)
			}
			refVal, ok := ref.Value(id)
			if !ok {
				t.Fatalf("scan surfaced key %d with no exact model value", id)
			}
			if !bytes.Equal(entry.Value, refVal) {
				t.Fatalf("scan key %d value %v, want %v", id, entry.Value, refVal)
			}
			if entry.ValueLen != len(refVal) {
				t.Fatalf("scan key %d ValueLen %d, want %d", id, entry.ValueLen, len(refVal))
			}
		}
	}
	checkScan(0, 1000) // everything
	checkScan(51, 40)  // interior window
	checkScan(295, 50) // tail
	checkScan(500, 10) // beyond the end
}

func testSynthValues(t *testing.T, open Factory) {
	s := open(t, true)
	e := s.Engine
	const keys, valLen = 400, 64
	gens := map[uint64]uint64{}
	var now sim.Duration
	var err error
	val := make([]byte, valLen)
	write := func(id, gen uint64) {
		k := kv.EncodeKey(id)
		kv.SynthValue(val, k, gen)
		now, err = e.Put(now, k, val, 0)
		if err != nil {
			t.Fatal(err)
		}
		gens[id] = gen
	}
	for id := uint64(0); id < keys; id++ {
		write(id, 1)
	}
	now, err = e.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite roughly half with a newer generation.
	for id := uint64(0); id < keys; id += 2 {
		write(id, 2)
	}
	want := make([]byte, valLen)
	for id := uint64(0); id < keys; id++ {
		k := kv.EncodeKey(id)
		var got []byte
		var found bool
		now, got, found, err = e.Get(now, k)
		if err != nil || !found {
			t.Fatalf("key %d: %v %v", id, found, err)
		}
		kv.SynthValue(want, k, gens[id])
		if !bytes.Equal(got, want) {
			t.Fatalf("key %d: value does not match SynthValue(gen %d)", id, gens[id])
		}
	}
}

func testReferenceMap(t *testing.T, open Factory) {
	s := open(t, false) // accounting mode: presence/absence only
	e := s.Engine
	rng := sim.NewRNG(77)
	ref := map[uint64]bool{}
	var now sim.Duration
	var err error
	for i := 0; i < 3000; i++ {
		id := rng.Uint64n(500)
		if rng.Uint64n(10) < 2 {
			now, err = e.Delete(now, kv.EncodeKey(id))
			ref[id] = false
		} else {
			now, err = e.Put(now, kv.EncodeKey(id), nil, 200)
			ref[id] = true
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = e.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range ref {
		_, _, found, err := e.Get(now, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
		if found != want {
			t.Fatalf("key %d: found=%v, want %v", id, found, want)
		}
	}
}

func testRecovery(t *testing.T, open Factory) {
	s := open(t, true)
	if s.Reopen == nil {
		t.Fatal("conformance requires a Reopen (recovery) path")
	}
	e := s.Engine
	var now sim.Duration
	var err error
	for id := uint64(0); id < 300; id++ {
		now, err = e.Put(now, kv.EncodeKey(id), []byte{1}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = e.FlushAll(now) // checkpoint / full flush
	if err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations live only in the journal.
	for id := uint64(0); id < 60; id++ {
		now, err = e.Put(now, kv.EncodeKey(id), []byte{2}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	for id := uint64(60); id < 90; id++ {
		now, err = e.Delete(now, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
	}
	now = e.Quiesce(now)
	re, rnow, err := s.Reopen(now)
	if err != nil {
		t.Fatal(err)
	}
	if rnow <= now {
		t.Fatal("recovery should advance virtual time (it reads the device)")
	}
	for id := uint64(0); id < 300; id++ {
		_, got, found, err := re.Get(rnow, kv.EncodeKey(id))
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case id < 60:
			if !found || got[0] != 2 {
				t.Fatalf("key %d: want journal value 2, got %v found=%v", id, got, found)
			}
		case id < 90:
			if found {
				t.Fatalf("key %d: deleted before crash but visible", id)
			}
		default:
			if !found || got[0] != 1 {
				t.Fatalf("key %d: want checkpointed value 1, got %v found=%v", id, got, found)
			}
		}
	}
	// The recovered engine accepts writes and persists them.
	rnow, err = re.Put(rnow, kv.EncodeKey(1000), []byte{9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.FlushAll(rnow); err != nil {
		t.Fatal(err)
	}
	_, got, found, err := re.Get(rnow, kv.EncodeKey(1000))
	if err != nil || !found || got[0] != 9 {
		t.Fatalf("post-recovery write lost: %v %v %v", got, found, err)
	}
}

// replayScript runs a fixed mixed workload and returns a fingerprint of
// everything observable: final virtual time, engine stats and device
// counters.
func replayScript(t *testing.T, s *Stack) string {
	e := s.Engine
	rng := sim.NewRNG(123)
	var now sim.Duration
	var err error
	key := make([]byte, kv.KeySize)
	for i := 0; i < 4000; i++ {
		id := rng.Uint64n(800)
		kv.AppendKey(key, id)
		switch {
		case rng.Uint64n(10) < 2:
			now, _, _, err = e.Get(now, key)
		case rng.Uint64n(20) == 0:
			now, err = e.Delete(now, key)
		default:
			now, err = e.Put(now, key, nil, 256)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	end, err := e.FlushAll(now)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%d %+v %+v", end, e.Stats(), s.Dev.Counters())
}

func testDeterministicReplay(t *testing.T, open Factory) {
	a := replayScript(t, open(t, false))
	b := replayScript(t, open(t, false))
	if a != b {
		t.Fatalf("identical workloads diverged:\n%s\n%s", a, b)
	}
}
