package kvtest

import (
	"bytes"
	"sort"
)

// Model is the engine-independent reference state a harness checks a
// store against. In the fault-free case every key's state is known
// exactly (Put/Delete). After a power cut, operations that were in
// flight when power died may or may not have survived, so a key can
// carry an ordered set of allowed states instead (AllowPut /
// AllowDelete): the recovered engine must present one of them. The
// candidate order mirrors submission order — under prefix-replay
// journaling the survivor is always some prefix of the in-flight
// sequence, so every intermediate state is a legal outcome.
type Model struct {
	entries map[uint64][]candidate
}

type candidate struct {
	val    []byte
	absent bool
}

// NewModel returns an empty reference model (every key absent).
func NewModel() *Model {
	return &Model{entries: make(map[uint64][]candidate)}
}

func cloneVal(v []byte) []byte {
	if v == nil {
		return []byte{}
	}
	return append([]byte(nil), v...)
}

// Put records that the key now holds exactly v.
func (m *Model) Put(id uint64, v []byte) {
	m.entries[id] = append(m.entries[id][:0], candidate{val: cloneVal(v)})
}

// Delete records that the key is now definitely absent.
func (m *Model) Delete(id uint64) {
	m.entries[id] = append(m.entries[id][:0], candidate{absent: true})
}

// AllowPut adds "the key holds v" to the key's allowed states (an
// acknowledged-but-maybe-lost write in the cut window).
func (m *Model) AllowPut(id uint64, v []byte) {
	m.ensure(id)
	m.entries[id] = append(m.entries[id], candidate{val: cloneVal(v)})
}

// AllowDelete adds "the key is absent" to the key's allowed states.
func (m *Model) AllowDelete(id uint64) {
	m.ensure(id)
	m.entries[id] = append(m.entries[id], candidate{absent: true})
}

// ensure seeds an untouched key's state (absent) so ambiguous ops
// extend a well-defined base.
func (m *Model) ensure(id uint64) {
	if _, ok := m.entries[id]; !ok {
		m.entries[id] = []candidate{{absent: true}}
	}
}

// Len returns the number of tracked keys.
func (m *Model) Len() int { return len(m.entries) }

// IDs returns every tracked key id in ascending order.
func (m *Model) IDs() []uint64 {
	ids := make([]uint64, 0, len(m.entries))
	for id := range m.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Ambiguous reports whether the key has more than one allowed state.
func (m *Model) Ambiguous(id uint64) bool { return len(m.entries[id]) > 1 }

// MustContain reports whether the key is present in every allowed
// state — a scan of the recovered engine must surface it.
func (m *Model) MustContain(id uint64) bool {
	cands, ok := m.entries[id]
	if !ok {
		return false
	}
	for _, c := range cands {
		if c.absent {
			return false
		}
	}
	return true
}

// MayContain reports whether the key is present in at least one allowed
// state — the only keys a scan is permitted to surface.
func (m *Model) MayContain(id uint64) bool {
	for _, c := range m.entries[id] {
		if !c.absent {
			return true
		}
	}
	return false
}

// Value returns the key's exact value. ok is false when the key is
// absent or ambiguous.
func (m *Model) Value(id uint64) (v []byte, ok bool) {
	cands := m.entries[id]
	if len(cands) != 1 || cands[0].absent {
		return nil, false
	}
	return cands[0].val, true
}

// Check verifies one observed Get result against the key's allowed
// states, reporting whether some state matches.
func (m *Model) Check(id uint64, val []byte, found bool) bool {
	cands, ok := m.entries[id]
	if !ok {
		return !found
	}
	for _, c := range cands {
		if c.absent {
			if !found {
				return true
			}
			continue
		}
		if found && bytes.Equal(c.val, val) {
			return true
		}
	}
	return false
}

// CheckValue verifies an observed present value (a scan entry) against
// the key's allowed present states.
func (m *Model) CheckValue(id uint64, val []byte) bool {
	for _, c := range m.entries[id] {
		if !c.absent && bytes.Equal(c.val, val) {
			return true
		}
	}
	return false
}
