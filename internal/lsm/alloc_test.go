package lsm

import (
	"testing"

	"ptsbench/internal/blockdev"
	"ptsbench/internal/extfs"
	"ptsbench/internal/flash"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
)

// TestSteadyStateOpAllocs pins the allocation-free op loop: once the
// engine is warm, a QD-1 Get performs zero heap allocations and a Put
// allocates nothing beyond the (amortized, >1/256 ops) memtable arena
// chunk refills. The memtable is sized so no rotation fires during the
// measured window — rotation/flush machinery is amortized background
// work measured by the perf suite, not the op loop.
func TestSteadyStateOpAllocs(t *testing.T) {
	ssd, err := flash.NewDevice(flash.Config{
		LogicalBytes:  256 << 20,
		PageSize:      4096,
		PagesPerBlock: 256,
		Profile:       flash.ProfileSSD1().Scaled(1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := extfs.Mount(blockdev.New(ssd), extfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(64 << 20)
	cfg.MemtableBytes = 1 << 30 // no rotation during the measured window
	db, err := Open(fs, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	const keys = 20000
	key := make([]byte, kv.KeySize)
	var now sim.Duration
	for id := uint64(0); id < keys; id++ {
		kv.AppendKey(key, id)
		if now, err = db.Put(now, key, nil, 400); err != nil {
			t.Fatal(err)
		}
	}

	var id uint64
	putAllocs := testing.AllocsPerRun(500, func() {
		kv.AppendKey(key, id%keys)
		id++
		var err error
		if now, err = db.Put(now, key, nil, 400); err != nil {
			t.Fatal(err)
		}
	})
	// Arena chunk refills amortize to well under 0.1 allocations per op.
	if putAllocs > 0.1 {
		t.Fatalf("steady-state Put allocates %.3f objects/op, want ~0", putAllocs)
	}

	// Warm every lookup structure (lazily built Bloom filters included),
	// then require strictly zero allocations per Get.
	for i := uint64(0); i < keys; i += 97 {
		kv.AppendKey(key, i)
		if now, _, _, err = db.Get(now, key); err != nil {
			t.Fatal(err)
		}
	}
	id = 0
	getAllocs := testing.AllocsPerRun(500, func() {
		kv.AppendKey(key, (id*97)%keys)
		id++
		var err error
		if now, _, _, err = db.Get(now, key); err != nil {
			t.Fatal(err)
		}
	})
	if getAllocs != 0 {
		t.Fatalf("steady-state Get allocates %.3f objects/op, want 0", getAllocs)
	}
}
