package lsm

import (
	"bytes"
	"container/heap"
	"sort"

	"ptsbench/internal/deverr"
	"ptsbench/internal/extfs"
	"ptsbench/internal/kv"
	"ptsbench/internal/sim"
	"ptsbench/internal/sstable"
)

// pickL0Compaction is the L0 worker's idle puller: it returns an L0->L1
// job when the file-count trigger fires (inputs marked busy), or nil.
func (d *DB) pickL0Compaction() sim.Job {
	if d.fatal != nil || d.closed {
		return nil
	}
	if len(d.levels[0]) >= d.cfg.L0CompactionTrigger && !d.anyBusy(d.levels[0]) {
		inputs := append([]*sstable.Table(nil), d.levels[0]...)
		lo, hi := rangeOf(inputs)
		overlap := overlapping(d.levels[1], lo, hi)
		if !d.anyBusy(overlap) {
			return d.newCompactionJob(0, 1, inputs, overlap)
		}
	}
	return nil
}

// pickDeepCompaction is the deep worker's idle puller: it selects the
// sorted level with the highest size score and compacts its
// least-overlapping file into the next level.
func (d *DB) pickDeepCompaction() sim.Job {
	if d.fatal != nil || d.closed {
		return nil
	}
	bestLevel, bestScore := -1, 1.0
	for li := 1; li < len(d.levels)-1; li++ {
		if len(d.levels[li]) == 0 {
			continue
		}
		score := float64(d.levelBytes[li]) / float64(d.cfg.levelTarget(li))
		if score > bestScore {
			bestScore, bestLevel = score, li
		}
	}
	if bestLevel < 0 {
		return nil
	}
	t := d.pickFileMinOverlap(bestLevel)
	if t == nil || d.busy[t.ID] {
		return nil
	}
	overlap := overlapping(d.levels[bestLevel+1], t.Smallest(), t.Largest())
	if d.anyBusy(overlap) {
		return nil
	}
	return d.newCompactionJob(bestLevel, bestLevel+1, []*sstable.Table{t}, overlap)
}

// pickFileMinOverlap selects the file of a level whose compaction into
// the next level rewrites the least data per byte moved — RocksDB's
// default kMinOverlappingRatio heuristic, which keeps the effective
// write amplification per level well below the worst case.
func (d *DB) pickFileMinOverlap(level int) *sstable.Table {
	files := d.levels[level]
	if len(files) == 0 {
		return nil
	}
	next := d.levels[level+1]
	var best *sstable.Table
	bestRatio := -1.0
	for _, t := range files {
		if d.busy[t.ID] {
			continue
		}
		lo, hi := overlapRange(next, t.Smallest(), t.Largest())
		var overlapBytes int64
		busy := false
		for _, o := range next[lo:hi] {
			if d.busy[o.ID] {
				busy = true
				break
			}
			overlapBytes += o.SizeBytes()
		}
		if busy {
			continue
		}
		ratio := float64(overlapBytes) / float64(t.SizeBytes()+1)
		if bestRatio < 0 || ratio < bestRatio {
			bestRatio = ratio
			best = t
		}
	}
	return best
}

func (d *DB) anyBusy(tables []*sstable.Table) bool {
	for _, t := range tables {
		if d.busy[t.ID] {
			return true
		}
	}
	return false
}

// rangeOf returns the smallest and largest keys across tables.
func rangeOf(tables []*sstable.Table) (lo, hi []byte) {
	for _, t := range tables {
		if t.NumEntries() == 0 {
			continue
		}
		if lo == nil || bytes.Compare(t.Smallest(), lo) < 0 {
			lo = t.Smallest()
		}
		if hi == nil || bytes.Compare(t.Largest(), hi) > 0 {
			hi = t.Largest()
		}
	}
	return lo, hi
}

// overlapRange returns the half-open index range [i, j) of the files in
// a sorted, non-overlapping level whose key ranges intersect [lo, hi]
// (inclusive; nil bounds are unbounded). Binary search on the sorted
// level replaces the per-file scan — the pickers call this for every
// candidate file, so the level-squared comparison cost used to dominate
// compaction scheduling.
func overlapRange(level []*sstable.Table, lo, hi []byte) (int, int) {
	i := 0
	if lo != nil {
		i = sort.Search(len(level), func(k int) bool {
			return kv.CompareKeys(level[k].Largest(), lo) >= 0
		})
	}
	j := i
	for j < len(level) && (hi == nil || kv.CompareKeys(level[j].Smallest(), hi) <= 0) {
		j++
	}
	return i, j
}

// overlapping returns the tables in a sorted level intersecting [lo, hi]
// as a subslice view of the level (callers copy what they retain).
func overlapping(level []*sstable.Table, lo, hi []byte) []*sstable.Table {
	i, j := overlapRange(level, lo, hi)
	return level[i:j]
}

// compactionJob merges input tables from fromLevel and toLevel into new
// toLevel tables, charging reads and writes in chunks.
type compactionJob struct {
	d         *DB
	fromLevel int
	toLevel   int
	inputs    []*sstable.Table // all inputs (both levels)
	fromCount int              // first fromCount inputs are fromLevel files
	fromIDs   map[uint64]bool  // IDs from fromLevel
	images    []*sstable.FileImage

	// I/O progress.
	readPagesTotal int64
	readCharged    int64
	readCursorFile int
	readCursorPage int64
	imgIdx         int
	imgWritten     int64
	outFiles       []*extfs.File
	started        bool
}

func (d *DB) newCompactionJob(from, to int, fromTables, toTables []*sstable.Table) *compactionJob {
	j := &compactionJob{
		d:         d,
		fromLevel: from,
		toLevel:   to,
		fromIDs:   make(map[uint64]bool),
	}
	j.inputs = append(append([]*sstable.Table(nil), fromTables...), toTables...)
	j.fromCount = len(fromTables)
	for _, t := range fromTables {
		j.fromIDs[t.ID] = true
	}
	for _, t := range j.inputs {
		d.busy[t.ID] = true
		j.readPagesTotal += t.FilePages()
	}
	d.shapeBusy++
	j.merge()
	return j
}

// merge computes the output images (CPU-instant; I/O is charged in
// Step). Duplicate user keys keep only the highest sequence number;
// tombstones are dropped when the output level is the deepest populated
// level.
func (j *compactionJob) merge() {
	d := j.d
	drop := j.toLevel >= d.deepestPopulatedLevel()
	remaining := 0
	var inputBytes int64
	for _, t := range j.inputs {
		remaining += t.NumEntries()
		inputBytes += t.SizeBytes()
	}
	if j.fromCount == 1 && !d.cfg.Content {
		// Deep compactions (one input file against its sorted overlap
		// run) take the galloping bulk path: runs of entries between
		// merge boundaries are appended straight from the input tables'
		// side indexes, with binary-searched boundaries instead of a
		// per-entry compare-and-copy.
		j.mergeFast(drop, remaining, inputBytes)
		return
	}
	// The toLevel inputs are a sorted, non-overlapping run: concatenate
	// them (no comparisons) and merge against the fromLevel files. The
	// common deep compaction — one input file against its overlap run —
	// becomes a two-way merge with a single comparison per entry instead
	// of a heap.
	its := make([]kv.Iterator, 0, j.fromCount+1)
	for _, t := range j.inputs[:j.fromCount] {
		its = append(its, t.Iterator())
	}
	if len(j.inputs) > j.fromCount {
		its = append(its, newConcatIter(j.inputs[j.fromCount:]))
	}
	var m kv.Iterator
	switch len(its) {
	case 1:
		m = its[0]
	case 2:
		m = newTwoWayMergeIter(its[0], its[1])
	default:
		m = newMergeIter(its)
	}
	// Presize each output builder for the entries one target-size file
	// holds (remaining entries when fewer) — dedup only shrinks the need.
	perFileHint := j.perFileEntryHint(remaining, inputBytes)
	var b *sstable.Builder
	var lastKey []byte
	flushImage := func() {
		if b != nil && b.NumEntries() > 0 {
			d.nextFileID++
			j.images = append(j.images, b.Finish(d.nextFileID))
		}
		b = nil
	}
	for m.Next() {
		e := m.Entry()
		if lastKey != nil && bytes.Equal(e.Key, lastKey) {
			continue // older duplicate
		}
		lastKey = append(lastKey[:0], e.Key...)
		if e.Deleted && drop {
			continue
		}
		if b == nil {
			hint := perFileHint
			if remaining < hint {
				hint = remaining
			}
			b = sstable.NewBuilderHint(d.fs.PageSize(), d.cfg.BlockBytes, d.cfg.Content, hint)
		}
		remaining--
		if err := b.Add(e); err != nil {
			d.fatal = deverr.Latch(err)
			return
		}
		if b.EstimatedBytes() >= d.cfg.TargetFileBytes {
			flushImage()
		}
	}
	flushImage()
}

// perFileEntryHint sizes an output builder for one target-size file.
func (j *compactionJob) perFileEntryHint(remaining int, inputBytes int64) int {
	perFileHint := remaining
	if remaining > 0 && inputBytes > 0 {
		avg := inputBytes / int64(remaining)
		if avg > 0 {
			if h := int(j.d.cfg.TargetFileBytes/avg) + 16; h < perFileHint {
				perFileHint = h
			}
		}
	}
	return perFileHint
}

// mergeFast is merge for the deep-compaction shape (one fromLevel file,
// a sorted non-overlapping toLevel run) in accounting mode. It produces
// bit-identical output images to the per-entry heap merge: the same
// entries in the same order with the same file-roll points — runs
// between merge boundaries are just appended in bulk, and only the
// boundary entries (equal user keys across the two sides) are compared
// individually. Equal keys keep the newer (higher-seq) version, exactly
// like the heap's (key asc, seq desc) order plus last-key dedup.
func (j *compactionJob) mergeFast(drop bool, remaining int, inputBytes int64) {
	d := j.d
	from := j.inputs[0]
	toTables := j.inputs[1:]
	target := d.cfg.TargetFileBytes
	perFileHint := j.perFileEntryHint(remaining, inputBytes)

	var b *sstable.Builder
	flushImage := func() {
		if b != nil && b.NumEntries() > 0 {
			d.nextFileID++
			j.images = append(j.images, b.Finish(d.nextFileID))
		}
		b = nil
	}
	emitRange := func(t *sstable.Table, lo, hi int) {
		for lo < hi {
			if b == nil {
				hint := perFileHint
				if remaining < hint {
					hint = remaining
				}
				b = sstable.NewBuilderHint(d.fs.PageSize(), d.cfg.BlockBytes, false, hint)
			}
			next := b.AppendTableRange(t, lo, hi, drop, target)
			remaining -= next - lo
			lo = next
			if b.EstimatedBytes() >= target {
				flushImage()
			}
		}
	}

	fi, fn := 0, from.NumEntries()
	tIdx, ti := 0, 0
	for {
		if tIdx >= len(toTables) {
			emitRange(from, fi, fn)
			break
		}
		tt := toTables[tIdx]
		tn := tt.NumEntries()
		if ti >= tn {
			tIdx++
			ti = 0
			continue
		}
		if fi >= fn {
			emitRange(tt, ti, tn)
			tIdx++
			ti = 0
			continue
		}
		switch c := kv.CompareKeys(from.KeyAt(fi), tt.KeyAt(ti)); {
		case c > 0:
			upper := tt.SearchFrom(ti, from.KeyAt(fi))
			emitRange(tt, ti, upper)
			ti = upper
		case c < 0:
			upper := from.SearchFrom(fi, tt.KeyAt(ti))
			emitRange(from, fi, upper)
			fi = upper
		default:
			// Same user key on both sides: keep the newer version, drop
			// the older (the heap emitted newer first and deduped).
			if from.SeqAt(fi) >= tt.SeqAt(ti) {
				emitRange(from, fi, fi+1)
			} else {
				emitRange(tt, ti, ti+1)
			}
			remaining-- // the shadowed version is consumed without output
			fi++
			ti++
		}
	}
	flushImage()
}

// deepestPopulatedLevel returns the index of the deepest level containing
// data (or 0).
func (d *DB) deepestPopulatedLevel() int {
	for li := len(d.levels) - 1; li >= 1; li-- {
		if len(d.levels[li]) > 0 {
			return li
		}
	}
	return 0
}

// writePagesTotal sums output image pages.
func (j *compactionJob) writePagesTotal() int64 {
	var n int64
	for _, img := range j.images {
		n += img.Pages
	}
	return n
}

// Step implements sim.Job: each step charges one chunk of read I/O
// (proportional to progress) and one chunk of write I/O.
func (j *compactionJob) Step(now sim.Duration) (sim.Duration, bool) {
	d := j.d
	if d.fatal != nil {
		j.abort()
		return now, true
	}
	j.started = true
	chunk := int64(d.cfg.ChunkPages)
	writeTotal := j.writePagesTotal()

	// Charge proportional input reads so reads and writes interleave:
	// after writing w of W pages, reads charged should be ~ w/W of R.
	var readTarget int64
	if writeTotal > 0 {
		written := j.totalWritten()
		readTarget = j.readPagesTotal * (written + chunk) / writeTotal
		if readTarget > j.readPagesTotal {
			readTarget = j.readPagesTotal
		}
	} else {
		readTarget = j.readCharged + chunk
		if readTarget > j.readPagesTotal {
			readTarget = j.readPagesTotal
		}
	}
	now = j.chargeReads(now, readTarget)

	// Write one chunk of the current output image.
	if j.imgIdx < len(j.images) {
		img := j.images[j.imgIdx]
		if j.imgWritten == 0 {
			// The id was minted when the image was built; the file name
			// must be derived from it, not from a fresh sstName draw.
			f, err := d.fs.Create(sstFileName(img.ID()))
			if err != nil {
				d.fatal = deverr.Latch(err)
				j.abort()
				return now, true
			}
			j.outFiles = append(j.outFiles, f)
		}
		var done bool
		var err error
		before := j.imgWritten
		now, j.imgWritten, done, err = img.WriteChunk(now, j.outFiles[j.imgIdx], j.imgWritten, d.cfg.ChunkPages)
		if err != nil {
			d.fatal = deverr.Latch(err)
			j.abort()
			return now, true
		}
		d.ioStats.CompactionWriteB += (j.imgWritten - before) * int64(d.fs.PageSize())
		if done {
			j.imgIdx++
			j.imgWritten = 0
		}
		return now, false
	}
	// All writes issued; finish remaining reads, then commit.
	if j.readCharged < j.readPagesTotal {
		now = j.chargeReads(now, minI64(j.readCharged+chunk, j.readPagesTotal))
		return now, false
	}
	return j.commit(now), true
}

func (j *compactionJob) totalWritten() int64 {
	var n int64
	for i := 0; i < j.imgIdx; i++ {
		n += j.images[i].Pages
	}
	return n + j.imgWritten
}

// chargeReads advances input read accounting up to target pages. With
// CompactionReadParallelism > 1 the per-file read requests of one step
// are submitted at the same virtual time in waves of that size, so
// reads from distinct input files overlap on the device's internal
// lanes; otherwise each read queues behind the previous one.
func (j *compactionJob) chargeReads(now sim.Duration, target int64) sim.Duration {
	par := j.d.cfg.CompactionReadParallelism
	inFlight := 0
	waveEnd := now
	for j.readCharged < target && j.readCursorFile < len(j.inputs) {
		t := j.inputs[j.readCursorFile]
		remainInFile := t.FilePages() - j.readCursorPage
		if remainInFile <= 0 {
			j.readCursorFile++
			j.readCursorPage = 0
			continue
		}
		n := target - j.readCharged
		if n > remainInFile {
			n = remainInFile
		}
		done, err := t.ReadPages(now, j.readCursorPage, int(n))
		if err != nil {
			j.d.fatal = deverr.Latch(err)
			return now
		}
		if done > waveEnd {
			waveEnd = done
		}
		inFlight++
		if inFlight >= par {
			now = waveEnd
			inFlight = 0
		}
		j.readCursorPage += n
		j.readCharged += n
		j.d.ioStats.CompactionReadB += n * int64(j.d.fs.PageSize())
	}
	return waveEnd
}

// commit atomically installs outputs and removes inputs.
func (j *compactionJob) commit(now sim.Duration) sim.Duration {
	d := j.d
	// Install outputs into toLevel.
	outputs := make([]*sstable.Table, len(j.images))
	for i, img := range j.images {
		outputs[i] = img.Install(j.outFiles[i])
	}
	// Remove inputs from their levels.
	inputIDs := make(map[uint64]bool, len(j.inputs))
	for _, t := range j.inputs {
		inputIDs[t.ID] = true
		delete(d.busy, t.ID)
		if j.fromIDs[t.ID] {
			d.levelBytes[j.fromLevel] -= t.SizeBytes()
		} else {
			d.levelBytes[j.toLevel] -= t.SizeBytes()
		}
	}
	for _, li := range []int{j.fromLevel, j.toLevel} {
		kept := d.levels[li][:0]
		for _, t := range d.levels[li] {
			if !inputIDs[t.ID] {
				kept = append(kept, t)
			}
		}
		d.levels[li] = kept
	}
	// Insert outputs sorted by smallest key.
	d.levels[j.toLevel] = insertSorted(d.levels[j.toLevel], outputs)
	for _, t := range outputs {
		d.levelBytes[j.toLevel] += t.SizeBytes()
	}
	d.shapeChanged()
	// Delete input files (extents freed; no TRIM under nodiscard). The
	// ordering against the manifest write differs by mode: in content mode
	// the inputs must outlive it — recovery can fall back to the older
	// manifest slot, which still names them, so removing them first would
	// make a cut inside the commit window unrecoverable. Accounting mode
	// cannot recover anyway and keeps the historical remove-first order so
	// allocator state (and the golden fixtures pinned to it) stays
	// bit-identical.
	removeInputs := func() {
		for _, t := range j.inputs {
			if err := d.fs.Remove(t.FileName()); err != nil {
				d.fatal = deverr.Latch(err)
			}
		}
	}
	if !d.cfg.Content {
		removeInputs()
	}
	var err error
	if now, err = d.fs.Sync(now); err != nil {
		d.fatal = deverr.Latch(err)
		return now
	}
	if now, err = d.writeManifest(now); err != nil {
		d.fatal = deverr.Latch(err)
		return now
	}
	if d.cfg.Content {
		if err := d.fs.Barrier(); err != nil {
			d.fatal = deverr.Latch(err)
			return now
		}
		removeInputs()
	}
	d.ioStats.Compactions++
	return now
}

// abort unmarks inputs and removes partial outputs.
func (j *compactionJob) abort() {
	d := j.d
	for _, t := range j.inputs {
		delete(d.busy, t.ID)
	}
	d.shapeBusy++
	for _, f := range j.outFiles {
		_ = d.fs.Remove(f.Name())
	}
	j.outFiles = nil
}

// insertSorted merges outputs into a level keeping smallest-key order.
func insertSorted(level, outputs []*sstable.Table) []*sstable.Table {
	level = append(level, outputs...)
	// Insertion sort: levels are small and mostly sorted.
	for i := 1; i < len(level); i++ {
		for k := i; k > 0 && bytes.Compare(level[k].Smallest(), level[k-1].Smallest()) < 0; k-- {
			level[k], level[k-1] = level[k-1], level[k]
		}
	}
	return level
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// mergeIter is a k-way merge over iterators ordered by (key asc, seq
// desc). Elements hold entries by value, so advancing the merge performs
// no per-entry allocation; Entry stays valid only until the next call to
// Next, which every consumer already respects (they copy what they keep).
type mergeIter struct {
	h   mergeHeap
	cur kv.Entry
}

type mergeElem struct {
	it kv.Iterator
	e  kv.Entry
}

type mergeHeap []mergeElem

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return kv.Compare(&h[i].e, &h[j].e) < 0 }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(mergeElem)) }
func (h *mergeHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func newMergeIter(its []kv.Iterator) *mergeIter {
	m := &mergeIter{}
	for _, it := range its {
		if it.Next() {
			m.h = append(m.h, mergeElem{it: it, e: *it.Entry()})
		}
	}
	heap.Init(&m.h)
	return m
}

func (m *mergeIter) Next() bool {
	if len(m.h) == 0 {
		return false
	}
	top := &m.h[0]
	m.cur = top.e
	if top.it.Next() {
		top.e = *top.it.Entry()
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return true
}

func (m *mergeIter) Entry() *kv.Entry { return &m.cur }

// concatIter iterates the tables of a sorted, non-overlapping run in
// order — comparison-free, because within such a run table i's largest
// key precedes table i+1's smallest.
type concatIter struct {
	tables []*sstable.Table
	cur    kv.Iterator
	idx    int
}

func newConcatIter(tables []*sstable.Table) *concatIter {
	return &concatIter{tables: tables}
}

func (c *concatIter) Next() bool {
	for {
		if c.cur != nil && c.cur.Next() {
			return true
		}
		if c.idx >= len(c.tables) {
			return false
		}
		c.cur = c.tables[c.idx].Iterator()
		c.idx++
	}
}

func (c *concatIter) Entry() *kv.Entry { return c.cur.Entry() }

// twoWayMergeIter merges two (key asc, seq desc)-ordered iterators with
// one comparison per emitted entry — the shape of every deep compaction
// (one input file against its next-level overlap run).
type twoWayMergeIter struct {
	a, b     kv.Iterator
	aOK, bOK bool
	last     int // 1 = a emitted last, 2 = b, 0 = none
}

func newTwoWayMergeIter(a, b kv.Iterator) *twoWayMergeIter {
	return &twoWayMergeIter{a: a, b: b, aOK: a.Next(), bOK: b.Next()}
}

func (m *twoWayMergeIter) Next() bool {
	switch m.last {
	case 1:
		m.aOK = m.a.Next()
	case 2:
		m.bOK = m.b.Next()
	}
	switch {
	case m.aOK && m.bOK:
		if kv.Compare(m.a.Entry(), m.b.Entry()) <= 0 {
			m.last = 1
		} else {
			m.last = 2
		}
	case m.aOK:
		m.last = 1
	case m.bOK:
		m.last = 2
	default:
		m.last = 0
		return false
	}
	return true
}

func (m *twoWayMergeIter) Entry() *kv.Entry {
	if m.last == 1 {
		return m.a.Entry()
	}
	return m.b.Entry()
}
