// Package lsm implements a leveled log-structured merge tree in the style
// of RocksDB: a skiplist memtable in front of a write-ahead log, flushed
// into overlapping L0 tables, compacted into non-overlapping sorted runs
// L1..Ln with exponentially growing targets. Background flush and
// compaction run on simulation workers that share the device FIFO with
// foreground traffic, so compaction bursts delay user operations exactly
// as they do in the paper's measurements.
package lsm

import (
	"fmt"
	"time"
)

// Config holds the engine's tuning knobs. NewConfig supplies RocksDB-like
// defaults scaled for the simulation; zero values are filled by Validate.
type Config struct {
	// MemtableBytes rotates the memtable when its estimated footprint
	// exceeds this size.
	MemtableBytes int64
	// MaxImmutableMemtables stalls writes when this many rotated
	// memtables await flushing.
	MaxImmutableMemtables int
	// L0CompactionTrigger starts an L0->L1 compaction at this many L0
	// files.
	L0CompactionTrigger int
	// L0SlowdownTrigger throttles writes to DelayedWriteBytesPerSec at
	// this many L0 files (RocksDB's level0_slowdown_writes_trigger).
	L0SlowdownTrigger int
	// L0StallTrigger stops writes at this many L0 files.
	L0StallTrigger int
	// SoftPendingBytes throttles writes once the estimated compaction
	// debt exceeds it (RocksDB's soft_pending_compaction_bytes_limit);
	// HardPendingBytes stops writes.
	SoftPendingBytes int64
	HardPendingBytes int64
	// DelayedWriteBytesPerSec is the throttled ingest rate under
	// slowdown conditions (RocksDB's delayed_write_rate).
	DelayedWriteBytesPerSec int64
	// BaseLevelBytes is the L1 size target; level i>=1 targets
	// BaseLevelBytes * LevelSizeMultiplier^(i-1).
	BaseLevelBytes int64
	// LevelSizeMultiplier is the per-level growth factor.
	LevelSizeMultiplier int
	// NumLevels bounds the level count (L0 plus NumLevels-1 sorted
	// levels).
	NumLevels int
	// TargetFileBytes splits compaction outputs into files of roughly
	// this size.
	TargetFileBytes int64
	// BlockBytes is the SSTable data block target.
	BlockBytes int

	// DisableWAL turns off write-ahead logging (used by some ablations).
	DisableWAL bool
	// SyncWAL enables WAL persistence. With WALFlushBytes == 0 every put
	// syncs (fully durable); with WALFlushBytes > 0 appends are buffered
	// and flushed in batches, like a WAL going through the OS page cache
	// (the common benchmark configuration, and the paper's: direct I/O
	// applies to data files, not the log).
	SyncWAL bool
	// WALFlushBytes batches WAL writes (see SyncWAL).
	WALFlushBytes int64

	// CPUPutTime and CPUGetTime model per-operation engine CPU cost
	// (memtable insert, comparisons, MVCC bookkeeping); CPUPerByte adds
	// the payload-size-dependent part (copies, checksums), so small
	// values run at much higher op rates, as in the paper's Fig 11.
	CPUPutTime time.Duration
	CPUGetTime time.Duration
	CPUPerByte time.Duration

	// ChunkPages is the I/O granularity of background jobs: how many
	// pages a flush or compaction writes per job step. Smaller chunks
	// interleave more finely with foreground I/O.
	ChunkPages int

	// ProbeParallelism is the number of SSTable point lookups a Get
	// issues concurrently (same virtual submission time) when the key
	// misses the memtables: candidate tables across L0 files and the
	// sorted levels are probed in priority-ordered waves of this size,
	// overlapping their block reads on the device's internal lanes.
	// 1 (the default) probes strictly sequentially, the classic
	// queue-depth-1 read path.
	ProbeParallelism int

	// CompactionReadParallelism is the number of input-table read
	// requests a compaction step keeps in flight at once. With more
	// than one, reads from distinct input files overlap on the device.
	// Default 1 (sequential).
	CompactionReadParallelism int

	// Content selects content mode: values are materialized and written
	// through to the device (requires a content-enabled block device).
	Content bool
}

// NewConfig returns RocksDB-flavoured defaults for a dataset of roughly
// datasetBytes. The level structure is sized so the dataset settles into
// roughly three sorted levels with a size ratio of 8, giving a
// steady-state WA-A near the paper's measured ~12 (WAL + flush + ~2.5
// effective level crossings).
func NewConfig(datasetBytes int64) Config {
	mem := datasetBytes / 256
	if mem < 64<<10 {
		mem = 64 << 10
	}
	return Config{
		MemtableBytes:           mem,
		MaxImmutableMemtables:   2,
		L0CompactionTrigger:     4,
		L0SlowdownTrigger:       20,
		L0StallTrigger:          36,
		SoftPendingBytes:        datasetBytes / 6,
		HardPendingBytes:        datasetBytes / 2,
		DelayedWriteBytesPerSec: 16 << 20,
		BaseLevelBytes:          mem * 4,
		LevelSizeMultiplier:     8,
		NumLevels:               7,
		TargetFileBytes:         mem / 2,
		BlockBytes:              32 << 10,
		SyncWAL:                 true,
		WALFlushBytes:           mem / 64,
		CPUPutTime:              20 * time.Microsecond,
		CPUGetTime:              15 * time.Microsecond,
		CPUPerByte:              16 * time.Nanosecond,
		ChunkPages:              32,
	}
}

// Validate fills defaults and rejects nonsense.
func (c Config) Validate() (Config, error) {
	if c.MemtableBytes <= 0 {
		return c, fmt.Errorf("lsm: MemtableBytes must be positive")
	}
	if c.MaxImmutableMemtables <= 0 {
		c.MaxImmutableMemtables = 2
	}
	if c.L0CompactionTrigger <= 0 {
		c.L0CompactionTrigger = 4
	}
	if c.L0SlowdownTrigger <= c.L0CompactionTrigger {
		c.L0SlowdownTrigger = c.L0CompactionTrigger * 5
	}
	if c.L0StallTrigger <= c.L0SlowdownTrigger {
		c.L0StallTrigger = c.L0SlowdownTrigger + 16
	}
	if c.DelayedWriteBytesPerSec <= 0 {
		c.DelayedWriteBytesPerSec = 16 << 20
	}
	if c.BaseLevelBytes <= 0 {
		c.BaseLevelBytes = c.MemtableBytes * 4
	}
	if c.LevelSizeMultiplier < 2 {
		c.LevelSizeMultiplier = 10
	}
	if c.NumLevels < 2 {
		c.NumLevels = 7
	}
	if c.TargetFileBytes <= 0 {
		c.TargetFileBytes = c.MemtableBytes
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = 32 << 10
	}
	if c.ChunkPages <= 0 {
		c.ChunkPages = 64
	}
	if c.ProbeParallelism < 1 {
		c.ProbeParallelism = 1
	}
	if c.CompactionReadParallelism < 1 {
		c.CompactionReadParallelism = 1
	}
	return c, nil
}

// levelTarget returns the byte target for sorted level i (1-based).
func (c Config) levelTarget(i int) int64 {
	t := c.BaseLevelBytes
	for ; i > 1; i-- {
		t *= int64(c.LevelSizeMultiplier)
	}
	return t
}
