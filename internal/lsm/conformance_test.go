package lsm

import (
	"testing"

	"ptsbench/internal/kvtest"
	"ptsbench/internal/sim"
)

// TestEngineConformance runs the shared engine-conformance suite (see
// internal/kvtest) over the LSM: the same put/get/scan/recovery
// contract the B+Tree and Bε-tree are held to.
func TestEngineConformance(t *testing.T) {
	kvtest.Run(t, func(t *testing.T, content bool) *kvtest.Stack {
		db, dev, fs := testEnv(t, 32, content, func(c *Config) {
			c.MemtableBytes = 16 << 10 // rotate fast: flushed tables participate
			// The suite asserts per-operation durability across a crash;
			// the default group sync (WALFlushBytes > 0) legitimately
			// loses the unsynced tail, so pin the fully-synced mode here.
			c.WALFlushBytes = 0
		})
		return &kvtest.Stack{
			Engine: db,
			Dev:    dev,
			Reopen: func(now sim.Duration) (kvtest.Engine, sim.Duration, error) {
				re, rnow, err := Recover(fs, db.cfg, sim.NewRNG(42), now)
				if err != nil {
					return nil, rnow, err
				}
				return re, rnow, nil
			},
		}
	})
}
