package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"ptsbench/internal/deverr"
	"ptsbench/internal/extfs"
	"ptsbench/internal/kv"
	"ptsbench/internal/memtable"
	"ptsbench/internal/sim"
	"ptsbench/internal/sstable"
	"ptsbench/internal/wal"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("lsm: database is closed")

// DB is the LSM engine. It is single-threaded by design: the simulation
// drives it from one goroutine, and "background" work runs on sim.Worker
// actors pumped from the foreground path.
type DB struct {
	cfg Config
	fs  *extfs.FS
	rng *sim.RNG

	mem  *memtable.Memtable
	imm  []*immutable // rotated memtables awaiting flush, oldest first
	walW *wal.Writer  // segment for the active memtable

	// levels[0] is L0 (overlapping, newest first); levels[i>=1] are
	// sorted runs ordered by smallest key.
	levels [][]*sstable.Table
	busy   map[uint64]bool // table IDs participating in a compaction
	// levelBytes caches per-level logical sizes, maintained at flush and
	// compaction commits, so backpressure checks are O(levels) per put.
	levelBytes []int64

	seq        uint64
	nextFileID uint64
	walID      uint64
	// flushedSeq is the highest KV sequence number known to be covered by
	// a table named in the manifest. Persisted there, it lets recovery
	// skip WAL records at or below the mark — without it, a recycled
	// segment whose header-zeroing write was lost in a crash would
	// resurrect stale records into the memtable, which Get prefers over
	// the (newer) table state.
	flushedSeq  uint64
	walPool     []*wal.Writer // recycled segments awaiting reuse
	manifestSeq uint64

	flushW *sim.Worker
	// Two compaction workers mirror RocksDB's background pool: L0->L1
	// compactions must not queue behind long deep-level compactions, or
	// L0 fills and the engine stalls far below its sustainable rate.
	compactW  *sim.Worker // L0 -> L1
	compactWD *sim.Worker // deep levels (L1+)

	// probeCandidates is scratch for getParallel, reused across Gets.
	probeCandidates []*sstable.Table

	// shapeL0/shapeDeep/shapeBusy version the picker-relevant state:
	// levels[0]+levelBytes[0], the sorted levels, and the busy set. The
	// idle pullers are consulted on every foreground operation; memoizing
	// "no work available at shape S" makes those probes O(1) instead of
	// re-scanning file overlaps per operation. The split matters because
	// flushes — by far the most frequent shape change — touch only L0,
	// which the deep picker never reads, so they must not invalidate the
	// deep picker's memo. Any mutation of levels, levelBytes or busy must
	// bump the matching counter(s).
	shapeL0      uint64
	shapeDeep    uint64
	shapeBusy    uint64
	l0ProbedAt   uint64 // shapeSum for L0 at last nil pickL0Compaction
	deepProbedAt uint64 // shapeSum for deep at last nil pickDeepCompaction
	debtShape    uint64 // shapeL0+shapeDeep the debt memo was computed at
	debtMemo     int64  // memoized compactionDebt (0 is a valid value; keyed by debtShape, which starts unmatched)

	stats   kv.EngineStats
	ioStats IOStats
	fatal   error // out-of-space or similar; surfaced on every call
	closed  bool
}

type immutable struct {
	mt     *memtable.Memtable
	walW   *wal.Writer // segment covering this memtable, recycled after flush
	maxSeq uint64      // KV sequence high-water mark at rotation
}

// IOStats exposes internal activity counters for tests and reports.
type IOStats struct {
	Flushes          int64
	Compactions      int64
	CompactionReadB  int64
	CompactionWriteB int64
	StallEvents      int64
}

// Open creates an LSM database on fs. The filesystem must be empty (the
// simulation never re-opens a cold store at benchmark scale; see Recover
// for the content-mode crash-recovery path).
func Open(fs *extfs.FS, cfg Config, rng *sim.RNG) (*DB, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	d := &DB{
		cfg:        cfg,
		fs:         fs,
		rng:        rng,
		levels:     make([][]*sstable.Table, cfg.NumLevels),
		levelBytes: make([]int64, cfg.NumLevels),
		busy:       make(map[uint64]bool),
		flushW:     sim.NewWorker("lsm-flush"),
		compactW:   sim.NewWorker("lsm-compact-l0"),
		compactWD:  sim.NewWorker("lsm-compact-deep"),
	}
	d.shapeL0 = 1
	d.mem = memtable.New(rng.Split())
	if !cfg.DisableWAL {
		w, err := wal.Create(fs, d.walName(), cfg.Content)
		if err != nil {
			return nil, err
		}
		d.walW = w
	}
	d.compactW.SetIdlePuller(d.pullL0Compaction)
	d.compactWD.SetIdlePuller(d.pullDeepCompaction)
	return d, nil
}

// shapeChanged invalidates both pickers' no-work memos; mutations with a
// narrower footprint bump the individual counters instead.
func (d *DB) shapeChanged() {
	d.shapeL0++
	d.shapeDeep++
	d.shapeBusy++
}

// pullL0Compaction wraps pickL0Compaction with the shape memo: the picker
// is a pure function of the tree shape, so a nil answer stays nil until
// the state it reads (L0, L1, busy set) changes.
func (d *DB) pullL0Compaction() sim.Job {
	s := d.shapeL0 + d.shapeDeep + d.shapeBusy
	if d.l0ProbedAt == s {
		return nil
	}
	j := d.pickL0Compaction()
	if j == nil {
		d.l0ProbedAt = s
	}
	return j
}

// pullDeepCompaction is the memoized pickDeepCompaction; it reads only
// the sorted levels and the busy set, never L0.
func (d *DB) pullDeepCompaction() sim.Job {
	s := d.shapeDeep + d.shapeBusy
	if d.deepProbedAt == s {
		return nil
	}
	j := d.pickDeepCompaction()
	if j == nil {
		d.deepProbedAt = s
	}
	return j
}

func (d *DB) walName() string {
	d.walID++
	return fmt.Sprintf("wal-%06d", d.walID)
}

// sstFileName names the file holding table id. The name is derived
// from the id embedded in the table's footer — never minted separately
// — so recovery can bind the two and refuse a stale image a lying
// device resurrected under a newer name.
func sstFileName(id uint64) string {
	return fmt.Sprintf("sst-%06d", id)
}

func (d *DB) sstName() string {
	d.nextFileID++
	return sstFileName(d.nextFileID)
}

// Config returns the validated configuration.
func (d *DB) Config() Config { return d.cfg }

// Stats implements kv.Engine.
func (d *DB) Stats() kv.EngineStats { return d.stats }

// IO returns internal activity counters.
func (d *DB) IO() IOStats { return d.ioStats }

// DiskUsageBytes implements kv.Engine: the engine owns its filesystem, so
// the filesystem footprint is the engine footprint.
func (d *DB) DiskUsageBytes() int64 { return d.fs.UsedBytes() }

// LevelSizes returns the current byte size of each level (L0 first).
func (d *DB) LevelSizes() []int64 {
	out := make([]int64, len(d.levelBytes))
	copy(out, d.levelBytes)
	return out
}

// compactionDebt estimates pending compaction bytes: everything in L0
// plus each sorted level's excess over its target (RocksDB's
// estimated_pending_compaction_bytes analogue). The value is a pure
// function of levelBytes, so it is memoized on the shape counters — the
// stall and slowdown checks consult it on every write.
func (d *DB) compactionDebt() int64 {
	s := d.shapeL0 + d.shapeDeep
	if d.debtShape == s {
		return d.debtMemo
	}
	debt := d.levelBytes[0]
	for li := 1; li < len(d.levelBytes)-1; li++ {
		if excess := d.levelBytes[li] - d.cfg.levelTarget(li); excess > 0 {
			debt += excess
		}
	}
	d.debtShape, d.debtMemo = s, debt
	return debt
}

// pump advances background workers to the foreground time.
func (d *DB) pump(now sim.Duration) {
	d.flushW.Pump(now)
	d.compactW.Pump(now)
	d.compactWD.Pump(now)
}

// Put implements kv.Engine.
func (d *DB) Put(now sim.Duration, key, value []byte, valueLen int) (sim.Duration, error) {
	return d.write(now, key, value, valueLen, false)
}

// Delete writes a tombstone for key.
func (d *DB) Delete(now sim.Duration, key []byte) (sim.Duration, error) {
	return d.write(now, key, nil, 0, true)
}

func (d *DB) write(now sim.Duration, key, value []byte, valueLen int, del bool) (sim.Duration, error) {
	if d.closed {
		return now, ErrClosed
	}
	if d.fatal != nil {
		return now, d.fatal
	}
	if value != nil {
		valueLen = len(value)
	}
	d.pump(now)

	// Backpressure: stall until flush/compaction catch up.
	if d.stalled() {
		start := now
		for d.stalled() {
			end1, ok1 := d.flushW.StepOnce()
			end2, ok2 := d.compactW.StepOnce()
			end3, ok3 := d.compactWD.StepOnce()
			if !ok1 && !ok2 && !ok3 {
				if d.fatal != nil {
					return now, d.fatal
				}
				return now, errors.New("lsm: stalled with no background work (bug)")
			}
			if end1 > now {
				now = end1
			}
			if end2 > now {
				now = end2
			}
			if end3 > now {
				now = end3
			}
		}
		if d.fatal != nil {
			return now, d.fatal
		}
		d.stats.StallTime += now - start
		d.ioStats.StallEvents++
	}

	// Slowdown: RocksDB throttles ingest to the delayed write rate when
	// L0 grows or compaction debt crosses the soft limit. This is what
	// stretches the transition from burst speed to steady state over
	// tens of minutes in the paper's Fig 2a.
	if len(d.levels[0]) >= d.cfg.L0SlowdownTrigger ||
		(d.cfg.SoftPendingBytes > 0 && d.compactionDebt() >= d.cfg.SoftPendingBytes) {
		delay := sim.Duration(float64(len(key)+valueLen) /
			float64(d.cfg.DelayedWriteBytesPerSec) * 1e9)
		now += delay
		d.stats.StallTime += delay
		d.pump(now)
	}

	now += d.cfg.CPUPutTime + time.Duration(valueLen)*d.cfg.CPUPerByte
	d.seq++
	if d.walW != nil {
		rec := wal.Record{Seq: d.seq, Key: key, Value: value, Deleted: del, ValueLen: valueLen}
		syncNow := d.cfg.SyncWAL && d.cfg.WALFlushBytes <= 0
		var err error
		now, err = d.walW.Append(now, &rec, syncNow)
		if err != nil {
			d.fatal = deverr.Latch(err)
			return now, err
		}
		if !syncNow && d.cfg.SyncWAL && d.walW.UnsyncedBytes() >= d.cfg.WALFlushBytes {
			now, err = d.walW.Sync(now)
			if err != nil {
				d.fatal = deverr.Latch(err)
				return now, err
			}
		}
	}
	d.mem.Put(key, value, valueLen, d.seq, del)
	d.stats.Puts++
	d.stats.UserBytesWritten += int64(len(key) + valueLen)

	if d.mem.SizeBytes() >= d.cfg.MemtableBytes {
		if err := d.rotateMemtable(); err != nil {
			d.fatal = deverr.Latch(err)
			return now, err
		}
	}
	return now, nil
}

// stalled reports whether foreground writes must stop for background
// work, mirroring RocksDB's stop conditions.
func (d *DB) stalled() bool {
	if len(d.imm) > d.cfg.MaxImmutableMemtables {
		return true
	}
	if len(d.levels[0]) >= d.cfg.L0StallTrigger {
		return true
	}
	if d.cfg.HardPendingBytes > 0 && d.compactionDebt() >= d.cfg.HardPendingBytes {
		return true
	}
	return false
}

// rotateMemtable freezes the active memtable and schedules its flush.
// WAL segments are recycled from a pool (overwritten in place) rather
// than deleted and recreated, mirroring real engines' log recycling and
// keeping journal traffic confined to a stable set of LBAs.
func (d *DB) rotateMemtable() error {
	im := &immutable{mt: d.mem, maxSeq: d.seq}
	if d.walW != nil {
		im.walW = d.walW
		if n := len(d.walPool); n > 0 {
			d.walW = d.walPool[n-1]
			d.walPool = d.walPool[:n-1]
		} else {
			w, err := wal.Create(d.fs, d.walName(), d.cfg.Content)
			if err != nil {
				return err
			}
			d.walW = w
		}
	}
	d.imm = append(d.imm, im)
	d.mem = memtable.New(d.rng.Split())
	d.flushW.Submit(newFlushJob(d, im))
	return nil
}

// Get implements kv.Engine.
func (d *DB) Get(now sim.Duration, key []byte) (sim.Duration, []byte, bool, error) {
	if d.closed {
		return now, nil, false, ErrClosed
	}
	if d.fatal != nil {
		return now, nil, false, d.fatal
	}
	d.pump(now)
	now += d.cfg.CPUGetTime
	d.stats.Gets++

	if e := d.mem.Get(key); e != nil {
		return d.foundEntry(now, e)
	}
	for i := len(d.imm) - 1; i >= 0; i-- {
		if e := d.imm[i].mt.Get(key); e != nil {
			return d.foundEntry(now, e)
		}
	}
	if d.cfg.ProbeParallelism > 1 {
		return d.getParallel(now, key)
	}
	// L0: newest first, files overlap.
	for _, t := range d.levels[0] {
		done, e, found, err := t.Get(now, key)
		now = done
		if err != nil {
			return now, nil, false, err
		}
		if found {
			return d.foundEntry(now, &e)
		}
	}
	// Sorted levels: at most one candidate file per level.
	for li := 1; li < len(d.levels); li++ {
		t := findInLevel(d.levels[li], key)
		if t == nil {
			continue
		}
		done, e, found, err := t.Get(now, key)
		now = done
		if err != nil {
			return now, nil, false, err
		}
		if found {
			return d.foundEntry(now, &e)
		}
	}
	return now, nil, false, nil
}

// getParallel probes candidate tables in priority-ordered waves of
// ProbeParallelism: every probe in a wave is submitted at the same
// virtual time, so their block reads overlap on the device's internal
// lanes; the wave completes when its slowest probe does. Within a wave
// the newest table that holds the key wins, which preserves the exact
// result of the sequential walk — the parallel path only trades
// speculative read I/O for latency, as a real multi-queue read path
// does.
func (d *DB) getParallel(now sim.Duration, key []byte) (sim.Duration, []byte, bool, error) {
	cands := d.probeCandidates[:0]
	cands = append(cands, d.levels[0]...) // newest first, files overlap
	for li := 1; li < len(d.levels); li++ {
		if t := findInLevel(d.levels[li], key); t != nil {
			cands = append(cands, t)
		}
	}
	d.probeCandidates = cands[:0]
	for start := 0; start < len(cands); start += d.cfg.ProbeParallelism {
		end := start + d.cfg.ProbeParallelism
		if end > len(cands) {
			end = len(cands)
		}
		waveEnd := now
		hit := -1
		var hitEntry kv.Entry
		for i := start; i < end; i++ {
			done, e, found, err := cands[i].Get(now, key)
			if err != nil {
				return done, nil, false, err
			}
			if done > waveEnd {
				waveEnd = done
			}
			if found && hit < 0 {
				hit = i
				hitEntry = e
			}
		}
		now = waveEnd
		if hit >= 0 {
			return d.foundEntry(now, &hitEntry)
		}
	}
	return now, nil, false, nil
}

func (d *DB) foundEntry(now sim.Duration, e *kv.Entry) (sim.Duration, []byte, bool, error) {
	if e.Deleted {
		return now, nil, false, nil
	}
	d.stats.UserBytesRead += int64(len(e.Key) + e.ValueLen)
	return now, e.Value, true, nil
}

// findInLevel locates the unique file in a sorted level whose range may
// contain key.
func findInLevel(level []*sstable.Table, key []byte) *sstable.Table {
	lo, hi := 0, len(level)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		t := level[mid]
		if kv.CompareKeys(t.Largest(), key) < 0 {
			lo = mid + 1
		} else if kv.CompareKeys(t.Smallest(), key) > 0 {
			hi = mid - 1
		} else {
			return t
		}
	}
	return nil
}

// Scan returns up to limit live entries with key >= start in key order,
// merging the memtable, immutable memtables and every level. Reads are
// charged per table for the data blocks the scan range covers — the
// range-query capability that motivates tree structures in the paper's
// introduction.
func (d *DB) Scan(now sim.Duration, start []byte, limit int) (sim.Duration, []kv.Entry, error) {
	if d.closed {
		return now, nil, ErrClosed
	}
	if d.fatal != nil {
		return now, nil, d.fatal
	}
	d.pump(now)
	now += d.cfg.CPUGetTime

	var its []kv.Iterator
	its = append(its, d.mem.IteratorFrom(start))
	for _, im := range d.imm {
		its = append(its, im.mt.IteratorFrom(start))
	}
	// Tables whose range may intersect [start, inf). Track them so the
	// consumed block reads can be charged afterwards.
	var tables []*sstable.Table
	for _, t := range d.levels[0] {
		if t.NumEntries() > 0 && bytes.Compare(t.Largest(), start) >= 0 {
			its = append(its, t.IteratorFrom(start))
			tables = append(tables, t)
		}
	}
	for li := 1; li < len(d.levels); li++ {
		for _, t := range d.levels[li] {
			if t.NumEntries() > 0 && bytes.Compare(t.Largest(), start) >= 0 {
				its = append(its, t.IteratorFrom(start))
				tables = append(tables, t)
			}
		}
	}

	m := newMergeIter(its)
	var out []kv.Entry
	var lastKey []byte
	var endKey []byte
	for limit > 0 && m.Next() {
		e := m.Entry()
		if lastKey != nil && bytes.Equal(e.Key, lastKey) {
			continue // shadowed older version
		}
		lastKey = append(lastKey[:0], e.Key...)
		if e.Deleted {
			continue
		}
		out = append(out, kv.Entry{
			Key:      append([]byte(nil), e.Key...),
			Value:    e.Value,
			ValueLen: e.ValueLen,
			Seq:      e.Seq,
		})
		d.stats.UserBytesRead += int64(len(e.Key) + e.ValueLen)
		limit--
		endKey = out[len(out)-1].Key
	}
	// Charge block reads for the range [start, endKey] in every table
	// the merge consulted.
	if endKey != nil {
		for _, t := range tables {
			done, err := t.ReadRange(now, t.EntryIndex(start), t.EntryIndex(endKey))
			if err != nil {
				return now, nil, err
			}
			now = done
		}
	}
	// In content mode, entries that came from on-disk tables carry only
	// metadata (the side index does not retain value bytes); fetch their
	// values through the read path.
	if d.cfg.Content {
		for i := range out {
			if out[i].Value != nil || out[i].ValueLen == 0 {
				continue
			}
			done, v, found, err := d.Get(now, out[i].Key)
			if err != nil {
				return now, nil, err
			}
			now = done
			if found {
				out[i].Value = v
			}
		}
	}
	return now, out, nil
}

// FlushAll implements kv.Engine: it rotates the active memtable and runs
// all background work to completion, returning the quiesced time.
func (d *DB) FlushAll(now sim.Duration) (sim.Duration, error) {
	if d.closed {
		return now, ErrClosed
	}
	if d.mem.Len() > 0 {
		if err := d.rotateMemtable(); err != nil {
			return now, err
		}
	}
	d.pump(now)
	end := d.drainAll()
	if end < now {
		end = now
	}
	if d.fatal != nil {
		return end, d.fatal
	}
	return end, nil
}

// drainAll alternates the background workers until all queues are empty
// (work on one worker can unlock work for another).
func (d *DB) drainAll() sim.Duration {
	var end sim.Duration
	for {
		e1 := d.flushW.RunUntilDrained()
		e2 := d.compactW.RunUntilDrained()
		e3 := d.compactWD.RunUntilDrained()
		if e1 > end {
			end = e1
		}
		if e2 > end {
			end = e2
		}
		if e3 > end {
			end = e3
		}
		if d.flushW.QueueLen() == 0 && d.compactW.QueueLen() == 0 &&
			d.compactWD.QueueLen() == 0 {
			// Idle pullers may still have work to offer (e.g. a flush
			// just pushed L0 over its trigger). Probe them; any job a
			// probe creates must be submitted, since creation marks its
			// inputs busy.
			produced := false
			if j := d.pullL0Compaction(); j != nil {
				d.compactW.Submit(j)
				produced = true
			}
			if j := d.pullDeepCompaction(); j != nil {
				d.compactWD.Submit(j)
				produced = true
			}
			if !produced {
				return end
			}
		}
	}
}

// Quiesce pumps background work to completion without rotating the
// memtable (used between benchmark phases).
func (d *DB) Quiesce(now sim.Duration) sim.Duration {
	d.pump(now)
	end := d.drainAll()
	if end < now {
		end = now
	}
	return end
}

// Close flushes and shuts the database.
func (d *DB) Close(now sim.Duration) (sim.Duration, error) {
	if d.closed {
		return now, ErrClosed
	}
	end, err := d.FlushAll(now)
	d.closed = true
	return end, err
}

// Err returns the sticky fatal error, if any (e.g. out of space).
func (d *DB) Err() error { return d.fatal }
