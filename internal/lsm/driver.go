package lsm

import (
	"errors"

	"ptsbench/internal/engine"
	"ptsbench/internal/sim"
)

func init() { engine.Register(Driver{}) }

// Driver is the self-registering engine driver for the RocksDB-style
// LSM tree. Registry name: "lsm".
type Driver struct{}

// Name implements engine.Driver.
func (Driver) Name() string { return "lsm" }

// Configure implements engine.Driver: RocksDB-flavoured defaults sized
// for the dataset, with per-op CPU costs dilated by the simulation
// scale, the write throttle divided by it, and both engine-internal
// read parallelism knobs (SSTable probe waves, compaction read
// batching) following the host queue depth — exactly the arithmetic
// the experiment runner applied before the registry existed, so golden
// results are bit-identical.
func (Driver) Configure(s engine.Sizing) engine.Config {
	cfg := NewConfig(s.DatasetBytes)
	if f := s.CPUScale(); f > 1 {
		cfg.CPUPutTime *= f
		cfg.CPUGetTime *= f
		cfg.CPUPerByte *= f
		cfg.DelayedWriteBytesPerSec /= s.Scale
	}
	if s.QueueDepth > 1 {
		cfg.ProbeParallelism = s.QueueDepth
		cfg.CompactionReadParallelism = s.QueueDepth
	}
	return &cfg
}

// knobs binds the declarative tunable names to the receiver's fields.
func (c *Config) knobs() *engine.Knobs {
	k := engine.NewKnobs("lsm")
	k.Int64("memtable_bytes", "memtable rotation threshold (bytes)", &c.MemtableBytes)
	k.Int("max_immutable_memtables", "rotated memtables awaiting flush before writes stall", &c.MaxImmutableMemtables)
	k.Int("l0_compaction_trigger", "L0 file count starting an L0->L1 compaction", &c.L0CompactionTrigger)
	k.Int("l0_slowdown_trigger", "L0 file count throttling writes", &c.L0SlowdownTrigger)
	k.Int("l0_stall_trigger", "L0 file count stopping writes", &c.L0StallTrigger)
	k.Int64("soft_pending_bytes", "compaction debt throttling writes (bytes)", &c.SoftPendingBytes)
	k.Int64("hard_pending_bytes", "compaction debt stopping writes (bytes)", &c.HardPendingBytes)
	k.Int64("delayed_write_bytes_per_sec", "throttled ingest rate under slowdown", &c.DelayedWriteBytesPerSec)
	k.Int64("base_level_bytes", "L1 size target (bytes)", &c.BaseLevelBytes)
	k.Int("level_size_multiplier", "per-level growth factor", &c.LevelSizeMultiplier)
	k.Int("num_levels", "level count (L0 plus sorted levels)", &c.NumLevels)
	k.Int64("target_file_bytes", "compaction output file size (bytes)", &c.TargetFileBytes)
	k.Int("block_bytes", "SSTable data block target (bytes)", &c.BlockBytes)
	k.Bool("disable_wal", "turn off write-ahead logging", &c.DisableWAL)
	k.Bool("sync_wal", "persist the WAL (see wal_flush_bytes)", &c.SyncWAL)
	k.Int64("wal_flush_bytes", "WAL write batching (0 syncs every put)", &c.WALFlushBytes)
	k.Duration("cpu_put_time", "per-put engine CPU cost", &c.CPUPutTime)
	k.Duration("cpu_get_time", "per-get engine CPU cost", &c.CPUGetTime)
	k.Duration("cpu_per_byte", "payload-size-dependent CPU cost per byte", &c.CPUPerByte)
	k.Int("chunk_pages", "background I/O granularity (pages per job step)", &c.ChunkPages)
	k.Int("probe_parallelism", "concurrent SSTable point lookups per Get", &c.ProbeParallelism)
	k.Int("compaction_read_parallelism", "concurrent compaction input reads", &c.CompactionReadParallelism)
	return k
}

// Tunables implements engine.Config.
func (c *Config) Tunables() []engine.Tunable { return c.knobs().Docs() }

// ApplyTunables implements engine.Config.
func (c *Config) ApplyTunables(tunables map[string]string) error {
	return c.knobs().Apply(tunables)
}

// Open implements engine.Config. The LSM consumes a child RNG stream
// for its skiplist tower heights, split from env.RNG exactly the way
// the pre-registry runner did.
func (c *Config) Open(env engine.Env) (engine.Engine, error) {
	if env.RNG == nil {
		return nil, errors.New("lsm: engine.Env.RNG is required")
	}
	cfg := *c
	cfg.Content = env.Content
	return Open(env.FS, cfg, env.RNG.Split())
}

// Recover implements engine.Config.
func (c *Config) Recover(env engine.Env, now sim.Duration) (engine.Engine, sim.Duration, error) {
	if env.RNG == nil {
		return nil, 0, errors.New("lsm: engine.Env.RNG is required")
	}
	cfg := *c
	cfg.Content = env.Content
	return Recover(env.FS, cfg, env.RNG.Split(), now)
}
