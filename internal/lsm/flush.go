package lsm

import (
	"ptsbench/internal/deverr"
	"ptsbench/internal/extfs"
	"ptsbench/internal/sim"
	"ptsbench/internal/sstable"
)

// flushJob writes one immutable memtable out as an L0 table, in chunks,
// on the flush worker.
type flushJob struct {
	d       *DB
	im      *immutable
	img     *sstable.FileImage
	file    *extfs.File
	written int64
}

func newFlushJob(d *DB, im *immutable) *flushJob {
	return &flushJob{d: d, im: im}
}

// Step implements sim.Job.
func (j *flushJob) Step(now sim.Duration) (sim.Duration, bool) {
	d := j.d
	if d.fatal != nil {
		return now, true
	}
	if j.img == nil {
		// First step: lay out the table and create its file.
		b := sstable.NewBuilderHint(d.fs.PageSize(), d.cfg.BlockBytes, d.cfg.Content, j.im.mt.Len())
		it := j.im.mt.Iterator()
		for it.Next() {
			if err := b.Add(it.Entry()); err != nil {
				d.fatal = deverr.Latch(err)
				return now, true
			}
		}
		d.nextFileID++
		j.img = b.Finish(d.nextFileID)
		f, err := d.fs.Create(sstFileName(d.nextFileID))
		if err != nil {
			d.fatal = deverr.Latch(err)
			return now, true
		}
		j.file = f
	}
	var done bool
	var err error
	now, j.written, done, err = j.img.WriteChunk(now, j.file, j.written, d.cfg.ChunkPages)
	if err != nil {
		d.fatal = deverr.Latch(err)
		j.abort()
		return now, true
	}
	if !done {
		return now, false
	}
	// Commit: sync metadata, install in L0 (newest first), persist the
	// new version in the manifest, release the memtable and its WAL
	// segment.
	if now, err = d.fs.Sync(now); err != nil {
		d.fatal = deverr.Latch(err)
		j.abort()
		return now, true
	}
	t := j.img.Install(j.file)
	d.levels[0] = append([]*sstable.Table{t}, d.levels[0]...)
	d.levelBytes[0] += t.SizeBytes()
	d.shapeL0++ // flushes touch only L0; the deep picker's memo survives
	if j.im.maxSeq > d.flushedSeq {
		d.flushedSeq = j.im.maxSeq
	}
	if now, err = d.writeManifest(now); err != nil {
		d.fatal = deverr.Latch(err)
		return now, true
	}
	// The manifest naming the new table (and carrying the flushedSeq mark
	// that retires this memtable's WAL records) must be durable before the
	// segment is recycled — a cut between the two would otherwise lose the
	// records to the zeroed log while the older manifest slot still omits
	// the table.
	if err := d.fs.Barrier(); err != nil {
		d.fatal = deverr.Latch(err)
		return now, true
	}
	for i, im := range d.imm {
		if im == j.im {
			d.imm = append(d.imm[:i], d.imm[i+1:]...)
			break
		}
	}
	if j.im.walW != nil {
		var err error
		now, err = j.im.walW.Recycle(now)
		if err != nil {
			d.fatal = deverr.Latch(err)
			return now, true
		}
		d.walPool = append(d.walPool, j.im.walW)
	}
	d.ioStats.Flushes++
	return now, true
}

// abort removes a partially written output file.
func (j *flushJob) abort() {
	if j.file != nil {
		_ = j.d.fs.Remove(j.file.Name())
		j.file = nil
	}
}
